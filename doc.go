// Package repro is a reproduction of "A flow-based model for Internet
// backbone traffic" (Barakat, Thiran, Iannaccone, Diot, Owezarski,
// IMC 2002): a Poisson shot-noise model of the total data rate on an
// uncongested backbone link, together with the full measurement pipeline,
// synthetic trace substrate, and the paper's three applications
// (dimensioning, prediction, traffic generation).
//
// The public surface lives under internal/ because this module is a
// research artefact: cmd/ holds the user-facing binaries, examples/ the
// runnable API tours, and bench_test.go (this package) the benchmark
// harness that regenerates every table and figure of the paper. See
// README.md for the map and DESIGN.md for the architecture.
package repro
