// Prediction (§VII-B): forecast the total rate with a Moving-Average
// predictor whose coefficients come from the model's auto-covariance
// (Theorem 2) rather than from scarce rate samples, and compare against the
// purely measurement-driven predictor — the paper's Table II experiment.
//
//	go run ./examples/prediction
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/predict"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

func main() {
	// A 15-minute trace at the mid-utilisation operating point.
	specs, err := trace.DefaultSuite(trace.SuiteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := specs[4].Config()
	cfg.Duration = 900
	cfg.Warmup = 60
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		log.Fatal(err)
	}
	series, err := timeseries.Bin(recs, cfg.Duration, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	series.Subtract(res.Discarded)

	fmt.Printf("trace: %.0f s at %.2f Mb/s mean\n", cfg.Duration, series.Mean()/1e6)
	fmt.Printf("%8s | %8s %10s | %8s %10s\n",
		"ell(s)", "M-meas", "err-meas", "M-model", "err-model")

	for _, ell := range []float64{2, 5, 10, 30} {
		sampled, err := series.Downsample(int(ell / 0.2))
		if err != nil {
			log.Fatal(err)
		}
		n := len(sampled.Rate)
		train, test := sampled.Rate[:n/2], sampled.Rate[n/2:]

		// Measurement-driven: ACF estimated from the few training samples.
		maxLag := 8
		if maxLag > len(train)/3 {
			maxLag = len(train) / 3
		}
		pMeas, _, err := predict.SelectOrder(predict.MeasuredACF(train, maxLag), train, 8)
		if err != nil {
			log.Fatal(err)
		}
		eMeas, err := pMeas.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}

		// Model-driven: ACF from Theorem 2 on the training half's flows —
		// every flow contributes, so the estimate does not degrade as ℓ
		// grows and samples run out (the paper's argument).
		var trainFlows []flow.Flow
		for _, f := range res.Flows {
			if f.Start < cfg.Duration/2 {
				trainFlows = append(trainFlows, f)
			}
		}
		in, err := core.InputFromFlows(trainFlows, cfg.Duration/2)
		if err != nil {
			log.Fatal(err)
		}
		m, err := in.Model(core.Triangular)
		if err != nil {
			log.Fatal(err)
		}
		rho, err := predict.ModelACF(m, ell, 8)
		if err != nil {
			log.Fatal(err)
		}
		pModel, _, err := predict.SelectOrder(rho, train, 8)
		if err != nil {
			log.Fatal(err)
		}
		eModel, err := pModel.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%8.0f | %8d %9.2f%% | %8d %9.2f%%\n",
			ell, pMeas.P.Order(), eMeas*100, pModel.P.Order(), eModel*100)
	}
	fmt.Println("\nthe model-based ACF uses every flow, not just the sparse rate samples,")
	fmt.Println("so its predictor stays usable at prediction intervals where the")
	fmt.Println("measured ACF has almost no data (the paper's Table II conclusion)")
}
