// Anomaly detection: the application the paper's introduction motivates —
// "detection of anomalies (e.g. denial of service attacks or link
// failures)". The model, fitted on clean flow statistics, predicts the
// Gaussian band the rate should stay in; a flood of small flows injected
// mid-trace pushes the measured rate out of the band and is localised by
// the detector.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

func main() {
	// Baseline traffic: one clean interval to fit the model on, then a
	// second interval with a DoS-like flood overlaid.
	specs, err := trace.DefaultSuite(trace.SuiteOptions{MaxIntervals: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := specs[4].Config()
	cfg.Warmup = 60
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	interval := specs[4].IntervalSec

	// Flood: a surge of small constant-rate flows to one /24 prefix for
	// 20 s in the middle of the second interval, adding ~8× the model σ.
	floodStart := 1.5 * interval
	size := dist.Constant{V: 20000} // 20 kB zombies
	rate := dist.Constant{V: 400e3} // 0.4 s bursts
	flood, _, err := trace.GenerateAll(trace.Config{
		Duration:        20,
		Lambda:          80,
		SizeBytes:       size,
		RateBps:         rate,
		ShotB:           dist.Constant{V: 0},
		FlowsPerSession: 1,
		Prefixes:        2, // all to the same couple of prefixes
		PopularPrefixes: 1,
		Seed:            13,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range flood {
		flood[i].Time += floodStart
	}
	recs = trace.MergeSorted(recs, flood)

	// Fit the model on the clean first interval.
	var clean []trace.Record
	for _, r := range recs {
		if r.Time >= interval {
			break
		}
		clean = append(clean, r)
	}
	res, err := flow.Measure(clean, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		log.Fatal(err)
	}
	in, err := core.InputFromFlows(res.Flows, interval)
	if err != nil {
		log.Fatal(err)
	}
	m, err := in.Model(core.Parabolic)
	if err != nil {
		log.Fatal(err)
	}

	// Detector band from the model (σ_Δ via eq. 7), z = 4, 1 s debounce.
	const delta = 0.2
	det, err := anomaly.FromModel(m, delta, 4, 5)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := det.Bounds()
	fmt.Printf("model band (z=4): [%.2f, %.2f] Mb/s around mean %.2f Mb/s\n",
		lo/1e6, hi/1e6, det.Mu/1e6)

	// Scan the whole trace (both intervals).
	series, err := timeseries.Bin(recs, cfg.Duration, delta)
	if err != nil {
		log.Fatal(err)
	}
	events := det.Scan(series)
	if len(events) == 0 {
		fmt.Println("no anomalies detected — unexpected, the flood should trip the band")
		return
	}
	for _, e := range events {
		fmt.Printf("anomaly: rate %s band for %.1f s starting at t=%.1f s (peak %.2f Mb/s)\n",
			e.Direction, e.Duration(delta), float64(e.StartBin)*delta, e.Peak/1e6)
	}
	fmt.Printf("injected flood was at t=%.1f..%.1f s\n", floodStart, floodStart+20)
}
