// Traffic generation (§VII-C): fit the shot-noise model on measured flows,
// then use it to synthesise new backbone traffic — the paper's proposal for
// simulation tools. The demo fits b̂ from the measured variance (§V-D),
// generates both fluid and packet traffic from the fitted model, and shows
// that the naive constant-rate generator (rectangular shots) reproduces the
// mean but under-states the burstiness.
//
//	go run ./examples/trafficgen
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

func main() {
	// "Measured" traffic to imitate.
	specs, err := trace.DefaultSuite(trace.SuiteOptions{MaxIntervals: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := specs[2].Config() // the busiest trace
	cfg.Warmup = 60
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		log.Fatal(err)
	}
	const delta = 0.2
	orig, err := timeseries.Bin(recs, cfg.Duration, delta)
	if err != nil {
		log.Fatal(err)
	}
	orig.Subtract(res.Discarded)
	in, err := core.InputFromFlows(res.Flows, cfg.Duration)
	if err != nil {
		log.Fatal(err)
	}

	// Fit the shot exponent to the measured variance, correcting for the
	// Δ-averaging of the measurement (eq. 7).
	bHat, ok, err := core.FitPowerBAveraged(orig.Variance(), delta, in, 3000)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("note: fitted b clamped to the feasible range")
	}
	m, err := in.Model(core.PowerShot{B: bHat})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: λ=%.0f flows/s, b̂=%.2f, mean %.2f Mb/s\n",
		m.Lambda, bHat, m.Mean()/1e6)

	// Generate fresh traffic from the fitted model.
	gcfg := gen.FromModel(m, cfg.Duration, 30, 7)
	fluid, err := gen.FluidSeries(gcfg, delta)
	if err != nil {
		log.Fatal(err)
	}
	pkts, err := gen.Packets(gcfg, 1500)
	if err != nil {
		log.Fatal(err)
	}
	pktSeries, err := timeseries.Bin(pkts, cfg.Duration, delta)
	if err != nil {
		log.Fatal(err)
	}

	// The naive generator: same flows, constant rate S/D.
	naive := gcfg
	naive.Shot = core.Rectangular
	naiveSeries, err := gen.FluidSeries(naive, delta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-26s %12s %10s\n", "process", "mean(Mb/s)", "CoV(%)")
	rows := []struct {
		name   string
		series timeseries.Series
	}{
		{"original (measured)", orig},
		{"generated fluid (b̂)", fluid},
		{"generated packets (b̂)", pktSeries},
		{"naive constant-rate", naiveSeries},
	}
	for _, r := range rows {
		fmt.Printf("%-26s %12.2f %10.2f\n", r.name, r.series.Mean()/1e6, r.series.CoV()*100)
	}

	// Correlation structure carried by the shots (Theorem 2).
	fmt.Printf("\n%10s %10s %12s\n", "tau(ms)", "model ρ", "generated ρ")
	acf := fluid.AutoCorrelation(4)
	for k := 0; k <= 4; k++ {
		tau := float64(k) * delta
		fmt.Printf("%10.0f %10.3f %12.3f\n", tau*1e3, m.AutoCorrelation(tau), acf[k])
	}
}
