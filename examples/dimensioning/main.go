// Dimensioning (§VII-A): use the model to answer the network-engineering
// questions the paper motivates.
//
//  1. How much capacity does this traffic need for a target congestion
//     probability? (Gaussian dimensioning, §V-E.)
//
//  2. What happens when a new application doubles flow sizes, or when the
//     customer base grows? (What-if analysis on the model inputs.)
//
//  3. How does burstiness evolve as load grows? (The 1/√λ smoothing law:
//     capacity can grow sub-linearly with demand.)
//
//     go run ./examples/dimensioning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/trace"
)

func main() {
	specs, err := trace.DefaultSuite(trace.SuiteOptions{MaxIntervals: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := specs[0].Config()
	cfg.Warmup = 60
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		log.Fatal(err)
	}
	in, err := core.InputFromFlows(res.Flows, cfg.Duration)
	if err != nil {
		log.Fatal(err)
	}
	m, err := in.Model(core.Parabolic)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("traffic: mean %.2f Mb/s, σ %.2f Mb/s (λ=%.0f flows/s)\n\n",
		m.Mean()/1e6, m.StdDev()/1e6, m.Lambda)

	// 1. Capacity vs target congestion probability.
	fmt.Println("capacity needed (Gaussian dimensioning, §V-E):")
	for _, eps := range []float64{0.05, 0.01, 0.001} {
		c, err := m.Bandwidth(eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P(congestion) < %5.3f  =>  C = %7.2f Mb/s  (checked: P(R>C) = %.4f)\n",
			eps, c/1e6, m.ExceedProb(c))
	}

	// 2. What-if: a new application doubles every flow's size at the same
	// flow rate (durations double too).
	bigger := make([]core.FlowSample, len(m.Flows))
	for i, f := range m.Flows {
		bigger[i] = core.FlowSample{S: 2 * f.S, D: 2 * f.D}
	}
	m2, err := core.NewModel(m.Lambda, m.Shot, bigger)
	if err != nil {
		log.Fatal(err)
	}
	c1, _ := m.Bandwidth(0.01)
	c2, _ := m2.Bandwidth(0.01)
	fmt.Printf("\nwhat-if — flow sizes ×2 (same per-flow rate):\n")
	fmt.Printf("  mean %.2f -> %.2f Mb/s; C(1%%) %.2f -> %.2f Mb/s\n",
		m.Mean()/1e6, m2.Mean()/1e6, c1/1e6, c2/1e6)

	// 3. The smoothing law: scale the customer base (λ) and watch the CoV
	// fall as 1/√λ, so the needed headroom shrinks relative to the mean.
	fmt.Println("\ngrowth — flow arrival rate scaled (same flow mix):")
	fmt.Printf("  %6s %12s %10s %16s\n", "λ×", "mean(Mb/s)", "CoV(%)", "C(1%)/mean")
	for _, k := range []float64{1, 4, 16} {
		mk, err := core.NewModel(m.Lambda*k, m.Shot, m.Flows)
		if err != nil {
			log.Fatal(err)
		}
		ck, _ := mk.Bandwidth(0.01)
		fmt.Printf("  %6.0f %12.2f %10.2f %16.3f\n",
			k, mk.Mean()/1e6, mk.CoV()*100, ck/mk.Mean())
	}
	fmt.Println("\nCoV halves per λ×4: traffic smooths as flows multiplex (§VII-A)")
}
