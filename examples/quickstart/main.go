// Quickstart: the 30-line tour of the library.
//
// Generate one analysis interval of synthetic backbone traffic, run the
// paper's flow-measurement pipeline (§III), feed the three model parameters
// (λ, E[S], E[S²/D]) into the Poisson shot-noise model, and compare the
// model's mean and coefficient of variation against the measured rate —
// one point of the paper's Figure 10.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

func main() {
	// One scaled Table I trace: two 120 s analysis intervals.
	specs, err := trace.DefaultSuite(trace.SuiteOptions{MaxIntervals: 2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := specs[4].Config() // trace-5: the paper's mid-utilisation class
	cfg.Warmup = 60
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The §III measurement pipeline: 5-tuple flows, 60 s timeout,
	// single-packet flows discarded.
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		log.Fatal(err)
	}

	// The measured total rate, averaged over Δ = 200 ms windows.
	const delta = 0.2
	series, err := timeseries.Bin(recs, cfg.Duration, delta)
	if err != nil {
		log.Fatal(err)
	}
	series.Subtract(res.Discarded)

	// The model needs three parameters, all measured from flows.
	in, err := core.InputFromFlows(res.Flows, cfg.Duration)
	if err != nil {
		log.Fatal(err)
	}
	m, err := in.Model(core.Parabolic) // b=2 fits 5-tuple flows best (§VI)
	if err != nil {
		log.Fatal(err)
	}
	sigmaDelta2, err := m.AveragedVariance(delta) // eq. (7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flows: %d (λ=%.1f/s, E[S]=%.1f kbit, E[S²/D]=%.3g bit²/s)\n",
		len(res.Flows), in.Lambda, in.MeanS/1e3, in.MeanS2OverD)
	fmt.Printf("measured: mean %.2f Mb/s, CoV %.2f%%\n",
		series.Mean()/1e6, series.CoV()*100)
	fmt.Printf("model:    mean %.2f Mb/s, CoV %.2f%%  (parabolic shots, Δ-averaged)\n",
		m.Mean()/1e6, math.Sqrt(sigmaDelta2)/m.Mean()*100)

	// The dimensioning rule of §V-E: capacity for <1% congestion.
	c, err := m.Bandwidth(0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity for 1%% congestion probability: %.2f Mb/s\n", c/1e6)
}
