#!/usr/bin/env sh
# Runs the repo's full static-invariant gate, the same sequence CI's lint
# job runs:
#
#   1. go vet              — the stock toolchain analyzers;
#   2. go vet -vettool     — the repolint suite (determinism, hotpath,
#                            poolcheck, floatconst) under vet's package
#                            graph and result cache;
#   3. repolint ./...      — the same suite standalone (belt and braces:
#                            exercises the go-list loader path);
#   4. repolint -escape    — the go build -gcflags=-m escape-analysis
#                            cross-check over //repro:hotpath functions.
#
# Findings are suppressed only by //repro: directives carrying a written
# justification (see README "Invariants"); any unsuppressed finding exits
# non-zero. Usage: scripts/lint.sh [packages] (default ./...).
set -eu

cd "$(dirname "$0")/.."
pkgs="${*:-./...}"

tool="$(mktemp -d)/repolint"
trap 'rm -rf "$(dirname "$tool")"' EXIT
go build -o "$tool" ./cmd/repolint

echo "lint: go vet $pkgs"
go vet $pkgs

echo "lint: go vet -vettool=repolint $pkgs"
go vet -vettool="$tool" $pkgs

echo "lint: repolint $pkgs"
"$tool" $pkgs

echo "lint: repolint -escape $pkgs"
"$tool" -escape $pkgs

echo "lint: clean"
