#!/usr/bin/env sh
# Runs the headline pipeline benchmarks and emits one JSON document with
# ns/op, B/op and allocs/op per benchmark, seeding the perf trajectory
# (compare successive BENCH_*.json to see the suite speed over PRs).
#
# Usage:
#   scripts/bench.sh [output.json] [benchtime]
#   scripts/bench.sh --compare OLD.json NEW.json [threshold_pct]
#
# --compare diffs two snapshots benchmark by benchmark and exits non-zero
# when any shared benchmark's ns/op or allocs/op regressed by more than
# threshold_pct (default 15) — the CI trend check over the committed
# BENCH_*.json history. Snapshots carry the machine shape (GOMAXPROCS / CPU
# count) in their metadata; when the two snapshots come from differently
# sized machines the comparison is skipped (exit 0 with a notice), because a
# wall-clock diff across machines is noise, not a trend.
set -eu

# extract_ns prints "name ns_per_op allocs_per_op" per line from a bench.sh
# JSON snapshot (one benchmark object per line, as emitted below;
# allocs_per_op prints as "-" when the snapshot lacks it).
extract_ns() {
    awk '
    /"name":/ {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        allocs = "-"
        if ($0 ~ /"allocs_per_op":/) {
            allocs = $0; sub(/.*"allocs_per_op": /, "", allocs); sub(/[,}].*/, "", allocs)
        }
        print name, ns, allocs
    }' "$1"
}

# extract_cpus prints the snapshot's recorded CPU count ("-" when the
# snapshot predates the metadata field). The machine-shape check compares
# physical CPU counts, not GOMAXPROCS: an override of the latter on the same
# box must not disable the trend check.
extract_cpus() {
    awk '
    /"cpus":/ {
        v = $0; sub(/.*"cpus": /, "", v); sub(/[,}].*/, "", v)
        print v; found = 1; exit
    }
    END { if (!found) print "-" }' "$1"
}

if [ "${1:-}" = "--compare" ]; then
    old="${2:?usage: bench.sh --compare OLD.json NEW.json [threshold_pct]}"
    new="${3:?usage: bench.sh --compare OLD.json NEW.json [threshold_pct]}"
    threshold="${4:-15}"
    oldcpus=$(extract_cpus "$old")
    newcpus=$(extract_cpus "$new")
    if [ "$oldcpus" != "-" ] && [ "$newcpus" != "-" ] && [ "$oldcpus" != "$newcpus" ]; then
        echo "bench trend: $old (cpus=$oldcpus) vs $new (cpus=$newcpus): different machines, skipping comparison"
        exit 0
    fi
    { extract_ns "$old" | sed 's/^/old /'; extract_ns "$new" | sed 's/^/new /'; } | awk -v threshold="$threshold" -v old="$old" -v new="$new" '
    $1 == "old" { was_ns[$2] = $3; was_al[$2] = $4 }
    $1 == "new" { now_ns[$2] = $3; now_al[$2] = $4; order[n++] = $2 }
    END {
        printf "bench trend: %s -> %s (threshold +%g%% ns/op, +%g%% allocs/op)\n", old, new, threshold, threshold
        bad = 0; shared = 0
        for (i = 0; i < n; i++) {
            name = order[i]
            if (!(name in was_ns)) { printf "  new       %-46s %12.0f ns/op\n", name, now_ns[name]; continue }
            shared++
            pct = (now_ns[name] - was_ns[name]) / was_ns[name] * 100
            flag = "ok"
            if (pct > threshold) { flag = "REGRESSED"; bad++ }
            printf "  %-9s %-46s %12.0f -> %12.0f ns/op (%+6.1f%%)\n", flag, name, was_ns[name], now_ns[name], pct
            if (was_al[name] != "-" && now_al[name] != "-") {
                if (was_al[name] + 0 > 0) {
                    apct = (now_al[name] - was_al[name]) / was_al[name] * 100
                    if (apct > threshold) {
                        printf "  REGRESSED %-46s %12.0f -> %12.0f allocs/op (%+6.1f%%)\n", name, was_al[name], now_al[name], apct
                        bad++
                    }
                } else if (now_al[name] + 0 > 0) {
                    # A zero-alloc baseline regressing to any allocations is
                    # always a real regression, not a percentage question.
                    printf "  REGRESSED %-46s %12.0f -> %12.0f allocs/op (was 0)\n", name, was_al[name], now_al[name]
                    bad++
                }
            }
        }
        if (shared == 0) { print "  no shared benchmarks to compare" >"/dev/stderr"; exit 2 }
        if (bad > 0) { printf "%d metric(s) regressed beyond +%g%%\n", bad, threshold >"/dev/stderr"; exit 1 }
        print "no ns/op or allocs/op regression beyond threshold"
    }'
    exit $?
fi

out="${1:-BENCH_$(date +%Y%m%d).json}"
benchtime="${2:-3x}"
pattern='BenchmarkTable1TraceSuite$|BenchmarkMeasureSuiteWorkers|BenchmarkLongTraceWorkers|BenchmarkIntervalSplitter|BenchmarkAssemblerBlock|BenchmarkTraceStreaming|BenchmarkTraceGeneration|BenchmarkTraceGenerationSharded|BenchmarkWindowReplayDeepOffset|BenchmarkStoreReplay$|BenchmarkStoreWrite$|BenchmarkFlowMeasurement|BenchmarkRateBinning|BenchmarkModelAveragedVariance$|BenchmarkAveragedVarianceBatch$|BenchmarkLSTBatch$|BenchmarkModelSuite$|BenchmarkProgramsPhase1|BenchmarkServiceIngest'
# Per-benchmark -benchtime overrides (NAME_REGEX=BENCHTIME), run as
# separate passes so benchmarks whose per-op cost is wildly below the
# suite's get a sane iteration count: the sampler sub-benchmarks are
# nanoseconds per op, where the suite-wide 3 iterations is pure noise.
overrides='BenchmarkSamplers=100000x'

cd "$(dirname "$0")/.."

cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)
gomaxprocs="${GOMAXPROCS:-$cpus}"

raw=$(go test -run=NONE -bench="$pattern" -benchtime="$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2
for ov in $overrides; do
    ovraw=$(go test -run=NONE -bench="${ov%%=*}" -benchtime="${ov#*=}" -benchmem .)
    printf '%s\n' "$ovraw" >&2
    raw="$raw
$ovraw"
done

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" -v gmp="$gomaxprocs" -v cpus="$cpus" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"cpus\": %s,\n  \"benchmarks\": [\n", benchtime, gmp, cpus
    n = 0
}
$1 ~ /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' > "$out"

echo "wrote $out" >&2
