#!/usr/bin/env sh
# Runs the headline pipeline benchmarks and emits one JSON document with
# ns/op, B/op and allocs/op per benchmark, seeding the perf trajectory
# (compare successive BENCH_*.json to see the suite speed over PRs).
#
# Usage:
#   scripts/bench.sh [output.json] [benchtime]
#   scripts/bench.sh --compare OLD.json NEW.json [threshold_pct]
#
# --compare diffs two snapshots benchmark by benchmark and exits non-zero
# when any shared benchmark's ns/op regressed by more than threshold_pct
# (default 15) — the CI trend check over the committed BENCH_*.json history.
set -eu

# extract_ns prints "name ns_per_op" per line from a bench.sh JSON snapshot
# (one benchmark object per line, as emitted below).
extract_ns() {
    sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.]*\).*/\1 \2/p' "$1"
}

if [ "${1:-}" = "--compare" ]; then
    old="${2:?usage: bench.sh --compare OLD.json NEW.json [threshold_pct]}"
    new="${3:?usage: bench.sh --compare OLD.json NEW.json [threshold_pct]}"
    threshold="${4:-15}"
    { extract_ns "$old" | sed 's/^/old /'; extract_ns "$new" | sed 's/^/new /'; } | awk -v threshold="$threshold" -v old="$old" -v new="$new" '
    $1 == "old" { was[$2] = $3 }
    $1 == "new" { now[$2] = $3; order[n++] = $2 }
    END {
        printf "bench trend: %s -> %s (threshold +%g%% ns/op)\n", old, new, threshold
        bad = 0; shared = 0
        for (i = 0; i < n; i++) {
            name = order[i]
            if (!(name in was)) { printf "  new       %-46s %12.0f ns/op\n", name, now[name]; continue }
            shared++
            pct = (now[name] - was[name]) / was[name] * 100
            flag = "ok"
            if (pct > threshold) { flag = "REGRESSED"; bad++ }
            printf "  %-9s %-46s %12.0f -> %12.0f ns/op (%+6.1f%%)\n", flag, name, was[name], now[name], pct
        }
        if (shared == 0) { print "  no shared benchmarks to compare" >"/dev/stderr"; exit 2 }
        if (bad > 0) { printf "%d benchmark(s) regressed beyond +%g%%\n", bad, threshold >"/dev/stderr"; exit 1 }
        print "no ns/op regression beyond threshold"
    }'
    exit $?
fi

out="${1:-BENCH_$(date +%Y%m%d).json}"
benchtime="${2:-3x}"
pattern='BenchmarkTable1TraceSuite$|BenchmarkMeasureSuiteWorkers|BenchmarkLongTraceWorkers|BenchmarkIntervalSplitter|BenchmarkTraceStreaming|BenchmarkTraceGeneration|BenchmarkTraceGenerationSharded|BenchmarkWindowReplayDeepOffset|BenchmarkFlowMeasurement|BenchmarkRateBinning|BenchmarkModelAveragedVariance'

cd "$(dirname "$0")/.."

raw=$(go test -run=NONE -bench="$pattern" -benchtime="$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    n = 0
}
$1 ~ /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' > "$out"

echo "wrote $out" >&2
