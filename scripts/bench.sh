#!/usr/bin/env sh
# Runs the headline pipeline benchmarks and emits one JSON document with
# ns/op, B/op and allocs/op per benchmark, seeding the perf trajectory
# (compare successive BENCH_*.json to see the suite speed over PRs).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
set -eu

out="${1:-BENCH_$(date +%Y%m%d).json}"
benchtime="${2:-3x}"
pattern='BenchmarkTable1TraceSuite$|BenchmarkMeasureSuiteWorkers|BenchmarkIntervalSplitter|BenchmarkTraceStreaming|BenchmarkTraceGeneration|BenchmarkFlowMeasurement|BenchmarkRateBinning|BenchmarkModelAveragedVariance'

cd "$(dirname "$0")/.."

raw=$(go test -run=NONE -bench="$pattern" -benchtime="$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    n = 0
}
$1 ~ /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' > "$out"

echo "wrote $out" >&2
