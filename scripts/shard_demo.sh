#!/usr/bin/env sh
# Demonstrates the cross-process measurement contract of the trace store:
# two `experiments -shard i/N` processes measure disjoint trace subsets
# (here from pre-generated .fstore files, though sharding works against
# synthesis too), their shard files are merged by a third process, and the
# merged suite output is byte-identical to a single-process run with the
# same flags.
#
# Usage:
#   scripts/shard_demo.sh [workdir]
#
# With no workdir a temp dir is used and cleaned up on exit.
set -eu

cd "$(dirname "$0")/.."

work="${1:-}"
if [ -z "$work" ]; then
    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
fi
mkdir -p "$work"

# Tiny suite geometry: the same shape the determinism tests pin, small
# enough that the whole demo runs in seconds.
GEOM="-link 10e6 -interval 20 -perhour 0.2 -maxivl 2 -quiet"
RUN="table1,fig9,fig12"

echo "==> building binaries" >&2
go build -o "$work/tracegen" ./cmd/tracegen
go build -o "$work/experiments" ./cmd/experiments

echo "==> generating suite stores (tracegen -store)" >&2
mkdir -p "$work/stores"
i=1
while [ "$i" -le 7 ]; do
    "$work/tracegen" -store -trace "$i" -link 10e6 -interval 20 \
        -perhour 0.2 -maxivl 2 -seed 0 \
        -o "$work/stores/trace-$i.fstore" >&2
    i=$((i + 1))
done

echo "==> measuring shards 0/2 and 1/2 in separate processes" >&2
# shellcheck disable=SC2086
"$work/experiments" $GEOM -store "$work/stores" \
    -shard 0/2 -shard-out "$work/s0.shard" &
pid0=$!
# shellcheck disable=SC2086
"$work/experiments" $GEOM -store "$work/stores" \
    -shard 1/2 -shard-out "$work/s1.shard" &
pid1=$!
wait "$pid0"
wait "$pid1"

echo "==> merging shards and rendering" >&2
# shellcheck disable=SC2086
"$work/experiments" $GEOM -store "$work/stores" \
    -shard-merge "$work/s0.shard,$work/s1.shard" -run "$RUN" > "$work/merged.txt"

echo "==> single-process reference run" >&2
# shellcheck disable=SC2086
"$work/experiments" $GEOM -store "$work/stores" -run "$RUN" > "$work/single.txt"

if ! cmp "$work/merged.txt" "$work/single.txt"; then
    echo "FAIL: merged shard output differs from the single-process run" >&2
    exit 1
fi
echo "OK: merged shard output is byte-identical to the single-process run ($(wc -c < "$work/merged.txt") bytes)"
