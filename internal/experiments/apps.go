package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/mginf"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// refModel builds a model from the reference interval's 5-tuple flows.
func (r *Runner) refModel(shot core.Shot) (*core.Model, core.Input, error) {
	_, res5, _, err := r.RefInterval()
	if err != nil {
		return nil, core.Input{}, err
	}
	in, err := core.InputFromFlows(res5.Flows, r.specs[0].IntervalSec)
	if err != nil {
		return nil, core.Input{}, err
	}
	m, err := in.Model(shot)
	return m, in, err
}

// AppA reproduces the §VII-A application: Gaussian link dimensioning and
// the 1/√λ smoothing law. The dimensioning table gives the capacity needed
// for a target congestion probability; the sweep scales λ (more customers,
// same flow mix) and shows the CoV shrink as 1/√λ, i.e. the ISP does not
// need to scale capacity linearly with load.
func (r *Runner) AppA(w io.Writer) error {
	sep(w, "Application A (§VII-A) — dimensioning & provisioning")
	m, in, err := r.refModel(core.Parabolic)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fitted interval: λ=%.1f flows/s, E[S]=%.1f kbit, E[S²/D]=%.3g bit²/s\n",
		in.Lambda, in.MeanS/1e3, in.MeanS2OverD)
	fmt.Fprintf(w, "mean rate %.2f Mb/s, σ %.2f Mb/s, CoV %.1f%%\n",
		m.Mean()/1e6, m.StdDev()/1e6, m.CoV()*100)
	fmt.Fprintf(w, "%12s %14s %12s\n", "congestion ε", "capacity(Mb/s)", "headroom(%)")
	for _, eps := range []float64{0.1, 0.05, 0.01, 1e-3, 1e-4} {
		c, err := m.Bandwidth(eps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%12.4f %14.2f %12.1f\n", eps, c/1e6, 100*(c-m.Mean())/m.Mean())
	}
	fmt.Fprintln(w, "\nsmoothing with load (same flow mix, λ scaled):")
	fmt.Fprintf(w, "%8s %12s %10s %14s %16s\n",
		"λ×", "mean(Mb/s)", "CoV(%)", "C(ε=1%)Mb/s", "C/mean (≤ linear)")
	base := m.Lambda
	for _, mult := range []float64{1, 2, 4, 8, 16} {
		// Same population, scaled arrival rate: share the columns and moments
		// instead of re-validating and re-summing the flows per sweep point.
		scaled, err := m.WithLambda(base * mult)
		if err != nil {
			return err
		}
		c, err := scaled.Bandwidth(0.01)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8.0f %12.2f %10.2f %14.2f %16.3f\n",
			mult, scaled.Mean()/1e6, scaled.CoV()*100, c/1e6, c/scaled.Mean())
	}
	fmt.Fprintln(w, "CoV halves per λ×4 (∝ 1/√λ): capacity can grow sub-linearly with load")
	return nil
}

// AppC reproduces the §VII-C application: generate traffic from the fitted
// model and verify that the generated process carries the model's first two
// moments and correlation — and that rectangular-shot generation (the naive
// constant-rate generator) under-estimates the variance.
func (r *Runner) AppC(w io.Writer, seed int64) error {
	sep(w, "Application C (§VII-C) — backbone traffic generation")
	m, in, err := r.refModel(core.Parabolic)
	if err != nil {
		return err
	}
	duration := 4 * r.specs[0].IntervalSec
	cfg := gen.FromModel(m, duration, 30, seed)
	fluid, err := gen.FluidSeries(cfg, r.opts.Delta)
	if err != nil {
		return err
	}
	recs, err := gen.Packets(cfg, 500)
	if err != nil {
		return err
	}
	pktSeries, err := timeseries.Bin(recs, duration, r.opts.Delta)
	if err != nil {
		return err
	}
	modelVarDelta, err := m.AveragedVariance(r.opts.Delta)
	if err != nil {
		return err
	}
	modelCoV := math.Sqrt(modelVarDelta) / m.Mean()
	fmt.Fprintf(w, "%-22s %12s %10s\n", "process", "mean(Mb/s)", "CoV(%)")
	fmt.Fprintf(w, "%-22s %12.2f %10.2f\n", "model (eq.7 at Δ)", m.Mean()/1e6, modelCoV*100)
	fmt.Fprintf(w, "%-22s %12.2f %10.2f\n", "generated fluid", fluid.Mean()/1e6, fluid.CoV()*100)
	fmt.Fprintf(w, "%-22s %12.2f %10.2f\n", "generated packets", pktSeries.Mean()/1e6, pktSeries.CoV()*100)
	// Naive constant-rate generation: same (S, D) but rectangular shots.
	rectCfg := cfg
	rectCfg.Shot = core.Rectangular
	rect, err := gen.FluidSeries(rectCfg, r.opts.Delta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s %12.2f %10.2f  <- naive generator under-estimates burstiness\n",
		"rect (naive) fluid", rect.Mean()/1e6, rect.CoV()*100)
	// Correlation structure: generated ACF vs Theorem 2.
	fmt.Fprintf(w, "%10s %12s %12s\n", "tau(ms)", "model ρ", "generated ρ")
	acf := fluid.AutoCorrelation(5)
	for k := 0; k <= 5; k++ {
		tau := float64(k) * r.opts.Delta
		fmt.Fprintf(w, "%10.0f %12.3f %12.3f\n", tau*1e3, m.AutoCorrelation(tau), acf[k])
	}
	_ = in
	return nil
}

// AblationShots quantifies the shot-shape design choice: the variance
// multiplier K(b) against the Theorem 3 lower bound, on the reference
// interval's flow population.
func (r *Runner) AblationShots(w io.Writer) error {
	sep(w, "Ablation — shot shape vs variance (Theorem 3 ordering)")
	_, in, err := r.refModel(core.Rectangular)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %14s %14s %10s\n", "b", "Var(bit²/s²)", "Var/bound", "K(b)")
	var prev float64
	for _, b := range []float64{0, 0.5, 1, 1.5, 2, 3, 4} {
		m, err := in.Model(core.PowerShot{B: b})
		if err != nil {
			return err
		}
		v := m.Variance()
		ratio := v / m.VarianceLowerBound()
		fmt.Fprintf(w, "%8.1f %14.4g %14.4f %10.4f\n", b, v, ratio, core.PowerShot{B: b}.VarianceFactor())
		if v < prev {
			return fmt.Errorf("experiments: variance not increasing in b at %g", b)
		}
		prev = v
	}
	fmt.Fprintln(w, "rectangular (b=0) attains the Theorem 3 lower bound; variance grows with b")
	return nil
}

// AblationBaseline compares against the constant-rate M/G/∞ baseline of the
// paper's related work [3]: all flows at the same rate E[S]/E[D]. It
// under-estimates the variance whenever flow rates are heterogeneous.
func (r *Runner) AblationBaseline(w io.Writer) error {
	sep(w, "Ablation — constant-rate M/G/∞ baseline ([3]) vs shot-noise model")
	m, in, err := r.refModel(core.Parabolic)
	if err != nil {
		return err
	}
	var sumD float64
	for _, f := range in.Samples {
		sumD += f.D
	}
	meanD := sumD / float64(len(in.Samples))
	meanRate := in.MeanS / meanD
	e, err := dist.NewExponential(1 / meanD)
	if err != nil {
		return err
	}
	q, err := mginf.New(in.Lambda, e)
	if err != nil {
		return err
	}
	baselineVar := q.ConstantRateVariance(meanRate)
	sts, err := r.Stats(flow.By5Tuple)
	if err != nil {
		return err
	}
	ref := sts[0]
	fmt.Fprintf(w, "mean active flows (M/G/∞ load): %.1f\n", q.Load())
	fmt.Fprintf(w, "%-34s %14s %10s\n", "model", "Var(bit²/s²)", "CoV(%)")
	mu := m.Mean()
	rows := []struct {
		name string
		v    float64
	}{
		{"constant-rate baseline (r=E[S]/E[D])", baselineVar},
		{"rectangular shots (Theorem 3 bound)", m.VarianceLowerBound()},
		{"parabolic shots (b=2)", m.Variance()},
		{"measured (interval 0)", ref.MeasVar},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-34s %14.4g %10.2f\n", row.name, row.v, 100*math.Sqrt(row.v)/mu)
	}
	if !(baselineVar < m.VarianceLowerBound()) {
		fmt.Fprintln(w, "note: baseline exceeds the heterogeneous-rate bound on this mix")
	}
	fmt.Fprintln(w, "the identical-rate baseline misses rate heterogeneity and under-estimates burstiness")
	return nil
}

// AblationDelta sweeps the averaging interval Δ: eq. (7) predicts how the
// measured variance shrinks as the rate is averaged over longer windows,
// and the measured series must track it.
func (r *Runner) AblationDelta(w io.Writer) error {
	sep(w, "Ablation — averaging interval Δ vs variance (eq. 7)")
	m, _, err := r.refModel(core.Parabolic)
	if err != nil {
		return err
	}
	win, res5, _, err := r.RefInterval()
	if err != nil {
		return err
	}
	interval := r.specs[0].IntervalSec
	base, err := timeseries.BinStream(win.Records(), interval, 0.05)
	if err != nil {
		return err
	}
	base.Subtract(res5.Discarded)
	v0 := m.Variance()
	fmt.Fprintf(w, "instantaneous model σ: %.3f Mb/s\n", math.Sqrt(v0)/1e6)
	fmt.Fprintf(w, "%10s %16s %16s\n", "Δ(ms)", "model σ_Δ/σ", "measured σ_Δ/σ_50ms")
	meas50 := math.Sqrt(base.Variance())
	// One population pass for the whole Δ-sweep: the batch face shares the
	// columns across the per-Δ kernels (bit-identical to per-Δ calls).
	ks := []int{1, 2, 4, 8, 16, 40, 100}
	deltas := make([]float64, len(ks))
	for i, k := range ks {
		deltas[i] = 0.05 * float64(k)
	}
	mvs, err := m.AveragedVarianceBatch(deltas)
	if err != nil {
		return err
	}
	for i, k := range ks {
		down, err := base.Downsample(k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10.0f %16.4f %16.4f\n",
			deltas[i]*1e3, math.Sqrt(mvs[i]/v0), math.Sqrt(down.Variance())/meas50)
	}
	fmt.Fprintln(w, "both decay with Δ; the model's eq. (7) anticipates the measured smoothing")
	return nil
}

// AblationSplit quantifies the interval-boundary flow splitting artefact
// (§III): flow counts and model inputs with and without splitting.
func (r *Runner) AblationSplit(w io.Writer) error {
	sep(w, "Ablation — interval-boundary flow splitting (§III)")
	if err := r.measureSuite(); err != nil {
		return err
	}
	spec := r.specs[0]
	cfg := spec.Config()
	cfg.Warmup = 60
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		return err
	}
	for _, def := range []flow.Definition{flow.By5Tuple, flow.ByPrefix24} {
		split, err := flow.MeasureIntervals(recs, def, spec.IntervalSec, flow.DefaultTimeout)
		if err != nil {
			return err
		}
		span, err := flow.MeasureSpanning(recs, def, spec.IntervalSec, flow.DefaultTimeout)
		if err != nil {
			return err
		}
		var nSplit, nSpan int
		for _, iv := range split {
			nSplit += len(iv.Flows)
		}
		for _, iv := range span {
			nSpan += len(iv.Flows)
		}
		extra := nSplit - nSpan
		cov := func(flows []flow.Flow) float64 {
			in, err := core.InputFromFlows(flows, spec.IntervalSec)
			if err != nil {
				return 0
			}
			return core.CoVFromParams(in.Lambda, in.MeanS, in.MeanS2OverD, core.Rectangular)
		}
		fmt.Fprintf(w, "%s flows:\n", def)
		fmt.Fprintf(w, "  with splitting %d, without %d => %d extra (%.1f%%)\n",
			nSplit, nSpan, extra, 100*float64(extra)/float64(nSpan))
		fmt.Fprintf(w, "  model CoV (rect) of interval 0: split %.2f%%, unsplit %.2f%%\n",
			cov(split[0].Flows)*100, cov(span[0].Flows)*100)
	}
	fmt.Fprintln(w, "for 5-tuple flows the artefact is marginal (the paper's claim);")
	fmt.Fprintln(w, "for prefix flows at our scaled-down intervals it is visible — long-lived")
	fmt.Fprintln(w, "prefix aggregates span several short intervals, so the model inputs depend")
	fmt.Fprintln(w, "on the splitting convention (the paper's 30-minute intervals hide this)")
	return nil
}

// AblationSmoothing verifies the 1/√λ law empirically across the suite's
// utilisation clusters: measured CoV·√(mean rate) should be roughly flat.
func (r *Runner) AblationSmoothing(w io.Writer) error {
	sep(w, "Ablation — smoothing across utilisation clusters (CoV ∝ 1/√λ)")
	sts, err := r.Stats(flow.By5Tuple)
	if err != nil {
		return err
	}
	type agg struct {
		cov, lam stats.Moments
	}
	byTrace := map[string]*agg{}
	order := []string{}
	for _, s := range sts {
		a, ok := byTrace[s.Trace]
		if !ok {
			a = &agg{}
			byTrace[s.Trace] = a
			order = append(order, s.Trace)
		}
		a.cov.Add(s.MeasCoV)
		a.lam.Add(s.Lambda)
	}
	fmt.Fprintf(w, "%-9s %10s %10s %16s\n", "trace", "λ̂(fl/s)", "CoV(%)", "CoV·√λ (≈const)")
	for _, name := range order {
		a := byTrace[name]
		fmt.Fprintf(w, "%-9s %10.1f %10.2f %16.3f\n",
			name, a.lam.Mean(), a.cov.Mean()*100, a.cov.Mean()*math.Sqrt(a.lam.Mean()))
	}
	return nil
}

// AblationLRD examines the self-similarity question of the paper's §II: a
// Poisson shot-noise with *bounded* flow sizes/durations is short-range
// dependent (aggregation smooths it, eq. 7 works), while heavy-tailed
// durations push the Hurst parameter up — the Leland/Paxson mechanism the
// paper cites. The estimator is the aggregated-variance method on the
// measured 50 ms rate series.
func (r *Runner) AblationLRD(w io.Writer) error {
	sep(w, "Ablation — range dependence of the generated traffic (§II)")
	win, _, _, err := r.RefInterval()
	if err != nil {
		return err
	}
	interval := r.specs[0].IntervalSec
	series, err := timeseries.BinStream(win.Records(), interval, 0.05)
	if err != nil {
		return err
	}
	h, err := stats.HurstAggregatedVariance(series.Rate, 16)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "suite traffic (bounded Pareto sizes, α=1.3): H ≈ %.2f\n", h)
	switch {
	case h < 0.65:
		fmt.Fprintln(w, "short-range dependent: rate averaging smooths the traffic freely (eq. 7)")
	case h < 0.9:
		fmt.Fprintln(w, "moderately bursty: the heavy-tailed flow-size body raises H above the")
		fmt.Fprintln(w, "Poisson 0.5, but averaging still reduces variance (eq. 7 applies)")
	default:
		fmt.Fprintln(w, "strongly self-similar: the paper's footnote 2 caveat applies — averaging")
		fmt.Fprintln(w, "will not reduce the burstiness and eq. 7 gives little smoothing")
	}
	fmt.Fprintln(w, "(heavier size tails push H toward 1, the Leland/Paxson mechanism of §II)")
	return nil
}
