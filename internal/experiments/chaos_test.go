package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/membudget"
	"repro/internal/trace"
)

// checkNoLeaks asserts the chaos run left nothing behind: every pooled
// block returned (exact, immediate) and the goroutine count settles back
// to its pre-run level (polled — workers may still be on their final
// instructions when the pass returns).
func checkNoLeaks(t *testing.T, baseBlocks int64, baseGoroutines int) {
	t.Helper()
	if got := trace.LiveBlocks(); got != baseBlocks {
		t.Fatalf("leaked %d pool blocks", got-baseBlocks)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseGoroutines {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runSuite runs the full suite-output render (Table I + Fig 9 + Fig 12)
// without failing the test on error, so chaos runs can assert on the error.
func runSuite(o Options) (string, error) {
	r, err := NewRunner(o)
	if err != nil {
		return "", err
	}
	var buf stringsBuilder
	for _, f := range []func(*Runner) error{
		func(r *Runner) error { return r.Table1(&buf) },
		func(r *Runner) error { return r.Fig9(&buf) },
		func(r *Runner) error { return r.Fig12(&buf) },
	} {
		if err := f(r); err != nil {
			return buf.String(), err
		}
	}
	return buf.String(), nil
}

// stringsBuilder is a minimal io.Writer accumulator (strings.Builder is
// fine too; this keeps the chaos file self-contained about what it writes).
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }

// Zero injected faults — with the harness fully wired (block hook, memory
// budget, cancellable context) — must be byte-identical to the plain run
// at every workers/genworkers/block-size combination. Delay-only faults
// ride along in one combo: scheduler jitter must never change the science.
func TestChaosZeroFaultOutputIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping chaos suite in -short mode")
	}
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	golden, err := runSuite(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("golden run produced no output")
	}
	combos := []struct {
		name       string
		workers    int
		genWorkers int
		blockSize  int
		budget     int64
		delay      bool
	}{
		{"wired-sequential", 1, 0, 0, 1 << 20, false},
		{"parallel-budget", 4, 4, 17, 1 << 16, false},
		{"one-block-budget", 2, 2, 1, 1, false},
		{"delay-jitter", 4, 2, 64, 1 << 20, true},
	}
	for _, c := range combos {
		t.Run(c.name, func(t *testing.T) {
			cfg := faultinject.Config{Seed: 99}
			if c.delay {
				cfg.DelayProb = 0.2
				cfg.Delay = 200 * time.Microsecond
			}
			in, err := faultinject.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			o := tinyOptions()
			o.Workers = c.workers
			o.GenWorkers = c.genWorkers
			o.blockSize = c.blockSize
			o.MemBudgetBytes = c.budget
			o.Context = context.Background()
			o.wrapBlocks = in.WrapBlockFn
			got, err := runSuite(o)
			if err != nil {
				t.Fatal(err)
			}
			if got != golden {
				t.Fatal("harness-wired run differs from golden output")
			}
		})
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// Injected stage errors must surface as wrapped errors (never a panic, so
// the suite keeps running other passes) and unwind cleanly: all blocks
// recycled, all goroutines gone.
func TestChaosInjectedErrorsUnwindCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping chaos suite in -short mode")
	}
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	for _, errAfter := range []int64{1, 2, 7} {
		for _, workers := range []int{1, 4} {
			in, err := faultinject.New(faultinject.Config{Seed: 5, ErrAfter: errAfter})
			if err != nil {
				t.Fatal(err)
			}
			o := tinyOptions()
			o.Workers = workers
			o.GenWorkers = 2
			o.wrapBlocks = in.WrapBlockFn
			_, err = runSuite(o)
			if err == nil {
				t.Fatalf("errAfter=%d workers=%d: run succeeded despite injected errors", errAfter, workers)
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("errAfter=%d workers=%d: error %v does not wrap ErrInjected", errAfter, workers, err)
			}
			if s := in.Stats(); s.Errors == 0 {
				t.Fatalf("errAfter=%d: injector recorded no errors", errAfter)
			}
		}
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// Random fault storms (errors + truncations + delays) across seeds: the
// pipeline must never panic and never leak, and any failure must be an
// injected one, not a secondary bug shaken loose by the unwinding.
func TestChaosRandomFaultStormNeverPanics(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping chaos suite in -short mode")
	}
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	for seed := int64(1); seed <= 5; seed++ {
		in, err := faultinject.New(faultinject.Config{
			Seed:      seed,
			ErrProb:   0.02,
			TruncProb: 0.1,
			DelayProb: 0.05,
			Delay:     100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		o := tinyOptions()
		o.Workers = 4
		o.GenWorkers = 2
		o.MemBudgetBytes = 1 << 16
		o.wrapBlocks = in.WrapBlockFn
		if _, err := runSuite(o); err != nil && !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("seed %d: non-injected failure %v", seed, err)
		}
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// Cancelling the pass context mid-run must stop the pipeline with an error
// wrapping the context error — producers unwind, workers drain, nothing
// wedges or leaks.
func TestChaosCancellationMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping chaos suite in -short mode")
	}
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	for _, cancelAt := range []int64{0, 2, 20} {
		ctx, cancel := context.WithCancel(context.Background())
		var blocks atomic.Int64
		o := tinyOptions()
		o.Workers = 4
		o.GenWorkers = 2
		o.Context = ctx
		if cancelAt == 0 {
			cancel() // cancelled before the pass even starts
		} else {
			o.wrapBlocks = func(stage string, fn func(*trace.Block) error) func(*trace.Block) error {
				return func(b *trace.Block) error {
					if blocks.Add(1) == cancelAt {
						cancel()
					}
					return fn(b)
				}
			}
		}
		_, err := runSuite(o)
		cancel()
		if err == nil {
			t.Fatalf("cancelAt=%d: cancelled run reported success", cancelAt)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelAt=%d: error %v does not wrap context.Canceled", cancelAt, err)
		}
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// Load shedding with a budget that refuses every reservation: all
// record-bearing intervals must be dropped, counted exactly — per trace,
// both intervals shed, and the shed record totals must equal the packets
// the generators produced (nothing dropped silently, nothing double
// counted). The pass itself succeeds: shedding is visible degradation,
// not failure.
func TestChaosShedCountersExact(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping chaos suite in -short mode")
	}
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	in, err := faultinject.New(faultinject.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Workers = 3
	o.Shed = true
	// Every reservation refused from the first on: maximal shedding.
	o.wrapBudget = func(inner membudget.Reserver) membudget.Reserver {
		return in.WrapBudget(inner, 1)
	}
	r, err := NewRunner(o)
	if err != nil {
		t.Fatal(err)
	}
	shed, err := r.ShedStats()
	if err != nil {
		t.Fatal(err)
	}
	summaries, err := r.Summaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(shed) != len(summaries) {
		t.Fatalf("%d shed entries for %d traces", len(shed), len(summaries))
	}
	for i, s := range shed {
		// Every interval of every trace carries records at this link rate,
		// so with all reservations refused every interval must be shed.
		if want := int64(r.Specs()[i].Intervals); s.Intervals != want {
			t.Fatalf("trace %s: %d intervals shed, want all %d", s.Trace, s.Intervals, want)
		}
		if s.Records != summaries[i].Packets {
			t.Fatalf("trace %s: %d records shed, generator produced %d", s.Trace, s.Records, summaries[i].Packets)
		}
	}
	// Every interval shed means no scatter points anywhere.
	if stats, err := r.Stats(suiteDefs[0]); err != nil {
		t.Fatal(err)
	} else if len(stats) != 0 {
		t.Fatalf("%d scatter points survived a fully-shed pass", len(stats))
	}
	if fails := in.Stats().AllocFailures; fails == 0 {
		t.Fatal("budget faulter recorded no allocation failures")
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}
