// Cross-process suite sharding. A shard runner (Options.ShardIndex/
// ShardCount) measures a disjoint subset of the suite's traces; ExportShard
// persists its measurements — per-trace summaries, shed accounting, every
// scatter point, and the reference-interval flow results when the shard owns
// trace 0 — as one CRC-framed file, and MergeShards reassembles a full
// runner from the shard files of all N processes. The merged runner renders
// byte-identical output to a single-process pass: the measurement slots are
// refilled in exactly the order measureSuite merges them, and everything a
// shard cannot know locally (trace names, target rates, link capacity) is
// re-derived from the suite specs instead of trusted from the file.
//
// Rendering is what forces a merge step: the scatter figures draw aggregate
// model lines across *all* traces, so concatenating per-shard rendered
// output could never equal the single-process pass — the raw measurements
// have to be reunited first.
package experiments

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"repro/internal/flow"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// shardMagic heads a shard export file; the trailing byte is the format
// version.
const shardMagic = "FLOWSHD\x01"

// shardFrame is the single frame type of a shard file.
const shardFrame = 1

// defIndex maps a flow definition back to its suiteDefs slot.
func defIndex(def flow.Definition) int {
	for di, d := range suiteDefs {
		if d == def {
			return di
		}
	}
	return -1
}

func encodeResult(e *snapshot.Enc, res flow.Result) {
	e.U64(uint64(len(res.Flows)))
	for _, f := range res.Flows {
		e.F64(f.Start)
		e.F64(f.End)
		e.I64(f.Bytes)
		e.I64(int64(f.Packets))
	}
	e.U64(uint64(len(res.Discarded)))
	for _, d := range res.Discarded {
		e.F64(d.Time)
		e.F64(d.Bits)
	}
}

func decodeResult(d *snapshot.Dec) flow.Result {
	var res flow.Result
	nf := d.U64()
	if d.Err() != nil || nf > uint64(d.Rest()/32) {
		return res
	}
	for i := uint64(0); i < nf; i++ {
		res.Flows = append(res.Flows, flow.Flow{
			Start:   d.F64(),
			End:     d.F64(),
			Bytes:   d.I64(),
			Packets: int(d.I64()),
		})
	}
	nd := d.U64()
	if d.Err() != nil || nd > uint64(d.Rest()/16) {
		return res
	}
	for i := uint64(0); i < nd; i++ {
		res.Discarded = append(res.Discarded, flow.DiscardedPacket{Time: d.F64(), Bits: d.F64()})
	}
	return res
}

// ExportShard measures this runner's shard (if it has not already) and
// writes its share of the suite to path. The file carries only what the
// merging process cannot re-derive from the shared suite options.
func (r *Runner) ExportShard(path string) error {
	if err := r.measureSuite(); err != nil {
		return err
	}
	// Regroup the flattened stats cache by trace.
	byTrace := map[string][]IntervalStat{}
	for _, s := range r.stats {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	e := &snapshot.Enc{}
	e.U64(uint64(r.opts.ShardIndex))
	e.U64(uint64(r.opts.ShardCount))
	e.U64(uint64(len(r.specs)))
	// Suite fingerprint: a merge across mismatched geometries must fail
	// loudly, not produce a subtly wrong composite.
	e.F64(r.linkBps())
	e.F64(r.specs[0].IntervalSec)
	e.F64(r.opts.Delta)
	e.I64(r.opts.Suite.Seed)
	var owned []int
	for ti := range r.specs {
		if r.ownsTrace(ti) {
			owned = append(owned, ti)
		}
	}
	e.U64(uint64(len(owned)))
	for _, ti := range owned {
		e.U64(uint64(ti))
		sum := r.summaries[ti]
		e.I64(sum.Flows)
		e.I64(sum.Packets)
		e.I64(sum.Bytes)
		e.F64(sum.Duration)
		e.F64(sum.AvgRateBps)
		e.F64(sum.FlowRate)
		e.I64(sum.OnePktFlows)
		e.I64(r.shed[ti].Intervals)
		e.I64(r.shed[ti].Records)
		stats := byTrace[r.specs[ti].Name]
		e.U64(uint64(len(stats)))
		for _, s := range stats {
			e.U64(uint64(s.Index))
			e.U64(uint64(defIndex(s.Def)))
			e.I64(int64(s.FlowCount))
			e.I64(int64(s.Discarded))
			e.F64(s.MeasMean)
			e.F64(s.MeasVar)
			e.F64(s.MeasCoV)
			e.F64(s.Lambda)
			e.F64(s.MeanS)
			e.F64(s.MeanS2oD)
			e.F64(s.FittedBRaw)
			bs := make([]int, 0, len(s.ModelCoV))
			//repro:nondeterminism-ok keys are collected then sorted before any byte is encoded
			for b := range s.ModelCoV {
				bs = append(bs, b)
			}
			sort.Ints(bs)
			e.U64(uint64(len(bs)))
			for _, b := range bs {
				e.I64(int64(b))
				e.F64(s.ModelCoV[b])
			}
		}
		if ti == 0 {
			e.Bool(true)
			encodeResult(e, r.refRes5)
			encodeResult(e, r.refResP)
		} else {
			e.Bool(false)
		}
	}
	var buf bytes.Buffer
	buf.WriteString(shardMagic)
	if err := snapshot.WriteFrame(&buf, shardFrame, 0, e.Bytes()); err != nil {
		return fmt.Errorf("experiments: shard export: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("experiments: shard export: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("experiments: shard export: %w", err)
	}
	return nil
}

// shardData is one decoded shard file.
type shardData struct {
	path       string
	shardCount int
	traces     map[int]*shardTrace
}

type shardTrace struct {
	summary trace.Summary
	shed    TraceShed
	stats   []IntervalStat // Trace/TargetBps/linkBps filled by the merger
	hasRef  bool
	refRes5 flow.Result
	refResP flow.Result
}

func readShard(path string, nspecs int, link, intervalSec, delta float64, seed int64) (*shardData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if len(raw) < len(shardMagic) || string(raw[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("experiments: %s is not a shard export: %w", path, snapshot.ErrCorrupt)
	}
	typ, _, payload, _, err := snapshot.ReadFrameAt(raw, len(shardMagic))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", path, err)
	}
	if typ != shardFrame {
		return nil, fmt.Errorf("experiments: %s holds frame type %d: %w", path, typ, snapshot.ErrCorrupt)
	}
	d := snapshot.NewDec(payload)
	d.U64() // shard index (informational; coverage is checked per trace)
	sd := &shardData{path: path, shardCount: int(d.U64()), traces: map[int]*shardTrace{}}
	if n := d.U64(); int(n) != nspecs {
		return nil, fmt.Errorf("experiments: %s measured a %d-trace suite, this one has %d", path, n, nspecs)
	}
	if l, iv, dl, sd2 := d.F64(), d.F64(), d.F64(), d.I64(); l != link || iv != intervalSec || dl != delta || sd2 != seed {
		return nil, fmt.Errorf("experiments: %s measured a different suite geometry (link %g, interval %g, delta %g, seed %d)", path, l, iv, dl, sd2)
	}
	nOwned := d.U64()
	for i := uint64(0); i < nOwned && d.Err() == nil; i++ {
		ti := int(d.U64())
		st := &shardTrace{}
		st.summary = trace.Summary{
			Flows:       d.I64(),
			Packets:     d.I64(),
			Bytes:       d.I64(),
			Duration:    d.F64(),
			AvgRateBps:  d.F64(),
			FlowRate:    d.F64(),
			OnePktFlows: d.I64(),
		}
		st.shed = TraceShed{Intervals: d.I64(), Records: d.I64()}
		nStats := d.U64()
		if d.Err() != nil || nStats > uint64(d.Rest()/96) {
			return nil, fmt.Errorf("experiments: %s truncated: %w", path, snapshot.ErrCorrupt)
		}
		for j := uint64(0); j < nStats; j++ {
			s := IntervalStat{Index: int(d.U64())}
			di := int(d.U64())
			if di < 0 || di >= len(suiteDefs) {
				return nil, fmt.Errorf("experiments: %s names unknown flow definition %d: %w", path, di, snapshot.ErrCorrupt)
			}
			s.Def = suiteDefs[di]
			s.FlowCount = int(d.I64())
			s.Discarded = int(d.I64())
			s.MeasMean = d.F64()
			s.MeasVar = d.F64()
			s.MeasCoV = d.F64()
			s.Lambda = d.F64()
			s.MeanS = d.F64()
			s.MeanS2oD = d.F64()
			s.FittedBRaw = d.F64()
			s.ModelCoV = map[int]float64{}
			nm := d.U64()
			if d.Err() != nil || nm > uint64(d.Rest()/16) {
				return nil, fmt.Errorf("experiments: %s truncated: %w", path, snapshot.ErrCorrupt)
			}
			for k := uint64(0); k < nm; k++ {
				b := int(d.I64())
				s.ModelCoV[b] = d.F64()
			}
			st.stats = append(st.stats, s)
		}
		if d.Bool() {
			st.hasRef = true
			st.refRes5 = decodeResult(d)
			st.refResP = decodeResult(d)
		}
		if _, dup := sd.traces[ti]; dup {
			return nil, fmt.Errorf("experiments: %s carries trace %d twice: %w", path, ti, snapshot.ErrCorrupt)
		}
		sd.traces[ti] = st
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("experiments: %s truncated: %w", path, snapshot.ErrCorrupt)
	}
	if d.Rest() != 0 {
		return nil, fmt.Errorf("experiments: %s has %d trailing bytes: %w", path, d.Rest(), snapshot.ErrCorrupt)
	}
	return sd, nil
}

// MergeShards loads shard export files into this (unmeasured) runner,
// reassembling the full suite measurement. The shards must jointly cover
// every trace exactly once and have been measured under this runner's suite
// geometry. After a successful merge the runner behaves exactly as if it had
// measured the whole suite itself — every table and figure renders
// byte-identically to a single-process pass.
func (r *Runner) MergeShards(paths ...string) error {
	if r.measured {
		return fmt.Errorf("experiments: runner already measured; merge needs a fresh runner")
	}
	if len(paths) == 0 {
		return fmt.Errorf("experiments: no shard files to merge")
	}
	byTrace := map[int]*shardTrace{}
	shardCount := -1
	for _, path := range paths {
		sd, err := readShard(path, len(r.specs), r.linkBps(), r.specs[0].IntervalSec, r.opts.Delta, r.opts.Suite.Seed)
		if err != nil {
			return err
		}
		if shardCount == -1 {
			shardCount = sd.shardCount
		} else if sd.shardCount != shardCount {
			return fmt.Errorf("experiments: %s is a 1-of-%d shard, earlier files were 1-of-%d", path, sd.shardCount, shardCount)
		}
		// Sorted keys: a malformed file's first error is then deterministic.
		tis := make([]int, 0, len(sd.traces))
		//repro:nondeterminism-ok keys are collected then sorted before use
		for ti := range sd.traces {
			tis = append(tis, ti)
		}
		sort.Ints(tis)
		for _, ti := range tis {
			if ti < 0 || ti >= len(r.specs) {
				return fmt.Errorf("experiments: %s carries trace index %d outside the %d-trace suite", path, ti, len(r.specs))
			}
			if _, dup := byTrace[ti]; dup {
				return fmt.Errorf("experiments: trace %d (%s) appears in more than one shard", ti, r.specs[ti].Name)
			}
			byTrace[ti] = sd.traces[ti]
		}
	}
	for ti := range r.specs {
		if _, ok := byTrace[ti]; !ok {
			return fmt.Errorf("experiments: shards do not cover trace %d (%s)", ti, r.specs[ti].Name)
		}
	}
	// Refill the measurement cache in exactly measureSuite's merge order:
	// traces in suite order, each trace's points definition-major then
	// interval-ascending.
	link := r.linkBps()
	for ti := range r.specs {
		st := byTrace[ti]
		spec := r.specs[ti]
		r.summaries = append(r.summaries, st.summary)
		shed := st.shed
		shed.Trace = spec.Name
		r.shed = append(r.shed, shed)
		slots := make([][]*IntervalStat, spec.Intervals)
		for i := range slots {
			slots[i] = make([]*IntervalStat, len(suiteDefs))
		}
		for i := range st.stats {
			s := st.stats[i]
			if s.Index < 0 || s.Index >= spec.Intervals {
				return fmt.Errorf("experiments: shard point at interval %d of %d-interval trace %s", s.Index, spec.Intervals, spec.Name)
			}
			s.Trace = spec.Name
			s.TargetBps = spec.TargetBps
			s.linkBps = link
			slots[s.Index][defIndex(s.Def)] = &s
		}
		for di := range suiteDefs {
			for _, row := range slots {
				if s := row[di]; s != nil {
					r.stats = append(r.stats, *s)
				}
			}
		}
		if ti == 0 {
			if !st.hasRef {
				return fmt.Errorf("experiments: the shard owning trace 0 carries no reference interval")
			}
			r.refRes5 = st.refRes5
			r.refResP = st.refResP
		}
	}
	r.measured = true
	return nil
}
