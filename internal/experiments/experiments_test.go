package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/trace"
)

// tinyOptions keeps the smoke tests fast: a 10 Mb/s link with two 20 s
// intervals per trace.
func tinyOptions() Options {
	return Options{
		Suite: trace.SuiteOptions{
			LinkBps:          10e6,
			IntervalSec:      20,
			IntervalsPerHour: 0.2,
			MaxIntervals:     2,
		},
		Quiet: true,
	}
}

func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerSpecs(t *testing.T) {
	r := newTestRunner(t)
	if len(r.Specs()) != 7 {
		t.Fatalf("suite has %d traces, want 7", len(r.Specs()))
	}
	if r.Delta() != 0.2 {
		t.Fatalf("default delta = %g, want 0.2", r.Delta())
	}
}

// Every experiment must run to completion and produce non-empty output on
// the tiny suite. This is the regression net for the whole harness.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment smoke test in -short mode")
	}
	r := newTestRunner(t)
	cases := []struct {
		name string
		fn   func(*Runner, *bytes.Buffer) error
	}{
		{"table1", func(r *Runner, w *bytes.Buffer) error { return r.Table1(w) }},
		{"fig1", func(r *Runner, w *bytes.Buffer) error { return r.Fig1(w) }},
		{"fig3", func(r *Runner, w *bytes.Buffer) error { return r.Fig3(w) }},
		{"fig4", func(r *Runner, w *bytes.Buffer) error { return r.Fig4(w) }},
		{"fig5", func(r *Runner, w *bytes.Buffer) error { return r.Fig5(w) }},
		{"fig6", func(r *Runner, w *bytes.Buffer) error { return r.Fig6(w) }},
		{"fig7", func(r *Runner, w *bytes.Buffer) error { return r.Fig7(w) }},
		{"fig8", func(r *Runner, w *bytes.Buffer) error { return r.Fig8(w) }},
		{"fig9", func(r *Runner, w *bytes.Buffer) error { return r.Fig9(w) }},
		{"fig10", func(r *Runner, w *bytes.Buffer) error { return r.Fig10(w) }},
		{"fig11", func(r *Runner, w *bytes.Buffer) error { return r.Fig11(w) }},
		{"fig12", func(r *Runner, w *bytes.Buffer) error { return r.Fig12(w) }},
		{"fig13", func(r *Runner, w *bytes.Buffer) error { return r.Fig13(w) }},
		{"table2", func(r *Runner, w *bytes.Buffer) error { return r.Table2(w, 240, 1) }},
		{"fig14", func(r *Runner, w *bytes.Buffer) error { return r.Fig14(w, 240, 1) }},
		{"appA", func(r *Runner, w *bytes.Buffer) error { return r.AppA(w) }},
		{"appC", func(r *Runner, w *bytes.Buffer) error { return r.AppC(w, 2) }},
		{"ablation-shots", func(r *Runner, w *bytes.Buffer) error { return r.AblationShots(w) }},
		{"ablation-baseline", func(r *Runner, w *bytes.Buffer) error { return r.AblationBaseline(w) }},
		{"ablation-delta", func(r *Runner, w *bytes.Buffer) error { return r.AblationDelta(w) }},
		{"ablation-split", func(r *Runner, w *bytes.Buffer) error { return r.AblationSplit(w) }},
		{"ablation-smoothing", func(r *Runner, w *bytes.Buffer) error { return r.AblationSmoothing(w) }},
		{"ablation-lrd", func(r *Runner, w *bytes.Buffer) error { return r.AblationLRD(w) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.fn(r, &buf); err != nil {
				t.Fatalf("%s failed: %v", c.name, err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced no output", c.name)
			}
			if !strings.Contains(out, "===") {
				t.Fatalf("%s missing section header:\n%s", c.name, out)
			}
		})
	}
}

func TestStatsConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	r := newTestRunner(t)
	for _, def := range []flow.Definition{flow.By5Tuple, flow.ByPrefix24} {
		sts, err := r.Stats(def)
		if err != nil {
			t.Fatal(err)
		}
		if len(sts) == 0 {
			t.Fatalf("%s: no interval stats", def)
		}
		for _, s := range sts {
			if s.MeasMean <= 0 || s.MeasCoV <= 0 {
				t.Fatalf("%s %s/%d: degenerate measurement %+v", def, s.Trace, s.Index, s)
			}
			if s.Lambda <= 0 || s.MeanS <= 0 || s.MeanS2oD <= 0 {
				t.Fatalf("%s %s/%d: degenerate model inputs", def, s.Trace, s.Index)
			}
			// Model CoV ordering: K(b) grows with b, so the Δ-averaged CoV
			// must too.
			if !(s.ModelCoV[0] < s.ModelCoV[1] && s.ModelCoV[1] < s.ModelCoV[2]) {
				t.Fatalf("model CoV not increasing in b: %v", s.ModelCoV)
			}
			if s.UtilClass() == "" {
				t.Fatal("empty utilisation class")
			}
		}
	}
}

func TestStatsCached(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	r := newTestRunner(t)
	a, err := r.Stats(flow.By5Tuple)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Stats(flow.By5Tuple)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("cached stats differ in length")
	}
	for i := range a {
		if a[i].MeasCoV != b[i].MeasCoV {
			t.Fatal("cached stats differ")
		}
	}
}
