package experiments

import (
	"bytes"
	"testing"
)

// renderSuite runs the suite-wide experiments whose output covers every
// cached measurement (Table I summaries, 5-tuple and /24 scatter points)
// with the given worker count and returns the concatenated output.
func renderSuite(t *testing.T, workers int) string {
	t.Helper()
	o := tinyOptions()
	o.Workers = workers
	r, err := NewRunner(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Fig9(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Fig12(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The measurement pass fans the seven traces out over a worker pool; the
// same seed must produce byte-identical output at any worker count, or the
// parallelism would silently change the science.
func TestSuiteOutputDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	sequential := renderSuite(t, 1)
	if len(sequential) == 0 {
		t.Fatal("sequential run produced no output")
	}
	for _, workers := range []int{2, 4, 16} {
		if got := renderSuite(t, workers); got != sequential {
			t.Fatalf("output with %d workers differs from sequential run", workers)
		}
	}
}
