package experiments

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/trace/store"
)

// renderSuiteOpts runs the suite-wide experiments whose output covers every
// cached measurement (Table I summaries, 5-tuple and /24 scatter points)
// with the given options and returns the concatenated output.
func renderSuiteOpts(t *testing.T, o Options, workers int) string {
	t.Helper()
	o.Workers = workers
	return renderSuite(t, o)
}

func renderSuite(t *testing.T, o Options) string {
	t.Helper()
	r, err := NewRunner(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Fig9(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Fig12(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// generateSuiteStores writes every suite trace as a store file (footer
// checkpoint per analysis interval) into a temp dir, as `tracegen -store`
// would, and returns the dir.
func generateSuiteStores(t *testing.T, o Options) string {
	t.Helper()
	dir := t.TempDir()
	specs, err := trace.DefaultSuite(o.Suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		cfg := suiteConfig(spec)
		path := filepath.Join(dir, spec.Name+".fstore")
		if _, err := store.Generate(context.Background(), path, cfg, spec.IntervalSec, store.Options{}); err != nil {
			t.Fatalf("generating %s: %v", path, err)
		}
	}
	return dir
}

// Suite-from-store is the out-of-core measurement path: stored blocks carry
// the generator's exact rebased times, so the suite output — and the
// reference figures, which then replay through the store's checkpoint
// footer instead of a resident program index — must be byte-identical to
// the synthesis pass.
func TestSuiteFromStoreMatchesSynthesis(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	golden := renderSuiteOpts(t, tinyOptions(), 1)
	dir := generateSuiteStores(t, tinyOptions())
	o := tinyOptions()
	o.StoreDir = dir
	if got := renderSuiteOpts(t, o, 4); got != golden {
		t.Fatal("suite-from-store output differs from suite-from-synthesis")
	}

	// Reference-interval figures: footer-backed replay vs in-memory index.
	rs, err := NewRunner(o)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rm, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var fromStore, fromMem bytes.Buffer
	if err := rs.Fig1(&fromStore); err != nil {
		t.Fatal(err)
	}
	if rs.refStore == nil {
		t.Fatal("store-backed runner did not replay the reference window through the footer")
	}
	if err := rm.Fig1(&fromMem); err != nil {
		t.Fatal(err)
	}
	if fromStore.String() != fromMem.String() {
		t.Fatal("footer-backed reference replay differs from the in-memory index")
	}
}

// Shard export/merge is the cross-process contract: two shard runners over
// disjoint trace subsets, exported to files and merged into a fresh runner,
// must render byte-identical output to the single-process pass — including
// the reference figures, whose flow results travel with the shard that owns
// trace 0.
func TestShardMergeMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	golden := renderSuiteOpts(t, tinyOptions(), 1)
	gr, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var goldenFig1 bytes.Buffer
	if err := gr.Fig1(&goldenFig1); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var files []string
	for i := 0; i < 2; i++ {
		o := tinyOptions()
		o.ShardIndex, o.ShardCount = i, 2
		r, err := NewRunner(o)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.shard", i))
		if err := r.ExportShard(path); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}

	m, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MergeShards(files...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Fig9(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Fig12(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Fatal("merged shard output differs from the single-process run")
	}
	var mergedFig1 bytes.Buffer
	if err := m.Fig1(&mergedFig1); err != nil {
		t.Fatal(err)
	}
	if mergedFig1.String() != goldenFig1.String() {
		t.Fatal("merged reference figure differs from the single-process run")
	}

	// A merge that misses a shard must refuse, not render a partial suite.
	p, err := NewRunner(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MergeShards(files[0]); err == nil {
		t.Fatal("merge accepted incomplete shard coverage")
	}
}

// The measurement pass schedules (trace, interval) tasks over a worker pool;
// the same seed must produce byte-identical output at any worker count, or
// the parallelism would silently change the science.
func TestSuiteOutputDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	sequential := renderSuiteOpts(t, tinyOptions(), 1)
	if len(sequential) == 0 {
		t.Fatal("sequential run produced no output")
	}
	for _, workers := range []int{2, 4, 16} {
		if got := renderSuiteOpts(t, tinyOptions(), workers); got != sequential {
			t.Fatalf("output with %d workers differs from sequential run", workers)
		}
	}
}

// The same guarantee under intra-trace sharding stress: uncapped interval
// counts give the 39.5 h trace several times more intervals than the others,
// so many intervals of one trace are in flight at once and worker counts
// beyond the seven traces exercise the second scheduler level.
func TestSuiteOutputDeterministicIntraTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	longOpts := func() Options {
		return Options{
			Suite: trace.SuiteOptions{
				LinkBps:          10e6,
				IntervalSec:      20,
				IntervalsPerHour: 0.2,
				// MaxIntervals unset: trace 4 runs its full paper-length
				// share (≈ 8 intervals at this scale).
			},
			Quiet: true,
		}
	}
	sequential := renderSuiteOpts(t, longOpts(), 1)
	if len(sequential) == 0 {
		t.Fatal("sequential run produced no output")
	}
	for _, workers := range []int{3, 16} {
		if got := renderSuiteOpts(t, longOpts(), workers); got != sequential {
			t.Fatalf("output with %d workers differs from sequential run", workers)
		}
	}
}

// The batch-columnar pipeline moves packets in SoA blocks whose size is a
// pure transport choice: output must be byte-identical at any block size —
// including size 1, where every interval-boundary and key-derivation edge
// case fires per packet — alone and combined with both worker pools.
func TestSuiteOutputDeterministicAcrossBlockSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	base := renderSuiteOpts(t, tinyOptions(), 1)
	if len(base) == 0 {
		t.Fatal("baseline run produced no output")
	}
	for _, bs := range []int{1, 64, 256} {
		o := tinyOptions()
		o.Workers = 1
		o.blockSize = bs
		if got := renderSuite(t, o); got != base {
			t.Fatalf("output with block size %d differs from the default", bs)
		}
	}
	// Odd block size riding both pools: block boundaries then straddle
	// synthesis segment merges and interval handoffs arbitrarily.
	o := tinyOptions()
	o.Workers = 4
	o.GenWorkers = 4
	o.blockSize = 17
	if got := renderSuite(t, o); got != base {
		t.Fatal("output with block size 17 × workers=4 × genworkers=4 differs from the default")
	}
}

// Sharded generation is the third axis of the scheduler: the synthesis pool
// feeds each trace's interval partitioner a bit-identical stream, so suite
// output must not depend on the generation worker count — alone or combined
// with measurement workers.
func TestSuiteOutputDeterministicAcrossGenWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping suite measurement in -short mode")
	}
	serial := renderSuiteOpts(t, tinyOptions(), 1)
	if len(serial) == 0 {
		t.Fatal("serial run produced no output")
	}
	for _, genWorkers := range []int{2, 4, 16} {
		o := tinyOptions()
		o.Workers = 1
		o.GenWorkers = genWorkers
		if got := renderSuite(t, o); got != serial {
			t.Fatalf("output with %d generation workers differs from the serial generator's", genWorkers)
		}
	}
	// Both pools at once: measurement scheduling and generation sharding
	// compose without perturbing the science.
	o := tinyOptions()
	o.Workers = 4
	o.GenWorkers = 4
	if got := renderSuite(t, o); got != serial {
		t.Fatal("output with workers=4 × genworkers=4 differs from the serial run")
	}
}
