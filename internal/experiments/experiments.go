// Package experiments regenerates every table and figure of the paper's
// evaluation (Barakat et al., IMC 2002) on the synthetic trace suite. Each
// experiment is a method on Runner that writes the table's rows or the
// figure's data series to an io.Writer; cmd/experiments exposes them by id
// and bench_test.go wraps them as benchmarks. DESIGN.md §4 maps experiment
// ids to paper artefacts.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/membudget"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

// Options scales the experiment suite. The zero value reproduces the
// default scaled Table I suite (100 Mb/s link, 120 s intervals).
type Options struct {
	Suite trace.SuiteOptions
	// Delta is the rate averaging interval (default 0.2 s, the paper's
	// 200 ms round-trip-time choice, §V-F).
	Delta float64
	// Workers sizes the interval-level worker pool of the two-level
	// measurement scheduler. Traces produce their packet streams
	// concurrently (at most Workers traces at once, capped at the suite
	// size) while Workers measurement workers consume the per-interval
	// sub-streams those producers partition off — intervals are independent
	// after the boundary split, so a long trace's intervals measure in
	// parallel and the suite scales past one worker per trace. Results are
	// reassembled in (trace, definition, interval) order, so output is
	// identical at any worker count. 0 means GOMAXPROCS; 1 is sequential.
	Workers int
	// GenWorkers sizes each trace producer's packet-synthesis pool
	// (trace.StreamParallel): phase 1 of the generator stays a cheap serial
	// RNG pass, while packet synthesis shards across GenWorkers timeline
	// segments feeding the interval partitioner in order — so with
	// measurement already parallel, the remaining serial critical path of a
	// long trace parallelises too. The packet stream is bit-identical at
	// any count, so output never depends on it. <= 1 means the serial
	// generator; each producer spawns its own pool, so total generation
	// goroutines scale with producers × GenWorkers.
	GenWorkers int
	// Quiet suppresses per-point output, keeping only summaries (used by
	// benchmarks).
	Quiet bool
	// Context, when non-nil, bounds the whole measurement pass: on
	// cancellation producers stop generating, workers drain and recycle
	// their in-flight blocks, and the pass returns an error wrapping the
	// context's error. nil means run to completion.
	Context context.Context
	// MemBudgetBytes, when positive, caps the resident bytes of in-flight
	// partitioned blocks across the whole pass. Producers block when the
	// budget is full (backpressure; output is unchanged) unless Shed is set.
	MemBudgetBytes int64
	// StoreDir, when set, points the measurement pass at pre-generated trace
	// stores: each suite trace streams from <StoreDir>/<name>.fstore
	// (written by `tracegen -store` with the same suite geometry) instead of
	// being re-synthesised, and reference windows replay through the store's
	// checkpoint footer — no resident program index. Output is byte-identical
	// to the synthesis path: stored blocks carry the exact rebased times the
	// generator emitted.
	StoreDir string
	// ShardIndex/ShardCount split the suite across processes: this runner
	// measures only traces ti with ti % ShardCount == ShardIndex
	// (ShardCount <= 1 = the whole suite). A shard runner's own rendering is
	// partial by construction; ExportShard persists its measurements so
	// MergeShards can reassemble the full suite byte-identically elsewhere.
	ShardIndex int
	ShardCount int
	// Shed switches the memory budget from backpressure to load shedding:
	// a producer that cannot reserve a block drops the rest of that
	// interval, the interval's stream is flagged, its statistics are
	// skipped, and the drop is counted in ShedStats — output is explicitly
	// missing rather than silently wrong.
	Shed bool
	// blockSize overrides the record count of the SoA blocks the interval
	// partitioner emits (0 = trace.BlockSize). Output is byte-identical at
	// any size; the determinism tests set it to stress block-boundary
	// handling in the batch measurement path.
	blockSize int
	// wrapBlocks, when set, interposes on each trace producer's block
	// stream (stage name = trace name) — the fault-injection hook of the
	// chaos tests. Must preserve the callback's contract when it forwards.
	wrapBlocks func(stage string, fn func(*trace.Block) error) func(*trace.Block) error
	// wrapBudget, when set, interposes on the pass's memory budget — the
	// allocation-failure hook of the chaos tests.
	wrapBudget func(membudget.Reserver) membudget.Reserver
}

func (o Options) withDefaults() Options {
	if o.Delta == 0 {
		o.Delta = 0.2
	}
	return o
}

// IntervalStat is the measurement of one (interval, flow definition) pair —
// one point of the paper's scatter plots.
type IntervalStat struct {
	Trace      string
	TargetBps  float64
	Index      int
	Def        flow.Definition
	FlowCount  int     // multi-packet flows
	Discarded  int     // single-packet flows
	MeasMean   float64 // bit/s
	MeasVar    float64
	MeasCoV    float64
	Lambda     float64         // flows/s
	MeanS      float64         // bits
	MeanS2oD   float64         // bits²/s
	ModelCoV   map[int]float64 // shot exponent b -> eq.(7)-averaged model CoV
	FittedBRaw float64         // §V-D fit against the raw measured variance

	linkBps float64 // scaled link capacity, for the utilisation classes
}

// UtilClass buckets an interval by its paper-equivalent utilisation, the
// three marker classes of Figures 9-13 (crosses < 50 Mb/s, triangles
// 50-125 Mb/s, dots > 125 Mb/s on the OC-12). Class boundaries scale with
// the link so the clusters survive rescaling.
func (s IntervalStat) UtilClass() string {
	switch {
	case s.TargetBps < 50e6/trace.PaperLinkBps*s.linkBps:
		return "low(<50M-eq)"
	case s.TargetBps < 125e6/trace.PaperLinkBps*s.linkBps:
		return "mid(50-125M-eq)"
	default:
		return "high(>125M-eq)"
	}
}

// Runner caches the generated suite so that the scatter figures, Table I
// and Figure 11 share one measurement pass.
type Runner struct {
	opts  Options
	specs []trace.TraceSpec
	// avKernels are the eq.(7) coefficient caches for the three suite shot
	// shapes (b = 0, 1, 2) at the suite Δ, built once and shared read-only by
	// every interval worker — the per-interval model evaluation then runs
	// entirely on precomputed constants.
	avKernels [3]*core.AvgVarKernel

	// Lazily computed.
	stats     []IntervalStat
	summaries []trace.Summary
	shed      []TraceShed
	// reference holds the flow measurements of one designated interval
	// (trace 1, interval 0) for the single-interval figures (1, 3-6, 8).
	// Its packets are not buffered: RefInterval hands out a replayable
	// trace.Window that regenerates them on demand.
	refRes5  flow.Result
	refResP  flow.Result
	measured bool
	// refCk is the reference trace's shared replay index: every reference
	// window regenerates from the nearest checkpoint in O(window + active
	// flows) instead of replaying the trace prefix, and all windows of the
	// trace share the one phase-1 pass the index holds.
	refCk *trace.Checkpoints
	// refStore keeps the reference trace's store reader open while refCk
	// replays through its footer (the index aliases the file mapping).
	refStore *store.Reader
}

// Close releases what the runner may hold open — currently the reference
// trace's store reader (store-backed passes only). Windows handed out by
// RefInterval die with it. Safe on a runner that never measured.
func (r *Runner) Close() error {
	if r.refStore == nil {
		return nil
	}
	err := r.refStore.Close()
	r.refStore, r.refCk = nil, nil
	return err
}

// NewRunner builds the scaled suite.
func NewRunner(opts Options) (*Runner, error) {
	o := opts.withDefaults()
	if o.ShardCount > 1 && (o.ShardIndex < 0 || o.ShardIndex >= o.ShardCount) {
		return nil, fmt.Errorf("experiments: shard index %d outside 0..%d", o.ShardIndex, o.ShardCount-1)
	}
	specs, err := trace.DefaultSuite(o.Suite)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	r := &Runner{opts: o, specs: specs}
	for b := range r.avKernels {
		k, err := core.NewAvgVarKernel(b, o.Delta)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		r.avKernels[b] = k
	}
	return r, nil
}

// Specs exposes the scaled Table I suite.
func (r *Runner) Specs() []trace.TraceSpec { return r.specs }

// Delta returns the rate averaging interval.
func (r *Runner) Delta() float64 { return r.opts.Delta }

// linkBps returns the scaled link capacity of the suite.
func (r *Runner) linkBps() float64 {
	if r.opts.Suite.LinkBps != 0 {
		return r.opts.Suite.LinkBps
	}
	return 100e6
}

// suiteDefs are the two flow definitions every interval is measured under.
var suiteDefs = []flow.Definition{flow.By5Tuple, flow.ByPrefix24}

// suiteWarmup is the per-trace warm-up (seconds) that puts each generator in
// its stationary regime before the measured window opens (see trace.Config).
const suiteWarmup = 60

// suiteConfig is the exact generator configuration the measurement pass runs
// a trace with. RefInterval replays windows of the same configuration, so
// every adjustment must live here — a divergence would make the replayed
// packets disagree with the cached flow measurements.
func suiteConfig(spec trace.TraceSpec) trace.Config {
	cfg := spec.Config()
	cfg.Warmup = suiteWarmup
	return cfg
}

// intervalStreamBuffer bounds how many records an interval sub-stream holds
// while its measurement worker lags its trace's producer; beyond it the
// producer blocks, so suite memory stays O(workers · buffer + active flows)
// however long the traces are.
const intervalStreamBuffer = 4096

// errAborted marks work skipped because an earlier failure already doomed
// the measurement pass; it never surfaces when a real error exists.
var errAborted = fmt.Errorf("aborted after earlier measurement failure")

// traceResult is one trace's contribution to the suite measurement,
// assembled by the scheduler's workers and merged in trace order by
// measureSuite.
type traceResult struct {
	summary trace.Summary
	// stats[idx][di] is interval idx's scatter point under suiteDefs[di]
	// (nil when the interval was empty, sparse or degenerate). Interval
	// workers write disjoint slots, so the merged r.stats layout is
	// independent of scheduling.
	stats [][]*IntervalStat
	// Reference-interval capture (trace 1, interval 0 only).
	refRes5 flow.Result
	refResP flow.Result
	// Load-shedding accounting, read from the producer's partitioner after
	// it closes.
	shedIntervals int64
	shedRecords   int64
}

// TraceShed is one trace's load-shedding report: how many of its intervals
// were dropped (wholly or partially) under memory pressure, and how many
// records those drops lost. All zeros unless Options.Shed was set and the
// budget actually filled.
type TraceShed struct {
	Trace     string
	Intervals int64
	Records   int64
}

// intervalTask is one (trace, interval) unit of the two-level scheduler.
type intervalTask struct {
	ti     int
	stream *flow.IntervalStream
}

// measureSuite measures every trace of the suite with a two-level scheduler:
// trace producers (at most Workers at once) stream their generators through
// an interval partitioner, and a shared pool of Workers interval workers
// measures the partitioned per-interval sub-streams — flows under both
// definitions, the rate binner and the model statistics all run inside the
// interval task. Intervals are independent after the boundary split, so a
// long trace's intervals measure concurrently instead of serially inside one
// worker, and the suite scales past one worker per trace. No trace is ever
// materialised: producers back-pressure on their current interval's bounded
// sub-stream buffer, and an in-flight cap stops a producer from queueing an
// unbounded run of small completed intervals, so resident records stay
// O((workers + producers) · buffer) however long the traces are. Results
// land in per-(trace, interval) slots and are merged in (trace, definition,
// interval) order, so the cached statistics are byte-identical at any
// worker count.
func (r *Runner) measureSuite() error {
	if r.measured {
		return nil
	}
	ctx := r.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var budget membudget.Reserver
	if r.opts.MemBudgetBytes > 0 {
		b, err := membudget.New(r.opts.MemBudgetBytes)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		budget = b
	}
	if r.opts.wrapBudget != nil {
		budget = r.opts.wrapBudget(budget)
	}
	workers := r.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	producers := workers
	if producers > len(r.specs) {
		producers = len(r.specs)
	}
	results := make([]*traceResult, len(r.specs))
	totalIntervals := 0
	for ti, spec := range r.specs {
		stats := make([][]*IntervalStat, spec.Intervals)
		for i := range stats {
			stats[i] = make([]*IntervalStat, len(suiteDefs))
		}
		results[ti] = &traceResult{stats: stats}
		totalIntervals += spec.Intervals
	}

	// Per-worker measurement scratch, built (and validated) before any
	// goroutine exists: a construction error returns here instead of being
	// discovered by a worker that has no clean way to report it.
	measurers := make([]*flow.Measurer, workers)
	for w := range measurers {
		m, err := flow.NewMeasurer(suiteDefs, flow.DefaultTimeout)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		measurers[w] = m
	}

	// Sized to hold every interval of the suite, so a producer's handoff
	// never blocks on the queue itself (only on the in-flight cap and its
	// sub-stream buffer) and the producer/worker levels cannot deadlock at
	// any worker count.
	tasks := make(chan intervalTask, totalIntervals)
	// inflight caps handed-off-but-unfinished interval streams. Without it,
	// a producer whose intervals each fit inside the sub-stream buffer never
	// blocks and queues its whole trace — materialising it. Deadlock-free:
	// a producer only acquires at a handoff, by which point its previous
	// stream is already closed, so every held slot is a stream some worker
	// can finish without that producer's help.
	inflight := make(chan struct{}, 2*(workers+producers))
	prodErrs := make([]error, len(r.specs))
	taskErrs := make([]error, len(r.specs))
	var taskErrMu sync.Mutex
	var aborted atomic.Bool
	// Cancellation folds into the pass's existing abort machinery: producers
	// and workers already check aborted between units, and the blocking
	// points inside a unit (generator sends, partitioner sends, budget
	// reservations) watch ctx directly.
	stopWatch := context.AfterFunc(ctx, func() { aborted.Store(true) })
	defer stopWatch()

	recordTaskErr := func(ti int, err error) {
		taskErrMu.Lock()
		if taskErrs[ti] == nil {
			taskErrs[ti] = err
		}
		taskErrMu.Unlock()
		aborted.Store(true)
	}

	var taskWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		meas := measurers[w]
		taskWG.Add(1)
		go func() {
			defer taskWG.Done()
			// Per-worker scratch: one rate binner, one flow measurer and one
			// columnar flow population serve every interval this worker
			// measures (Reinit/Reset reuse bins, key tables, state slabs and
			// the population's columns), so an interval costs no
			// measurement-machinery allocation.
			binner := &timeseries.Binner{}
			pop := &core.FlowPop{}
			for tk := range tasks {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							// A panicking measurement must not take the pass
							// down: convert to an error, doom the pass, and
							// finish draining the stream (the iterator's own
							// unwind already recycled what it had in hand)
							// so the producer is never left blocked.
							recordTaskErr(tk.ti, fmt.Errorf("interval %d: measurement panicked: %v", tk.stream.Index, rec))
							for range tk.stream.Blocks() {
							}
						}
						<-inflight
					}()
					if aborted.Load() {
						// Still drain the stream: its producer may be blocked
						// mid-send on the buffer.
						for range tk.stream.Blocks() {
						}
						return
					}
					if err := r.measureInterval(tk.ti, tk.stream, results[tk.ti], binner, meas, pop); err != nil {
						recordTaskErr(tk.ti, fmt.Errorf("interval %d: %w", tk.stream.Index, err))
					}
				}()
			}
		}()
	}

	tis := make(chan int)
	var prodWG sync.WaitGroup
	for w := 0; w < producers; w++ {
		prodWG.Add(1)
		go func() {
			defer prodWG.Done()
			for ti := range tis {
				if !r.ownsTrace(ti) {
					continue // another shard's trace: its slots stay empty
				}
				// One failure aborts the traces not yet started (indices are
				// dispatched in order, so the first error by index is always
				// a real one, never this sentinel).
				if aborted.Load() {
					prodErrs[ti] = errAborted
					continue
				}
				summary, err := r.produceTrace(ctx, ti, r.specs[ti], budget, tasks, inflight, &aborted, results[ti])
				results[ti].summary = summary
				if err != nil {
					prodErrs[ti] = err
					aborted.Store(true)
				}
			}
		}()
	}
	for ti := range r.specs {
		tis <- ti
	}
	close(tis)
	prodWG.Wait()
	close(tasks)
	taskWG.Wait()

	var firstErr error
	var firstName string
	for ti := range r.specs {
		for _, err := range []error{prodErrs[ti], taskErrs[ti]} {
			if err == nil || err == errAborted {
				continue
			}
			if firstErr == nil {
				firstErr, firstName = err, r.specs[ti].Name
			}
		}
	}
	if firstErr != nil {
		return fmt.Errorf("experiments: measuring %s: %w", firstName, firstErr)
	}
	// Cancellation can abort the pass between per-trace error slots (e.g.
	// after every started trace finished); never report a cancelled pass as
	// a clean one.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("experiments: measurement pass cancelled: %w", err)
	}
	for ti, tr := range results {
		r.summaries = append(r.summaries, tr.summary)
		r.shed = append(r.shed, TraceShed{
			Trace:     r.specs[ti].Name,
			Intervals: tr.shedIntervals,
			Records:   tr.shedRecords,
		})
		for di := range suiteDefs {
			for _, slots := range tr.stats {
				if s := slots[di]; s != nil {
					r.stats = append(r.stats, *s)
				}
			}
		}
		if ti == 0 {
			r.refRes5 = tr.refRes5
			r.refResP = tr.refResP
		}
	}
	r.measured = true
	return nil
}

// produceTrace is the scheduler's first level: it streams one trace's
// generator through an interval partitioner, enqueueing each interval's
// sub-stream as a task the moment it opens. It blocks when its current
// interval's buffer fills, so generation never outruns measurement by more
// than the buffer.
func (r *Runner) produceTrace(ctx context.Context, ti int, spec trace.TraceSpec, budget membudget.Reserver, tasks chan<- intervalTask, inflight chan struct{}, aborted *atomic.Bool, tr *traceResult) (sum trace.Summary, err error) {
	cfg := suiteConfig(spec)
	var part *flow.IntervalPartitioner
	// A panic anywhere in this producer (generator, partitioner, a faulty
	// injected wrapper) must not take the process down with workers still
	// live: convert it to an error and tear the partitioner down so every
	// handed-off stream still terminates.
	defer func() {
		if rec := recover(); rec != nil {
			if part != nil {
				part.Abort()
				tr.shedIntervals, tr.shedRecords = part.ShedStats()
			}
			err = fmt.Errorf("producing trace: panic: %v", rec)
		}
	}()
	part, err = flow.NewIntervalPartitioner(spec.IntervalSec, cfg.Duration, intervalStreamBuffer,
		func(is *flow.IntervalStream) error {
			// Bail out between intervals once the pass is doomed, instead
			// of generating the rest of a long trace nobody will read.
			if aborted.Load() {
				return errAborted
			}
			inflight <- struct{}{}
			tasks <- intervalTask{ti: ti, stream: is}
			return nil
		})
	if err != nil {
		return trace.Summary{}, err
	}
	if r.opts.blockSize > 0 {
		if err := part.SetBlockSize(r.opts.blockSize); err != nil {
			return trace.Summary{}, err
		}
	}
	if err := part.SetContext(ctx); err != nil {
		return trace.Summary{}, err
	}
	if budget != nil {
		if err := part.SetBudget(budget, r.opts.Shed); err != nil {
			return trace.Summary{}, err
		}
	}
	sink := part.AddBlock
	if r.opts.wrapBlocks != nil {
		sink = r.opts.wrapBlocks(spec.Name, sink)
	}
	// The generation workers synthesise timeline shards concurrently and
	// feed the partitioner one merged, time-ordered, bit-identical block
	// stream — the partitioner cannot tell it apart from the serial
	// generator's. A pre-generated store replays the identical stream
	// (stored blocks carry the exact rebased times the generator emitted),
	// so the source choice never changes the science.
	if r.opts.StoreDir != "" {
		sum, err = r.streamStored(ctx, spec, cfg, sink)
	} else {
		sum, err = trace.StreamParallelBlocksCtx(ctx, cfg, r.opts.GenWorkers, sink)
	}
	if err != nil {
		part.Abort()
		tr.shedIntervals, tr.shedRecords = part.ShedStats()
		return sum, err
	}
	if err := part.Close(); err != nil {
		tr.shedIntervals, tr.shedRecords = part.ShedStats()
		return sum, err
	}
	tr.shedIntervals, tr.shedRecords = part.ShedStats()
	return sum, nil
}

// ownsTrace reports whether this runner's shard measures trace ti.
func (r *Runner) ownsTrace(ti int) bool {
	return r.opts.ShardCount <= 1 || ti%r.opts.ShardCount == r.opts.ShardIndex
}

// storePath locates one suite trace's pre-generated store file.
func (r *Runner) storePath(spec trace.TraceSpec) string {
	return filepath.Join(r.opts.StoreDir, spec.Name+".fstore")
}

// streamStored replays a pre-generated trace store through sink, standing in
// for the generator. The stored metadata is cross-checked against the exact
// configuration the synthesis path would have run, so a stale or mismatched
// store fails loudly instead of measuring the wrong trace.
func (r *Runner) streamStored(ctx context.Context, spec trace.TraceSpec, cfg trace.Config, sink func(*trace.Block) error) (trace.Summary, error) {
	sr, err := store.Open(r.storePath(spec))
	if err != nil {
		return trace.Summary{}, err
	}
	defer sr.Close()
	m := sr.Meta()
	if m.Seed != cfg.Seed || m.Duration != cfg.Duration || m.Warmup != cfg.Warmup || m.Lambda != cfg.Lambda {
		return trace.Summary{}, fmt.Errorf("store %s generated with (seed %d, duration %g, warmup %g, lambda %g); suite needs (%d, %g, %g, %g)",
			r.storePath(spec), m.Seed, m.Duration, m.Warmup, m.Lambda, cfg.Seed, cfg.Duration, cfg.Warmup, cfg.Lambda)
	}
	if err := sr.Stream(ctx, 0, sink); err != nil {
		return trace.Summary{}, err
	}
	return sr.Summary(), nil
}

// measureInterval is the scheduler's second level: it owns one interval
// outright — the worker's scratch measurer (re-armed flow tables for both
// definitions), its scratch rate binner, and the model statistics — so
// intervals of the same trace measure concurrently. The sub-stream is
// always drained to completion (even on error or skip), so the producing
// trace is never left blocked.
func (r *Runner) measureInterval(ti int, is *flow.IntervalStream, tr *traceResult, binner *timeseries.Binner, meas *flow.Measurer, pop *core.FlowPop) error {
	spec := r.specs[ti]
	if err := binner.Reinit(spec.IntervalSec, r.opts.Delta); err != nil {
		for range is.Blocks() {
		}
		return err
	}
	meas.Reset()
	// Bin in the same drain that feeds the flow tables: blocks are
	// interval-local already, exactly what both consumers want, and each
	// block's key columns are derived once for both definitions.
	var addErr error
	for blk := range is.Blocks() {
		if addErr != nil {
			continue // keep draining so the producer is never left blocked
		}
		binner.AddBlock(blk)
		addErr = meas.AddBlock(blk)
	}
	if addErr != nil {
		return addErr
	}
	if is.Shed() {
		// The producer dropped part (or all) of this interval under memory
		// pressure: its measurements would be silently wrong, so the point
		// is skipped and the drop stays visible through ShedStats.
		return nil
	}
	results := meas.Flush()
	link := r.linkBps()
	for di, def := range suiteDefs {
		if len(results[di].Flows) < minIntervalFlows {
			continue // empty or sparse interval: skip before snapshotting
		}
		ivr := flow.IntervalResult{Index: is.Index, Start: is.Start, Result: results[di]}
		// Each definition subtracts its own discarded packets, so it gets
		// its own snapshot of the interval's rate series.
		stat, err := r.intervalStat(spec, ivr, def, binner.Series(), pop)
		if err != nil {
			continue // degenerate interval: skip the point
		}
		stat.linkBps = link
		tr.stats[is.Index][di] = &stat
		if ti == 0 && is.Index == 0 {
			if def == flow.By5Tuple {
				tr.refRes5 = ivr.Result
			} else {
				tr.refResP = ivr.Result
			}
		}
	}
	return nil
}

// minIntervalFlows is the fewest multi-packet flows an interval needs to
// yield a meaningful scatter point.
const minIntervalFlows = 10

// intervalStat computes one scatter point from an interval's flows and its
// binned rate series (which it owns and mutates). The flow population lands
// in the caller's reusable columnar pop — the hottest model loop of the
// suite then runs the prebuilt (b, Δ) kernels straight over its columns,
// with no per-interval model construction or column allocation.
func (r *Runner) intervalStat(spec trace.TraceSpec, iv flow.IntervalResult, def flow.Definition, series timeseries.Series, pop *core.FlowPop) (IntervalStat, error) {
	if len(iv.Flows) < minIntervalFlows {
		return IntervalStat{}, fmt.Errorf("experiments: interval too sparse")
	}
	series.Subtract(iv.Discarded)
	in, err := core.InputFromFlowsPop(pop, iv.Flows, spec.IntervalSec)
	if err != nil {
		return IntervalStat{}, err
	}
	stat := IntervalStat{
		Trace:     spec.Name,
		TargetBps: spec.TargetBps,
		Index:     iv.Index,
		Def:       def,
		FlowCount: len(iv.Flows),
		Discarded: len(iv.Discarded),
		MeasMean:  series.Mean(),
		MeasVar:   series.Variance(),
		MeasCoV:   series.CoV(),
		Lambda:    in.Lambda,
		MeanS:     in.MeanS,
		MeanS2oD:  in.MeanS2OverD,
		ModelCoV:  map[int]float64{},
	}
	mu := in.Lambda * in.MeanS
	for b, k := range r.avKernels {
		v, err := k.AveragedVariance(in.Lambda, pop)
		if err != nil {
			return IntervalStat{}, err
		}
		if mu > 0 {
			stat.ModelCoV[b] = math.Sqrt(v) / mu
		}
	}
	if b, _, err := core.FitPowerB(stat.MeasVar, in.Lambda, in.MeanS2OverD); err == nil {
		stat.FittedBRaw = b
	}
	return stat, nil
}

// Stats returns all per-interval statistics for the given definition,
// ordered by trace then interval.
func (r *Runner) Stats(def flow.Definition) ([]IntervalStat, error) {
	if err := r.measureSuite(); err != nil {
		return nil, err
	}
	var out []IntervalStat
	for _, s := range r.stats {
		if s.Def == def {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

// RefInterval returns the designated reference interval (trace 1,
// interval 0): a replayable window over its packets plus both flow
// measurements. The window regenerates the packets deterministically on
// demand, so no per-interval record buffer outlives the measurement pass.
// Windows come from a shared per-trace checkpoint index, so replay cost is
// O(window + active flows) wherever the reference interval sits — a deep
// reference interval is as cheap as interval 0 — and repeated RefInterval
// calls reuse one phase-1 pass.
func (r *Runner) RefInterval() (trace.Window, flow.Result, flow.Result, error) {
	if err := r.measureSuite(); err != nil {
		return trace.Window{}, flow.Result{}, flow.Result{}, err
	}
	if r.refCk == nil {
		cfg0 := suiteConfig(r.specs[0])
		if r.opts.StoreDir != "" {
			// The store footer streams programs from disk: the reference
			// trace's checkpoint index costs no resident []FlowProgram. A
			// store without a footer falls back to the in-memory index.
			if sr, err := store.Open(r.storePath(r.specs[0])); err == nil {
				if ck, cerr := sr.Checkpoints(cfg0); cerr == nil {
					r.refCk, r.refStore = ck, sr
				} else {
					sr.Close()
				}
			}
		}
		if r.refCk == nil {
			// One checkpoint per analysis interval: reference windows are
			// interval-aligned, so replay carry-over stays minimal.
			ck, err := trace.NewCheckpoints(cfg0, r.specs[0].IntervalSec)
			if err != nil {
				return trace.Window{}, flow.Result{}, flow.Result{}, err
			}
			r.refCk = ck
		}
	}
	win, err := r.refCk.Window(0, r.specs[0].IntervalSec)
	if err != nil {
		return trace.Window{}, flow.Result{}, flow.Result{}, err
	}
	return win, r.refRes5, r.refResP, nil
}

// Summaries returns the per-trace generator summaries.
func (r *Runner) Summaries() ([]trace.Summary, error) {
	if err := r.measureSuite(); err != nil {
		return nil, err
	}
	return r.summaries, nil
}

// ShedStats returns the per-trace load-shedding report of the measurement
// pass — which traces dropped intervals under memory pressure, and how
// many records each drop lost. All-zero entries mean nothing was shed.
func (r *Runner) ShedStats() ([]TraceShed, error) {
	if err := r.measureSuite(); err != nil {
		return nil, err
	}
	return r.shed, nil
}

// sep prints a section separator.
func sep(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
