// Package experiments regenerates every table and figure of the paper's
// evaluation (Barakat et al., IMC 2002) on the synthetic trace suite. Each
// experiment is a method on Runner that writes the table's rows or the
// figure's data series to an io.Writer; cmd/experiments exposes them by id
// and bench_test.go wraps them as benchmarks. DESIGN.md §4 maps experiment
// ids to paper artefacts.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Options scales the experiment suite. The zero value reproduces the
// default scaled Table I suite (100 Mb/s link, 120 s intervals).
type Options struct {
	Suite trace.SuiteOptions
	// Delta is the rate averaging interval (default 0.2 s, the paper's
	// 200 ms round-trip-time choice, §V-F).
	Delta float64
	// Quiet suppresses per-point output, keeping only summaries (used by
	// benchmarks).
	Quiet bool
}

func (o Options) withDefaults() Options {
	if o.Delta == 0 {
		o.Delta = 0.2
	}
	return o
}

// IntervalStat is the measurement of one (interval, flow definition) pair —
// one point of the paper's scatter plots.
type IntervalStat struct {
	Trace      string
	TargetBps  float64
	Index      int
	Def        flow.Definition
	FlowCount  int     // multi-packet flows
	Discarded  int     // single-packet flows
	MeasMean   float64 // bit/s
	MeasVar    float64
	MeasCoV    float64
	Lambda     float64         // flows/s
	MeanS      float64         // bits
	MeanS2oD   float64         // bits²/s
	ModelCoV   map[int]float64 // shot exponent b -> eq.(7)-averaged model CoV
	FittedBRaw float64         // §V-D fit against the raw measured variance

	linkBps float64 // scaled link capacity, for the utilisation classes
}

// UtilClass buckets an interval by its paper-equivalent utilisation, the
// three marker classes of Figures 9-13 (crosses < 50 Mb/s, triangles
// 50-125 Mb/s, dots > 125 Mb/s on the OC-12). Class boundaries scale with
// the link so the clusters survive rescaling.
func (s IntervalStat) UtilClass() string {
	switch {
	case s.TargetBps < 50e6/trace.PaperLinkBps*s.linkBps:
		return "low(<50M-eq)"
	case s.TargetBps < 125e6/trace.PaperLinkBps*s.linkBps:
		return "mid(50-125M-eq)"
	default:
		return "high(>125M-eq)"
	}
}

// Runner caches the generated suite so that the scatter figures, Table I
// and Figure 11 share one measurement pass.
type Runner struct {
	opts  Options
	specs []trace.TraceSpec

	// Lazily computed.
	stats     []IntervalStat
	summaries []trace.Summary
	// reference holds the flows and records of one designated interval
	// (trace 1, interval 0) for the single-interval figures (1, 3-6, 8).
	refRecs  []trace.Record
	refRes5  flow.Result
	refResP  flow.Result
	measured bool
}

// NewRunner builds the scaled suite.
func NewRunner(opts Options) (*Runner, error) {
	o := opts.withDefaults()
	specs, err := trace.DefaultSuite(o.Suite)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Runner{opts: o, specs: specs}, nil
}

// Specs exposes the scaled Table I suite.
func (r *Runner) Specs() []trace.TraceSpec { return r.specs }

// Delta returns the rate averaging interval.
func (r *Runner) Delta() float64 { return r.opts.Delta }

// linkBps returns the scaled link capacity of the suite.
func (r *Runner) linkBps() float64 {
	if r.opts.Suite.LinkBps != 0 {
		return r.opts.Suite.LinkBps
	}
	return 100e6
}

// measureSuite generates every trace, measures every interval under both
// flow definitions and caches the per-interval statistics.
func (r *Runner) measureSuite() error {
	if r.measured {
		return nil
	}
	link := r.linkBps()
	for ti, spec := range r.specs {
		cfg := spec.Config()
		// Warm-up puts each trace in stationary regime (see trace.Config).
		cfg.Warmup = 60
		recs, sum, err := trace.GenerateAll(cfg)
		if err != nil {
			return fmt.Errorf("experiments: generating %s: %w", spec.Name, err)
		}
		r.summaries = append(r.summaries, sum)
		for _, def := range []flow.Definition{flow.By5Tuple, flow.ByPrefix24} {
			ivs, err := flow.MeasureIntervals(recs, def, spec.IntervalSec, flow.DefaultTimeout)
			if err != nil {
				return fmt.Errorf("experiments: measuring %s: %w", spec.Name, err)
			}
			for _, iv := range ivs {
				stat, err := r.intervalStat(spec, iv, def, recs)
				if err != nil {
					continue // empty or degenerate interval: skip the point
				}
				stat.linkBps = link
				r.stats = append(r.stats, stat)
				if ti == 0 && iv.Index == 0 {
					if def == flow.By5Tuple {
						r.refRes5 = iv.Result
					} else {
						r.refResP = iv.Result
					}
				}
			}
		}
		if ti == 0 {
			// Keep the first interval's packets for the reference figures.
			end := spec.IntervalSec
			for _, rec := range recs {
				if rec.Time >= end {
					break
				}
				r.refRecs = append(r.refRecs, rec)
			}
		}
	}
	r.measured = true
	return nil
}

// intervalStat computes one scatter point.
func (r *Runner) intervalStat(spec trace.TraceSpec, iv flow.IntervalResult, def flow.Definition, recs []trace.Record) (IntervalStat, error) {
	if len(iv.Flows) < 10 {
		return IntervalStat{}, fmt.Errorf("experiments: interval too sparse")
	}
	lo := iv.Start
	hi := lo + spec.IntervalSec
	// Rebase the interval's packets and bin them.
	var window []trace.Record
	for _, rec := range recs {
		if rec.Time < lo {
			continue
		}
		if rec.Time >= hi {
			break
		}
		rec.Time -= lo
		window = append(window, rec)
	}
	series, err := timeseries.Bin(window, spec.IntervalSec, r.opts.Delta)
	if err != nil {
		return IntervalStat{}, err
	}
	series.Subtract(iv.Discarded)
	in, err := core.InputFromFlows(iv.Flows, spec.IntervalSec)
	if err != nil {
		return IntervalStat{}, err
	}
	stat := IntervalStat{
		Trace:     spec.Name,
		TargetBps: spec.TargetBps,
		Index:     iv.Index,
		Def:       def,
		FlowCount: len(iv.Flows),
		Discarded: len(iv.Discarded),
		MeasMean:  series.Mean(),
		MeasVar:   series.Variance(),
		MeasCoV:   series.CoV(),
		Lambda:    in.Lambda,
		MeanS:     in.MeanS,
		MeanS2oD:  in.MeanS2OverD,
		ModelCoV:  map[int]float64{},
	}
	for _, b := range []int{0, 1, 2} {
		m, err := in.Model(core.PowerShot{B: float64(b)})
		if err != nil {
			return IntervalStat{}, err
		}
		v, err := m.AveragedVariance(r.opts.Delta)
		if err != nil {
			return IntervalStat{}, err
		}
		if mu := m.Mean(); mu > 0 {
			stat.ModelCoV[b] = math.Sqrt(v) / mu
		}
	}
	if b, _, err := core.FitPowerB(stat.MeasVar, in.Lambda, in.MeanS2OverD); err == nil {
		stat.FittedBRaw = b
	}
	return stat, nil
}

// Stats returns all per-interval statistics for the given definition,
// ordered by trace then interval.
func (r *Runner) Stats(def flow.Definition) ([]IntervalStat, error) {
	if err := r.measureSuite(); err != nil {
		return nil, err
	}
	var out []IntervalStat
	for _, s := range r.stats {
		if s.Def == def {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

// RefInterval returns the designated reference interval's packets and both
// flow measurements (trace 1, interval 0).
func (r *Runner) RefInterval() ([]trace.Record, flow.Result, flow.Result, error) {
	if err := r.measureSuite(); err != nil {
		return nil, flow.Result{}, flow.Result{}, err
	}
	return r.refRecs, r.refRes5, r.refResP, nil
}

// Summaries returns the per-trace generator summaries.
func (r *Runner) Summaries() ([]trace.Summary, error) {
	if err := r.measureSuite(); err != nil {
		return nil, err
	}
	return r.summaries, nil
}

// sep prints a section separator.
func sep(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
