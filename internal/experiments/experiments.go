// Package experiments regenerates every table and figure of the paper's
// evaluation (Barakat et al., IMC 2002) on the synthetic trace suite. Each
// experiment is a method on Runner that writes the table's rows or the
// figure's data series to an io.Writer; cmd/experiments exposes them by id
// and bench_test.go wraps them as benchmarks. DESIGN.md §4 maps experiment
// ids to paper artefacts.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Options scales the experiment suite. The zero value reproduces the
// default scaled Table I suite (100 Mb/s link, 120 s intervals).
type Options struct {
	Suite trace.SuiteOptions
	// Delta is the rate averaging interval (default 0.2 s, the paper's
	// 200 ms round-trip-time choice, §V-F).
	Delta float64
	// Workers sizes the trace-level worker pool of the measurement pass.
	// The seven Table I traces are seeded independently, so they measure in
	// parallel; results are reassembled in trace order, so output is
	// identical at any worker count. 0 means GOMAXPROCS; 1 is sequential.
	Workers int
	// Quiet suppresses per-point output, keeping only summaries (used by
	// benchmarks).
	Quiet bool
}

func (o Options) withDefaults() Options {
	if o.Delta == 0 {
		o.Delta = 0.2
	}
	return o
}

// IntervalStat is the measurement of one (interval, flow definition) pair —
// one point of the paper's scatter plots.
type IntervalStat struct {
	Trace      string
	TargetBps  float64
	Index      int
	Def        flow.Definition
	FlowCount  int     // multi-packet flows
	Discarded  int     // single-packet flows
	MeasMean   float64 // bit/s
	MeasVar    float64
	MeasCoV    float64
	Lambda     float64         // flows/s
	MeanS      float64         // bits
	MeanS2oD   float64         // bits²/s
	ModelCoV   map[int]float64 // shot exponent b -> eq.(7)-averaged model CoV
	FittedBRaw float64         // §V-D fit against the raw measured variance

	linkBps float64 // scaled link capacity, for the utilisation classes
}

// UtilClass buckets an interval by its paper-equivalent utilisation, the
// three marker classes of Figures 9-13 (crosses < 50 Mb/s, triangles
// 50-125 Mb/s, dots > 125 Mb/s on the OC-12). Class boundaries scale with
// the link so the clusters survive rescaling.
func (s IntervalStat) UtilClass() string {
	switch {
	case s.TargetBps < 50e6/trace.PaperLinkBps*s.linkBps:
		return "low(<50M-eq)"
	case s.TargetBps < 125e6/trace.PaperLinkBps*s.linkBps:
		return "mid(50-125M-eq)"
	default:
		return "high(>125M-eq)"
	}
}

// Runner caches the generated suite so that the scatter figures, Table I
// and Figure 11 share one measurement pass.
type Runner struct {
	opts  Options
	specs []trace.TraceSpec

	// Lazily computed.
	stats     []IntervalStat
	summaries []trace.Summary
	// reference holds the flows and records of one designated interval
	// (trace 1, interval 0) for the single-interval figures (1, 3-6, 8).
	refRecs  []trace.Record
	refRes5  flow.Result
	refResP  flow.Result
	measured bool
}

// NewRunner builds the scaled suite.
func NewRunner(opts Options) (*Runner, error) {
	o := opts.withDefaults()
	specs, err := trace.DefaultSuite(o.Suite)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Runner{opts: o, specs: specs}, nil
}

// Specs exposes the scaled Table I suite.
func (r *Runner) Specs() []trace.TraceSpec { return r.specs }

// Delta returns the rate averaging interval.
func (r *Runner) Delta() float64 { return r.opts.Delta }

// linkBps returns the scaled link capacity of the suite.
func (r *Runner) linkBps() float64 {
	if r.opts.Suite.LinkBps != 0 {
		return r.opts.Suite.LinkBps
	}
	return 100e6
}

// suiteDefs are the two flow definitions every interval is measured under.
var suiteDefs = []flow.Definition{flow.By5Tuple, flow.ByPrefix24}

// traceResult is one trace's contribution to the suite measurement,
// assembled by a worker and merged in trace order by measureSuite.
type traceResult struct {
	summary trace.Summary
	// statsByDef holds the scatter points per definition, interval-ordered,
	// so the merged r.stats layout is independent of worker scheduling.
	statsByDef [][]IntervalStat
	// Reference-interval capture (trace 1 only).
	refRecs []trace.Record
	refRes5 flow.Result
	refResP flow.Result
}

// measureSuite measures every trace of the suite: each worker streams its
// trace's generator straight into an interval splitter (both flow
// definitions at once) and a rate binner, so records are consumed in one
// pass and never materialised — memory per worker is O(active flows + one
// interval). Results are merged in (trace, definition, interval) order, so
// the cached statistics are byte-identical at any worker count.
func (r *Runner) measureSuite() error {
	if r.measured {
		return nil
	}
	workers := r.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.specs) {
		workers = len(r.specs)
	}
	results := make([]*traceResult, len(r.specs))
	errs := make([]error, len(r.specs))
	var wg sync.WaitGroup
	var aborted atomic.Bool
	tis := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range tis {
				// One failed trace aborts the traces not yet started
				// (indices are dispatched in order, so the first error by
				// index is always a real one, never this sentinel).
				if aborted.Load() {
					errs[ti] = fmt.Errorf("aborted after earlier trace failure")
					continue
				}
				results[ti], errs[ti] = r.measureTrace(ti, r.specs[ti])
				if errs[ti] != nil {
					aborted.Store(true)
				}
			}
		}()
	}
	for ti := range r.specs {
		tis <- ti
	}
	close(tis)
	wg.Wait()
	for ti, err := range errs {
		if err != nil {
			return fmt.Errorf("experiments: measuring %s: %w", r.specs[ti].Name, err)
		}
	}
	for ti, tr := range results {
		r.summaries = append(r.summaries, tr.summary)
		for di := range suiteDefs {
			r.stats = append(r.stats, tr.statsByDef[di]...)
		}
		if ti == 0 {
			r.refRecs = tr.refRecs
			r.refRes5 = tr.refRes5
			r.refResP = tr.refResP
		}
	}
	r.measured = true
	return nil
}

// measureTrace streams one trace through the one-pass measurement pipeline.
// It is called concurrently by measureSuite's workers and only reads shared
// Runner state.
func (r *Runner) measureTrace(ti int, spec trace.TraceSpec) (*traceResult, error) {
	link := r.linkBps()
	cfg := spec.Config()
	// Warm-up puts each trace in stationary regime (see trace.Config).
	cfg.Warmup = 60
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	binner, err := timeseries.NewBinner(spec.IntervalSec, r.opts.Delta)
	if err != nil {
		return nil, err
	}
	tr := &traceResult{statsByDef: make([][]IntervalStat, len(suiteDefs))}
	emit := func(iv flow.IntervalSet) error {
		for di, def := range suiteDefs {
			if len(iv.Results[di].Flows) < minIntervalFlows {
				continue // empty or sparse interval: skip before snapshotting
			}
			ivr := flow.IntervalResult{Index: iv.Index, Start: iv.Start, Result: iv.Results[di]}
			// Each definition subtracts its own discarded packets, so it
			// gets its own snapshot of the interval's rate series.
			stat, err := r.intervalStat(spec, ivr, def, binner.Series())
			if err != nil {
				continue // degenerate interval: skip the point
			}
			stat.linkBps = link
			tr.statsByDef[di] = append(tr.statsByDef[di], stat)
			if ti == 0 && iv.Index == 0 {
				if def == flow.By5Tuple {
					tr.refRes5 = ivr.Result
				} else {
					tr.refResP = ivr.Result
				}
			}
		}
		binner.Reset()
		return nil
	}
	split, err := flow.NewIntervalSplitter(suiteDefs, spec.IntervalSec, flow.DefaultTimeout, emit)
	if err != nil {
		return nil, err
	}
	for rec := range g.Records() {
		// The splitter flushes completed intervals (resetting the binner
		// via emit) before the record lands, so bin against the splitter's
		// current interval origin after Add.
		if err := split.Add(rec); err != nil {
			return nil, err
		}
		binner.Add(rec.Time-split.Origin(), rec.Bits())
		if ti == 0 && rec.Time < spec.IntervalSec {
			// Keep the first interval's packets for the reference figures.
			tr.refRecs = append(tr.refRecs, rec)
		}
	}
	if err := split.Close(); err != nil {
		return nil, err
	}
	tr.summary = g.Stats()
	return tr, nil
}

// minIntervalFlows is the fewest multi-packet flows an interval needs to
// yield a meaningful scatter point.
const minIntervalFlows = 10

// intervalStat computes one scatter point from an interval's flows and its
// binned rate series (which it owns and mutates).
func (r *Runner) intervalStat(spec trace.TraceSpec, iv flow.IntervalResult, def flow.Definition, series timeseries.Series) (IntervalStat, error) {
	if len(iv.Flows) < minIntervalFlows {
		return IntervalStat{}, fmt.Errorf("experiments: interval too sparse")
	}
	series.Subtract(iv.Discarded)
	in, err := core.InputFromFlows(iv.Flows, spec.IntervalSec)
	if err != nil {
		return IntervalStat{}, err
	}
	stat := IntervalStat{
		Trace:     spec.Name,
		TargetBps: spec.TargetBps,
		Index:     iv.Index,
		Def:       def,
		FlowCount: len(iv.Flows),
		Discarded: len(iv.Discarded),
		MeasMean:  series.Mean(),
		MeasVar:   series.Variance(),
		MeasCoV:   series.CoV(),
		Lambda:    in.Lambda,
		MeanS:     in.MeanS,
		MeanS2oD:  in.MeanS2OverD,
		ModelCoV:  map[int]float64{},
	}
	for _, b := range []int{0, 1, 2} {
		m, err := in.Model(core.PowerShot{B: float64(b)})
		if err != nil {
			return IntervalStat{}, err
		}
		v, err := m.AveragedVariance(r.opts.Delta)
		if err != nil {
			return IntervalStat{}, err
		}
		if mu := m.Mean(); mu > 0 {
			stat.ModelCoV[b] = math.Sqrt(v) / mu
		}
	}
	if b, _, err := core.FitPowerB(stat.MeasVar, in.Lambda, in.MeanS2OverD); err == nil {
		stat.FittedBRaw = b
	}
	return stat, nil
}

// Stats returns all per-interval statistics for the given definition,
// ordered by trace then interval.
func (r *Runner) Stats(def flow.Definition) ([]IntervalStat, error) {
	if err := r.measureSuite(); err != nil {
		return nil, err
	}
	var out []IntervalStat
	for _, s := range r.stats {
		if s.Def == def {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

// RefInterval returns the designated reference interval's packets and both
// flow measurements (trace 1, interval 0).
func (r *Runner) RefInterval() ([]trace.Record, flow.Result, flow.Result, error) {
	if err := r.measureSuite(); err != nil {
		return nil, flow.Result{}, flow.Result{}, err
	}
	return r.refRecs, r.refRes5, r.refResP, nil
}

// Summaries returns the per-trace generator summaries.
func (r *Runner) Summaries() ([]trace.Summary, error) {
	if err := r.measureSuite(); err != nil {
		return nil, err
	}
	return r.summaries, nil
}

// sep prints a section separator.
func sep(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
