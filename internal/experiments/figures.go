package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/stats"
)

// arrivalGaps returns the inter-arrival times of flows (flows are sorted by
// start time by the measurement pipeline).
func arrivalGaps(flows []flow.Flow) []float64 {
	if len(flows) < 2 {
		return nil
	}
	gaps := make([]float64, len(flows)-1)
	for i := 1; i < len(flows); i++ {
		gaps[i-1] = flows[i].Start - flows[i-1].Start
	}
	return gaps
}

// Fig1 reproduces Figure 1: the cumulative number of flow arrivals during
// one analysis interval under the /24 prefix definition, with the zoom near
// t = 0 showing the inflated arrival count caused by flows already in
// progress at the interval boundary (the splitting artefact of §III).
func (r *Runner) Fig1(w io.Writer) error {
	sep(w, "Figure 1 — cumulative flow arrivals in one interval (/24 prefix flows)")
	_, _, resP, err := r.RefInterval()
	if err != nil {
		return err
	}
	flows := resP.Flows
	if len(flows) == 0 {
		return fmt.Errorf("experiments: reference interval has no prefix flows")
	}
	interval := r.specs[0].IntervalSec
	total := len(flows)
	fmt.Fprintf(w, "total flows: %d over %.0f s\n", total, interval)
	if !r.opts.Quiet {
		fmt.Fprintln(w, "time(s)  cumulative")
		step := interval / 30
		i := 0
		for t := step; t <= interval+1e-9; t += step {
			for i < total && flows[i].Start <= t {
				i++
			}
			fmt.Fprintf(w, "%7.1f  %d\n", t, i)
		}
		fmt.Fprintln(w, "zoom near 0 (first 2% of the interval):")
		zoomEnd := interval * 0.02
		i = 0
		for t := zoomEnd / 10; t <= zoomEnd+1e-12; t += zoomEnd / 10 {
			for i < total && flows[i].Start <= t {
				i++
			}
			fmt.Fprintf(w, "%7.3f  %d\n", t, i)
		}
	}
	// Continuation flows: arrivals in the first 0.4% of the interval
	// (the paper's 0.4 s of a 30-minute interval) versus the steady-state
	// expectation for that span.
	frac := 0.004
	var early int
	for _, f := range flows {
		if f.Start <= interval*frac {
			early++
		}
	}
	expected := float64(total) * frac
	fmt.Fprintf(w, "flows in first %.1f%% of interval: %d (steady-state expectation %.0f)\n",
		frac*100, early, expected)
	fmt.Fprintf(w, "=> continuation (split) flows ≈ %d of %d total (%.1f%%) — marginal, as §III argues\n",
		early-int(expected), total, 100*float64(early-int(expected))/float64(total))
	return nil
}

// figInterArrivals is the shared body of Figures 3 and 4.
func (r *Runner) figInterArrivals(w io.Writer, def flow.Definition, title string) error {
	sep(w, title)
	_, res5, resP, err := r.RefInterval()
	if err != nil {
		return err
	}
	res := res5
	if def == flow.ByPrefix24 {
		res = resP
	}
	gaps := arrivalGaps(res.Flows)
	if len(gaps) < 100 {
		return fmt.Errorf("experiments: too few flows (%d) for inter-arrival analysis", len(gaps))
	}
	pts, err := stats.QQExponential(gaps, 20)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "qq-plot vs exponential (sample quantile, exponential quantile) in ms:")
	for _, p := range pts {
		fmt.Fprintf(w, "%10.4f %10.4f\n", p.Sample*1e3, p.Theoretical*1e3)
	}
	dev := stats.QQMaxDeviation(pts, stats.Mean(gaps), 0.95)
	fmt.Fprintf(w, "max central deviation: %.2f mean gaps (close to exponential when ≪ 1)\n", dev)
	acf := stats.AutoCorrelation(gaps, 20)
	fmt.Fprintln(w, "auto-correlation of inter-arrival times, lags 0..20:")
	printACF(w, acf)
	return nil
}

// Fig3 reproduces Figure 3: inter-arrival qq-plot and autocorrelation for
// 5-tuple flows — the empirical support for Assumption 1 (Poisson).
func (r *Runner) Fig3(w io.Writer) error {
	return r.figInterArrivals(w, flow.By5Tuple,
		"Figure 3 — inter-arrival distribution and correlation (5-tuple flows)")
}

// Fig4 reproduces Figure 4: same as Fig3 under the /24 prefix definition.
func (r *Runner) Fig4(w io.Writer) error {
	return r.figInterArrivals(w, flow.ByPrefix24,
		"Figure 4 — inter-arrival distribution and correlation (/24 prefix flows)")
}

// figSizeDuration is the shared body of Figures 5 and 6.
func (r *Runner) figSizeDuration(w io.Writer, def flow.Definition, title string) error {
	sep(w, title)
	_, res5, resP, err := r.RefInterval()
	if err != nil {
		return err
	}
	res := res5
	if def == flow.ByPrefix24 {
		res = resP
	}
	sizes := make([]float64, len(res.Flows))
	durs := make([]float64, len(res.Flows))
	for i, f := range res.Flows {
		sizes[i] = f.SizeBits()
		durs[i] = f.Duration()
	}
	fmt.Fprintln(w, "auto-correlation of flow durations {D_n}, lags 0..20:")
	printACF(w, stats.AutoCorrelation(durs, 20))
	fmt.Fprintln(w, "auto-correlation of flow sizes {S_n}, lags 0..20:")
	printACF(w, stats.AutoCorrelation(sizes, 20))
	fmt.Fprintf(w, "size/duration cross-correlation of the same flow: %.3f (correlated, as §IV notes)\n",
		stats.CrossCorrelation(sizes, durs))
	return nil
}

// Fig5 reproduces Figure 5: serial correlation of {S_n} and {D_n} for
// 5-tuple flows — the empirical support for Assumption 2 (iid flows).
func (r *Runner) Fig5(w io.Writer) error {
	return r.figSizeDuration(w, flow.By5Tuple,
		"Figure 5 — correlation of flow sizes and durations (5-tuple flows)")
}

// Fig6 reproduces Figure 6: same as Fig5 under the /24 prefix definition.
func (r *Runner) Fig6(w io.Writer) error {
	return r.figSizeDuration(w, flow.ByPrefix24,
		"Figure 6 — correlation of flow sizes and durations (/24 prefix flows)")
}

// Fig7 reproduces Figure 7: the four canonical shot shapes, sampled for a
// unit flow (S = 1, D = 1), so their normalisation is visible.
func (r *Runner) Fig7(w io.Writer) error {
	sep(w, "Figure 7 — shot shapes x(t) for a unit flow (S=1, D=1)")
	shots := []core.Shot{
		core.Rectangular,
		core.Triangular,
		core.PowerShot{B: 0.5},
		core.Parabolic,
	}
	fmt.Fprintf(w, "%6s", "t")
	for _, s := range shots {
		fmt.Fprintf(w, " %18s", s.Name())
	}
	fmt.Fprintln(w)
	for i := 0; i <= 20; i++ {
		t := float64(i) / 20
		fmt.Fprintf(w, "%6.2f", t)
		for _, s := range shots {
			fmt.Fprintf(w, " %18.4f", s.Rate(1, 1, t))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "each column integrates to 1 (the flow size constraint, eq. 5)")
	return nil
}

// Fig8 reproduces Figure 8: the model's autocorrelation coefficient of the
// total rate, ρ(τ) for τ up to 400 ms, for b = 0, 1, 2 under both flow
// definitions (Theorem 2 applied to the measured flow population).
func (r *Runner) Fig8(w io.Writer) error {
	sep(w, "Figure 8 — model autocorrelation of the total rate (Theorem 2)")
	_, res5, resP, err := r.RefInterval()
	if err != nil {
		return err
	}
	interval := r.specs[0].IntervalSec
	for _, defCase := range []struct {
		name string
		res  flow.Result
	}{
		{"5-tuple flows", res5},
		{"/24 prefix flows", resP},
	} {
		in, err := core.InputFromFlows(defCase.res.Flows, interval)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n%8s %8s %8s %8s\n", defCase.name, "tau(ms)", "b=0", "b=1", "b=2")
		models := make([]*core.Model, 0, 3)
		for _, b := range []float64{0, 1, 2} {
			m, err := in.Model(core.PowerShot{B: b})
			if err != nil {
				return err
			}
			models = append(models, m)
		}
		for tau := 0.0; tau <= 0.4001; tau += 0.025 {
			fmt.Fprintf(w, "%8.0f", tau*1e3)
			for _, m := range models {
				fmt.Fprintf(w, " %8.4f", m.AutoCorrelation(tau))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "prefix flows decay more slowly (longer durations), as in the paper")
	return nil
}

// scatter is the shared body of Figures 9, 10, 12, 13: measured CoV on the
// x-axis, model CoV on the y-axis, one point per 30-minute-equivalent
// interval, with the paper's ±20% error band summarised.
func (r *Runner) scatter(w io.Writer, def flow.Definition, b int, title string) error {
	sep(w, title)
	sts, err := r.Stats(def)
	if err != nil {
		return err
	}
	if len(sts) == 0 {
		return fmt.Errorf("experiments: no intervals measured")
	}
	if !r.opts.Quiet {
		fmt.Fprintf(w, "%-9s %4s %-16s %12s %12s %8s\n",
			"trace", "ivl", "util-class", "measured(%)", "model(%)", "relerr")
	}
	var within20, n int
	var sumAbs float64
	for _, s := range sts {
		model, ok := s.ModelCoV[b]
		if !ok || s.MeasCoV == 0 {
			continue
		}
		rel := (model - s.MeasCoV) / s.MeasCoV
		if math.Abs(rel) <= 0.20 {
			within20++
		}
		sumAbs += math.Abs(rel)
		n++
		if !r.opts.Quiet {
			fmt.Fprintf(w, "%-9s %4d %-16s %12.2f %12.2f %+7.1f%%\n",
				s.Trace, s.Index, s.UtilClass(), s.MeasCoV*100, model*100, rel*100)
		}
	}
	if n == 0 {
		return fmt.Errorf("experiments: no usable scatter points")
	}
	fmt.Fprintf(w, "points: %d; within ±20%% band: %d (%.0f%%); mean |rel err|: %.1f%%\n",
		n, within20, 100*float64(within20)/float64(n), 100*sumAbs/float64(n))
	return nil
}

// Fig9 reproduces Figure 9: CoV scatter, 5-tuple flows, triangular shots.
// The paper finds the triangular shot often under-estimates for 5-tuple
// flows (it misses part of the TCP ramp dynamics).
func (r *Runner) Fig9(w io.Writer) error {
	return r.scatter(w, flow.By5Tuple, 1,
		"Figure 9 — CoV of total rate: model (triangular, b=1) vs measured, 5-tuple flows")
}

// Fig10 reproduces Figure 10: CoV scatter, 5-tuple flows, parabolic shots —
// the best-fitting shape for 5-tuple flows in the paper.
func (r *Runner) Fig10(w io.Writer) error {
	return r.scatter(w, flow.By5Tuple, 2,
		"Figure 10 — CoV of total rate: model (parabolic, b=2) vs measured, 5-tuple flows")
}

// Fig11 reproduces Figure 11: the histogram of the fitted power b̂ across
// intervals (5-tuple flows). The paper's average is ≈ 2.
func (r *Runner) Fig11(w io.Writer) error {
	sep(w, "Figure 11 — fitted power b̂ of the flow rate function (5-tuple flows)")
	sts, err := r.Stats(flow.By5Tuple)
	if err != nil {
		return err
	}
	h, err := stats.NewHistogram(0, 8, 16)
	if err != nil {
		return err
	}
	var mean stats.Moments
	for _, s := range sts {
		h.Add(s.FittedBRaw)
		mean.Add(s.FittedBRaw)
	}
	if mean.N() == 0 {
		return fmt.Errorf("experiments: no fitted intervals")
	}
	fmt.Fprint(w, h.String())
	fmt.Fprintf(w, "mean b̂ = %.2f over %d intervals (paper: ≈ 2; raw fit biased low by Δ-averaging, §V-F)\n",
		mean.Mean(), mean.N())
	return nil
}

// Fig12 reproduces Figure 12: CoV scatter, /24 prefix flows, rectangular
// shots — aggregation dilutes transport dynamics, so the flattest shot fits.
func (r *Runner) Fig12(w io.Writer) error {
	return r.scatter(w, flow.ByPrefix24, 0,
		"Figure 12 — CoV of total rate: model (rectangular, b=0) vs measured, /24 prefix flows")
}

// Fig13 reproduces Figure 13: CoV scatter, /24 prefix flows, triangular
// shots.
func (r *Runner) Fig13(w io.Writer) error {
	return r.scatter(w, flow.ByPrefix24, 1,
		"Figure 13 — CoV of total rate: model (triangular, b=1) vs measured, /24 prefix flows")
}

// printACF prints one autocorrelation sequence per line pair.
func printACF(w io.Writer, acf []float64) {
	for k, v := range acf {
		fmt.Fprintf(w, "  lag %2d: %+.3f\n", k, v)
	}
}
