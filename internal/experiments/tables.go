package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/predict"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Table1 reproduces Table I: the trace suite summary — dates and lengths
// from the paper, the scaled target utilisation, and the realised average
// rate of each generated trace.
func (r *Runner) Table1(w io.Writer) error {
	sep(w, "Table I — trace suite (scaled reproduction)")
	sums, err := r.Summaries()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-14s %-8s %10s %12s %12s %10s %10s\n",
		"trace", "date", "length", "paperMbps", "targetMbps", "actualMbps", "flows", "packets")
	for i, spec := range r.specs {
		s := sums[i]
		fmt.Fprintf(w, "%-8s %-14s %-8s %10.0f %12.2f %12.2f %10d %10d\n",
			spec.Name, spec.Entry.Date, spec.Entry.Length,
			spec.Entry.AvgMbps, spec.TargetBps/1e6, s.AvgRateBps/1e6,
			s.Flows, s.Packets)
	}
	fmt.Fprintf(w, "link scaled to %.0f Mb/s (paper: OC-12, 622 Mb/s); utilisation fractions preserved\n",
		r.linkBps()/1e6)
	return nil
}

// PredictionSetup holds the dedicated trace used for Table II and Fig 14.
type PredictionSetup struct {
	Duration float64
	Series   timeseries.Series // Δ-binned measured rate (discards removed)
	Flows    []flow.Flow
}

// predictionTrace generates the prediction experiment's trace: one long
// analysis window at a mid-utilisation operating point (the paper uses one
// 30-minute trace from Table I).
func (r *Runner) predictionTrace(duration float64, seed int64) (*PredictionSetup, error) {
	spec := r.specs[4] // trace-5: 136 Mb/s on the OC-12, the paper's mid class
	cfg := spec.Config()
	cfg.Duration = duration
	cfg.Warmup = 60
	cfg.Seed = seed
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: prediction trace: %w", err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		return nil, err
	}
	series, err := timeseries.Bin(recs, duration, r.opts.Delta)
	if err != nil {
		return nil, err
	}
	series.Subtract(res.Discarded)
	return &PredictionSetup{Duration: duration, Series: series, Flows: res.Flows}, nil
}

// predictOne evaluates both predictor families at one sampling interval ell
// and returns (order, test error) for the measured-ACF and the model-ACF
// approaches.
func predictOne(ps *PredictionSetup, delta float64, ell float64) (mMeas int, errMeas float64, mModel int, errModel float64, err error) {
	k := int(ell / delta)
	if k < 1 {
		return 0, 0, 0, 0, fmt.Errorf("experiments: ell %g below delta %g", ell, delta)
	}
	sampled, err := ps.Series.Downsample(k)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	n := len(sampled.Rate)
	if n < 12 {
		return 0, 0, 0, 0, fmt.Errorf("experiments: only %d samples at ell=%g", n, ell)
	}
	half := n / 2
	train, test := sampled.Rate[:half], sampled.Rate[half:]
	const maxM = 8

	// Measured approach: ACF from the training samples themselves.
	maxLag := maxM
	if maxLag > half/2 {
		maxLag = half / 2
	}
	if maxLag < 1 {
		maxLag = 1
	}
	rhoMeas := predict.MeasuredACF(train, maxLag)
	pm, _, err := predict.SelectOrder(rhoMeas, train, maxM)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("experiments: measured predictor: %w", err)
	}
	em, err := pm.Evaluate(test)
	if err != nil {
		return 0, 0, 0, 0, err
	}

	// Model approach: ACF from Theorem 2 on the flows of the training half.
	var trainFlows []flow.Flow
	for _, f := range ps.Flows {
		if f.Start < ps.Duration/2 {
			trainFlows = append(trainFlows, f)
		}
	}
	in, err := core.InputFromFlows(trainFlows, ps.Duration/2)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	model, err := in.Model(core.Triangular)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	rhoModel, err := predict.ModelACF(model, ell, maxM)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	pM, _, err := predict.SelectOrder(rhoModel, train, maxM)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("experiments: model predictor: %w", err)
	}
	eM, err := pM.Evaluate(test)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return pm.P.Order(), em, pM.P.Order(), eM, nil
}

// Table2 reproduces Table II: prediction error (percent) versus the
// prediction interval ℓ for the two predictor families. The expected shape:
// comparable errors at small ℓ, with the model-based predictor degrading
// more gracefully at large ℓ where rate samples run out.
func (r *Runner) Table2(w io.Writer, duration float64, seed int64) error {
	sep(w, "Table II — prediction of the total rate (MA predictor, §VII-B)")
	if duration == 0 {
		duration = 1800
	}
	ps, err := r.predictionTrace(duration, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace: %.0f s at %.1f Mb/s mean; Δ=%.0f ms; train/test halves\n",
		duration, ps.Series.Mean()/1e6, r.opts.Delta*1e3)
	fmt.Fprintf(w, "%8s | %8s %10s | %8s %10s\n",
		"ell(s)", "M-meas", "err-meas", "M-model", "err-model")
	for _, ell := range []float64{2, 5, 10, 30, 60} {
		mm, em, mM, eM, err := predictOne(ps, r.opts.Delta, ell)
		if err != nil {
			fmt.Fprintf(w, "%8.0f | %s\n", ell, err)
			continue
		}
		fmt.Fprintf(w, "%8.0f | %8d %9.2f%% | %8d %9.2f%%\n", ell, mm, em*100, mM, eM*100)
	}
	fmt.Fprintln(w, "(paper Table II: errors 3.9-5.6%, model-based wins at large ell)")
	return nil
}

// Fig14 reproduces Figure 14: the measured rate overlaid with its one-step
// prediction at ℓ = 10 s, for both predictor families.
func (r *Runner) Fig14(w io.Writer, duration float64, seed int64) error {
	sep(w, "Figure 14 — predicted vs measured total rate (ell = 10 s)")
	if duration == 0 {
		duration = 1800
	}
	ps, err := r.predictionTrace(duration, seed)
	if err != nil {
		return err
	}
	const ell = 10.0
	k := int(ell / r.opts.Delta)
	sampled, err := ps.Series.Downsample(k)
	if err != nil {
		return err
	}
	series := sampled.Rate
	half := len(series) / 2
	// Model-based predictor trained on the first half.
	var trainFlows []flow.Flow
	for _, f := range ps.Flows {
		if f.Start < ps.Duration/2 {
			trainFlows = append(trainFlows, f)
		}
	}
	in, err := core.InputFromFlows(trainFlows, ps.Duration/2)
	if err != nil {
		return err
	}
	model, err := in.Model(core.Triangular)
	if err != nil {
		return err
	}
	rhoModel, err := predict.ModelACF(model, ell, 8)
	if err != nil {
		return err
	}
	pModel, _, err := predict.SelectOrder(rhoModel, series[:half], 8)
	if err != nil {
		return err
	}
	rhoMeas := predict.MeasuredACF(series[:half], 8)
	pMeas, _, err := predict.SelectOrder(rhoMeas, series[:half], 8)
	if err != nil {
		return err
	}
	hatModel := pModel.PredictSeries(series)
	hatMeas := pMeas.PredictSeries(series)
	if !r.opts.Quiet {
		fmt.Fprintf(w, "%8s %12s %14s %14s\n", "t(s)", "measured", "pred(model)", "pred(meas)")
		for i := half; i < len(series); i++ {
			fmt.Fprintf(w, "%8.0f %12.0f %14.0f %14.0f\n",
				float64(i)*ell, series[i], hatModel[i], hatMeas[i])
		}
	}
	rms := func(hat []float64) float64 {
		var se float64
		var n int
		for i := half; i < len(series); i++ {
			if math.IsNaN(hat[i]) {
				continue
			}
			d := hat[i] - series[i]
			se += d * d
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return math.Sqrt(se / float64(n))
	}
	mean := 0.0
	for _, v := range series[half:] {
		mean += v
	}
	mean /= float64(len(series) - half)
	fmt.Fprintf(w, "test-half RMS error: model-ACF %.2f%%, measured-ACF %.2f%% of the mean rate\n",
		100*rms(hatModel)/mean, 100*rms(hatMeas)/mean)
	return nil
}
