package flow

import (
	"math/rand"
	"testing"
)

// TestSweepExpiredDifferential drives flowTable insert/update/delete churn
// interleaved with incremental sweepExpired steps against a map+timestamp
// reference. The degenerate hash collapses the whole table onto one probe
// chain, so expiry deletions constantly backward-shift entries through the
// sweep cursor — the exact interleaving the incremental sweep must survive.
func TestSweepExpiredDifferential(t *testing.T) {
	type key struct{ a, b uint64 }
	type refEntry struct {
		slot int32
		last float64
	}
	for _, tc := range []struct {
		name string
		hash func(a, b uint64) uint64
	}{
		{"real-hash", hashKey},
		{"degenerate-hash", func(a, b uint64) uint64 { return 7 }},
		{"paired-hash", func(a, b uint64) uint64 { return hashKey(a/2, b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			var tab flowTable
			tab.reset()
			ref := map[key]refEntry{}
			slotKey := map[int32]key{}
			now := 0.0
			nextSlot := int32(0)
			const timeout = 30.0
			for op := 0; op < 30000; op++ {
				now += rng.Float64() * 0.5
				k := key{uint64(rng.Intn(300)), uint64(rng.Intn(4))}
				h := tc.hash(k.a, k.b)
				switch {
				case rng.Intn(10) < 7: // touch: insert or refresh last-seen
					pos, found := tab.find(h, k.a, k.b)
					re, refFound := ref[k]
					if found != refFound {
						t.Fatalf("op %d: find(%v) = %v, reference %v", op, k, found, refFound)
					}
					if !found {
						slot := nextSlot
						nextSlot++
						pos = tab.insert(pos, h, k.a, k.b, slot)
						ref[k] = refEntry{slot: slot, last: now}
						slotKey[slot] = k
					} else {
						re.last = now
						ref[k] = re
					}
					tab.last[pos] = now
				case len(ref) > 0 && rng.Intn(4) == 0: // explicit delete
					pos, found := tab.find(h, k.a, k.b)
					_, refFound := ref[k]
					if found != refFound {
						t.Fatalf("op %d: pre-delete find(%v) = %v, reference %v", op, k, found, refFound)
					}
					if found {
						delete(slotKey, tab.slot[pos])
						tab.del(pos)
						delete(ref, k)
					}
				default: // incremental expiry step
					deadline := now - timeout
					tab.sweepExpired(deadline, 32, func(slot int32) {
						kk, ok := slotKey[slot]
						if !ok {
							t.Fatalf("op %d: sweep evicted unknown slot %d", op, slot)
						}
						re := ref[kk]
						if !(re.last < deadline) {
							t.Fatalf("op %d: sweep evicted live key %v (last %g, deadline %g)",
								op, kk, re.last, deadline)
						}
						delete(ref, kk)
						delete(slotKey, slot)
					})
				}
				if tab.n != len(ref) {
					t.Fatalf("op %d: table holds %d entries, reference %d", op, tab.n, len(ref))
				}
			}
			// Lookup parity over the full key space at the end.
			for a := uint64(0); a < 300; a++ {
				for b := uint64(0); b < 4; b++ {
					k := key{a, b}
					h := tc.hash(k.a, k.b)
					pos, found := tab.find(h, k.a, k.b)
					re, refFound := ref[k]
					if found != refFound {
						t.Fatalf("final find(%v) = %v, reference %v", k, found, refFound)
					}
					if found && tab.slot[pos] != re.slot {
						t.Fatalf("final slot(%v) = %d, reference %d", k, tab.slot[pos], re.slot)
					}
				}
			}
		})
	}
}

// TestSweepExpiredFullRotationFindsAllIdle checks the rotation guarantee:
// enough consecutive steps to cover the table evict every idle entry, and
// live entries survive untouched.
func TestSweepExpiredFullRotationFindsAllIdle(t *testing.T) {
	var tab flowTable
	tab.reset()
	// 100 idle entries (last = 1) and 50 live ones (last = 100).
	for i := 0; i < 150; i++ {
		a, b := uint64(i), uint64(0)
		h := hashKey(a, b)
		pos, found := tab.find(h, a, b)
		if found {
			t.Fatal("duplicate key in setup")
		}
		pos = tab.insert(pos, h, a, b, int32(i))
		if i < 100 {
			tab.last[pos] = 1
		} else {
			tab.last[pos] = 100
		}
	}
	evicted := map[int32]bool{}
	deadline := 50.0
	// Steps of 16 positions; 2*size/16 steps guarantee a full rotation even
	// with deleting steps not advancing the cursor (each delete shrinks the
	// remaining work).
	steps := 2 * len(tab.hash) / 16
	for s := 0; s < steps; s++ {
		tab.sweepExpired(deadline, 16, func(slot int32) {
			if evicted[slot] {
				t.Fatalf("slot %d evicted twice", slot)
			}
			evicted[slot] = true
		})
	}
	if len(evicted) != 100 {
		t.Fatalf("full rotation evicted %d idle entries, want 100", len(evicted))
	}
	for slot := range evicted {
		if slot >= 100 {
			t.Fatalf("live slot %d evicted", slot)
		}
	}
	if tab.n != 50 {
		t.Fatalf("table holds %d entries after expiry, want 50", tab.n)
	}
}

// TestAssemblerExpiryInterleavedWithChurn runs the assembler over a stream
// engineered so incremental expiry, timeout flow splits, and table growth
// all interleave, and compares against the map reference — results must be
// identical no matter when eviction happens.
func TestAssemblerExpiryInterleavedWithChurn(t *testing.T) {
	for seed := int64(40); seed < 43; seed++ {
		recs := randomRecords(8000, seed)
		// Stretch time so many flows idle past the 5 s timeout.
		for i := range recs {
			recs[i].Time *= 3
		}
		a, err := NewAssembler(By5Tuple, 5)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefAssembler(By5Tuple, 5)
		for _, rec := range recs {
			if err := a.Add(rec); err != nil {
				t.Fatal(err)
			}
			ref.add(rec)
		}
		got, want := a.Flush(), ref.flush()
		if !resultsEqual(got, want) {
			t.Fatalf("seed %d: expiry-churn stream diverged from reference (%d/%d vs %d/%d)",
				seed, len(got.Flows), len(got.Discarded), len(want.Flows), len(want.Discarded))
		}
	}
}
