package flow

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// partitionMeasure runs recs through a partitioner, measuring each
// interval's stream under def in a goroutine (a stream only closes when the
// next interval opens, so the handoff must not wait on its own interval),
// and harvests the results in handoff order after Close.
func partitionMeasure(t *testing.T, recs []trace.Record, def Definition, intervalSec, duration float64) []IntervalResult {
	t.Helper()
	var pending []chan IntervalResult
	p, err := NewIntervalPartitioner(intervalSec, duration, 16, func(is *IntervalStream) error {
		res := make(chan IntervalResult, 1)
		go func() {
			results, err := MeasureStream(is.Records(), []Definition{def}, DefaultTimeout)
			if err != nil {
				t.Error(err)
				results = []Result{{}}
			}
			res <- IntervalResult{Index: is.Index, Start: is.Start, Result: results[0]}
		}()
		pending = append(pending, res)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := p.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	out := make([]IntervalResult, 0, len(pending))
	for _, res := range pending {
		out = append(out, <-res)
	}
	return out
}

// The partition mode must account intervals exactly like the splitter: same
// interval count, same flows, same rebased times, for a realistic stream.
func TestIntervalPartitionerMatchesMeasureIntervals(t *testing.T) {
	recs := syntheticRecs(t)
	const intervalSec = 10.0
	for _, def := range []Definition{By5Tuple, ByPrefix24} {
		want, err := MeasureIntervals(recs, def, intervalSec, DefaultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		got := partitionMeasure(t, recs, def, intervalSec, 0)
		if len(got) != len(want) {
			t.Fatalf("%s: %d intervals, want %d", def, len(got), len(want))
		}
		for i := range want {
			if got[i].Index != want[i].Index || got[i].Start != want[i].Start {
				t.Fatalf("%s: interval %d header mismatch", def, i)
			}
			if !sameResults(got[i].Result, want[i].Result) {
				t.Fatalf("%s: interval %d flows differ from splitter path", def, i)
			}
		}
	}
}

// Concurrent consumers (one goroutine per interval, like the suite's
// scheduler) must see exactly the same sub-streams as serial consumption.
func TestIntervalPartitionerConcurrentConsumers(t *testing.T) {
	recs := syntheticRecs(t)
	const intervalSec = 10.0
	const duration = 40.0
	want, err := MeasureIntervals(recs, By5Tuple, intervalSec, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]Result, len(want))
	var wg sync.WaitGroup
	p, err := NewIntervalPartitioner(intervalSec, duration, 8, func(is *IntervalStream) error {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := MeasureStream(is.Records(), []Definition{By5Tuple}, DefaultTimeout)
			if err != nil {
				t.Error(err)
				return
			}
			results[is.Index] = res[0]
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := p.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := range want {
		if !sameResults(results[i], want[i].Result) {
			t.Fatalf("interval %d differs under concurrent consumption", i)
		}
	}
}

// With a declared duration, a stream that goes quiet early still hands off
// every interval — the trailing ones as immediately-closed empty streams.
func TestIntervalPartitionerTrailingQuietIntervals(t *testing.T) {
	recs := []trace.Record{
		rec(0.5, 1, 1, 1000, 100),
		rec(1.0, 1, 1, 1000, 100),
	}
	var indices []int
	counts := make(chan [2]int, 8) // (index, records drained)
	p, err := NewIntervalPartitioner(10, 50, 4, func(is *IntervalStream) error {
		indices = append(indices, is.Index)
		go func() {
			n := 0
			for range is.Records() {
				n++
			}
			counts <- [2]int{is.Index, n}
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := p.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(indices) != 5 {
		t.Fatalf("handed off %d intervals, want 5 (⌈50/10⌉)", len(indices))
	}
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("interval %d handed off as index %d", i, idx)
		}
	}
	got := map[int]int{}
	for range indices {
		c := <-counts
		got[c[0]] = c[1]
	}
	want := map[int]int{0: 2, 1: 0, 2: 0, 3: 0, 4: 0}
	for idx, n := range want {
		if got[idx] != n {
			t.Fatalf("interval %d drained %d records, want %d", idx, got[idx], n)
		}
	}
}

// Negative timestamps are rejected in partition mode too.
func TestIntervalPartitionerRejectsNegativeTime(t *testing.T) {
	p, err := NewIntervalPartitioner(10, 0, 4, func(is *IntervalStream) error {
		go func() {
			for range is.Records() {
			}
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(rec(-1, 1, 1, 1000, 100)); err == nil {
		t.Fatal("negative-time packet should be rejected")
	}
	p.Abort()
}

// Abort must close the in-flight stream so a blocked consumer terminates,
// and further Close calls must be no-ops.
func TestIntervalPartitionerAbort(t *testing.T) {
	drained := make(chan int, 1)
	p, err := NewIntervalPartitioner(10, 0, 4, func(is *IntervalStream) error {
		go func() {
			n := 0
			for range is.Records() {
				n++
			}
			drained <- n
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(rec(1, 1, 1, 1000, 100)); err != nil {
		t.Fatal(err)
	}
	p.Abort()
	if n := <-drained; n != 1 {
		t.Fatalf("consumer drained %d records, want 1", n)
	}
	if err := p.Close(); err != nil {
		t.Fatal("Close after Abort should be a no-op, got", err)
	}
}

// MeasureStream must honour its always-drain contract even when assembler
// construction fails — otherwise a concurrent producer blocks forever on
// the undrained stream.
func TestMeasureStreamDrainsOnBadDefinition(t *testing.T) {
	consumed := 0
	seq := func(yield func(trace.Record) bool) {
		for i := 0; i < 5; i++ {
			consumed++
			if !yield(rec(float64(i), 1, 1, 1000, 100)) {
				return
			}
		}
	}
	if _, err := MeasureStream(seq, []Definition{Definition(99)}, DefaultTimeout); err == nil {
		t.Fatal("unknown definition should be rejected")
	}
	if consumed != 5 {
		t.Fatalf("stream drained %d of 5 records on the error path", consumed)
	}
}

// An exactly-divisible duration whose float ratio lands a few ulp above the
// integer (e.g. 7×0.3/0.3 = 8 under Ceil) must not invent a phantom
// interval: the count drives scheduler bookkeeping sized to the true total.
func TestIntervalClockFloatRobustTotal(t *testing.T) {
	for _, tc := range []struct {
		n   int
		ivl float64
	}{
		{7, 0.3}, {14, 0.3}, {28, 0.3}, {61, 0.3}, {79, 120}, {3, 0.1},
	} {
		var count int
		s, err := NewIntervalSplitter([]Definition{By5Tuple}, tc.ivl, DefaultTimeout,
			func(IntervalSet) error { count++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetDuration(float64(tc.n) * tc.ivl); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(rec(tc.ivl/2, 1, 1, 1000, 100)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if count != tc.n {
			t.Fatalf("duration %d×%g emitted %d intervals, want %d", tc.n, tc.ivl, count, tc.n)
		}
	}
}

func TestIntervalPartitionerValidation(t *testing.T) {
	handoff := func(*IntervalStream) error { return nil }
	if _, err := NewIntervalPartitioner(0, 0, 4, handoff); err == nil {
		t.Fatal("zero interval should be rejected")
	}
	if _, err := NewIntervalPartitioner(10, -1, 4, handoff); err == nil {
		t.Fatal("negative duration should be rejected")
	}
	if _, err := NewIntervalPartitioner(10, 0, 0, handoff); err == nil {
		t.Fatal("zero buffer should be rejected")
	}
	if _, err := NewIntervalPartitioner(10, 0, 4, nil); err == nil {
		t.Fatal("nil handoff should be rejected")
	}
}
