package flow

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// churn builds a deterministic packet stream with flow churn: many keys,
// revisited at staggered gaps so some flows stay open, some time out, and
// some are single-packet discards.
func churn(n int, t0 float64) []trace.Record {
	recs := make([]trace.Record, 0, n)
	t := t0
	for i := 0; i < n; i++ {
		t += 0.05 + float64(i%7)*0.01
		recs = append(recs, rec(t, byte(i%11), byte(i%5), uint16(1000+i%13), uint16(100+i%800)))
	}
	return recs
}

// TestAssemblerSnapshotDifferential is the restore ≡ live contract: feed a
// prefix, snapshot, restore into a fresh assembler, feed the identical
// suffix to both, and require identical flushed results.
func TestAssemblerSnapshotDifferential(t *testing.T) {
	for _, def := range []Definition{By5Tuple, ByPrefix24} {
		live, err := NewAssembler(def, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		recs := churn(500, 0)
		split := 240
		for _, r := range recs[:split] {
			if err := live.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		st := live.SnapshotState()

		restored, err := NewAssembler(def, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.RestoreState(st); err != nil {
			t.Fatalf("RestoreState(%v): %v", def, err)
		}
		for _, r := range recs[split:] {
			if err := live.Add(r); err != nil {
				t.Fatal(err)
			}
			if err := restored.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		a, b := live.Flush(), restored.Flush()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("def %v: restored assembler diverged from live:\nlive:     %+v\nrestored: %+v", def, a, b)
		}
	}
}

// TestAssemblerSnapshotIsStable asserts the snapshot value is independent of
// the table's physical history: an assembler that was restored (different
// insert order, different capacity growth) snapshots back to the same value.
func TestAssemblerSnapshotIsStable(t *testing.T) {
	a, err := NewAssembler(By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range churn(300, 0) {
		if err := a.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	st := a.SnapshotState()
	b, err := NewAssembler(By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if st2 := b.SnapshotState(); !reflect.DeepEqual(st, st2) {
		t.Fatalf("snapshot not stable across restore:\nfirst:  %+v\nsecond: %+v", st, st2)
	}
}

func TestAssemblerSnapshotCarriesUnflushed(t *testing.T) {
	// Timeout short enough that sweeps finalise flows mid-stream: the
	// snapshot must carry those unflushed results.
	a, err := NewAssembler(By5Tuple, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range churn(2000, 0) {
		if err := a.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	st := a.SnapshotState()
	if len(st.Flows)+len(st.Discarded) == 0 {
		t.Fatal("expected unflushed evicted flows in the snapshot (sweep never fired?)")
	}
	b, err := NewAssembler(By5Tuple, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if x, y := a.Flush(), b.Flush(); !reflect.DeepEqual(x, y) {
		t.Fatal("flushed results differ after restore")
	}
}

func TestAssemblerRestoreRejectsBadSnapshots(t *testing.T) {
	base := AssemblerState{
		Started:  true,
		LastTime: 10,
		Entries:  []FlowEntry{{KeyA: 1, KeyB: 2, Start: 1, Last: 2, Bytes: 100, Packets: 2}},
	}
	cases := map[string]func(*AssemblerState){
		"zero packets":  func(s *AssemblerState) { s.Entries[0].Packets = 0 },
		"end<start":     func(s *AssemblerState) { s.Entries[0].Last = 0.5 },
		"ahead of time": func(s *AssemblerState) { s.Entries[0].Last = 99 },
		"not started":   func(s *AssemblerState) { s.Started = false },
		"duplicate key": func(s *AssemblerState) { s.Entries = append(s.Entries, s.Entries[0]) },
	}
	for name, mutate := range cases {
		st := AssemblerState{
			Started:  base.Started,
			LastTime: base.LastTime,
			Entries:  append([]FlowEntry(nil), base.Entries...),
		}
		mutate(&st)
		a, err := NewAssembler(By5Tuple, DefaultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.RestoreState(st); err == nil {
			t.Errorf("%s: RestoreState accepted an invalid snapshot", name)
		}
		if a.ActiveFlows() != 0 {
			t.Errorf("%s: failed restore left %d flows behind", name, a.ActiveFlows())
		}
	}
}

func TestMeasurerSnapshotRoundTrip(t *testing.T) {
	defs := []Definition{By5Tuple, ByPrefix24}
	live, err := NewMeasurer(defs, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	recs := churn(400, 0)
	for _, r := range recs[:200] {
		if err := live.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	states := live.SnapshotStates()
	restored, err := NewMeasurer(defs, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreStates(states); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[200:] {
		if err := live.Add(r); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if x, y := live.Flush(), restored.Flush(); !reflect.DeepEqual(x, y) {
		t.Fatal("measurer results differ after restore")
	}

	if err := restored.RestoreStates(states[:1]); err == nil {
		t.Fatal("RestoreStates accepted a definition-count mismatch")
	}
}
