package flow

import (
	"fmt"

	"repro/internal/netpkt"
	"repro/internal/trace"
)

// streamMeasurer is the non-generic face of Assembler[K], letting the
// splitter hold assemblers with different key types side by side.
type streamMeasurer interface {
	Add(rec trace.Record) error
	Flush() Result
}

// newMeasurer builds the assembler for one flow definition.
func newMeasurer(def Definition, timeout float64) (streamMeasurer, error) {
	switch def {
	case By5Tuple:
		return NewAssembler((*netpkt.Header).Key5Tuple, timeout)
	case ByPrefix24:
		return NewAssembler((*netpkt.Header).KeyPrefix, timeout)
	case ByPrefix16:
		return NewAssembler(func(h *netpkt.Header) netpkt.IPv4Addr { return h.DstIP.PrefixN(16) }, timeout)
	case ByPrefix8:
		return NewAssembler(func(h *netpkt.Header) netpkt.IPv4Addr { return h.DstIP.PrefixN(8) }, timeout)
	default:
		return nil, fmt.Errorf("flow: unknown definition %d", int(def))
	}
}

// IntervalSet is the simultaneous measurement of one analysis interval under
// every definition of a splitter; Results is index-aligned with the defs the
// splitter was built with. Flow times are relative to the interval start.
type IntervalSet struct {
	Index   int
	Start   float64
	Results []Result
}

// IntervalSplitter consumes a time-ordered packet stream exactly once and
// measures consecutive analysis intervals under several flow definitions
// simultaneously. It replaces the per-definition re-scan (and the per-window
// record copy) of the materialised pipeline: memory is O(active flows),
// independent of trace length, so multi-hour traces stream straight from a
// generator.
//
// Flows are split at interval boundaries exactly as MeasureIntervals does
// ("flows that belong to 30 minutes intervals are split over the intervals
// they overlap"): each interval starts with fresh assemblers. Completed
// intervals — including empty ones between packets, which are data, not gaps
// — are handed to the emit callback in index order.
type IntervalSplitter struct {
	defs        []Definition
	intervalSec float64
	timeout     float64
	emit        func(IntervalSet) error

	asm      []streamMeasurer
	cur      int // index of the interval packets are currently feeding
	started  bool
	lastTime float64
}

// NewIntervalSplitter builds a splitter over the given definitions. emit is
// called once per completed interval, in order; its error aborts the stream.
func NewIntervalSplitter(defs []Definition, intervalSec, timeout float64, emit func(IntervalSet) error) (*IntervalSplitter, error) {
	if !(intervalSec > 0) {
		return nil, fmt.Errorf("flow: interval must be > 0, got %g", intervalSec)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("flow: splitter needs at least one definition")
	}
	if emit == nil {
		return nil, fmt.Errorf("flow: splitter needs an emit callback")
	}
	s := &IntervalSplitter{
		defs:        defs,
		intervalSec: intervalSec,
		timeout:     timeout,
		emit:        emit,
	}
	if err := s.resetAssemblers(); err != nil {
		return nil, err
	}
	return s, nil
}

// resetAssemblers starts the next interval with empty flow state (the
// paper's boundary split).
func (s *IntervalSplitter) resetAssemblers() error {
	if s.asm == nil {
		s.asm = make([]streamMeasurer, len(s.defs))
	}
	for i, def := range s.defs {
		a, err := newMeasurer(def, s.timeout)
		if err != nil {
			return err
		}
		s.asm[i] = a
	}
	return nil
}

// Origin returns the start time of the interval currently being fed: the
// offset a caller subtracts to rebase a just-Added record into the
// interval's local time frame (e.g. to rate-bin it in the same pass).
// Query it after Add, which may have advanced the interval.
func (s *IntervalSplitter) Origin() float64 { return float64(s.cur) * s.intervalSec }

// flushCurrent emits the current interval and re-arms the assemblers.
func (s *IntervalSplitter) flushCurrent() error {
	set := IntervalSet{
		Index:   s.cur,
		Start:   float64(s.cur) * s.intervalSec,
		Results: make([]Result, len(s.asm)),
	}
	for i, a := range s.asm {
		set.Results[i] = a.Flush()
	}
	if err := s.emit(set); err != nil {
		return err
	}
	s.cur++
	return s.resetAssemblers()
}

// Add consumes one packet. Packets must arrive in non-decreasing time order;
// a packet in a later interval first flushes every interval before it.
func (s *IntervalSplitter) Add(rec trace.Record) error {
	if s.started && rec.Time < s.lastTime {
		return fmt.Errorf("flow: packet out of order: %g after %g", rec.Time, s.lastTime)
	}
	s.started = true
	s.lastTime = rec.Time
	idx := int(rec.Time / s.intervalSec)
	for s.cur < idx {
		if err := s.flushCurrent(); err != nil {
			return err
		}
	}
	rec.Time -= float64(s.cur) * s.intervalSec
	for _, a := range s.asm {
		if err := a.Add(rec); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the final interval (the one containing the last packet). A
// splitter that never saw a packet emits nothing, matching the materialised
// path on an empty record set. The splitter must not be reused after Close.
func (s *IntervalSplitter) Close() error {
	if !s.started {
		return nil
	}
	return s.flushCurrent()
}
