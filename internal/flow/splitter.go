package flow

import (
	"fmt"
	"math"

	"repro/internal/netpkt"
	"repro/internal/trace"
)

// Measurer measures one packet stream under several flow definitions at
// once over shared key derivation: each block's per-definition key and hash
// columns are derived from the packed Src/Dst columns in vector passes —
// the 5-tuple in one pass over both columns, every prefix definition in one
// shared pass over the dst column — so adding a definition costs a mask and
// a mix per packet, never a re-extraction or a re-hash of the header.
type Measurer struct {
	defs    []Definition
	asm     []*Assembler
	prefixy []int    // indexes into defs of the prefix definitions
	drops   []uint64 // prefix low-bit masks, index-aligned with prefixy
	// Per-definition derived columns, index-aligned with the current block.
	hash [][]uint64
	keyA [][]uint64
	keyB [][]uint64
}

// NewMeasurer builds a measurer over the given definitions with the given
// flow timeout (use DefaultTimeout for the paper's 60 s).
func NewMeasurer(defs []Definition, timeout float64) (*Measurer, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("flow: measurer needs at least one definition")
	}
	m := &Measurer{
		defs: append([]Definition(nil), defs...),
		asm:  make([]*Assembler, len(defs)),
		hash: make([][]uint64, len(defs)),
		keyA: make([][]uint64, len(defs)),
		keyB: make([][]uint64, len(defs)),
	}
	for i, def := range m.defs {
		a, err := NewAssembler(def, timeout)
		if err != nil {
			return nil, err
		}
		m.asm[i] = a
		if def != By5Tuple {
			drop, _ := prefixDrop(def)
			m.prefixy = append(m.prefixy, i)
			m.drops = append(m.drops, drop)
		}
	}
	return m, nil
}

// Reset re-arms every assembler with empty flow state (the paper's interval
// boundary split), keeping all table, slab and column storage.
func (m *Measurer) Reset() {
	for _, a := range m.asm {
		a.Reset()
	}
}

// growCols resizes the derived columns to n elements, reusing storage.
func growCols(cols [][]uint64, di, n int) {
	if cap(cols[di]) < n {
		cols[di] = make([]uint64, n)
	} else {
		cols[di] = cols[di][:n]
	}
}

// derive fills the per-definition key and hash columns for blk.
func (m *Measurer) derive(blk *trace.Block) {
	n := blk.Len()
	for di := range m.defs {
		growCols(m.hash, di, n)
		growCols(m.keyA, di, n)
		growCols(m.keyB, di, n)
	}
	for di, def := range m.defs {
		if def != By5Tuple {
			continue
		}
		ha, ka, kb := m.hash[di], m.keyA[di], m.keyB[di]
		for j := 0; j < n; j++ {
			a := blk.Srcs[j]
			b := blk.Dsts[j] &^ netpkt.PackedTTLMask
			ka[j] = a
			kb[j] = b
			ha[j] = hashKey(a, b)
		}
	}
	if len(m.prefixy) == 0 {
		return
	}
	// All prefix definitions come off the dst column in one shared pass.
	for _, di := range m.prefixy {
		clear(m.keyA[di])
	}
	for j := 0; j < n; j++ {
		ip := blk.Dsts[j] >> netpkt.PackedAddrShift
		for pi, di := range m.prefixy {
			kb := ip &^ m.drops[pi]
			m.keyB[di][j] = kb
			m.hash[di][j] = hashKey(0, kb)
		}
	}
}

// AddBlock consumes one SoA block: keys for every definition are derived
// once, then each assembler runs the block through its table. Packets must
// arrive in non-decreasing time order across Add/AddBlock calls.
func (m *Measurer) AddBlock(blk *trace.Block) error {
	m.derive(blk)
	for di, a := range m.asm {
		if err := a.AddBlock(blk, m.hash[di], m.keyA[di], m.keyB[di]); err != nil {
			return err
		}
	}
	return nil
}

// Add consumes one packet record (the record-at-a-time face).
func (m *Measurer) Add(rec trace.Record) error {
	for _, a := range m.asm {
		if err := a.Add(rec); err != nil {
			return err
		}
	}
	return nil
}

// Flush finalises all in-progress flows and returns one Result per
// definition, index-aligned with the defs the measurer was built with.
// The measurer can keep consuming packets afterwards (split flows restart
// from the flush point).
func (m *Measurer) Flush() []Result {
	out := make([]Result, len(m.asm))
	for i, a := range m.asm {
		out[i] = a.Flush()
	}
	return out
}

// intervalClock is the interval-boundary arithmetic shared by
// IntervalSplitter and IntervalPartitioner: it validates the packet stream
// (time order, non-negative times, the declared trace duration) and tracks
// which analysis interval is currently being fed, so both consumers account
// intervals identically.
type intervalClock struct {
	intervalSec float64
	duration    float64 // 0 = derive the trace end from the last packet
	intervals   int     // interval count implied by duration; 0 = unbounded
	cur         int     // index of the interval currently being fed
	started     bool
	lastTime    float64
}

func newIntervalClock(intervalSec float64) (intervalClock, error) {
	if !(intervalSec > 0) {
		return intervalClock{}, fmt.Errorf("flow: interval must be > 0, got %g", intervalSec)
	}
	return intervalClock{intervalSec: intervalSec}, nil
}

// setDuration declares the total trace duration, so the stream accounts
// exactly ⌈duration/intervalSec⌉ intervals: trailing intervals with no
// packets are still emitted (a link that goes quiet is data, not a shorter
// trace), and packets at or beyond the duration are rejected.
func (c *intervalClock) setDuration(d float64) error {
	if !(d > 0) {
		return fmt.Errorf("flow: trace duration must be > 0, got %g", d)
	}
	if c.started {
		return fmt.Errorf("flow: trace duration must be declared before the first packet")
	}
	c.duration = d
	// ⌈duration/intervalSec⌉, computed once and robust to float rounding: an
	// exactly-divisible duration often divides to n ± a few ulp, and a bare
	// Ceil of n+ulp would invent a phantom (n+1)-th interval. The relative
	// shrink is far above one ulp and far below any real fractional
	// interval, so only rounding artefacts are absorbed.
	c.intervals = int(math.Ceil(d / c.intervalSec * (1 - 1e-9)))
	if c.intervals < 1 {
		c.intervals = 1
	}
	return nil
}

// place validates one packet time and returns the index of its interval.
func (c *intervalClock) place(t float64) (int, error) {
	// Times in (-intervalSec, 0) would otherwise truncate into interval 0
	// with a negative interval-local time, silently biasing its statistics.
	if t < 0 {
		return 0, fmt.Errorf("flow: packet time %g is negative (before the trace origin)", t)
	}
	if c.started && t < c.lastTime {
		return 0, fmt.Errorf("flow: packet out of order: %g after %g", t, c.lastTime)
	}
	// Reject packets beyond the declared duration — but not the rounding
	// sliver at the boundary itself: a generator computing times as
	// (absolute − warmup) can round a legitimate final packet up to exactly
	// the duration (or an ulp past it), and aborting the whole stream over a
	// float artefact would be wrong. Such packets fold into the final
	// interval via the clamp below.
	if c.duration > 0 && t >= c.duration && t >= c.duration*(1+1e-9) {
		return 0, fmt.Errorf("flow: packet time %g beyond the declared trace duration %g", t, c.duration)
	}
	c.started = true
	c.lastTime = t
	idx := int(t / c.intervalSec)
	// A packet in the last ulp-sliver of a declared duration can divide to
	// the interval count itself (t/intervalSec ≥ n); clamp it into the
	// final interval rather than index past it.
	if c.intervals > 0 && idx >= c.intervals {
		idx = c.intervals - 1
	}
	return idx, nil
}

// origin returns the start time of the interval currently being fed.
func (c *intervalClock) origin() float64 { return float64(c.cur) * c.intervalSec }

// placeRun places times[j] and extends the run through every following
// element of the same interval: it returns the run's interval index and the
// end index k (times[j:k] all fall in interval idx). Every element is
// validated through place; the element that breaks the run is re-placed by
// the caller's next placeRun, which is idempotent for an already-accepted
// time. This is the one boundary-splitting loop both block faces
// (IntervalSplitter.AddBlock, IntervalPartitioner.AddBlock) share.
func (c *intervalClock) placeRun(times []float64, j int) (idx, k int, err error) {
	idx, err = c.place(times[j])
	if err != nil {
		return 0, 0, err
	}
	for k = j + 1; k < len(times); k++ {
		idx2, err := c.place(times[k])
		if err != nil {
			return 0, 0, err
		}
		if idx2 != idx {
			break
		}
	}
	return idx, k, nil
}

// total returns how many intervals the stream must have emitted once it is
// closed: every interval within the declared duration, or — when no duration
// was declared — through the interval containing the last packet.
func (c *intervalClock) total() int {
	if c.intervals > 0 {
		return c.intervals
	}
	if !c.started {
		return 0
	}
	return c.cur + 1
}

// IntervalSet is the simultaneous measurement of one analysis interval under
// every definition of a splitter; Results is index-aligned with the defs the
// splitter was built with. Flow times are relative to the interval start.
type IntervalSet struct {
	Index   int
	Start   float64
	Results []Result
}

// IntervalSplitter consumes a time-ordered packet stream exactly once and
// measures consecutive analysis intervals under several flow definitions
// simultaneously. It replaces the per-definition re-scan (and the per-window
// record copy) of the materialised pipeline: memory is O(active flows),
// independent of trace length, so multi-hour traces stream straight from a
// generator.
//
// Flows are split at interval boundaries exactly as MeasureIntervals does
// ("flows that belong to 30 minutes intervals are split over the intervals
// they overlap"): each interval starts with fresh assemblers. Completed
// intervals — including empty ones between packets, which are data, not gaps
// — are handed to the emit callback in index order.
type IntervalSplitter struct {
	clock intervalClock
	emit  func(IntervalSet) error
	meas  *Measurer
	// rebased is AddBlock's scratch for interval-local times, so the
	// caller's block is never mutated.
	rebased []float64
}

// NewIntervalSplitter builds a splitter over the given definitions. emit is
// called once per completed interval, in order; its error aborts the stream.
func NewIntervalSplitter(defs []Definition, intervalSec, timeout float64, emit func(IntervalSet) error) (*IntervalSplitter, error) {
	clock, err := newIntervalClock(intervalSec)
	if err != nil {
		return nil, err
	}
	if emit == nil {
		return nil, fmt.Errorf("flow: splitter needs an emit callback")
	}
	meas, err := NewMeasurer(defs, timeout)
	if err != nil {
		return nil, err
	}
	return &IntervalSplitter{clock: clock, emit: emit, meas: meas}, nil
}

// SetDuration declares the total trace duration, before the first Add. Close
// then flushes every interval up to ⌈duration/intervalSec⌉ — without it,
// trailing intervals with no packets would never be emitted and a trace that
// goes quiet early would under-count its zero-rate intervals.
func (s *IntervalSplitter) SetDuration(d float64) error {
	return s.clock.setDuration(d)
}

// Origin returns the start time of the interval currently being fed: the
// offset a caller subtracts to rebase a just-Added record into the
// interval's local time frame (e.g. to rate-bin it in the same pass).
// Query it after Add, which may have advanced the interval.
func (s *IntervalSplitter) Origin() float64 { return s.clock.origin() }

// flushCurrent emits the current interval and re-arms the measurer: Reset
// starts the next interval with empty flow state (the paper's boundary
// split) and rewinds the order validation, since the next interval's
// rebased times restart at zero.
func (s *IntervalSplitter) flushCurrent() error {
	set := IntervalSet{
		Index:   s.clock.cur,
		Start:   s.clock.origin(),
		Results: s.meas.Flush(),
	}
	if err := s.emit(set); err != nil {
		return err
	}
	s.clock.cur++
	s.meas.Reset()
	return nil
}

// Add consumes one packet. Packets must arrive in non-decreasing time order
// with non-negative timestamps; a packet in a later interval first flushes
// every interval before it.
func (s *IntervalSplitter) Add(rec trace.Record) error {
	idx, err := s.clock.place(rec.Time)
	if err != nil {
		return err
	}
	for s.clock.cur < idx {
		if err := s.flushCurrent(); err != nil {
			return err
		}
	}
	rec.Time -= s.clock.origin()
	return s.meas.Add(rec)
}

// AddBlock consumes one SoA block, splitting it at interval boundaries:
// each same-interval run is rebased into scratch (the caller's block is
// read, never mutated) and measured through the shared key-derivation
// path. On success, semantics match per-record Add exactly; on a
// validation error the valid prefix of the failing run is dropped rather
// than measured (the stream is aborting — its current interval is never
// emitted either way).
func (s *IntervalSplitter) AddBlock(blk *trace.Block) error {
	n := blk.Len()
	j := 0
	for j < n {
		idx, k, err := s.clock.placeRun(blk.Times, j)
		if err != nil {
			return err
		}
		for s.clock.cur < idx {
			if err := s.flushCurrent(); err != nil {
				return err
			}
		}
		sub := blk.Slice(j, k)
		if origin := s.clock.origin(); origin != 0 {
			if cap(s.rebased) < k-j {
				s.rebased = make([]float64, k-j)
			}
			s.rebased = s.rebased[:k-j]
			for i, t := range sub.Times {
				s.rebased[i] = t - origin
			}
			sub.Times = s.rebased
		}
		if err := s.meas.AddBlock(&sub); err != nil {
			return err
		}
		j = k
	}
	return nil
}

// Close flushes the remaining intervals: through the one containing the last
// packet, or — when SetDuration was called — through ⌈duration/intervalSec⌉
// so trailing zero-rate intervals are emitted too. A splitter with no
// declared duration that never saw a packet emits nothing, matching the
// materialised path on an empty record set. The splitter must not be reused
// after Close.
func (s *IntervalSplitter) Close() error {
	for total := s.clock.total(); s.clock.cur < total; {
		if err := s.flushCurrent(); err != nil {
			return err
		}
	}
	return nil
}
