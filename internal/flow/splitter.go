package flow

import (
	"fmt"
	"math"

	"repro/internal/netpkt"
	"repro/internal/trace"
)

// streamMeasurer is the non-generic face of Assembler[K], letting the
// splitter hold assemblers with different key types side by side.
type streamMeasurer interface {
	Add(rec trace.Record) error
	Flush() Result
}

// newMeasurer builds the assembler for one flow definition.
func newMeasurer(def Definition, timeout float64) (streamMeasurer, error) {
	switch def {
	case By5Tuple:
		return NewAssembler(netpkt.Header.Key5Tuple, timeout)
	case ByPrefix24:
		return NewAssembler(netpkt.Header.KeyPrefix, timeout)
	case ByPrefix16:
		return NewAssembler(func(h netpkt.Header) netpkt.IPv4Addr { return h.DstIP.PrefixN(16) }, timeout)
	case ByPrefix8:
		return NewAssembler(func(h netpkt.Header) netpkt.IPv4Addr { return h.DstIP.PrefixN(8) }, timeout)
	default:
		return nil, fmt.Errorf("flow: unknown definition %d", int(def))
	}
}

// intervalClock is the interval-boundary arithmetic shared by
// IntervalSplitter and IntervalPartitioner: it validates the packet stream
// (time order, non-negative times, the declared trace duration) and tracks
// which analysis interval is currently being fed, so both consumers account
// intervals identically.
type intervalClock struct {
	intervalSec float64
	duration    float64 // 0 = derive the trace end from the last packet
	intervals   int     // interval count implied by duration; 0 = unbounded
	cur         int     // index of the interval currently being fed
	started     bool
	lastTime    float64
}

func newIntervalClock(intervalSec float64) (intervalClock, error) {
	if !(intervalSec > 0) {
		return intervalClock{}, fmt.Errorf("flow: interval must be > 0, got %g", intervalSec)
	}
	return intervalClock{intervalSec: intervalSec}, nil
}

// setDuration declares the total trace duration, so the stream accounts
// exactly ⌈duration/intervalSec⌉ intervals: trailing intervals with no
// packets are still emitted (a link that goes quiet is data, not a shorter
// trace), and packets at or beyond the duration are rejected.
func (c *intervalClock) setDuration(d float64) error {
	if !(d > 0) {
		return fmt.Errorf("flow: trace duration must be > 0, got %g", d)
	}
	if c.started {
		return fmt.Errorf("flow: trace duration must be declared before the first packet")
	}
	c.duration = d
	// ⌈duration/intervalSec⌉, computed once and robust to float rounding: an
	// exactly-divisible duration often divides to n ± a few ulp, and a bare
	// Ceil of n+ulp would invent a phantom (n+1)-th interval. The relative
	// shrink is far above one ulp and far below any real fractional
	// interval, so only rounding artefacts are absorbed.
	c.intervals = int(math.Ceil(d / c.intervalSec * (1 - 1e-9)))
	if c.intervals < 1 {
		c.intervals = 1
	}
	return nil
}

// place validates one packet time and returns the index of its interval.
func (c *intervalClock) place(t float64) (int, error) {
	// Times in (-intervalSec, 0) would otherwise truncate into interval 0
	// with a negative interval-local time, silently biasing its statistics.
	if t < 0 {
		return 0, fmt.Errorf("flow: packet time %g is negative (before the trace origin)", t)
	}
	if c.started && t < c.lastTime {
		return 0, fmt.Errorf("flow: packet out of order: %g after %g", t, c.lastTime)
	}
	// Reject packets beyond the declared duration — but not the rounding
	// sliver at the boundary itself: a generator computing times as
	// (absolute − warmup) can round a legitimate final packet up to exactly
	// the duration (or an ulp past it), and aborting the whole stream over a
	// float artefact would be wrong. Such packets fold into the final
	// interval via the clamp below.
	if c.duration > 0 && t >= c.duration && t >= c.duration*(1+1e-9) {
		return 0, fmt.Errorf("flow: packet time %g beyond the declared trace duration %g", t, c.duration)
	}
	c.started = true
	c.lastTime = t
	idx := int(t / c.intervalSec)
	// A packet in the last ulp-sliver of a declared duration can divide to
	// the interval count itself (t/intervalSec ≥ n); clamp it into the
	// final interval rather than index past it.
	if c.intervals > 0 && idx >= c.intervals {
		idx = c.intervals - 1
	}
	return idx, nil
}

// origin returns the start time of the interval currently being fed.
func (c *intervalClock) origin() float64 { return float64(c.cur) * c.intervalSec }

// total returns how many intervals the stream must have emitted once it is
// closed: every interval within the declared duration, or — when no duration
// was declared — through the interval containing the last packet.
func (c *intervalClock) total() int {
	if c.intervals > 0 {
		return c.intervals
	}
	if !c.started {
		return 0
	}
	return c.cur + 1
}

// IntervalSet is the simultaneous measurement of one analysis interval under
// every definition of a splitter; Results is index-aligned with the defs the
// splitter was built with. Flow times are relative to the interval start.
type IntervalSet struct {
	Index   int
	Start   float64
	Results []Result
}

// IntervalSplitter consumes a time-ordered packet stream exactly once and
// measures consecutive analysis intervals under several flow definitions
// simultaneously. It replaces the per-definition re-scan (and the per-window
// record copy) of the materialised pipeline: memory is O(active flows),
// independent of trace length, so multi-hour traces stream straight from a
// generator.
//
// Flows are split at interval boundaries exactly as MeasureIntervals does
// ("flows that belong to 30 minutes intervals are split over the intervals
// they overlap"): each interval starts with fresh assemblers. Completed
// intervals — including empty ones between packets, which are data, not gaps
// — are handed to the emit callback in index order.
type IntervalSplitter struct {
	defs    []Definition
	clock   intervalClock
	timeout float64
	emit    func(IntervalSet) error

	asm []streamMeasurer
}

// NewIntervalSplitter builds a splitter over the given definitions. emit is
// called once per completed interval, in order; its error aborts the stream.
func NewIntervalSplitter(defs []Definition, intervalSec, timeout float64, emit func(IntervalSet) error) (*IntervalSplitter, error) {
	clock, err := newIntervalClock(intervalSec)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("flow: splitter needs at least one definition")
	}
	if emit == nil {
		return nil, fmt.Errorf("flow: splitter needs an emit callback")
	}
	s := &IntervalSplitter{
		defs:    defs,
		clock:   clock,
		timeout: timeout,
		emit:    emit,
	}
	if err := s.resetAssemblers(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetDuration declares the total trace duration, before the first Add. Close
// then flushes every interval up to ⌈duration/intervalSec⌉ — without it,
// trailing intervals with no packets would never be emitted and a trace that
// goes quiet early would under-count its zero-rate intervals.
func (s *IntervalSplitter) SetDuration(d float64) error {
	return s.clock.setDuration(d)
}

// resetAssemblers starts the next interval with empty flow state (the
// paper's boundary split).
func (s *IntervalSplitter) resetAssemblers() error {
	if s.asm == nil {
		s.asm = make([]streamMeasurer, len(s.defs))
	}
	for i, def := range s.defs {
		a, err := newMeasurer(def, s.timeout)
		if err != nil {
			return err
		}
		s.asm[i] = a
	}
	return nil
}

// Origin returns the start time of the interval currently being fed: the
// offset a caller subtracts to rebase a just-Added record into the
// interval's local time frame (e.g. to rate-bin it in the same pass).
// Query it after Add, which may have advanced the interval.
func (s *IntervalSplitter) Origin() float64 { return s.clock.origin() }

// flushCurrent emits the current interval and re-arms the assemblers.
func (s *IntervalSplitter) flushCurrent() error {
	set := IntervalSet{
		Index:   s.clock.cur,
		Start:   s.clock.origin(),
		Results: make([]Result, len(s.asm)),
	}
	for i, a := range s.asm {
		set.Results[i] = a.Flush()
	}
	if err := s.emit(set); err != nil {
		return err
	}
	s.clock.cur++
	return s.resetAssemblers()
}

// Add consumes one packet. Packets must arrive in non-decreasing time order
// with non-negative timestamps; a packet in a later interval first flushes
// every interval before it.
func (s *IntervalSplitter) Add(rec trace.Record) error {
	idx, err := s.clock.place(rec.Time)
	if err != nil {
		return err
	}
	for s.clock.cur < idx {
		if err := s.flushCurrent(); err != nil {
			return err
		}
	}
	rec.Time -= s.clock.origin()
	for _, a := range s.asm {
		if err := a.Add(rec); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the remaining intervals: through the one containing the last
// packet, or — when SetDuration was called — through ⌈duration/intervalSec⌉
// so trailing zero-rate intervals are emitted too. A splitter with no
// declared duration that never saw a packet emits nothing, matching the
// materialised path on an empty record set. The splitter must not be reused
// after Close.
func (s *IntervalSplitter) Close() error {
	for total := s.clock.total(); s.clock.cur < total; {
		if err := s.flushCurrent(); err != nil {
			return err
		}
	}
	return nil
}
