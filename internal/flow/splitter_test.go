package flow

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/trace"
)

// bruteIntervals is the pre-splitter reference implementation: copy each
// interval's window, rebase it and measure it with a fresh assembler. The
// streaming splitter must reproduce it exactly.
func bruteIntervals(t *testing.T, recs []trace.Record, def Definition, intervalSec, timeout float64) []IntervalResult {
	t.Helper()
	var out []IntervalResult
	i := 0
	for idx := 0; i < len(recs); idx++ {
		lo := float64(idx) * intervalSec
		hi := lo + intervalSec
		j := i
		for j < len(recs) && recs[j].Time < hi {
			j++
		}
		if j == i {
			out = append(out, IntervalResult{Index: idx, Start: lo})
			continue
		}
		window := make([]trace.Record, j-i)
		copy(window, recs[i:j])
		for k := range window {
			window[k].Time -= lo
		}
		res, err := measureByDef(window, def, timeout)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, IntervalResult{Index: idx, Start: lo, Result: res})
		i = j
	}
	return out
}

// syntheticRecs generates a realistic record stream for splitter tests.
func syntheticRecs(t *testing.T) []trace.Record {
	t.Helper()
	size, err := dist.NewBoundedPareto(1.3, 3000, 300000)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := dist.LognormalFromMoments(250e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := trace.GenerateAll(trace.Config{
		Duration:  40,
		Lambda:    30,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Constant{V: 1},
		Seed:      21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func sameResults(a, b Result) bool {
	if len(a.Flows) != len(b.Flows) || len(a.Discarded) != len(b.Discarded) {
		return false
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			return false
		}
	}
	for i := range a.Discarded {
		if a.Discarded[i] != b.Discarded[i] {
			return false
		}
	}
	return true
}

// The one-pass splitter must agree with the window-copy reference for every
// definition, per interval, flow by flow.
func TestIntervalSplitterMatchesBruteForce(t *testing.T) {
	recs := syntheticRecs(t)
	const intervalSec = 10.0
	for _, def := range []Definition{By5Tuple, ByPrefix24, ByPrefix16} {
		want := bruteIntervals(t, recs, def, intervalSec, DefaultTimeout)
		got, err := MeasureIntervals(recs, def, intervalSec, DefaultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d intervals, want %d", def, len(got), len(want))
		}
		for i := range want {
			if got[i].Index != want[i].Index || got[i].Start != want[i].Start {
				t.Fatalf("%s: interval %d header mismatch: %+v vs %+v",
					def, i, got[i], want[i])
			}
			if !sameResults(got[i].Result, want[i].Result) {
				t.Fatalf("%s: interval %d flows differ", def, i)
			}
		}
	}
}

// One splitter pass over both definitions must equal two independent
// single-definition passes.
func TestIntervalSplitterMultiDefinition(t *testing.T) {
	recs := syntheticRecs(t)
	const intervalSec = 10.0
	defs := []Definition{By5Tuple, ByPrefix24}
	var sets []IntervalSet
	s, err := NewIntervalSplitter(defs, intervalSec, DefaultTimeout, func(iv IntervalSet) error {
		sets = append(sets, iv)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := s.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for di, def := range defs {
		want, err := MeasureIntervals(recs, def, intervalSec, DefaultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets) != len(want) {
			t.Fatalf("%s: %d intervals, want %d", def, len(sets), len(want))
		}
		for i := range want {
			if !sameResults(sets[i].Results[di], want[i].Result) {
				t.Fatalf("%s: interval %d differs between multi- and single-def pass", def, i)
			}
		}
	}
}

func TestIntervalSplitterEmptyIntervals(t *testing.T) {
	// Packets only in intervals 0 and 3: 1 and 2 must still be emitted.
	recs := []trace.Record{
		rec(0.5, 1, 1, 1000, 100),
		rec(1.0, 1, 1, 1000, 100),
		rec(31.0, 2, 2, 2000, 100),
		rec(31.5, 2, 2, 2000, 100),
	}
	out, err := MeasureIntervals(recs, By5Tuple, 10, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d intervals, want 4", len(out))
	}
	for i, iv := range out {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d", i, iv.Index)
		}
	}
	if len(out[1].Flows)+len(out[1].Discarded) != 0 || len(out[2].Flows)+len(out[2].Discarded) != 0 {
		t.Fatal("middle intervals should be empty")
	}
	if len(out[0].Flows) != 1 || len(out[3].Flows) != 1 {
		t.Fatalf("edge intervals should each hold one flow: %d, %d",
			len(out[0].Flows), len(out[3].Flows))
	}
	// Flow times are relative to their interval.
	if f := out[3].Flows[0]; f.Start != 1.0 || f.End != 1.5 {
		t.Fatalf("interval 3 flow not rebased: %+v", f)
	}
}

// A trace that goes quiet early must still emit its trailing zero-rate
// intervals: they are measurements (a dead link), not gaps, and dropping
// them biases the interval accounting eq. (7) is fitted against.
func TestIntervalSplitterTrailingQuietIntervals(t *testing.T) {
	// 50 s declared duration, 10 s intervals, last packet at t = 12: without
	// the duration the splitter stops after interval 1; with it, intervals
	// 2-4 must be flushed empty.
	recs := []trace.Record{
		rec(0.5, 1, 1, 1000, 100),
		rec(1.0, 1, 1, 1000, 100),
		rec(12.0, 2, 2, 2000, 100),
		rec(12.5, 2, 2, 2000, 100),
	}
	var sets []IntervalSet
	s, err := NewIntervalSplitter([]Definition{By5Tuple}, 10, DefaultTimeout, func(iv IntervalSet) error {
		sets = append(sets, iv)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDuration(50); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := s.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sets) != 5 {
		t.Fatalf("got %d intervals, want 5 (⌈50/10⌉)", len(sets))
	}
	for i, iv := range sets {
		if iv.Index != i || iv.Start != float64(i)*10 {
			t.Fatalf("interval %d has index %d start %g", i, iv.Index, iv.Start)
		}
	}
	for _, i := range []int{2, 3, 4} {
		if n := len(sets[i].Results[0].Flows) + len(sets[i].Results[0].Discarded); n != 0 {
			t.Fatalf("trailing interval %d not empty: %d flows+discards", i, n)
		}
	}
	if len(sets[0].Results[0].Flows) != 1 || len(sets[1].Results[0].Flows) != 1 {
		t.Fatal("leading intervals lost their flows")
	}
}

// A declared duration on a splitter that never sees a packet still emits
// every interval (all empty) — the whole trace was quiet, not absent.
func TestIntervalSplitterDurationNoPackets(t *testing.T) {
	var count int
	s, err := NewIntervalSplitter([]Definition{By5Tuple}, 10, DefaultTimeout, func(iv IntervalSet) error {
		if iv.Index != count {
			t.Fatalf("interval %d emitted out of order as %d", count, iv.Index)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDuration(25); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("got %d intervals, want 3 (⌈25/10⌉)", count)
	}
}

// Negative timestamps must be rejected: int(t/interval) truncates times in
// (-interval, 0) into interval 0 with a negative interval-local time,
// silently corrupting its rate series and flow statistics.
func TestIntervalSplitterRejectsNegativeTime(t *testing.T) {
	s, err := NewIntervalSplitter([]Definition{By5Tuple}, 10, DefaultTimeout,
		func(IntervalSet) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec(-0.5, 1, 1, 1000, 100)); err == nil {
		t.Fatal("negative-time packet should be rejected")
	}
}

func TestIntervalSplitterDurationValidation(t *testing.T) {
	emit := func(IntervalSet) error { return nil }
	s, err := NewIntervalSplitter([]Definition{By5Tuple}, 10, DefaultTimeout, emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDuration(0); err == nil {
		t.Fatal("zero duration should be rejected")
	}
	if err := s.SetDuration(30); err != nil {
		t.Fatal(err)
	}
	// Packets genuinely beyond the declared duration break the interval
	// count invariant and must be rejected...
	if err := s.Add(rec(31, 1, 1, 1000, 100)); err == nil {
		t.Fatal("packet beyond the duration should be rejected")
	}
	// ...but the rounding sliver at the boundary itself (a generator's
	// absolute−warmup subtraction can round a final packet to exactly the
	// duration) folds into the last interval instead of aborting the trace.
	if err := s.Add(rec(30, 1, 1, 1000, 100)); err != nil {
		t.Fatalf("boundary-sliver packet rejected: %v", err)
	}
	if err := s.SetDuration(40); err == nil {
		t.Fatal("duration change after the first packet should be rejected")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSplitterValidation(t *testing.T) {
	emit := func(IntervalSet) error { return nil }
	if _, err := NewIntervalSplitter([]Definition{By5Tuple}, 0, DefaultTimeout, emit); err == nil {
		t.Fatal("zero interval should be rejected")
	}
	if _, err := NewIntervalSplitter(nil, 10, DefaultTimeout, emit); err == nil {
		t.Fatal("no definitions should be rejected")
	}
	if _, err := NewIntervalSplitter([]Definition{By5Tuple}, 10, DefaultTimeout, nil); err == nil {
		t.Fatal("nil emit should be rejected")
	}
	if _, err := NewIntervalSplitter([]Definition{Definition(99)}, 10, DefaultTimeout, emit); err == nil {
		t.Fatal("unknown definition should be rejected")
	}
	s, err := NewIntervalSplitter([]Definition{By5Tuple}, 10, DefaultTimeout, emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec(5, 1, 1, 1000, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec(4, 1, 1, 1000, 100)); err == nil {
		t.Fatal("out-of-order packet should be rejected")
	}
}
