package flow

import (
	"repro/internal/netpkt"
)

// This file is the batch-columnar key machinery of the flow assembler: a
// packed two-word flow key per definition, a 64-bit hash computed once per
// packet, and an open-addressed table mapping (hash, key) to a flow-state
// slot. It replaces the generic Go map the assembler used to probe per
// packet per definition: key columns are derived from a block's packed
// Src/Dst columns in vector passes (the /24, /16 and /8 prefix keys all
// come off the same dst column in one pass), and the table probe is a
// linear scan over flat arrays with no per-lookup hashing of a 13-byte
// struct.

// mix64 is the splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashKey compresses a two-word flow key into the nonzero 64-bit hash the
// open-addressed table probes with. Zero is the table's empty marker, so a
// zero mix is nudged to 1; key equality is always settled on the full
// (a, b) pair, never the hash alone.
func hashKey(a, b uint64) uint64 {
	h := mix64(a ^ b*0x9e3779b97f4a7c15)
	if h == 0 {
		h = 1
	}
	return h
}

// prefixDrop returns the low-bit mask to clear from the destination IP for
// a prefix definition (ok=false for By5Tuple or unknown definitions).
func prefixDrop(def Definition) (drop uint64, ok bool) {
	switch def {
	case ByPrefix24:
		return 0xFF, true
	case ByPrefix16:
		return 0xFFFF, true
	case ByPrefix8:
		return 0xFFFFFF, true
	default:
		return 0, false
	}
}

// deriveOne computes the (hash, keyA, keyB) triple of one packed packet
// under a definition — the record-at-a-time counterpart of the vector
// derivation in Measurer.derive, kept textually tiny so both agree.
func deriveOne(def Definition, src, dst uint64) (h, ka, kb uint64) {
	if def == By5Tuple {
		ka = src
		kb = dst &^ netpkt.PackedTTLMask
		return hashKey(ka, kb), ka, kb
	}
	drop, _ := prefixDrop(def)
	kb = (dst >> netpkt.PackedAddrShift) &^ drop
	return hashKey(0, kb), 0, kb
}

// flowTable is an open-addressed hash table mapping a packed two-word flow
// key to an int32 flow-state slot: flat columns, power-of-two capacity,
// linear probing, hash 0 marking an empty position. The caller supplies
// the hash (computed once per packet, shared across every probe and the
// resize), so the table itself never hashes.
type flowTable struct {
	hash []uint64
	keyA []uint64
	keyB []uint64
	slot []int32
	// last holds each occupied position's last-seen timestamp — a copy of
	// the flow state's `last` field kept columnar so the idle-expiry sweep
	// scans one flat float64 array instead of chasing slab slots.
	last []float64
	mask uint64
	n    int // occupied positions
	grow int // occupancy that triggers a doubling
	// sweepPos is the rotating cursor of sweepExpired: each call resumes
	// where the previous one stopped, so expiry cost is spread across the
	// packet stream instead of paid in one full-table pass.
	sweepPos uint64
}

// flowTableMinCap is the initial capacity (power of two).
const flowTableMinCap = 256

func (t *flowTable) alloc(c int) {
	t.hash = make([]uint64, c)
	t.keyA = make([]uint64, c)
	t.keyB = make([]uint64, c)
	t.slot = make([]int32, c)
	t.last = make([]float64, c)
	t.mask = uint64(c - 1)
	t.n = 0
	t.grow = c * 3 / 4
}

// reset empties the table, keeping (and clearing) its storage.
func (t *flowTable) reset() {
	if t.hash == nil {
		t.alloc(flowTableMinCap)
		return
	}
	clear(t.hash)
	t.n = 0
	t.sweepPos = 0
}

// find probes for (h, a, b): it returns the key's position when found, or
// the empty position an insert of that key must use.
func (t *flowTable) find(h, a, b uint64) (pos uint64, found bool) {
	i := h & t.mask
	for {
		hh := t.hash[i]
		if hh == 0 {
			return i, false
		}
		if hh == h && t.keyA[i] == a && t.keyB[i] == b {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

// insert places a new key at the position a failed find returned, growing
// (and then re-probing) first when the table is at its load limit. It
// returns the key's final position.
func (t *flowTable) insert(pos uint64, h, a, b uint64, s int32) uint64 {
	if t.n >= t.grow {
		t.rehash()
		pos, _ = t.find(h, a, b)
	}
	t.hash[pos] = h
	t.keyA[pos] = a
	t.keyB[pos] = b
	t.slot[pos] = s
	t.n++
	return pos
}

// rehash doubles capacity and reinserts every occupied position using its
// stored hash (keys are distinct, so each lands at its first empty probe).
func (t *flowTable) rehash() {
	oh, oa, ob, os, ol := t.hash, t.keyA, t.keyB, t.slot, t.last
	t.alloc(2 * len(oh))
	for i, h := range oh {
		if h == 0 {
			continue
		}
		j := h & t.mask
		for t.hash[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.hash[j] = h
		t.keyA[j] = oa[i]
		t.keyB[j] = ob[i]
		t.slot[j] = os[i]
		t.last[j] = ol[i]
		t.n++
	}
}

// del removes the entry at position pos by backward-shift deletion (no
// tombstones: every displaced entry in the probe chain after pos moves back
// toward its home position, so find's probe invariant survives).
func (t *flowTable) del(pos uint64) {
	t.n--
	i := pos
	for {
		t.hash[i] = 0
		j := i
		for {
			j = (j + 1) & t.mask
			h := t.hash[j]
			if h == 0 {
				return
			}
			// Move j's entry into the hole at i iff its home position lies
			// cyclically at or before i — i.e. probing from home would pass
			// through i before reaching j.
			home := h & t.mask
			if (j-home)&t.mask >= (j-i)&t.mask {
				t.hash[i] = h
				t.keyA[i] = t.keyA[j]
				t.keyB[i] = t.keyB[j]
				t.slot[i] = t.slot[j]
				t.last[i] = t.last[j]
				i = j
				break
			}
		}
	}
}

// sweepExpired examines up to k positions starting at the rotating cursor,
// evicting entries whose last-seen timestamp is before deadline: evict
// receives the entry's slot, then the position is deleted. Backward-shift
// deletion can move a not-yet-visited entry into the examined position, so
// a deleting step re-examines the position without advancing (the step
// still counts toward k, bounding the call's work). Successive calls
// rotate through the whole table, so any idle entry is found within one
// full rotation — expiry timing affects only the memory bound, never
// results, because eviction runs the same finalisation a Flush would.
func (t *flowTable) sweepExpired(deadline float64, k int, evict func(slot int32)) {
	if t.n == 0 {
		return
	}
	if size := len(t.hash); k > size {
		k = size
	}
	i := t.sweepPos & t.mask
	for step := 0; step < k; step++ {
		if t.hash[i] != 0 && t.last[i] < deadline {
			evict(t.slot[i])
			t.del(i)
			continue
		}
		i = (i + 1) & t.mask
	}
	t.sweepPos = i
}
