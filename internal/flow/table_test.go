package flow

import (
	"math/rand"
	"testing"

	"repro/internal/netpkt"
	"repro/internal/trace"
)

// TestFlowTableDifferential drives the open-addressed table against a map
// reference through a random insert/lookup/delete workload. The adversarial
// variant gives every key the same hash, so the whole table is one probe
// chain: full-key comparisons and backward-shift deletion are then the only
// things keeping lookups correct.
func TestFlowTableDifferential(t *testing.T) {
	type key struct{ a, b uint64 }
	for _, tc := range []struct {
		name string
		hash func(a, b uint64) uint64
	}{
		{"real-hash", hashKey},
		// All keys collide onto one chain (hash 7 everywhere).
		{"degenerate-hash", func(a, b uint64) uint64 { return 7 }},
		// Pairs of keys share a hash: collisions without a single mega-chain.
		{"paired-hash", func(a, b uint64) uint64 { return hashKey(a/2, b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			var tab flowTable
			tab.reset()
			ref := map[key]int32{}
			keys := make([]key, 0, 512)
			for op := 0; op < 20000; op++ {
				k := key{uint64(rng.Intn(200)), uint64(rng.Intn(8))}
				h := tc.hash(k.a, k.b)
				switch {
				case rng.Intn(10) < 6: // insert or update-check
					pos, found := tab.find(h, k.a, k.b)
					_, refFound := ref[k]
					if found != refFound {
						t.Fatalf("op %d: find(%v) = %v, reference %v", op, k, found, refFound)
					}
					if !found {
						slot := int32(len(ref))
						tab.insert(pos, h, k.a, k.b, slot)
						ref[k] = slot
						keys = append(keys, k)
					}
				case len(ref) > 0 && rng.Intn(10) < 5: // delete a known key
					k = keys[rng.Intn(len(keys))]
					h = tc.hash(k.a, k.b)
					pos, found := tab.find(h, k.a, k.b)
					_, refFound := ref[k]
					if found != refFound {
						t.Fatalf("op %d: pre-delete find(%v) = %v, reference %v", op, k, found, refFound)
					}
					if found {
						tab.del(pos)
						delete(ref, k)
					}
				default: // lookup parity, including slot values
					pos, found := tab.find(h, k.a, k.b)
					slot, refFound := ref[k]
					if found != refFound {
						t.Fatalf("op %d: find(%v) = %v, reference %v", op, k, found, refFound)
					}
					if found && tab.slot[pos] != slot {
						t.Fatalf("op %d: slot(%v) = %d, reference %d", op, k, tab.slot[pos], slot)
					}
				}
				if tab.n != len(ref) {
					t.Fatalf("op %d: table holds %d entries, reference %d", op, tab.n, len(ref))
				}
			}
		})
	}
}

// refAssembler is the pre-table reference: the exact map-based assembly
// logic the open-addressed rewrite replaced, kept here as the differential
// oracle.
type refAssembler struct {
	keyFn     func(netpkt.Header) any
	timeout   float64
	active    map[any]*flowState
	res       Result
	lastSweep float64
}

func newRefAssembler(def Definition, timeout float64) *refAssembler {
	var keyFn func(netpkt.Header) any
	switch def {
	case By5Tuple:
		keyFn = func(h netpkt.Header) any { return h.Key5Tuple() }
	case ByPrefix24:
		keyFn = func(h netpkt.Header) any { return h.KeyPrefix() }
	case ByPrefix16:
		keyFn = func(h netpkt.Header) any { return h.DstIP.PrefixN(16) }
	case ByPrefix8:
		keyFn = func(h netpkt.Header) any { return h.DstIP.PrefixN(8) }
	}
	return &refAssembler{keyFn: keyFn, timeout: timeout, active: map[any]*flowState{}}
}

func (a *refAssembler) add(rec trace.Record) {
	key := a.keyFn(rec.Hdr)
	bits := rec.Bits()
	st, ok := a.active[key]
	switch {
	case !ok:
		a.active[key] = &flowState{
			start: rec.Time, last: rec.Time,
			bytes: int64(rec.Hdr.TotalLen), packets: 1, firstBits: bits,
		}
	case rec.Time-st.last > a.timeout:
		a.finish(st)
		*st = flowState{
			start: rec.Time, last: rec.Time,
			bytes: int64(rec.Hdr.TotalLen), packets: 1, firstBits: bits,
		}
	default:
		st.last = rec.Time
		st.bytes += int64(rec.Hdr.TotalLen)
		st.packets++
	}
	if rec.Time-a.lastSweep > a.timeout {
		for k, st := range a.active {
			if rec.Time-st.last > a.timeout {
				a.finish(st)
				delete(a.active, k)
			}
		}
		a.lastSweep = rec.Time
	}
}

func (a *refAssembler) finish(st *flowState) {
	if st.packets == 1 {
		a.res.Discarded = append(a.res.Discarded, DiscardedPacket{Time: st.start, Bits: st.firstBits})
		return
	}
	a.res.Flows = append(a.res.Flows, Flow{Start: st.start, End: st.last, Bytes: st.bytes, Packets: st.packets})
}

func (a *refAssembler) flush() Result {
	for k, st := range a.active {
		a.finish(st)
		delete(a.active, k)
	}
	out := a.res
	a.res = Result{}
	sortResult(&out)
	return out
}

// sortResult applies Flush's canonical ordering to a reference result.
func sortResult(r *Result) {
	tmp := Assembler{res: *r}
	tmp.table.reset()
	*r = tmp.Flush()
}

// randomRecords draws a time-ordered random packet stream over a small key
// space (so flows collide, split on timeouts, and sweep evictions happen).
func randomRecords(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.Float64() * 0.8
		recs = append(recs, trace.Record{
			Time: now,
			Hdr: netpkt.Header{
				SrcIP:    netpkt.IPv4Addr{10, 0, 0, byte(rng.Intn(2))},
				DstIP:    netpkt.IPv4Addr{byte(170 + rng.Intn(2)), 0, byte(rng.Intn(2)), byte(rng.Intn(4))},
				Protocol: netpkt.ProtoTCP,
				SrcPort:  uint16(1000 + rng.Intn(2)),
				DstPort:  80,
				TotalLen: uint16(40 + rng.Intn(1460)),
				TTL:      byte(32 + rng.Intn(3)), // TTL varies within a flow key
			},
		})
	}
	return recs
}

func resultsEqual(a, b Result) bool {
	if len(a.Flows) != len(b.Flows) || len(a.Discarded) != len(b.Discarded) {
		return false
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			return false
		}
	}
	for i := range a.Discarded {
		if a.Discarded[i] != b.Discarded[i] {
			return false
		}
	}
	return true
}

// TestAssemblerMatchesMapReference runs a long random stream (timeouts,
// sweeps, flushes) through the open-addressed assembler and the map-based
// reference, under every definition, and requires identical results.
func TestAssemblerMatchesMapReference(t *testing.T) {
	for _, def := range []Definition{By5Tuple, ByPrefix24, ByPrefix16, ByPrefix8} {
		for seed := int64(1); seed <= 3; seed++ {
			recs := randomRecords(5000, seed)
			a, err := NewAssembler(def, 20)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefAssembler(def, 20)
			for i, rec := range recs {
				if err := a.Add(rec); err != nil {
					t.Fatal(err)
				}
				ref.add(rec)
				// A mid-stream flush every ~2000 packets exercises the
				// boundary-split path of both.
				if i%2000 == 1999 {
					got, want := a.Flush(), ref.flush()
					if !resultsEqual(got, want) {
						t.Fatalf("def %v seed %d: mid-stream flush diverged (%d/%d vs %d/%d)",
							def, seed, len(got.Flows), len(got.Discarded), len(want.Flows), len(want.Discarded))
					}
				}
			}
			got, want := a.Flush(), ref.flush()
			if len(want.Flows) == 0 {
				t.Fatalf("def %v seed %d: degenerate reference (no flows)", def, seed)
			}
			if !resultsEqual(got, want) {
				t.Fatalf("def %v seed %d: final flush diverged (%d/%d vs %d/%d)",
					def, seed, len(got.Flows), len(got.Discarded), len(want.Flows), len(want.Discarded))
			}
		}
	}
}

// TestMeasurerBlockSizesAgree feeds the same stream through the
// record-at-a-time face and through AddBlock at several block sizes; the
// batch path's boundary handling must never change the measurement.
func TestMeasurerBlockSizesAgree(t *testing.T) {
	recs := randomRecords(4000, 7)
	defs := []Definition{By5Tuple, ByPrefix24, ByPrefix16}
	baseM, err := NewMeasurer(defs, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := baseM.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	base := baseM.Flush()
	for _, bs := range []int{1, 64, 256, 1000} {
		m, err := NewMeasurer(defs, 15)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(recs); i += bs {
			end := i + bs
			if end > len(recs) {
				end = len(recs)
			}
			blk := &trace.Block{}
			for _, rec := range recs[i:end] {
				blk.AppendRecord(rec)
			}
			if err := m.AddBlock(blk); err != nil {
				t.Fatal(err)
			}
		}
		got := m.Flush()
		for di := range defs {
			if !resultsEqual(got[di], base[di]) {
				t.Fatalf("block size %d, def %v: results diverge from record path", bs, defs[di])
			}
		}
	}
}
