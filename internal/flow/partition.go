package flow

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/membudget"
	"repro/internal/trace"
)

// IntervalStream is one analysis interval's sub-stream of a partitioned
// record stream, carried as SoA blocks. Record times are rebased to the
// interval start. The stream is produced concurrently with consumption: the
// partitioner keeps sending blocks while a consumer drains Blocks (or the
// record-at-a-time Records view), and closes the stream at the interval
// boundary.
type IntervalStream struct {
	Index  int
	Start  float64
	blocks chan *trace.Block
	// budget/blockBytes mirror the producing partitioner's accounting: the
	// consumer releases each block's reservation when it recycles the block.
	budget     membudget.Reserver
	blockBytes int64
	// shed is set by the producer before the stream closes when the
	// interval was dropped (fully or from some point on) under memory
	// pressure; the channel close orders the write before any consumer
	// read through Shed.
	shed bool
}

// put recycles one delivered block and releases its budget reservation.
func (is *IntervalStream) put(b *trace.Block) {
	trace.PutBlock(b)
	if is.budget != nil {
		is.budget.Release(is.blockBytes)
	}
}

// Shed reports whether the producer dropped this interval (wholly, or from
// some record on) under load-shedding. Only valid after the stream has been
// fully drained — a consumer must discard the interval's measurements when
// it returns true, and account the interval as dropped, so shed output is
// explicitly missing rather than silently wrong.
func (is *IntervalStream) Shed() bool { return is.shed }

// Blocks returns the interval's packets in time order, interval-local, one
// SoA block at a time. The sequence is single-use and must be ranged to
// completion (breaking early still drains the remainder internally, so the
// producing partitioner never blocks on an abandoned stream). Blocks are
// recycled after the consumer has seen them, so a consumer must not retain
// a block or its columns past its yield (copying out values is fine).
// The drain-and-recycle guarantee holds even when the consumer panics out
// of the loop body: the in-hand block and the channel remainder are
// released on the way out, so a recovered panic leaks neither pool blocks
// nor a blocked producer.
func (is *IntervalStream) Blocks() iter.Seq[*trace.Block] {
	return func(yield func(*trace.Block) bool) {
		var cur *trace.Block
		defer func() {
			// Unwind path (panic in yield, or early break): recycle the
			// in-hand block and drain the remainder so the producer is
			// never left blocked mid-send.
			if cur != nil {
				is.put(cur)
			}
			for b := range is.blocks {
				is.put(b)
			}
		}()
		for blk := range is.blocks {
			cur = blk
			ok := yield(blk)
			cur = nil
			is.put(blk)
			if !ok {
				return
			}
		}
	}
}

// Records returns the interval's packets in time order, interval-local —
// the record-at-a-time view over the block stream. Same single-use,
// no-retention and panic-safe drain contract as Blocks (records are
// values; copying fields is fine).
func (is *IntervalStream) Records() iter.Seq[trace.Record] {
	return func(yield func(trace.Record) bool) {
		var cur *trace.Block
		defer func() {
			if cur != nil {
				is.put(cur)
			}
			for b := range is.blocks {
				is.put(b)
			}
		}()
		for blk := range is.blocks {
			cur = blk
			n := blk.Len()
			for i := 0; i < n; i++ {
				if !yield(blk.Record(i)) {
					return
				}
			}
			cur = nil
			is.put(blk)
		}
	}
}

// IntervalPartitioner is the splitter's partition mode: instead of feeding
// flow assemblers inline, it splits a time-ordered record stream at analysis
// interval boundaries into interval-local sub-streams and hands each one to
// the handoff callback the moment the interval opens. Intervals are
// independent after the boundary split, so a scheduler can measure many of a
// trace's intervals concurrently while the (inherently serial, deterministic)
// producer keeps generating — the intra-trace sharding that takes the suite
// past one worker per trace.
//
// Interval accounting matches IntervalSplitter exactly: empty intervals
// between packets are emitted (immediately-closed streams), and with a
// declared duration every interval up to ⌈duration/intervalSec⌉ exists even
// if the trace goes quiet early. Records travel in SoA blocks to amortise
// the channel synchronisation (and so consumers measure columns, not
// records), and a sub-stream holds at most ~buffer records in flight, so a
// slow consumer back-pressures the producer instead of letting memory grow
// with the trace.
type IntervalPartitioner struct {
	clock     intervalClock
	buffer    int // per-stream in-flight bound, in records
	blockSize int // records per emitted block
	handoff   func(*IntervalStream) error
	cur       *IntervalStream
	pend      *trace.Block // current interval's not-yet-sent block
	closed    bool

	// ctx, when set, bounds every blocking point (stream sends, budget
	// reservations) so a cancelled pipeline unwinds instead of wedging on a
	// vanished consumer. done caches ctx.Done() for the send fast path.
	ctx  context.Context
	done <-chan struct{}

	// budget, when set, charges blockBytes per in-flight block: reserved
	// when a pending block is taken from the pool, released by the consumer
	// on recycle (ownership of the reservation travels with the block).
	budget     membudget.Reserver
	blockBytes int64
	// shedMode picks the under-pressure policy: false blocks the producer
	// (backpressure, exact output), true drops the rest of the current
	// interval and accounts for it.
	shedMode      bool
	curShed       bool // current interval has dropped records
	shedIntervals int64
	shedRecords   int64
}

// NewIntervalPartitioner builds a partitioner over intervals of intervalSec.
// duration, when positive, declares the trace length so trailing empty
// intervals are emitted and out-of-range packets rejected (0 derives the end
// from the last packet, like a splitter without SetDuration). handoff
// receives each interval's stream as it opens and must not block
// indefinitely: records only flow into a stream after its handoff returns.
func NewIntervalPartitioner(intervalSec, duration float64, buffer int, handoff func(*IntervalStream) error) (*IntervalPartitioner, error) {
	clock, err := newIntervalClock(intervalSec)
	if err != nil {
		return nil, err
	}
	if duration != 0 {
		if err := clock.setDuration(duration); err != nil {
			return nil, err
		}
	}
	if buffer <= 0 {
		return nil, fmt.Errorf("flow: partitioner buffer must be > 0, got %d", buffer)
	}
	if handoff == nil {
		return nil, fmt.Errorf("flow: partitioner needs a handoff callback")
	}
	return &IntervalPartitioner{
		clock:     clock,
		buffer:    buffer,
		blockSize: trace.BlockSize,
		handoff:   handoff,
	}, nil
}

// SetBlockSize overrides how many records each emitted block carries
// (default trace.BlockSize). The partitioned measurement is byte-identical
// at any size — the knob exists for that determinism test and for tuning.
// Must be called before the first Add.
func (p *IntervalPartitioner) SetBlockSize(n int) error {
	if n < 1 {
		return fmt.Errorf("flow: block size must be >= 1, got %d", n)
	}
	if p.cur != nil || p.closed {
		return fmt.Errorf("flow: block size must be set before the first packet")
	}
	p.blockSize = n
	if p.budget != nil {
		p.blockBytes = trace.BlockCost(n)
	}
	return nil
}

// SetContext bounds the partitioner's blocking points (full-stream sends,
// budget reservations) by ctx: once ctx is cancelled they fail with a
// wrapped ctx error instead of blocking on a consumer that may never drain.
// Must be called before the first packet.
func (p *IntervalPartitioner) SetContext(ctx context.Context) error {
	if p.cur != nil || p.closed {
		return fmt.Errorf("flow: context must be set before the first packet")
	}
	if ctx == nil {
		return fmt.Errorf("flow: nil context")
	}
	p.ctx = ctx
	p.done = ctx.Done()
	return nil
}

// SetBudget charges each in-flight block's byte cost against r. With shed
// false the producer blocks in Reserve until the consumer frees room —
// bounded memory, exact output. With shed true a failed TryReserve drops
// the rest of the current interval, marks its stream Shed, and counts the
// drop (ShedStats) — bounded memory and bounded producer latency, at the
// price of explicitly-missing intervals. Must be called before the first
// packet.
func (p *IntervalPartitioner) SetBudget(r membudget.Reserver, shed bool) error {
	if p.cur != nil || p.closed {
		return fmt.Errorf("flow: budget must be set before the first packet")
	}
	p.budget = r
	p.shedMode = shed
	p.blockBytes = trace.BlockCost(p.blockSize)
	return nil
}

// ShedStats reports how many intervals were marked shed and how many
// records were dropped in them. Only meaningful after Close or Abort.
func (p *IntervalPartitioner) ShedStats() (intervals, records int64) {
	return p.shedIntervals, p.shedRecords
}

// open starts the stream of the clock's current interval and hands it off.
func (p *IntervalPartitioner) open() error {
	cap := p.buffer / p.blockSize
	if cap < 1 {
		cap = 1
	}
	s := &IntervalStream{
		Index:      p.clock.cur,
		Start:      p.clock.origin(),
		blocks:     make(chan *trace.Block, cap),
		budget:     p.budget,
		blockBytes: p.blockBytes,
	}
	p.cur = s
	return p.handoff(s)
}

// ship sends blk into the current interval's stream, honouring
// cancellation: a blocked send unblocks (recycling blk and its
// reservation) when the partitioner's context is cancelled. Ownership of
// the block — and of its budget reservation — transfers to the consumer
// on success.
func (p *IntervalPartitioner) ship(blk *trace.Block) error {
	if p.done == nil {
		p.cur.blocks <- blk
		return nil
	}
	select {
	case p.cur.blocks <- blk:
		return nil
	default:
	}
	select {
	case p.cur.blocks <- blk:
		return nil
	case <-p.done:
		p.dropPendBlock(blk)
		return fmt.Errorf("flow: partition of interval %d cancelled: %w", p.clock.cur, p.ctx.Err())
	}
}

// dropPendBlock recycles an unsent block along with its reservation.
func (p *IntervalPartitioner) dropPendBlock(blk *trace.Block) {
	trace.PutBlock(blk)
	if p.budget != nil {
		p.budget.Release(p.blockBytes)
	}
}

// takePend ensures a pending block exists, reserving its byte cost first.
// In shed mode a failed reservation marks the interval shed and returns
// false — the caller drops the record; errors only arise from cancellation
// while blocked in Reserve.
func (p *IntervalPartitioner) takePend() (bool, error) {
	if p.pend != nil {
		return true, nil
	}
	if p.budget != nil {
		if p.shedMode {
			if !p.budget.TryReserve(p.blockBytes) {
				p.curShed = true
				return false, nil
			}
		} else {
			ctx := p.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			if err := p.budget.Reserve(ctx, p.blockBytes); err != nil {
				return false, fmt.Errorf("flow: partition of interval %d: %w", p.clock.cur, err)
			}
		}
	}
	p.pend = trace.GetBlock()
	return true, nil
}

// flushPend sends the current interval's pending block; the consumer owns
// the sent block, so the next one starts fresh from the pool.
func (p *IntervalPartitioner) flushPend() error {
	if p.pend != nil && p.pend.Len() > 0 {
		blk := p.pend
		p.pend = nil
		return p.ship(blk)
	}
	if p.pend != nil {
		p.dropPendBlock(p.pend)
		p.pend = nil
	}
	return nil
}

// advance closes the current interval's stream and opens the next,
// finalising the closing interval's shed mark first (the close orders the
// mark before any consumer's post-drain read).
func (p *IntervalPartitioner) advance() error {
	err := p.flushPend()
	if p.curShed {
		p.cur.shed = true
		p.shedIntervals++
		p.curShed = false
	}
	close(p.cur.blocks)
	if err != nil {
		// The stream is already closed; clear cur so the caller's Abort
		// does not close it twice.
		p.cur = nil
		return err
	}
	p.clock.cur++
	return p.open()
}

// append adds one rebased packet to the pending block, shipping it when
// full. In shed mode a packet landing in a shed interval is dropped and
// counted.
func (p *IntervalPartitioner) append(t float64, size uint16, src, dst uint64) error {
	if p.curShed {
		p.shedRecords++
		return nil
	}
	ok, err := p.takePend()
	if err != nil {
		return err
	}
	if !ok {
		p.shedRecords++
		return nil
	}
	p.pend.Append(t, size, src, dst)
	if p.pend.Len() >= p.blockSize {
		blk := p.pend
		p.pend = nil
		return p.ship(blk)
	}
	return nil
}

// Add routes one packet into its interval's sub-stream, opening (and closing)
// intervals as boundaries pass. Packets must arrive in non-decreasing time
// order with non-negative timestamps. Add blocks when the interval's buffer
// is full until the consumer catches up.
func (p *IntervalPartitioner) Add(rec trace.Record) error {
	idx, err := p.clock.place(rec.Time)
	if err != nil {
		return err
	}
	if p.cur == nil {
		if err := p.open(); err != nil {
			return err
		}
	}
	for p.clock.cur < idx {
		if err := p.advance(); err != nil {
			return err
		}
	}
	src, dst := rec.Hdr.Packed()
	return p.append(rec.Time-p.clock.origin(), rec.Hdr.TotalLen, src, dst)
}

// AddBlock routes a whole SoA block, splitting it at interval boundaries:
// each same-interval run is copied into the interval's pending block with
// times rebased during the copy. The passed block is not retained (the
// producer may recycle it after AddBlock returns). On success, semantics
// match per-record Add exactly; on a validation error the valid prefix of
// the failing run is dropped rather than forwarded (the stream is
// aborting — its current interval is torn down by Abort either way).
func (p *IntervalPartitioner) AddBlock(blk *trace.Block) error {
	n := blk.Len()
	j := 0
	for j < n {
		idx, k, err := p.clock.placeRun(blk.Times, j)
		if err != nil {
			return err
		}
		if p.cur == nil {
			if err := p.open(); err != nil {
				return err
			}
		}
		for p.clock.cur < idx {
			if err := p.advance(); err != nil {
				return err
			}
		}
		origin := p.clock.origin()
		for i := j; i < k; {
			if p.curShed {
				p.shedRecords += int64(k - i)
				break
			}
			ok, err := p.takePend()
			if err != nil {
				return err
			}
			if !ok {
				p.shedRecords += int64(k - i)
				break
			}
			take := p.blockSize - p.pend.Len()
			if rem := k - i; rem < take {
				take = rem
			}
			p.pend.AppendRebased(blk, i, i+take, origin)
			i += take
			if p.pend.Len() >= p.blockSize {
				full := p.pend
				p.pend = nil
				if err := p.ship(full); err != nil {
					return err
				}
			}
		}
		j = k
	}
	return nil
}

// Close emits the remaining intervals — through the one containing the last
// packet, or through ⌈duration/intervalSec⌉ when a duration was declared
// (a partitioner with a duration and no packets still emits every interval,
// all empty). The partitioner must not be used after Close.
func (p *IntervalPartitioner) Close() error {
	if p.closed {
		return nil
	}
	total := p.clock.total()
	if total == 0 {
		p.closed = true
		return nil
	}
	if p.cur == nil {
		if err := p.open(); err != nil {
			p.Abort()
			return err
		}
	}
	for p.clock.cur < total-1 {
		if err := p.advance(); err != nil {
			p.Abort()
			return err
		}
	}
	err := p.flushPend()
	if p.curShed {
		p.cur.shed = true
		p.shedIntervals++
		p.curShed = false
	}
	close(p.cur.blocks)
	p.cur = nil
	p.closed = true
	return err
}

// Abort closes the in-flight interval's stream without emitting the rest,
// releasing any consumer blocked on it (already-accepted records are still
// delivered). Use it when the producing stream fails mid-trace; consumers
// of already-handed-off streams see them end early. The partitioner must
// not be used after Abort.
func (p *IntervalPartitioner) Abort() {
	if p.closed {
		return
	}
	if p.cur != nil {
		// Best-effort delivery of the trailing partial block; under
		// cancellation ship drops it (recycled, reservation released)
		// rather than blocking on a consumer that may be unwinding too.
		_ = p.flushPend()
		if p.curShed {
			p.cur.shed = true
			p.shedIntervals++
			p.curShed = false
		}
		close(p.cur.blocks)
		p.cur = nil
	} else if p.pend != nil {
		p.dropPendBlock(p.pend)
		p.pend = nil
	}
	p.closed = true
}

// MeasureStream assembles one interval-local record stream (times already
// rebased, non-decreasing) into flows under several definitions at once —
// the per-record face of the per-interval measurement unit. The stream is
// always drained to completion, even after an error, so a concurrent
// producer is never left blocked; the first error is returned after the
// drain. Results are index-aligned with defs.
func MeasureStream(recs iter.Seq[trace.Record], defs []Definition, timeout float64) ([]Result, error) {
	m, firstErr := NewMeasurer(defs, timeout)
	for rec := range recs {
		if firstErr != nil {
			continue
		}
		if err := m.Add(rec); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return m.Flush(), nil
}
