package flow

import (
	"fmt"
	"iter"

	"repro/internal/trace"
)

// streamBatch is how many records travel per channel operation between a
// partitioner and an interval consumer; batches are recycled through the
// pipeline-wide pool in trace (GetRecordBatch/PutRecordBatch), so a
// suite-length measurement pass reuses a handful of batches per worker
// instead of allocating tens of MB of them.
const streamBatch = trace.RecordBatchSize

// IntervalStream is one analysis interval's sub-stream of a partitioned
// record stream. Record times are rebased to the interval start. The stream
// is produced concurrently with consumption: the partitioner keeps sending
// record batches while a consumer drains Records, and closes the stream at
// the interval boundary.
type IntervalStream struct {
	Index   int
	Start   float64
	batches chan []trace.Record
}

// Records returns the interval's packets in time order, interval-local.
// The sequence is single-use and must be ranged to completion (breaking
// early still drains the remainder internally, so the producing partitioner
// never blocks on an abandoned stream). Batches are recycled after the
// consumer has seen their records, so a consumer must not retain record
// memory past its yield (records are values; copying fields is fine).
func (is *IntervalStream) Records() iter.Seq[trace.Record] {
	return func(yield func(trace.Record) bool) {
		for batch := range is.batches {
			for _, rec := range batch {
				if !yield(rec) {
					trace.PutRecordBatch(batch)
					for b := range is.batches {
						trace.PutRecordBatch(b)
					}
					return
				}
			}
			trace.PutRecordBatch(batch)
		}
	}
}

// IntervalPartitioner is the splitter's partition mode: instead of feeding
// flow assemblers inline, it splits a time-ordered record stream at analysis
// interval boundaries into interval-local sub-streams and hands each one to
// the handoff callback the moment the interval opens. Intervals are
// independent after the boundary split, so a scheduler can measure many of a
// trace's intervals concurrently while the (inherently serial, deterministic)
// producer keeps generating — the intra-trace sharding that takes the suite
// past one worker per trace.
//
// Interval accounting matches IntervalSplitter exactly: empty intervals
// between packets are emitted (immediately-closed streams), and with a
// declared duration every interval up to ⌈duration/intervalSec⌉ exists even
// if the trace goes quiet early. Records travel in batches to amortise the
// channel synchronisation, and a sub-stream holds at most ~buffer records
// in flight, so a slow consumer back-pressures the producer instead of
// letting memory grow with the trace.
type IntervalPartitioner struct {
	clock   intervalClock
	batches int // channel capacity of each sub-stream, in batches
	handoff func(*IntervalStream) error
	cur     *IntervalStream
	pend    []trace.Record // current interval's not-yet-sent batch
	closed  bool
}

// NewIntervalPartitioner builds a partitioner over intervals of intervalSec.
// duration, when positive, declares the trace length so trailing empty
// intervals are emitted and out-of-range packets rejected (0 derives the end
// from the last packet, like a splitter without SetDuration). handoff
// receives each interval's stream as it opens and must not block
// indefinitely: records only flow into a stream after its handoff returns.
func NewIntervalPartitioner(intervalSec, duration float64, buffer int, handoff func(*IntervalStream) error) (*IntervalPartitioner, error) {
	clock, err := newIntervalClock(intervalSec)
	if err != nil {
		return nil, err
	}
	if duration != 0 {
		if err := clock.setDuration(duration); err != nil {
			return nil, err
		}
	}
	if buffer <= 0 {
		return nil, fmt.Errorf("flow: partitioner buffer must be > 0, got %d", buffer)
	}
	if handoff == nil {
		return nil, fmt.Errorf("flow: partitioner needs a handoff callback")
	}
	batches := buffer / streamBatch
	if batches < 1 {
		batches = 1
	}
	return &IntervalPartitioner{clock: clock, batches: batches, handoff: handoff}, nil
}

// open starts the stream of the clock's current interval and hands it off.
func (p *IntervalPartitioner) open() error {
	s := &IntervalStream{
		Index:   p.clock.cur,
		Start:   p.clock.origin(),
		batches: make(chan []trace.Record, p.batches),
	}
	p.cur = s
	return p.handoff(s)
}

// flushPend sends the current interval's pending batch; the consumer owns
// the sent slice, so the next batch starts fresh.
func (p *IntervalPartitioner) flushPend() {
	if len(p.pend) > 0 {
		p.cur.batches <- p.pend
		p.pend = nil
	}
}

// advance closes the current interval's stream and opens the next.
func (p *IntervalPartitioner) advance() error {
	p.flushPend()
	close(p.cur.batches)
	p.clock.cur++
	return p.open()
}

// Add routes one packet into its interval's sub-stream, opening (and closing)
// intervals as boundaries pass. Packets must arrive in non-decreasing time
// order with non-negative timestamps. Add blocks when the interval's buffer
// is full until the consumer catches up.
func (p *IntervalPartitioner) Add(rec trace.Record) error {
	idx, err := p.clock.place(rec.Time)
	if err != nil {
		return err
	}
	if p.cur == nil {
		if err := p.open(); err != nil {
			return err
		}
	}
	for p.clock.cur < idx {
		if err := p.advance(); err != nil {
			return err
		}
	}
	rec.Time -= p.clock.origin()
	if p.pend == nil {
		p.pend = trace.GetRecordBatch()
	}
	p.pend = append(p.pend, rec)
	if len(p.pend) == streamBatch {
		p.cur.batches <- p.pend
		p.pend = nil
	}
	return nil
}

// Close emits the remaining intervals — through the one containing the last
// packet, or through ⌈duration/intervalSec⌉ when a duration was declared
// (a partitioner with a duration and no packets still emits every interval,
// all empty). The partitioner must not be used after Close.
func (p *IntervalPartitioner) Close() error {
	if p.closed {
		return nil
	}
	total := p.clock.total()
	if total == 0 {
		p.closed = true
		return nil
	}
	if p.cur == nil {
		if err := p.open(); err != nil {
			p.Abort()
			return err
		}
	}
	for p.clock.cur < total-1 {
		if err := p.advance(); err != nil {
			p.Abort()
			return err
		}
	}
	p.flushPend()
	close(p.cur.batches)
	p.cur = nil
	p.closed = true
	return nil
}

// Abort closes the in-flight interval's stream without emitting the rest,
// releasing any consumer blocked on it (already-accepted records are still
// delivered). Use it when the producing stream fails mid-trace; consumers
// of already-handed-off streams see them end early. The partitioner must
// not be used after Abort.
func (p *IntervalPartitioner) Abort() {
	if p.closed {
		return
	}
	if p.cur != nil {
		p.flushPend()
		close(p.cur.batches)
		p.cur = nil
	}
	p.closed = true
}

// MeasureStream assembles one interval-local record stream (times already
// rebased, non-decreasing) into flows under several definitions at once —
// the per-interval measurement unit of the two-level scheduler. The stream
// is always drained to completion, even after an error, so a concurrent
// producer is never left blocked; the first error is returned after the
// drain. Results are index-aligned with defs.
func MeasureStream(recs iter.Seq[trace.Record], defs []Definition, timeout float64) ([]Result, error) {
	asm := make([]streamMeasurer, len(defs))
	var firstErr error
	for i, def := range defs {
		a, err := newMeasurer(def, timeout)
		if err != nil {
			firstErr = err
			break
		}
		asm[i] = a
	}
	for rec := range recs {
		if firstErr != nil {
			continue
		}
		for _, a := range asm {
			if err := a.Add(rec); err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out := make([]Result, len(asm))
	for i, a := range asm {
		out[i] = a.Flush()
	}
	return out, nil
}
