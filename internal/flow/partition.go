package flow

import (
	"fmt"
	"iter"

	"repro/internal/trace"
)

// IntervalStream is one analysis interval's sub-stream of a partitioned
// record stream, carried as SoA blocks. Record times are rebased to the
// interval start. The stream is produced concurrently with consumption: the
// partitioner keeps sending blocks while a consumer drains Blocks (or the
// record-at-a-time Records view), and closes the stream at the interval
// boundary.
type IntervalStream struct {
	Index  int
	Start  float64
	blocks chan *trace.Block
}

// Blocks returns the interval's packets in time order, interval-local, one
// SoA block at a time. The sequence is single-use and must be ranged to
// completion (breaking early still drains the remainder internally, so the
// producing partitioner never blocks on an abandoned stream). Blocks are
// recycled after the consumer has seen them, so a consumer must not retain
// a block or its columns past its yield (copying out values is fine).
func (is *IntervalStream) Blocks() iter.Seq[*trace.Block] {
	return func(yield func(*trace.Block) bool) {
		for blk := range is.blocks {
			ok := yield(blk)
			trace.PutBlock(blk)
			if !ok {
				for b := range is.blocks {
					trace.PutBlock(b)
				}
				return
			}
		}
	}
}

// Records returns the interval's packets in time order, interval-local —
// the record-at-a-time view over the block stream. Same single-use and
// no-retention contract as Blocks (records are values; copying fields is
// fine).
func (is *IntervalStream) Records() iter.Seq[trace.Record] {
	return func(yield func(trace.Record) bool) {
		for blk := range is.blocks {
			n := blk.Len()
			for i := 0; i < n; i++ {
				if !yield(blk.Record(i)) {
					trace.PutBlock(blk)
					for b := range is.blocks {
						trace.PutBlock(b)
					}
					return
				}
			}
			trace.PutBlock(blk)
		}
	}
}

// IntervalPartitioner is the splitter's partition mode: instead of feeding
// flow assemblers inline, it splits a time-ordered record stream at analysis
// interval boundaries into interval-local sub-streams and hands each one to
// the handoff callback the moment the interval opens. Intervals are
// independent after the boundary split, so a scheduler can measure many of a
// trace's intervals concurrently while the (inherently serial, deterministic)
// producer keeps generating — the intra-trace sharding that takes the suite
// past one worker per trace.
//
// Interval accounting matches IntervalSplitter exactly: empty intervals
// between packets are emitted (immediately-closed streams), and with a
// declared duration every interval up to ⌈duration/intervalSec⌉ exists even
// if the trace goes quiet early. Records travel in SoA blocks to amortise
// the channel synchronisation (and so consumers measure columns, not
// records), and a sub-stream holds at most ~buffer records in flight, so a
// slow consumer back-pressures the producer instead of letting memory grow
// with the trace.
type IntervalPartitioner struct {
	clock     intervalClock
	buffer    int // per-stream in-flight bound, in records
	blockSize int // records per emitted block
	handoff   func(*IntervalStream) error
	cur       *IntervalStream
	pend      *trace.Block // current interval's not-yet-sent block
	closed    bool
}

// NewIntervalPartitioner builds a partitioner over intervals of intervalSec.
// duration, when positive, declares the trace length so trailing empty
// intervals are emitted and out-of-range packets rejected (0 derives the end
// from the last packet, like a splitter without SetDuration). handoff
// receives each interval's stream as it opens and must not block
// indefinitely: records only flow into a stream after its handoff returns.
func NewIntervalPartitioner(intervalSec, duration float64, buffer int, handoff func(*IntervalStream) error) (*IntervalPartitioner, error) {
	clock, err := newIntervalClock(intervalSec)
	if err != nil {
		return nil, err
	}
	if duration != 0 {
		if err := clock.setDuration(duration); err != nil {
			return nil, err
		}
	}
	if buffer <= 0 {
		return nil, fmt.Errorf("flow: partitioner buffer must be > 0, got %d", buffer)
	}
	if handoff == nil {
		return nil, fmt.Errorf("flow: partitioner needs a handoff callback")
	}
	return &IntervalPartitioner{
		clock:     clock,
		buffer:    buffer,
		blockSize: trace.BlockSize,
		handoff:   handoff,
	}, nil
}

// SetBlockSize overrides how many records each emitted block carries
// (default trace.BlockSize). The partitioned measurement is byte-identical
// at any size — the knob exists for that determinism test and for tuning.
// Must be called before the first Add.
func (p *IntervalPartitioner) SetBlockSize(n int) error {
	if n < 1 {
		return fmt.Errorf("flow: block size must be >= 1, got %d", n)
	}
	if p.cur != nil || p.closed {
		return fmt.Errorf("flow: block size must be set before the first packet")
	}
	p.blockSize = n
	return nil
}

// open starts the stream of the clock's current interval and hands it off.
func (p *IntervalPartitioner) open() error {
	cap := p.buffer / p.blockSize
	if cap < 1 {
		cap = 1
	}
	s := &IntervalStream{
		Index:  p.clock.cur,
		Start:  p.clock.origin(),
		blocks: make(chan *trace.Block, cap),
	}
	p.cur = s
	return p.handoff(s)
}

// flushPend sends the current interval's pending block; the consumer owns
// the sent block, so the next one starts fresh from the pool.
func (p *IntervalPartitioner) flushPend() {
	if p.pend != nil && p.pend.Len() > 0 {
		p.cur.blocks <- p.pend
		p.pend = nil
	}
}

// advance closes the current interval's stream and opens the next.
func (p *IntervalPartitioner) advance() error {
	p.flushPend()
	close(p.cur.blocks)
	p.clock.cur++
	return p.open()
}

// append adds one rebased packet to the pending block, shipping it when
// full.
func (p *IntervalPartitioner) append(t float64, size uint16, src, dst uint64) {
	if p.pend == nil {
		p.pend = trace.GetBlock()
	}
	p.pend.Append(t, size, src, dst)
	if p.pend.Len() >= p.blockSize {
		p.cur.blocks <- p.pend
		p.pend = nil
	}
}

// Add routes one packet into its interval's sub-stream, opening (and closing)
// intervals as boundaries pass. Packets must arrive in non-decreasing time
// order with non-negative timestamps. Add blocks when the interval's buffer
// is full until the consumer catches up.
func (p *IntervalPartitioner) Add(rec trace.Record) error {
	idx, err := p.clock.place(rec.Time)
	if err != nil {
		return err
	}
	if p.cur == nil {
		if err := p.open(); err != nil {
			return err
		}
	}
	for p.clock.cur < idx {
		if err := p.advance(); err != nil {
			return err
		}
	}
	src, dst := rec.Hdr.Packed()
	p.append(rec.Time-p.clock.origin(), rec.Hdr.TotalLen, src, dst)
	return nil
}

// AddBlock routes a whole SoA block, splitting it at interval boundaries:
// each same-interval run is copied into the interval's pending block with
// times rebased during the copy. The passed block is not retained (the
// producer may recycle it after AddBlock returns). On success, semantics
// match per-record Add exactly; on a validation error the valid prefix of
// the failing run is dropped rather than forwarded (the stream is
// aborting — its current interval is torn down by Abort either way).
func (p *IntervalPartitioner) AddBlock(blk *trace.Block) error {
	n := blk.Len()
	j := 0
	for j < n {
		idx, k, err := p.clock.placeRun(blk.Times, j)
		if err != nil {
			return err
		}
		if p.cur == nil {
			if err := p.open(); err != nil {
				return err
			}
		}
		for p.clock.cur < idx {
			if err := p.advance(); err != nil {
				return err
			}
		}
		origin := p.clock.origin()
		for i := j; i < k; {
			if p.pend == nil {
				p.pend = trace.GetBlock()
			}
			take := p.blockSize - p.pend.Len()
			if rem := k - i; rem < take {
				take = rem
			}
			p.pend.AppendRebased(blk, i, i+take, origin)
			i += take
			if p.pend.Len() >= p.blockSize {
				p.cur.blocks <- p.pend
				p.pend = nil
			}
		}
		j = k
	}
	return nil
}

// Close emits the remaining intervals — through the one containing the last
// packet, or through ⌈duration/intervalSec⌉ when a duration was declared
// (a partitioner with a duration and no packets still emits every interval,
// all empty). The partitioner must not be used after Close.
func (p *IntervalPartitioner) Close() error {
	if p.closed {
		return nil
	}
	total := p.clock.total()
	if total == 0 {
		p.closed = true
		return nil
	}
	if p.cur == nil {
		if err := p.open(); err != nil {
			p.Abort()
			return err
		}
	}
	for p.clock.cur < total-1 {
		if err := p.advance(); err != nil {
			p.Abort()
			return err
		}
	}
	p.flushPend()
	close(p.cur.blocks)
	p.cur = nil
	p.closed = true
	return nil
}

// Abort closes the in-flight interval's stream without emitting the rest,
// releasing any consumer blocked on it (already-accepted records are still
// delivered). Use it when the producing stream fails mid-trace; consumers
// of already-handed-off streams see them end early. The partitioner must
// not be used after Abort.
func (p *IntervalPartitioner) Abort() {
	if p.closed {
		return
	}
	if p.cur != nil {
		p.flushPend()
		close(p.cur.blocks)
		p.cur = nil
	}
	p.closed = true
}

// MeasureStream assembles one interval-local record stream (times already
// rebased, non-decreasing) into flows under several definitions at once —
// the per-record face of the per-interval measurement unit. The stream is
// always drained to completion, even after an error, so a concurrent
// producer is never left blocked; the first error is returned after the
// drain. Results are index-aligned with defs.
func MeasureStream(recs iter.Seq[trace.Record], defs []Definition, timeout float64) ([]Result, error) {
	m, firstErr := NewMeasurer(defs, timeout)
	for rec := range recs {
		if firstErr != nil {
			continue
		}
		if err := m.Add(rec); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return m.Flush(), nil
}
