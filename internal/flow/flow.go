// Package flow implements the paper's flow-measurement methodology (§III):
// packets are grouped into flows by one of two definitions — the 5-tuple or
// the destination /24 address prefix — a flow ends when no packet arrives
// for a 60 s timeout, single-packet flows are discarded (their duration
// would be zero) and their packets excluded from the measured total rate,
// and flows are split at analysis-interval boundaries.
//
// The assembler consumes packets in timestamp order (what a passive monitor
// sees) and runs in O(active flows) memory, evicting idle flows with an
// incremental expiry sweep amortised over the packet stream, so multi-hour
// traces stream through it without periodic full-table pauses.
package flow

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// DefaultTimeout is the paper's flow-termination timeout.
const DefaultTimeout = 60.0

// Definition selects how packets are grouped into flows.
type Definition int

// The flow definitions of §III, plus the /16 and /8 "routable prefix"
// extensions the paper proposes in §VI-A.
const (
	By5Tuple Definition = iota
	ByPrefix24
	ByPrefix16
	ByPrefix8
)

// String names the definition for reports.
func (d Definition) String() string {
	switch d {
	case By5Tuple:
		return "5-tuple"
	case ByPrefix24:
		return "/24 prefix"
	case ByPrefix16:
		return "/16 prefix"
	case ByPrefix8:
		return "/8 prefix"
	default:
		return fmt.Sprintf("Definition(%d)", int(d))
	}
}

// Flow is one completed flow: the quantities (T_n, S_n, D_n) of the model.
type Flow struct {
	Start   float64 // arrival time T_n of the first packet (seconds)
	End     float64 // time of the last packet
	Bytes   int64   // size in bytes
	Packets int     // packet count
}

// Duration returns D_n: the time between first and last packet.
func (f Flow) Duration() float64 { return f.End - f.Start }

// SizeBits returns S_n in bits, the unit the model uses.
func (f Flow) SizeBits() float64 { return float64(f.Bytes) * 8 }

// DiscardedPacket records a packet excluded from the measured rate because
// it formed a single-packet flow.
type DiscardedPacket struct {
	Time float64
	Bits float64
}

// Result is the output of measuring one packet sequence.
type Result struct {
	// Flows holds completed multi-packet flows, ordered by completion.
	Flows []Flow
	// Discarded lists the packets of single-packet flows; the paper
	// excludes them from the variance of the measured total rate.
	Discarded []DiscardedPacket
}

// flowState is an in-progress flow.
type flowState struct {
	start   float64
	last    float64
	bytes   int64
	packets int
	// firstBits remembers the only packet's size while packets == 1, so a
	// flow that never grows can be reported as a discarded packet.
	firstBits float64
}

// Assembler groups packets into flows under one definition. In-progress
// flow states live in a slot-recycled slab indexed by an open-addressed
// table over packed two-word keys: the per-packet path hashes its key once
// (or receives a precomputed hash column via AddBlock) and probes flat
// arrays — no generic map, no per-flow pointers, no allocation per flow;
// assembling a multi-million-flow trace costs amortised slice growth only.
type Assembler struct {
	def       Definition
	timeout   float64
	table     flowTable
	states    []flowState
	freeSlots []int32
	res       Result
	lastTime  float64
	started   bool
	// sweepDebt counts packets since the last expiry step; every sweepEvery
	// packets the assembler sweeps sweepStride table positions — the
	// incremental replacement of the old full-table periodic sweep.
	sweepDebt int
	// evict finalises one idle flow during a sweep step. Built once at
	// construction so the hot path passes a stored func value instead of
	// allocating a closure per call.
	evict func(slot int32)
}

// Incremental expiry tuning: one sweepStride-position step per sweepEvery
// packets is 2 positions of sweep work per packet amortised, which rotates
// the whole table well inside a timeout window at any realistic packet rate
// while keeping each step's latency trivially small.
const (
	sweepEvery  = 64
	sweepStride = 128
)

// NewAssembler returns a streaming assembler for one flow definition;
// timeout must be positive (use DefaultTimeout for the paper's 60 s).
func NewAssembler(def Definition, timeout float64) (*Assembler, error) {
	if _, ok := prefixDrop(def); !ok && def != By5Tuple {
		return nil, fmt.Errorf("flow: unknown definition %d", int(def))
	}
	if !(timeout > 0) {
		return nil, fmt.Errorf("flow: timeout must be > 0, got %g", timeout)
	}
	a := &Assembler{def: def, timeout: timeout}
	a.table.reset()
	a.evict = func(slot int32) {
		a.finish(&a.states[slot])
		a.freeSlots = append(a.freeSlots, slot)
	}
	return a, nil
}

// Reset returns the assembler to its fresh state, keeping table and slab
// storage — the per-interval re-arm of the measurement scheduler, which
// measures thousands of intervals without reallocating its tables.
func (a *Assembler) Reset() {
	a.table.reset()
	a.states = a.states[:0]
	a.freeSlots = a.freeSlots[:0]
	a.res = Result{}
	a.lastTime = 0
	a.started = false
	a.sweepDebt = 0
}

// alloc returns a free slab slot.
func (a *Assembler) alloc() int32 {
	if n := len(a.freeSlots); n > 0 {
		slot := a.freeSlots[n-1]
		a.freeSlots = a.freeSlots[:n-1]
		return slot
	}
	a.states = append(a.states, flowState{})
	return int32(len(a.states) - 1)
}

// errOutOfOrder builds the out-of-order-packet error. It lives outside the
// hot functions so the fmt boxing of its arguments stays off their
// escape-analysis budget: the caller passes plain float64s and the
// allocation happens only on the (at most once per stream) failure path.
func errOutOfOrder(t, last float64) error {
	return fmt.Errorf("flow: packet out of order: %g after %g", t, last)
}

// addPacked consumes one packet given its precomputed key triple. Time
// order was validated by the caller.
//
//repro:hotpath
func (a *Assembler) addPacked(t float64, size uint16, h, ka, kb uint64) {
	pos, ok := a.table.find(h, ka, kb)
	if !ok {
		slot := a.alloc()
		pos = a.table.insert(pos, h, ka, kb, slot)
		a.states[slot] = flowState{
			start: t, last: t,
			bytes: int64(size), packets: 1,
			firstBits: float64(size) * 8,
		}
	} else {
		st := &a.states[a.table.slot[pos]]
		if t-st.last > a.timeout {
			// The previous flow on this key timed out; finalise it and start
			// a fresh flow with this packet, reusing the slot in place.
			a.finish(st)
			*st = flowState{
				start: t, last: t,
				bytes: int64(size), packets: 1,
				firstBits: float64(size) * 8,
			}
		} else {
			st.last = t
			st.bytes += int64(size)
			st.packets++
		}
	}
	a.table.last[pos] = t
	// Incremental expiry: a bounded sweep step every sweepEvery packets
	// keeps memory bounded by the genuinely active flows without the
	// latency spike of a full-table pass.
	if a.sweepDebt++; a.sweepDebt >= sweepEvery {
		a.sweepDebt = 0
		a.table.sweepExpired(t-a.timeout, sweepStride, a.evict)
	}
}

// Add consumes one packet. Packets must arrive in non-decreasing time order.
//
//repro:hotpath
func (a *Assembler) Add(rec trace.Record) error {
	if a.started && rec.Time < a.lastTime {
		return errOutOfOrder(rec.Time, a.lastTime) //repro:alloc-ok error construction on the malformed-input branch only; no allocation on the in-order path
	}
	a.started = true
	a.lastTime = rec.Time
	src, dst := rec.Hdr.Packed()
	h, ka, kb := deriveOne(a.def, src, dst)
	a.addPacked(rec.Time, rec.Hdr.TotalLen, h, ka, kb)
	return nil
}

// AddBlock consumes a block of packets with precomputed key columns (hash,
// keyA, keyB index-aligned with the block; a Measurer derives them once and
// shares the derivation across its definitions). Packets must arrive in
// non-decreasing time order across Add/AddBlock calls.
//
//repro:hotpath
func (a *Assembler) AddBlock(blk *trace.Block, hash, keyA, keyB []uint64) error {
	n := blk.Len()
	for j := 0; j < n; j++ {
		t := blk.Times[j]
		if a.started && t < a.lastTime {
			return errOutOfOrder(t, a.lastTime) //repro:alloc-ok error construction on the malformed-input branch only; no allocation on the in-order path
		}
		a.started = true
		a.lastTime = t
		a.addPacked(t, blk.Sizes[j], hash[j], keyA[j], keyB[j])
	}
	return nil
}

func (a *Assembler) finish(st *flowState) {
	if st.packets == 1 {
		a.res.Discarded = append(a.res.Discarded, DiscardedPacket{Time: st.start, Bits: st.firstBits})
		return
	}
	a.res.Flows = append(a.res.Flows, Flow{
		Start:   st.start,
		End:     st.last,
		Bytes:   st.bytes,
		Packets: st.packets,
	})
}

// ActiveFlows returns the number of in-progress flows (the N(t) of the
// M/G/∞ view, §V-A, sampled at the last packet time). Flows idle past the
// timeout but not yet swept are still counted, as before the slab rewrite.
func (a *Assembler) ActiveFlows() int { return a.table.n }

// Flush finalises all in-progress flows (end of trace or of an analysis
// interval — the paper's boundary splitting) and returns the result.
// The assembler can keep consuming packets afterwards; flows that continue
// past a flush are counted again from the flush point, exactly like the
// paper's split flows.
//
// Flows and discarded packets are returned sorted by start time (ties
// broken on end time and size): finalisation order depends on table
// eviction order (and, before the table rewrite, on Go map iteration), and
// downstream statistics must be reproducible.
func (a *Assembler) Flush() Result {
	tb := &a.table
	for i := range tb.hash {
		if tb.hash[i] == 0 {
			continue
		}
		slot := tb.slot[i]
		a.finish(&a.states[slot])
		a.freeSlots = append(a.freeSlots, slot)
	}
	tb.reset()
	out := a.res
	a.res = Result{}
	sort.Slice(out.Flows, func(i, j int) bool {
		fi, fj := out.Flows[i], out.Flows[j]
		if fi.Start != fj.Start {
			return fi.Start < fj.Start
		}
		if fi.End != fj.End {
			return fi.End < fj.End
		}
		return fi.Bytes < fj.Bytes
	})
	sort.Slice(out.Discarded, func(i, j int) bool {
		di, dj := out.Discarded[i], out.Discarded[j]
		if di.Time != dj.Time {
			return di.Time < dj.Time
		}
		return di.Bits < dj.Bits
	})
	return out
}

// measureByDef runs recs through the assembler of one definition.
func measureByDef(recs []trace.Record, def Definition, timeout float64) (Result, error) {
	a, err := NewAssembler(def, timeout)
	if err != nil {
		return Result{}, err
	}
	for i := range recs {
		if err := a.Add(recs[i]); err != nil {
			return Result{}, err
		}
	}
	return a.Flush(), nil
}

// Measure groups recs (time-ordered) into flows under the given definition
// with the given timeout (use DefaultTimeout for the paper's 60 s).
func Measure(recs []trace.Record, def Definition, timeout float64) (Result, error) {
	return measureByDef(recs, def, timeout)
}

// IntervalResult is the measurement of one analysis interval.
type IntervalResult struct {
	Index int
	Start float64 // interval start time within the trace
	Result
}

// MeasureIntervals divides recs into consecutive intervals of intervalSec
// and measures each independently, splitting flows at boundaries exactly as
// the paper does ("flows that belong to 30 minutes intervals are split over
// the intervals they overlap"). Flow Start/End times are relative to the
// interval start, matching the per-interval analysis of §VI.
//
// It is a one-pass wrapper over IntervalSplitter: no window is copied and no
// record is visited twice. Empty intervals between packets are still emitted
// so interval indices align with wall-clock position (a dead link is data,
// not a gap).
func MeasureIntervals(recs []trace.Record, def Definition, intervalSec, timeout float64) ([]IntervalResult, error) {
	var out []IntervalResult
	s, err := NewIntervalSplitter([]Definition{def}, intervalSec, timeout, func(iv IntervalSet) error {
		out = append(out, IntervalResult{Index: iv.Index, Start: iv.Start, Result: iv.Results[0]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range recs {
		if err := s.Add(recs[i]); err != nil {
			return nil, err
		}
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// MeasureSpanning measures flows without boundary splitting (one assembler
// across the whole trace) and assigns each flow to the interval containing
// its start. This is the ablation counterpart of MeasureIntervals used to
// quantify the splitting artefact the paper argues is marginal (§III, §VI).
func MeasureSpanning(recs []trace.Record, def Definition, intervalSec, timeout float64) ([]IntervalResult, error) {
	if !(intervalSec > 0) {
		return nil, fmt.Errorf("flow: interval must be > 0, got %g", intervalSec)
	}
	whole, err := measureByDef(recs, def, timeout)
	if err != nil {
		return nil, err
	}
	maxIdx := 0
	if len(recs) > 0 {
		maxIdx = int(recs[len(recs)-1].Time / intervalSec)
	}
	out := make([]IntervalResult, maxIdx+1)
	for i := range out {
		out[i] = IntervalResult{Index: i, Start: float64(i) * intervalSec}
	}
	assign := func(t float64) int {
		idx := int(t / intervalSec)
		if idx < 0 {
			idx = 0
		}
		if idx > maxIdx {
			idx = maxIdx
		}
		return idx
	}
	for _, f := range whole.Flows {
		idx := assign(f.Start)
		f.Start -= out[idx].Start
		f.End -= out[idx].Start
		out[idx].Flows = append(out[idx].Flows, f)
	}
	for _, d := range whole.Discarded {
		idx := assign(d.Time)
		d.Time -= out[idx].Start
		out[idx].Discarded = append(out[idx].Discarded, d)
	}
	return out, nil
}
