// Package flow implements the paper's flow-measurement methodology (§III):
// packets are grouped into flows by one of two definitions — the 5-tuple or
// the destination /24 address prefix — a flow ends when no packet arrives
// for a 60 s timeout, single-packet flows are discarded (their duration
// would be zero) and their packets excluded from the measured total rate,
// and flows are split at analysis-interval boundaries.
//
// The assembler consumes packets in timestamp order (what a passive monitor
// sees) and runs in O(active flows) memory, evicting idle flows with a
// periodic sweep, so multi-hour traces stream through it.
package flow

import (
	"fmt"
	"sort"

	"repro/internal/netpkt"
	"repro/internal/trace"
)

// DefaultTimeout is the paper's flow-termination timeout.
const DefaultTimeout = 60.0

// Definition selects how packets are grouped into flows.
type Definition int

// The flow definitions of §III, plus the /16 and /8 "routable prefix"
// extensions the paper proposes in §VI-A.
const (
	By5Tuple Definition = iota
	ByPrefix24
	ByPrefix16
	ByPrefix8
)

// String names the definition for reports.
func (d Definition) String() string {
	switch d {
	case By5Tuple:
		return "5-tuple"
	case ByPrefix24:
		return "/24 prefix"
	case ByPrefix16:
		return "/16 prefix"
	case ByPrefix8:
		return "/8 prefix"
	default:
		return fmt.Sprintf("Definition(%d)", int(d))
	}
}

// Flow is one completed flow: the quantities (T_n, S_n, D_n) of the model.
type Flow struct {
	Start   float64 // arrival time T_n of the first packet (seconds)
	End     float64 // time of the last packet
	Bytes   int64   // size in bytes
	Packets int     // packet count
}

// Duration returns D_n: the time between first and last packet.
func (f Flow) Duration() float64 { return f.End - f.Start }

// SizeBits returns S_n in bits, the unit the model uses.
func (f Flow) SizeBits() float64 { return float64(f.Bytes) * 8 }

// DiscardedPacket records a packet excluded from the measured rate because
// it formed a single-packet flow.
type DiscardedPacket struct {
	Time float64
	Bits float64
}

// Result is the output of measuring one packet sequence.
type Result struct {
	// Flows holds completed multi-packet flows, ordered by completion.
	Flows []Flow
	// Discarded lists the packets of single-packet flows; the paper
	// excludes them from the variance of the measured total rate.
	Discarded []DiscardedPacket
}

// flowState is an in-progress flow.
type flowState struct {
	start   float64
	last    float64
	bytes   int64
	packets int
	// firstBits remembers the only packet's size while packets == 1, so a
	// flow that never grows can be reported as a discarded packet.
	firstBits float64
}

// Assembler groups packets of one key type K into flows. In-progress flow
// states live in a slot-recycled slab indexed by the key map, not behind
// per-flow pointers: assembling a multi-million-flow trace costs amortised
// slice growth, never an allocation per flow — the measurement pipeline's
// per-packet path stays allocation-free.
type Assembler[K comparable] struct {
	keyFn     func(netpkt.Header) K
	timeout   float64
	active    map[K]int32
	states    []flowState
	freeSlots []int32
	res       Result
	lastSweep float64
	lastTime  float64
	started   bool
}

// NewAssembler returns a streaming assembler. keyFn extracts the flow key;
// timeout must be positive (use DefaultTimeout for the paper's 60 s).
// keyFn takes the header by value so the per-packet call through the
// function value cannot make the record escape.
func NewAssembler[K comparable](keyFn func(netpkt.Header) K, timeout float64) (*Assembler[K], error) {
	if keyFn == nil {
		return nil, fmt.Errorf("flow: nil key function")
	}
	if !(timeout > 0) {
		return nil, fmt.Errorf("flow: timeout must be > 0, got %g", timeout)
	}
	return &Assembler[K]{
		keyFn:   keyFn,
		timeout: timeout,
		active:  make(map[K]int32),
	}, nil
}

// alloc returns a free slab slot.
func (a *Assembler[K]) alloc() int32 {
	if n := len(a.freeSlots); n > 0 {
		slot := a.freeSlots[n-1]
		a.freeSlots = a.freeSlots[:n-1]
		return slot
	}
	a.states = append(a.states, flowState{})
	return int32(len(a.states) - 1)
}

// Add consumes one packet. Packets must arrive in non-decreasing time order.
func (a *Assembler[K]) Add(rec trace.Record) error {
	if a.started && rec.Time < a.lastTime {
		return fmt.Errorf("flow: packet out of order: %g after %g", rec.Time, a.lastTime)
	}
	a.started = true
	a.lastTime = rec.Time
	key := a.keyFn(rec.Hdr)
	bits := rec.Bits()
	slot, ok := a.active[key]
	if !ok {
		slot = a.alloc()
		a.active[key] = slot
	}
	st := &a.states[slot]
	switch {
	case !ok:
		*st = flowState{
			start: rec.Time, last: rec.Time,
			bytes: int64(rec.Hdr.TotalLen), packets: 1,
			firstBits: bits,
		}
	case rec.Time-st.last > a.timeout:
		// The previous flow on this key timed out; finalise it and start a
		// fresh flow with this packet, reusing the slot in place.
		a.finish(st)
		*st = flowState{
			start: rec.Time, last: rec.Time,
			bytes: int64(rec.Hdr.TotalLen), packets: 1,
			firstBits: bits,
		}
	default:
		st.last = rec.Time
		st.bytes += int64(rec.Hdr.TotalLen)
		st.packets++
	}
	// Periodic sweep: evict flows idle past the timeout so memory stays
	// bounded by the number of genuinely active flows.
	if rec.Time-a.lastSweep > a.timeout {
		a.sweep(rec.Time)
		a.lastSweep = rec.Time
	}
	return nil
}

func (a *Assembler[K]) sweep(now float64) {
	for k, slot := range a.active {
		st := &a.states[slot]
		if now-st.last > a.timeout {
			a.finish(st)
			delete(a.active, k)
			a.freeSlots = append(a.freeSlots, slot)
		}
	}
}

func (a *Assembler[K]) finish(st *flowState) {
	if st.packets == 1 {
		a.res.Discarded = append(a.res.Discarded, DiscardedPacket{Time: st.start, Bits: st.firstBits})
		return
	}
	a.res.Flows = append(a.res.Flows, Flow{
		Start:   st.start,
		End:     st.last,
		Bytes:   st.bytes,
		Packets: st.packets,
	})
}

// ActiveFlows returns the number of in-progress flows (the N(t) of the
// M/G/∞ view, §V-A, sampled at the last packet time). Flows idle past the
// timeout but not yet swept are still counted, as before the slab rewrite.
func (a *Assembler[K]) ActiveFlows() int { return len(a.active) }

// Flush finalises all in-progress flows (end of trace or of an analysis
// interval — the paper's boundary splitting) and returns the result.
// The assembler can keep consuming packets afterwards; flows that continue
// past a flush are counted again from the flush point, exactly like the
// paper's split flows.
//
// Flows and discarded packets are returned sorted by start time (ties
// broken on end time and size): flow eviction walks Go maps, whose order
// varies between runs, and downstream statistics must be reproducible.
func (a *Assembler[K]) Flush() Result {
	for k, slot := range a.active {
		a.finish(&a.states[slot])
		delete(a.active, k)
		a.freeSlots = append(a.freeSlots, slot)
	}
	out := a.res
	a.res = Result{}
	sort.Slice(out.Flows, func(i, j int) bool {
		fi, fj := out.Flows[i], out.Flows[j]
		if fi.Start != fj.Start {
			return fi.Start < fj.Start
		}
		if fi.End != fj.End {
			return fi.End < fj.End
		}
		return fi.Bytes < fj.Bytes
	})
	sort.Slice(out.Discarded, func(i, j int) bool {
		di, dj := out.Discarded[i], out.Discarded[j]
		if di.Time != dj.Time {
			return di.Time < dj.Time
		}
		return di.Bits < dj.Bits
	})
	return out
}

// measureByDef runs recs through the assembler of one definition. Dedicated
// comparable key types (not strings, see newMeasurer) keep the hot path
// allocation-free.
func measureByDef(recs []trace.Record, def Definition, timeout float64) (Result, error) {
	a, err := newMeasurer(def, timeout)
	if err != nil {
		return Result{}, err
	}
	for i := range recs {
		if err := a.Add(recs[i]); err != nil {
			return Result{}, err
		}
	}
	return a.Flush(), nil
}

// Measure groups recs (time-ordered) into flows under the given definition
// with the given timeout (use DefaultTimeout for the paper's 60 s).
func Measure(recs []trace.Record, def Definition, timeout float64) (Result, error) {
	return measureByDef(recs, def, timeout)
}

// IntervalResult is the measurement of one analysis interval.
type IntervalResult struct {
	Index int
	Start float64 // interval start time within the trace
	Result
}

// MeasureIntervals divides recs into consecutive intervals of intervalSec
// and measures each independently, splitting flows at boundaries exactly as
// the paper does ("flows that belong to 30 minutes intervals are split over
// the intervals they overlap"). Flow Start/End times are relative to the
// interval start, matching the per-interval analysis of §VI.
//
// It is a one-pass wrapper over IntervalSplitter: no window is copied and no
// record is visited twice. Empty intervals between packets are still emitted
// so interval indices align with wall-clock position (a dead link is data,
// not a gap).
func MeasureIntervals(recs []trace.Record, def Definition, intervalSec, timeout float64) ([]IntervalResult, error) {
	var out []IntervalResult
	s, err := NewIntervalSplitter([]Definition{def}, intervalSec, timeout, func(iv IntervalSet) error {
		out = append(out, IntervalResult{Index: iv.Index, Start: iv.Start, Result: iv.Results[0]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range recs {
		if err := s.Add(recs[i]); err != nil {
			return nil, err
		}
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// MeasureSpanning measures flows without boundary splitting (one assembler
// across the whole trace) and assigns each flow to the interval containing
// its start. This is the ablation counterpart of MeasureIntervals used to
// quantify the splitting artefact the paper argues is marginal (§III, §VI).
func MeasureSpanning(recs []trace.Record, def Definition, intervalSec, timeout float64) ([]IntervalResult, error) {
	if !(intervalSec > 0) {
		return nil, fmt.Errorf("flow: interval must be > 0, got %g", intervalSec)
	}
	whole, err := measureByDef(recs, def, timeout)
	if err != nil {
		return nil, err
	}
	maxIdx := 0
	if len(recs) > 0 {
		maxIdx = int(recs[len(recs)-1].Time / intervalSec)
	}
	out := make([]IntervalResult, maxIdx+1)
	for i := range out {
		out[i] = IntervalResult{Index: i, Start: float64(i) * intervalSec}
	}
	assign := func(t float64) int {
		idx := int(t / intervalSec)
		if idx < 0 {
			idx = 0
		}
		if idx > maxIdx {
			idx = maxIdx
		}
		return idx
	}
	for _, f := range whole.Flows {
		idx := assign(f.Start)
		f.Start -= out[idx].Start
		f.End -= out[idx].Start
		out[idx].Flows = append(out[idx].Flows, f)
	}
	for _, d := range whole.Discarded {
		idx := assign(d.Time)
		d.Time -= out[idx].Start
		out[idx].Discarded = append(out[idx].Discarded, d)
	}
	return out, nil
}
