package flow

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/netpkt"
	"repro/internal/trace"
)

// rec builds a packet record for tests.
func rec(t float64, src, dst byte, sport uint16, bytes uint16) trace.Record {
	return trace.Record{
		Time: t,
		Hdr: netpkt.Header{
			SrcIP:    netpkt.IPv4Addr{10, 0, 0, src},
			DstIP:    netpkt.IPv4Addr{172, 16, 5, dst},
			Protocol: netpkt.ProtoTCP,
			SrcPort:  sport,
			DstPort:  80,
			TotalLen: bytes,
		},
	}
}

func TestNewAssemblerValidation(t *testing.T) {
	if _, err := NewAssembler(Definition(99), 60); err == nil {
		t.Fatal("unknown definition should be rejected")
	}
	if _, err := NewAssembler(By5Tuple, 0); err == nil {
		t.Fatal("zero timeout should be rejected")
	}
}

func TestMeasureBasicFlow(t *testing.T) {
	recs := []trace.Record{
		rec(1.0, 1, 1, 1000, 1500),
		rec(1.5, 1, 1, 1000, 1500),
		rec(3.0, 1, 1, 1000, 500),
	}
	res, err := Measure(recs, By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(res.Flows))
	}
	f := res.Flows[0]
	if f.Start != 1.0 || f.End != 3.0 || f.Bytes != 3500 || f.Packets != 3 {
		t.Fatalf("flow = %+v", f)
	}
	if f.Duration() != 2.0 {
		t.Fatalf("duration = %g, want 2", f.Duration())
	}
	if f.SizeBits() != 28000 {
		t.Fatalf("size = %g bits, want 28000", f.SizeBits())
	}
}

func TestMeasureSeparatesKeys(t *testing.T) {
	recs := []trace.Record{
		rec(1, 1, 1, 1000, 100),
		rec(1.1, 2, 1, 1000, 100), // different source IP
		rec(1.2, 1, 1, 1000, 100),
		rec(1.3, 2, 1, 1000, 100),
		rec(1.4, 1, 1, 2000, 100), // different source port
		rec(1.5, 1, 1, 2000, 100),
	}
	res, err := Measure(recs, By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 3 {
		t.Fatalf("got %d flows, want 3", len(res.Flows))
	}
}

func TestPrefixAggregation(t *testing.T) {
	// Two 5-tuple flows to the same /24 must merge under ByPrefix24.
	recs := []trace.Record{
		rec(1, 1, 7, 1000, 100),
		rec(2, 2, 8, 2000, 100),
		rec(3, 1, 7, 1000, 100),
		rec(4, 2, 8, 2000, 100),
	}
	res5, err := Measure(recs, By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := Measure(recs, ByPrefix24, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res5.Flows) != 2 {
		t.Fatalf("5-tuple flows = %d, want 2", len(res5.Flows))
	}
	if len(resP.Flows) != 1 {
		t.Fatalf("prefix flows = %d, want 1", len(resP.Flows))
	}
	if resP.Flows[0].Bytes != 400 || resP.Flows[0].Duration() != 3 {
		t.Fatalf("merged flow = %+v", resP.Flows[0])
	}
}

func TestPrefix16And8(t *testing.T) {
	a := rec(1, 1, 1, 1000, 100)
	b := rec(2, 1, 1, 1000, 100)
	b.Hdr.DstIP = netpkt.IPv4Addr{172, 16, 200, 9} // same /16, different /24
	res24, err := Measure([]trace.Record{a, b}, ByPrefix24, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	res16, err := Measure([]trace.Record{a, b}, ByPrefix16, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// Under /24 both are single-packet flows (discarded); under /16 they
	// merge into one 2-packet flow.
	if len(res24.Flows) != 0 || len(res24.Discarded) != 2 {
		t.Fatalf("/24: flows=%d discarded=%d, want 0/2", len(res24.Flows), len(res24.Discarded))
	}
	if len(res16.Flows) != 1 {
		t.Fatalf("/16: flows=%d, want 1", len(res16.Flows))
	}
	c := rec(3, 1, 1, 1000, 100)
	c.Hdr.DstIP = netpkt.IPv4Addr{172, 99, 0, 1} // same /8 only
	res8, err := Measure([]trace.Record{a, b, c}, ByPrefix8, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res8.Flows) != 1 || res8.Flows[0].Packets != 3 {
		t.Fatalf("/8: %+v", res8.Flows)
	}
}

func TestTimeoutSplitsFlows(t *testing.T) {
	recs := []trace.Record{
		rec(0, 1, 1, 1000, 100),
		rec(10, 1, 1, 1000, 100),
		rec(100, 1, 1, 1000, 100), // 90 s gap > 60 s timeout -> new flow
		rec(110, 1, 1, 1000, 100),
	}
	res, err := Measure(recs, By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("got %d flows, want 2 (timeout split)", len(res.Flows))
	}
	if res.Flows[0].Start != 0 || res.Flows[0].End != 10 {
		t.Fatalf("first flow = %+v", res.Flows[0])
	}
	if res.Flows[1].Start != 100 || res.Flows[1].End != 110 {
		t.Fatalf("second flow = %+v", res.Flows[1])
	}
}

func TestGapJustUnderTimeoutKeepsFlow(t *testing.T) {
	recs := []trace.Record{
		rec(0, 1, 1, 1000, 100),
		rec(59.9, 1, 1, 1000, 100),
		rec(119.8, 1, 1, 1000, 100),
	}
	res, err := Measure(recs, By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 || res.Flows[0].Packets != 3 {
		t.Fatalf("flows = %+v, want one 3-packet flow", res.Flows)
	}
}

func TestSinglePacketFlowsDiscarded(t *testing.T) {
	recs := []trace.Record{
		rec(1, 1, 1, 1000, 700), // lone packet
		rec(2, 2, 2, 2000, 100),
		rec(3, 2, 2, 2000, 100),
	}
	res, err := Measure(recs, By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(res.Flows))
	}
	if len(res.Discarded) != 1 {
		t.Fatalf("discarded = %d, want 1", len(res.Discarded))
	}
	d := res.Discarded[0]
	if d.Time != 1 || d.Bits != 5600 {
		t.Fatalf("discarded packet = %+v", d)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	a, err := NewAssembler(By5Tuple, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(rec(5, 1, 1, 1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(rec(4, 1, 1, 1, 100)); err == nil {
		t.Fatal("out-of-order packet should be rejected")
	}
}

func TestFlushResetsAndSplits(t *testing.T) {
	a, err := NewAssembler(By5Tuple, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []trace.Record{rec(1, 1, 1, 1, 100), rec(2, 1, 1, 1, 100)} {
		if err := a.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	first := a.Flush()
	if len(first.Flows) != 1 {
		t.Fatalf("first flush flows = %d", len(first.Flows))
	}
	// The same 5-tuple continues: it must appear again as a new flow
	// (the paper's boundary splitting).
	for _, r := range []trace.Record{rec(3, 1, 1, 1, 100), rec(4, 1, 1, 1, 100)} {
		if err := a.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	second := a.Flush()
	if len(second.Flows) != 1 {
		t.Fatalf("second flush flows = %d", len(second.Flows))
	}
	if second.Flows[0].Start != 3 {
		t.Fatalf("continuation flow start = %g, want 3", second.Flows[0].Start)
	}
}

func TestEvictionSweepBoundsMemory(t *testing.T) {
	a, err := NewAssembler(By5Tuple, 60)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 flows, each two packets, spread over 1000 s: at any time only a
	// handful are active, and the sweep must have evicted old ones.
	for i := 0; i < 1000; i++ {
		t0 := float64(i)
		if err := a.Add(rec(t0, byte(i%250), byte(i/250), uint16(i), 100)); err != nil {
			t.Fatal(err)
		}
		if err := a.Add(rec(t0+0.5, byte(i%250), byte(i/250), uint16(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if a.ActiveFlows() > 200 {
		t.Fatalf("sweep failed: %d active flows retained", a.ActiveFlows())
	}
	res := a.Flush()
	if len(res.Flows) != 1000 {
		t.Fatalf("flows = %d, want 1000", len(res.Flows))
	}
}

func TestMeasureIntervalsSplitsAtBoundaries(t *testing.T) {
	// One flow spanning t=50..130 over 60 s intervals must appear in
	// intervals 0, 1 and 2.
	var recs []trace.Record
	for ts := 50.0; ts <= 130; ts += 5 {
		recs = append(recs, rec(ts, 1, 1, 1000, 100))
	}
	ivs, err := MeasureIntervals(recs, By5Tuple, 60, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 3 {
		t.Fatalf("intervals = %d, want 3", len(ivs))
	}
	for i, iv := range ivs {
		if len(iv.Flows) != 1 {
			t.Fatalf("interval %d flows = %d, want 1 (split flow)", i, len(iv.Flows))
		}
		f := iv.Flows[0]
		if f.Start < 0 || f.End >= 60 {
			t.Fatalf("interval %d flow not rebased: %+v", i, f)
		}
	}
	// Total split-flow count exceeds the unsplit count by the number of
	// boundaries crossed (2).
	span, err := MeasureSpanning(recs, By5Tuple, 60, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, iv := range span {
		total += len(iv.Flows)
	}
	if total != 1 {
		t.Fatalf("spanning flows = %d, want 1", total)
	}
}

func TestMeasureIntervalsEmptyGap(t *testing.T) {
	recs := []trace.Record{
		rec(10, 1, 1, 1, 100), rec(11, 1, 1, 1, 100),
		// nothing in interval 1 (60..120)
		rec(130, 2, 2, 2, 100), rec(131, 2, 2, 2, 100),
	}
	ivs, err := MeasureIntervals(recs, By5Tuple, 60, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 3 {
		t.Fatalf("intervals = %d, want 3 (middle one empty)", len(ivs))
	}
	if len(ivs[1].Flows) != 0 || len(ivs[1].Discarded) != 0 {
		t.Fatalf("middle interval not empty: %+v", ivs[1])
	}
	if ivs[1].Start != 60 {
		t.Fatalf("middle interval start = %g", ivs[1].Start)
	}
}

func TestMeasureIntervalsValidation(t *testing.T) {
	if _, err := MeasureIntervals(nil, By5Tuple, 0, 60); err == nil {
		t.Fatal("zero interval should be rejected")
	}
	if _, err := MeasureSpanning(nil, By5Tuple, -1, 60); err == nil {
		t.Fatal("negative interval should be rejected")
	}
	if _, err := Measure(nil, Definition(99), 60); err == nil {
		t.Fatal("unknown definition should be rejected")
	}
}

func TestDefinitionString(t *testing.T) {
	if By5Tuple.String() != "5-tuple" || ByPrefix24.String() != "/24 prefix" {
		t.Fatal("definition names wrong")
	}
	if Definition(42).String() == "" {
		t.Fatal("unknown definition should still format")
	}
}

// End-to-end: measure a synthetic trace and verify the flow-level view is
// consistent with what the generator drew.
func TestMeasureSyntheticTrace(t *testing.T) {
	size, _ := dist.NewBoundedPareto(1.3, 3000, 300000)
	rate, _ := dist.LognormalFromMoments(250e3, 1)
	cfg := trace.Config{
		Duration:  60,
		Lambda:    50,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Constant{V: 1},
		Warmup:    90, // sessions spread flows ~20 s; see trace.Config
		Seed:      42,
	}
	recs, sum, err := trace.GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Measure(recs, By5Tuple, DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	nFlows := len(res.Flows) + len(res.Discarded)
	// Some generated flows may be split by the timeout or truncated at the
	// horizon, but the counts must be close.
	if math.Abs(float64(nFlows)-float64(sum.Flows))/float64(sum.Flows) > 0.05 {
		t.Fatalf("measured %d flows, generator drew %d", nFlows, sum.Flows)
	}
	// λ̂ from the measured flows matches the realised generator rate
	// tightly, and the configured λ loosely (session clustering makes the
	// per-window flow count noisier than a plain Poisson count).
	lambdaHat := float64(nFlows) / cfg.Duration
	if math.Abs(lambdaHat-sum.FlowRate)/sum.FlowRate > 0.05 {
		t.Fatalf("λ̂ = %g, realised rate %g", lambdaHat, sum.FlowRate)
	}
	if math.Abs(lambdaHat-cfg.Lambda)/cfg.Lambda > 0.35 {
		t.Fatalf("λ̂ = %g implausibly far from configured λ %g", lambdaHat, cfg.Lambda)
	}
	// Byte conservation: flows + discarded == all packets.
	var flowBits, discBits float64
	for _, f := range res.Flows {
		flowBits += f.SizeBits()
	}
	for _, d := range res.Discarded {
		discBits += d.Bits
	}
	if total := float64(sum.Bytes) * 8; math.Abs(flowBits+discBits-total) > 1 {
		t.Fatalf("bit conservation: flows %g + discarded %g != total %g",
			flowBits, discBits, total)
	}
	// Durations are positive and below the interval length.
	for _, f := range res.Flows {
		if f.Duration() <= 0 || f.Duration() > cfg.Duration {
			t.Fatalf("bad duration %g", f.Duration())
		}
	}
}
