package flow

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/membudget"
	"repro/internal/trace"
)

// feedRecords pushes n records at 1 s spacing into the partitioner.
func feedRecords(p *IntervalPartitioner, n int) error {
	for i := 0; i < n; i++ {
		if err := p.Add(rec(float64(i), 1, 1, 1000, 100)); err != nil {
			return err
		}
	}
	return nil
}

// drainCounts collects each handed-off stream and returns a drain function
// usable after Close/Abort — the "consumer arrives late" shape that makes
// budget tests deterministic.
type streamCollector struct {
	mu      sync.Mutex
	streams []*IntervalStream
}

func (c *streamCollector) handoff(is *IntervalStream) error {
	c.mu.Lock()
	c.streams = append(c.streams, is)
	c.mu.Unlock()
	return nil
}

func (c *streamCollector) drain() (perInterval []int, shed []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, is := range c.streams {
		n := 0
		for blk := range is.Blocks() {
			n += blk.Len()
		}
		perInterval = append(perInterval, n)
		shed = append(shed, is.Shed())
	}
	return perInterval, shed
}

// A cancelled context must unwind a producer blocked on a full stream with
// a wrapped context error instead of wedging it, and every block — sent or
// pending — must return to the pool.
func TestPartitionerContextCancelUnblocksSend(t *testing.T) {
	base := trace.LiveBlocks()
	ctx, cancel := context.WithCancel(context.Background())
	col := &streamCollector{}
	p, err := NewIntervalPartitioner(100, 0, 2, col.handoff)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetBlockSize(2); err != nil {
		t.Fatal(err)
	}
	if err := p.SetContext(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Channel capacity is buffer/blockSize = 1: the first full block ships,
	// the second must hit the cancelled-send path.
	feedErr := feedRecords(p, 64)
	if feedErr == nil {
		t.Fatal("feeding a cancelled partitioner with a full stream succeeded")
	}
	if !errors.Is(feedErr, context.Canceled) {
		t.Fatalf("feed error %v does not wrap context.Canceled", feedErr)
	}
	p.Abort()
	col.drain()
	if got := trace.LiveBlocks(); got != base {
		t.Fatalf("leaked %d pool blocks on the cancellation path", got-base)
	}
}

// SetContext and SetBudget are construction-time knobs: once a packet has
// been routed they must be rejected.
func TestPartitionerSettersRejectedAfterFirstPacket(t *testing.T) {
	col := &streamCollector{}
	p, err := NewIntervalPartitioner(100, 0, 16, col.handoff)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(rec(0, 1, 1, 1000, 100)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetContext(context.Background()); err == nil {
		t.Fatal("SetContext accepted after the first packet")
	}
	b, _ := membudget.New(1 << 20)
	if err := p.SetBudget(b, false); err == nil {
		t.Fatal("SetBudget accepted after the first packet")
	}
	p.Abort()
	col.drain()
}

// Backpressure mode: a one-block budget with a concurrent consumer must
// deliver every record exactly as an unbudgeted run would — bounded memory
// never changes output, only producer latency.
func TestPartitionerBudgetBackpressureExactOutput(t *testing.T) {
	base := trace.LiveBlocks()
	run := func(budget *membudget.Budget) []int {
		var mu sync.Mutex
		counts := map[int]int{}
		var wg sync.WaitGroup
		p, err := NewIntervalPartitioner(10, 40, 64, func(is *IntervalStream) error {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := 0
				for blk := range is.Blocks() {
					n += blk.Len()
				}
				mu.Lock()
				counts[is.Index] = n
				mu.Unlock()
			}()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SetBlockSize(4); err != nil {
			t.Fatal(err)
		}
		if budget != nil {
			if err := p.SetBudget(budget, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := feedRecords(p, 35); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		out := make([]int, 4)
		for idx, n := range counts {
			out[idx] = n
		}
		return out
	}
	free := run(nil)
	// A 1-byte budget clamps every block reservation to the whole limit:
	// exactly one block may be in flight at a time — maximal backpressure.
	tight, err := membudget.New(1)
	if err != nil {
		t.Fatal(err)
	}
	squeezed := run(tight)
	for i := range free {
		if free[i] != squeezed[i] {
			t.Fatalf("interval %d: %d records under budget, %d without", i, squeezed[i], free[i])
		}
	}
	if tight.Used() != 0 {
		t.Fatalf("budget still holds %d bytes after a balanced run", tight.Used())
	}
	if tight.Waits() == 0 {
		t.Fatal("one-block budget never blocked the producer — backpressure untested")
	}
	if got := trace.LiveBlocks(); got != base {
		t.Fatalf("leaked %d pool blocks", got-base)
	}
}

// Shed mode: with a one-block budget and a consumer that only drains after
// the trace ends, everything past the first block must be dropped — and
// every drop accounted: shed streams flagged, interval and record counters
// exact, budget balanced after the drain.
func TestPartitionerShedModeAccountsDrops(t *testing.T) {
	base := trace.LiveBlocks()
	budget, err := membudget.New(1)
	if err != nil {
		t.Fatal(err)
	}
	col := &streamCollector{}
	// intervals of 10 s over a declared 30 s: intervals 0 and 1 get records,
	// interval 2 stays empty.
	p, err := NewIntervalPartitioner(10, 30, 64, col.handoff)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetBlockSize(4); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBudget(budget, true); err != nil {
		t.Fatal(err)
	}
	if err := feedRecords(p, 20); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	counts, shed := col.drain()
	// Interval 0: first block of 4 ships, the remaining 6 records drop.
	// Interval 1 (records 10..19): budget still held, all 10 drop.
	wantCounts := []int{4, 0, 0}
	wantShed := []bool{true, true, false}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("interval %d drained %d records, want %d (all: %v)", i, counts[i], wantCounts[i], counts)
		}
		if shed[i] != wantShed[i] {
			t.Fatalf("interval %d shed = %v, want %v", i, shed[i], wantShed[i])
		}
	}
	ivs, recsDropped := p.ShedStats()
	if ivs != 2 || recsDropped != 16 {
		t.Fatalf("ShedStats = (%d, %d), want (2, 16)", ivs, recsDropped)
	}
	if budget.Used() != 0 {
		t.Fatalf("budget still holds %d bytes after drain", budget.Used())
	}
	if got := trace.LiveBlocks(); got != base {
		t.Fatalf("leaked %d pool blocks", got-base)
	}
}

// A consumer panicking out of Blocks/Records must not leak the in-hand
// block, the undrained remainder, or their budget reservations — the
// deferred drain runs on the unwind.
func TestIntervalStreamIteratorsPanicSafe(t *testing.T) {
	for _, mode := range []string{"blocks", "records"} {
		t.Run(mode, func(t *testing.T) {
			base := trace.LiveBlocks()
			budget, err := membudget.New(1 << 20)
			if err != nil {
				t.Fatal(err)
			}
			bytes := trace.BlockCost(trace.BlockSize)
			is := &IntervalStream{blocks: make(chan *trace.Block, 4), budget: budget, blockBytes: bytes}
			for i := 0; i < 3; i++ {
				blk := trace.GetBlock()
				blk.Append(float64(i), 1, 1, 1)
				if err := budget.Reserve(context.Background(), bytes); err != nil {
					t.Fatal(err)
				}
				is.blocks <- blk
			}
			close(is.blocks)
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("consumer panic did not propagate")
					}
				}()
				if mode == "blocks" {
					for range is.Blocks() {
						panic("consumer exploded")
					}
				} else {
					for range is.Records() {
						panic("consumer exploded")
					}
				}
			}()
			if got := trace.LiveBlocks(); got != base {
				t.Fatalf("leaked %d pool blocks across consumer panic", got-base)
			}
			if budget.Used() != 0 {
				t.Fatalf("leaked %d budget bytes across consumer panic", budget.Used())
			}
		})
	}
}
