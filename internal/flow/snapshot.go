package flow

import (
	"fmt"
	"sort"
)

// This file is the checkpoint/restore extension point of the assembler: a
// long-running service snapshots the in-progress flow table mid-stream
// (between blocks) so a crashed pipeline can resume from durable state
// instead of losing every open flow. The snapshot is a portable value —
// packed keys plus flow quantities — decoupled from the table's physical
// layout: restore re-derives hashes and re-inserts, so the on-disk format
// survives any future table reorganisation.

// FlowEntry is one in-progress flow in a snapshot: its packed two-word key
// (the layout deriveOne produces for the assembler's definition) and the
// accumulated flow quantities.
type FlowEntry struct {
	KeyA    uint64
	KeyB    uint64
	Start   float64
	Last    float64
	Bytes   int64
	Packets int64
}

// AssemblerState is the complete resumable state of one assembler:
// in-progress flows plus the flows already finalised (by expiry sweeps)
// since the last Flush. Sweep-cursor internals are deliberately absent —
// expiry timing affects only the memory bound, never results, so a restored
// assembler restarting its sweep rotation is observationally identical.
type AssemblerState struct {
	Started   bool
	LastTime  float64
	Entries   []FlowEntry
	Flows     []Flow
	Discarded []DiscardedPacket
}

// SnapshotState captures the assembler's resumable state. Entries are
// returned sorted by key so the snapshot is identical regardless of the
// table's physical layout (insert order, capacity history); the assembler
// itself is unchanged and keeps consuming packets.
func (a *Assembler) SnapshotState() AssemblerState {
	st := AssemblerState{
		Started:  a.started,
		LastTime: a.lastTime,
	}
	tb := &a.table
	for i := range tb.hash {
		if tb.hash[i] == 0 {
			continue
		}
		fs := &a.states[tb.slot[i]]
		st.Entries = append(st.Entries, FlowEntry{
			KeyA:    tb.keyA[i],
			KeyB:    tb.keyB[i],
			Start:   fs.start,
			Last:    fs.last,
			Bytes:   fs.bytes,
			Packets: int64(fs.packets),
		})
	}
	sort.Slice(st.Entries, func(i, j int) bool {
		ei, ej := st.Entries[i], st.Entries[j]
		if ei.KeyA != ej.KeyA {
			return ei.KeyA < ej.KeyA
		}
		return ei.KeyB < ej.KeyB
	})
	if len(a.res.Flows) > 0 {
		st.Flows = append([]Flow(nil), a.res.Flows...)
	}
	if len(a.res.Discarded) > 0 {
		st.Discarded = append([]DiscardedPacket(nil), a.res.Discarded...)
	}
	return st
}

// RestoreState replaces the assembler's state with a snapshot: the table is
// rebuilt by re-inserting every entry (hashes re-derived from the keys), and
// the unflushed result set is adopted. Invalid snapshots — duplicate keys,
// non-positive packet counts, times ahead of the stream clock — are
// rejected with an error and leave the assembler Reset, never half-restored.
func (a *Assembler) RestoreState(st AssemblerState) error {
	a.Reset()
	fail := func(err error) error {
		a.Reset()
		return err
	}
	for _, e := range st.Entries {
		if e.Packets < 1 {
			return fail(fmt.Errorf("flow: snapshot entry has %d packets", e.Packets))
		}
		if e.Last < e.Start {
			return fail(fmt.Errorf("flow: snapshot entry ends (%g) before it starts (%g)", e.Last, e.Start))
		}
		if !st.Started || e.Last > st.LastTime {
			return fail(fmt.Errorf("flow: snapshot entry last-seen %g is ahead of the stream clock", e.Last))
		}
		h := hashKey(e.KeyA, e.KeyB)
		pos, found := a.table.find(h, e.KeyA, e.KeyB)
		if found {
			return fail(fmt.Errorf("flow: snapshot has duplicate flow key (%#x, %#x)", e.KeyA, e.KeyB))
		}
		slot := a.alloc()
		pos = a.table.insert(pos, h, e.KeyA, e.KeyB, slot)
		a.states[slot] = flowState{
			start:   e.Start,
			last:    e.Last,
			bytes:   e.Bytes,
			packets: int(e.Packets),
			// firstBits only matters while packets == 1, where it is by
			// construction the single packet's size.
			firstBits: float64(e.Bytes) * 8,
		}
		a.table.last[pos] = e.Last
	}
	a.started = st.Started
	a.lastTime = st.LastTime
	a.res = Result{
		Flows:     append([]Flow(nil), st.Flows...),
		Discarded: append([]DiscardedPacket(nil), st.Discarded...),
	}
	return nil
}

// ActiveFlows returns the in-progress flow count of the i-th definition's
// assembler — the occupancy a service's memory bound watches.
func (m *Measurer) ActiveFlows(i int) int { return m.asm[i].ActiveFlows() }

// SnapshotStates captures the resumable state of every assembler, index-
// aligned with the defs the measurer was built with.
func (m *Measurer) SnapshotStates() []AssemblerState {
	out := make([]AssemblerState, len(m.asm))
	for i, a := range m.asm {
		out[i] = a.SnapshotState()
	}
	return out
}

// RestoreStates restores every assembler from a SnapshotStates capture. On
// error the measurer is Reset, never half-restored.
func (m *Measurer) RestoreStates(states []AssemblerState) error {
	if len(states) != len(m.asm) {
		m.Reset()
		return fmt.Errorf("flow: snapshot has %d assembler states, measurer has %d definitions", len(states), len(m.asm))
	}
	for i, a := range m.asm {
		if err := a.RestoreState(states[i]); err != nil {
			m.Reset()
			return err
		}
	}
	return nil
}
