package predict

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func ar1Series(phi float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	xs[0] = 100
	for i := 1; i < n; i++ {
		xs[i] = 100 + phi*(xs[i-1]-100) + rng.NormFloat64()
	}
	return xs
}

func TestFromACFValidation(t *testing.T) {
	if _, err := FromACF([]float64{1, 0.5}, 0); err == nil {
		t.Fatal("order 0 should be rejected")
	}
	if _, err := FromACF([]float64{1, 0.5}, 2); err == nil {
		t.Fatal("insufficient lags should be rejected")
	}
	if _, err := FromACF([]float64{1, 1, 1}, 2); err == nil {
		t.Fatal("singular ACF should be rejected")
	}
}

func TestAR1OptimalPredictorIsPhi(t *testing.T) {
	// For an AR(1) process, the optimal one-step MA(1) predictor is
	// R̂_k = φ·R_{k-1}. With exact ACF ρ(k) = φ^k, FromACF must recover φ
	// at any order (higher coefficients zero).
	const phi = 0.7
	rho := []float64{1, phi, phi * phi, phi * phi * phi, phi * phi * phi * phi}
	p1, err := FromACF(rho, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.Coef[0]-phi) > 1e-12 {
		t.Fatalf("order-1 coef = %v, want [%g]", p1.Coef, phi)
	}
	p3, err := FromACF(rho, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p3.Coef[0]-phi) > 1e-9 || math.Abs(p3.Coef[1]) > 1e-9 || math.Abs(p3.Coef[2]) > 1e-9 {
		t.Fatalf("order-3 coef = %v, want [%g 0 0]", p3.Coef, phi)
	}
}

func TestPredictUsesRecentHistory(t *testing.T) {
	p := &Predictor{Coef: []float64{0.5, 0.25}}
	// R̂ = 0.5·last + 0.25·second-to-last.
	got, err := p.Predict([]float64{9, 9, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5*8 + 0.25*4; got != want {
		t.Fatalf("prediction = %g, want %g", got, want)
	}
	if _, err := p.Predict([]float64{1}); err == nil {
		t.Fatal("short history should be rejected")
	}
}

func TestEvaluateOnPredictableSeries(t *testing.T) {
	// A deterministic geometric decay x_k = 0.9·x_{k-1} is perfectly
	// predicted by the order-1 predictor with coefficient 0.9.
	p := &Predictor{Coef: []float64{0.9}}
	xs := make([]float64, 200)
	xs[0] = 40
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.9 * xs[i-1]
	}
	got := p.PredictSeries(xs)
	for k := 1; k < len(xs); k++ {
		if math.Abs(got[k]-xs[k]) > 1e-9 {
			t.Fatalf("deterministic series mispredicted at %d: %g vs %g", k, got[k], xs[k])
		}
	}
	e, err := p.Evaluate(xs)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Fatalf("relative error = %g, want 0", e)
	}
}

func TestEvaluateErrorMetric(t *testing.T) {
	// Constant series, identity predictor: zero error.
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 42
	}
	p := &Predictor{Coef: []float64{1}}
	e, err := p.Evaluate(xs)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("error on constant series = %g, want 0", e)
	}
	// A predictor that always predicts 0 has error σ-ish/mean.
	pz := &Predictor{Coef: []float64{0}}
	e, err = pz.Evaluate(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-12 {
		t.Fatalf("zero predictor error = %g, want 1 (predicting 0 on constant 42)", e)
	}
	if _, err := p.Evaluate([]float64{1, 2}); err == nil {
		t.Fatal("too-short series should be rejected")
	}
}

func TestEvaluateOnNoisyAR1(t *testing.T) {
	// With φ = 0.9, σ_noise = 1, mean 100: optimal one-step error is
	// σ_noise; relative error ≈ 1%.
	xs := ar1Series(0.9, 20000, 3)
	centred := make([]float64, len(xs))
	for i, x := range xs {
		centred[i] = x - 100
	}
	rho := stats.AutoCorrelation(centred, 5)
	p, err := FromACF(rho, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on the centred series shifted up to avoid the zero-mean
	// guard while keeping the predictor's assumptions (an MA predictor is
	// scale-free but not shift-free; the paper's rate series has a large
	// mean, giving its MA predictor an implicit level to lean on).
	var se, count float64
	for k := 2; k < len(centred); k++ {
		hat, err := p.Predict(centred[:k])
		if err != nil {
			t.Fatal(err)
		}
		d := hat - centred[k]
		se += d * d
		count++
	}
	rmse := math.Sqrt(se / count)
	if rmse > 1.1 {
		t.Fatalf("one-step RMSE = %g, want ≈ 1 (noise floor)", rmse)
	}
}

func TestPredictSeriesAlignment(t *testing.T) {
	p := &Predictor{Coef: []float64{1, 0}}
	xs := []float64{1, 2, 3, 4}
	out := p.PredictSeries(xs)
	if !math.IsNaN(out[0]) || !math.IsNaN(out[1]) {
		t.Fatal("seed samples should be NaN")
	}
	// Order-2 identity-on-last: out[k] = xs[k-1].
	if out[2] != 2 || out[3] != 3 {
		t.Fatalf("predictions = %v", out)
	}
}

func TestModelACF(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	flows := make([]core.FlowSample, 500)
	for i := range flows {
		s := 1e5 * math.Exp(rng.NormFloat64())
		flows[i] = core.FlowSample{S: s, D: 1 + 3*rng.Float64()}
	}
	m, err := core.NewModel(50, core.Triangular, flows)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := ModelACF(m, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rho[0] != 1 {
		t.Fatalf("ρ(0) = %g", rho[0])
	}
	for k := 1; k < len(rho); k++ {
		if rho[k] > rho[k-1]+1e-12 || rho[k] < 0 {
			t.Fatalf("model ACF not decreasing at %d: %v", k, rho)
		}
	}
	// Beyond the max duration (4 s) the correlation must be zero.
	if rho[9] != 0 {
		t.Fatalf("ρ beyond max duration = %g, want 0", rho[9])
	}
	if _, err := ModelACF(m, 0, 5); err == nil {
		t.Fatal("zero interval should be rejected")
	}
	if _, err := ModelACF(m, 1, 0); err == nil {
		t.Fatal("zero lags should be rejected")
	}
}

func TestSelectOrder(t *testing.T) {
	xs := ar1Series(0.8, 5000, 5)
	rho := stats.AutoCorrelation(xs, 12)
	p, trainErr, err := SelectOrder(rho, xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.P.Order() < 1 || p.P.Order() > 10 {
		t.Fatalf("selected order %d out of range", p.P.Order())
	}
	if !(trainErr > 0) {
		t.Fatalf("training error = %g", trainErr)
	}
	// In-sample MSE declines (weakly) with order, so the paper's rule may
	// legitimately run to maxM; the real check is that the selected
	// predictor reaches the noise floor.
	// One-step noise floor is σ=1 on a mean-100 process: ~1% error.
	if trainErr > 0.015 {
		t.Fatalf("training error %g, want ≈ 0.01", trainErr)
	}
	if _, _, err := SelectOrder(rho, xs, 0); err == nil {
		t.Fatal("maxM 0 should be rejected")
	}
}

func TestSelectOrderDegenerate(t *testing.T) {
	// Constant series: the ACF is 1, 0, 0, ...; the centred LMMSE solution
	// predicts the level exactly, so the training error is 0. Selection
	// must return that cleanly rather than crash or loop.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5
	}
	rho := stats.AutoCorrelation(xs, 5)
	p, trainErr, err := SelectOrder(rho, xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.P.Coef {
		if c != 0 {
			t.Fatalf("coefficients = %v, want all zero", p.P.Coef)
		}
	}
	if trainErr != 0 {
		t.Fatalf("training error = %g, want 0", trainErr)
	}
	if p.Level != 5 {
		t.Fatalf("level = %g, want 5", p.Level)
	}
}

func TestCenteredRemovesLevelBias(t *testing.T) {
	// AR(1) around mean 100: the raw MA predictor is biased by
	// (1-Σa)·μ = 20; the centred one sits at the noise floor.
	xs := ar1Series(0.8, 8000, 6)
	rho := stats.AutoCorrelation(xs, 3)
	p, err := FromACF(rho, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := p.Evaluate(xs)
	if err != nil {
		t.Fatal(err)
	}
	c := &Centered{P: p, Level: stats.Mean(xs)}
	cent, err := c.Evaluate(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !(cent < raw/5) {
		t.Fatalf("centred error %g should be far below raw %g", cent, raw)
	}
	if cent > 0.015 {
		t.Fatalf("centred error %g, want ≈ 0.01 (noise floor)", cent)
	}
}

func TestCenteredPredictSeriesAndValidation(t *testing.T) {
	c := &Centered{P: &Predictor{Coef: []float64{1}}, Level: 10}
	if _, err := c.Predict(nil); err == nil {
		t.Fatal("short history should be rejected")
	}
	out := c.PredictSeries([]float64{12, 14})
	if !math.IsNaN(out[0]) {
		t.Fatal("seed sample should be NaN")
	}
	// Prediction = 10 + 1·(12-10) = 12.
	if out[1] != 12 {
		t.Fatalf("centred prediction = %g, want 12", out[1])
	}
	if _, err := c.Evaluate([]float64{1, 2}); err == nil {
		t.Fatal("short series should be rejected")
	}
}
