// Package predict implements the paper's §VII-B application: short-term
// prediction of the total rate with a Moving-Average (linear MMSE)
// predictor. The rate is sampled every ℓ seconds; the next sample is
// predicted as a linear combination of the last M samples,
//
//	R̂_k = Σ_{i=0}^{M-1} a_i · R_{k-1-i}
//
// with coefficients solving the normal equations (paper eq. 8)
//
//	Σ_i a_i ρ(|i-j|) = ρ(j+1),   j = 0..M-1,
//
// where ρ is the autocorrelation of the sampled rate. ρ can come either
// from measurements of the rate itself or from the model's Theorem 2 —
// the paper's point being that the model-based ρ uses many more samples
// (every flow contributes) and so wins for large prediction intervals.
package predict

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// Predictor is a fitted MA predictor of order M = len(Coef).
type Predictor struct {
	// Coef[i] multiplies the (i+1)-back sample: R̂_k = Σ Coef[i]·R_{k-1-i}.
	Coef []float64
}

// FromACF solves the order-m normal equations for a process with
// autocorrelation sequence rho (rho[0] = 1; at least m+1 lags required).
func FromACF(rho []float64, m int) (*Predictor, error) {
	if m < 1 {
		return nil, fmt.Errorf("predict: order must be >= 1, got %d", m)
	}
	if len(rho) < m+1 {
		return nil, fmt.Errorf("predict: need %d autocorrelation lags, have %d", m+1, len(rho))
	}
	coef, err := linalg.SolveToeplitz(rho[:m], rho[1:m+1])
	if err != nil {
		return nil, fmt.Errorf("predict: normal equations: %w", err)
	}
	return &Predictor{Coef: coef}, nil
}

// Order returns M.
func (p *Predictor) Order() int { return len(p.Coef) }

// Predict returns R̂ for the next sample given the history, most recent
// sample last. At least Order samples are required.
func (p *Predictor) Predict(history []float64) (float64, error) {
	m := len(p.Coef)
	if len(history) < m {
		return 0, fmt.Errorf("predict: need %d history samples, have %d", m, len(history))
	}
	var sum float64
	n := len(history)
	for i, a := range p.Coef {
		sum += a * history[n-1-i]
	}
	return sum, nil
}

// Evaluate runs one-step-ahead prediction across series and returns the
// paper's error metric: √E[(R̂-R)²] / E[R] (Table II reports it in percent).
// The first Order samples seed the history and are not scored.
func (p *Predictor) Evaluate(series []float64) (float64, error) {
	m := len(p.Coef)
	if len(series) < m+2 {
		return 0, fmt.Errorf("predict: series of %d too short for order %d", len(series), m)
	}
	var se float64
	count := 0
	for k := m; k < len(series); k++ {
		hat, err := p.Predict(series[:k])
		if err != nil {
			return 0, err
		}
		d := hat - series[k]
		se += d * d
		count++
	}
	mean := stats.Mean(series)
	if mean == 0 {
		return 0, fmt.Errorf("predict: zero-mean series")
	}
	return math.Sqrt(se/float64(count)) / mean, nil
}

// PredictSeries returns the one-step-ahead predictions aligned with series:
// out[k] is the prediction of series[k] from its past (NaN for the first
// Order samples). This generates the paper's Figure 14 overlay.
func (p *Predictor) PredictSeries(series []float64) []float64 {
	m := len(p.Coef)
	out := make([]float64, len(series))
	for k := range out {
		if k < m {
			out[k] = math.NaN()
			continue
		}
		v, err := p.Predict(series[:k])
		if err != nil {
			out[k] = math.NaN()
			continue
		}
		out[k] = v
	}
	return out
}

// Centered wraps a Predictor to operate on deviations from a level μ:
//
//	R̂_k = μ + Σ a_i · (R_{k-1-i} - μ)
//
// For a stationary process with mean μ this is the exact LMMSE predictor;
// the raw Predictor is the paper's literal formulation, and the two
// coincide when Σa_i ≈ 1 (strongly correlated samples, e.g. Δ ≪ flow
// durations). On sparsely correlated samples the raw form is biased by
// (1-Σa_i)·μ, so the experiment harness uses Centered.
type Centered struct {
	P     *Predictor
	Level float64
}

// Predict returns the centred prediction for the next sample.
func (c *Centered) Predict(history []float64) (float64, error) {
	m := c.P.Order()
	if len(history) < m {
		return 0, fmt.Errorf("predict: need %d history samples, have %d", m, len(history))
	}
	var sum float64
	n := len(history)
	for i, a := range c.P.Coef {
		sum += a * (history[n-1-i] - c.Level)
	}
	return c.Level + sum, nil
}

// Evaluate mirrors Predictor.Evaluate with the centred prediction.
func (c *Centered) Evaluate(series []float64) (float64, error) {
	m := c.P.Order()
	if len(series) < m+2 {
		return 0, fmt.Errorf("predict: series of %d too short for order %d", len(series), m)
	}
	var se float64
	count := 0
	for k := m; k < len(series); k++ {
		hat, err := c.Predict(series[:k])
		if err != nil {
			return 0, err
		}
		d := hat - series[k]
		se += d * d
		count++
	}
	mean := stats.Mean(series)
	if mean == 0 {
		return 0, fmt.Errorf("predict: zero-mean series")
	}
	return math.Sqrt(se/float64(count)) / math.Abs(mean), nil
}

// PredictSeries mirrors Predictor.PredictSeries with the centred prediction.
func (c *Centered) PredictSeries(series []float64) []float64 {
	m := c.P.Order()
	out := make([]float64, len(series))
	for k := range out {
		if k < m {
			out[k] = math.NaN()
			continue
		}
		v, err := c.Predict(series[:k])
		if err != nil {
			out[k] = math.NaN()
			continue
		}
		out[k] = v
	}
	return out
}

// MeasuredACF estimates the autocorrelation of the sampled rate directly
// from the series (the paper's baseline approach).
func MeasuredACF(series []float64, maxLag int) []float64 {
	return stats.AutoCorrelation(series, maxLag)
}

// ModelACF computes ρ(kℓ) for k = 0..maxLag from the shot-noise model via
// Theorem 2, the paper's proposed approach: the autocovariance comes from
// flow statistics rather than from the (few) rate samples.
func ModelACF(m *core.Model, ell float64, maxLag int) ([]float64, error) {
	if !(ell > 0) {
		return nil, fmt.Errorf("predict: sampling interval must be > 0, got %g", ell)
	}
	if maxLag < 1 {
		return nil, fmt.Errorf("predict: need at least one lag")
	}
	v := m.Variance()
	if !(v > 0) {
		return nil, fmt.Errorf("predict: model variance is zero")
	}
	rho := make([]float64, maxLag+1)
	rho[0] = 1
	for k := 1; k <= maxLag; k++ {
		rho[k] = m.AutoCovariance(float64(k)*ell) / v
	}
	return rho, nil
}

// SelectOrder implements the paper's order-selection rule: start from
// M = 1 and take the lowest order that precedes an increase in the mean
// square prediction error, evaluated on the training series; maxM bounds
// the search. Predictors are centred on the training mean (see Centered).
// It returns the chosen predictor and its training error.
func SelectOrder(rho []float64, train []float64, maxM int) (*Centered, float64, error) {
	if maxM < 1 {
		return nil, 0, fmt.Errorf("predict: maxM must be >= 1")
	}
	if maxM > len(rho)-1 {
		maxM = len(rho) - 1
	}
	level := stats.Mean(train)
	var (
		best     *Centered
		bestErr  = math.Inf(1)
		prevErr  = math.Inf(1)
		selected *Centered
		selErr   float64
	)
	for m := 1; m <= maxM; m++ {
		p, err := FromACF(rho, m)
		if err != nil {
			// A singular system at higher order ends the search; keep the
			// best order found so far.
			break
		}
		c := &Centered{P: p, Level: level}
		e, err := c.Evaluate(train)
		if err != nil {
			break
		}
		if e < bestErr {
			best, bestErr = c, e
		}
		if e > prevErr && selected == nil {
			// prev order preceded an increase: the paper's stopping rule.
			break
		}
		prevErr = e
		selected, selErr = c, e
	}
	if selected == nil {
		if best == nil {
			return nil, 0, fmt.Errorf("predict: no usable order <= %d", maxM)
		}
		return best, bestErr, nil
	}
	return selected, selErr, nil
}
