package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vecAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestSolveDenseKnown(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, []float64{1, 3}, 1e-12) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// Zero on the diagonal requires pivoting.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, []float64{3, 2}, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveDense(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDenseDimensionErrors(t *testing.T) {
	if _, err := SolveDense([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("row/rhs mismatch should error")
	}
	if _, err := SolveDense([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged matrix should error")
	}
}

func TestSolveDenseDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	b := []float64{1, 2}
	if _, err := SolveDense(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 4 || a[1][0] != 1 || b[0] != 1 {
		t.Fatal("inputs mutated")
	}
}

func TestSolveToeplitzIdentity(t *testing.T) {
	r := []float64{1, 0, 0, 0}
	b := []float64{4, -1, 2, 7}
	x, err := SolveToeplitz(r, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, b, 1e-12) {
		t.Fatalf("identity solve: x = %v, want %v", x, b)
	}
}

func TestSolveToeplitzKnown(t *testing.T) {
	// T = [[2,1],[1,2]], b = [4,5] => x = [1,2].
	x, err := SolveToeplitz([]float64{2, 1}, []float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, []float64{1, 2}, 1e-12) {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

func TestSolveToeplitzMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		// Build a positive-definite Toeplitz first column resembling an
		// autocorrelation sequence: r[0]=1, decaying magnitudes.
		r := make([]float64, n)
		r[0] = 1
		decay := 0.3 + 0.5*rng.Float64()
		for k := 1; k < n; k++ {
			r[k] = math.Pow(decay, float64(k)) * (0.8 + 0.2*rng.Float64())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := SolveDense(ToeplitzMatrix(r), b)
		if err != nil {
			t.Fatalf("dense solve failed on trial %d: %v", trial, err)
		}
		got, err := SolveToeplitz(r, b)
		if err != nil {
			t.Fatalf("levinson failed on trial %d: %v", trial, err)
		}
		if !vecAlmostEqual(got, want, 1e-8) {
			t.Fatalf("trial %d n=%d: levinson %v vs dense %v", trial, n, got, want)
		}
	}
}

// Property: the Levinson solution actually satisfies T x = b.
func TestSolveToeplitzResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		r := make([]float64, n)
		r[0] = 1
		for k := 1; k < n; k++ {
			r[k] = math.Pow(0.6, float64(k))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveToeplitz(r, b)
		if err != nil {
			return false
		}
		tx, err := MatVec(ToeplitzMatrix(r), x)
		if err != nil {
			return false
		}
		return vecAlmostEqual(tx, b, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveToeplitzErrors(t *testing.T) {
	if _, err := SolveToeplitz([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := SolveToeplitz([]float64{0, 0}, []float64{1, 1}); err != ErrSingular {
		t.Fatalf("zero diagonal: err = %v, want ErrSingular", err)
	}
	// Perfectly correlated sequence (r all ones) is singular for n >= 2.
	if _, err := SolveToeplitz([]float64{1, 1, 1}, []float64{1, 1, 1}); err != ErrSingular {
		t.Fatalf("rank-1 toeplitz: err = %v, want ErrSingular", err)
	}
	x, err := SolveToeplitz(nil, nil)
	if err != nil || x != nil {
		t.Fatalf("empty system should be a no-op, got %v, %v", x, err)
	}
}

func TestToeplitzMatrix(t *testing.T) {
	m := ToeplitzMatrix([]float64{1, 0.5, 0.25})
	want := [][]float64{
		{1, 0.5, 0.25},
		{0.5, 1, 0.5},
		{0.25, 0.5, 1},
	}
	for i := range want {
		if !vecAlmostEqual(m[i], want[i], 0) {
			t.Fatalf("row %d = %v, want %v", i, m[i], want[i])
		}
	}
}

func TestMatVec(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	y, err := MatVec(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(y, []float64{3, 7}, 0) {
		t.Fatalf("y = %v", y)
	}
	if _, err := MatVec([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Fatal("mismatched matvec should error")
	}
}
