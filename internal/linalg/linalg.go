// Package linalg provides the small dense linear-algebra kernels the traffic
// predictor needs: a symmetric-Toeplitz solver (Levinson-Durbin recursion)
// for the Wiener-Hopf normal equations of the paper's §VII-B (eq. 8), and a
// general Gaussian-elimination solver used as a cross-check and for
// non-Toeplitz systems.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system has no stable solution.
var ErrSingular = errors.New("linalg: singular or near-singular system")

// SolveToeplitz solves the symmetric Toeplitz system T a = b where
// T[i][j] = r[|i-j|], using the Levinson recursion in O(n²) time.
// r must have length n (first column of T) and b length n.
//
// For the predictor, r is the autocorrelation sequence ρ(0..M-1) and
// b is ρ(1..M), so that a holds the optimal MA prediction coefficients.
func SolveToeplitz(r, b []float64) ([]float64, error) {
	n := len(b)
	if len(r) != n {
		return nil, fmt.Errorf("linalg: toeplitz dimension mismatch: len(r)=%d len(b)=%d", len(r), n)
	}
	if n == 0 {
		return nil, nil
	}
	if r[0] == 0 || math.IsNaN(r[0]) {
		return nil, ErrSingular
	}

	// Levinson recursion with forward vectors (symmetric case: the backward
	// vector is the reverse of the forward vector).
	x := make([]float64, n) // current solution of T_k x = b[:k]
	f := make([]float64, n) // forward vector: T_k f = e_1
	x[0] = b[0] / r[0]
	f[0] = 1 / r[0]

	fPrev := make([]float64, n)
	for k := 1; k < n; k++ {
		// Forward error: ef = sum_{i} r[k-i] f[i] over the previous order.
		var ef float64
		for i := 0; i < k; i++ {
			ef += r[k-i] * f[i]
		}
		denom := 1 - ef*ef
		if math.Abs(denom) < 1e-14 {
			return nil, ErrSingular
		}
		copy(fPrev[:k], f[:k])
		// New forward vector of order k+1.
		for i := 0; i <= k; i++ {
			var prev, prevRev float64
			if i < k {
				prev = fPrev[i]
			}
			if i > 0 {
				prevRev = fPrev[k-i]
			}
			f[i] = (prev - ef*prevRev) / denom
		}
		// Update the solution: ex = sum_i r[k-i] x[i].
		var ex float64
		for i := 0; i < k; i++ {
			ex += r[k-i] * x[i]
		}
		scale := b[k] - ex
		for i := 0; i <= k; i++ {
			// backward vector element i = f[k-i] (symmetry).
			x[i] += scale * f[k-i]
		}
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// SolveDense solves the general linear system A x = b by Gaussian
// elimination with partial pivoting. A is row-major and is not modified.
func SolveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n {
		return nil, fmt.Errorf("linalg: dense dimension mismatch: %d rows, %d rhs", len(a), n)
	}
	// Working copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-13 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= factor * m[col][c]
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// ToeplitzMatrix expands the first-column r into the full symmetric Toeplitz
// matrix T[i][j] = r[|i-j|]. Used by tests and by SolveDense fall-backs.
func ToeplitzMatrix(r []float64) [][]float64 {
	n := len(r)
	t := make([][]float64, n)
	for i := range t {
		t[i] = make([]float64, n)
		for j := range t[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			t[i][j] = r[d]
		}
	}
	return t
}

// MatVec returns A x for a row-major dense matrix.
func MatVec(a [][]float64, x []float64) ([]float64, error) {
	out := make([]float64, len(a))
	for i, row := range a {
		if len(row) != len(x) {
			return nil, fmt.Errorf("linalg: matvec row %d has %d columns, want %d", i, len(row), len(x))
		}
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}
