package dist

import (
	"math"
	"testing"

	"repro/internal/dist/rng"
)

// sampleMean draws n values with a fixed seed and averages them.
func sampleMean(t *testing.T, s Sampler, seed int64, n int) float64 {
	t.Helper()
	rng := rng.New(seed)
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("sample %d is %g", i, v)
		}
		sum += v
	}
	return sum / float64(n)
}

// checkMoments verifies the Monte Carlo mean against the analytic Mean.
func checkMoments(t *testing.T, name string, s Sampler, tol float64) {
	t.Helper()
	m := s.Mean()
	got := sampleMean(t, s, 42, 200_000)
	if math.Abs(got-m)/m > tol {
		t.Fatalf("%s: sample mean %g vs analytic %g", name, got, m)
	}
}

func TestConstant(t *testing.T) {
	c := Constant{V: 3.5}
	if c.Mean() != 3.5 || c.Sample(nil) != 3.5 {
		t.Fatal("constant must return V everywhere")
	}
}

func TestUniform(t *testing.T) {
	if _, err := NewUniform(2, 2); err == nil {
		t.Fatal("lo == hi should be rejected")
	}
	u, err := NewUniform(10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if u.Mean() != 20 {
		t.Fatalf("mean = %g, want 20", u.Mean())
	}
	checkMoments(t, "uniform", u, 0.01)
	rng := rng.New(1)
	for i := 0; i < 1000; i++ {
		if v := u.Sample(rng); v < 10 || v >= 30 {
			t.Fatalf("sample %g outside [10, 30)", v)
		}
	}
}

func TestExponential(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Fatal("rate 0 should be rejected")
	}
	e, err := NewExponential(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 2 {
		t.Fatalf("mean = %g, want 2", e.Mean())
	}
	checkMoments(t, "exponential", e, 0.01)
}

func TestPareto(t *testing.T) {
	if _, err := NewPareto(0, 1); err == nil {
		t.Fatal("shape 0 should be rejected")
	}
	if _, err := NewPareto(1.5, 0); err == nil {
		t.Fatal("scale 0 should be rejected")
	}
	heavy, err := NewPareto(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(heavy.Mean(), 1) {
		t.Fatalf("alpha <= 1 must have infinite mean, got %g", heavy.Mean())
	}
	p, err := NewPareto(2.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.5 * 3 / 1.5; math.Abs(p.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", p.Mean(), want)
	}
	checkMoments(t, "pareto", p, 0.02)
	rng := rng.New(2)
	for i := 0; i < 1000; i++ {
		if v := p.Sample(rng); v < 3 {
			t.Fatalf("sample %g below scale 3", v)
		}
	}
}

func TestBoundedPareto(t *testing.T) {
	if _, err := NewBoundedPareto(1.3, 100, 100); err == nil {
		t.Fatal("lo == hi should be rejected")
	}
	if _, err := NewBoundedPareto(1.3, 0, 100); err == nil {
		t.Fatal("lo 0 should be rejected")
	}
	b, err := NewBoundedPareto(1.3, 1500, 3e5)
	if err != nil {
		t.Fatal(err)
	}
	checkMoments(t, "bounded pareto", b, 0.02)
	rng := rng.New(3)
	for i := 0; i < 10000; i++ {
		if v := b.Sample(rng); v < 1500 || v > 3e5 {
			t.Fatalf("sample %g outside [1500, 3e5]", v)
		}
	}
	// α = 1 uses the logarithmic branch of the mean.
	b1, err := NewBoundedPareto(1, 1, math.E)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 * 1.0 / (1 - 1/math.E) // L·ln(H/L)/(1-L/H) with ln(e)=1
	if math.Abs(b1.Mean()-want) > 1e-12 {
		t.Fatalf("alpha=1 mean = %g, want %g", b1.Mean(), want)
	}
}

func TestLognormalFromMoments(t *testing.T) {
	if _, err := LognormalFromMoments(0, 1); err == nil {
		t.Fatal("mean 0 should be rejected")
	}
	if _, err := LognormalFromMoments(1, -1); err == nil {
		t.Fatal("negative CoV should be rejected")
	}
	l, err := LognormalFromMoments(80e3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Mean()-80e3)/80e3 > 1e-12 {
		t.Fatalf("analytic mean %g, want 80e3", l.Mean())
	}
	checkMoments(t, "lognormal", l, 0.03)
	// CoV 0 degenerates to (almost) the constant.
	l0, err := LognormalFromMoments(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := l0.Sample(rng.New(1)); math.Abs(v-5) > 1e-9 {
		t.Fatalf("CoV 0 sample = %g, want 5", v)
	}
}

func TestMixture(t *testing.T) {
	if _, err := NewMixture([]float64{1}, nil); err == nil {
		t.Fatal("mismatched lengths should be rejected")
	}
	if _, err := NewMixture([]float64{0, 0}, []Sampler{Constant{V: 1}, Constant{V: 2}}); err == nil {
		t.Fatal("all-zero weights should be rejected")
	}
	if _, err := NewMixture([]float64{1, -1}, []Sampler{Constant{V: 1}, Constant{V: 2}}); err == nil {
		t.Fatal("negative weight should be rejected")
	}
	m, err := NewMixture([]float64{3, 1}, []Sampler{Constant{V: 10}, Constant{V: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.75*10 + 0.25*50; math.Abs(m.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", m.Mean(), want)
	}
	checkMoments(t, "mixture", m, 0.01)
	// A zero-weight component with an infinite mean is disabled, not
	// averaged in: the mixture mean must stay finite (0·Inf would be NaN).
	heavy, err := NewPareto(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewMixture([]float64{1, 0}, []Sampler{Constant{V: 4}, heavy})
	if err != nil {
		t.Fatal(err)
	}
	if got := off.Mean(); got != 4 {
		t.Fatalf("mean with disabled heavy tail = %g, want 4", got)
	}
}

func TestPoissonProcess(t *testing.T) {
	if _, err := NewPoissonProcess(0, rng.New(1)); err == nil {
		t.Fatal("rate 0 should be rejected")
	}
	if _, err := NewPoissonProcess(1, nil); err == nil {
		t.Fatal("nil rng should be rejected")
	}
	pp, err := NewPoissonProcess(50, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	prev, n := 0.0, 0
	for {
		a := pp.Next()
		if a <= prev {
			t.Fatalf("arrival %g not after %g", a, prev)
		}
		prev = a
		if a >= 100 {
			break
		}
		n++
	}
	// ~5000 arrivals in 100 s at rate 50; Poisson sd ≈ 71.
	if n < 4700 || n > 5300 {
		t.Fatalf("saw %d arrivals in 100 s at rate 50", n)
	}
}

// Determinism: the same seed must reproduce the same sample path for every
// sampler — the whole experiment pipeline depends on it.
func TestDeterminism(t *testing.T) {
	u, _ := NewUniform(0, 1)
	e, _ := NewExponential(2)
	p, _ := NewPareto(1.5, 1)
	b, _ := NewBoundedPareto(1.3, 1500, 3e5)
	l, _ := LognormalFromMoments(100, 1)
	m, _ := NewMixture([]float64{1, 2}, []Sampler{u, b})
	for _, s := range []Sampler{Constant{V: 1}, u, e, p, b, l, m} {
		r1 := rng.New(77)
		r2 := rng.New(77)
		for i := 0; i < 100; i++ {
			if a, b := s.Sample(r1), s.Sample(r2); a != b {
				t.Fatalf("%T: draw %d differs: %g vs %g", s, i, a, b)
			}
		}
	}
	p1, _ := NewPoissonProcess(3, rng.New(5))
	p2, _ := NewPoissonProcess(3, rng.New(5))
	for i := 0; i < 100; i++ {
		if a, b := p1.Next(), p2.Next(); a != b {
			t.Fatalf("poisson arrival %d differs: %g vs %g", i, a, b)
		}
	}
}
