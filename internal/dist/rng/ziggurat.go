package rng

import "math"

// Ziggurat samplers (Marsaglia & Tsang 2000) for the exponential and normal
// laws: the density is covered by N equal-area horizontal strips, so a draw
// is one Uint64 — low bits pick the strip, high bits place a point in it —
// and a table compare accepts ~99% of candidates immediately. The slow
// wedge/tail paths fall back to exact accept-reject against the true
// density, so the sampled law is exact, not an approximation.
//
// The tables are generated at init from the canonical (r, v) constants:
// r is the base-strip boundary and v the common strip area, chosen so the
// equal-area recurrence x_{i+1} = f⁻¹(v/x_i + f(x_i)) started at x_1 = r
// terminates at f = 1 (x = 0) after exactly N steps. Generating rather than
// embedding the tables keeps them auditable against the recurrence itself
// (TestZigguratTables re-derives the invariants).

const (
	expN = 256
	// expR/expV: base boundary and strip area for f(x) = e^-x, N = 256.
	expR = 7.69711747013104972
	expV = 3.949659822581572e-3

	normN = 128
	// normR/normV: base boundary and strip area for f(x) = e^(-x²/2)
	// (unnormalised), N = 128.
	normR = 3.442619855899
	normV = 9.91256303526217e-3
)

var (
	// expX[i] is the width of strip i (expX[0] is the virtual base width
	// v/f(r) > r, so a base draw past expX[1] = r selects the tail);
	// expF[i] = f(expX[i]) is the strip's lower edge height.
	expX [expN + 1]float64
	expF [expN + 1]float64

	normX [normN + 1]float64
	normF [normN + 1]float64
)

// zigTables fills x[0..n] and f[0..n] for density fn with inverse inv, base
// boundary r and strip area v, via the equal-area recurrence.
func zigTables(x, f []float64, n int, r, v float64, fn, inv func(float64) float64) {
	x[0] = v / fn(r) // virtual base width: r·f(r) + tail area, over f(r)
	x[1] = r
	for i := 1; i < n; i++ {
		f[i] = fn(x[i])
		if i < n-1 {
			x[i+1] = inv(v/x[i] + f[i])
		}
	}
	// The recurrence lands within float noise of x = 0 at step n; pin the
	// apex exactly so the top strip's accept test never indexes past the
	// curve.
	x[n] = 0
	f[0] = fn(x[0])
	f[n] = 1
}

func init() {
	zigTables(expX[:], expF[:], expN, expR, expV,
		func(x float64) float64 { return math.Exp(-x) },
		func(y float64) float64 { return -math.Log(y) },
	)
	zigTables(normX[:], normF[:], normN, normR, normV,
		func(x float64) float64 { return math.Exp(-x * x / 2) },
		func(y float64) float64 { return math.Sqrt(-2 * math.Log(y)) },
	)
}

// Exp returns an exponential draw with rate 1 (mean 1).
func (r *Rand) Exp() float64 {
	base := 0.0
	for {
		u := r.Uint64()
		i := u & (expN - 1)
		x := float64(u>>11) * 0x1p-53 * expX[i]
		if x < expX[i+1] {
			// Inside the strip's all-under-curve sub-rectangle (for the base
			// strip, expX[1] = r: inside [0, r) under height f(r)).
			return base + x
		}
		if i == 0 {
			// Tail: X | X > r is r + Exp(1) by memorylessness, so shift the
			// base out by r and redraw.
			base += expR
			continue
		}
		// Wedge: uniform height within the strip, exact test against e^-x.
		if expF[i]+r.Float64()*(expF[i+1]-expF[i]) < math.Exp(-x) {
			return base + x
		}
	}
}

// Norm returns a standard normal draw (mean 0, variance 1).
func (r *Rand) Norm() float64 {
	for {
		u := r.Uint64()
		i := u & (normN - 1)
		neg := u&normN != 0 // bit 7: sign, disjoint from strip and mantissa bits
		x := float64(u>>11) * 0x1p-53 * normX[i]
		if x < normX[i+1] {
			if neg {
				return -x
			}
			return x
		}
		if i == 0 {
			// Marsaglia's exact tail sampler for |X| > r.
			for {
				xt := r.Exp() / normR
				y := r.Exp()
				if y+y > xt*xt {
					x = normR + xt
					break
				}
			}
			if neg {
				return -x
			}
			return x
		}
		if normF[i]+r.Float64()*(normF[i+1]-normF[i]) < math.Exp(-x*x/2) {
			if neg {
				return -x
			}
			return x
		}
	}
}
