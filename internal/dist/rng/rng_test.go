package rng

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if New(42).Uint64() == New(43).Uint64() || New(42).Uint64() == New(44).Uint64() {
		t.Fatal("distinct seeds produced identical first draws")
	}
}

func TestStreamsIndependent(t *testing.T) {
	// Distinct streams of one seed must differ from each other and from
	// other seeds' streams.
	seen := map[uint64]string{}
	for _, seed := range []int64{0, 1, 7} {
		for stream := uint64(0); stream < 4; stream++ {
			v := NewStream(seed, stream).Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams collide on first draw: (%d,%d) vs %s", seed, stream, prev)
			}
			seen[v] = "earlier stream"
		}
	}
	// Consuming from one stream must not perturb another (they are separate
	// states, not a shared cursor).
	a0 := NewStream(5, 0)
	a1 := NewStream(5, 1)
	want := NewStream(5, 1).Uint64()
	a0.Uint64()
	a0.Uint64()
	if got := a1.Uint64(); got != want {
		t.Fatalf("stream 1 perturbed by stream 0 draws: %x != %x", got, want)
	}
}

func TestReseedRestarts(t *testing.T) {
	r := NewStream(9, 3)
	first := r.Uint64()
	r.Uint64()
	r.Reseed(9, 3)
	if got := r.Uint64(); got != first {
		t.Fatalf("Reseed did not restart the stream: %x != %x", got, first)
	}
	r.Seed(9)
	if got, want := r.Uint64(), New(9).Uint64(); got != want {
		t.Fatalf("Seed(x) != stream 0 of x: %x != %x", got, want)
	}
}

// The Rand must be a valid math/rand source so legacy samplers can share a
// stream with the fast path.
func TestSource64Compat(t *testing.T) {
	var src rand.Source64 = New(1)
	ad := rand.New(src)
	for i := 0; i < 1000; i++ {
		if v := ad.Float64(); v < 0 || v >= 1 {
			t.Fatalf("adapter Float64 out of range: %g", v)
		}
	}
	r := New(2)
	for i := 0; i < 1000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var min, max = 1.0, 0.0
	for i := 0; i < 1e6; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > 1e-4 || max < 1-1e-4 {
		t.Fatalf("Float64 range suspiciously narrow: [%g, %g]", min, max)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	for _, n := range []int{1, 2, 5, 253, 65536} {
		counts := make([]int, n)
		draws := 200 * n
		if draws > 1<<20 {
			draws = 1 << 20
		}
		for i := 0; i < draws; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			counts[v]++
		}
		if n <= 5 {
			for v, c := range counts {
				if c == 0 {
					t.Fatalf("Intn(%d) never drew %d in %d draws", n, v, draws)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// The ziggurat tables must satisfy the defining equal-area recurrence and
// the canonical boundary conditions.
func TestZigguratTables(t *testing.T) {
	check := func(name string, x, f []float64, n int, r, v float64, fn func(float64) float64) {
		if x[1] != r {
			t.Fatalf("%s: x[1] = %g, want r = %g", name, x[1], r)
		}
		if x[n] != 0 || f[n] != 1 {
			t.Fatalf("%s: apex not pinned: x[n]=%g f[n]=%g", name, x[n], f[n])
		}
		for i := 1; i < n; i++ {
			if !(x[i+1] < x[i]) {
				t.Fatalf("%s: widths not strictly decreasing at %d: %g >= %g", name, i, x[i+1], x[i])
			}
			if math.Abs(f[i]-fn(x[i])) > 1e-12 {
				t.Fatalf("%s: f[%d] inconsistent with density", name, i)
			}
			// Equal-area: x_i · (f(x_{i+1}) − f(x_i)) = v.
			area := x[i] * (fn(x[i+1]) - fn(x[i]))
			if i < n-1 && math.Abs(area-v) > 1e-9 {
				t.Fatalf("%s: strip %d area %g, want %g", name, i, area, v)
			}
		}
		// Base strip: width v/f(r) covers r·f(r) + tail.
		if math.Abs(x[0]*fn(r)-v) > 1e-12 {
			t.Fatalf("%s: base strip area %g, want %g", name, x[0]*fn(r), v)
		}
	}
	check("exp", expX[:], expF[:], expN, expR, expV,
		func(x float64) float64 { return math.Exp(-x) })
	check("norm", normX[:], normF[:], normN, normR, normV,
		func(x float64) float64 { return math.Exp(-x * x / 2) })
}

// ksStatistic returns the one-sample Kolmogorov-Smirnov D for draws against
// the CDF cdf. draws is sorted in place.
func ksStatistic(draws []float64, cdf func(float64) float64) float64 {
	sort.Float64s(draws)
	n := float64(len(draws))
	var d float64
	for i, x := range draws {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// ksThreshold returns the critical D at significance ~1e-3 for n draws —
// loose enough never to flake on a fixed seed, tight enough that any real
// implementation bug (wrong table, biased mantissa, lost tail) fails hard.
func ksThreshold(n int) float64 { return 1.95 / math.Sqrt(float64(n)) }

func TestExpKS(t *testing.T) {
	const n = 200000
	r := New(12345)
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = r.Exp()
		if draws[i] < 0 {
			t.Fatalf("Exp returned negative %g", draws[i])
		}
	}
	d := ksStatistic(draws, func(x float64) float64 { return 1 - math.Exp(-x) })
	if d > ksThreshold(n) {
		t.Fatalf("Exp KS statistic %g exceeds %g", d, ksThreshold(n))
	}
}

func TestNormKS(t *testing.T) {
	const n = 200000
	r := New(54321)
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = r.Norm()
	}
	d := ksStatistic(draws, func(x float64) float64 {
		return 0.5 * math.Erfc(-x/math.Sqrt2)
	})
	if d > ksThreshold(n) {
		t.Fatalf("Norm KS statistic %g exceeds %g", d, ksThreshold(n))
	}
}

// Moment checks catch scale errors a KS test is weak against in the tails.
func TestMoments(t *testing.T) {
	const n = 500000
	r := New(777)
	var sumE, sumE2, sumN, sumN2 float64
	for i := 0; i < n; i++ {
		e := r.Exp()
		sumE += e
		sumE2 += e * e
		x := r.Norm()
		sumN += x
		sumN2 += x * x
	}
	meanE, varE := sumE/n, sumE2/n-(sumE/n)*(sumE/n)
	meanN, varN := sumN/n, sumN2/n-(sumN/n)*(sumN/n)
	// Std errors: Exp mean ~1/sqrt(n)≈0.0014; 5σ bounds.
	if math.Abs(meanE-1) > 0.008 {
		t.Fatalf("Exp mean %g, want 1", meanE)
	}
	if math.Abs(varE-1) > 0.02 {
		t.Fatalf("Exp variance %g, want 1", varE)
	}
	if math.Abs(meanN) > 0.008 {
		t.Fatalf("Norm mean %g, want 0", meanN)
	}
	if math.Abs(varN-1) > 0.02 {
		t.Fatalf("Norm variance %g, want 1", varN)
	}
}

// The exponential tail past the ziggurat base boundary r must be populated
// with the right mass (the memorylessness shift is easy to get wrong).
func TestExpTailMass(t *testing.T) {
	const n = 4000000
	r := New(2024)
	tail := 0
	for i := 0; i < n; i++ {
		if r.Exp() > expR {
			tail++
		}
	}
	want := math.Exp(-expR) // ≈ 4.54e-4
	got := float64(tail) / n
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("Exp tail mass beyond r: got %g, want %g", got, want)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += r.Uint64()
	}
	sinkU = s
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Float64()
	}
	sinkF = s
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Exp()
	}
	sinkF = s
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Norm()
	}
	sinkF = s
}

var (
	sinkU uint64
	sinkF float64
)
