// Package rng is the deterministic random-number core of the trace
// generator's hot path: a xoshiro256++ generator with splitmix64 seeding,
// derivable sub-streams, and ziggurat samplers for the exponential and
// normal laws. Everything is a concrete type so the per-draw cost is a few
// ALU operations with no interface dispatch — the per-flow sampler draws of
// generation phase 1 are the serial floor of the whole pipeline, and this
// package is what raised it (see README, "RNG determinism policy").
//
// Determinism contract: a Rand is a pure function of its (seed, stream)
// pair. The same pair always yields the same draw sequence, on every
// platform, across process restarts — the trace generator's bit-identical
// replay guarantees are built on top of this. The package never falls back
// to global or time-based state.
package rng

import "math/bits"

// Rand is a xoshiro256++ generator (Blackman & Vigna, 2019): 256 bits of
// state, period 2^256-1, passes BigCrush, ~1 ns per Uint64. It additionally
// implements math/rand's Source and Source64, so legacy consumers can wrap
// it in a *rand.Rand and draw from the same deterministic stream.
//
// A Rand is not safe for concurrent use; derive one stream per goroutine
// with NewStream instead of sharing.
type Rand struct {
	s [4]uint64
}

// splitmix64 is the seed expander recommended for xoshiro state
// initialisation: sequential outputs of a splitmix64 walk are statistically
// independent, so correlated user seeds (0, 1, 2, ...) still land on
// well-separated xoshiro states.
func splitmix64(z *uint64) uint64 {
	*z += 0x9E3779B97F4A7C15
	x := *z
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// New returns the generator for stream 0 of the given seed.
func New(seed int64) *Rand {
	return NewStream(seed, 0)
}

// NewStream derives an independent generator from (seed, stream): the
// splittable face of the package. Each (seed, stream) pair expands through
// splitmix64 into its own xoshiro state, so a trace seed can fan out into
// per-purpose sub-streams (arrival structure, flow sizes, rates, ...) whose
// draw sequences never perturb one another — consuming a batch from one
// stream leaves every other stream untouched, which is what makes batched
// refills safe to introduce without re-deriving golden outputs per call
// site.
func NewStream(seed int64, stream uint64) *Rand {
	var r Rand
	r.Reseed(seed, stream)
	return &r
}

// Reseed resets the generator to the start of (seed, stream) in place,
// letting a scratch Rand be reused across traces without reallocation.
func (r *Rand) Reseed(seed int64, stream uint64) {
	// Fold the stream id in with its own odd-constant multiply so
	// (seed, stream) pairs spread over the splitmix walk; the +1 keeps
	// stream 0 from collapsing onto the bare seed only when seed == 0.
	z := uint64(seed) ^ bits.RotateLeft64((stream+1)*0xD1B54A32D192ED03, 32)
	r.s[0] = splitmix64(&z)
	r.s[1] = splitmix64(&z)
	r.s[2] = splitmix64(&z)
	r.s[3] = splitmix64(&z)
	if r.s == [4]uint64{} {
		// The all-zero state is the one fixed point of xoshiro; splitmix
		// reaching it four times in a row is (2^-256)-unlikely, but the guard
		// is free.
		r.s[3] = 1
	}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	out := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return out
}

// Int63 returns a non-negative 63-bit value (math/rand.Source).
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed resets the generator to stream 0 of the given seed
// (math/rand.Source).
func (r *Rand) Seed(seed int64) { r.Reseed(seed, 0) }

// Float64 returns a uniform draw from [0, 1) with the full 53 bits of
// float64 precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Uint64n returns a uniform draw from [0, n) without modulo bias, via
// Lemire's multiply-shift rejection (one multiply in the common case).
// n must be > 0: the empty range has no members to draw.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform draw from [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}
