package dist

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist/rng"
)

// Goodness-of-fit suite for the sampler rewrite: every law is tested by a
// one-sample Kolmogorov-Smirnov statistic against its analytic CDF, plus
// mean/variance tolerances, and the batched face is checked draw-for-draw
// equivalent to the scalar face. A wrong ziggurat table, a biased alias
// bucket or a lost tail fails these hard; a fixed seed keeps them from ever
// flaking.

// ksStat returns the one-sample KS D of draws against cdf (draws sorted in
// place).
func ksStat(draws []float64, cdf func(float64) float64) float64 {
	sort.Float64s(draws)
	n := float64(len(draws))
	var d float64
	for i, x := range draws {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// ksCheck draws n samples and fails when D exceeds the ~1e-3 significance
// critical value 1.95/√n.
func ksCheck(t *testing.T, name string, s Sampler, seed int64, n int, cdf func(float64) float64) {
	t.Helper()
	r := rng.New(seed)
	draws := make([]float64, n)
	SampleN(s, draws, r)
	d := ksStat(draws, cdf)
	if crit := 1.95 / math.Sqrt(float64(n)); d > crit {
		t.Fatalf("%s: KS statistic %g exceeds %g", name, d, crit)
	}
}

func normCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

func TestSamplerKS(t *testing.T) {
	const n = 200_000
	u, _ := NewUniform(-2, 5)
	ksCheck(t, "uniform", u, 1, n, func(x float64) float64 { return (x + 2) / 7 })

	e, _ := NewExponential(0.25)
	ksCheck(t, "exponential", e, 2, n, func(x float64) float64 { return 1 - math.Exp(-0.25*x) })

	p, _ := NewPareto(1.8, 3)
	ksCheck(t, "pareto", p, 3, n, func(x float64) float64 { return 1 - math.Pow(3/x, 1.8) })

	b, _ := NewBoundedPareto(1.3, 1500, 3e5)
	tailMass := 1 - math.Pow(1500.0/3e5, 1.3)
	ksCheck(t, "bounded pareto", b, 4, n, func(x float64) float64 {
		return (1 - math.Pow(1500/x, 1.3)) / tailMass
	})

	l, _ := LognormalFromMoments(80e3, 1.5)
	ksCheck(t, "lognormal", l, 5, n, func(x float64) float64 {
		return normCDF((math.Log(x) - l.Mu) / l.Sigma)
	})

	// Mixture of two disjoint uniforms: the CDF has a plateau, so a biased
	// alias table shows up as mass on the wrong side of it.
	u1, _ := NewUniform(0, 1)
	u2, _ := NewUniform(10, 11)
	m, _ := NewMixture([]float64{3, 1}, []Sampler{u1, u2})
	ksCheck(t, "mixture", m, 6, n, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x < 1:
			return 0.75 * x
		case x < 10:
			return 0.75
		case x < 11:
			return 0.75 + 0.25*(x-10)
		default:
			return 1
		}
	})
}

// Variance tolerances complement KS (which is weak in the tails).
func TestSamplerVariance(t *testing.T) {
	const n = 500_000
	check := func(name string, s Sampler, seed int64, wantMean, wantVar, tol float64) {
		t.Helper()
		r := rng.New(seed)
		draws := make([]float64, n)
		SampleN(s, draws, r)
		var sum, sum2 float64
		for _, v := range draws {
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-wantMean) > tol*wantMean {
			t.Fatalf("%s: mean %g, want %g", name, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 3*tol*wantVar {
			t.Fatalf("%s: variance %g, want %g", name, variance, wantVar)
		}
	}
	e, _ := NewExponential(2)
	check("exponential", e, 11, 0.5, 0.25, 0.01)
	u, _ := NewUniform(2, 8)
	check("uniform", u, 12, 5, 3, 0.01)
	l, _ := LognormalFromMoments(100, 0.8)
	check("lognormal", l, 13, 100, (0.8*100)*(0.8*100), 0.03)
}

// The batched face must consume the stream exactly as successive scalar
// calls do: a call site can switch between them without moving any output.
func TestBatchedScalarEquivalence(t *testing.T) {
	u, _ := NewUniform(0, 1)
	e, _ := NewExponential(2)
	p, _ := NewPareto(1.5, 1)
	b, _ := NewBoundedPareto(1.3, 1500, 3e5)
	l, _ := LognormalFromMoments(100, 1)
	m, _ := NewMixture([]float64{1, 2, 0.5}, []Sampler{u, b, l})
	for _, s := range []Sampler{Constant{V: 7}, u, e, p, b, l, m} {
		for _, batch := range []int{1, 3, 64, 257} {
			r1 := rng.NewStream(99, 4)
			r2 := rng.NewStream(99, 4)
			dst := make([]float64, batch)
			SampleN(s, dst, r1)
			for i, got := range dst {
				if want := s.Sample(r2); got != want {
					t.Fatalf("%T batch %d: draw %d is %g, scalar path gives %g", s, batch, i, got, want)
				}
			}
			// Both paths must leave the stream at the same position.
			if r1.Uint64() != r2.Uint64() {
				t.Fatalf("%T batch %d: stream positions diverge after draws", s, batch)
			}
		}
	}
}

// The generic SampleN fallback (a Sampler that does not implement SamplerN)
// must behave like the loop it replaces.
type plainSampler struct{ u Uniform }

func (p plainSampler) Sample(r *rng.Rand) float64 { return p.u.Sample(r) }
func (p plainSampler) Mean() float64              { return p.u.Mean() }

func TestSampleNFallback(t *testing.T) {
	u, _ := NewUniform(3, 4)
	s := plainSampler{u}
	r1, r2 := rng.New(8), rng.New(8)
	dst := make([]float64, 100)
	SampleN(s, dst, r1)
	for i, got := range dst {
		if want := u.Sample(r2); got != want {
			t.Fatalf("fallback draw %d: %g != %g", i, got, want)
		}
	}
}

// Alias-table edge cases: extreme skew, single component, zero-weight
// components, and weights that stress the small/large pairing.
func TestMixtureAliasEdgeCases(t *testing.T) {
	// Single component: every draw comes from it.
	one, err := NewMixture([]float64{5}, []Sampler{Constant{V: 9}})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if v := one.Sample(r); v != 9 {
			t.Fatalf("single-component mixture drew %g", v)
		}
	}

	// Zero-weight components must never be selected, wherever they sit.
	z, err := NewMixture([]float64{0, 1, 0, 2, 0},
		[]Sampler{Constant{V: -1}, Constant{V: 10}, Constant{V: -2}, Constant{V: 20}, Constant{V: -3}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	dst := make([]float64, 30_000)
	z.SampleN(dst, rng.New(2))
	for _, v := range dst {
		counts[v]++
	}
	if counts[-1]+counts[-2]+counts[-3] != 0 {
		t.Fatalf("zero-weight component drawn: %v", counts)
	}
	frac := float64(counts[10]) / float64(len(dst))
	if math.Abs(frac-1.0/3) > 0.02 {
		t.Fatalf("weight-1 component frequency %g, want ~1/3", frac)
	}

	// Extreme skew: the rare component must still appear at about its rate.
	skew, err := NewMixture([]float64{1e6, 1}, []Sampler{Constant{V: 0}, Constant{V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rare := 0
	n := 4_000_000
	rr := rng.New(3)
	for i := 0; i < n; i++ {
		if skew.Sample(rr) == 1 {
			rare++
		}
	}
	want := float64(n) / (1e6 + 1)
	if rare == 0 || math.Abs(float64(rare)-want) > 6*math.Sqrt(want) {
		t.Fatalf("rare component drawn %d times, want ≈%g", rare, want)
	}

	// Non-finite weights are rejected.
	if _, err := NewMixture([]float64{1, math.Inf(1)}, []Sampler{Constant{V: 1}, Constant{V: 2}}); err == nil {
		t.Fatal("infinite weight should be rejected")
	}
}

// The monotonicity guard: a Poisson clock never stalls, reverses, or turns
// NaN — even where float absorption eats the gap.
func TestPoissonProcessMonotone(t *testing.T) {
	pp, err := NewPoissonProcess(1e9, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Push the clock somewhere large enough that tiny gaps are absorbed.
	pp.t = 1e18
	prev := pp.t
	for i := 0; i < 10_000; i++ {
		next := pp.Next()
		if !(next > prev) {
			t.Fatalf("arrival %d: clock stalled or reversed: %g after %g", i, next, prev)
		}
		if math.IsNaN(next) {
			t.Fatalf("arrival %d is NaN", i)
		}
		prev = next
	}

	// Saturated clock stays pinned at +Inf instead of going NaN, so horizon
	// comparisons terminate.
	pp2, _ := NewPoissonProcess(1, rng.New(5))
	pp2.t = math.Inf(1)
	for i := 0; i < 10; i++ {
		if v := pp2.Next(); !math.IsInf(v, 1) {
			t.Fatalf("saturated clock produced %g", v)
		}
	}
}

func TestPoissonProcessNextN(t *testing.T) {
	a, _ := NewPoissonProcess(7, rng.New(6))
	b, _ := NewPoissonProcess(7, rng.New(6))
	dst := make([]float64, 500)
	a.NextN(dst)
	for i, got := range dst {
		if want := b.Next(); got != want {
			t.Fatalf("batched arrival %d is %g, scalar gives %g", i, got, want)
		}
	}
	// Empty batch consumes nothing: the next scalar draws still agree.
	a.NextN(nil)
	if got, want := a.Next(), b.Next(); got != want {
		t.Fatalf("empty batch perturbed the stream: %g != %g", got, want)
	}
	// Poisson inter-arrival statistics: mean gap ≈ 1/rate.
	gaps := 0.0
	prev := 0.0
	d, _ := NewPoissonProcess(7, rng.New(8))
	const n = 100_000
	for i := 0; i < n; i++ {
		t := d.Next()
		gaps += t - prev
		prev = t
	}
	if mean := gaps / n; math.Abs(mean-1.0/7) > 0.01/7 {
		t.Fatalf("mean inter-arrival %g, want %g", mean, 1.0/7)
	}
}
