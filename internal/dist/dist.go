// Package dist provides the random samplers the synthetic trace generator
// and the M/G/∞ machinery draw from: flow sizes, per-flow rates, shot
// exponents and Poisson arrival processes. Every sampler is driven by an
// externally supplied *rng.Rand so the whole pipeline is deterministic
// under a fixed seed, and exposes its analytic mean so calibration code
// (e.g. deriving λ from a target utilisation) needs no Monte Carlo.
//
// Samplers have two faces: Sample draws one value, SampleN fills a slice in
// one call. The batched face is what the generator's phase-1 hot path uses —
// it amortises the interface dispatch of a Sampler field over a whole block
// of draws, which is where the per-flow cost of a trace goes once the
// underlying rng core is a few nanoseconds per draw.
package dist

import (
	"fmt"
	"math"

	"repro/internal/dist/rng"
)

// Sampler draws iid values from one distribution. Implementations must be
// stateless with respect to Sample so one Sampler can safely be shared by
// concurrent generators, each with its own rng.
type Sampler interface {
	// Sample draws one value using the given source of randomness.
	Sample(r *rng.Rand) float64
	// Mean returns the analytic expectation (may be +Inf for heavy tails).
	Mean() float64
}

// SamplerN is the batched face: SampleN fills dst with len(dst) iid draws,
// consuming the stream exactly as len(dst) successive Sample calls would —
// the batched and scalar paths are draw-for-draw equivalent, so switching a
// call site between them never moves an output.
type SamplerN interface {
	Sampler
	SampleN(dst []float64, r *rng.Rand)
}

// SampleN fills dst from s, using its batched path when implemented and
// falling back to per-value draws otherwise. Every sampler in this package
// implements SamplerN; the fallback exists for third-party Samplers.
//
//repro:hotpath
func SampleN(s Sampler, dst []float64, r *rng.Rand) {
	if sn, ok := s.(SamplerN); ok {
		sn.SampleN(dst, r)
		return
	}
	for i := range dst {
		dst[i] = s.Sample(r)
	}
}

// Constant is the degenerate distribution at V.
type Constant struct {
	V float64
}

// Sample returns V.
func (c Constant) Sample(*rng.Rand) float64 { return c.V }

// SampleN fills dst with V.
//
//repro:hotpath
func (c Constant) SampleN(dst []float64, _ *rng.Rand) {
	for i := range dst {
		dst[i] = c.V
	}
}

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform validates the bounds.
func NewUniform(lo, hi float64) (Uniform, error) {
	if !(lo < hi) {
		return Uniform{}, fmt.Errorf("dist: uniform needs lo < hi, got [%g, %g)", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(r *rng.Rand) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// SampleN fills dst with uniform draws.
//
//repro:hotpath
func (u Uniform) SampleN(dst []float64, r *rng.Rand) {
	for i := range dst {
		dst[i] = u.Lo + (u.Hi-u.Lo)*r.Float64()
	}
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with the given rate (mean
// 1/rate).
type Exponential struct {
	Rate float64
}

// NewExponential validates the rate.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate must be > 0, got %g", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample draws Exp(Rate) via the ziggurat.
func (e Exponential) Sample(r *rng.Rand) float64 { return r.Exp() / e.Rate }

// SampleN fills dst with Exp(Rate) draws.
//
//repro:hotpath
func (e Exponential) SampleN(dst []float64, r *rng.Rand) {
	for i := range dst {
		dst[i] = r.Exp() / e.Rate
	}
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Pareto is the (unbounded) Pareto distribution with shape Alpha and scale
// Xm: P(X > x) = (Xm/x)^Alpha for x >= Xm. The mean is infinite for
// Alpha <= 1, which is exactly what stability checks downstream test for.
type Pareto struct {
	Alpha, Xm float64
}

// NewPareto validates shape and scale.
func NewPareto(alpha, xm float64) (Pareto, error) {
	if !(alpha > 0) {
		return Pareto{}, fmt.Errorf("dist: pareto shape must be > 0, got %g", alpha)
	}
	if !(xm > 0) {
		return Pareto{}, fmt.Errorf("dist: pareto scale must be > 0, got %g", xm)
	}
	return Pareto{Alpha: alpha, Xm: xm}, nil
}

// invPow computes x^(-e) for x in (0, 1] via the exp∘log identity: the
// Pareto inverse-CDF hot path never needs math.Pow's generality (negative
// bases, huge exponents), and exp∘log is about twice as fast.
func invPow(x, e float64) float64 {
	return math.Exp(-e * math.Log(x))
}

// Sample draws by inverting the CDF.
func (p Pareto) Sample(r *rng.Rand) float64 {
	// 1-U avoids u == 0 (Float64 is in [0, 1)), which would blow up the
	// inverse CDF.
	return p.Xm * invPow(1-r.Float64(), 1/p.Alpha)
}

// SampleN fills dst by inverting the CDF per draw.
//
//repro:hotpath
func (p Pareto) SampleN(dst []float64, r *rng.Rand) {
	for i := range dst {
		dst[i] = p.Xm * invPow(1-r.Float64(), 1/p.Alpha)
	}
}

// Mean returns α·Xm/(α-1), or +Inf when α <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// BoundedPareto is the Pareto distribution truncated to [L, H]: the flow
// size law of the suite (heavy-tailed elephants with a physical cap).
type BoundedPareto struct {
	Alpha, L, H float64
	// tailMass caches 1-(L/H)^Alpha and invAlpha caches 1/Alpha: Sample
	// sits on the per-flow hot path of the trace generator, and the cache
	// halves its math.Pow cost. Zero means "not built via NewBoundedPareto"
	// (the true tail mass is never 0 for L < H) and is computed on the fly.
	tailMass float64
	invAlpha float64
}

// NewBoundedPareto validates shape and support.
func NewBoundedPareto(alpha, lo, hi float64) (BoundedPareto, error) {
	if !(alpha > 0) {
		return BoundedPareto{}, fmt.Errorf("dist: bounded pareto shape must be > 0, got %g", alpha)
	}
	if !(lo > 0) || !(lo < hi) {
		return BoundedPareto{}, fmt.Errorf("dist: bounded pareto needs 0 < lo < hi, got [%g, %g]", lo, hi)
	}
	return BoundedPareto{
		Alpha: alpha, L: lo, H: hi,
		tailMass: 1 - math.Pow(lo/hi, alpha),
		invAlpha: 1 / alpha,
	}, nil
}

// params returns the cached inversion constants, deriving them when the
// value was built without NewBoundedPareto.
func (b BoundedPareto) params() (tm, inv float64) {
	tm, inv = b.tailMass, b.invAlpha
	if tm == 0 {
		tm = 1 - math.Pow(b.L/b.H, b.Alpha)
		inv = 1 / b.Alpha
	}
	return tm, inv
}

// Sample draws by inverting the truncated CDF.
func (b BoundedPareto) Sample(r *rng.Rand) float64 {
	tm, inv := b.params()
	return b.L * invPow(1-r.Float64()*tm, inv)
}

// SampleN fills dst by inverting the truncated CDF per draw.
//
//repro:hotpath
func (b BoundedPareto) SampleN(dst []float64, r *rng.Rand) {
	tm, inv := b.params()
	for i := range dst {
		dst[i] = b.L * invPow(1-r.Float64()*tm, inv)
	}
}

// Mean returns the analytic expectation of the truncated law.
func (b BoundedPareto) Mean() float64 {
	ratio := math.Pow(b.L/b.H, b.Alpha)
	if b.Alpha == 1 {
		return b.L * math.Log(b.H/b.L) / (1 - ratio)
	}
	num := b.Alpha * math.Pow(b.L, b.Alpha) *
		(math.Pow(b.L, 1-b.Alpha) - math.Pow(b.H, 1-b.Alpha))
	return num / ((b.Alpha - 1) * (1 - ratio))
}

// Lognormal is the lognormal distribution: exp(N(Mu, Sigma²)).
type Lognormal struct {
	Mu, Sigma float64
}

// LognormalFromMoments builds the lognormal with the given mean and
// coefficient of variation (σ/μ), the natural parameterisation for "access
// rates average 80 kb/s with CoV 1.5"-style specs.
func LognormalFromMoments(mean, cov float64) (Lognormal, error) {
	if !(mean > 0) {
		return Lognormal{}, fmt.Errorf("dist: lognormal mean must be > 0, got %g", mean)
	}
	if cov < 0 {
		return Lognormal{}, fmt.Errorf("dist: lognormal CoV must be >= 0, got %g", cov)
	}
	s2 := math.Log(1 + cov*cov)
	return Lognormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}, nil
}

// Sample draws exp(N(Mu, Sigma²)) via the ziggurat normal.
func (l Lognormal) Sample(r *rng.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.Norm())
}

// SampleN fills dst with lognormal draws.
//
//repro:hotpath
func (l Lognormal) SampleN(dst []float64, r *rng.Rand) {
	for i := range dst {
		dst[i] = math.Exp(l.Mu + l.Sigma*r.Norm())
	}
}

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Mixture draws from one of several component samplers with fixed
// probabilities (the mice/elephants flow-size law). Component selection is
// O(1) via a Walker/Vose alias table, whatever the component count.
type Mixture struct {
	probs      []float64 // normalised weights, for Mean
	components []Sampler
	// Alias table: bucket i keeps itself with probability accept[i], else
	// defers to alias[i]. One uniform draw selects a component.
	accept []float64
	alias  []int32
}

// NewMixture validates that weights and components align; weights need not
// be normalised.
func NewMixture(weights []float64, components []Sampler) (*Mixture, error) {
	if len(weights) == 0 || len(weights) != len(components) {
		return nil, fmt.Errorf("dist: mixture needs matching non-empty weights and components, got %d/%d",
			len(weights), len(components))
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("dist: mixture weight %d is %g", i, w)
		}
		if components[i] == nil {
			return nil, fmt.Errorf("dist: mixture component %d is nil", i)
		}
		total += w
	}
	if !(total > 0) || math.IsInf(total, 1) {
		return nil, fmt.Errorf("dist: mixture weights sum to %g", total)
	}
	n := len(weights)
	m := &Mixture{
		probs:      make([]float64, n),
		components: components,
		accept:     make([]float64, n),
		alias:      make([]int32, n),
	}
	// Vose's alias construction: scale weights to mean 1, then pair each
	// under-full bucket with an over-full donor. Linear time, and exact: the
	// residual float mass left on the stacks at the end belongs to buckets
	// whose scaled weight is within rounding of 1.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		m.probs[i] = w / total
		scaled[i] = m.probs[i] * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		m.accept[s] = scaled[s]
		m.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		m.accept[i] = 1
		m.alias[i] = i
	}
	for _, i := range small {
		m.accept[i] = 1
		m.alias[i] = i
	}
	return m, nil
}

// pick selects a component index with one uniform draw.
func (m *Mixture) pick(r *rng.Rand) int {
	u := r.Float64() * float64(len(m.accept))
	i := int(u)
	if i >= len(m.accept) { // u == n-ε rounding guard
		i = len(m.accept) - 1
	}
	if u-float64(i) < m.accept[i] {
		return i
	}
	return int(m.alias[i])
}

// Sample picks a component by weight in O(1), then samples it.
func (m *Mixture) Sample(r *rng.Rand) float64 {
	return m.components[m.pick(r)].Sample(r)
}

// SampleN fills dst, picking a component per slot. Draw order is
// slot-by-slot (pick, then component draw), identical to len(dst)
// successive Sample calls.
//
//repro:hotpath
func (m *Mixture) SampleN(dst []float64, r *rng.Rand) {
	for i := range dst {
		dst[i] = m.components[m.pick(r)].Sample(r)
	}
}

// Mean returns the weight-averaged component means. Zero-weight components
// are skipped, not multiplied: a disabled heavy-tail component with an
// infinite mean must not turn the mixture mean into 0·Inf = NaN.
func (m *Mixture) Mean() float64 {
	var mean float64
	for i, w := range m.probs {
		if w > 0 {
			mean += w * m.components[i].Mean()
		}
	}
	return mean
}

// PoissonProcess produces the arrival epochs of a homogeneous Poisson
// process of the given rate: successive calls to Next return strictly
// increasing absolute times whose gaps are iid Exp(rate).
type PoissonProcess struct {
	rate float64
	rng  *rng.Rand
	t    float64
}

// NewPoissonProcess validates the rate and binds the process to r.
func NewPoissonProcess(rate float64, r *rng.Rand) (*PoissonProcess, error) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return nil, fmt.Errorf("dist: poisson rate must be positive and finite, got %g", rate)
	}
	if r == nil {
		return nil, fmt.Errorf("dist: poisson process needs a rng")
	}
	return &PoissonProcess{rate: rate, rng: r}, nil
}

// Next returns the next arrival epoch. The clock is guaranteed to make
// strict, finite-safe progress: a zero gap (the ziggurat can return exactly
// 0) or a gap lost to float absorption at a large t advances the epoch by
// one ulp instead of stalling, and once the clock saturates at +Inf it stays
// there — so a horizon comparison always terminates and t never goes
// backwards or NaN.
func (p *PoissonProcess) Next() float64 {
	t := p.t + p.rng.Exp()/p.rate
	if !(t > p.t) {
		t = math.Nextafter(p.t, math.Inf(1))
	}
	p.t = t
	return t
}

// NextN fills dst with the next len(dst) arrival epochs, equivalent to
// len(dst) successive Next calls.
//
//repro:hotpath
func (p *PoissonProcess) NextN(dst []float64) {
	for i := range dst {
		dst[i] = p.Next()
	}
}
