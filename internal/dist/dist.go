// Package dist provides the random samplers the synthetic trace generator
// and the M/G/∞ machinery draw from: flow sizes, per-flow rates, shot
// exponents and Poisson arrival processes. Every sampler is driven by an
// externally supplied *rand.Rand so the whole pipeline is deterministic
// under a fixed seed, and exposes its analytic mean so calibration code
// (e.g. deriving λ from a target utilisation) needs no Monte Carlo.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler draws iid values from one distribution. Implementations must be
// stateless with respect to Sample so one Sampler can safely be shared by
// concurrent generators, each with its own rng.
type Sampler interface {
	// Sample draws one value using the given source of randomness.
	Sample(rng *rand.Rand) float64
	// Mean returns the analytic expectation (may be +Inf for heavy tails).
	Mean() float64
}

// Constant is the degenerate distribution at V.
type Constant struct {
	V float64
}

// Sample returns V.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform validates the bounds.
func NewUniform(lo, hi float64) (Uniform, error) {
	if !(lo < hi) {
		return Uniform{}, fmt.Errorf("dist: uniform needs lo < hi, got [%g, %g)", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + (u.Hi-u.Lo)*rng.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with the given rate (mean
// 1/rate).
type Exponential struct {
	Rate float64
}

// NewExponential validates the rate.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate must be > 0, got %g", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample draws Exp(Rate).
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() / e.Rate }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Pareto is the (unbounded) Pareto distribution with shape Alpha and scale
// Xm: P(X > x) = (Xm/x)^Alpha for x >= Xm. The mean is infinite for
// Alpha <= 1, which is exactly what stability checks downstream test for.
type Pareto struct {
	Alpha, Xm float64
}

// NewPareto validates shape and scale.
func NewPareto(alpha, xm float64) (Pareto, error) {
	if !(alpha > 0) {
		return Pareto{}, fmt.Errorf("dist: pareto shape must be > 0, got %g", alpha)
	}
	if !(xm > 0) {
		return Pareto{}, fmt.Errorf("dist: pareto scale must be > 0, got %g", xm)
	}
	return Pareto{Alpha: alpha, Xm: xm}, nil
}

// Sample draws by inverting the CDF.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	// 1-U avoids u == 0 (Float64 is in [0, 1)), which would blow up the
	// inverse CDF.
	return p.Xm / math.Pow(1-rng.Float64(), 1/p.Alpha)
}

// Mean returns α·Xm/(α-1), or +Inf when α <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// BoundedPareto is the Pareto distribution truncated to [L, H]: the flow
// size law of the suite (heavy-tailed elephants with a physical cap).
type BoundedPareto struct {
	Alpha, L, H float64
	// tailMass caches 1-(L/H)^Alpha and invAlpha caches 1/Alpha: Sample
	// sits on the per-flow hot path of the trace generator, and the cache
	// halves its math.Pow cost. Zero means "not built via NewBoundedPareto"
	// (the true tail mass is never 0 for L < H) and is computed on the fly.
	tailMass float64
	invAlpha float64
}

// NewBoundedPareto validates shape and support.
func NewBoundedPareto(alpha, lo, hi float64) (BoundedPareto, error) {
	if !(alpha > 0) {
		return BoundedPareto{}, fmt.Errorf("dist: bounded pareto shape must be > 0, got %g", alpha)
	}
	if !(lo > 0) || !(lo < hi) {
		return BoundedPareto{}, fmt.Errorf("dist: bounded pareto needs 0 < lo < hi, got [%g, %g]", lo, hi)
	}
	return BoundedPareto{
		Alpha: alpha, L: lo, H: hi,
		tailMass: 1 - math.Pow(lo/hi, alpha),
		invAlpha: 1 / alpha,
	}, nil
}

// Sample draws by inverting the truncated CDF.
func (b BoundedPareto) Sample(rng *rand.Rand) float64 {
	tm, inv := b.tailMass, b.invAlpha
	if tm == 0 {
		tm = 1 - math.Pow(b.L/b.H, b.Alpha)
		inv = 1 / b.Alpha
	}
	return b.L / math.Pow(1-rng.Float64()*tm, inv)
}

// Mean returns the analytic expectation of the truncated law.
func (b BoundedPareto) Mean() float64 {
	ratio := math.Pow(b.L/b.H, b.Alpha)
	if b.Alpha == 1 {
		return b.L * math.Log(b.H/b.L) / (1 - ratio)
	}
	num := b.Alpha * math.Pow(b.L, b.Alpha) *
		(math.Pow(b.L, 1-b.Alpha) - math.Pow(b.H, 1-b.Alpha))
	return num / ((b.Alpha - 1) * (1 - ratio))
}

// Lognormal is the lognormal distribution: exp(N(Mu, Sigma²)).
type Lognormal struct {
	Mu, Sigma float64
}

// LognormalFromMoments builds the lognormal with the given mean and
// coefficient of variation (σ/μ), the natural parameterisation for "access
// rates average 80 kb/s with CoV 1.5"-style specs.
func LognormalFromMoments(mean, cov float64) (Lognormal, error) {
	if !(mean > 0) {
		return Lognormal{}, fmt.Errorf("dist: lognormal mean must be > 0, got %g", mean)
	}
	if cov < 0 {
		return Lognormal{}, fmt.Errorf("dist: lognormal CoV must be >= 0, got %g", cov)
	}
	s2 := math.Log(1 + cov*cov)
	return Lognormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}, nil
}

// Sample draws exp(N(Mu, Sigma²)).
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Mixture draws from one of several component samplers with fixed
// probabilities (the mice/elephants flow-size law).
type Mixture struct {
	cum        []float64 // normalised cumulative weights
	components []Sampler
}

// NewMixture validates that weights and components align; weights need not
// be normalised.
func NewMixture(weights []float64, components []Sampler) (*Mixture, error) {
	if len(weights) == 0 || len(weights) != len(components) {
		return nil, fmt.Errorf("dist: mixture needs matching non-empty weights and components, got %d/%d",
			len(weights), len(components))
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: mixture weight %d is %g", i, w)
		}
		if components[i] == nil {
			return nil, fmt.Errorf("dist: mixture component %d is nil", i)
		}
		total += w
	}
	if !(total > 0) {
		return nil, fmt.Errorf("dist: mixture weights sum to %g", total)
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard float round-off on the last bucket
	return &Mixture{cum: cum, components: components}, nil
}

// Sample picks a component by weight, then samples it.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.components[i].Sample(rng)
		}
	}
	return m.components[len(m.components)-1].Sample(rng)
}

// Mean returns the weight-averaged component means. Zero-weight components
// are skipped, not multiplied: a disabled heavy-tail component with an
// infinite mean must not turn the mixture mean into 0·Inf = NaN.
func (m *Mixture) Mean() float64 {
	var mean, prev float64
	for i, c := range m.cum {
		if w := c - prev; w > 0 {
			mean += w * m.components[i].Mean()
		}
		prev = c
	}
	return mean
}

// PoissonProcess produces the arrival epochs of a homogeneous Poisson
// process of the given rate: successive calls to Next return increasing
// absolute times whose gaps are iid Exp(rate).
type PoissonProcess struct {
	rate float64
	rng  *rand.Rand
	t    float64
}

// NewPoissonProcess validates the rate and binds the process to rng.
func NewPoissonProcess(rate float64, rng *rand.Rand) (*PoissonProcess, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("dist: poisson rate must be > 0, got %g", rate)
	}
	if rng == nil {
		return nil, fmt.Errorf("dist: poisson process needs a rng")
	}
	return &PoissonProcess{rate: rate, rng: rng}, nil
}

// Next returns the next arrival epoch.
func (p *PoissonProcess) Next() float64 {
	p.t += p.rng.ExpFloat64() / p.rate
	return p.t
}
