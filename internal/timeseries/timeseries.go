// Package timeseries turns a packet stream into the measured total-rate
// process of the paper's §V-F: the volume of data crossing the link is
// averaged over consecutive intervals of length Δ (the paper uses 200 ms,
// the average round-trip time), yielding a piecewise-constant rate series
// whose first two moments are compared against the model.
package timeseries

import (
	"fmt"
	"iter"
	"math"

	"repro/internal/flow"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Series is a measured rate process: Rate[k] is the average rate in bit/s
// over [k·Delta, (k+1)·Delta).
type Series struct {
	Delta float64
	Rate  []float64
}

// Binner accumulates packet volumes into rate bins as the packets stream
// by, so the rate series of an interval is built in the same pass that
// measures its flows — no second scan over a materialised record slice.
// One Binner is reused across intervals via Reset.
type Binner struct {
	delta    float64
	duration float64
	bits     []float64
}

// NewBinner prepares bins of length delta across [0, duration).
func NewBinner(duration, delta float64) (*Binner, error) {
	b := &Binner{}
	if err := b.Reinit(duration, delta); err != nil {
		return nil, err
	}
	return b, nil
}

// Reinit re-targets the binner to a fresh [0, duration) window with bins of
// delta, zeroing the bins and reusing their storage when it is large
// enough — the per-worker scratch path of the measurement scheduler, which
// bins thousands of intervals without reallocating.
func (b *Binner) Reinit(duration, delta float64) error {
	if !(delta > 0) {
		return fmt.Errorf("timeseries: delta must be > 0, got %g", delta)
	}
	if !(duration > 0) {
		return fmt.Errorf("timeseries: duration must be > 0, got %g", duration)
	}
	n := int(duration / delta)
	if n == 0 {
		return fmt.Errorf("timeseries: duration %g shorter than delta %g", duration, delta)
	}
	b.delta, b.duration = delta, duration
	if cap(b.bits) >= n {
		b.bits = b.bits[:n]
		clear(b.bits)
	} else {
		b.bits = make([]float64, n)
	}
	return nil
}

// Add accounts one packet of the given size at time t (relative to the
// window origin). Packets outside [0, duration) are ignored; bin boundaries
// use the convention t ∈ [kΔ, (k+1)Δ).
//
//repro:hotpath
func (b *Binner) Add(t, bits float64) {
	if t < 0 || t >= b.duration {
		return
	}
	k := int(t / b.delta)
	if k >= len(b.bits) { // guard the t == duration-ε float edge
		k = len(b.bits) - 1
	}
	b.bits[k] += bits
}

// AddRecord accounts one packet record.
func (b *Binner) AddRecord(rec trace.Record) { b.Add(rec.Time, rec.Bits()) }

// AddBlock accounts every packet of a SoA block in one pass over its time
// and size columns — the batch face the streaming measurement pipeline
// bins with.
//
//repro:hotpath
func (b *Binner) AddBlock(blk *trace.Block) {
	for j, t := range blk.Times {
		b.Add(t, float64(blk.Sizes[j])*8)
	}
}

// Reset clears the bins for the next window.
func (b *Binner) Reset() {
	clear(b.bits)
}

// Series snapshots the accumulated volumes as a rate series. The returned
// series owns its storage, so the binner can be Reset and reused (and the
// series mutated, e.g. by Subtract) independently.
func (b *Binner) Series() Series {
	rate := make([]float64, len(b.bits))
	for k, v := range b.bits {
		rate[k] = v / b.delta
	}
	return Series{Delta: b.delta, Rate: rate}
}

// Bin averages the packet volumes of recs over bins of length delta across
// [0, duration). Packets outside the window are ignored. It is the
// materialised-slice convenience over Binner.
func Bin(recs []trace.Record, duration, delta float64) (Series, error) {
	b, err := NewBinner(duration, delta)
	if err != nil {
		return Series{}, err
	}
	for i := range recs {
		b.AddRecord(recs[i])
	}
	return b.Series(), nil
}

// BinStream bins a record iterator (e.g. a replayable trace.Window
// sub-stream) without materialising it: the streaming counterpart of Bin.
func BinStream(recs iter.Seq[trace.Record], duration, delta float64) (Series, error) {
	b, err := NewBinner(duration, delta)
	if err != nil {
		return Series{}, err
	}
	for rec := range recs {
		b.AddRecord(rec)
	}
	return b.Series(), nil
}

// Subtract removes the given discarded packets (single-packet flows, which
// the paper excludes from the measured variance) from the series in place.
func (s Series) Subtract(pkts []flow.DiscardedPacket) {
	n := len(s.Rate)
	for _, p := range pkts {
		if p.Time < 0 {
			continue
		}
		k := int(p.Time / s.Delta)
		if k >= n {
			continue
		}
		s.Rate[k] -= p.Bits / s.Delta
		if s.Rate[k] < 0 {
			s.Rate[k] = 0
		}
	}
}

// Mean returns the time-average rate in bit/s.
func (s Series) Mean() float64 { return stats.Mean(s.Rate) }

// Variance returns the sample variance of the binned rate, the σ̂_Δ² the
// model's Corollary 2 is validated against.
func (s Series) Variance() float64 { return stats.Variance(s.Rate) }

// CoV returns the coefficient of variation σ̂/μ̂ (the y/x axes of the
// paper's Figures 9, 10, 12, 13 are this quantity in percent).
func (s Series) CoV() float64 { return stats.CoV(s.Rate) }

// AutoCorrelation returns the empirical autocorrelation of the rate at lags
// 0..maxLag bins.
func (s Series) AutoCorrelation(maxLag int) []float64 {
	return stats.AutoCorrelation(s.Rate, maxLag)
}

// Downsample returns a series with bins of k·Delta, averaging groups of k
// consecutive bins (any remainder bins are dropped). The predictor samples
// the rate at multi-second periods this way without re-binning packets.
func (s Series) Downsample(k int) (Series, error) {
	if k <= 0 {
		return Series{}, fmt.Errorf("timeseries: downsample factor must be > 0, got %d", k)
	}
	if k == 1 {
		return Series{Delta: s.Delta, Rate: append([]float64(nil), s.Rate...)}, nil
	}
	n := len(s.Rate) / k
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < k; j++ {
			sum += s.Rate[i*k+j]
		}
		out[i] = sum / float64(k)
	}
	return Series{Delta: s.Delta * float64(k), Rate: out}, nil
}

// ActiveFlowSeries counts, for each bin of length delta over [0, duration),
// the number of flows active at the bin's start (a flow is active at t when
// Start ≤ t < End). This is the N(t) process of the M/G/∞ view (§V-A),
// used by the paper's second family of predictors.
func ActiveFlowSeries(flows []flow.Flow, duration, delta float64) (Series, error) {
	if !(delta > 0) || !(duration > 0) {
		return Series{}, fmt.Errorf("timeseries: need positive delta and duration")
	}
	n := int(duration / delta)
	if n == 0 {
		return Series{}, fmt.Errorf("timeseries: duration %g shorter than delta %g", duration, delta)
	}
	counts := make([]float64, n)
	for _, f := range flows {
		// First bin whose start t = kΔ satisfies t ≥ f.Start.
		lo := int(math.Ceil(f.Start / delta))
		// Last bin whose start is strictly before f.End.
		hi := int(f.End / delta)
		if float64(hi)*delta >= f.End {
			hi--
		}
		if lo < 0 {
			lo = 0
		}
		for k := lo; k <= hi && k < n; k++ {
			counts[k]++
		}
	}
	return Series{Delta: delta, Rate: counts}, nil
}
