package timeseries

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/netpkt"
	"repro/internal/stats"
	"repro/internal/trace"
)

func rec(t float64, bytes uint16) trace.Record {
	return trace.Record{Time: t, Hdr: netpkt.Header{TotalLen: bytes}}
}

func TestBinValidation(t *testing.T) {
	if _, err := Bin(nil, 10, 0); err == nil {
		t.Fatal("zero delta should be rejected")
	}
	if _, err := Bin(nil, 0, 1); err == nil {
		t.Fatal("zero duration should be rejected")
	}
	if _, err := Bin(nil, 0.1, 1); err == nil {
		t.Fatal("duration < delta should be rejected")
	}
}

func TestBinPlacesPackets(t *testing.T) {
	recs := []trace.Record{
		rec(0.05, 1000), // bin 0
		rec(0.25, 500),  // bin 1
		rec(0.999, 250), // bin 4
		rec(1.5, 100),   // outside [0,1)
		rec(-0.5, 100),  // negative, ignored
	}
	s, err := Bin(recs, 1.0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rate) != 5 {
		t.Fatalf("bins = %d, want 5", len(s.Rate))
	}
	// bin 0: 1000 bytes / 0.2 s = 40000 bit/s.
	if s.Rate[0] != 40000 {
		t.Fatalf("bin 0 = %g, want 40000", s.Rate[0])
	}
	if s.Rate[1] != 20000 {
		t.Fatalf("bin 1 = %g, want 20000", s.Rate[1])
	}
	if s.Rate[4] != 10000 {
		t.Fatalf("bin 4 = %g, want 10000", s.Rate[4])
	}
	if s.Rate[2] != 0 || s.Rate[3] != 0 {
		t.Fatalf("empty bins non-zero: %v", s.Rate)
	}
}

func TestBinMeanEqualsThroughput(t *testing.T) {
	// The time-average of the binned series equals total bits / duration
	// when all packets fall inside the window.
	recs := []trace.Record{rec(0.1, 1500), rec(3.7, 1500), rec(8.2, 700)}
	s, err := Bin(recs, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := (1500 + 1500 + 700) * 8.0 / 10.0
	if math.Abs(s.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", s.Mean(), want)
	}
}

func TestSubtractDiscarded(t *testing.T) {
	recs := []trace.Record{rec(0.1, 1000), rec(0.15, 500)}
	s, err := Bin(recs, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s.Subtract([]flow.DiscardedPacket{{Time: 0.15, Bits: 4000}})
	if s.Rate[0] != (8000+4000-4000)/0.2 {
		t.Fatalf("bin 0 after subtract = %g", s.Rate[0])
	}
	// Out-of-range discards are ignored; rates never go negative.
	s.Subtract([]flow.DiscardedPacket{{Time: 5, Bits: 1e9}, {Time: -1, Bits: 1e9}})
	s.Subtract([]flow.DiscardedPacket{{Time: 0.1, Bits: 1e12}})
	if s.Rate[0] != 0 {
		t.Fatalf("rate should clamp at 0, got %g", s.Rate[0])
	}
}

func TestSubtractEdgeCases(t *testing.T) {
	// Four bins of 0.25 s over [0, 1), each carrying 1000 bits/bin-width.
	mk := func() Series {
		return Series{Delta: 0.25, Rate: []float64{4000, 4000, 4000, 4000}}
	}

	// A discard exactly on a bin boundary belongs to the bin it opens
	// (t ∈ [kΔ, (k+1)Δ)), not the one it closes.
	s := mk()
	s.Subtract([]flow.DiscardedPacket{{Time: 0.5, Bits: 250}})
	if s.Rate[1] != 4000 {
		t.Fatalf("bin 1 touched by boundary discard: %g", s.Rate[1])
	}
	if s.Rate[2] != 4000-250/0.25 {
		t.Fatalf("bin 2 after boundary discard = %g, want %g", s.Rate[2], 4000-250/0.25)
	}

	// t = 0 is a boundary too: it must land in bin 0, not be dropped.
	s = mk()
	s.Subtract([]flow.DiscardedPacket{{Time: 0, Bits: 250}})
	if s.Rate[0] != 3000 {
		t.Fatalf("bin 0 after t=0 discard = %g, want 3000", s.Rate[0])
	}

	// A discard at the series end (t = n·Δ) is past the last bin: ignored.
	s = mk()
	s.Subtract([]flow.DiscardedPacket{{Time: 1.0, Bits: 1e9}, {Time: 7.3, Bits: 1e9}})
	for k, v := range s.Rate {
		if v != 4000 {
			t.Fatalf("bin %d changed by past-the-end discard: %g", k, v)
		}
	}

	// Over-subtraction clamps at zero instead of going negative (the
	// measured rate is a volume; a negative rate would poison the variance).
	s = mk()
	s.Subtract([]flow.DiscardedPacket{{Time: 0.3, Bits: 1001}})
	if s.Rate[1] != 0 {
		t.Fatalf("bin 1 should clamp at 0, got %g", s.Rate[1])
	}
	if s.Rate[0] != 4000 || s.Rate[2] != 4000 {
		t.Fatal("clamp leaked into neighbouring bins")
	}
}

func TestBinStreamMatchesBin(t *testing.T) {
	recs := []trace.Record{rec(0.1, 1000), rec(0.35, 500), rec(0.9, 700)}
	want, err := Bin(recs, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	seq := func(yield func(trace.Record) bool) {
		for _, r := range recs {
			if !yield(r) {
				return
			}
		}
	}
	got, err := BinStream(seq, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rate) != len(want.Rate) {
		t.Fatalf("bin counts differ: %d vs %d", len(got.Rate), len(want.Rate))
	}
	for k := range want.Rate {
		if got.Rate[k] != want.Rate[k] {
			t.Fatalf("bin %d: %g vs %g", k, got.Rate[k], want.Rate[k])
		}
	}
	if _, err := BinStream(seq, 0, 0.2); err == nil {
		t.Fatal("invalid duration should be rejected")
	}
}

func TestDownsample(t *testing.T) {
	s := Series{Delta: 0.2, Rate: []float64{1, 3, 5, 7, 9, 11, 13}}
	d, err := s.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delta != 0.4 {
		t.Fatalf("delta = %g, want 0.4", d.Delta)
	}
	want := []float64{2, 6, 10} // trailing 13 dropped
	if len(d.Rate) != 3 {
		t.Fatalf("rate = %v", d.Rate)
	}
	for i, w := range want {
		if d.Rate[i] != w {
			t.Fatalf("rate[%d] = %g, want %g", i, d.Rate[i], w)
		}
	}
	if _, err := s.Downsample(0); err == nil {
		t.Fatal("factor 0 should be rejected")
	}
	same, err := s.Downsample(1)
	if err != nil || len(same.Rate) != len(s.Rate) {
		t.Fatal("factor 1 should copy")
	}
	same.Rate[0] = 99
	if s.Rate[0] == 99 {
		t.Fatal("downsample(1) must not alias the original")
	}
}

func TestDownsampleConservesMean(t *testing.T) {
	// A weakly dependent stationary series: block averaging must keep the
	// mean and reduce the variance (§V-F). A deterministic trend would not
	// qualify, so use seeded noise.
	s := Series{Delta: 0.1, Rate: make([]float64, 1000)}
	x := 1.0
	for i := range s.Rate {
		x = math.Mod(x*997+13, 101) // fixed pseudo-random sequence
		s.Rate[i] = x
	}
	d, err := s.Downsample(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-s.Mean()) > 1e-9 {
		t.Fatalf("downsampling changed the mean: %g vs %g", d.Mean(), s.Mean())
	}
	if d.Variance() >= s.Variance() {
		t.Fatalf("averaging must reduce variance: %g vs %g (§V-F)", d.Variance(), s.Variance())
	}
}

func TestActiveFlowSeries(t *testing.T) {
	flows := []flow.Flow{
		{Start: 0, End: 1.0},
		{Start: 0.5, End: 2.0},
	}
	s, err := ActiveFlowSeries(flows, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Bin starts at t=0,0.5,1.0,1.5,2.0,2.5; a flow is active on the
	// half-open [Start, End), so flow 1 is gone at t=1.0 and flow 2 at 2.0.
	want := []float64{1, 2, 1, 1, 0, 0}
	for i, w := range want {
		if s.Rate[i] != w {
			t.Fatalf("N(t) at bin %d = %g, want %g (series %v)", i, s.Rate[i], w, s.Rate)
		}
	}
	if _, err := ActiveFlowSeries(nil, 0, 1); err == nil {
		t.Fatal("invalid dims should be rejected")
	}
}

// Averaging over longer Δ smooths the measured rate (paper §V-F): variance
// decreases with Δ on a synthetic trace.
func TestVarianceDecreasesWithDelta(t *testing.T) {
	size, _ := dist.NewBoundedPareto(1.3, 3000, 300000)
	rate, _ := dist.LognormalFromMoments(250e3, 1)
	cfg := trace.Config{
		Duration:  60,
		Lambda:    120,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Constant{V: 1},
		Seed:      5,
	}
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s50, err := Bin(recs, 60, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s800, err := s50.Downsample(16)
	if err != nil {
		t.Fatal(err)
	}
	if !(s800.Variance() < s50.Variance()) {
		t.Fatalf("variance did not decrease with averaging: Δ=50ms %g vs Δ=800ms %g",
			s50.Variance(), s800.Variance())
	}
	// Means agree regardless of Δ.
	if math.Abs(s800.Mean()-s50.Mean())/s50.Mean() > 0.01 {
		t.Fatalf("means differ across Δ: %g vs %g", s800.Mean(), s50.Mean())
	}
}

func TestAutoCorrelationDelegates(t *testing.T) {
	s := Series{Delta: 1, Rate: []float64{1, 2, 1, 2, 1, 2}}
	r := s.AutoCorrelation(2)
	want := stats.AutoCorrelation(s.Rate, 2)
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("acf mismatch at %d", i)
		}
	}
}
