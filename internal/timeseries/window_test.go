package timeseries

import (
	"reflect"
	"testing"
)

func TestWindowEvictsOldest(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 0 || w.Cap() != 3 {
		t.Fatalf("fresh window Len=%d Cap=%d", w.Len(), w.Cap())
	}
	for i := 1; i <= 5; i++ {
		w.Push(float64(i))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d after 5 pushes into cap 3", w.Len())
	}
	if got := w.Values(); !reflect.DeepEqual(got, []float64{3, 4, 5}) {
		t.Fatalf("Values = %v, want [3 4 5]", got)
	}
	if w.At(0) != 3 || w.At(2) != 5 {
		t.Fatalf("At(0)=%g At(2)=%g", w.At(0), w.At(2))
	}
}

func TestWindowAppendValuesNoAlloc(t *testing.T) {
	w, _ := NewWindow(4)
	for i := 0; i < 6; i++ {
		w.Push(float64(i))
	}
	scratch := make([]float64, 0, 8)
	got := w.AppendValues(scratch)
	if !reflect.DeepEqual(got, []float64{2, 3, 4, 5}) {
		t.Fatalf("AppendValues = %v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("AppendValues reallocated despite sufficient capacity")
	}
}

func TestWindowRestore(t *testing.T) {
	w, _ := NewWindow(4)
	for i := 0; i < 9; i++ {
		w.Push(float64(i))
	}
	vals := w.Values()

	w2, _ := NewWindow(4)
	if err := w2.RestoreValues(vals); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w2.Values(), vals) {
		t.Fatalf("restored Values = %v, want %v", w2.Values(), vals)
	}
	// Continued pushes behave identically to the live window.
	w.Push(100)
	w2.Push(100)
	if !reflect.DeepEqual(w.Values(), w2.Values()) {
		t.Fatalf("post-restore divergence: %v vs %v", w.Values(), w2.Values())
	}

	if err := w2.RestoreValues(make([]float64, 5)); err == nil {
		t.Fatal("RestoreValues accepted more samples than capacity")
	}
	if _, err := NewWindow(0); err == nil {
		t.Fatal("NewWindow accepted capacity 0")
	}
}

func TestBinnerStateRoundTrip(t *testing.T) {
	live, err := NewBinner(2.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		live.Add(float64(i)*0.2, 800)
	}
	st := live.State()

	restored, err := NewBinner(1.0, 0.5) // different geometry, re-targeted by restore
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// Same subsequent additions must yield identical series.
	live.Add(1.9, 400)
	restored.Add(1.9, 400)
	if !reflect.DeepEqual(live.Series(), restored.Series()) {
		t.Fatal("binner series diverged after restore")
	}

	bad := st
	bad.Bits = st.Bits[:len(st.Bits)-1]
	if err := restored.RestoreState(bad); err == nil {
		t.Fatal("RestoreState accepted a bin-count mismatch")
	}
	bad = st
	bad.Delta = -1
	if err := restored.RestoreState(bad); err == nil {
		t.Fatal("RestoreState accepted a negative delta")
	}
}
