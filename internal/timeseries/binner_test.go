package timeseries

import (
	"testing"

	"repro/internal/netpkt"
	"repro/internal/trace"
)

func binRec(t float64, bytes uint16) trace.Record {
	return trace.Record{Time: t, Hdr: netpkt.Header{TotalLen: bytes}}
}

// The streaming binner must agree with the materialised Bin and survive
// Reset between windows.
func TestBinnerMatchesBinAndResets(t *testing.T) {
	if _, err := NewBinner(10, 0); err == nil {
		t.Fatal("zero delta should be rejected")
	}
	if _, err := NewBinner(0, 1); err == nil {
		t.Fatal("zero duration should be rejected")
	}
	if _, err := NewBinner(0.5, 1); err == nil {
		t.Fatal("duration < delta should be rejected")
	}

	recs := []trace.Record{
		binRec(0.05, 100),
		binRec(0.15, 200),
		binRec(0.95, 300),
		binRec(-1, 999), // outside the window, ignored
		binRec(10, 999), // outside the window, ignored
	}
	want, err := Bin(recs, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBinner(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		b.AddRecord(r)
	}
	first := b.Series()
	if len(first.Rate) != len(want.Rate) {
		t.Fatalf("series length %d, want %d", len(first.Rate), len(want.Rate))
	}
	for k := range want.Rate {
		if first.Rate[k] != want.Rate[k] {
			t.Fatalf("bin %d: %g, want %g", k, first.Rate[k], want.Rate[k])
		}
	}

	// The snapshot owns its storage: mutating it must not leak back.
	first.Rate[0] = -1
	if again := b.Series(); again.Rate[0] == -1 {
		t.Fatal("Series must snapshot, not alias, the binner's storage")
	}

	b.Reset()
	empty := b.Series()
	for k, v := range empty.Rate {
		if v != 0 {
			t.Fatalf("bin %d nonzero after Reset: %g", k, v)
		}
	}
	b.Add(0.25, 800) // 800 bits in bin 2 of a 0.1 s grid -> 8000 bit/s
	if got := b.Series().Rate[2]; got != 8000 {
		t.Fatalf("rate after reuse = %g, want 8000", got)
	}
}
