package timeseries

import "fmt"

// This file holds the sliding-window state of the online service mode: a
// fixed-capacity window over per-interval scalars (the predictor's rate
// history) and the snapshot/restore face of the Binner, so a long-running
// pipeline keeps bounded series memory and can checkpoint what it holds.

// Window is a fixed-capacity sliding window over float64 samples: Push
// appends and evicts the oldest sample once full, so memory is bounded by
// the capacity no matter how long the stream runs.
type Window struct {
	buf  []float64
	head int // index of the oldest sample
	n    int
}

// NewWindow returns a window holding at most capacity samples.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("timeseries: window capacity must be >= 1, got %d", capacity)
	}
	return &Window{buf: make([]float64, capacity)}, nil
}

// Push appends one sample, evicting the oldest when the window is full.
func (w *Window) Push(v float64) {
	if w.n < len(w.buf) {
		w.buf[(w.head+w.n)%len(w.buf)] = v
		w.n++
		return
	}
	w.buf[w.head] = v
	w.head = (w.head + 1) % len(w.buf)
}

// Len returns the number of samples held.
func (w *Window) Len() int { return w.n }

// Cap returns the window's capacity.
func (w *Window) Cap() int { return len(w.buf) }

// At returns the i-th sample, 0 being the oldest held.
func (w *Window) At(i int) float64 {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("timeseries: window index %d out of range [0,%d)", i, w.n))
	}
	return w.buf[(w.head+i)%len(w.buf)]
}

// AppendValues appends the held samples, oldest to newest, to dst and
// returns it — the allocation-free read the refit loop uses each interval.
func (w *Window) AppendValues(dst []float64) []float64 {
	for i := 0; i < w.n; i++ {
		dst = append(dst, w.buf[(w.head+i)%len(w.buf)])
	}
	return dst
}

// Values returns a fresh slice of the held samples, oldest to newest.
func (w *Window) Values() []float64 {
	if w.n == 0 {
		return nil
	}
	return w.AppendValues(make([]float64, 0, w.n))
}

// RestoreValues replaces the window's contents with vs (oldest first),
// which must fit the capacity.
func (w *Window) RestoreValues(vs []float64) error {
	if len(vs) > len(w.buf) {
		return fmt.Errorf("timeseries: restoring %d samples into a window of capacity %d", len(vs), len(w.buf))
	}
	w.head = 0
	w.n = copy(w.buf, vs)
	return nil
}

// BinnerState is a Binner checkpoint: the window geometry and the
// accumulated per-bin volumes.
type BinnerState struct {
	Duration float64
	Delta    float64
	Bits     []float64
}

// State captures the binner's resumable state (the bins are copied; the
// binner keeps accumulating).
func (b *Binner) State() BinnerState {
	return BinnerState{
		Duration: b.duration,
		Delta:    b.delta,
		Bits:     append([]float64(nil), b.bits...),
	}
}

// RestoreState re-targets the binner to the snapshot's geometry and adopts
// its accumulated volumes. An inconsistent snapshot (bin count not matching
// the geometry) is rejected and leaves the binner freshly re-initialised.
func (b *Binner) RestoreState(st BinnerState) error {
	if err := b.Reinit(st.Duration, st.Delta); err != nil {
		return err
	}
	if len(st.Bits) != len(b.bits) {
		return fmt.Errorf("timeseries: snapshot has %d bins, geometry (%g/%g) implies %d",
			len(st.Bits), st.Duration, st.Delta, len(b.bits))
	}
	copy(b.bits, st.Bits)
	return nil
}
