package service

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/membudget"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// The soak contract: a churny, nonstationary ingest stream — per-epoch load
// swings through Mutate — runs for minutes of stream time under a memory
// budget with every resident structure bounded: flow-table occupancy
// plateaus instead of growing with stream length, the prediction window
// stays at its cap, heap growth flattens after warm-up, and the run unwinds
// with exact live-block and goroutine accounting.
func TestSoakChurnyNonstationaryIngest(t *testing.T) {
	intervals := 900 // 30 minutes of stream time at 2 s intervals
	if testing.Short() {
		intervals = 15
	}
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()

	// Nonstationarity: each epoch swings the flow-arrival rate through
	// [0.5, 2)× the base — sustained load churn, deterministic per epoch.
	churn := func(epoch int64, cfg *trace.Config) {
		f := 0.5 + 1.5*float64((uint64(epoch)*2654435761)%1024)/1024
		cfg.Lambda = 40 * f
	}
	src := &SyntheticSource{Base: testBase(77), Mutate: churn} // unbounded

	budget, err := membudget.New(32 * trace.BlockCost(trace.BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	store, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var flowsPerInterval []int
	var next int
	var q1Heap uint64
	heapAt := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	cfg := PipelineConfig{
		IntervalSec: tInterval,
		Delta:       tDelta,
		Window:      8,
		OnInterval: func(r Report) error {
			if r.Index != next {
				t.Errorf("interval %d reported after %d", r.Index, next-1)
			}
			next = r.Index + 1
			flowsPerInterval = append(flowsPerInterval, r.Flows)
			if len(flowsPerInterval) == intervals/4 {
				q1Heap = heapAt()
			}
			if len(flowsPerInterval) == intervals {
				cancel()
			}
			return nil
		},
	}
	link, err := NewLink(LinkConfig{
		Name:            "soak",
		Source:          src,
		Pipeline:        cfg,
		Store:           store,
		CheckpointEvery: 4 * tInterval,
		Budget:          budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Run(ctx); Classify(err) != Canceled {
		t.Fatalf("soak ended with %v", err)
	}
	endHeap := heapAt()

	if len(flowsPerInterval) < intervals {
		t.Fatalf("only %d of %d intervals reported", len(flowsPerInterval), intervals)
	}
	// Occupancy plateau: per-interval flow counts are bounded by the churn
	// envelope (≤ 2× base λ · interval + session carry-over), and the tail
	// of the run must not trend above the earlier plateau.
	const maxFlows = 1000
	q := len(flowsPerInterval) / 4
	maxEarly, maxLate := 0, 0
	for i, f := range flowsPerInterval {
		if f > maxFlows {
			t.Fatalf("interval %d held %d flows — occupancy is growing, not plateauing", i, f)
		}
		if i < q && f > maxEarly {
			maxEarly = f
		}
		if i >= len(flowsPerInterval)-q && f > maxLate {
			maxLate = f
		}
	}
	if maxLate > 4*maxEarly+50 {
		t.Fatalf("late occupancy %d outgrew the early plateau %d", maxLate, maxEarly)
	}
	// No monotonic series growth: the heap after the full run must sit near
	// the quarter-point level (the slack absorbs GC scheduling noise).
	if q1Heap > 0 && endHeap > q1Heap+64<<20 {
		t.Fatalf("heap grew from %d to %d bytes over the soak", q1Heap, endHeap)
	}
	st := link.Stats()
	if st.Checkpoints < 2 || st.Packets == 0 {
		t.Fatalf("soak stats: %+v", st)
	}
	if budget.Used() != 0 {
		t.Fatalf("%d budget bytes still reserved after the run", budget.Used())
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}
