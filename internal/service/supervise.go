// Package service is the supervision layer of the online flow-telemetry
// daemon: it keeps long-running link pipelines alive across panics and
// transient failures. Each pipeline runs under a Supervisor that contains
// panics at the goroutine boundary, classifies failures through the error
// taxonomy (cancellation / permanent / transient), restarts crashed runs
// with deterministic-seeded exponential backoff + jitter, and trips a
// restart-intensity circuit breaker — too many restarts inside a window
// yields a terminal error, never a hot crash loop.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/dist/rng"
)

// ErrPermanent marks failures that restarting cannot cure (malformed input
// file, invalid configuration). Wrap with MarkPermanent; the supervisor
// stops immediately instead of burning restart budget.
var ErrPermanent = errors.New("service: permanent failure")

// ErrCircuitOpen is wrapped into the terminal error when the restart
// breaker trips: the supervised run failed too many times in too short a
// window to keep retrying.
var ErrCircuitOpen = errors.New("service: restart circuit breaker open")

// permanentError wraps an error so Classify sees it as permanent while
// errors.Is/As still reach the cause.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }
func (e *permanentError) Is(target error) bool {
	return target == ErrPermanent
}

// MarkPermanent wraps err so the supervisor (and Retry) treats it as not
// worth retrying. A nil err stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// PanicError is a contained panic converted into an error at a supervision
// boundary, carrying the recovered value and the goroutine stack.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("service: contained panic: %v", e.Value)
}

// Class is the failure taxonomy the supervisor restarts by.
type Class int

const (
	// Canceled: the run stopped because its context was cancelled — a
	// shutdown, not a failure. Never restarted.
	Canceled Class = iota
	// Permanent: retrying cannot help (bad config, malformed input,
	// tripped breaker). Never restarted.
	Permanent
	// Transient: everything else — I/O hiccups, injected faults, contained
	// panics. Restarted under backoff until the breaker trips.
	Transient
)

// String names the class for logs.
func (c Class) String() string {
	switch c {
	case Canceled:
		return "canceled"
	case Permanent:
		return "permanent"
	case Transient:
		return "transient"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify places an error in the taxonomy. nil classifies as Canceled
// (a clean return is a stop, not a failure to retry).
func Classify(err error) Class {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return Canceled
	case errors.Is(err, ErrPermanent):
		return Permanent
	default:
		return Transient
	}
}

// Backoff generates the supervisor's restart delays: exponential doubling
// from Base to Max with deterministic jitter — each delay is scaled by a
// factor drawn uniformly from [0.5, 1) off a seeded rng stream, so restart
// timing never synchronises across links yet replays exactly under a seed.
type Backoff struct {
	base time.Duration
	max  time.Duration
	cur  time.Duration
	r    *rng.Rand
}

// NewBackoff builds a backoff policy seeded per supervised entity: same
// (seed, name), same delay sequence.
func NewBackoff(base, max time.Duration, seed int64, name string) (*Backoff, error) {
	if base <= 0 {
		return nil, fmt.Errorf("service: backoff base must be > 0, got %v", base)
	}
	if max < base {
		return nil, fmt.Errorf("service: backoff max %v below base %v", max, base)
	}
	return &Backoff{base: base, max: max, cur: base, r: rng.NewStream(seed, hashName(name))}, nil
}

// Next returns the next restart delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.cur
	if b.cur < b.max/2 {
		b.cur *= 2
	} else {
		b.cur = b.max
	}
	return time.Duration((0.5 + 0.5*b.r.Float64()) * float64(d))
}

// Reset rewinds the schedule to the base delay (called after a run survives
// long enough to be considered healthy).
func (b *Backoff) Reset() { b.cur = b.base }

// hashName folds a supervised entity's name into an rng stream id (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Breaker is a restart-intensity circuit breaker: it permits at most max
// events inside a sliding window. The clock is injectable so policy tests
// run on a fake clock instead of real sleeps.
type Breaker struct {
	max    int
	window time.Duration
	now    func() time.Time
	times  []time.Time // ring of the last max event times
	head   int
	n      int
}

// NewBreaker permits max events per window. now == nil uses time.Now.
func NewBreaker(max int, window time.Duration, now func() time.Time) (*Breaker, error) {
	if max < 1 {
		return nil, fmt.Errorf("service: breaker max must be >= 1, got %d", max)
	}
	if window <= 0 {
		return nil, fmt.Errorf("service: breaker window must be > 0, got %v", window)
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{max: max, window: window, now: now, times: make([]time.Time, max)}, nil
}

// Allow records one event and reports whether it stays within the allowed
// intensity: false means max events have now occurred inside one window —
// the caller must stop restarting.
func (b *Breaker) Allow() bool {
	t := b.now()
	if b.n == b.max {
		oldest := b.times[b.head]
		if t.Sub(oldest) < b.window {
			return false
		}
		b.times[b.head] = t
		b.head = (b.head + 1) % b.max
		return true
	}
	b.times[(b.head+b.n)%b.max] = t
	b.n++
	return true
}

// Event describes one supervision decision, delivered to the OnEvent hook.
type Event struct {
	Name    string
	Restart int   // completed runs so far (1 = first run just ended)
	Err     error // how the run ended
	Class   Class
	Delay   time.Duration // backoff before the next run (Transient only)
}

// Supervisor keeps one run function alive: panics are contained, transient
// failures restart under backoff, the breaker bounds restart intensity,
// cancellation and permanent failures stop the loop.
type Supervisor struct {
	// Name labels events and seeds the jitter stream.
	Name string
	// Backoff is the restart delay policy (required).
	Backoff *Backoff
	// Breaker bounds restart intensity (required).
	Breaker *Breaker
	// HealthyAfter resets the backoff schedule when a run lasts at least
	// this long before failing (0 = never reset).
	HealthyAfter time.Duration
	// OnEvent, when set, observes every run ending and restart decision.
	OnEvent func(Event)
	// now/sleep are injectable for tests; nil uses the real clock.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

// runContained invokes run with panics converted to *PanicError.
func runContained(ctx context.Context, run func(context.Context) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return run(ctx)
}

// sleepCtx sleeps d or until ctx cancels, returning the context error on
// interruption.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run supervises run until it stops for a non-transient reason. The return
// value is nil on clean cancellation (run returned nil or the context's
// error after ctx was cancelled); otherwise the terminal failure —
// permanent errors as classified, or the last transient error wrapped with
// ErrCircuitOpen when the breaker trips.
func (s *Supervisor) Run(ctx context.Context, run func(context.Context) error) error {
	if s.Backoff == nil || s.Breaker == nil {
		return MarkPermanent(fmt.Errorf("service: supervisor %q needs a Backoff and a Breaker", s.Name))
	}
	now := s.Now
	if now == nil {
		now = time.Now
	}
	sleep := s.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	for restart := 1; ; restart++ {
		started := now()
		err := runContained(ctx, run)
		class := Classify(err)
		// A failure that races shutdown is shutdown: don't burn restart
		// budget on a run the caller already cancelled.
		if class == Transient && ctx.Err() != nil {
			class = Canceled
		}
		ev := Event{Name: s.Name, Restart: restart, Err: err, Class: class}
		switch class {
		case Canceled:
			s.emit(ev)
			return nil
		case Permanent:
			s.emit(ev)
			return fmt.Errorf("service: %q stopped: %w", s.Name, err)
		}
		if s.HealthyAfter > 0 && now().Sub(started) >= s.HealthyAfter {
			s.Backoff.Reset()
		}
		if !s.Breaker.Allow() {
			s.emit(ev)
			return fmt.Errorf("service: %q gave up after %d runs (%w): last error: %v",
				s.Name, restart, ErrCircuitOpen, err)
		}
		ev.Delay = s.Backoff.Next()
		s.emit(ev)
		if serr := sleep(ctx, ev.Delay); serr != nil {
			return nil // cancelled while waiting to restart: clean stop
		}
		if ctx.Err() != nil {
			return nil
		}
	}
}

func (s *Supervisor) emit(ev Event) {
	if s.OnEvent != nil {
		s.OnEvent(ev)
	}
}

// Retry runs op up to attempts times under the taxonomy: transient errors
// back off and retry, cancellation and permanent errors return immediately.
// The ingest-side counterpart of Run for operations with a natural end.
func Retry(ctx context.Context, attempts int, b *Backoff, op func(context.Context) error) error {
	if attempts < 1 {
		return MarkPermanent(fmt.Errorf("service: retry needs >= 1 attempt, got %d", attempts))
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = op(ctx)
		switch Classify(err) {
		case Canceled:
			if err == nil || ctx.Err() != nil {
				return err
			}
			return err
		case Permanent:
			return err
		}
		if i == attempts-1 {
			break
		}
		if serr := sleepCtx(ctx, b.Next()); serr != nil {
			return serr
		}
	}
	return fmt.Errorf("service: giving up after %d attempts: %w", attempts, err)
}
