package service

import (
	"context"
	"fmt"

	"repro/internal/trace"
	"repro/internal/trace/store"
)

// Cursor is an exact ingest position: the epoch (one bounded replay/
// generation pass of the source) and the count of packets already consumed
// within it. Resuming from a cursor skips exactly that many packets, so a
// restored pipeline's series continues bit-identically on a deterministic
// source — no float-time ambiguity at timestamp ties.
type Cursor struct {
	Epoch   int64
	Packets int64
}

// BlockSource is an unbounded packet stream delivered as SoA blocks with
// absolute stream times. Stream replays from cur onward, calling fn with
// each block's epoch; blocks are borrowed — valid only during the call.
// Stream returns when the source is exhausted (bounded sources), on fn's
// error, or on ctx cancellation (a wrapped context error).
type BlockSource interface {
	Stream(ctx context.Context, cur Cursor, fn func(epoch int64, blk *trace.Block) error) error
}

// SyntheticSource generates an unbounded synthetic packet stream by
// concatenating epochs of the base trace configuration: epoch e runs the
// generator with seed Base.Seed + e and shifts its times by e·Duration, so
// the stream is deterministic, resumable at any cursor, and nonstationary
// when Mutate reshapes the per-epoch config (churn, load swings).
type SyntheticSource struct {
	// Base is the per-epoch generator config; Duration > 0 is the epoch
	// length. Seed and Duration must not be changed by Mutate.
	Base trace.Config
	// Epochs bounds the stream (0 = unbounded).
	Epochs int64
	// GenWorkers is the per-epoch synthesis parallelism (<= 1 = serial).
	GenWorkers int
	// Mutate, when set, reshapes epoch e's config (rate swings, size
	// shifts) — the nonstationarity knob. It must keep Seed and Duration.
	Mutate func(epoch int64, cfg *trace.Config)
}

// Stream implements BlockSource.
func (s *SyntheticSource) Stream(ctx context.Context, cur Cursor, fn func(int64, *trace.Block) error) error {
	if !(s.Base.Duration > 0) {
		return MarkPermanent(fmt.Errorf("service: synthetic source needs a positive epoch duration, got %g", s.Base.Duration))
	}
	for epoch := cur.Epoch; s.Epochs == 0 || epoch < s.Epochs; epoch++ {
		cfg := s.Base
		cfg.Seed = s.Base.Seed + epoch
		if s.Mutate != nil {
			s.Mutate(epoch, &cfg)
			if cfg.Seed != s.Base.Seed+epoch || cfg.Duration != s.Base.Duration {
				return MarkPermanent(fmt.Errorf("service: Mutate changed the epoch seed or duration"))
			}
		}
		skip := int64(0)
		if epoch == cur.Epoch {
			skip = cur.Packets
		}
		offset := float64(epoch) * s.Base.Duration
		var seen int64
		_, err := trace.StreamParallelBlocksCtx(ctx, cfg, s.GenWorkers, func(blk *trace.Block) error {
			n := int64(blk.Len())
			if seen+n <= skip {
				seen += n
				return nil
			}
			lo := 0
			if seen < skip {
				lo = int(skip - seen)
			}
			seen += n
			sub := blk.Slice(lo, blk.Len())
			// Shift into absolute stream time. The generator's blocks are
			// recycled after this call returns, so in-place mutation is safe.
			for i := range sub.Times {
				sub.Times[i] += offset
			}
			return fn(epoch, &sub)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReplaySource loops a stored packet trace: epoch e replays the store's
// packets with times shifted by e·Duration. The trace never lives in memory
// — the reader serves one segment at a time (pages of the file mapping on
// the zero-copy path), so flowd replays traces far larger than its memory
// budget at O(segment) resident cost, with exact Cursor resume.
type ReplaySource struct {
	// Reader is the opened trace store (required). The source borrows it;
	// the caller owns Close.
	Reader *store.Reader
	// Duration is the epoch length in seconds (≥ the last packet's time;
	// 0 = the store's recorded trace duration).
	Duration float64
	// Epochs bounds the stream (0 = unbounded).
	Epochs int64
}

// Stream implements BlockSource.
func (s *ReplaySource) Stream(ctx context.Context, cur Cursor, fn func(int64, *trace.Block) error) error {
	if s.Reader == nil {
		return MarkPermanent(fmt.Errorf("service: replay source has no store reader"))
	}
	total := s.Reader.Packets()
	if total == 0 {
		return MarkPermanent(fmt.Errorf("service: replay source has no records"))
	}
	dur := s.Duration
	if dur == 0 {
		dur = s.Reader.Meta().Duration
	}
	if !(dur > 0) || s.Reader.LastTime() > dur {
		return MarkPermanent(fmt.Errorf("service: replay duration %g does not cover the trace (last packet at %g)",
			dur, s.Reader.LastTime()))
	}
	if cur.Packets > total {
		return MarkPermanent(fmt.Errorf("service: cursor %d packets into an epoch of %d records", cur.Packets, total))
	}
	// One pooled block is the source's whole resident state: stored blocks
	// are borrowed read-only views (possibly of the PROT_READ mapping), so
	// the epoch time shift happens during the copy the pipeline needs anyway.
	out := trace.GetBlock()
	defer trace.PutBlock(out)
	for epoch := cur.Epoch; s.Epochs == 0 || epoch < s.Epochs; epoch++ {
		start := int64(0)
		if epoch == cur.Epoch {
			start = cur.Packets
		}
		offset := float64(epoch) * dur
		err := s.Reader.Stream(ctx, start, func(blk *trace.Block) error {
			out.Reset()
			out.AppendRebased(blk, 0, blk.Len(), -offset)
			return fn(epoch, out)
		})
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("service: replay: %w", ctx.Err())
			}
			return err
		}
	}
	return nil
}
