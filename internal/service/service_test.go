package service

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/membudget"
	"repro/internal/snapshot"
	"repro/internal/trace"
	tracestore "repro/internal/trace/store"
)

// Test geometry: 2 s analysis intervals over 6 s epochs, so every epoch
// spans three intervals and epoch boundaries never coincide with block
// boundaries.
const (
	tInterval = 2.0
	tDelta    = 0.1
	tEpoch    = 6.0
)

func testBase(seed int64) trace.Config {
	return trace.Config{
		Duration:  tEpoch,
		Lambda:    40,
		SizeBytes: dist.Constant{V: 20000},
		RateBps:   dist.Constant{V: 1e6},
		ShotB:     dist.Constant{V: 1},
		Seed:      seed,
	}
}

func testPipeCfg(reps *[]Report) PipelineConfig {
	return PipelineConfig{
		IntervalSec: tInterval,
		Delta:       tDelta,
		Window:      8,
		OnInterval: func(r Report) error {
			*reps = append(*reps, r)
			return nil
		},
	}
}

// checkNoLeaks asserts the run left nothing behind: every pooled block
// returned (exact, immediate) and the goroutine count settles back to its
// pre-run level.
func checkNoLeaks(t *testing.T, baseBlocks int64, baseGoroutines int) {
	t.Helper()
	if got := trace.LiveBlocks(); got != baseBlocks {
		t.Fatalf("leaked %d pool blocks", got-baseBlocks)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseGoroutines {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ownedBlocks materialises a source's whole stream into owned blocks so
// tests can feed the same packets to several pipelines and split the stream
// at arbitrary block boundaries.
func ownedBlocks(t *testing.T, src BlockSource) []*trace.Block {
	t.Helper()
	var out []*trace.Block
	err := src.Stream(context.Background(), Cursor{}, func(_ int64, blk *trace.Block) error {
		ob := trace.GetBlock()
		ob.AppendRebased(blk, 0, blk.Len(), 0)
		out = append(out, ob)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func putAll(bs []*trace.Block) {
	for _, b := range bs {
		trace.PutBlock(b)
	}
}

func feedAll(t *testing.T, p *Pipeline, blocks []*trace.Block) {
	t.Helper()
	for _, b := range blocks {
		if err := p.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
}

func countPackets(bs []*trace.Block) int64 {
	var n int64
	for _, b := range bs {
		n += int64(b.Len())
	}
	return n
}

func TestPipelineConfigValidation(t *testing.T) {
	bad := []PipelineConfig{
		{IntervalSec: 0, Delta: 0.1},
		{IntervalSec: 2, Delta: 0},
		{IntervalSec: 2, Delta: 3}, // delta > interval
		{IntervalSec: 2, Delta: 0.1, Window: 1},
		{IntervalSec: 2, Delta: 0.1, Window: 8, PredictOrder: 7}, // > window-2
	}
	for i, cfg := range bad {
		if _, err := NewPipeline(cfg); err == nil {
			t.Fatalf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := NewPipeline(PipelineConfig{IntervalSec: 2, Delta: 0.1}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestPipelineStreamReports(t *testing.T) {
	blocks := ownedBlocks(t, &SyntheticSource{Base: testBase(7), Epochs: 2})
	defer putAll(blocks)

	var reps []Report
	p, err := NewPipeline(testPipeCfg(&reps))
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, p, blocks)
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}

	wantIntervals := int(2 * tEpoch / tInterval) // 6
	if len(reps) != wantIntervals {
		t.Fatalf("got %d reports, want %d", len(reps), wantIntervals)
	}
	var pkts int64
	for i, r := range reps {
		if r.Index != i {
			t.Fatalf("report %d has index %d", i, r.Index)
		}
		if r.Start != float64(i)*tInterval {
			t.Fatalf("report %d starts at %g", i, r.Start)
		}
		if r.Partial != (i == wantIntervals-1) {
			t.Fatalf("report %d partial=%v", i, r.Partial)
		}
		if r.Packets == 0 || r.Flows == 0 {
			t.Fatalf("report %d is empty: %+v", i, r)
		}
		if r.MeasMean <= 0 {
			t.Fatalf("report %d mean rate %g", i, r.MeasMean)
		}
		if r.Lambda <= 0 || r.MeanS <= 0 || r.MeanS2oD <= 0 {
			t.Fatalf("report %d has no model inputs: %+v", i, r)
		}
		if i < 4 && r.HasPrediction {
			t.Fatalf("report %d predicted before enough history", i)
		}
		pkts += r.Packets
	}
	if want := countPackets(blocks); pkts != want {
		t.Fatalf("reports account for %d packets, stream had %d", pkts, want)
	}
	// With a full window of history the one-step predictor must be live.
	if last := reps[len(reps)-1]; !last.HasPrediction {
		t.Fatalf("no prediction with %d intervals of history", len(reps)-1)
	}
	if p.StreamTime() <= 0 || p.Interval() != wantIntervals {
		t.Fatalf("stream clock %g, interval %d", p.StreamTime(), p.Interval())
	}
}

// The tentpole differential: snapshotting mid-stream, round-tripping the
// checkpoint through the on-disk frame codec, and restoring into a fresh
// pipeline must be observationally invisible — the restored pipeline emits
// exactly the reports the uninterrupted one does, at every cut point.
func TestPipelineSnapshotDifferential(t *testing.T) {
	blocks := ownedBlocks(t, &SyntheticSource{Base: testBase(11), Epochs: 2})
	defer putAll(blocks)

	var golden []Report
	pg, err := NewPipeline(testPipeCfg(&golden))
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, pg, blocks)
	if err := pg.Drain(); err != nil {
		t.Fatal(err)
	}

	cuts := []int{1, len(blocks) / 3, len(blocks) / 2, len(blocks) - 1}
	for _, cut := range cuts {
		var bReps, cReps []Report
		pb, err := NewPipeline(testPipeCfg(&bReps))
		if err != nil {
			t.Fatal(err)
		}
		feedAll(t, pb, blocks[:cut])
		nPrefix := len(bReps)

		// Round-trip the checkpoint through the durable frame format, not
		// just the in-memory sections.
		var buf bytes.Buffer
		if err := snapshot.Encode(&buf, 7, pb.Snapshot()); err != nil {
			t.Fatal(err)
		}
		secs, seq, err := snapshot.Decode(buf.Bytes())
		if err != nil || seq != 7 {
			t.Fatalf("decode: seq %d err %v", seq, err)
		}
		pc, err := NewPipeline(testPipeCfg(&cReps))
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.Restore(secs); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}

		feedAll(t, pb, blocks[cut:])
		feedAll(t, pc, blocks[cut:])
		if err := pb.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := pc.Drain(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bReps[nPrefix:], cReps) {
			t.Fatalf("cut %d: restored pipeline reports diverge from the uninterrupted run", cut)
		}
		if !reflect.DeepEqual(bReps, golden) {
			t.Fatalf("cut %d: snapshotting perturbed the live pipeline", cut)
		}
		if !reflect.DeepEqual(pb.Snapshot(), pc.Snapshot()) {
			t.Fatalf("cut %d: final states differ between live and restored pipelines", cut)
		}
	}
}

func TestPipelineRestoreRejectsMismatchedConfig(t *testing.T) {
	blocks := ownedBlocks(t, &SyntheticSource{Base: testBase(13), Epochs: 1})
	defer putAll(blocks)

	var reps []Report
	pa, err := NewPipeline(testPipeCfg(&reps))
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, pa, blocks)
	secs := pa.Snapshot()

	other := testPipeCfg(&reps)
	other.Delta = 0.05
	pb, err := NewPipeline(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Restore(secs); err == nil {
		t.Fatal("checkpoint from a different geometry restored silently")
	}
	if pb.Interval() != 0 || pb.StreamTime() != 0 || pb.ActiveFlows() != 0 {
		t.Fatal("failed restore left state behind")
	}
	// The rejected pipeline must still work as a fresh one.
	feedAll(t, pb, blocks)
	if err := pb.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineRejectsDisorderedInput(t *testing.T) {
	var reps []Report
	p, err := NewPipeline(testPipeCfg(&reps))
	if err != nil {
		t.Fatal(err)
	}
	blk := trace.GetBlock()
	defer trace.PutBlock(blk)
	blk.Append(-1, 100, 1, 2)
	if err := p.AddBlock(blk); err == nil {
		t.Fatal("negative time accepted")
	}
	blk.Reset()
	blk.Append(5, 100, 1, 2)
	if err := p.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	blk.Reset()
	blk.Append(1, 100, 1, 2)
	if err := p.AddBlock(blk); err == nil {
		t.Fatal("time reversal across blocks accepted")
	}
}

func TestPipelineDrainIsIdempotent(t *testing.T) {
	var reps []Report
	p, err := NewPipeline(testPipeCfg(&reps))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil || len(reps) != 0 {
		t.Fatalf("drain of a fresh pipeline: err %v, %d reports", err, len(reps))
	}
	blk := trace.GetBlock()
	defer trace.PutBlock(blk)
	blk.Append(0.5, 1000, 1, 2)
	blk.Append(0.9, 1000, 1, 2)
	if err := p.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Partial || reps[0].Packets != 2 {
		t.Fatalf("partial drain reports = %+v", reps)
	}
	if err := p.Drain(); err != nil || len(reps) != 1 {
		t.Fatalf("second drain: err %v, %d reports", err, len(reps))
	}
}

// flatPkt is one packet of a flattened source stream, for exact comparison.
type flatPkt struct {
	epoch int64
	t     float64
	size  uint16
	src   uint64
	dst   uint64
}

func flatten(t *testing.T, src BlockSource, cur Cursor) []flatPkt {
	t.Helper()
	var out []flatPkt
	err := src.Stream(context.Background(), cur, func(epoch int64, blk *trace.Block) error {
		for i := 0; i < blk.Len(); i++ {
			out = append(out, flatPkt{epoch, blk.Times[i], blk.Sizes[i], blk.Srcs[i], blk.Dsts[i]})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Packet-exact resume: streaming from any cursor must produce exactly the
// suffix of the full stream — the property that makes checkpointed restarts
// bit-identical.
func TestSyntheticSourceResumesExactly(t *testing.T) {
	src := &SyntheticSource{Base: testBase(3), Epochs: 2}
	full := flatten(t, src, Cursor{})
	if len(full) == 0 {
		t.Fatal("empty stream")
	}
	epoch0 := 0
	for _, p := range full {
		if p.epoch == 0 {
			epoch0++
		}
	}
	cursors := []Cursor{
		{0, 0}, {0, 1}, {0, 255}, {0, 256}, {0, 257}, {0, int64(epoch0)},
		{1, 0}, {1, 37},
	}
	for _, cur := range cursors {
		skip := cur.Packets
		if cur.Epoch > 0 {
			skip += int64(epoch0)
		}
		suffix := flatten(t, src, cur)
		if !reflect.DeepEqual(full[skip:], suffix) {
			t.Fatalf("cursor %+v: resumed stream is not the exact suffix", cur)
		}
	}
	// Parallel generation must produce the identical stream.
	par := &SyntheticSource{Base: testBase(3), Epochs: 2, GenWorkers: 4}
	if got := flatten(t, par, Cursor{1, 37}); !reflect.DeepEqual(full[epoch0+37:], got) {
		t.Fatal("parallel generation diverges from serial")
	}
}

func TestSyntheticSourceRejectsBadConfig(t *testing.T) {
	noDur := &SyntheticSource{Base: trace.Config{}}
	if err := noDur.Stream(context.Background(), Cursor{}, nil); !errors.Is(err, ErrPermanent) {
		t.Fatalf("zero duration: %v", err)
	}
	mut := &SyntheticSource{Base: testBase(1), Epochs: 1, Mutate: func(_ int64, cfg *trace.Config) {
		cfg.Seed++
	}}
	err := mut.Stream(context.Background(), Cursor{}, func(int64, *trace.Block) error { return nil })
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("seed-changing mutate: %v", err)
	}
}

// storeFromRecords writes recs into a trace store file (deliberately odd
// segment size so resume cursors cross segment boundaries) and opens it.
func storeFromRecords(t *testing.T, recs []trace.Record, dur float64) *tracestore.Reader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "replay.fstore")
	w, err := tracestore.Create(path, tracestore.Meta{Duration: dur}, tracestore.Options{SegmentPackets: 300})
	if err != nil {
		t.Fatal(err)
	}
	blk := trace.GetBlock()
	defer trace.PutBlock(blk)
	for _, rec := range recs {
		if blk.Len() == trace.BlockSize {
			if err := w.AddBlock(blk); err != nil {
				t.Fatal(err)
			}
			blk.Reset()
		}
		src, dst := rec.Hdr.Packed()
		blk.Append(rec.Time, rec.Hdr.TotalLen, src, dst)
	}
	if blk.Len() > 0 {
		if err := w.AddBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(trace.Summary{Packets: int64(len(recs)), Duration: dur}); err != nil {
		t.Fatal(err)
	}
	r, err := tracestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestReplaySourceResumesExactly(t *testing.T) {
	recs, _, err := trace.GenerateAll(testBase(5))
	if err != nil {
		t.Fatal(err)
	}
	r := storeFromRecords(t, recs, tEpoch)
	src := &ReplaySource{Reader: r, Duration: tEpoch, Epochs: 2}
	full := flatten(t, src, Cursor{})
	if len(full) != 2*len(recs) {
		t.Fatalf("replayed %d packets from %d records over 2 epochs", len(full), len(recs))
	}
	for _, cur := range []Cursor{{0, 5}, {0, int64(len(recs))}, {1, 0}, {1, int64(len(recs)) - 1}} {
		skip := cur.Packets + cur.Epoch*int64(len(recs))
		if got := flatten(t, src, cur); !reflect.DeepEqual(full[skip:], got) {
			t.Fatalf("cursor %+v: resumed replay is not the exact suffix", cur)
		}
	}

	// Duration 0 defaults to the store's recorded trace duration.
	def := &ReplaySource{Reader: r, Epochs: 1}
	if got := flatten(t, def, Cursor{}); !reflect.DeepEqual(full[:len(recs)], got) {
		t.Fatal("default duration does not replay the stored epoch")
	}

	noReader := &ReplaySource{Duration: 1}
	if err := noReader.Stream(context.Background(), Cursor{}, nil); !errors.Is(err, ErrPermanent) {
		t.Fatalf("reader-less replay: %v", err)
	}
	empty := &ReplaySource{Reader: storeFromRecords(t, nil, 1), Duration: 1}
	if err := empty.Stream(context.Background(), Cursor{}, nil); !errors.Is(err, ErrPermanent) {
		t.Fatalf("empty replay: %v", err)
	}
	short := &ReplaySource{Reader: r, Duration: recs[len(recs)-1].Time / 2}
	if err := short.Stream(context.Background(), Cursor{}, nil); !errors.Is(err, ErrPermanent) {
		t.Fatalf("short duration: %v", err)
	}
	far := &ReplaySource{Reader: r, Duration: tEpoch}
	if err := far.Stream(context.Background(), Cursor{Packets: int64(len(recs)) + 1}, nil); !errors.Is(err, ErrPermanent) {
		t.Fatalf("cursor past the epoch: %v", err)
	}
}

// A stored trace far larger than the ingest budget must replay to completion
// under backpressure: the source's resident state is one block plus one
// segment of the mapping, not the trace, so a 32-block budget never
// deadlocks, and every charged byte and pooled block is returned by the end.
func TestReplayStoreLargerThanBudget(t *testing.T) {
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	cfg := testBase(29)
	cfg.Lambda = 400
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := storeFromRecords(t, recs, tEpoch)
	budgetBytes := 32 * trace.BlockCost(trace.BlockSize)
	if stored := r.Packets() * 26; stored <= budgetBytes {
		t.Fatalf("fixture too small: %d stored bytes vs %d budget", stored, budgetBytes)
	}
	budget, err := membudget.New(budgetBytes)
	if err != nil {
		t.Fatal(err)
	}
	var reps []Report
	link, err := NewLink(LinkConfig{
		Name:     "bounded-replay",
		Source:   &ReplaySource{Reader: r, Duration: tEpoch, Epochs: 2},
		Pipeline: testPipeCfg(&reps),
		Budget:   budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.Packets != 2*int64(len(recs)) {
		t.Fatalf("measured %d packets, want %d", st.Packets, 2*len(recs))
	}
	if st.ShedPackets != 0 {
		t.Fatalf("shed %d packets without -shed", st.ShedPackets)
	}
	if got := budget.Used(); got != 0 {
		t.Fatalf("budget holds %d bytes after a clean run", got)
	}
	if budget.Peak() == 0 || budget.Peak() > budgetBytes {
		t.Fatalf("budget peak %d outside (0, %d]", budget.Peak(), budgetBytes)
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

func TestLinkBoundedRunDrainsAndCheckpoints(t *testing.T) {
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	store, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var reps []Report
	link, err := NewLink(LinkConfig{
		Name:     "l0",
		Source:   &SyntheticSource{Base: testBase(21), Epochs: 2},
		Pipeline: testPipeCfg(&reps),
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The link's reports must be exactly what a direct feed produces.
	blocks := ownedBlocks(t, &SyntheticSource{Base: testBase(21), Epochs: 2})
	var golden []Report
	pg, err := NewPipeline(testPipeCfg(&golden))
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, pg, blocks)
	if err := pg.Drain(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reps, golden) {
		t.Fatal("link reports differ from a direct pipeline feed")
	}

	st := link.Stats()
	if st.FreshStarts != 1 || st.Restores != 0 {
		t.Fatalf("first run stats: %+v", st)
	}
	if st.Checkpoints < 2 {
		t.Fatalf("only %d checkpoints over %d intervals", st.Checkpoints, len(reps))
	}
	if want := countPackets(blocks); st.Packets != want {
		t.Fatalf("link counted %d packets, stream had %d", st.Packets, want)
	}
	putAll(blocks)

	// Re-running against the final checkpoint resumes at end-of-stream:
	// no duplicate reports, one restore, still a clean stop.
	n := len(reps)
	if err := link.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(reps) != n {
		t.Fatalf("resumed run re-emitted %d reports", len(reps)-n)
	}
	if st := link.Stats(); st.Restores != 1 {
		t.Fatalf("second run stats: %+v", st)
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// denyBudget refuses every TryReserve — the maximal-shedding harness.
type denyBudget struct{}

func (denyBudget) Reserve(context.Context, int64) error { return nil }
func (denyBudget) TryReserve(int64) bool                { return false }
func (denyBudget) Release(int64)                        {}

func TestLinkShedAccountingIsExact(t *testing.T) {
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	blocks := ownedBlocks(t, &SyntheticSource{Base: testBase(9), Epochs: 1})
	total := countPackets(blocks)
	nBlocks := int64(len(blocks))
	putAll(blocks)

	var reps []Report
	link, err := NewLink(LinkConfig{
		Name:     "shed",
		Source:   &SyntheticSource{Base: testBase(9), Epochs: 1},
		Pipeline: testPipeCfg(&reps),
		Budget:   denyBudget{},
		Shed:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.Packets != 0 || len(reps) != 0 {
		t.Fatalf("fully-shed run still measured: %+v, %d reports", st, len(reps))
	}
	if st.ShedPackets != total || st.ShedBlocks != nBlocks {
		t.Fatalf("shed %d packets / %d blocks, produced %d / %d", st.ShedPackets, st.ShedBlocks, total, nBlocks)
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

func TestLinkCancellationDrainsAndCheckpoints(t *testing.T) {
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	store, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var reps []Report
	cfg := testPipeCfg(&reps)
	inner := cfg.OnInterval
	cfg.OnInterval = func(r Report) error {
		if err := inner(r); err != nil {
			return err
		}
		if len(reps) == 3 {
			cancel() // SIGTERM mid-stream
		}
		return nil
	}
	link, err := NewLink(LinkConfig{
		Name:     "term",
		Source:   &SyntheticSource{Base: testBase(17), GenWorkers: 2}, // unbounded
		Pipeline: cfg,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = link.Run(ctx)
	if err == nil || Classify(err) != Canceled {
		t.Fatalf("cancelled run returned %v", err)
	}
	if len(reps) < 3 {
		t.Fatalf("only %d reports before cancellation", len(reps))
	}
	if st := link.Stats(); st.Checkpoints < 1 {
		t.Fatalf("no final checkpoint on drain: %+v", st)
	}
	// The final checkpoint must be loadable and carry a usable cursor.
	secs, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	var dummy []Report
	p, err := NewPipeline(testPipeCfg(&dummy))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(secs); err != nil {
		t.Fatalf("final checkpoint does not restore: %v", err)
	}
	cur, err := DecodeCursor(secs)
	if err != nil || (cur == Cursor{}) {
		t.Fatalf("final cursor %+v, err %v", cur, err)
	}

	// Under the supervisor, cancellation is a clean stop.
	if err := newTestSupervisorReal(t).Run(ctx, link.Run); err != nil {
		t.Fatalf("supervisor turned cancellation into %v", err)
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// newTestSupervisorReal builds a supervisor on the real clock with
// microsecond-scale backoff, for end-to-end link tests.
func newTestSupervisorReal(t *testing.T) *Supervisor {
	t.Helper()
	b, err := NewBackoff(200*time.Microsecond, 2*time.Millisecond, 1, "test")
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBreaker(25, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Supervisor{Name: "test", Backoff: b, Breaker: br}
}
