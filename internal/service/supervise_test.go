package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock drives supervisor policy tests without real sleeps: Sleep
// advances the clock instantly and records each delay.
type fakeClock struct {
	t      time.Time
	slept  []time.Duration
	cancel func() // when set, called after cancelAt sleeps
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.t = c.t.Add(d)
	c.slept = append(c.slept, d)
	return nil
}

func newTestSupervisor(t *testing.T, clk *fakeClock, maxRestarts int, window time.Duration) *Supervisor {
	t.Helper()
	bo, err := NewBackoff(10*time.Millisecond, 1*time.Second, 1, "link0")
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBreaker(maxRestarts, window, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	return &Supervisor{Name: "link0", Backoff: bo, Breaker: br, Now: clk.now, Sleep: clk.sleep}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Canceled},
		{context.Canceled, Canceled},
		{fmt.Errorf("x: %w", context.DeadlineExceeded), Canceled},
		{MarkPermanent(errors.New("bad config")), Permanent},
		{fmt.Errorf("wrap: %w", MarkPermanent(errors.New("x"))), Permanent},
		{errors.New("io hiccup"), Transient},
		{&PanicError{Value: "boom"}, Transient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if MarkPermanent(nil) != nil {
		t.Error("MarkPermanent(nil) != nil")
	}
	inner := errors.New("cause")
	if !errors.Is(MarkPermanent(fmt.Errorf("x: %w", inner)), inner) {
		t.Error("MarkPermanent hides the cause from errors.Is")
	}
}

func TestSupervisorRestartsUntilSuccess(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := newTestSupervisor(t, clk, 10, time.Hour)
	runs := 0
	var events []Event
	s.OnEvent = func(ev Event) { events = append(events, ev) }
	err := s.Run(context.Background(), func(context.Context) error {
		runs++
		if runs < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if runs != 4 {
		t.Fatalf("runs = %d, want 4", runs)
	}
	if len(clk.slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(clk.slept))
	}
	// Exponential doubling under jitter: delay i lies in [0.5, 1) × base·2^i.
	base := 10 * time.Millisecond
	for i, d := range clk.slept {
		nominal := base << i
		if d < nominal/2 || d >= nominal {
			t.Errorf("delay %d = %v outside [%v, %v)", i, d, nominal/2, nominal)
		}
	}
	if len(events) != 4 || events[3].Class != Canceled {
		t.Fatalf("events = %+v", events)
	}
}

func TestSupervisorBackoffIsDeterministic(t *testing.T) {
	seq := func() []time.Duration {
		clk := &fakeClock{t: time.Unix(0, 0)}
		s := newTestSupervisor(t, clk, 10, time.Hour)
		runs := 0
		s.Run(context.Background(), func(context.Context) error {
			if runs++; runs < 6 {
				return errors.New("x")
			}
			return nil
		})
		return clk.slept
	}
	a, b := seq(), seq()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("delay sequences %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different delays: %v vs %v", a, b)
		}
	}
}

func TestSupervisorContainsPanics(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := newTestSupervisor(t, clk, 10, time.Hour)
	runs := 0
	var contained *PanicError
	s.OnEvent = func(ev Event) {
		var pe *PanicError
		if errors.As(ev.Err, &pe) {
			contained = pe
		}
	}
	err := s.Run(context.Background(), func(context.Context) error {
		if runs++; runs == 1 {
			panic("worker exploded")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (panic contained and restarted)", runs)
	}
	if contained == nil || contained.Value != "worker exploded" || len(contained.Stack) == 0 {
		t.Fatalf("contained panic = %+v", contained)
	}
}

func TestSupervisorBreakerTrips(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := newTestSupervisor(t, clk, 3, time.Hour)
	runs := 0
	err := s.Run(context.Background(), func(context.Context) error {
		runs++
		return errors.New("always failing")
	})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want wrapped ErrCircuitOpen", err)
	}
	if Classify(err) != Transient {
		// The terminal error is what the daemon exits with; its class is not
		// load-bearing, but it must never read as a clean cancellation.
		t.Fatalf("terminal error classifies as %v", Classify(err))
	}
	// 3 allowed restarts => runs 1..4 executed (the 4th failure trips).
	if runs != 4 {
		t.Fatalf("runs = %d, want 4", runs)
	}
}

func TestSupervisorBreakerWindowSlides(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	// 2 restarts per 50ms window; failures spaced 40ms apart by sleeps
	// larger than the backoff... use explicit clock stepping instead.
	br, err := NewBreaker(2, 50*time.Millisecond, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	if !br.Allow() || !br.Allow() {
		t.Fatal("first two events must be allowed")
	}
	if br.Allow() {
		t.Fatal("third event inside the window must trip")
	}
	clk.t = clk.t.Add(60 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("event after the window slid must be allowed")
	}
}

func TestSupervisorPermanentStops(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := newTestSupervisor(t, clk, 10, time.Hour)
	runs := 0
	cause := errors.New("bad input file")
	err := s.Run(context.Background(), func(context.Context) error {
		runs++
		return MarkPermanent(cause)
	})
	if runs != 1 {
		t.Fatalf("permanent failure restarted: %d runs", runs)
	}
	if !errors.Is(err, ErrPermanent) || !errors.Is(err, cause) {
		t.Fatalf("err = %v", err)
	}
}

func TestSupervisorCancellationIsClean(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := newTestSupervisor(t, clk, 10, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	err := s.Run(ctx, func(c context.Context) error {
		cancel()
		return fmt.Errorf("ingest: %w", context.Canceled)
	})
	if err != nil {
		t.Fatalf("cancelled run returned %v, want nil", err)
	}
	// A transient error that races cancellation is also a clean stop.
	ctx2, cancel2 := context.WithCancel(context.Background())
	err = s.Run(ctx2, func(c context.Context) error {
		cancel2()
		return errors.New("crash during shutdown")
	})
	if err != nil {
		t.Fatalf("raced cancellation returned %v, want nil", err)
	}
}

func TestSupervisorHealthyRunResetsBackoff(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := newTestSupervisor(t, clk, 100, time.Hour)
	s.HealthyAfter = time.Minute
	runs := 0
	err := s.Run(context.Background(), func(context.Context) error {
		runs++
		switch {
		case runs < 4:
			return errors.New("early crash")
		case runs == 4:
			clk.t = clk.t.Add(2 * time.Minute) // a long healthy run, then a crash
			return errors.New("late crash")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delay after the healthy run restarts from base (jittered to [5,10)ms),
	// not from the escalated schedule (which by run 4 is ≥ 40ms nominal).
	last := clk.slept[len(clk.slept)-1]
	if last >= 10*time.Millisecond {
		t.Fatalf("post-healthy delay %v did not reset to base", last)
	}
}

func TestRetry(t *testing.T) {
	mkBackoff := func() *Backoff {
		b, err := NewBackoff(time.Nanosecond, time.Nanosecond, 1, "retry")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	attempts := 0
	err := Retry(context.Background(), 5, mkBackoff(), func(context.Context) error {
		if attempts++; attempts < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Retry = %v after %d attempts", err, attempts)
	}

	attempts = 0
	err = Retry(context.Background(), 3, mkBackoff(), func(context.Context) error {
		attempts++
		return errors.New("always")
	})
	if err == nil || attempts != 3 {
		t.Fatalf("exhausted Retry = %v after %d attempts", err, attempts)
	}

	attempts = 0
	cause := MarkPermanent(errors.New("bad"))
	err = Retry(context.Background(), 5, mkBackoff(), func(context.Context) error {
		attempts++
		return cause
	})
	if attempts != 1 || !errors.Is(err, ErrPermanent) {
		t.Fatalf("permanent Retry = %v after %d attempts", err, attempts)
	}
}
