package service

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/snapshot"
	"repro/internal/timeseries"
)

// Section types of a pipeline checkpoint. secCursor is written by the Link
// (ingest position), everything else by the Pipeline.
const (
	secMeta   = 1 // format version + config fingerprint
	secState  = 2 // interval cursor, stream clock, carried fit/prediction
	secBinner = 3 // current interval's rate bins
	secMeans  = 4 // sliding window of interval means
	secAsm    = 5 // per-definition assembler states
	secCursor = 6 // ingest cursor (owned by the Link)
)

// ckptVersion guards the section payload layout; bump on change.
const ckptVersion = 1

// Snapshot captures the pipeline's complete resumable state as checkpoint
// sections. Call it between AddBlock calls (the state is block-consistent,
// not packet-consistent).
func (p *Pipeline) Snapshot() []snapshot.Section {
	var meta snapshot.Enc
	meta.U64(ckptVersion)
	meta.F64(p.cfg.IntervalSec)
	meta.F64(p.cfg.Delta)
	meta.I64(int64(p.cfg.Window))
	meta.F64(p.cfg.Timeout)
	meta.F64(p.cfg.Z)
	meta.I64(int64(p.cfg.MinRun))
	meta.I64(int64(p.cfg.PredictOrder))
	meta.I64(int64(len(p.cfg.Defs)))
	for _, d := range p.cfg.Defs {
		meta.I64(int64(d))
	}

	var st snapshot.Enc
	st.I64(int64(p.cur))
	st.Bool(p.started)
	st.F64(p.lastTime)
	st.I64(p.pktsCur)
	st.F64(p.detMu)
	st.F64(p.detSigma)
	st.F64(p.predNext)
	st.Bool(p.predHas)

	bs := p.bin.State()
	var bin snapshot.Enc
	bin.F64(bs.Duration)
	bin.F64(bs.Delta)
	bin.F64s(bs.Bits)

	var means snapshot.Enc
	means.F64s(p.means.Values())

	var asm snapshot.Enc
	states := p.meas.SnapshotStates()
	asm.I64(int64(len(states)))
	for _, a := range states {
		encodeAssembler(&asm, a)
	}

	return []snapshot.Section{
		{Type: secMeta, Data: meta.Bytes()},
		{Type: secState, Data: st.Bytes()},
		{Type: secBinner, Data: bin.Bytes()},
		{Type: secMeans, Data: means.Bytes()},
		{Type: secAsm, Data: asm.Bytes()},
	}
}

func encodeAssembler(e *snapshot.Enc, a flow.AssemblerState) {
	e.Bool(a.Started)
	e.F64(a.LastTime)
	e.I64(int64(len(a.Entries)))
	for _, en := range a.Entries {
		e.U64(en.KeyA)
		e.U64(en.KeyB)
		e.F64(en.Start)
		e.F64(en.Last)
		e.I64(en.Bytes)
		e.I64(en.Packets)
	}
	e.I64(int64(len(a.Flows)))
	for _, f := range a.Flows {
		e.F64(f.Start)
		e.F64(f.End)
		e.I64(f.Bytes)
		e.I64(int64(f.Packets))
	}
	e.I64(int64(len(a.Discarded)))
	for _, d := range a.Discarded {
		e.F64(d.Time)
		e.F64(d.Bits)
	}
}

func decodeAssembler(d *snapshot.Dec) flow.AssemblerState {
	var a flow.AssemblerState
	a.Started = d.Bool()
	a.LastTime = d.F64()
	n := d.I64()
	if d.Err() != nil || n < 0 || n > int64(d.Rest()) {
		return a
	}
	for i := int64(0); i < n && d.Err() == nil; i++ {
		a.Entries = append(a.Entries, flow.FlowEntry{
			KeyA: d.U64(), KeyB: d.U64(),
			Start: d.F64(), Last: d.F64(),
			Bytes: d.I64(), Packets: d.I64(),
		})
	}
	n = d.I64()
	if d.Err() != nil || n < 0 || n > int64(d.Rest()) {
		return a
	}
	for i := int64(0); i < n && d.Err() == nil; i++ {
		a.Flows = append(a.Flows, flow.Flow{
			Start: d.F64(), End: d.F64(),
			Bytes: d.I64(), Packets: int(d.I64()),
		})
	}
	n = d.I64()
	if d.Err() != nil || n < 0 || n > int64(d.Rest()) {
		return a
	}
	for i := int64(0); i < n && d.Err() == nil; i++ {
		a.Discarded = append(a.Discarded, flow.DiscardedPacket{Time: d.F64(), Bits: d.F64()})
	}
	return a
}

// sectionByType finds one section, nil when absent.
func sectionByType(secs []snapshot.Section, typ uint32) []byte {
	for _, s := range secs {
		if s.Type == typ {
			return s.Data
		}
	}
	return nil
}

// Restore replaces the pipeline's state with a checkpoint previously
// captured by Snapshot. The checkpoint's config fingerprint must match the
// pipeline's configuration — an operator who changed the interval geometry
// gets a tagged error (start fresh), never silently mixed state. On any
// error the pipeline is left freshly reset.
func (p *Pipeline) Restore(secs []snapshot.Section) error {
	fail := func(err error) error {
		p.resetAll()
		return err
	}
	meta := snapshot.NewDec(sectionByType(secs, secMeta))
	if v := meta.U64(); v != ckptVersion {
		return fail(fmt.Errorf("service: checkpoint version %d, want %d: %w", v, ckptVersion, snapshot.ErrCorrupt))
	}
	mismatch := func(what string) error {
		return fail(fmt.Errorf("service: checkpoint %s does not match the running configuration", what))
	}
	if meta.F64() != p.cfg.IntervalSec {
		return mismatch("interval")
	}
	if meta.F64() != p.cfg.Delta {
		return mismatch("delta")
	}
	if meta.I64() != int64(p.cfg.Window) {
		return mismatch("window")
	}
	if meta.F64() != p.cfg.Timeout {
		return mismatch("timeout")
	}
	if meta.F64() != p.cfg.Z {
		return mismatch("z")
	}
	if meta.I64() != int64(p.cfg.MinRun) {
		return mismatch("minrun")
	}
	if meta.I64() != int64(p.cfg.PredictOrder) {
		return mismatch("predictor order")
	}
	nd := meta.I64()
	if meta.Err() != nil {
		return fail(fmt.Errorf("service: checkpoint meta: %w", meta.Err()))
	}
	if nd != int64(len(p.cfg.Defs)) {
		return mismatch("definition count")
	}
	for _, def := range p.cfg.Defs {
		if meta.I64() != int64(def) {
			return mismatch("definitions")
		}
	}
	if meta.Err() != nil {
		return fail(fmt.Errorf("service: checkpoint meta: %w", meta.Err()))
	}

	st := snapshot.NewDec(sectionByType(secs, secState))
	cur := st.I64()
	started := st.Bool()
	lastTime := st.F64()
	pktsCur := st.I64()
	detMu, detSigma := st.F64(), st.F64()
	predNext := st.F64()
	predHas := st.Bool()
	if st.Err() != nil || cur < 0 || pktsCur < 0 {
		return fail(fmt.Errorf("service: checkpoint state section invalid: %w", snapshot.ErrCorrupt))
	}

	bin := snapshot.NewDec(sectionByType(secs, secBinner))
	var bst struct{ dur, delta float64 }
	bst.dur, bst.delta = bin.F64(), bin.F64()
	bits := bin.F64s()
	if bin.Err() != nil {
		return fail(fmt.Errorf("service: checkpoint binner section: %w", bin.Err()))
	}

	means := snapshot.NewDec(sectionByType(secs, secMeans))
	meanVals := means.F64s()
	if means.Err() != nil {
		return fail(fmt.Errorf("service: checkpoint means section: %w", means.Err()))
	}

	asm := snapshot.NewDec(sectionByType(secs, secAsm))
	na := asm.I64()
	if asm.Err() != nil || na != int64(len(p.cfg.Defs)) {
		return fail(fmt.Errorf("service: checkpoint has %d assembler states, want %d: %w", na, len(p.cfg.Defs), snapshot.ErrCorrupt))
	}
	states := make([]flow.AssemblerState, na)
	for i := range states {
		states[i] = decodeAssembler(asm)
	}
	if asm.Err() != nil {
		return fail(fmt.Errorf("service: checkpoint assembler section: %w", asm.Err()))
	}

	// All sections parsed — apply.
	if err := p.bin.RestoreState(timeseries.BinnerState{Duration: bst.dur, Delta: bst.delta, Bits: bits}); err != nil {
		return fail(fmt.Errorf("service: %w", err))
	}
	if err := p.means.RestoreValues(meanVals); err != nil {
		return fail(fmt.Errorf("service: %w", err))
	}
	if err := p.meas.RestoreStates(states); err != nil {
		return fail(err)
	}
	p.cur = int(cur)
	p.started = started
	p.lastTime = lastTime
	p.pktsCur = pktsCur
	p.detMu, p.detSigma = detMu, detSigma
	p.predNext, p.predHas = predNext, predHas
	return nil
}

// resetAll returns the pipeline to its fresh state.
func (p *Pipeline) resetAll() {
	p.meas.Reset()
	p.bin.Reinit(p.cfg.IntervalSec, p.cfg.Delta)
	p.means.RestoreValues(nil)
	p.cur = 0
	p.started = false
	p.lastTime = 0
	p.pktsCur = 0
	p.detMu, p.detSigma = 0, 0
	p.predNext, p.predHas = 0, false
}

// EncodeCursor builds the Link's ingest-cursor section.
func EncodeCursor(c Cursor) snapshot.Section {
	var e snapshot.Enc
	e.I64(c.Epoch)
	e.I64(c.Packets)
	return snapshot.Section{Type: secCursor, Data: e.Bytes()}
}

// DecodeCursor reads the ingest-cursor section (zero cursor when absent).
func DecodeCursor(secs []snapshot.Section) (Cursor, error) {
	data := sectionByType(secs, secCursor)
	if data == nil {
		return Cursor{}, nil
	}
	d := snapshot.NewDec(data)
	c := Cursor{Epoch: d.I64(), Packets: d.I64()}
	if d.Err() != nil || c.Epoch < 0 || c.Packets < 0 {
		return Cursor{}, fmt.Errorf("service: checkpoint cursor invalid: %w", snapshot.ErrCorrupt)
	}
	return c, nil
}
