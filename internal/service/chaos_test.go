package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// errInjectedIngest is the sentinel for test-injected ingest failures, so
// assertions can tell injected failures from real bugs shaken loose.
var errInjectedIngest = errors.New("chaos: injected ingest failure")

// hookSource interposes a hook before every block delivery — the crash/
// fault injection point of the chaos suite.
type hookSource struct {
	inner BlockSource
	hook  func(epoch int64, blk *trace.Block) error // may error or panic
}

func (h *hookSource) Stream(ctx context.Context, cur Cursor, fn func(int64, *trace.Block) error) error {
	return h.inner.Stream(ctx, cur, func(e int64, b *trace.Block) error {
		if err := h.hook(e, b); err != nil {
			return err
		}
		return fn(e, b)
	})
}

// goldenReports runs the stream uninterrupted through a plain pipeline.
func goldenReports(t *testing.T, seed, epochs int64) []Report {
	t.Helper()
	blocks := ownedBlocks(t, &SyntheticSource{Base: testBase(seed), Epochs: epochs})
	defer putAll(blocks)
	var reps []Report
	p, err := NewPipeline(testPipeCfg(&reps))
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, p, blocks)
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	return reps
}

// verifyContinuity checks the chaos contract: every golden interval ends up
// reported bit-identically to the uninterrupted run, gap-free. Re-emissions
// of the post-checkpoint replay window must equal the golden report too. A
// shutdown drain may additionally flush a prefix of an interval as a
// Partial report — that interval must still be re-covered in full later, so
// partial flushes are checked for consistency but don't count as coverage.
func verifyContinuity(t *testing.T, golden, got []Report) {
	t.Helper()
	seen := make(map[int]bool)
	for _, r := range got {
		if r.Index < 0 || r.Index >= len(golden) {
			t.Fatalf("report for interval %d outside the golden range", r.Index)
		}
		want := golden[r.Index]
		if r.Partial && !want.Partial {
			// A drain flushed this interval early; it must be a plausible
			// prefix of the golden interval, and full coverage must come
			// from a later re-emission.
			if r.Start != want.Start || r.Packets > want.Packets {
				t.Fatalf("interval %d: drain flush %+v is not a prefix of the golden interval %+v", r.Index, r, want)
			}
			continue
		}
		if !reflect.DeepEqual(want, r) {
			t.Fatalf("interval %d diverged from the golden run:\n got %+v\nwant %+v", r.Index, r, want)
		}
		seen[r.Index] = true
	}
	for i := range golden {
		if !seen[i] {
			t.Fatalf("interval %d was never reported in full", i)
		}
	}
}

// The core chaos contract: a supervised link hit by injected producer
// errors, producer panics and consumer panics restarts from its checkpoints
// and still reports every interval bit-identically to the uninterrupted run
// — with zero goroutine/block leaks and zero non-injected failures.
func TestChaosSupervisedRestartsKeepContinuity(t *testing.T) {
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	const epochs = 3
	golden := goldenReports(t, 31, epochs)

	// Crash schedule over a cumulative block counter that keeps counting
	// across restarts, so each fault fires exactly once. The full stream is
	// ~24 blocks; restarts replay at most one checkpoint window, so all
	// three points are reached before the final clean pass.
	var blocksSeen atomic.Int64
	crashes := map[int64]string{4: "error", 9: "panic", 15: "error"}
	src := &hookSource{
		inner: &SyntheticSource{Base: testBase(31), Epochs: epochs},
		hook: func(int64, *trace.Block) error {
			switch crashes[blocksSeen.Add(1)] {
			case "error":
				return errInjectedIngest
			case "panic":
				panic("chaos: injected producer panic")
			}
			return nil
		},
	}

	var mu sync.Mutex
	var reps []Report
	var consumerPanicked bool
	cfg := PipelineConfig{
		IntervalSec: tInterval,
		Delta:       tDelta,
		Window:      8,
		OnInterval: func(r Report) error {
			mu.Lock()
			reps = append(reps, r)
			n := len(reps)
			mu.Unlock()
			if n == 6 && !consumerPanicked {
				consumerPanicked = true
				panic("chaos: injected consumer panic")
			}
			return nil
		},
	}
	store, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLink(LinkConfig{Name: "chaos", Source: src, Pipeline: cfg, Store: store})
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	sup := newTestSupervisorReal(t)
	sup.OnEvent = func(ev Event) { events = append(events, ev) }
	if err := sup.Run(context.Background(), link.Run); err != nil {
		t.Fatalf("supervision ended in failure: %v", err)
	}

	// Every restart must trace back to an injected fault — no secondary
	// failures shaken loose by the unwinding.
	transients := 0
	for _, ev := range events {
		if ev.Class != Transient {
			continue
		}
		transients++
		var pe *PanicError
		if !errors.Is(ev.Err, errInjectedIngest) && !errors.As(ev.Err, &pe) {
			t.Fatalf("non-injected failure: %v", ev.Err)
		}
	}
	if want := len(crashes) + 1; transients != want {
		t.Fatalf("%d transient events, want %d (3 producer faults + 1 consumer panic)", transients, want)
	}
	st := link.Stats()
	if st.Restores == 0 {
		t.Fatal("no run ever resumed from a checkpoint")
	}
	verifyContinuity(t, golden, reps)
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// Random fault storms off the faultinject harness (stage errors + delays,
// with and without truncation) across seeds: the supervised link must never
// panic to the top, never leak, and any terminal failure must be injected
// (or the breaker giving up on injected failures) — never a secondary bug.
func TestChaosFaultStormNoNonInjectedFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fault storm in -short mode")
	}
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	for seed := int64(1); seed <= 4; seed++ {
		// Truncation faults tamper with the packet stream itself, which
		// invalidates packet-count cursors — run them without a store.
		// The checkpointing combo keeps the stream intact.
		for _, combo := range []struct {
			name  string
			trunc float64
			store bool
		}{
			{"errors+delays+checkpoints", 0, true},
			{"errors+truncation", 0.05, false},
		} {
			in, err := faultinject.New(faultinject.Config{
				Seed:      seed,
				ErrProb:   0.03,
				TruncProb: combo.trunc,
				DelayProb: 0.05,
				Delay:     100 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			var store *snapshot.Store
			if combo.store {
				if store, err = snapshot.OpenStore(t.TempDir()); err != nil {
					t.Fatal(err)
				}
			}
			var reps []Report
			cfg := testPipeCfg(&reps)
			inner := &SyntheticSource{Base: testBase(100 + seed), Epochs: 2}
			wrapped := in.WrapBlockFnCtx(ctx, "ingest", func(blk *trace.Block) error { return nil })
			src := &hookSource{inner: inner, hook: func(_ int64, blk *trace.Block) error {
				return wrapped(blk)
			}}
			link, err := NewLink(LinkConfig{Name: combo.name, Source: src, Pipeline: cfg, Store: store})
			if err != nil {
				t.Fatal(err)
			}
			err = sup100(t).Run(ctx, link.Run)
			if err != nil && !errors.Is(err, faultinject.ErrInjected) && !errors.Is(err, ErrCircuitOpen) {
				t.Fatalf("seed %d %s: non-injected failure %v", seed, combo.name, err)
			}
			if err == nil && len(reps) == 0 {
				t.Fatalf("seed %d %s: clean completion with no reports", seed, combo.name)
			}
		}
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

func sup100(t *testing.T) *Supervisor {
	t.Helper()
	b, err := NewBackoff(100*time.Microsecond, time.Millisecond, 2, "storm")
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBreaker(100, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Supervisor{Name: "storm", Backoff: b, Breaker: br}
}

// newestCheckpoint returns the path of the newest checkpoint file.
func newestCheckpoint(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no checkpoint files")
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1])
}

// kill -9 mid-write: a torn tail on the newest checkpoint must fall back to
// the previous generation, and the restarted link re-covers the lost window
// bit-identically — at most one checkpoint window of re-work, zero loss.
func TestChaosTornCheckpointFallsBackOneGeneration(t *testing.T) {
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	const epochs = 3
	golden := goldenReports(t, 41, epochs)
	dir := t.TempDir()
	store, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run partway (several checkpoints), then hard-stop.
	ctx, cancel := context.WithCancel(context.Background())
	var reps1 []Report
	cfg := testPipeCfg(&reps1)
	inner := cfg.OnInterval
	cfg.OnInterval = func(r Report) error {
		if err := inner(r); err != nil {
			return err
		}
		if len(reps1) == 5 {
			cancel()
		}
		return nil
	}
	link1, err := NewLink(LinkConfig{
		Name:     "phase1",
		Source:   &SyntheticSource{Base: testBase(41), Epochs: epochs},
		Pipeline: cfg,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link1.Run(ctx); Classify(err) != Canceled {
		t.Fatalf("phase 1 ended with %v", err)
	}
	cancel()
	if st := link1.Stats(); st.Checkpoints < 2 {
		t.Fatalf("phase 1 wrote only %d checkpoints", st.Checkpoints)
	}

	// Tear the newest checkpoint's tail — the write the crash interrupted.
	newest := newestCheckpoint(t, dir)
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, fi.Size()-9); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh process must fall back to the previous generation
	// and finish the stream with full continuity.
	store2, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var reps2 []Report
	link2, err := NewLink(LinkConfig{
		Name:     "phase2",
		Source:   &SyntheticSource{Base: testBase(41), Epochs: epochs},
		Pipeline: testPipeCfg(&reps2),
		Store:    store2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := link2.Stats(); st.Restores != 1 || st.FreshStarts != 0 {
		t.Fatalf("phase 2 stats: %+v", st)
	}
	if reps2[0].Index > reps1[len(reps1)-1].Index+1 {
		t.Fatalf("recovery gap: phase 1 ended at interval %d, phase 2 resumed at %d",
			reps1[len(reps1)-1].Index, reps2[0].Index)
	}
	verifyContinuity(t, golden, append(append([]Report(nil), reps1...), reps2...))
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}

// When every checkpoint generation is destroyed, the link must degrade to a
// fresh start — full recompute, correct output, never a refusal to come up.
func TestChaosAllCheckpointsCorruptFallsBackToFreshStart(t *testing.T) {
	baseBlocks, baseGoroutines := trace.LiveBlocks(), runtime.NumGoroutine()
	const epochs = 2
	golden := goldenReports(t, 43, epochs)
	dir := t.TempDir()
	store, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var reps1 []Report
	cfg := testPipeCfg(&reps1)
	inner := cfg.OnInterval
	cfg.OnInterval = func(r Report) error {
		if err := inner(r); err != nil {
			return err
		}
		if len(reps1) == 3 {
			cancel()
		}
		return nil
	}
	link1, err := NewLink(LinkConfig{
		Name:     "c1",
		Source:   &SyntheticSource{Base: testBase(43), Epochs: epochs},
		Pipeline: cfg,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link1.Run(ctx); Classify(err) != Canceled {
		t.Fatalf("phase 1 ended with %v", err)
	}
	cancel()

	// Scribble zeros over every generation.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), make([]byte, 64), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	store2, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var reps2 []Report
	link2, err := NewLink(LinkConfig{
		Name:     "c2",
		Source:   &SyntheticSource{Base: testBase(43), Epochs: epochs},
		Pipeline: testPipeCfg(&reps2),
		Store:    store2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := link2.Stats(); st.FreshStarts != 1 || st.Restores != 0 {
		t.Fatalf("phase 2 stats: %+v", st)
	}
	// A fresh start recomputes everything from interval 0.
	if !reflect.DeepEqual(reps2, golden) {
		t.Fatal("fresh-start recompute diverged from the golden run")
	}
	checkNoLeaks(t, baseBlocks, baseGoroutines)
}
