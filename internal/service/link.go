package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/membudget"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// LinkConfig wires one link's ingest, pipeline, budget and checkpointing.
type LinkConfig struct {
	// Name labels the link in events and errors.
	Name string
	// Source is the packet stream (required).
	Source BlockSource
	// Pipeline sizes the resident measurement state.
	Pipeline PipelineConfig
	// Store persists checkpoints (nil = no checkpointing: a restart loses
	// all resident state).
	Store *snapshot.Store
	// CheckpointEvery is the stream-time between periodic checkpoints in
	// seconds (default: one analysis interval). A crash loses at most this
	// much re-ingestable stream — the declared loss window.
	CheckpointEvery float64
	// Budget bounds the resident bytes of queued ingest blocks (nil =
	// unlimited). Producers block when it fills (backpressure)…
	Budget membudget.Reserver
	// …unless Shed is set, in which case blocks that do not fit are dropped
	// with exact accounting instead of stalling the source.
	Shed bool
	// QueueLen is the ingest queue depth in blocks (default 4).
	QueueLen int
}

// LinkStats are a link's ingest counters, readable while it runs.
type LinkStats struct {
	Blocks      int64 // blocks measured
	Packets     int64 // packets measured
	ShedBlocks  int64 // blocks dropped under memory pressure
	ShedPackets int64 // packets dropped under memory pressure
	Checkpoints int64 // checkpoints written
	Restores    int64 // runs resumed from a checkpoint
	FreshStarts int64 // runs started without usable checkpoint state
}

// Link runs one supervised ingest-measure pipeline attempt per Run call:
// restore from the last checkpoint, stream blocks through the pipeline with
// budget-bounded queueing, checkpoint periodically, and on cancellation
// drain — flush the partial interval and write a final checkpoint. Run is
// the function handed to Supervisor.Run.
type Link struct {
	cfg LinkConfig

	blocks      atomic.Int64
	packets     atomic.Int64
	shedBlocks  atomic.Int64
	shedPackets atomic.Int64
	checkpoints atomic.Int64
	restores    atomic.Int64
	freshStarts atomic.Int64
}

// NewLink validates the wiring.
func NewLink(cfg LinkConfig) (*Link, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("service: link %q needs a source", cfg.Name)
	}
	if cfg.Shed && cfg.Budget == nil {
		return nil, fmt.Errorf("service: link %q sheds without a budget", cfg.Name)
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = cfg.Pipeline.IntervalSec
	}
	if !(cfg.CheckpointEvery > 0) {
		return nil, fmt.Errorf("service: link %q checkpoint period must be > 0, got %g", cfg.Name, cfg.CheckpointEvery)
	}
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 4
	}
	if cfg.QueueLen < 1 {
		return nil, fmt.Errorf("service: link %q queue length must be >= 1, got %d", cfg.Name, cfg.QueueLen)
	}
	return &Link{cfg: cfg}, nil
}

// Stats snapshots the link's counters.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		Blocks:      l.blocks.Load(),
		Packets:     l.packets.Load(),
		ShedBlocks:  l.shedBlocks.Load(),
		ShedPackets: l.shedPackets.Load(),
		Checkpoints: l.checkpoints.Load(),
		Restores:    l.restores.Load(),
		FreshStarts: l.freshStarts.Load(),
	}
}

func (l *Link) release(cost int64) {
	if l.cfg.Budget != nil {
		l.cfg.Budget.Release(cost)
	}
}

// item is one owned, budget-charged block in the ingest queue.
type item struct {
	epoch int64
	blk   *trace.Block
	cost  int64
}

// restore loads the newest checkpoint into p and returns the ingest cursor.
// Unusable state (no checkpoint, damaged files, configuration mismatch)
// degrades to a fresh start — the link must come up either way.
func (l *Link) restore(p *Pipeline) Cursor {
	if l.cfg.Store == nil {
		return Cursor{}
	}
	secs, _, err := l.cfg.Store.Load()
	if err != nil {
		l.freshStarts.Add(1)
		return Cursor{}
	}
	if err := p.Restore(secs); err != nil {
		l.freshStarts.Add(1)
		return Cursor{}
	}
	cur, err := DecodeCursor(secs)
	if err != nil {
		p.resetAll()
		l.freshStarts.Add(1)
		return Cursor{}
	}
	l.restores.Add(1)
	return cur
}

// checkpoint writes the pipeline state + ingest cursor as one generation.
func (l *Link) checkpoint(p *Pipeline, cur Cursor) error {
	if l.cfg.Store == nil {
		return nil
	}
	secs := append(p.Snapshot(), EncodeCursor(cur))
	if _, err := l.cfg.Store.Save(secs); err != nil {
		return fmt.Errorf("service: link %q checkpoint: %w", l.cfg.Name, err)
	}
	l.checkpoints.Add(1)
	return nil
}

// Run is one supervised attempt: it returns nil only via a clean stop
// (source exhausted or context cancelled — both drain first), a wrapped
// context error on cancellation, or the failure that ended the attempt.
func (l *Link) Run(ctx context.Context) error {
	p, err := NewPipeline(l.cfg.Pipeline)
	if err != nil {
		return MarkPermanent(err)
	}
	cur := l.restore(p)

	ictx, icancel := context.WithCancel(ctx)
	defer icancel()

	ch := make(chan item, l.cfg.QueueLen)
	producerDone := make(chan struct{})
	var prodErr error

	go func() {
		defer func() {
			if v := recover(); v != nil {
				prodErr = &PanicError{Value: v, Stack: debug.Stack()}
			}
			close(ch)
			close(producerDone)
		}()
		prodErr = l.cfg.Source.Stream(ictx, cur, func(epoch int64, blk *trace.Block) error {
			n := blk.Len()
			if n == 0 {
				return nil
			}
			cost := trace.BlockCost(n)
			if l.cfg.Budget != nil {
				if l.cfg.Shed {
					if !l.cfg.Budget.TryReserve(cost) {
						// Graceful degradation: drop the block with exact
						// accounting instead of stalling the source.
						l.shedBlocks.Add(1)
						l.shedPackets.Add(int64(n))
						return nil
					}
				} else if err := l.cfg.Budget.Reserve(ictx, cost); err != nil {
					return err
				}
			}
			// Copy into an owned block: the source recycles blk after this
			// call, but the queue outlives it.
			ob := trace.GetBlock()
			ob.AppendRebased(blk, 0, n, 0)
			select {
			case ch <- item{epoch: epoch, blk: ob, cost: cost}:
				return nil
			case <-ictx.Done():
				trace.PutBlock(ob)
				l.release(cost)
				return fmt.Errorf("service: link %q ingest: %w", l.cfg.Name, ictx.Err())
			}
		})
	}()

	// Whatever way this attempt unwinds — clean stop, error return, or a
	// panic on its way to the supervisor — stop the producer, return every
	// queued block to the pool with its budget charge (including the one a
	// panicking AddBlock was holding), and wait the producer out: zero
	// goroutine/block leaks on every path.
	var held *trace.Block
	var heldCost int64
	defer func() {
		icancel()
		if held != nil {
			trace.PutBlock(held)
			l.release(heldCost)
		}
		for it := range ch {
			trace.PutBlock(it.blk)
			l.release(it.cost)
		}
		<-producerDone
	}()

	epoch, pkts := cur.Epoch, cur.Packets
	lastCkpt := p.StreamTime()
	for it := range ch {
		held, heldCost = it.blk, it.cost
		err := p.AddBlock(it.blk)
		n := it.blk.Len()
		held = nil
		trace.PutBlock(it.blk)
		l.release(it.cost)
		if err != nil {
			return err
		}
		if it.epoch != epoch {
			epoch, pkts = it.epoch, 0
		}
		pkts += int64(n)
		cur = Cursor{Epoch: epoch, Packets: pkts}
		l.blocks.Add(1)
		l.packets.Add(int64(n))
		if l.cfg.Store != nil && p.StreamTime()-lastCkpt >= l.cfg.CheckpointEvery {
			if err := l.checkpoint(p, cur); err != nil {
				return err
			}
			lastCkpt = p.StreamTime()
		}
	}
	<-producerDone

	// The producer stopped. A clean end (source exhausted) or a
	// cancellation drains: flush the partial interval, write the final
	// checkpoint, and report the stop as clean.
	if Classify(prodErr) == Canceled {
		if err := p.Drain(); err != nil && Classify(err) != Canceled {
			return err
		}
		if err := l.checkpoint(p, cur); err != nil {
			return err
		}
		return prodErr
	}
	return prodErr
}
