package service

import (
	"fmt"
	"math"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/predict"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// PipelineConfig sizes one link's resident measurement state.
type PipelineConfig struct {
	// IntervalSec is the analysis-interval length (the paper's 30-minute
	// window, scaled). Required.
	IntervalSec float64
	// Delta is the rate averaging interval Δ. Required.
	Delta float64
	// Window is how many per-interval mean rates the predictor keeps
	// (default 32) — the sliding-window bound on series memory.
	Window int
	// Defs are the flow definitions measured simultaneously (default
	// 5-tuple + /24 prefix; Defs[0] drives the model refit).
	Defs []flow.Definition
	// Timeout is the flow-termination timeout (default the paper's 60 s).
	Timeout float64
	// Z is the anomaly band half-width in standard deviations (default 3).
	Z float64
	// MinRun debounces anomaly events (default 3 consecutive bins).
	MinRun int
	// PredictOrder is the AR predictor order (default 2).
	PredictOrder int
	// OnInterval observes every closed interval, in order. Its error aborts
	// the stream (and is classified by the supervisor like any other).
	OnInterval func(Report) error
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Window == 0 {
		c.Window = 32
	}
	if len(c.Defs) == 0 {
		c.Defs = []flow.Definition{flow.By5Tuple, flow.ByPrefix24}
	}
	if c.Timeout == 0 {
		c.Timeout = flow.DefaultTimeout
	}
	if c.Z == 0 {
		c.Z = 3
	}
	if c.MinRun == 0 {
		c.MinRun = 3
	}
	if c.PredictOrder == 0 {
		c.PredictOrder = 2
	}
	return c
}

// Report is one closed analysis interval of a running link: the measured
// rate statistics, the refit model inputs, and the online anomaly/predictor
// evaluation against the previous interval's fit.
type Report struct {
	Index   int
	Start   float64 // interval start in stream seconds
	Partial bool    // a drain flushed this interval before its boundary

	Flows     int // kept flows under Defs[0]
	Discarded int // single-packet flows under Defs[0]
	Packets   int64

	MeasMean float64 // bit/s
	MeasVar  float64
	MeasCoV  float64

	// Model refit (zero when the interval was too sparse to fit).
	Lambda   float64
	MeanS    float64
	MeanS2oD float64
	FittedB  float64
	FitOK    bool

	// Anomaly scan against the previous interval's fitted band (nil band
	// before the first fit).
	Anomalies []anomaly.Event

	// One-step prediction made at the previous interval close for this
	// interval's mean rate.
	Predicted     float64
	HasPrediction bool
}

// Pipeline is the resident per-link measurement state of the daemon: a
// multi-definition flow measurer, a rate binner, the eq.(7) kernel caches,
// a sliding window of interval means, and the carried-over anomaly band and
// predictor. It consumes absolute-time blocks, closes analysis intervals as
// the stream crosses their boundaries, and snapshots/restores its complete
// state for crash-safe resumption.
type Pipeline struct {
	cfg  PipelineConfig
	meas *flow.Measurer
	bin  *timeseries.Binner
	pop  *core.FlowPop
	// kernels are the eq.(7) coefficient caches for b = 0, 1, 2 at Δ,
	// built once — the incremental-refit fast path.
	kernels [3]*core.AvgVarKernel

	cur      int // index of the interval currently being fed
	started  bool
	lastTime float64
	pktsCur  int64 // packets in the current interval

	means *timeseries.Window // per-interval mean rates (prediction history)

	// Carried across intervals: the anomaly band fitted on the previous
	// interval (sigma 0 = no fit yet) and the pending one-step prediction.
	detMu, detSigma float64
	predNext        float64
	predHas         bool

	// scratch
	rebased []float64
	hist    []float64
}

// NewPipeline validates the configuration and builds the resident state.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if !(cfg.IntervalSec > 0) {
		return nil, fmt.Errorf("service: interval must be > 0, got %g", cfg.IntervalSec)
	}
	if !(cfg.Delta > 0) || cfg.Delta > cfg.IntervalSec {
		return nil, fmt.Errorf("service: delta must be in (0, interval], got %g", cfg.Delta)
	}
	if cfg.Window < 2 {
		return nil, fmt.Errorf("service: window must be >= 2 intervals, got %d", cfg.Window)
	}
	if cfg.PredictOrder < 1 || cfg.PredictOrder > cfg.Window-2 {
		return nil, fmt.Errorf("service: predictor order %d does not fit window %d", cfg.PredictOrder, cfg.Window)
	}
	p := &Pipeline{cfg: cfg, pop: &core.FlowPop{}}
	var err error
	if p.meas, err = flow.NewMeasurer(cfg.Defs, cfg.Timeout); err != nil {
		return nil, err
	}
	if p.bin, err = timeseries.NewBinner(cfg.IntervalSec, cfg.Delta); err != nil {
		return nil, err
	}
	if p.means, err = timeseries.NewWindow(cfg.Window); err != nil {
		return nil, err
	}
	for b := range p.kernels {
		if p.kernels[b], err = core.NewAvgVarKernel(b, cfg.Delta); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// StreamTime returns the last packet time consumed (stream seconds).
func (p *Pipeline) StreamTime() float64 { return p.lastTime }

// Interval returns the index of the interval currently being fed.
func (p *Pipeline) Interval() int { return p.cur }

// ActiveFlows returns the in-progress flow count under Defs[0] — the
// occupancy the soak test bounds.
func (p *Pipeline) ActiveFlows() int { return p.meas.ActiveFlows(0) }

// runEnd scans times[j:] for the end of the run of packets landing in
// interval idx — the boundary-splitting inner loop.
//
//repro:hotpath
func runEnd(times []float64, j int, intervalSec float64, idx int) int {
	k := j + 1
	for k < len(times) && int(times[k]/intervalSec) == idx {
		k++
	}
	return k
}

// rebase fills dst with times[lo:hi] shifted by -origin.
//
//repro:hotpath
func rebase(dst, times []float64, lo, hi int, origin float64) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = times[i] - origin
	}
}

// AddBlock consumes one absolute-time SoA block, closing analysis intervals
// as the stream crosses their boundaries (empty intervals are emitted too —
// a silent link is data). The block is read, never retained.
func (p *Pipeline) AddBlock(blk *trace.Block) error {
	n := blk.Len()
	j := 0
	for j < n {
		t := blk.Times[j]
		if t < 0 {
			return fmt.Errorf("service: packet time %g is negative", t)
		}
		if p.started && t < p.lastTime {
			return fmt.Errorf("service: packet out of order: %g after %g", t, p.lastTime)
		}
		idx := int(t / p.cfg.IntervalSec)
		for p.cur < idx {
			if err := p.closeInterval(false); err != nil {
				return err
			}
		}
		k := runEnd(blk.Times, j, p.cfg.IntervalSec, idx)
		p.started = true
		p.lastTime = blk.Times[k-1]
		p.pktsCur += int64(k - j)
		sub := blk.Slice(j, k)
		if origin := p.origin(); origin != 0 {
			if cap(p.rebased) < k-j {
				p.rebased = make([]float64, k-j)
			}
			p.rebased = p.rebased[:k-j]
			rebase(p.rebased, blk.Times, j, k, origin)
			sub.Times = p.rebased
		}
		if err := p.meas.AddBlock(&sub); err != nil {
			return err
		}
		p.bin.AddBlock(&sub)
		j = k
	}
	return nil
}

func (p *Pipeline) origin() float64 { return float64(p.cur) * p.cfg.IntervalSec }

// Drain flushes the in-progress interval as a partial report (SIGTERM
// semantics: in-flight state is surfaced, not dropped). A pipeline that has
// consumed nothing since the last boundary emits nothing.
func (p *Pipeline) Drain() error {
	if !p.started || p.pktsCur == 0 {
		return nil
	}
	return p.closeInterval(true)
}

// closeInterval finalises the current interval: flush flows, refit the
// model off the kernel caches, scan for anomalies against the previous
// fit, update the predictor, report, and re-arm for the next interval.
func (p *Pipeline) closeInterval(partial bool) error {
	results := p.meas.Flush()
	series := p.bin.Series()
	series.Subtract(results[0].Discarded)

	rep := Report{
		Index:     p.cur,
		Start:     p.origin(),
		Partial:   partial,
		Flows:     len(results[0].Flows),
		Discarded: len(results[0].Discarded),
		Packets:   p.pktsCur,
		MeasMean:  series.Mean(),
		MeasVar:   series.Variance(),
		MeasCoV:   series.CoV(),
	}

	// Refit off the columnar population + kernel caches. A sparse interval
	// (no usable flows) skips the fit but still reports and predicts.
	var nextMu, nextSigma float64
	if in, err := core.InputFromFlowsPop(p.pop, results[0].Flows, p.cfg.IntervalSec); err == nil {
		rep.Lambda, rep.MeanS, rep.MeanS2oD = in.Lambda, in.MeanS, in.MeanS2OverD
		if b, ok, err := core.FitPowerB(rep.MeasVar, in.Lambda, in.MeanS2OverD); err == nil {
			rep.FittedB, rep.FitOK = b, ok
		}
		// Next interval's anomaly band: mean λ·E[S], σ from the eq.(7)
		// kernel whose integer shape is nearest the fitted exponent.
		bIdx := int(math.Round(rep.FittedB))
		if bIdx < 0 {
			bIdx = 0
		}
		if bIdx > 2 {
			bIdx = 2
		}
		if v, err := p.kernels[bIdx].AveragedVariance(in.Lambda, in.Pop); err == nil && v > 0 {
			nextMu = in.Lambda * in.MeanS
			nextSigma = math.Sqrt(v)
		}
	}

	// Anomaly scan against the band fitted on the previous interval.
	if p.detSigma > 0 {
		det := anomaly.Detector{Mu: p.detMu, Sigma: p.detSigma, Z: p.cfg.Z, MinRun: p.cfg.MinRun}
		rep.Anomalies = det.Scan(series)
	}

	// Settle the pending prediction, then predict the next interval's mean.
	if p.predHas {
		rep.Predicted, rep.HasPrediction = p.predNext, true
	}
	p.means.Push(rep.MeasMean)
	p.predHas = false
	p.hist = p.means.AppendValues(p.hist[:0])
	if m := p.cfg.PredictOrder; len(p.hist) >= m+2 {
		rho := predict.MeasuredACF(p.hist, m)
		if pr, err := predict.FromACF(rho, m); err == nil {
			var level float64
			for _, v := range p.hist {
				level += v
			}
			level /= float64(len(p.hist))
			c := predict.Centered{P: pr, Level: level}
			if v, err := c.Predict(p.hist); err == nil {
				p.predNext, p.predHas = v, true
			}
		}
	}

	p.detMu, p.detSigma = nextMu, nextSigma

	// Re-arm for the next interval before reporting, so a reporting error
	// (or panic) never leaves a half-closed interval behind.
	p.cur++
	p.pktsCur = 0
	p.meas.Reset()
	if err := p.bin.Reinit(p.cfg.IntervalSec, p.cfg.Delta); err != nil {
		return err
	}
	if p.cfg.OnInterval != nil {
		if err := p.cfg.OnInterval(rep); err != nil {
			return fmt.Errorf("service: interval %d report: %w", rep.Index, err)
		}
	}
	return nil
}
