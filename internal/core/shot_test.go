package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostRel(a, b, rel float64) bool {
	if a == b {
		return true
	}
	den := math.Abs(a)
	if math.Abs(b) > den {
		den = math.Abs(b)
	}
	return math.Abs(a-b) <= rel*den
}

func TestNewPowerShotValidation(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NewPowerShot(bad); err == nil {
			t.Fatalf("NewPowerShot(%g) should fail", bad)
		}
	}
	if _, err := NewPowerShot(2.7); err != nil {
		t.Fatalf("valid b rejected: %v", err)
	}
}

func TestVarianceFactorKnownValues(t *testing.T) {
	cases := []struct{ b, want float64 }{
		{0, 1},          // rectangular: the Theorem 3 lower bound
		{1, 4.0 / 3.0},  // triangular (§V-C.2)
		{2, 9.0 / 5.0},  // parabolic
		{3, 16.0 / 7.0}, // cubic
	}
	for _, c := range cases {
		if got := (PowerShot{B: c.b}).VarianceFactor(); !almostRel(got, c.want, 1e-12) {
			t.Fatalf("K(%g) = %g, want %g", c.b, got, c.want)
		}
	}
}

// Property: the shot integrates to the flow size for any (s, d, b) — the
// normalisation constraint (eq. 5).
func TestPowerShotIntegratesToSize(t *testing.T) {
	f := func(rawB, rawS, rawD float64) bool {
		b := math.Abs(math.Mod(rawB, 5))
		s := 1e3 + math.Abs(math.Mod(rawS, 1e7))
		d := 0.01 + math.Abs(math.Mod(rawD, 100))
		p := PowerShot{B: b}
		got := simpson(func(t float64) float64 { return p.Rate(s, d, t) }, 0, d, 4096)
		return almostRel(got, s, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerShotRateBoundary(t *testing.T) {
	p := Triangular
	if p.Rate(100, 2, -0.1) != 0 || p.Rate(100, 2, 2.1) != 0 {
		t.Fatal("rate must be zero outside [0, d]")
	}
	if p.Rate(100, 0, 1) != 0 {
		t.Fatal("zero-duration flow must have zero rate")
	}
	// Triangular peak at t=d is 2·s/d.
	if got, want := p.Rate(100, 2, 2), 100.0; got != want {
		t.Fatalf("triangular peak = %g, want %g", got, want)
	}
}

func TestIntegralX2MatchesQuadrature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		b := rng.Float64() * 4
		s := 1e4 + rng.Float64()*1e6
		d := 0.1 + rng.Float64()*20
		p := PowerShot{B: b}
		want := simpson(func(t float64) float64 { v := p.Rate(s, d, t); return v * v }, 0, d, 8192)
		got := p.IntegralX2(s, d)
		if !almostRel(got, want, 5e-3) {
			t.Fatalf("b=%g s=%g d=%g: IntegralX2 = %g, quadrature %g", b, s, d, got, want)
		}
	}
}

func TestIntegralXK(t *testing.T) {
	p := Triangular
	s, d := 5e5, 3.0
	// k=1 must return the size (normalisation).
	v1, err := p.IntegralXK(s, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(v1, s, 1e-12) {
		t.Fatalf("∫x = %g, want %g", v1, s)
	}
	// k=2 must agree with IntegralX2.
	v2, err := p.IntegralXK(s, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(v2, p.IntegralX2(s, d), 1e-12) {
		t.Fatalf("∫x² = %g, want %g", v2, p.IntegralX2(s, d))
	}
	// k=3 vs quadrature.
	v3, err := p.IntegralXK(s, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := simpson(func(t float64) float64 { return math.Pow(p.Rate(s, d, t), 3) }, 0, d, 8192)
	if !almostRel(v3, want, 1e-6) {
		t.Fatalf("∫x³ = %g, quadrature %g", v3, want)
	}
	if _, err := p.IntegralXK(s, d, 0); err == nil {
		t.Fatal("order 0 should be rejected")
	}
	if v, _ := p.IntegralXK(s, 0, 2); v != 0 {
		t.Fatal("zero duration should integrate to 0")
	}
}

func TestCrossCovAtZeroEqualsIntegralX2(t *testing.T) {
	for _, b := range []float64{0, 1, 2, 2.5, 4} {
		p := PowerShot{B: b}
		s, d := 2e5, 4.0
		if got, want := p.CrossCov(s, d, 0), p.IntegralX2(s, d); !almostRel(got, want, 1e-9) {
			t.Fatalf("b=%g: CrossCov(0) = %g, want %g", b, got, want)
		}
	}
}

func TestCrossCovRectangularClosedForm(t *testing.T) {
	// For b=0: ∫ x·x = (s/d)²·(d-τ) = s²/d·(1-τ/d).
	p := Rectangular
	s, d := 8e4, 2.0
	for _, tau := range []float64{0, 0.5, 1, 1.9} {
		want := s * s / d * (1 - tau/d)
		if got := p.CrossCov(s, d, tau); !almostRel(got, want, 1e-12) {
			t.Fatalf("τ=%g: got %g, want %g", tau, got, want)
		}
	}
}

func TestCrossCovIntegerMatchesQuadrature(t *testing.T) {
	// The binomial closed form for integer b must agree with Simpson.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		b := float64(rng.Intn(5))
		s := 1e4 + rng.Float64()*1e6
		d := 0.5 + rng.Float64()*10
		tau := rng.Float64() * d
		p := PowerShot{B: b}
		a := s * (b + 1) / math.Pow(d, b+1)
		want := a * a * simpson(func(t float64) float64 {
			return math.Pow(t, b) * math.Pow(t+tau, b)
		}, 0, d-tau, 8192)
		got := p.CrossCov(s, d, tau)
		if !almostRel(got, want, 1e-6) {
			t.Fatalf("b=%g τ=%g: closed form %g vs quadrature %g", b, tau, got, want)
		}
	}
}

func TestCrossCovProperties(t *testing.T) {
	p := PowerShot{B: 1.7}
	s, d := 1e5, 5.0
	// Symmetric in τ.
	if !almostRel(p.CrossCov(s, d, 1.2), p.CrossCov(s, d, -1.2), 1e-12) {
		t.Fatal("CrossCov not even in τ")
	}
	// Zero at and beyond the duration.
	if p.CrossCov(s, d, 5) != 0 || p.CrossCov(s, d, 7) != 0 {
		t.Fatal("CrossCov must vanish for τ >= d")
	}
	// Non-increasing in τ (true for monotone shots).
	prev := math.Inf(1)
	for tau := 0.0; tau < d; tau += 0.25 {
		v := p.CrossCov(s, d, tau)
		if v > prev+1e-9 {
			t.Fatalf("CrossCov increased at τ=%g", tau)
		}
		prev = v
	}
}

func TestFuncShotConstantMatchesRectangular(t *testing.T) {
	fs, err := NewFuncShot("flat", func(u float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, d := 3e5, 2.5
	if !almostRel(fs.Rate(s, d, 1.0), Rectangular.Rate(s, d, 1.0), 1e-9) {
		t.Fatalf("flat FuncShot rate %g vs rectangular %g", fs.Rate(s, d, 1.0), Rectangular.Rate(s, d, 1.0))
	}
	if !almostRel(fs.IntegralX2(s, d), Rectangular.IntegralX2(s, d), 1e-9) {
		t.Fatal("flat FuncShot ∫x² differs from rectangular")
	}
	for _, tau := range []float64{0, 0.7, 2.0} {
		if !almostRel(fs.CrossCov(s, d, tau), Rectangular.CrossCov(s, d, tau), 1e-6) {
			t.Fatalf("τ=%g: FuncShot crosscov %g vs rect %g",
				tau, fs.CrossCov(s, d, tau), Rectangular.CrossCov(s, d, tau))
		}
	}
}

func TestFuncShotLinearMatchesTriangular(t *testing.T) {
	fs, err := NewFuncShot("linear", func(u float64) float64 { return u })
	if err != nil {
		t.Fatal(err)
	}
	s, d := 1e5, 4.0
	if !almostRel(fs.IntegralX2(s, d), Triangular.IntegralX2(s, d), 1e-6) {
		t.Fatalf("linear FuncShot ∫x² = %g vs triangular %g",
			fs.IntegralX2(s, d), Triangular.IntegralX2(s, d))
	}
}

func TestFuncShotValidation(t *testing.T) {
	if _, err := NewFuncShot("nil", nil); err == nil {
		t.Fatal("nil shape should be rejected")
	}
	if _, err := NewFuncShot("zero", func(u float64) float64 { return 0 }); err == nil {
		t.Fatal("zero-integral shape should be rejected")
	}
}

func TestShotNames(t *testing.T) {
	if Rectangular.Name() != "rectangular (b=0)" ||
		Triangular.Name() != "triangular (b=1)" ||
		Parabolic.Name() != "parabolic (b=2)" {
		t.Fatal("canonical shot names wrong")
	}
	if (PowerShot{B: 2.5}).Name() != "power (b=2.5)" {
		t.Fatalf("generic name = %q", (PowerShot{B: 2.5}).Name())
	}
}

func TestSimpsonKnownIntegrals(t *testing.T) {
	if got := simpson(math.Sin, 0, math.Pi, 128); !almostRel(got, 2, 1e-8) {
		t.Fatalf("∫sin over [0,π] = %g, want 2", got)
	}
	if got := simpson(func(x float64) float64 { return x * x }, 0, 3, 4); !almostRel(got, 9, 1e-12) {
		t.Fatalf("∫x² over [0,3] = %g, want 9 (Simpson exact for cubics)", got)
	}
	if got := simpson(math.Exp, 1, 1, 64); got != 0 {
		t.Fatalf("empty interval = %g, want 0", got)
	}
	// Odd n is rounded up, tiny n clamped: still accurate.
	if got := simpson(math.Exp, 0, 1, 1); !almostRel(got, math.E-1, 1e-3) {
		t.Fatalf("n=1 integral = %g", got)
	}
}
