package core

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/stats"
)

// FlowSample is one observed (or sampled) flow: size S in bits, duration D
// in seconds. The model's expectations E[S], E[S²/D], E[∫X²] etc. are
// averages over a population of these.
type FlowSample struct {
	S float64 // bits
	D float64 // seconds
}

// Model is the Poisson shot-noise model of the total rate R(t) on a link:
// flow arrivals at rate Lambda, iid flows drawn from the Flows population,
// each transmitting with the Shot rate function.
type Model struct {
	Lambda float64
	Shot   Shot
	Flows  []FlowSample

	meanS    float64 // E[S] bits
	meanS2oD float64 // E[S²/D]
}

// NewModel validates inputs and precomputes the flow-population moments.
// The flow population must be non-empty with positive sizes and durations.
func NewModel(lambda float64, shot Shot, flows []FlowSample) (*Model, error) {
	if !(lambda > 0) {
		return nil, fmt.Errorf("core: lambda must be > 0, got %g", lambda)
	}
	if shot == nil {
		return nil, fmt.Errorf("core: nil shot")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("core: empty flow population")
	}
	var sumS, sumS2oD float64
	for i, f := range flows {
		if !(f.S > 0) || !(f.D > 0) {
			return nil, fmt.Errorf("core: flow %d has non-positive size or duration (%g, %g)", i, f.S, f.D)
		}
		sumS += f.S
		sumS2oD += f.S * f.S / f.D
	}
	n := float64(len(flows))
	return &Model{
		Lambda:   lambda,
		Shot:     shot,
		Flows:    flows,
		meanS:    sumS / n,
		meanS2oD: sumS2oD / n,
	}, nil
}

// Input bundles the three measurable parameters the paper's §V-G identifies
// as sufficient for the first two moments, together with the raw flow
// samples needed for the auto-covariance (Theorem 2) and higher moments.
type Input struct {
	Lambda      float64 // flow arrival rate (flows/s)
	MeanS       float64 // E[S] in bits
	MeanS2OverD float64 // E[S²/D] in bits²/s
	Samples     []FlowSample
}

// InputFromFlows derives model inputs from measured flows over an interval
// of the given length (seconds). Flows with zero duration are skipped (the
// measurement pipeline has already discarded single-packet flows, but a
// defensive filter keeps the estimator total).
func InputFromFlows(flows []flow.Flow, intervalSec float64) (Input, error) {
	if !(intervalSec > 0) {
		return Input{}, fmt.Errorf("core: interval must be > 0, got %g", intervalSec)
	}
	samples := make([]FlowSample, 0, len(flows))
	var sumS, sumS2oD float64
	for _, f := range flows {
		d := f.Duration()
		if !(d > 0) {
			continue
		}
		s := f.SizeBits()
		samples = append(samples, FlowSample{S: s, D: d})
		sumS += s
		sumS2oD += s * s / d
	}
	if len(samples) == 0 {
		return Input{}, fmt.Errorf("core: no usable flows in interval")
	}
	n := float64(len(samples))
	return Input{
		Lambda:      n / intervalSec,
		MeanS:       sumS / n,
		MeanS2OverD: sumS2oD / n,
		Samples:     samples,
	}, nil
}

// Model builds a model from the input with the given shot shape.
func (in Input) Model(shot Shot) (*Model, error) {
	return NewModel(in.Lambda, shot, in.Samples)
}

// MeanS returns E[S] in bits.
func (m *Model) MeanS() float64 { return m.meanS }

// MeanS2OverD returns E[S²/D] in bits²/s.
func (m *Model) MeanS2OverD() float64 { return m.meanS2oD }

// Mean returns E[R(t)] = λ·E[S] (Corollary 1). Note it is independent of
// the shot shape and of the duration distribution.
func (m *Model) Mean() float64 { return m.Lambda * m.meanS }

// Variance returns Var(R) = λ·E[∫₀^D X²(u) du] (Corollary 2).
func (m *Model) Variance() float64 {
	var sum float64
	for _, f := range m.Flows {
		sum += m.Shot.IntegralX2(f.S, f.D)
	}
	return m.Lambda * sum / float64(len(m.Flows))
}

// StdDev returns the standard deviation of the total rate.
func (m *Model) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CoV returns the coefficient of variation σ/μ of the total rate, the
// quantity the paper's validation compares against measurements.
func (m *Model) CoV() float64 {
	mu := m.Mean()
	if mu == 0 {
		return 0
	}
	return m.StdDev() / mu
}

// VarianceLowerBound returns λ·E[S²/D], the variance under rectangular
// shots, which Theorem 3 proves is the minimum over all flow rate
// functions.
func (m *Model) VarianceLowerBound() float64 { return m.Lambda * m.meanS2oD }

// AutoCovariance returns γ(τ) = λ·E[∫₀^{(D-|τ|)+} X(u)X(u+|τ|) du]
// (Theorem 2). γ(0) equals Variance().
func (m *Model) AutoCovariance(tau float64) float64 {
	var sum float64
	for _, f := range m.Flows {
		sum += m.Shot.CrossCov(f.S, f.D, tau)
	}
	return m.Lambda * sum / float64(len(m.Flows))
}

// AutoCorrelation returns γ(τ)/γ(0), the curve of the paper's Figure 8.
func (m *Model) AutoCorrelation(tau float64) float64 {
	v := m.Variance()
	if v == 0 {
		return 0
	}
	return m.AutoCovariance(tau) / v
}

// AveragedVariance returns σ_Δ², the variance of the rate averaged over
// windows of length Δ (the measured rate of §V-F, eq. 7):
//
//	σ_Δ² = (2/Δ) ∫₀^Δ (1 - τ/Δ) γ(τ) dτ
//
// It is always at most Variance() and approaches it as Δ → 0.
func (m *Model) AveragedVariance(delta float64) (float64, error) {
	if !(delta > 0) {
		return 0, fmt.Errorf("core: averaging interval must be > 0, got %g", delta)
	}
	// Integer-b power shots (the paper's b = 0, 1, 2 and every fitted
	// integer exponent) integrate per flow in closed form: one pass over
	// the flow population, against one pass per quadrature point below.
	// This is the hottest loop of the experiment suite — every interval
	// evaluates it for three shot shapes.
	if ps, ok := m.Shot.(PowerShot); ok && ps.closedFormB() {
		var sum float64
		for _, f := range m.Flows {
			sum += ps.avgVarCrossInt(f.S, f.D, delta)
		}
		return 2 / delta * m.Lambda * sum / float64(len(m.Flows)), nil
	}
	f := func(tau float64) float64 {
		return (1 - tau/delta) * m.AutoCovariance(tau)
	}
	// The integrand is smooth; 64 Simpson points across [0, Δ] are ample
	// because γ varies on the scale of flow durations, which the paper's
	// operating point (Δ = 200 ms ≪ E[D]) keeps much longer than Δ.
	return 2 / delta * simpson(f, 0, delta, 64), nil
}

// LST returns the Laplace-Stieltjes transform E[e^{-θR}] of the stationary
// total rate (Theorem 1):
//
//	E[e^{-θR}] = exp( -λ · E[ ∫₀^D (1 - e^{-θ·X(u)}) du ] )
//
// for θ ≥ 0. The inner integral is evaluated by Simpson quadrature per flow
// sample.
func (m *Model) LST(theta float64) (float64, error) {
	if theta < 0 {
		return 0, fmt.Errorf("core: LST requires theta >= 0, got %g", theta)
	}
	if theta == 0 {
		return 1, nil
	}
	// A hand-built Model can carry an empty population (NewModel rejects it);
	// without the guard the mean below divides by zero and returns NaN
	// instead of an error.
	if len(m.Flows) == 0 {
		return 0, fmt.Errorf("core: LST needs a non-empty flow population")
	}
	var sum float64
	// Integer-b power shots reduce the inner integral to an incomplete
	// gamma in closed form — one special-function evaluation per flow
	// instead of 128 quadrature points (the same treatment that removed
	// the quadrature from AveragedVariance). Other shots keep Simpson.
	if ps, ok := m.Shot.(PowerShot); ok && ps.closedFormB() {
		for _, f := range m.Flows {
			sum += ps.lstIntegral(f.S, f.D, theta)
		}
		return math.Exp(-m.Lambda * sum / float64(len(m.Flows))), nil
	}
	for _, f := range m.Flows {
		s, d := f.S, f.D
		g := func(u float64) float64 {
			return 1 - math.Exp(-theta*m.Shot.Rate(s, d, u))
		}
		sum += simpson(g, 0, d, 128)
	}
	return math.Exp(-m.Lambda * sum / float64(len(m.Flows))), nil
}

// Cumulant returns the k-th cumulant of R(t), κ_k = λ·E[∫₀^D X(u)^k du]
// (Campbell's theorem; Corollary 3 in LST form). κ₁ is the mean, κ₂ the
// variance, κ₃ drives the skewness. The shot must be a PowerShot or a
// FuncShot; other shots are integrated numerically through Rate.
func (m *Model) Cumulant(k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: cumulant order must be >= 1, got %d", k)
	}
	if len(m.Flows) == 0 {
		return 0, fmt.Errorf("core: cumulant needs a non-empty flow population")
	}
	var sum float64
	if ps, ok := m.Shot.(PowerShot); ok {
		for _, f := range m.Flows {
			v, err := ps.IntegralXK(f.S, f.D, k)
			if err != nil {
				return 0, err
			}
			sum += v
		}
	} else {
		for _, f := range m.Flows {
			s, d := f.S, f.D
			g := func(u float64) float64 {
				return math.Pow(m.Shot.Rate(s, d, u), float64(k))
			}
			sum += simpson(g, 0, d, 256)
		}
	}
	return m.Lambda * sum / float64(len(m.Flows)), nil
}

// Skewness returns κ₃/κ₂^(3/2) of the total rate, a check on how far the
// Gaussian approximation of §V-E can be trusted (it decays as 1/√λ).
func (m *Model) Skewness() (float64, error) {
	k2, err := m.Cumulant(2)
	if err != nil {
		return 0, err
	}
	if k2 <= 0 {
		return 0, fmt.Errorf("core: non-positive variance")
	}
	k3, err := m.Cumulant(3)
	if err != nil {
		return 0, err
	}
	return k3 / math.Pow(k2, 1.5), nil
}

// SpectralDensity returns the power spectral density Γ(ω) of the centred
// total rate at angular frequency ω (rad/s): Γ(ω) = λ/(2π)·E[|X̂(ω)|²]
// where X̂ is the Fourier transform of the shot (§V-B). The transform is
// evaluated by quadrature per flow sample.
func (m *Model) SpectralDensity(omega float64) float64 {
	var sum float64
	for _, f := range m.Flows {
		s, d := f.S, f.D
		re := simpson(func(t float64) float64 { return m.Shot.Rate(s, d, t) * math.Cos(omega*t) }, 0, d, 256)
		im := simpson(func(t float64) float64 { return m.Shot.Rate(s, d, t) * math.Sin(omega*t) }, 0, d, 256)
		sum += re*re + im*im
	}
	return m.Lambda / (2 * math.Pi) * sum / float64(len(m.Flows))
}

// GaussianPDF returns the Gaussian approximation of the stationary density
// of R(t) at rate x (§V-E), justified by the large number of flows
// simultaneously active on a backbone link.
func (m *Model) GaussianPDF(x float64) float64 {
	mu, sigma := m.Mean(), m.StdDev()
	if sigma == 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// ExceedProb returns P(R > capacity) under the Gaussian approximation: the
// fraction of time the link would be congested at the given capacity.
func (m *Model) ExceedProb(capacity float64) float64 {
	sigma := m.StdDev()
	if sigma == 0 {
		if capacity >= m.Mean() {
			return 0
		}
		return 1
	}
	return 1 - stats.NormalCDF((capacity-m.Mean())/sigma)
}

// Bandwidth returns the capacity C such that P(R > C) = epsilon under the
// Gaussian approximation: C = E[R] + z_{1-ε}·σ. This is the paper's link
// dimensioning rule (§V-E, §VII-A).
func (m *Model) Bandwidth(epsilon float64) (float64, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return 0, fmt.Errorf("core: congestion probability must be in (0,1), got %g", epsilon)
	}
	return m.Mean() + stats.NormalQuantile(1-epsilon)*m.StdDev(), nil
}
