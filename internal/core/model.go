package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/stats"
)

// FlowSample is one observed (or sampled) flow: size S in bits, duration D
// in seconds. The model's expectations E[S], E[S²/D], E[∫X²] etc. are
// averages over a population of these.
type FlowSample struct {
	S float64 // bits
	D float64 // seconds
}

// Model is the Poisson shot-noise model of the total rate R(t) on a link:
// flow arrivals at rate Lambda, iid flows drawn from the Flows population,
// each transmitting with the Shot rate function.
type Model struct {
	Lambda float64
	Shot   Shot
	// Flows is the sample population in row (AoS) form, kept for callers
	// that sample flows (the traffic generator). Models built on the pooled
	// columnar path carry a nil Flows and only the pop columns.
	Flows []FlowSample

	// pop is the columnar view of the population that every kernel and
	// population loop evaluates over. NewModel derives it from Flows;
	// Input.Model can share one pooled FlowPop across shot shapes.
	pop *FlowPop

	// avKernel caches the last eq.(7) kernel the scalar AveragedVariance
	// face built, so repeated calls at one Δ (callers that probe the model
	// point-wise) pay the coefficient build once. Kernels are immutable and
	// (b, Δ)-keyed, so WithLambda copies share the cache pointer safely.
	avKernel *atomic.Pointer[AvgVarKernel]

	meanS    float64 // E[S] bits
	meanS2oD float64 // E[S²/D]
}

// NewModel validates inputs and precomputes the flow-population moments.
// The flow population must be non-empty with positive sizes and durations.
func NewModel(lambda float64, shot Shot, flows []FlowSample) (*Model, error) {
	if !(lambda > 0) {
		return nil, fmt.Errorf("core: lambda must be > 0, got %g", lambda)
	}
	if shot == nil {
		return nil, fmt.Errorf("core: nil shot")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("core: empty flow population")
	}
	for i, f := range flows {
		if !(f.S > 0) || !(f.D > 0) {
			return nil, fmt.Errorf("core: flow %d has non-positive size or duration (%g, %g)", i, f.S, f.D)
		}
	}
	pop := newFlowPop(flows)
	return &Model{
		Lambda:   lambda,
		Shot:     shot,
		Flows:    flows,
		pop:      pop,
		avKernel: new(atomic.Pointer[AvgVarKernel]),
		meanS:    pop.MeanS(),
		meanS2oD: pop.MeanS2OverD(),
	}, nil
}

// newModelFromPop builds a model over a pre-built columnar population with
// its moments already computed (the pooled experiment path); Flows stays
// nil.
func newModelFromPop(lambda float64, shot Shot, pop *FlowPop, meanS, meanS2oD float64) (*Model, error) {
	if !(lambda > 0) {
		return nil, fmt.Errorf("core: lambda must be > 0, got %g", lambda)
	}
	if shot == nil {
		return nil, fmt.Errorf("core: nil shot")
	}
	if pop.Len() == 0 {
		return nil, fmt.Errorf("core: empty flow population")
	}
	return &Model{
		Lambda:   lambda,
		Shot:     shot,
		pop:      pop,
		avKernel: new(atomic.Pointer[AvgVarKernel]),
		meanS:    meanS,
		meanS2oD: meanS2oD,
	}, nil
}

// WithLambda returns a model identical to m but with a different arrival
// rate, sharing the flow population, its columns and the precomputed
// moments — the λ-sweeps of §VII-A scale load without re-validating and
// re-summing the population per point.
func (m *Model) WithLambda(lambda float64) (*Model, error) {
	if !(lambda > 0) {
		return nil, fmt.Errorf("core: lambda must be > 0, got %g", lambda)
	}
	c := *m
	c.Lambda = lambda
	return &c, nil
}

// population returns the columnar population, deriving it on the fly for
// hand-assembled models that bypassed NewModel (tests); such a derived view
// is not cached, so hand-built models pay the build per call.
func (m *Model) population() *FlowPop {
	if m.pop != nil || len(m.Flows) == 0 {
		return m.pop
	}
	return newFlowPop(m.Flows)
}

// Input bundles the three measurable parameters the paper's §V-G identifies
// as sufficient for the first two moments, together with the raw flow
// samples needed for the auto-covariance (Theorem 2) and higher moments.
type Input struct {
	Lambda      float64 // flow arrival rate (flows/s)
	MeanS       float64 // E[S] in bits
	MeanS2OverD float64 // E[S²/D] in bits²/s
	Samples     []FlowSample
	// Pop is the columnar view of Samples. When set, Model() shares it
	// across the shot shapes instead of rebuilding per-model columns; the
	// pooled InputFromFlowsPop path sets Pop alone (Samples nil).
	Pop *FlowPop
}

// InputFromFlows derives model inputs from measured flows over an interval
// of the given length (seconds). Flows with zero duration are skipped (the
// measurement pipeline has already discarded single-packet flows, but a
// defensive filter keeps the estimator total). The returned Input carries
// both the row-form Samples and the columnar Pop, so the shot shapes built
// from it share one population.
func InputFromFlows(flows []flow.Flow, intervalSec float64) (Input, error) {
	pop := &FlowPop{
		S:    make([]float64, 0, len(flows)),
		D:    make([]float64, 0, len(flows)),
		S2:   make([]float64, 0, len(flows)),
		InvD: make([]float64, 0, len(flows)),
	}
	in, err := InputFromFlowsPop(pop, flows, intervalSec)
	if err != nil {
		return Input{}, err
	}
	samples := make([]FlowSample, pop.Len())
	for i := range samples {
		samples[i] = FlowSample{S: pop.S[i], D: pop.D[i]}
	}
	in.Samples = samples
	return in, nil
}

// Model builds a model from the input with the given shot shape, sharing
// the columnar population when the input carries one.
func (in Input) Model(shot Shot) (*Model, error) {
	if in.Pop != nil {
		m, err := newModelFromPop(in.Lambda, shot, in.Pop, in.MeanS, in.MeanS2OverD)
		if err != nil {
			return nil, err
		}
		m.Flows = in.Samples // nil on the pooled path
		return m, nil
	}
	return NewModel(in.Lambda, shot, in.Samples)
}

// MeanS returns E[S] in bits.
func (m *Model) MeanS() float64 { return m.meanS }

// MeanS2OverD returns E[S²/D] in bits²/s.
func (m *Model) MeanS2OverD() float64 { return m.meanS2oD }

// Mean returns E[R(t)] = λ·E[S] (Corollary 1). Note it is independent of
// the shot shape and of the duration distribution.
func (m *Model) Mean() float64 { return m.Lambda * m.meanS }

// Variance returns Var(R) = λ·E[∫₀^D X²(u) du] (Corollary 2). An empty
// population has zero variance (NewModel rejects one; only hand-built
// models reach this).
func (m *Model) Variance() float64 {
	pop := m.population()
	n := pop.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Shot.IntegralX2(pop.S[i], pop.D[i])
	}
	return m.Lambda * sum / float64(n)
}

// StdDev returns the standard deviation of the total rate.
func (m *Model) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CoV returns the coefficient of variation σ/μ of the total rate, the
// quantity the paper's validation compares against measurements.
func (m *Model) CoV() float64 {
	mu := m.Mean()
	if mu == 0 {
		return 0
	}
	return m.StdDev() / mu
}

// VarianceLowerBound returns λ·E[S²/D], the variance under rectangular
// shots, which Theorem 3 proves is the minimum over all flow rate
// functions.
func (m *Model) VarianceLowerBound() float64 { return m.Lambda * m.meanS2oD }

// AutoCovariance returns γ(τ) = λ·E[∫₀^{(D-|τ|)+} X(u)X(u+|τ|) du]
// (Theorem 2). γ(0) equals Variance().
func (m *Model) AutoCovariance(tau float64) float64 {
	pop := m.population()
	n := pop.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Shot.CrossCov(pop.S[i], pop.D[i], tau)
	}
	return m.Lambda * sum / float64(n)
}

// AutoCorrelation returns γ(τ)/γ(0), the curve of the paper's Figure 8.
func (m *Model) AutoCorrelation(tau float64) float64 {
	v := m.Variance()
	if v == 0 {
		return 0
	}
	return m.AutoCovariance(tau) / v
}

// AveragedVariance returns σ_Δ², the variance of the rate averaged over
// windows of length Δ (the measured rate of §V-F, eq. 7):
//
//	σ_Δ² = (2/Δ) ∫₀^Δ (1 - τ/Δ) γ(τ) dτ
//
// It is always at most Variance() and approaches it as Δ → 0.
func (m *Model) AveragedVariance(delta float64) (float64, error) {
	if !(delta > 0) {
		return 0, fmt.Errorf("core: averaging interval must be > 0, got %g", delta)
	}
	pop := m.population()
	// Guard before the division below: a hand-built Model carries an empty
	// population (NewModel rejects one) and would otherwise return NaN.
	if pop.Len() == 0 {
		return 0, fmt.Errorf("core: averaged variance needs a non-empty flow population")
	}
	// Integer-b power shots (the paper's b = 0, 1, 2 and every fitted
	// integer exponent) evaluate through the (b, Δ) coefficient cache: one
	// branch-partitioned Horner pass over the population, against one pass
	// per quadrature point below. This is the hottest loop of the
	// experiment suite — every interval evaluates it for three shot shapes.
	// The scalar closed form avgVarCrossInt stays as the test oracle.
	if ps, ok := m.Shot.(PowerShot); ok && ps.closedFormB() {
		b := int(ps.B)
		var k *AvgVarKernel
		if m.avKernel != nil {
			if c := m.avKernel.Load(); c != nil && c.b == b && c.delta == delta {
				k = c
			}
		}
		if k == nil {
			var err error
			k, err = NewAvgVarKernel(b, delta)
			if err != nil {
				return 0, err
			}
			if m.avKernel != nil {
				m.avKernel.Store(k)
			}
		}
		return k.AveragedVariance(m.Lambda, pop)
	}
	f := func(tau float64) float64 {
		return (1 - tau/delta) * m.AutoCovariance(tau)
	}
	// The integrand is smooth; 64 Simpson points across [0, Δ] are ample
	// because γ varies on the scale of flow durations, which the paper's
	// operating point (Δ = 200 ms ≪ E[D]) keeps much longer than Δ.
	return 2 / delta * simpson(f, 0, delta, 64), nil
}

// AveragedVarianceBatch evaluates eq.(7) at many averaging intervals with
// one pass over the flow population (closed-form shots; other shots fall
// back to per-Δ quadrature). Results are bit-identical to calling
// AveragedVariance per Δ — the batch changes the memory traffic, not the
// arithmetic.
func (m *Model) AveragedVarianceBatch(deltas []float64) ([]float64, error) {
	out := make([]float64, len(deltas))
	if len(deltas) == 0 {
		return out, nil
	}
	pop := m.population()
	if pop.Len() == 0 {
		return nil, fmt.Errorf("core: averaged variance needs a non-empty flow population")
	}
	ps, ok := m.Shot.(PowerShot)
	if !ok || !ps.closedFormB() {
		for i, delta := range deltas {
			v, err := m.AveragedVariance(delta)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	ks := make([]*AvgVarKernel, len(deltas))
	for i, delta := range deltas {
		k, err := NewAvgVarKernel(int(ps.B), delta)
		if err != nil {
			return nil, err
		}
		ks[i] = k
	}
	sums := make([]float64, len(ks))
	avgVarSumMulti(ks, pop, sums)
	n := float64(pop.Len())
	for i, k := range ks {
		out[i] = 2 / k.delta * m.Lambda * sums[i] / n
	}
	return out, nil
}

// LST returns the Laplace-Stieltjes transform E[e^{-θR}] of the stationary
// total rate (Theorem 1):
//
//	E[e^{-θR}] = exp( -λ · E[ ∫₀^D (1 - e^{-θ·X(u)}) du ] )
//
// for θ ≥ 0. The inner integral is evaluated by Simpson quadrature per flow
// sample.
func (m *Model) LST(theta float64) (float64, error) {
	if theta < 0 {
		return 0, fmt.Errorf("core: LST requires theta >= 0, got %g", theta)
	}
	if theta == 0 {
		return 1, nil
	}
	// A hand-built Model can carry an empty population (NewModel rejects it);
	// without the guard the mean below divides by zero and returns NaN
	// instead of an error.
	pop := m.population()
	n := pop.Len()
	if n == 0 {
		return 0, fmt.Errorf("core: LST needs a non-empty flow population")
	}
	var sum float64
	// Integer-b power shots reduce the inner integral to an incomplete
	// gamma in closed form, with the θ-only constants hoisted into a kernel
	// — gammaLower1mExp is the only per-flow transcendental (the same
	// treatment that removed the quadrature from AveragedVariance). Other
	// shots keep Simpson. The scalar lstIntegral stays as the test oracle.
	if ps, ok := m.Shot.(PowerShot); ok && ps.closedFormB() {
		k := newLSTKernel(int(ps.B), theta)
		for i := 0; i < n; i++ {
			sum += k.oneMinusExp(pop.S[i], pop.D[i], pop.InvD[i])
		}
		return math.Exp(-m.Lambda * sum / float64(n)), nil
	}
	for i := 0; i < n; i++ {
		s, d := pop.S[i], pop.D[i]
		g := func(u float64) float64 {
			return 1 - math.Exp(-theta*m.Shot.Rate(s, d, u))
		}
		sum += simpson(g, 0, d, 128)
	}
	return math.Exp(-m.Lambda * sum / float64(n)), nil
}

// LSTBatch evaluates the LST at many θ with one pass over the flow
// population (closed-form shots; other shots fall back to per-θ
// quadrature). Results are bit-identical to calling LST per θ. The
// dimensioning searches that probe many transform points ride this face.
func (m *Model) LSTBatch(thetas []float64) ([]float64, error) {
	out := make([]float64, len(thetas))
	if len(thetas) == 0 {
		return out, nil
	}
	pop := m.population()
	n := pop.Len()
	if n == 0 {
		return nil, fmt.Errorf("core: LST needs a non-empty flow population")
	}
	ps, ok := m.Shot.(PowerShot)
	if !ok || !ps.closedFormB() {
		for i, theta := range thetas {
			v, err := m.LST(theta)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	ks := make([]lstKernel, len(thetas))
	for i, theta := range thetas {
		if theta < 0 {
			return nil, fmt.Errorf("core: LST requires theta >= 0, got %g", theta)
		}
		ks[i] = newLSTKernel(int(ps.B), theta)
	}
	sums := make([]float64, len(thetas))
	for i := 0; i < n; i++ {
		s, d, u := pop.S[i], pop.D[i], pop.InvD[i]
		for kj := range ks {
			sums[kj] += ks[kj].oneMinusExp(s, d, u)
		}
	}
	for i, theta := range thetas {
		if theta == 0 {
			out[i] = 1
			continue
		}
		out[i] = math.Exp(-m.Lambda * sums[i] / float64(n))
	}
	return out, nil
}

// Cumulant returns the k-th cumulant of R(t), κ_k = λ·E[∫₀^D X(u)^k du]
// (Campbell's theorem; Corollary 3 in LST form). κ₁ is the mean, κ₂ the
// variance, κ₃ drives the skewness. The shot must be a PowerShot or a
// FuncShot; other shots are integrated numerically through Rate.
func (m *Model) Cumulant(k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: cumulant order must be >= 1, got %d", k)
	}
	pop := m.population()
	n := pop.Len()
	if n == 0 {
		return 0, fmt.Errorf("core: cumulant needs a non-empty flow population")
	}
	var sum float64
	if ps, ok := m.Shot.(PowerShot); ok {
		// ∫X^k = s^k·(b+1)^k / (d^{k-1}·(kb+1)): the (b+1)^k/(kb+1) factor
		// is flow-independent, and the flow powers are small-integer, so the
		// loop is pure powi — no math.Pow per flow (IntegralXK stays as the
		// scalar oracle).
		kk := float64(k)
		c := math.Pow(ps.B+1, kk) / (kk*ps.B + 1)
		for i := 0; i < n; i++ {
			sum += powi(pop.S[i], k) * powi(pop.InvD[i], k-1)
		}
		sum *= c
	} else {
		for i := 0; i < n; i++ {
			s, d := pop.S[i], pop.D[i]
			g := func(u float64) float64 {
				return math.Pow(m.Shot.Rate(s, d, u), float64(k))
			}
			sum += simpson(g, 0, d, 256)
		}
	}
	return m.Lambda * sum / float64(n), nil
}

// Skewness returns κ₃/κ₂^(3/2) of the total rate, a check on how far the
// Gaussian approximation of §V-E can be trusted (it decays as 1/√λ).
func (m *Model) Skewness() (float64, error) {
	k2, err := m.Cumulant(2)
	if err != nil {
		return 0, err
	}
	if k2 <= 0 {
		return 0, fmt.Errorf("core: non-positive variance")
	}
	k3, err := m.Cumulant(3)
	if err != nil {
		return 0, err
	}
	return k3 / math.Pow(k2, 1.5), nil
}

// SpectralDensity returns the power spectral density Γ(ω) of the centred
// total rate at angular frequency ω (rad/s): Γ(ω) = λ/(2π)·E[|X̂(ω)|²]
// where X̂ is the Fourier transform of the shot (§V-B). The transform is
// evaluated by quadrature per flow sample.
func (m *Model) SpectralDensity(omega float64) float64 {
	pop := m.population()
	n := pop.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		s, d := pop.S[i], pop.D[i]
		re := simpson(func(t float64) float64 { return m.Shot.Rate(s, d, t) * math.Cos(omega*t) }, 0, d, 256)
		im := simpson(func(t float64) float64 { return m.Shot.Rate(s, d, t) * math.Sin(omega*t) }, 0, d, 256)
		sum += re*re + im*im
	}
	return m.Lambda / (2 * math.Pi) * sum / float64(n)
}

// GaussianPDF returns the Gaussian approximation of the stationary density
// of R(t) at rate x (§V-E), justified by the large number of flows
// simultaneously active on a backbone link.
func (m *Model) GaussianPDF(x float64) float64 {
	mu, sigma := m.Mean(), m.StdDev()
	if sigma == 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// ExceedProb returns P(R > capacity) under the Gaussian approximation: the
// fraction of time the link would be congested at the given capacity.
func (m *Model) ExceedProb(capacity float64) float64 {
	sigma := m.StdDev()
	if sigma == 0 {
		if capacity >= m.Mean() {
			return 0
		}
		return 1
	}
	return 1 - stats.NormalCDF((capacity-m.Mean())/sigma)
}

// Bandwidth returns the capacity C such that P(R > C) = epsilon under the
// Gaussian approximation: C = E[R] + z_{1-ε}·σ. This is the paper's link
// dimensioning rule (§V-E, §VII-A).
func (m *Model) Bandwidth(epsilon float64) (float64, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return 0, fmt.Errorf("core: congestion probability must be in (0,1), got %g", epsilon)
	}
	return m.Mean() + stats.NormalQuantile(1-epsilon)*m.StdDev(), nil
}
