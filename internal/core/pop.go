package core

import (
	"fmt"

	"repro/internal/flow"
)

// FlowPop is a columnar (structure-of-arrays) flow population: the same
// (S, D) samples a []FlowSample holds, laid out as per-field columns plus
// the derived power columns every integer-b kernel consumes — s² feeds the
// variance and eq.(7) kernels, 1/d feeds the Horner evaluation of the
// eq.(7) polynomial and the LST/log-MGF argument x = θ(b+1)·s/d. The
// derived columns are shot-shape independent, so the three paper shapes
// (b = 0, 1, 2) evaluated per interval share one population build.
//
// A FlowPop is append-only between Resets and safe for concurrent reads;
// the experiment runner pools one per measurement worker so an interval's
// model inputs cost no population allocation in steady state.
type FlowPop struct {
	S    []float64 // flow sizes, bits
	D    []float64 // flow durations, seconds
	S2   []float64 // s², the shared numerator of the second-moment kernels
	InvD []float64 // 1/d, the shared power-family column

	sumS    float64
	sumS2oD float64
}

// Len returns the population size. Nil-safe, so a zero Model reports an
// empty population instead of panicking.
func (p *FlowPop) Len() int {
	if p == nil {
		return 0
	}
	return len(p.S)
}

// Reset truncates the population, keeping the column capacity for reuse.
func (p *FlowPop) Reset() {
	p.S = p.S[:0]
	p.D = p.D[:0]
	p.S2 = p.S2[:0]
	p.InvD = p.InvD[:0]
	p.sumS = 0
	p.sumS2oD = 0
}

// Append adds one flow to every column. The caller has validated s > 0 and
// d > 0 (NewModel and the InputFromFlows builders do); Append itself stays
// branch-free so population builds vectorise.
func (p *FlowPop) Append(s, d float64) {
	p.S = append(p.S, s)
	p.D = append(p.D, d)
	p.S2 = append(p.S2, s*s)
	p.InvD = append(p.InvD, 1/d)
	p.sumS += s
	p.sumS2oD += s * s / d
}

// MeanS returns E[S] in bits over the population.
func (p *FlowPop) MeanS() float64 {
	if p.Len() == 0 {
		return 0
	}
	return p.sumS / float64(len(p.S))
}

// MeanS2OverD returns E[S²/D] in bits²/s over the population.
func (p *FlowPop) MeanS2OverD() float64 {
	if p.Len() == 0 {
		return 0
	}
	return p.sumS2oD / float64(len(p.S))
}

// newFlowPop builds a population from validated samples.
func newFlowPop(flows []FlowSample) *FlowPop {
	p := &FlowPop{
		S:    make([]float64, 0, len(flows)),
		D:    make([]float64, 0, len(flows)),
		S2:   make([]float64, 0, len(flows)),
		InvD: make([]float64, 0, len(flows)),
	}
	for _, f := range flows {
		p.Append(f.S, f.D)
	}
	return p
}

// InputFromFlowsPop is the columnar, pooled variant of InputFromFlows: it
// resets pop, fills its columns from the measured flows and returns an
// Input carrying the population (Samples stays nil — the pooled path never
// materialises a []FlowSample). The moment sums use the exact arithmetic of
// InputFromFlows, so both builders produce bit-identical model inputs.
func InputFromFlowsPop(pop *FlowPop, flows []flow.Flow, intervalSec float64) (Input, error) {
	if pop == nil {
		return Input{}, fmt.Errorf("core: nil flow population")
	}
	if !(intervalSec > 0) {
		return Input{}, fmt.Errorf("core: interval must be > 0, got %g", intervalSec)
	}
	pop.Reset()
	for _, f := range flows {
		d := f.Duration()
		if !(d > 0) {
			continue
		}
		s := f.SizeBits()
		if !(s > 0) {
			return Input{}, fmt.Errorf("core: flow has non-positive size %g", s)
		}
		pop.Append(s, d)
	}
	n := pop.Len()
	if n == 0 {
		return Input{}, fmt.Errorf("core: no usable flows in interval")
	}
	return Input{
		Lambda:      float64(n) / intervalSec,
		MeanS:       pop.MeanS(),
		MeanS2OverD: pop.MeanS2OverD(),
		Pop:         pop,
	}, nil
}
