package core

import (
	"fmt"
	"math"
)

// FitPowerB solves the paper's §V-D calibration: given the measured
// variance σ̂² of the total rate and the measured parameters λ and E[S²/D],
// find the power-shot exponent b whose model variance
//
//	Var = λ·(b+1)²/(2b+1)·E[S²/D]
//
// matches σ̂². With ζ = σ̂² / (λ·E[S²/D]) the positive root is
//
//	b̂ = (ζ-1) + √(ζ·(ζ-1))
//
// Theorem 3 guarantees ζ ≥ 1 for an exact shot-noise process; measurement
// noise and rate averaging (§V-F) can push ζ slightly below 1, in which
// case b̂ clamps to 0 (rectangular) and ok is false.
func FitPowerB(measuredVariance, lambda, meanS2OverD float64) (b float64, ok bool, err error) {
	if !(lambda > 0) || !(meanS2OverD > 0) {
		return 0, false, fmt.Errorf("core: fit needs lambda > 0 and E[S²/D] > 0, got %g, %g", lambda, meanS2OverD)
	}
	if !(measuredVariance >= 0) {
		return 0, false, fmt.Errorf("core: measured variance must be >= 0, got %g", measuredVariance)
	}
	zeta := measuredVariance / (lambda * meanS2OverD)
	if zeta < 1 {
		return 0, false, nil
	}
	return (zeta - 1) + math.Sqrt(zeta*(zeta-1)), true, nil
}

// FitShot runs FitPowerB on model inputs and returns the fitted shot.
func FitShot(measuredVariance float64, in Input) (PowerShot, bool, error) {
	b, ok, err := FitPowerB(measuredVariance, in.Lambda, in.MeanS2OverD)
	if err != nil {
		return PowerShot{}, false, err
	}
	return PowerShot{B: b}, ok, nil
}

// MeanFromParams returns E[R] = λ·E[S] from the two parameters alone
// (Corollary 1) — what an online estimator tracks without storing flows.
func MeanFromParams(lambda, meanS float64) float64 { return lambda * meanS }

// VarianceFromParams returns Var(R) = λ·K(b)·E[S²/D] from the three-number
// parameterisation of §V-G.
func VarianceFromParams(lambda, meanS2OverD float64, shot PowerShot) float64 {
	return lambda * shot.VarianceFactor() * meanS2OverD
}

// CoVFromParams returns the coefficient of variation from the three
// parameters (λ, E[S], E[S²/D]) and a shot exponent.
func CoVFromParams(lambda, meanS, meanS2OverD float64, shot PowerShot) float64 {
	mu := MeanFromParams(lambda, meanS)
	if mu == 0 {
		return 0
	}
	return math.Sqrt(VarianceFromParams(lambda, meanS2OverD, shot)) / mu
}

// maxFitB bounds the bisection of FitPowerBAveraged. Fitted exponents in
// the paper's Figure 11 stay below 8; 16 leaves generous headroom.
const maxFitB = 16.0

// FitPowerBAveraged fits the power-shot exponent to a variance that was
// measured over averaging windows of length delta. FitPowerB compares the
// measured variance against the *instantaneous* model variance, which the
// paper notes biases b̂ low when Δ is not negligible against flow durations
// (§V-F, §VI). This variant inverts the averaged variance of eq. (7)
// instead: it finds b such that σ_Δ²(b) matches the measurement, by
// bisection (σ_Δ² is increasing in b).
//
// maxSamples caps the flow subsample used for the eq. (7) quadrature
// (deterministic stride), trading accuracy for speed; 0 means use all.
// ok is false when the measurement falls outside [σ_Δ²(0), σ_Δ²(maxFitB)]
// and b clamps to the nearer end.
func FitPowerBAveraged(measuredVariance, delta float64, in Input, maxSamples int) (float64, bool, error) {
	if !(measuredVariance >= 0) {
		return 0, false, fmt.Errorf("core: measured variance must be >= 0, got %g", measuredVariance)
	}
	if !(delta > 0) {
		return 0, false, fmt.Errorf("core: averaging interval must be > 0, got %g", delta)
	}
	samples := in.Samples
	// scale corrects the first-order subsampling bias: CrossCov for a power
	// shot factors as (S²/D)·g_b(τ/D), and E[S²/D] is heavy-tailed, so a
	// subsample can easily miss the few giant flows that carry most of it.
	// Rescaling by the full-population E[S²/D] restores the level; only the
	// (mild) shape dependence on the D-mix remains subject to noise.
	scale := 1.0
	if maxSamples > 0 && len(samples) > maxSamples {
		stride := len(samples) / maxSamples
		sub := make([]FlowSample, 0, maxSamples)
		var subS2oD float64
		for i := 0; i < len(samples); i += stride {
			sub = append(sub, samples[i])
			subS2oD += samples[i].S * samples[i].S / samples[i].D
		}
		samples = sub
		subS2oD /= float64(len(sub))
		if subS2oD > 0 && in.MeanS2OverD > 0 {
			scale = in.MeanS2OverD / subS2oD
		}
	}
	// Coarse-quadrature evaluation of eq. (7) for a power shot: the outer
	// integrand is near-linear in τ for Δ ≪ D and the bisection only needs
	// ~1e-2 accuracy in b, so 16 outer and 64 inner Simpson points suffice
	// (validated against the full-resolution path in the tests).
	avgVar := func(b float64) (float64, error) {
		p := PowerShot{B: b}
		f := func(tau float64) float64 {
			var sum float64
			for _, fs := range samples {
				sum += p.crossCovN(fs.S, fs.D, tau, 64)
			}
			return (1 - tau/delta) * in.Lambda * sum / float64(len(samples))
		}
		return scale * 2 / delta * simpson(f, 0, delta, 16), nil
	}
	lo, hi := 0.0, maxFitB
	vLo, err := avgVar(lo)
	if err != nil {
		return 0, false, err
	}
	if measuredVariance <= vLo {
		return 0, false, nil
	}
	vHi, err := avgVar(hi)
	if err != nil {
		return 0, false, err
	}
	if measuredVariance >= vHi {
		return maxFitB, false, nil
	}
	for i := 0; i < 60 && hi-lo > 1e-4; i++ {
		mid := (lo + hi) / 2
		v, err := avgVar(mid)
		if err != nil {
			return 0, false, err
		}
		if v < measuredVariance {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true, nil
}
