package core

import (
	"math"
	"testing"
)

func TestLogMGFBasics(t *testing.T) {
	m, err := NewModel(20, Triangular, testFlows(200, 21))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := m.LogMGF(0)
	if err != nil || zero != 0 {
		t.Fatalf("ψ(0) = %g, %v; want 0", zero, err)
	}
	if _, err := m.LogMGF(-1); err == nil {
		t.Fatal("negative theta should be rejected")
	}
	// ψ'(0) = mean, ψ''(0) = variance (finite differences).
	h := 1e-3 / m.Mean()
	p1, err := m.LogMGF(h)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.LogMGF(2 * h)
	if err != nil {
		t.Fatal(err)
	}
	deriv := p1 / h
	if !almostRel(deriv, m.Mean(), 2e-2) {
		t.Fatalf("ψ'(0) ≈ %g, want mean %g", deriv, m.Mean())
	}
	second := (p2 - 2*p1) / (h * h)
	if !almostRel(second, m.Variance(), 0.1) {
		t.Fatalf("ψ''(0) ≈ %g, want variance %g", second, m.Variance())
	}
	// Convex and increasing in θ.
	prev := 0.0
	prevGap := 0.0
	for i := 1; i <= 5; i++ {
		v, err := m.LogMGF(float64(i) * h)
		if err != nil {
			t.Fatal(err)
		}
		gap := v - prev
		if gap <= 0 || gap < prevGap {
			t.Fatalf("ψ not convex increasing at step %d", i)
		}
		prev, prevGap = v, gap
	}
}

func TestChernoffBoundProperties(t *testing.T) {
	m, err := NewModel(100, Triangular, testFlows(500, 22))
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := m.Mean(), m.StdDev()
	// Vacuous at and below the mean.
	if p, err := m.ChernoffExceedProb(mu); err != nil || p != 1 {
		t.Fatalf("at the mean: p = %g, %v; want 1", p, err)
	}
	// Decreasing in the capacity, within (0, 1].
	prev := 1.0
	for _, k := range []float64{0.5, 1, 2, 3, 4} {
		p, err := m.ChernoffExceedProb(mu + k*sigma)
		if err != nil {
			t.Fatal(err)
		}
		if p <= 0 || p > prev+1e-12 {
			t.Fatalf("Chernoff bound not decreasing at μ+%gσ: %g after %g", k, p, prev)
		}
		prev = p
	}
	// Near the mean the bound approaches the Gaussian exponent
	// exp(-k²/2) within the skew correction; at k=1 they should be within
	// a factor of a few.
	p1, err := m.ChernoffExceedProb(mu + sigma)
	if err != nil {
		t.Fatal(err)
	}
	gauss := math.Exp(-0.5)
	if p1 < gauss/5 || p1 > gauss*5 {
		t.Fatalf("Chernoff at μ+σ = %g, Gaussian exponent scale %g", p1, gauss)
	}
}

func TestChernoffHeavierThanGaussianTail(t *testing.T) {
	// Positive skew means the true upper tail is heavier than Gaussian;
	// the Chernoff bound must therefore sit above the Gaussian estimate
	// far out in the tail for a low-multiplexing (skewed) model.
	m, err := NewModel(5, Parabolic, testFlows(300, 23))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Mean() + 5*m.StdDev()
	chernoff, err := m.ChernoffExceedProb(c)
	if err != nil {
		t.Fatal(err)
	}
	gauss := m.ExceedProb(c)
	if !(chernoff > gauss) {
		t.Fatalf("skewed tail: Chernoff %g should exceed Gaussian %g", chernoff, gauss)
	}
}

func TestBandwidthChernoff(t *testing.T) {
	m, err := NewModel(50, Triangular, testFlows(400, 24))
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.05, 0.01, 1e-3} {
		c, err := m.BandwidthChernoff(eps)
		if err != nil {
			t.Fatal(err)
		}
		if c <= m.Mean() {
			t.Fatalf("C(%g) = %g not above the mean", eps, c)
		}
		p, err := m.ChernoffExceedProb(c)
		if err != nil {
			t.Fatal(err)
		}
		if !almostRel(p, eps, 1e-3) {
			t.Fatalf("round trip: ChernoffExceedProb(C(%g)) = %g", eps, p)
		}
	}
	// The Chernoff capacity exceeds the Gaussian one in the deep tail
	// (it accounts for the positive skew).
	cg, _ := m.Bandwidth(1e-3)
	cc, _ := m.BandwidthChernoff(1e-3)
	if !(cc > cg) {
		t.Fatalf("deep tail: Chernoff capacity %g should exceed Gaussian %g", cc, cg)
	}
	if _, err := m.BandwidthChernoff(0); err == nil {
		t.Fatal("ε=0 should be rejected")
	}
}
