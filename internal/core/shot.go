// Package core implements the paper's primary contribution: the Poisson
// shot-noise model of the total data rate on an uncongested backbone link
// (Barakat et al., IMC 2002, §IV-V).
//
// Flows arrive as a Poisson process of rate λ; flow n carries S_n bits over
// a duration D_n with a flow rate function ("shot") X_n(t-T_n), and the
// total rate is R(t) = Σ_n X_n(t-T_n). The model computes the moments, the
// distribution approximation, the auto-covariance and the spectral density
// of R(t) from three measurable inputs: λ, E[S] and E[S²/D], plus a choice
// of shot shape.
package core

import (
	"fmt"
	"math"
)

// Shot describes the flow rate function x(t) on [0, D] for a flow of size
// s bits and duration d seconds, normalised so that ∫₀^D x(t) dt = S
// (the flow transmits exactly its size, eq. 5 of the paper).
type Shot interface {
	// Rate returns x(t) in bit/s at offset t ∈ [0, d]. Zero outside.
	Rate(s, d, t float64) float64
	// IntegralX2 returns ∫₀^D x(t)² dt, the per-flow contribution to the
	// variance (Corollary 2).
	IntegralX2(s, d float64) float64
	// CrossCov returns ∫₀^{D-τ} x(t)·x(t+τ) dt for τ ≥ 0 (0 for τ ≥ D),
	// the per-flow contribution to the auto-covariance (Theorem 2).
	CrossCov(s, d, tau float64) float64
	// Cumulative returns ∫₀^t x(u) du, the bits transmitted by offset t
	// (clamped to [0, s]). The §VII-C traffic generator integrates shots
	// over rate bins with it.
	Cumulative(s, d, t float64) float64
	// Name identifies the shape in reports.
	Name() string
}

// PowerShot is the paper's parametric family x(t) = a·t^b (§V-D, Figure 7):
// b = 0 is the rectangular shot (constant rate), b = 1 the triangular shot
// (linear TCP-like ramp), b = 2 the parabolic shot. The normalisation
// constraint gives a = S(b+1)/D^(b+1).
type PowerShot struct{ B float64 }

// Predefined shapes used throughout the paper's evaluation.
var (
	Rectangular = PowerShot{B: 0}
	Triangular  = PowerShot{B: 1}
	Parabolic   = PowerShot{B: 2}
)

// NewPowerShot validates b ≥ 0 and returns the shot.
func NewPowerShot(b float64) (PowerShot, error) {
	if !(b >= 0) || math.IsInf(b, 0) {
		return PowerShot{}, fmt.Errorf("core: power shot exponent must be finite and >= 0, got %g", b)
	}
	return PowerShot{B: b}, nil
}

// Name identifies the shape.
func (p PowerShot) Name() string {
	switch p.B {
	case 0:
		return "rectangular (b=0)"
	case 1:
		return "triangular (b=1)"
	case 2:
		return "parabolic (b=2)"
	default:
		return fmt.Sprintf("power (b=%g)", p.B)
	}
}

// VarianceFactor returns K(b) = (b+1)²/(2b+1), the multiplier of λE[S²/D]
// in the variance of the total rate (§V-C/D). K(0) = 1 (the Theorem 3 lower
// bound), K(1) = 4/3, K(2) = 9/5.
func (p PowerShot) VarianceFactor() float64 {
	return (p.B + 1) * (p.B + 1) / (2*p.B + 1)
}

// Rate returns a·t^b with a = s(b+1)/d^(b+1).
func (p PowerShot) Rate(s, d, t float64) float64 {
	if t < 0 || t > d || d <= 0 {
		return 0
	}
	a := s * (p.B + 1) / math.Pow(d, p.B+1)
	return a * math.Pow(t, p.B)
}

// IntegralX2 returns K(b)·s²/d.
func (p PowerShot) IntegralX2(s, d float64) float64 {
	if d <= 0 {
		return 0
	}
	return p.VarianceFactor() * s * s / d
}

// IntegralXK returns ∫₀^D x(t)^k dt = s^k·(b+1)^k / (d^(k-1)·(kb+1)),
// needed for moments of order k (Corollary 3): the k-th cumulant of the
// total rate is λ·E[∫X^k].
func (p PowerShot) IntegralXK(s, d float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: moment order must be >= 1, got %d", k)
	}
	if d <= 0 {
		return 0, nil
	}
	kk := float64(k)
	return math.Pow(s, kk) * math.Pow(p.B+1, kk) / (math.Pow(d, kk-1) * (kk*p.B + 1)), nil
}

// CrossCov returns ∫₀^{D-τ} x(t)·x(t+τ) dt. For integer b it uses the
// closed-form binomial expansion; otherwise composite Simpson quadrature.
func (p PowerShot) CrossCov(s, d, tau float64) float64 {
	return p.crossCovN(s, d, tau, 512)
}

// Cumulative returns s·(t/d)^(b+1), the bits transmitted by offset t.
func (p PowerShot) Cumulative(s, d, t float64) float64 {
	if t <= 0 || d <= 0 {
		return 0
	}
	if t >= d {
		return s
	}
	return s * math.Pow(t/d, p.B+1)
}

// InverseCumulative returns the offset at which the flow has transmitted c
// bits: d·(c/s)^(1/(b+1)). The packet generator paces packets with it.
func (p PowerShot) InverseCumulative(s, d, c float64) float64 {
	if c <= 0 || s <= 0 || d <= 0 {
		return 0
	}
	if c >= s {
		return d
	}
	return d * math.Pow(c/s, 1/(p.B+1))
}

// crossCovN is CrossCov with an explicit quadrature resolution for the
// non-integer-b path; the eq.(7) fitter uses a coarse resolution in its
// bisection inner loop.
func (p PowerShot) crossCovN(s, d, tau float64, n int) float64 {
	if tau < 0 {
		tau = -tau
	}
	if d <= 0 || tau >= d {
		return 0
	}
	l := d - tau
	if b := int(p.B); float64(b) == p.B && b >= 0 && b <= 20 {
		// Closed form: a² Σ_j C(b,j) τ^(b-j) L^(b+j+1)/(b+j+1). All powers
		// are small integers, so binary exponentiation replaces math.Pow —
		// this is the innermost loop of the whole experiment suite
		// (AveragedVariance integrates AutoCovariance, which calls CrossCov
		// once per flow per quadrature point).
		a := s * (p.B + 1) / powi(d, b+1)
		var sum float64
		for j := 0; j <= b; j++ {
			term := binomial(b, j) * powi(tau, b-j) *
				powi(l, b+j+1) / float64(b+j+1)
			sum += term
		}
		return a * a * sum
	}
	a := s * (p.B + 1) / math.Pow(d, p.B+1)
	f := func(t float64) float64 {
		return math.Pow(t, p.B) * math.Pow(t+tau, p.B)
	}
	return a * a * simpson(f, 0, l, n)
}

// powi returns x^n for small non-negative integer n by binary
// exponentiation (exact to within ordinary float rounding; ~20× cheaper
// than math.Pow for the n ≤ 5 the shot family uses).
func powi(x float64, n int) float64 {
	r := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}

// avgVarCrossInt returns ∫₀^{min(Δ,d)} (1 - τ/Δ)·CrossCov(s,d,τ) dτ in
// closed form for integer b (the integrand is a polynomial in τ):
// expanding (d-τ)^q binomially inside CrossCov's Σ_j C(b,j)τ^{b-j}(d-τ)^q/q
// reduces the integral to monomials. It lets AveragedVariance evaluate the
// eq.(7) smoothing with one pass over the flow population instead of one
// pass per quadrature point. Callers must hold closedFormB's ok — the
// applicability depends only on the exponent, not on the flow.
func (p PowerShot) avgVarCrossInt(s, d, delta float64) float64 {
	b := int(p.B)
	if d <= 0 || delta <= 0 {
		return 0
	}
	m := delta
	if d < m {
		m = d
	}
	a := s * (p.B + 1) / powi(d, b+1)
	var total float64
	for j := 0; j <= b; j++ {
		pj := b - j    // τ exponent of the CrossCov term
		q := b + j + 1 // (d-τ) exponent
		var inner float64
		sign := 1.0
		for k := 0; k <= q; k++ {
			mk1 := powi(m, pj+k+1)
			inner += sign * binomial(q, k) * powi(d, q-k) *
				(mk1/float64(pj+k+1) - mk1*m/(float64(pj+k+2)*delta))
			sign = -sign
		}
		total += binomial(b, j) / float64(q) * inner
	}
	return a * a * total
}

// lstIntegral returns ∫₀^D (1 - e^{-θ·x(t)}) dt — the per-flow LST
// integrand of Theorem 1 — in closed form for integer-b power shots.
// Substituting u = θ·a·t^b reduces the integral to
//
//	(1/b)·(θa)^{-1/b} · ∫₀^{θaD^b} u^{1/b-1}(1 - e^{-u}) du,
//
// the incomplete-gamma-family integral gammaLower1mExp evaluates; b = 0 is
// the elementary constant-rate case via expm1 (exact even when θS/D
// underflows the e^{-y} ≈ 1 regime). Callers must hold closedFormB's ok.
func (p PowerShot) lstIntegral(s, d, theta float64) float64 {
	if d <= 0 || s <= 0 || theta <= 0 {
		return 0
	}
	b := int(p.B)
	if b == 0 {
		return d * -math.Expm1(-theta*s/d)
	}
	a := s * (p.B + 1) / powi(d, b+1)
	x := theta * a * powi(d, b)
	inv := 1 / p.B
	return inv * math.Pow(theta*a, -inv) * gammaLower1mExp(inv, x)
}

// closedFormB reports whether the shot exponent is a small non-negative
// integer for which avgVarCrossInt's expansion is well-conditioned: the
// alternating binomial sum loses precision as b grows (catastrophic
// cancellation among C(2b+1,k) terms), so exponents above 10 — far beyond
// the paper's b ∈ {0,1,2} — take the quadrature path instead, keeping the
// result within ~1e-6 relative everywhere.
func (p PowerShot) closedFormB() bool {
	b := int(p.B)
	return float64(b) == p.B && b >= 0 && b <= 10
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// FuncShot is a measurement-driven shot built from an arbitrary shape
// function φ(u) ≥ 0 on [0,1] (§V-D suggests log, square-root, exponential
// alternatives). The flow rate is x(t) = (S/D)·φ(t/D)/∫₀¹φ, which satisfies
// the size constraint for any φ.
type FuncShot struct {
	ShapeName string
	Phi       func(u float64) float64
	norm      float64 // ∫₀¹ φ
	norm2     float64 // ∫₀¹ φ²
}

// NewFuncShot validates φ and precomputes its normalisation integrals.
func NewFuncShot(name string, phi func(float64) float64) (*FuncShot, error) {
	if phi == nil {
		return nil, fmt.Errorf("core: nil shape function")
	}
	norm := simpson(phi, 0, 1, 1024)
	if !(norm > 0) || math.IsInf(norm, 0) || math.IsNaN(norm) {
		return nil, fmt.Errorf("core: shape function must have positive finite integral, got %g", norm)
	}
	norm2 := simpson(func(u float64) float64 { v := phi(u); return v * v }, 0, 1, 1024)
	return &FuncShot{ShapeName: name, Phi: phi, norm: norm, norm2: norm2}, nil
}

// Name identifies the shape.
func (f *FuncShot) Name() string { return f.ShapeName }

// Rate returns (s/d)·φ(t/d)/∫φ.
func (f *FuncShot) Rate(s, d, t float64) float64 {
	if t < 0 || t > d || d <= 0 {
		return 0
	}
	return s / d * f.Phi(t/d) / f.norm
}

// IntegralX2 returns (s²/d)·∫φ²/(∫φ)².
func (f *FuncShot) IntegralX2(s, d float64) float64 {
	if d <= 0 {
		return 0
	}
	return s * s / d * f.norm2 / (f.norm * f.norm)
}

// Cumulative integrates the normalised shape numerically: s·∫₀^{t/d}φ/∫φ.
func (f *FuncShot) Cumulative(s, d, t float64) float64 {
	if t <= 0 || d <= 0 {
		return 0
	}
	if t >= d {
		return s
	}
	return s * simpson(f.Phi, 0, t/d, 256) / f.norm
}

// CrossCov integrates numerically over the normalised shape.
func (f *FuncShot) CrossCov(s, d, tau float64) float64 {
	if tau < 0 {
		tau = -tau
	}
	if d <= 0 || tau >= d {
		return 0
	}
	u0 := tau / d
	g := func(u float64) float64 { return f.Phi(u) * f.Phi(u+u0) }
	// ∫₀^{d-τ} x(t)x(t+τ)dt = (s/(d·∫φ))² · d·∫₀^{1-u0} φ(u)φ(u+u0) du.
	scale := s / (d * f.norm)
	return scale * scale * d * simpson(g, 0, 1-u0, 512)
}

// simpson integrates f over [a, b] with n subintervals (n rounded up to
// even) using the composite Simpson rule.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if b <= a {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
