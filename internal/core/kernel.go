package core

import (
	"fmt"
	"math"
)

// Coefficient-cached kernels for the integer-b power-shot model math. The
// scalar closed forms in shot.go (avgVarCrossInt, lstIntegral, IntegralXK)
// re-derive the same Pascal-row/monomial structure on every call — nested
// powi/binomial loops per flow, per Δ or θ, per shot shape. For a fixed
// (b, Δ) or (b, θ) all of that collapses to a handful of constants:
//
//   - eq.(7): ∫₀^{min(Δ,d)} (1-τ/Δ)·CrossCov(s,d,τ) dτ with x(t) = a·t^b and
//     a = s(b+1)/d^{b+1} is, after expanding (d-τ)^q binomially,
//       d < Δ (m = d):  s²·(lt0 − lt1·d)         — linear in d, two constants
//       d ≥ Δ (m = Δ):  s²·u·P(u),  u = 1/d      — a degree-(2b+1) polynomial
//     because every d-power in the m = d branch cancels against a², while in
//     the m = Δ branch the surviving powers of d collect into one polynomial
//     in 1/d with Δ-dependent coefficients.
//   - Theorem 1 LST / log-MGF: substituting u = θ·a·t^b reduces the per-flow
//     integral to one special-function call with argument x = θ(b+1)·s/d and
//     a θ-only prefactor.
//
// The kernels precompute those constants once and evaluate per flow with a
// branchy Horner pass over FlowPop columns — no powi, binomial or math.Pow
// in the inner loop. The scalar paths remain as oracles; kernel_test.go pins
// the batched-vs-scalar divergence.

// AvgVarKernel caches the eq.(7) per-flow integral coefficients for one
// (integer shot exponent b, averaging interval Δ) pair. A kernel is
// immutable after construction and safe to share across goroutines; the
// experiment runner builds the b ∈ {0,1,2} kernels once and reuses them for
// every interval of the suite.
type AvgVarKernel struct {
	b     int
	delta float64
	// d < Δ branch: integral = s²·(lt0 − lt1·d).
	lt0, lt1 float64
	// d ≥ Δ branch: integral = s²·u·(ge[0] + ge[1]·u + … + ge[2b+1]·u^{2b+1})
	// with u = 1/d, evaluated by Horner.
	ge []float64
}

// NewAvgVarKernel builds the coefficient cache. The exponent must be in the
// well-conditioned closed-form range 0 ≤ b ≤ 10 (see closedFormB); larger or
// non-integer exponents keep the quadrature path in Model.AveragedVariance.
func NewAvgVarKernel(b int, delta float64) (*AvgVarKernel, error) {
	if b < 0 || !(PowerShot{B: float64(b)}).closedFormB() {
		return nil, fmt.Errorf("core: eq.(7) kernel needs an integer shot exponent in [0, 10], got %d", b)
	}
	if !(delta > 0) {
		return nil, fmt.Errorf("core: averaging interval must be > 0, got %g", delta)
	}
	k := &AvgVarKernel{b: b, delta: delta, ge: make([]float64, 2*b+2)}
	bp1sq := float64(b+1) * float64(b+1)
	var c1, c2 float64
	for j := 0; j <= b; j++ {
		pj := b - j    // τ exponent of the CrossCov term
		q := b + j + 1 // (d-τ) exponent
		cbj := binomial(b, j) / float64(q)
		sign := 1.0
		for kk := 0; kk <= q; kk++ {
			c := sign * cbj * binomial(q, kk)
			sign = -sign
			e1 := pj + kk + 1 // exponent of m in the antiderivative
			// m = d: both monomials carry d^{2b+2}, which cancels against a²,
			// leaving a constant and a d/Δ term.
			c1 += c / float64(e1)
			c2 += c / float64(e1+1)
			// m = Δ: the (j, kk) term contributes
			// c·Δ^{e1}·(1/e1 − 1/(e1+1))·d^{q−kk}; against a²'s d^{-(2b+2)}
			// that is the u-power 2b+2−(q−kk) ∈ [1, 2b+2].
			g := c * powi(delta, e1) * (1/float64(e1) - 1/float64(e1+1))
			k.ge[2*b+1-(q-kk)] += g
		}
	}
	k.lt0 = bp1sq * c1
	k.lt1 = bp1sq * c2 / delta
	for i := range k.ge {
		k.ge[i] *= bp1sq
	}
	return k, nil
}

// Delta returns the kernel's averaging interval.
func (k *AvgVarKernel) Delta() float64 { return k.delta }

// crossInt is the cached-coefficient equivalent of avgVarCrossInt for one
// flow, taking the precomputed s² and 1/d columns.
//
//repro:hotpath
func (k *AvgVarKernel) crossInt(s2, d, invd float64) float64 {
	if d < k.delta {
		return s2 * (k.lt0 - k.lt1*d)
	}
	ge := k.ge
	acc := ge[len(ge)-1]
	for i := len(ge) - 2; i >= 0; i-- {
		acc = acc*invd + ge[i]
	}
	return s2 * invd * acc
}

// AveragedVariance returns σ_Δ² = (2λ/Δ)·E[∫(1-τ/Δ)γ_flow] over the
// population — eq.(7) in one branch-partitioned pass, no powi or binomial
// per flow.
func (k *AvgVarKernel) AveragedVariance(lambda float64, pop *FlowPop) (float64, error) {
	n := pop.Len()
	if n == 0 {
		return 0, fmt.Errorf("core: averaged variance needs a non-empty flow population")
	}
	s2c, dc, uc := pop.S2, pop.D, pop.InvD
	var sum float64
	for i := 0; i < n; i++ {
		sum += k.crossInt(s2c[i], dc[i], uc[i])
	}
	return 2 / k.delta * lambda * sum / float64(n), nil
}

// avgVarSumMulti accumulates every kernel's population sum in one pass over
// the columns (flows outer, kernels inner), so a Δ-sweep or a shot-shape
// sweep reads the population once. Accumulation order per kernel matches
// the single-kernel pass exactly, so batched results are bit-identical to
// repeated AveragedVariance calls.
//
//repro:hotpath
func avgVarSumMulti(ks []*AvgVarKernel, pop *FlowPop, sums []float64) {
	s2c, dc, uc := pop.S2, pop.D, pop.InvD
	for i := range s2c {
		s2, d, u := s2c[i], dc[i], uc[i]
		for kj, k := range ks {
			sums[kj] += k.crossInt(s2, d, u)
		}
	}
}

// lstKernel caches the θ-dependent constants of the Theorem 1 LST integrand
// ∫₀^D (1-e^{-θx(t)})dt and its MGF mirror ∫₀^D (e^{θx(t)}-1)dt for one
// (integer b, θ) pair: the special-function argument is x = θ(b+1)·s/d for
// every b, and the prefactor (1/b)·(θ(b+1))^{-1/b} is flow-independent, so
// gammaLower1mExp / gammaLowerExpM1 is the only per-flow transcendental
// (plus one math.Pow for b ≥ 3, where d^{b+1}/s has no cheap root).
type lstKernel struct {
	b   int
	tb1 float64 // θ·(b+1)
	inv float64 // 1/b (b ≥ 1)
	c   float64 // (1/b)·(θ(b+1))^{-1/b} (b ≥ 1)
}

func newLSTKernel(b int, theta float64) lstKernel {
	k := lstKernel{b: b, tb1: theta * float64(b+1)}
	if b >= 1 {
		k.inv = 1 / float64(b)
		k.c = k.inv * math.Pow(k.tb1, -k.inv) //repro:transcendental-ok one-time kernel construction per (b, θ), hoisted off the per-flow path by design
	}
	return k
}

// root returns (d^{b+1}/s)^{1/b}, the flow-dependent factor of the hoisted
// prefactor, with cheap forms for the paper's b = 1, 2.
//
//repro:hotpath
func (k lstKernel) root(s, d float64) float64 {
	switch k.b {
	case 1:
		return d * d / s
	case 2:
		return d * math.Sqrt(d/s)
	default:
		//repro:transcendental-ok documented b ≥ 3 fallback — d^{b+1}/s has no cheap root; the paper's suite uses b ∈ {0,1,2}
		return math.Pow(powi(d, k.b+1)/s, k.inv)
	}
}

// oneMinusExp is the cached equivalent of lstIntegral for one flow.
//
//repro:hotpath
func (k lstKernel) oneMinusExp(s, d, invd float64) float64 {
	if !(d > 0) || !(s > 0) || !(k.tb1 > 0) {
		return 0
	}
	if k.b == 0 {
		return d * -math.Expm1(-k.tb1*s*invd)
	}
	return k.c * k.root(s, d) * gammaLower1mExp(k.inv, k.tb1*s*invd)
}

// expM1 is the log-MGF mirror: ∫₀^D (e^{θx(t)}-1)dt, +Inf when the integral
// overflows (the Chernoff search treats that as "past the turn").
//
//repro:hotpath
func (k lstKernel) expM1(s, d, invd float64) float64 {
	if !(d > 0) || !(s > 0) || !(k.tb1 > 0) {
		return 0
	}
	if k.b == 0 {
		return d * math.Expm1(k.tb1*s*invd)
	}
	return k.c * k.root(s, d) * gammaLowerExpM1(k.inv, k.tb1*s*invd)
}
