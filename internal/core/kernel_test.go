package core

import (
	"math"
	"testing"

	"repro/internal/dist/rng"
)

// Batched-vs-scalar differentials for the coefficient-cached kernels, the
// model-math counterpart of the flow.Measurer map-reference tests: the
// scalar closed forms (avgVarCrossInt, lstIntegral, IntegralXK, Simpson
// LogMGF) are the oracles, and the kernels must track them over adversarial
// (s, d, Δ, θ) — branch edges d ≪ Δ and d ≫ Δ, the d ≈ Δ crossover, every
// b ∈ {0..10}, and subnormal-adjacent arguments.

// avgVarTol is the allowed kernel-vs-scalar divergence for eq.(7) at shot
// exponent b. Through b = 5 the two agree to 1e-12. Above that the bound
// tracks the scalar oracle's own conditioning: its alternating binomial sum
// cancels catastrophically as b grows (the closedFormB cliff — C(2b+1,k)
// terms amplify rounding by ~8× per unit of b), so the differently-grouped
// kernel and scalar drift apart at exactly that rate. Measured worst cases
// run ~4-10× below this envelope.
func avgVarTol(b int) float64 {
	if b <= 5 {
		return 1e-12
	}
	return 1e-12 * math.Pow(8, float64(b-5))
}

// relDiff is the symmetric relative difference, 0 when both are 0.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// adversarial (d/Δ) ratios: deep into both branches, the crossover from
// both sides (including within-one-ulp approaches), and far tails.
var adversarialRatios = []float64{
	1e-9, 1e-6, 1e-3, 0.125, 0.5, 0.9, 0.99, 0.999, 0.9999999999,
	1, 1.0000000001, 1.001, 1.01, 1.1, 1.5, 2, 8, 64, 1e3, 1e6, 1e9,
}

func TestAvgVarKernelMatchesScalar(t *testing.T) {
	deltas := []float64{1e-3, 0.05, 0.2, 1, 10}
	sizes := []float64{1e-30, 1e-3, 1, 1.7e4, 1e30}
	for b := 0; b <= 10; b++ {
		ps := PowerShot{B: float64(b)}
		tol := avgVarTol(b)
		k10 := 0.0
		for _, delta := range deltas {
			k, err := NewAvgVarKernel(b, delta)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range adversarialRatios {
				d := delta * r
				for _, s := range sizes {
					want := ps.avgVarCrossInt(s, d, delta)
					got := k.crossInt(s*s, d, 1/d)
					if rel := relDiff(got, want); rel > tol {
						t.Errorf("b=%d s=%g d=%g delta=%g: kernel %g vs scalar %g (rel %g > %g)",
							b, s, d, delta, got, want, rel, tol)
					}
					if got > k10 {
						k10 = got
					}
				}
			}
		}
	}
}

// At extreme size scales the scalar oracle underflows in its intermediate
// a² = (s(b+1)/d^{b+1})² while the kernel's s²-homogeneous form survives.
// The integral is exactly s²-homogeneous, so the scalar at s = 1 rescaled
// by s² is a well-conditioned oracle at any s: the kernel must match it
// even where the direct scalar call collapses to zero.
func TestAvgVarKernelSurvivesScalarUnderflow(t *testing.T) {
	const s = 1e-150
	const delta = 0.05
	for _, b := range []int{2, 4, 10} {
		ps := PowerShot{B: float64(b)}
		k, err := NewAvgVarKernel(b, delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []float64{1e-3, 1, 1e3, 1e6} {
			d := delta * r
			want := s * s * ps.avgVarCrossInt(1, d, delta) // rescaled oracle
			got := k.crossInt(s*s, d, 1/d)
			if !(got > 0) {
				t.Fatalf("b=%d d=%g: kernel underflowed to %g", b, d, got)
			}
			if rel := relDiff(got, want); rel > avgVarTol(b) {
				t.Errorf("b=%d d=%g: kernel %g vs rescaled scalar %g (rel %g)", b, d, got, want, rel)
			}
			if direct := ps.avgVarCrossInt(s, d, delta); d >= delta && direct != 0 {
				t.Logf("b=%d d=%g: direct scalar survived with %g", b, d, direct)
			}
		}
	}
}

func TestAveragedVarianceBatchBitIdentical(t *testing.T) {
	flows := testFlows(300, 31)
	deltas := []float64{0.01, 0.05, 0.2, 0.2, 1, 5, 40}
	for _, b := range []float64{0, 1, 2, 7} {
		m, err := NewModel(120, PowerShot{B: b}, flows)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := m.AveragedVarianceBatch(deltas)
		if err != nil {
			t.Fatal(err)
		}
		for i, delta := range deltas {
			v, err := m.AveragedVariance(delta)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != v {
				t.Fatalf("b=%g delta=%g: batch %g != scalar face %g", b, delta, batch[i], v)
			}
		}
	}
	// Non-closed-form shots take the quadrature fallback and must agree too.
	m, err := NewModel(120, PowerShot{B: 1.5}, flows)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := m.AveragedVarianceBatch(deltas[:3])
	if err != nil {
		t.Fatal(err)
	}
	for i, delta := range deltas[:3] {
		v, err := m.AveragedVariance(delta)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != v {
			t.Fatalf("quadrature fallback: batch %g != scalar %g at delta=%g", batch[i], v, delta)
		}
	}
	if _, err := m.AveragedVarianceBatch([]float64{0.2, -1}); err == nil {
		t.Fatal("negative delta must error")
	}
}

func TestLSTKernelMatchesScalar(t *testing.T) {
	// Subnormal-adjacent θ·s products on both ends, plus ordinary scales.
	thetas := []float64{1e-300, 1e-12, 1e-6, 1e-3, 1, 1e3}
	sizes := []float64{1e-150, 1e-3, 1, 1.7e4, 1e150}
	durations := []float64{1e-6, 0.01, 0.5, 1, 3, 1e3, 1e9}
	for b := 0; b <= 10; b++ {
		ps := PowerShot{B: float64(b)}
		for _, theta := range thetas {
			k := newLSTKernel(b, theta)
			for _, s := range sizes {
				for _, d := range durations {
					want := ps.lstIntegral(s, d, theta)
					got := k.oneMinusExp(s, d, 1/d)
					if rel := relDiff(got, want); rel > 1e-12 {
						t.Errorf("b=%d s=%g d=%g theta=%g: kernel %g vs scalar %g (rel %g)",
							b, s, d, theta, got, want, rel)
					}
				}
			}
		}
	}
}

func TestLSTBatchBitIdentical(t *testing.T) {
	flows := testFlows(250, 32)
	thetas := []float64{0, 1e-9, 1e-7, 1e-6, 3e-6, 1e-5}
	for _, shot := range []Shot{Rectangular, Triangular, Parabolic, PowerShot{B: 0.5}} {
		m, err := NewModel(80, shot, flows)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := m.LSTBatch(thetas)
		if err != nil {
			t.Fatal(err)
		}
		for i, theta := range thetas {
			v, err := m.LST(theta)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != v {
				t.Fatalf("%s theta=%g: batch %g != scalar face %g", shot.Name(), theta, batch[i], v)
			}
		}
	}
	m, err := NewModel(80, Triangular, flows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LSTBatch([]float64{1e-6, -1}); err == nil {
		t.Fatal("negative theta must error")
	}
}

// Cumulant's hoisted powi loop must track the per-flow IntegralXK oracle.
func TestCumulantMatchesIntegralXKOracle(t *testing.T) {
	flows := testFlows(200, 33)
	for _, b := range []float64{0, 1, 2, 3.5, 10} {
		ps := PowerShot{B: b}
		m, err := NewModel(60, ps, flows)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 4; k++ {
			got, err := m.Cumulant(k)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, f := range flows {
				v, err := ps.IntegralXK(f.S, f.D, k)
				if err != nil {
					t.Fatal(err)
				}
				sum += v
			}
			want := m.Lambda * sum / float64(len(flows))
			if rel := relDiff(got, want); rel > 1e-12 {
				t.Errorf("b=%g k=%d: cumulant %g vs oracle %g (rel %g)", b, k, got, want, rel)
			}
		}
	}
}

// The closed-form log-MGF must track a fine Simpson quadrature of the
// integrand (the pre-kernel scalar path) for every integer b.
func TestLogMGFClosedFormMatchesQuadrature(t *testing.T) {
	flows := testFlows(40, 34)
	for _, b := range []float64{0, 1, 2, 4} {
		ps := PowerShot{B: b}
		m, err := NewModel(10, ps, flows)
		if err != nil {
			t.Fatal(err)
		}
		mu := m.Mean()
		for _, theta := range []float64{1e-9 / mu * 1e9, 0.5 / mu, 2 / mu} {
			got, err := m.LogMGF(theta)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, f := range flows {
				s, d := f.S, f.D
				sum += simpson(func(u float64) float64 {
					return math.Expm1(theta * ps.Rate(s, d, u))
				}, 0, d, 4096)
			}
			want := m.Lambda * sum / float64(len(flows))
			if rel := relDiff(got, want); rel > 1e-8 {
				t.Errorf("b=%g theta=%g: closed form %g vs quadrature %g (rel %g)", b, theta, got, want, rel)
			}
		}
	}
}

// gammaLowerExpM1 must overflow to +Inf exactly where the integral does,
// and agree with the complementary small-x series region smoothly.
func TestGammaLowerExpM1Extremes(t *testing.T) {
	if v := gammaLowerExpM1(0.5, 800); !math.IsInf(v, 1) {
		t.Fatalf("H(0.5, 800) = %g, want +Inf", v)
	}
	if v := gammaLowerExpM1(1, 0); v != 0 {
		t.Fatalf("H(1, 0) = %g, want 0", v)
	}
	// Large-but-finite x: H(1, x) = e^x - 1 - x exactly (a = 1).
	for _, x := range []float64{0.5, 5, 50, 500} {
		want := math.Expm1(x) - x
		got := gammaLowerExpM1(1, x)
		if rel := relDiff(got, want); rel > 1e-13 {
			t.Errorf("H(1, %g) = %g, want %g (rel %g)", x, got, want, rel)
		}
	}
}

// Randomised sweep: kernels against scalars over lognormal populations with
// mixed branch occupancy, exercising the accumulation (not just single
// flows).
func TestKernelPopulationSweep(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 50 + r.Intn(200)
		flows := make([]FlowSample, n)
		for i := range flows {
			s := 1e4 * math.Exp(1.5*r.Norm())
			d := 0.05 * math.Exp(2*r.Norm()) // straddles Δ = 0.2 heavily
			flows[i] = FlowSample{S: s, D: d}
		}
		b := r.Intn(11)
		delta := 0.2 * math.Exp(r.Norm())
		lambda := 1 + 400*r.Float64()
		m, err := NewModel(lambda, PowerShot{B: float64(b)}, flows)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.AveragedVariance(delta)
		if err != nil {
			t.Fatal(err)
		}
		ps := PowerShot{B: float64(b)}
		var sum float64
		for _, f := range flows {
			sum += ps.avgVarCrossInt(f.S, f.D, delta)
		}
		want := 2 / delta * lambda * sum / float64(n)
		if rel := relDiff(got, want); rel > avgVarTol(b) {
			t.Errorf("trial %d b=%d delta=%g: kernel face %g vs scalar sum %g (rel %g)",
				trial, b, delta, got, want, rel)
		}
		theta := math.Exp(-20 + 10*r.Norm())
		gotLST, err := m.LST(theta)
		if err != nil {
			t.Fatal(err)
		}
		sum = 0
		for _, f := range flows {
			sum += ps.lstIntegral(f.S, f.D, theta)
		}
		wantLST := math.Exp(-lambda * sum / float64(n))
		if rel := relDiff(gotLST, wantLST); rel > 1e-12 {
			t.Errorf("trial %d b=%d theta=%g: LST face %g vs scalar sum %g (rel %g)",
				trial, b, theta, gotLST, wantLST, rel)
		}
	}
}
