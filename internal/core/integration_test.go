package core_test

// End-to-end validation of the paper's central claim (§VI, Figures 9-13):
// measure flows on a packet trace, feed (λ, E[S²/D]) into the shot-noise
// model with the matching shot shape, and the model's coefficient of
// variation reproduces the measured one. The comparison uses the averaged
// variance σ_Δ² of eq. (7), which the paper identifies as the correct
// counterpart of a rate measured over Δ-length windows.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

const (
	itDuration = 300.0 // one analysis interval, seconds
	itDelta    = 0.2   // averaging interval Δ (the paper's 200 ms)
	itLambda   = 400.0
)

// itTrace generates one synthetic interval with per-flow shot exponent b.
// Mean flow rate 150 kb/s keeps durations (≈1 s typical) above Δ, 500-byte
// packets keep the in-flow shot realisation fine-grained, and a 60 s
// warm-up puts the link in stationary regime before the window opens.
// Sessions are disabled (FlowsPerSession = 1) so the traffic satisfies the
// model's iid-flow Assumption 2 exactly; the session-structured suite is
// exercised by TestPrefixAggregationFlattensShot and the experiment runs.
func itTrace(t *testing.T, b float64, seed int64) []trace.Record {
	t.Helper()
	size, err := dist.NewBoundedPareto(1.3, 1500, 1.5e6)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := dist.LognormalFromMoments(150e3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.Config{
		Duration:        itDuration,
		Lambda:          itLambda,
		SizeBytes:       size,
		RateBps:         rate,
		ShotB:           dist.Constant{V: b},
		PktBytes:        500,
		Warmup:          60,
		FlowsPerSession: 1,
		Seed:            seed,
	}
	recs, _, err := trace.GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// measureInterval runs the full §III pipeline and returns the measured rate
// series plus the model input.
func measureInterval(t *testing.T, recs []trace.Record) (timeseries.Series, core.Input) {
	t.Helper()
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	series, err := timeseries.Bin(recs, itDuration, itDelta)
	if err != nil {
		t.Fatal(err)
	}
	series.Subtract(res.Discarded)
	in, err := core.InputFromFlows(res.Flows, itDuration)
	if err != nil {
		t.Fatal(err)
	}
	return series, in
}

// modelCoVAveraged returns the model CoV corrected for Δ-averaging (eq. 7).
func modelCoVAveraged(t *testing.T, m *core.Model) float64 {
	t.Helper()
	v, err := m.AveragedVariance(itDelta)
	if err != nil {
		t.Fatal(err)
	}
	return math.Sqrt(v) / m.Mean()
}

func TestModelMatchesMeasuredCoV(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping trace-scale integration test in -short mode")
	}
	for _, tc := range []struct {
		name string
		b    float64
		shot core.Shot
	}{
		{"rectangular", 0, core.Rectangular},
		{"triangular", 1, core.Triangular},
		{"parabolic", 2, core.Parabolic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			series, in := measureInterval(t, itTrace(t, tc.b, int64(100+tc.b)))
			m, err := in.Model(tc.shot)
			if err != nil {
				t.Fatal(err)
			}
			measured := series.CoV()
			model := modelCoVAveraged(t, m)
			// The paper's Figures 9-13 use ±20% bands.
			if rel := math.Abs(model-measured) / measured; rel > 0.20 {
				t.Fatalf("model CoV %.4f vs measured %.4f (rel err %.0f%%)",
					model, measured, rel*100)
			}
		})
	}
}

func TestWrongShotShapeMisestimates(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping trace-scale integration test in -short mode")
	}
	// Traffic generated with parabolic in-flow pacing, modelled with the
	// rectangular shot, must under-estimate the CoV (the paper's point that
	// too-flat shots under-estimate for 5-tuple flows, §VI-A).
	series, in := measureInterval(t, itTrace(t, 2, 777))
	mRect, err := in.Model(core.Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	mPar, err := in.Model(core.Parabolic)
	if err != nil {
		t.Fatal(err)
	}
	rect := modelCoVAveraged(t, mRect)
	par := modelCoVAveraged(t, mPar)
	if !(rect < par) {
		t.Fatalf("rectangular CoV %g should be below parabolic %g", rect, par)
	}
	if rect > series.CoV() {
		t.Fatalf("rectangular model CoV %g should under-estimate measured %g",
			rect, series.CoV())
	}
}

func TestFittedBRecoversGenerationExponent(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping trace-scale integration test in -short mode")
	}
	// §V-D calibration on traffic generated with b=2 should fit b̂ near 2
	// on average (the paper's Figure 11 reports the distribution of b̂ over
	// intervals with mean ≈ 2; single intervals scatter, because the
	// variance estimate of heavy-tailed traffic over one window is noisy).
	// The raw FitPowerB is biased low by Δ-averaging; the eq.(7)-corrected
	// variant removes that bias, so its per-interval values must exceed the
	// raw ones and their average must bracket the true exponent.
	var sumRaw, sumHat float64
	seeds := []int64{4242, 911, 5150}
	for _, seed := range seeds {
		series, in := measureInterval(t, itTrace(t, 2, seed))
		bRaw, _, err := core.FitPowerB(series.Variance(), in.Lambda, in.MeanS2OverD)
		if err != nil {
			t.Fatal(err)
		}
		bHat, ok, err := core.FitPowerBAveraged(series.Variance(), itDelta, in, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: corrected fit clamped", seed)
		}
		if !(bRaw < bHat) {
			t.Fatalf("seed %d: raw fit %g should under-estimate the corrected fit %g", seed, bRaw, bHat)
		}
		sumRaw += bRaw
		sumHat += bHat
	}
	meanHat := sumHat / float64(len(seeds))
	if meanHat < 1.3 || meanHat > 2.9 {
		t.Fatalf("mean corrected b̂ = %g over %d intervals, want ≈ 2 (within [1.3, 2.9])",
			meanHat, len(seeds))
	}
}

func TestPrefixAggregationFlattensShot(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping trace-scale integration test in -short mode")
	}
	// The paper finds rectangular shots fit /24-prefix flows even when the
	// underlying 5-tuple dynamics are super-linear: aggregation "dilutes"
	// transport effects (§VI-A). Fit b̂ at both aggregation levels on the
	// session-structured suite-style traffic and check it is smaller for
	// prefixes.
	size, err := dist.NewBoundedPareto(1.3, 1500, 3e5)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := dist.LognormalFromMoments(80e3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := trace.GenerateAll(trace.Config{
		Duration:  itDuration,
		Lambda:    itLambda,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Uniform{Lo: 1.5, Hi: 2.5},
		Warmup:    90,
		Seed:      90125,
	})
	if err != nil {
		t.Fatal(err)
	}
	fit := func(def flow.Definition) float64 {
		res, err := flow.Measure(recs, def, flow.DefaultTimeout)
		if err != nil {
			t.Fatal(err)
		}
		series, err := timeseries.Bin(recs, itDuration, itDelta)
		if err != nil {
			t.Fatal(err)
		}
		series.Subtract(res.Discarded)
		in, err := core.InputFromFlows(res.Flows, itDuration)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := core.FitPowerB(series.Variance(), in.Lambda, in.MeanS2OverD)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b5 := fit(flow.By5Tuple)
	bP := fit(flow.ByPrefix24)
	if !(bP < b5) {
		t.Fatalf("prefix aggregation should flatten the fitted shot: b̂(/24)=%g vs b̂(5-tuple)=%g", bP, b5)
	}
}
