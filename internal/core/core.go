package core
