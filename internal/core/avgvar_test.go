package core

import (
	"math"
	"testing"
)

// The closed-form eq.(7) integral used for integer-b power shots must agree
// with the generic quadrature path it replaced.
func TestAveragedVarianceClosedFormMatchesQuadrature(t *testing.T) {
	flows := testFlows(400, 9)
	for _, b := range []float64{0, 1, 2, 3} {
		shot := PowerShot{B: b}
		m, err := NewModel(25, shot, flows)
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range []float64{0.05, 0.2, 1, 10} {
			got, err := m.AveragedVariance(delta)
			if err != nil {
				t.Fatal(err)
			}
			// Re-derive via the quadrature definition.
			f := func(tau float64) float64 {
				return (1 - tau/delta) * m.AutoCovariance(tau)
			}
			want := 2 / delta * simpson(f, 0, delta, 2048)
			if math.Abs(got-want) > 1e-6*math.Abs(want) {
				t.Fatalf("b=%g Δ=%g: closed form %g vs quadrature %g", b, delta, got, want)
			}
		}
	}
}

// powi must match math.Pow on the exponent range the shot family uses.
func TestPowi(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for _, x := range []float64{0, 0.3, 1, 2.5, 120} {
			got, want := powi(x, n), math.Pow(x, float64(n))
			if want == 0 {
				if got != 0 && n > 0 {
					t.Fatalf("powi(%g, %d) = %g, want 0", x, n, got)
				}
				continue
			}
			if math.Abs(got-want) > 1e-12*math.Abs(want) {
				t.Fatalf("powi(%g, %d) = %g, want %g", x, n, got, want)
			}
		}
	}
	if powi(7, 0) != 1 {
		t.Fatal("x^0 must be 1")
	}
}
