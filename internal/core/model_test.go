package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

// testFlows draws a reproducible flow population: heavy-ish sizes, durations
// from an independent rate.
func testFlows(n int, seed int64) []FlowSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]FlowSample, n)
	for i := range out {
		s := 1e4 * math.Exp(rng.NormFloat64()) // lognormal sizes, bits
		r := 2e4 * math.Exp(0.5*rng.NormFloat64())
		out[i] = FlowSample{S: s, D: s / r}
	}
	return out
}

func TestNewModelValidation(t *testing.T) {
	fl := testFlows(10, 1)
	if _, err := NewModel(0, Triangular, fl); err == nil {
		t.Fatal("lambda 0 should be rejected")
	}
	if _, err := NewModel(10, nil, fl); err == nil {
		t.Fatal("nil shot should be rejected")
	}
	if _, err := NewModel(10, Triangular, nil); err == nil {
		t.Fatal("empty flows should be rejected")
	}
	if _, err := NewModel(10, Triangular, []FlowSample{{S: -1, D: 1}}); err == nil {
		t.Fatal("negative size should be rejected")
	}
	if _, err := NewModel(10, Triangular, []FlowSample{{S: 1, D: 0}}); err == nil {
		t.Fatal("zero duration should be rejected")
	}
}

func TestMeanIsLambdaES(t *testing.T) {
	fl := testFlows(1000, 2)
	var sum float64
	for _, f := range fl {
		sum += f.S
	}
	m, err := NewModel(50, Parabolic, fl)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * sum / 1000
	if !almostRel(m.Mean(), want, 1e-12) {
		t.Fatalf("mean = %g, want λE[S] = %g", m.Mean(), want)
	}
	// Corollary 1: the mean is shot-independent.
	m2, err := NewModel(50, Rectangular, fl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mean() != m2.Mean() {
		t.Fatal("mean must not depend on the shot shape")
	}
}

func TestVarianceFactorsAcrossShapes(t *testing.T) {
	fl := testFlows(2000, 3)
	lb := 0.0
	for _, f := range fl {
		lb += f.S * f.S / f.D
	}
	lb = 40 * lb / 2000 // λ·E[S²/D]
	for _, c := range []struct {
		shot PowerShot
		k    float64
	}{
		{Rectangular, 1}, {Triangular, 4.0 / 3.0}, {Parabolic, 9.0 / 5.0},
	} {
		m, err := NewModel(40, c.shot, fl)
		if err != nil {
			t.Fatal(err)
		}
		if !almostRel(m.Variance(), c.k*lb, 1e-9) {
			t.Fatalf("%s: variance %g, want %g·λE[S²/D] = %g",
				c.shot.Name(), m.Variance(), c.k, c.k*lb)
		}
		if !almostRel(m.VarianceLowerBound(), lb, 1e-9) {
			t.Fatalf("lower bound %g, want %g", m.VarianceLowerBound(), lb)
		}
	}
}

// Theorem 3 as a property: for arbitrary power shots and arbitrary flow
// populations, the variance is at least the rectangular-shot variance.
func TestTheorem3Property(t *testing.T) {
	f := func(rawB float64, seed int64) bool {
		b := math.Abs(math.Mod(rawB, 6))
		fl := testFlows(200, seed)
		m, err := NewModel(10, PowerShot{B: b}, fl)
		if err != nil {
			return false
		}
		return m.Variance() >= m.VarianceLowerBound()*(1-1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3 also holds for arbitrary (non-power) shapes.
func TestTheorem3ForFuncShots(t *testing.T) {
	shapes := map[string]func(float64) float64{
		"sqrt":       math.Sqrt,
		"log":        func(u float64) float64 { return math.Log(1 + 9*u) },
		"exp":        func(u float64) float64 { return math.Exp(3 * u) },
		"hump":       func(u float64) float64 { return u * (1 - u) },
		"front-load": func(u float64) float64 { return 1 - u },
	}
	fl := testFlows(500, 7)
	for name, phi := range shapes {
		fs, err := NewFuncShot(name, phi)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewModel(25, fs, fl)
		if err != nil {
			t.Fatal(err)
		}
		if m.Variance() < m.VarianceLowerBound()*(1-1e-9) {
			t.Fatalf("shape %q violates Theorem 3: var %g < bound %g",
				name, m.Variance(), m.VarianceLowerBound())
		}
	}
}

func TestAutoCovarianceAtZeroIsVariance(t *testing.T) {
	m, err := NewModel(30, Triangular, testFlows(500, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(m.AutoCovariance(0), m.Variance(), 1e-9) {
		t.Fatalf("γ(0) = %g, variance %g", m.AutoCovariance(0), m.Variance())
	}
	if !almostRel(m.AutoCorrelation(0), 1, 1e-9) {
		t.Fatalf("ρ(0) = %g, want 1", m.AutoCorrelation(0))
	}
}

func TestAutoCovarianceDecaysAndVanishes(t *testing.T) {
	fl := testFlows(500, 5)
	var maxD float64
	for _, f := range fl {
		if f.D > maxD {
			maxD = f.D
		}
	}
	m, err := NewModel(30, Parabolic, fl)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for tau := 0.0; tau <= maxD; tau += maxD / 20 {
		v := m.AutoCovariance(tau)
		if v > prev+1e-9 {
			t.Fatalf("γ increased at τ=%g", tau)
		}
		if v < 0 {
			t.Fatalf("γ(%g) = %g negative for monotone shots", tau, v)
		}
		prev = v
	}
	if got := m.AutoCovariance(maxD * 1.01); got != 0 {
		t.Fatalf("γ beyond max duration = %g, want 0", got)
	}
}

func TestAveragedVarianceProperties(t *testing.T) {
	m, err := NewModel(30, Triangular, testFlows(300, 6))
	if err != nil {
		t.Fatal(err)
	}
	v := m.Variance()
	small, err := m.AveragedVariance(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(small, v, 1e-2) {
		t.Fatalf("σ_Δ² for tiny Δ = %g, want ≈ σ² = %g", small, v)
	}
	// σ_Δ² decreases with Δ (the paper's smoothing-by-averaging).
	prev := v
	for _, delta := range []float64{0.05, 0.2, 1, 5} {
		got, err := m.AveragedVariance(delta)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Fatalf("σ_Δ² increased at Δ=%g", delta)
		}
		if got > v {
			t.Fatalf("σ_Δ² = %g exceeds σ² = %g", got, v)
		}
		prev = got
	}
	if _, err := m.AveragedVariance(0); err == nil {
		t.Fatal("Δ=0 should be rejected")
	}
}

func TestLSTProperties(t *testing.T) {
	m, err := NewModel(20, Triangular, testFlows(200, 8))
	if err != nil {
		t.Fatal(err)
	}
	one, err := m.LST(0)
	if err != nil || one != 1 {
		t.Fatalf("LST(0) = %g, %v; want 1", one, err)
	}
	if _, err := m.LST(-1); err == nil {
		t.Fatal("negative theta should be rejected")
	}
	// Monotone decreasing in θ, bounded in (0, 1].
	prev := 1.0
	for _, theta := range []float64{1e-9, 1e-8, 1e-7, 1e-6} {
		v, err := m.LST(theta)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 || v > prev {
			t.Fatalf("LST not decreasing in (0,1]: LST(%g) = %g after %g", theta, v, prev)
		}
		prev = v
	}
	// -d/dθ log LST at 0 equals the mean (Theorem 1 ⇒ Corollary 1).
	h := 1e-9 / m.Mean() * 1e3 // scale step to the rate magnitude
	lo, err := m.LST(h)
	if err != nil {
		t.Fatal(err)
	}
	deriv := -(math.Log(lo)) / h
	if !almostRel(deriv, m.Mean(), 1e-3) {
		t.Fatalf("LST derivative %g, want mean %g", deriv, m.Mean())
	}
}

func TestCumulantsMatchMoments(t *testing.T) {
	m, err := NewModel(15, Parabolic, testFlows(300, 9))
	if err != nil {
		t.Fatal(err)
	}
	k1, err := m.Cumulant(1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(k1, m.Mean(), 1e-12) {
		t.Fatalf("κ₁ = %g, mean %g", k1, m.Mean())
	}
	k2, err := m.Cumulant(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(k2, m.Variance(), 1e-12) {
		t.Fatalf("κ₂ = %g, variance %g", k2, m.Variance())
	}
	if _, err := m.Cumulant(0); err == nil {
		t.Fatal("order 0 should be rejected")
	}
	sk, err := m.Skewness()
	if err != nil {
		t.Fatal(err)
	}
	if sk <= 0 {
		t.Fatalf("skewness = %g, want > 0 for positive shots", sk)
	}
}

// NewModel rejects an empty population, but a hand-built Model can carry
// one; LST and Cumulant must return an error rather than the NaN their
// divide-by-len would produce (mirrors the Cumulant(0) rejection above).
func TestEmptyPopulationRejected(t *testing.T) {
	fs, err := NewFuncShot("flat", func(u float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for _, shot := range []Shot{Parabolic, fs} {
		m := &Model{Lambda: 10, Shot: shot}
		if v, err := m.LST(0.5); err == nil {
			t.Fatalf("%s: LST on empty population = %g, want error", shot.Name(), v)
		}
		if v, err := m.Cumulant(2); err == nil {
			t.Fatalf("%s: Cumulant on empty population = %g, want error", shot.Name(), v)
		}
	}
	// θ = 0 stays exact without touching the population.
	m := &Model{Lambda: 10, Shot: Parabolic}
	if one, err := m.LST(0); err != nil || one != 1 {
		t.Fatalf("LST(0) = %g, %v; want 1", one, err)
	}
}

// The closed-form eq.(7) path divides by the population size; a hand-built
// Model with no flows must surface an error from the transform faces and
// exact zeros from the moment faces, never NaN.
func TestEmptyPopulationMomentFaces(t *testing.T) {
	m := &Model{Lambda: 10, Shot: Triangular}
	if _, err := m.AveragedVariance(0.2); err == nil {
		t.Fatal("AveragedVariance on empty population should error, not NaN")
	}
	if _, err := m.AveragedVarianceBatch([]float64{0.05, 0.2}); err == nil {
		t.Fatal("AveragedVarianceBatch on empty population should error")
	}
	if out, err := m.AveragedVarianceBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty Δ batch: %v, %v; want empty slice", out, err)
	}
	if _, err := m.LSTBatch([]float64{1e-6}); err == nil {
		t.Fatal("LSTBatch on empty population should error")
	}
	if _, err := m.LogMGF(1e-6); err == nil {
		t.Fatal("LogMGF on empty population should error")
	}
	if v := m.Variance(); v != 0 {
		t.Fatalf("Variance on empty population = %g, want 0", v)
	}
	if v := m.CoV(); v != 0 {
		t.Fatalf("CoV on empty population = %g, want 0", v)
	}
	if v := m.AutoCovariance(0.1); v != 0 {
		t.Fatalf("AutoCovariance on empty population = %g, want 0", v)
	}
	if v := m.SpectralDensity(1); v != 0 {
		t.Fatalf("SpectralDensity on empty population = %g, want 0", v)
	}
}

// WithLambda shares the population and moments, so every derived quantity
// must equal a model rebuilt from scratch at the new rate — exactly, since
// the arithmetic paths are identical.
func TestWithLambdaMatchesRebuild(t *testing.T) {
	fl := testFlows(400, 16)
	base, err := NewModel(25, Triangular, fl)
	if err != nil {
		t.Fatal(err)
	}
	for _, mult := range []float64{0.25, 1, 3, 16} {
		scaled, err := base.WithLambda(25 * mult)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewModel(25*mult, Triangular, fl)
		if err != nil {
			t.Fatal(err)
		}
		if scaled.Mean() != want.Mean() {
			t.Fatalf("mult %g: mean %g != %g", mult, scaled.Mean(), want.Mean())
		}
		if scaled.Variance() != want.Variance() {
			t.Fatalf("mult %g: variance %g != %g", mult, scaled.Variance(), want.Variance())
		}
		av1, err1 := scaled.AveragedVariance(0.2)
		av2, err2 := want.AveragedVariance(0.2)
		if err1 != nil || err2 != nil || av1 != av2 {
			t.Fatalf("mult %g: σ_Δ² %g != %g (%v, %v)", mult, av1, av2, err1, err2)
		}
		b1, err1 := scaled.Bandwidth(0.01)
		b2, err2 := want.Bandwidth(0.01)
		if err1 != nil || err2 != nil || b1 != b2 {
			t.Fatalf("mult %g: bandwidth %g != %g", mult, b1, b2)
		}
	}
	if _, err := base.WithLambda(0); err == nil {
		t.Fatal("λ=0 should be rejected")
	}
	if _, err := base.WithLambda(-3); err == nil {
		t.Fatal("negative λ should be rejected")
	}
	// The base model is untouched.
	if base.Lambda != 25 {
		t.Fatalf("WithLambda mutated the receiver: λ = %g", base.Lambda)
	}
}

// The pooled columnar path must produce bitwise the same moments as the
// allocating path, and a reused pool must carry no state across intervals.
func TestInputFromFlowsPopMatchesAllocating(t *testing.T) {
	flows := []flow.Flow{
		{Start: 0, End: 2, Bytes: 1000, Packets: 3},
		{Start: 1, End: 4, Bytes: 2500, Packets: 5},
		{Start: 5, End: 6, Bytes: 500, Packets: 2},
		{Start: 7, End: 7, Bytes: 100, Packets: 1}, // zero duration: skipped
	}
	ref, err := InputFromFlows(flows, 60)
	if err != nil {
		t.Fatal(err)
	}
	pop := &FlowPop{}
	got, err := InputFromFlowsPop(pop, flows, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lambda != ref.Lambda || got.MeanS != ref.MeanS || got.MeanS2OverD != ref.MeanS2OverD {
		t.Fatalf("pooled moments (%g, %g, %g) != allocating (%g, %g, %g)",
			got.Lambda, got.MeanS, got.MeanS2OverD, ref.Lambda, ref.MeanS, ref.MeanS2OverD)
	}
	if got.Pop != pop || got.Pop.Len() != len(ref.Samples) {
		t.Fatalf("pooled input does not carry the pool (len %d vs %d)", got.Pop.Len(), len(ref.Samples))
	}
	// Reuse with a different interval: the pool must reset completely.
	again, err := InputFromFlowsPop(pop, flows[1:3], 30)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Len() != 2 {
		t.Fatalf("reused pool kept stale flows: len %d, want 2", pop.Len())
	}
	ref2, err := InputFromFlows(flows[1:3], 30)
	if err != nil {
		t.Fatal(err)
	}
	if again.Lambda != ref2.Lambda || again.MeanS != ref2.MeanS || again.MeanS2OverD != ref2.MeanS2OverD {
		t.Fatal("reused pool moments diverge from a fresh computation")
	}
	// Models over the pooled and allocating inputs agree exactly.
	mp, err := again.Model(Parabolic)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := ref2.Model(Parabolic)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Variance() != ma.Variance() {
		t.Fatalf("pooled model variance %g != allocating %g", mp.Variance(), ma.Variance())
	}
	if _, err := InputFromFlowsPop(pop, flows[3:], 30); err == nil {
		t.Fatal("interval with no usable flows should error")
	}
	if _, err := InputFromFlowsPop(pop, flows, 0); err == nil {
		t.Fatal("zero interval should be rejected")
	}
}

func TestCumulantFuncShotNumericPath(t *testing.T) {
	fs, err := NewFuncShot("flat", func(u float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	fl := testFlows(100, 10)
	mf, err := NewModel(15, fs, fl)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewModel(15, Rectangular, fl)
	if err != nil {
		t.Fatal(err)
	}
	kf, err := mf.Cumulant(3)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := mr.Cumulant(3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(kf, kr, 1e-6) {
		t.Fatalf("numeric cumulant %g vs closed form %g", kf, kr)
	}
}

func TestSpectralDensity(t *testing.T) {
	fl := testFlows(100, 11)
	m, err := NewModel(15, Rectangular, fl)
	if err != nil {
		t.Fatal(err)
	}
	// Γ(0) = λ/(2π)·E[S²] because X̂(0) = ∫x = S.
	var s2 float64
	for _, f := range fl {
		s2 += f.S * f.S
	}
	want := 15 / (2 * math.Pi) * s2 / float64(len(fl))
	if got := m.SpectralDensity(0); !almostRel(got, want, 1e-3) {
		t.Fatalf("Γ(0) = %g, want λE[S²]/2π = %g", got, want)
	}
	// Non-negative, decaying envelope at high frequency.
	if g := m.SpectralDensity(100); g < 0 || g > m.SpectralDensity(0) {
		t.Fatalf("Γ(100) = %g out of range", g)
	}
}

func TestGaussianApproxAndDimensioning(t *testing.T) {
	m, err := NewModel(200, Triangular, testFlows(2000, 12))
	if err != nil {
		t.Fatal(err)
	}
	// PDF integrates to ≈1 over μ±8σ.
	mu, sigma := m.Mean(), m.StdDev()
	mass := simpson(m.GaussianPDF, mu-8*sigma, mu+8*sigma, 2048)
	if !almostRel(mass, 1, 1e-6) {
		t.Fatalf("Gaussian pdf mass = %g", mass)
	}
	// Bandwidth/ExceedProb round trip: P(R > C(ε)) = ε.
	for _, eps := range []float64{0.001, 0.01, 0.05, 0.3} {
		c, err := m.Bandwidth(eps)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.ExceedProb(c); !almostRel(got, eps, 1e-6) {
			t.Fatalf("ExceedProb(Bandwidth(%g)) = %g", eps, got)
		}
	}
	// Smaller ε needs more capacity.
	c1, _ := m.Bandwidth(0.01)
	c5, _ := m.Bandwidth(0.05)
	if c1 <= c5 {
		t.Fatalf("C(0.01) = %g should exceed C(0.05) = %g", c1, c5)
	}
	// The 50% point is the mean.
	c50, _ := m.Bandwidth(0.5)
	if !almostRel(c50, mu, 1e-9) {
		t.Fatalf("C(0.5) = %g, want mean %g", c50, mu)
	}
	if _, err := m.Bandwidth(0); err == nil {
		t.Fatal("ε=0 should be rejected")
	}
	if _, err := m.Bandwidth(1); err == nil {
		t.Fatal("ε=1 should be rejected")
	}
}

// The §VII-A smoothing law: at fixed flow population, CoV ∝ 1/√λ.
func TestSmoothingWithLambda(t *testing.T) {
	fl := testFlows(1000, 13)
	m1, err := NewModel(10, Triangular, fl)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := NewModel(40, Triangular, fl)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(m1.CoV()/m4.CoV(), 2, 1e-9) {
		t.Fatalf("CoV ratio for λ×4 = %g, want 2 (1/√λ law)", m1.CoV()/m4.CoV())
	}
	// Mean scales linearly, σ as √λ.
	if !almostRel(m4.Mean(), 4*m1.Mean(), 1e-12) {
		t.Fatal("mean not linear in λ")
	}
	if !almostRel(m4.StdDev(), 2*m1.StdDev(), 1e-9) {
		t.Fatal("σ not √λ")
	}
}

func TestInputFromFlows(t *testing.T) {
	flows := []flow.Flow{
		{Start: 0, End: 2, Bytes: 1000, Packets: 3}, // S=8000 bits, D=2
		{Start: 5, End: 6, Bytes: 500, Packets: 2},  // S=4000, D=1
		{Start: 7, End: 7, Bytes: 100, Packets: 1},  // zero duration: skipped
	}
	in, err := InputFromFlows(flows, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(in.Samples))
	}
	if !almostRel(in.Lambda, 2.0/60, 1e-12) {
		t.Fatalf("λ = %g, want 1/30", in.Lambda)
	}
	if !almostRel(in.MeanS, 6000, 1e-12) {
		t.Fatalf("E[S] = %g, want 6000", in.MeanS)
	}
	want := (8000.0*8000/2 + 4000.0*4000/1) / 2
	if !almostRel(in.MeanS2OverD, want, 1e-12) {
		t.Fatalf("E[S²/D] = %g, want %g", in.MeanS2OverD, want)
	}
	m, err := in.Model(Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if !almostRel(m.Mean(), in.Lambda*in.MeanS, 1e-12) {
		t.Fatal("model from input inconsistent")
	}
	if _, err := InputFromFlows(flows, 0); err == nil {
		t.Fatal("zero interval should be rejected")
	}
	if _, err := InputFromFlows(nil, 60); err == nil {
		t.Fatal("no flows should error")
	}
}

func TestFitPowerBRoundTrip(t *testing.T) {
	fl := testFlows(2000, 14)
	for _, b := range []float64{0, 0.5, 1, 2, 3.7} {
		m, err := NewModel(35, PowerShot{B: b}, fl)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := FitPowerB(m.Variance(), m.Lambda, m.MeanS2OverD())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("fit reported ζ<1 for b=%g", b)
		}
		// Near ζ=1 the √(ζ(ζ-1)) term amplifies float eps to ~1e-8, so the
		// absolute tolerance is looser than the relative one.
		if !almostRel(got, b, 1e-6) && math.Abs(got-b) > 1e-6 {
			t.Fatalf("b̂ = %g, want %g", got, b)
		}
	}
}

func TestFitPowerBClampsBelowBound(t *testing.T) {
	// Measured variance below the Theorem 3 bound (averaging artefact).
	b, ok, err := FitPowerB(0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok || b != 0 {
		t.Fatalf("expected clamp to rectangular, got b=%g ok=%v", b, ok)
	}
	if _, _, err := FitPowerB(1, 0, 1); err == nil {
		t.Fatal("λ=0 should be rejected")
	}
	if _, _, err := FitPowerB(-1, 1, 1); err == nil {
		t.Fatal("negative variance should be rejected")
	}
}

func TestFitShot(t *testing.T) {
	fl := testFlows(500, 15)
	in := Input{Lambda: 20, MeanS2OverD: 1, Samples: fl}
	var sum float64
	for _, f := range fl {
		sum += f.S * f.S / f.D
	}
	in.MeanS2OverD = sum / float64(len(fl))
	m, err := NewModel(20, Parabolic, fl)
	if err != nil {
		t.Fatal(err)
	}
	shot, ok, err := FitShot(m.Variance(), in)
	if err != nil || !ok {
		t.Fatalf("fit failed: %v ok=%v", err, ok)
	}
	if !almostRel(shot.B, 2, 1e-6) {
		t.Fatalf("fitted b = %g, want 2", shot.B)
	}
}
