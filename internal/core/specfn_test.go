package core

import (
	"math"
	"math/rand"
	"testing"
)

// gammaP must reproduce the classic identities: P(1, x) = 1 - e^{-x},
// P(1/2, x) = erf(√x), monotonicity in x, and the limits at 0 and ∞.
func TestGammaPIdentities(t *testing.T) {
	for _, x := range []float64{1e-6, 0.1, 0.5, 1, 2, 5, 20, 100} {
		if got, want := gammaP(1, x), 1-math.Exp(-x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1, %g) = %v, want %v", x, got, want)
		}
		if got, want := gammaP(0.5, x), math.Erf(math.Sqrt(x)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1/2, %g) = %v, want %v", x, got, want)
		}
	}
	if gammaP(0.3, 0) != 0 {
		t.Fatal("P(a, 0) must be 0")
	}
	if got := gammaP(0.3, 1e4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("P(a, huge) = %v, want 1", got)
	}
	prev := -1.0
	for x := 0.01; x < 30; x *= 1.7 {
		v := gammaP(0.25, x)
		if v <= prev {
			t.Fatalf("P(0.25, ·) not increasing at x=%g: %v <= %v", x, v, prev)
		}
		prev = v
	}
}

// gammaLower1mExp must match direct quadrature of u^{a-1}(1-e^{-u}) across
// the series/continued-fraction crossover, and follow the ~x^{a+1}/(a+1)
// small-x asymptote instead of cancelling to noise.
func TestGammaLower1mExp(t *testing.T) {
	for _, a := range []float64{0.1, 0.25, 0.5, 1, 1.0 / 3.0} {
		for _, x := range []float64{0.01, 0.5, 0.999, 1.0, 1.001, 3, 10, 50} {
			// Quadrature reference under u = v^{1/a}: the u^{a-1} endpoint
			// singularity (a < 1) becomes a smooth integrand Simpson nails.
			want := simpson(func(v float64) float64 {
				return -math.Expm1(-math.Pow(v, 1/a))
			}, 0, math.Pow(x, a), 20000) / a
			got := gammaLower1mExp(a, x)
			if math.Abs(got-want) > 1e-6*math.Abs(want)+1e-12 {
				t.Fatalf("G(%g, %g) = %v, quadrature %v", a, x, got, want)
			}
		}
		// Small-x asymptote: G ≈ x^{a+1}/(a+1).
		x := 1e-8
		want := math.Pow(x, a+1) / (a + 1)
		if got := gammaLower1mExp(a, x); math.Abs(got-want) > 1e-6*want {
			t.Fatalf("G(%g, %g) = %v, asymptote %v", a, x, got, want)
		}
	}
}

// The closed-form LST must agree with the generic quadrature path across
// the paper's shot exponents, flow mixes and θ scales — including θ so
// small the integrand is linear and θ large enough to saturate it.
func TestLSTClosedFormMatchesQuadrature(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	flows := make([]FlowSample, 60)
	for i := range flows {
		flows[i] = FlowSample{S: 1e4 + rng.Float64()*1e7, D: 0.05 + rng.Float64()*20}
	}
	for _, b := range []float64{0, 1, 2, 3, 7} {
		m, err := NewModel(120, PowerShot{B: b}, flows)
		if err != nil {
			t.Fatal(err)
		}
		mu := m.Mean()
		for _, theta := range []float64{1e-12, 1 / (10 * mu), 1 / mu, 10 / mu} {
			got, err := m.LST(theta)
			if err != nil {
				t.Fatal(err)
			}
			// The quadrature reference, computed inline exactly as the
			// generic fallback does (the fallback itself now only runs for
			// non-power shots).
			var sum float64
			for _, f := range m.Flows {
				s, d := f.S, f.D
				sum += simpson(func(u float64) float64 {
					return 1 - math.Exp(-theta*m.Shot.Rate(s, d, u))
				}, 0, d, 2048)
			}
			want := math.Exp(-m.Lambda * sum / float64(len(m.Flows)))
			if math.Abs(got-want) > 1e-6*want {
				t.Fatalf("b=%g θ=%g: closed form %v, quadrature %v", b, theta, got, want)
			}
			if got < 0 || got > 1 {
				t.Fatalf("b=%g θ=%g: LST %v outside [0, 1]", b, theta, got)
			}
		}
	}
}

// LST sanity at the boundaries the closed form must respect: LST(0) = 1,
// decreasing in θ, and matching exp(-λE[D_eff]) saturation for huge θ.
func TestLSTClosedFormShape(t *testing.T) {
	flows := []FlowSample{{S: 1e6, D: 2}, {S: 4e6, D: 5}}
	m, err := NewModel(50, Triangular, flows)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := m.LST(0)
	if err != nil || v0 != 1 {
		t.Fatalf("LST(0) = %v, %v; want exactly 1", v0, err)
	}
	prev := 1.0
	for theta := 1e-9; theta < 1e-2; theta *= 10 {
		v, err := m.LST(theta)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("LST not decreasing at θ=%g: %v >= %v", theta, v, prev)
		}
		prev = v
	}
	// θ → ∞: every active flow contributes its whole duration, so the LST
	// floors at exp(-λ·E[D]) (the probability no flow is active).
	want := math.Exp(-m.Lambda * (2 + 5) / 2)
	huge, err := m.LST(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(huge-want) > 1e-3*want {
		t.Fatalf("LST(∞) → %v, want exp(-λE[D]) = %v", huge, want)
	}
}

// Cumulant's closed form (IntegralXK) must match quadrature of x(t)^k — the
// companion check that the whole integer-b family, not just the LST, stays
// on the closed-form path without drifting from the integral truth.
func TestCumulantClosedFormMatchesQuadrature(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	flows := make([]FlowSample, 40)
	for i := range flows {
		flows[i] = FlowSample{S: 1e4 + rng.Float64()*1e6, D: 0.1 + rng.Float64()*10}
	}
	for _, b := range []float64{0, 1, 2, 4} {
		m, err := NewModel(80, PowerShot{B: b}, flows)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 4; k++ {
			got, err := m.Cumulant(k)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, f := range m.Flows {
				s, d := f.S, f.D
				sum += simpson(func(u float64) float64 {
					return math.Pow(m.Shot.Rate(s, d, u), float64(k))
				}, 0, d, 4096)
			}
			want := m.Lambda * sum / float64(len(m.Flows))
			if math.Abs(got-want) > 1e-5*math.Abs(want) {
				t.Fatalf("b=%g k=%d: closed form %v, quadrature %v", b, k, got, want)
			}
		}
	}
}
