package core_test

// Cross-package consistency checks tying the model to its M/G/∞ special
// case (§IV: with rectangular unit shots the total rate is the occupancy of
// an M/G/∞ queue) and the measurement pipeline's conservation properties.

import (
	"math"
	"repro/internal/dist/rng"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/mginf"
	"repro/internal/netpkt"
	"repro/internal/stats"
	"repro/internal/trace"
)

// With identical flows (S = r·d for all), rectangular shots make
// R(t) = r·N(t) where N is the M/G/∞ occupancy: the model's mean and
// variance must equal r·ρ and r²·ρ.
func TestModelReducesToMGInf(t *testing.T) {
	const (
		lambda = 40.0
		r      = 1e5 // constant flow rate, bit/s
		d      = 2.5 // constant duration
	)
	flows := make([]core.FlowSample, 100)
	for i := range flows {
		flows[i] = core.FlowSample{S: r * d, D: d}
	}
	m, err := core.NewModel(lambda, core.Rectangular, flows)
	if err != nil {
		t.Fatal(err)
	}
	q, err := mginf.New(lambda, dist.Constant{V: d})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Mean(), r*q.MeanN(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("mean: model %g vs r·ρ %g", got, want)
	}
	if got, want := m.Variance(), q.ConstantRateVariance(r); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("variance: model %g vs r²ρ %g", got, want)
	}
	// The M/G/∞ simulated occupancy, scaled by r, matches too.
	rng := rng.New(5)
	samples, err := q.Simulate(3000, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		samples[i] *= r
	}
	if got := stats.Mean(samples); math.Abs(got-m.Mean())/m.Mean() > 0.05 {
		t.Fatalf("simulated mean %g vs model %g", got, m.Mean())
	}
	if got := stats.PopVariance(samples); math.Abs(got-m.Variance())/m.Variance() > 0.15 {
		t.Fatalf("simulated variance %g vs model %g", got, m.Variance())
	}
}

// Theorem 2 and the spectral density describe the same second-order
// structure: numerically, Var = ∫Γ(ω)dω over the real line (Wiener-
// Khintchine at τ=0). Check with a coarse quadrature on a light model.
func TestSpectralDensityIntegratesToVariance(t *testing.T) {
	rng := rng.New(6)
	flows := make([]core.FlowSample, 40)
	for i := range flows {
		s := 1e5 * (0.5 + rng.Float64())
		flows[i] = core.FlowSample{S: s, D: 1 + rng.Float64()}
	}
	m, err := core.NewModel(25, core.Triangular, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Γ is even; integrate 2∫₀^W with W well past the shot bandwidth
	// (durations ≈ 1-2 s ⇒ bandwidth a few tens of rad/s).
	const w = 400.0
	const n = 4000
	h := w / n
	var integral float64
	for i := 0; i <= n; i++ {
		omega := float64(i) * h
		weight := h
		if i == 0 || i == n {
			weight = h / 2
		}
		integral += weight * m.SpectralDensity(omega)
	}
	integral *= 2
	if v := m.Variance(); math.Abs(integral-v)/v > 0.05 {
		t.Fatalf("∫Γ dω = %g vs variance %g", integral, v)
	}
}

// Property: flow measurement partitions packets — every packet lands in
// exactly one kept flow or one discarded record, with bytes conserved,
// for random packet sequences.
func TestFlowMeasurementConservesPackets(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rng.New(seed)
		n := int(nRaw)%200 + 2
		recs := make([]trace.Record, n)
		tm := 0.0
		for i := range recs {
			tm += rng.Exp() * 2
			recs[i] = trace.Record{
				Time: tm,
				Hdr: netpkt.Header{
					SrcIP:    netpkt.IPv4Addr{10, 0, 0, byte(rng.Intn(5))},
					DstIP:    netpkt.IPv4Addr{172, 16, byte(rng.Intn(3)), byte(rng.Intn(4))},
					Protocol: netpkt.ProtoTCP,
					SrcPort:  uint16(rng.Intn(3)),
					DstPort:  80,
					TotalLen: uint16(40 + rng.Intn(1460)),
				},
			}
		}
		res, err := flow.Measure(recs, flow.By5Tuple, 10)
		if err != nil {
			return false
		}
		var pkts int
		var bits float64
		for _, fl := range res.Flows {
			if fl.Packets < 2 || fl.Duration() <= 0 {
				return false
			}
			pkts += fl.Packets
			bits += fl.SizeBits()
		}
		pkts += len(res.Discarded)
		for _, d := range res.Discarded {
			bits += d.Bits
		}
		var wantBits float64
		for _, r := range recs {
			wantBits += r.Bits()
		}
		return pkts == n && math.Abs(bits-wantBits) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The LST of Theorem 1 and the Gaussian approximation of §V-E must agree
// on the exceedance scale when λ is large (many concurrent flows): compare
// the Gaussian P(R > μ+2σ) ≈ 2.3% with the skewness-corrected expectation.
func TestGaussianApproxSanity(t *testing.T) {
	rng := rng.New(7)
	flows := make([]core.FlowSample, 500)
	for i := range flows {
		s := 5e4 * math.Exp(0.5*rng.Norm())
		flows[i] = core.FlowSample{S: s, D: 0.5 + rng.Float64()}
	}
	m, err := core.NewModel(2000, core.Triangular, flows) // heavy multiplexing
	if err != nil {
		t.Fatal(err)
	}
	sk, err := m.Skewness()
	if err != nil {
		t.Fatal(err)
	}
	// Skewness decays as 1/√λ; at λ=2000 it should be small, which is what
	// licenses the Gaussian dimensioning rule.
	if sk > 0.2 {
		t.Fatalf("skewness %g too large for the Gaussian regime", sk)
	}
	mHalf, err := core.NewModel(20, core.Triangular, flows)
	if err != nil {
		t.Fatal(err)
	}
	skHalf, err := mHalf.Skewness()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sk/skHalf, math.Sqrt(20.0/2000.0); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("skewness scaling %g, want √(λ₁/λ₂) = %g", got, want)
	}
}
