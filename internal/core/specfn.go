package core

import "math"

// Special functions backing the closed-form LST of power shots. Only what
// the model needs is implemented: the regularized lower incomplete gamma
// P(a, x) and the partial integral ∫₀^x u^{a-1}(1-e^{-u}) du that the LST
// integrand reduces to.

// gammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0, by the classic pairing of the
// series expansion (x < a+1) with the Lentz continued fraction for the
// complement (x >= a+1); both converge to ~1e-15 in tens of iterations for
// the a ∈ [0.1, 1] range the shot family produces.
func gammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series: γ(a,x) = e^{-x} x^a Σ_{n>=0} x^n / (a(a+1)...(a+n)).
		ap := a
		term := 1 / a
		sum := term
		for i := 0; i < 500; i++ {
			ap++
			term *= x / ap
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x) = 1 - P(a,x) (modified Lentz).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return 1 - math.Exp(-x+a*math.Log(x)-lg)*h
}

// gammaLower1mExp returns G(a, x) = ∫₀^x u^{a-1}·(1 - e^{-u}) du for a > 0,
// x >= 0 — the reduced LST integrand. The naive x^a/a - γ(a,x) cancels
// catastrophically as x → 0 (both terms ≈ x^a/a while G ~ x^{a+1}/(a+1)),
// so small x uses the alternating series
//
//	G(a, x) = x^a · Σ_{n>=1} (-1)^{n+1} x^n / (n!·(a+n)),
//
// whose terms decay immediately for x < 1 and carry no cancellation beyond
// the alternation itself.
func gammaLower1mExp(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < 1 {
		term := 1.0 // x^n/n! running factor, n = 0
		sum := 0.0
		for n := 1; n < 200; n++ {
			term *= x / float64(n)
			contrib := term / (a + float64(n))
			if n%2 == 0 {
				contrib = -contrib
			}
			sum += contrib
			if math.Abs(contrib) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return math.Pow(x, a) * sum
	}
	return math.Pow(x, a)/a - math.Gamma(a)*gammaP(a, x)
}

// gammaLowerExpM1 returns H(a, x) = ∫₀^x u^{a-1}·(e^u - 1) du for a > 0,
// x >= 0 — the reduced log-MGF integrand, the e^{+u} mirror of
// gammaLower1mExp. Expanding e^u - 1 termwise gives the everywhere-positive
// series
//
//	H(a, x) = x^a · Σ_{n>=1} x^n / (n!·(a+n)),
//
// which converges for all finite x (terms decay once n > x) and overflows
// to +Inf exactly when the integral does (x ≳ 710), which the Chernoff
// bracket expansion relies on.
func gammaLowerExpM1(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	term := 1.0 // x^n/n! running factor, n = 0
	sum := 0.0
	for n := 1; n < 4000; n++ {
		term *= x / float64(n)
		contrib := term / (a + float64(n))
		sum += contrib
		if math.IsInf(sum, 1) {
			return sum
		}
		if float64(n) > x && contrib < sum*1e-16 {
			break
		}
	}
	return math.Pow(x, a) * sum
}
