package core

import (
	"fmt"
	"math"
)

// The paper's §V-E notes that "one can use large deviations techniques [23]
// to find a better approximation of the tail of the total rate" than the
// Gaussian. This file implements that refinement: the log-MGF of a Poisson
// shot noise is exactly
//
//	ψ(θ) = log E[e^{θR}] = λ · E[ ∫₀^D (e^{θ·X(u)} - 1) du ]
//
// (Theorem 1 with θ = -s), and the Chernoff bound
//
//	P(R > c) ≤ exp( -sup_θ { θc - ψ(θ) } )
//
// is tight on the exponential scale. Unlike the Gaussian approximation it
// respects the positivity and the skew of the rate, so it does not
// under-provision for small congestion probabilities.

// LogMGF returns ψ(θ) for θ ≥ 0. Integer-b power shots evaluate the inner
// integral in closed form through the hoisted θ-kernel (gammaLowerExpM1 is
// the only per-flow transcendental — this is what the Chernoff θ search
// runs on); other shots integrate by Simpson quadrature per flow sample.
// ψ(0) = 0, ψ'(0) = E[R], ψ”(0) = Var(R).
func (m *Model) LogMGF(theta float64) (float64, error) {
	if theta < 0 {
		return 0, fmt.Errorf("core: LogMGF requires theta >= 0, got %g", theta)
	}
	if theta == 0 {
		return 0, nil
	}
	pop := m.population()
	n := pop.Len()
	if n == 0 {
		return 0, fmt.Errorf("core: log-MGF needs a non-empty flow population")
	}
	var sum float64
	if ps, ok := m.Shot.(PowerShot); ok && ps.closedFormB() {
		k := newLSTKernel(int(ps.B), theta)
		for i := 0; i < n; i++ {
			sum += k.expM1(pop.S[i], pop.D[i], pop.InvD[i])
			if math.IsInf(sum, 0) {
				return math.Inf(1), nil
			}
		}
		return m.Lambda * sum / float64(n), nil
	}
	for i := 0; i < n; i++ {
		s, d := pop.S[i], pop.D[i]
		g := func(u float64) float64 {
			return math.Expm1(theta * m.Shot.Rate(s, d, u))
		}
		sum += simpson(g, 0, d, 128)
		if math.IsInf(sum, 0) {
			return math.Inf(1), nil
		}
	}
	return m.Lambda * sum / float64(n), nil
}

// ChernoffExceedProb returns the large-deviations upper bound on P(R > c):
// exp(-I(c)) with the rate function I(c) = sup_θ {θc - ψ(θ)}, located by
// golden-section search on the concave objective. For c ≤ E[R] the bound
// is vacuous and 1 is returned.
func (m *Model) ChernoffExceedProb(capacity float64) (float64, error) {
	mu := m.Mean()
	if capacity <= mu {
		return 1, nil
	}
	obj := func(theta float64) (float64, error) {
		psi, err := m.LogMGF(theta)
		if err != nil {
			return 0, err
		}
		return theta*capacity - psi, nil
	}
	// Bracket: the optimal θ* solves ψ'(θ*) = c. Start from the Gaussian
	// guess θ₀ = (c-μ)/σ² and expand until the objective turns down.
	v := m.Variance()
	if !(v > 0) {
		return 0, fmt.Errorf("core: zero variance")
	}
	theta0 := (capacity - mu) / v
	lo, hi := 0.0, theta0
	fHi, err := obj(hi)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 60; i++ {
		f2, err := obj(hi * 2)
		if err != nil {
			return 0, err
		}
		if math.IsInf(f2, 0) || f2 < fHi {
			break
		}
		lo, hi, fHi = hi, hi*2, f2
	}
	hi *= 2
	// Golden-section search for the maximum of the concave objective.
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, err := obj(x1)
	if err != nil {
		return 0, err
	}
	f2, err := obj(x2)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 80 && b-a > 1e-12*(1+b); i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2, err = obj(x2)
			if err != nil {
				return 0, err
			}
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1, err = obj(x1)
			if err != nil {
				return 0, err
			}
		}
	}
	rate := f1
	if f2 > rate {
		rate = f2
	}
	if rate < 0 {
		rate = 0
	}
	return math.Exp(-rate), nil
}

// BandwidthChernoff returns the capacity C with ChernoffExceedProb(C) = ε,
// the large-deviations counterpart of Bandwidth. Solved by bisection
// between the mean and a generous multiple of the Gaussian answer.
func (m *Model) BandwidthChernoff(epsilon float64) (float64, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return 0, fmt.Errorf("core: congestion probability must be in (0,1), got %g", epsilon)
	}
	gauss, err := m.Bandwidth(epsilon)
	if err != nil {
		return 0, err
	}
	lo := m.Mean()
	hi := lo + 4*(gauss-lo) + m.StdDev()
	// Ensure the bracket covers the target.
	for i := 0; i < 40; i++ {
		p, err := m.ChernoffExceedProb(hi)
		if err != nil {
			return 0, err
		}
		if p < epsilon {
			break
		}
		hi = lo + 2*(hi-lo)
	}
	for i := 0; i < 60 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		p, err := m.ChernoffExceedProb(mid)
		if err != nil {
			return 0, err
		}
		if p > epsilon {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
