// Package anomaly implements the traffic-anomaly detection application the
// paper's introduction motivates: the model predicts, from flow statistics
// alone, a Gaussian band E[R] ± z·σ_Δ in which the measured rate should
// live (§V-E); sustained excursions flag denial-of-service floods or flash
// crowds (above the band) and upstream link failures (below it).
package anomaly

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/timeseries"
)

// Direction of an excursion.
type Direction int

// Excursion directions.
const (
	Above Direction = 1  // rate above the band: flood / flash crowd
	Below Direction = -1 // rate below the band: upstream failure / drop
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Above:
		return "above"
	case Below:
		return "below"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Event is one detected anomaly: a run of at least MinRun consecutive bins
// outside the band on the same side.
type Event struct {
	StartBin  int
	EndBin    int // inclusive
	Direction Direction
	// Peak is the most extreme rate inside the event (max above the band,
	// min below it).
	Peak float64
}

// Duration returns the event length in seconds given the bin width.
func (e Event) Duration(delta float64) float64 {
	return float64(e.EndBin-e.StartBin+1) * delta
}

// Detector flags bins whose rate leaves [Mu - Z·Sigma, Mu + Z·Sigma].
type Detector struct {
	Mu    float64
	Sigma float64
	// Z is the band half-width in standard deviations (3 is a common
	// operating point: a stationary Gaussian rate leaves it ~0.3% of time).
	Z float64
	// MinRun debounces: an event needs this many consecutive out-of-band
	// bins. Isolated excursions are expected statistically and ignored.
	MinRun int
}

// New validates the parameters.
func New(mu, sigma, z float64, minRun int) (*Detector, error) {
	if !(sigma > 0) {
		return nil, fmt.Errorf("anomaly: sigma must be > 0, got %g", sigma)
	}
	if !(z > 0) {
		return nil, fmt.Errorf("anomaly: z must be > 0, got %g", z)
	}
	if minRun < 1 {
		return nil, fmt.Errorf("anomaly: minRun must be >= 1, got %d", minRun)
	}
	return &Detector{Mu: mu, Sigma: sigma, Z: z, MinRun: minRun}, nil
}

// FromModel builds a detector from a fitted shot-noise model, using the
// Δ-averaged standard deviation (eq. 7) so the band matches rate samples
// measured over delta-length windows.
func FromModel(m *core.Model, delta, z float64, minRun int) (*Detector, error) {
	v, err := m.AveragedVariance(delta)
	if err != nil {
		return nil, fmt.Errorf("anomaly: %w", err)
	}
	if !(v > 0) {
		return nil, fmt.Errorf("anomaly: model variance is zero")
	}
	return New(m.Mean(), math.Sqrt(v), z, minRun)
}

// Bounds returns the detection band.
func (d *Detector) Bounds() (lo, hi float64) {
	return d.Mu - d.Z*d.Sigma, d.Mu + d.Z*d.Sigma
}

// Scan walks the series and returns all events, in order.
func (d *Detector) Scan(s timeseries.Series) []Event {
	lo, hi := d.Bounds()
	var events []Event
	var cur *Event
	flush := func(end int) {
		if cur != nil && end-cur.StartBin+1 >= d.MinRun {
			cur.EndBin = end
			events = append(events, *cur)
		}
		cur = nil
	}
	for k, r := range s.Rate {
		var dir Direction
		switch {
		case r > hi:
			dir = Above
		case r < lo:
			dir = Below
		default:
			flush(k - 1)
			continue
		}
		if cur != nil && cur.Direction != dir {
			flush(k - 1)
		}
		if cur == nil {
			cur = &Event{StartBin: k, Direction: dir, Peak: r}
			continue
		}
		if (dir == Above && r > cur.Peak) || (dir == Below && r < cur.Peak) {
			cur.Peak = r
		}
	}
	flush(len(s.Rate) - 1)
	return events
}
