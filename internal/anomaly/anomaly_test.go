package anomaly

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/timeseries"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(10, 0, 3, 2); err == nil {
		t.Fatal("sigma 0 should be rejected")
	}
	if _, err := New(10, 1, 0, 2); err == nil {
		t.Fatal("z 0 should be rejected")
	}
	if _, err := New(10, 1, 3, 0); err == nil {
		t.Fatal("minRun 0 should be rejected")
	}
}

func TestBounds(t *testing.T) {
	d, err := New(100, 10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.Bounds()
	if lo != 70 || hi != 130 {
		t.Fatalf("bounds = (%g, %g), want (70, 130)", lo, hi)
	}
}

func series(rates ...float64) timeseries.Series {
	return timeseries.Series{Delta: 0.2, Rate: rates}
}

func TestScanQuietSeries(t *testing.T) {
	d, _ := New(100, 10, 3, 2)
	if ev := d.Scan(series(100, 105, 95, 110, 92)); len(ev) != 0 {
		t.Fatalf("quiet series produced events: %+v", ev)
	}
}

func TestScanDetectsFlood(t *testing.T) {
	d, _ := New(100, 10, 3, 3)
	s := series(100, 100, 150, 160, 170, 155, 100, 100)
	ev := d.Scan(s)
	if len(ev) != 1 {
		t.Fatalf("events = %+v, want 1", ev)
	}
	e := ev[0]
	if e.Direction != Above || e.StartBin != 2 || e.EndBin != 5 || e.Peak != 170 {
		t.Fatalf("event = %+v", e)
	}
	if e.Duration(0.2) != 0.8 {
		t.Fatalf("duration = %g, want 0.8", e.Duration(0.2))
	}
}

func TestScanDetectsDrop(t *testing.T) {
	d, _ := New(100, 10, 3, 2)
	ev := d.Scan(series(100, 20, 10, 15, 100))
	if len(ev) != 1 || ev[0].Direction != Below || ev[0].Peak != 10 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestScanDebouncesShortSpikes(t *testing.T) {
	d, _ := New(100, 10, 3, 3)
	// Two isolated spikes and one 2-bin run: all shorter than MinRun=3.
	ev := d.Scan(series(100, 200, 100, 200, 200, 100, 100))
	if len(ev) != 0 {
		t.Fatalf("short spikes should be debounced, got %+v", ev)
	}
}

func TestScanSplitsDirectionChange(t *testing.T) {
	d, _ := New(100, 10, 3, 2)
	// Above for 2 bins then below for 2 bins with no gap.
	ev := d.Scan(series(180, 180, 20, 20))
	if len(ev) != 2 {
		t.Fatalf("events = %+v, want 2", ev)
	}
	if ev[0].Direction != Above || ev[1].Direction != Below {
		t.Fatalf("directions = %v, %v", ev[0].Direction, ev[1].Direction)
	}
}

func TestScanEventAtSeriesEnd(t *testing.T) {
	d, _ := New(100, 10, 3, 2)
	ev := d.Scan(series(100, 100, 170, 180))
	if len(ev) != 1 || ev[0].EndBin != 3 {
		t.Fatalf("trailing event not flushed: %+v", ev)
	}
}

func TestDirectionString(t *testing.T) {
	if Above.String() != "above" || Below.String() != "below" {
		t.Fatal("direction names wrong")
	}
	if Direction(5).String() == "" {
		t.Fatal("unknown direction should format")
	}
}

func TestFromModelBand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	flows := make([]core.FlowSample, 800)
	for i := range flows {
		s := 1e5 * math.Exp(rng.NormFloat64())
		flows[i] = core.FlowSample{S: s, D: 0.5 + 2*rng.Float64()}
	}
	m, err := core.NewModel(200, core.Triangular, flows)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromModel(m, 0.2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mu-m.Mean()) > 1e-9 {
		t.Fatalf("detector mean %g vs model %g", d.Mu, m.Mean())
	}
	// σ_Δ ≤ σ (averaging can only smooth).
	if d.Sigma > m.StdDev()+1e-9 {
		t.Fatalf("detector sigma %g exceeds instantaneous %g", d.Sigma, m.StdDev())
	}
	if _, err := FromModel(m, 0, 3, 5); err == nil {
		t.Fatal("zero delta should be rejected")
	}
}

// A Gaussian stationary series at the model's moments should essentially
// never trip a z=4, minRun=4 detector; an injected flood must.
func TestFalsePositiveAndDetectionRates(t *testing.T) {
	const mu, sigma = 1e6, 5e4
	d, _ := New(mu, sigma, 4, 4)
	rng := rand.New(rand.NewSource(2))
	rates := make([]float64, 20000)
	for i := range rates {
		rates[i] = mu + sigma*rng.NormFloat64()
	}
	if ev := d.Scan(timeseries.Series{Delta: 0.2, Rate: rates}); len(ev) != 0 {
		t.Fatalf("false positives on clean Gaussian traffic: %+v", ev)
	}
	// Inject a 50-bin flood at +8σ.
	for k := 5000; k < 5050; k++ {
		rates[k] += 8 * sigma
	}
	ev := d.Scan(timeseries.Series{Delta: 0.2, Rate: rates})
	if len(ev) != 1 {
		t.Fatalf("flood not isolated: %+v", ev)
	}
	if ev[0].StartBin > 5004 || ev[0].EndBin < 5045 {
		t.Fatalf("flood bounds wrong: %+v", ev[0])
	}
}
