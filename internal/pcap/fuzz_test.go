package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// validCapture builds a well-formed little-endian capture with n packets,
// used to seed the fuzz corpus with inputs that exercise the happy path
// before the mutator corrupts them.
func validCapture(n int, snaplen uint32) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{SnapLen: snaplen})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		data := make([]byte, 44)
		for j := range data {
			data[j] = byte(i + j)
		}
		if err := w.WritePacket(Packet{
			Timestamp: time.Unix(int64(1000+i), int64(i)*1000).UTC(),
			Data:      data,
			OrigLen:   1500,
		}); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds arbitrary bytes to the pcap reader. The invariant under
// fuzzing is purely defensive: whatever the input, the reader must return
// errors (or packets) without panicking, and every returned packet must
// respect the allocation bound — a corrupt incl_len can never buy a
// larger-than-snaplen slice.
func FuzzReader(f *testing.F) {
	f.Add(validCapture(3, 65535))
	f.Add(validCapture(1, 44))
	// Zero snaplen in the header: the reader must fall back to MaxSnapLen,
	// not treat it as unlimited.
	zeroSnap := validCapture(1, 44)
	binary.LittleEndian.PutUint32(zeroSnap[16:20], 0)
	f.Add(zeroSnap)
	// Truncated mid-record.
	trunc := validCapture(2, 65535)
	f.Add(trunc[:len(trunc)-20])
	// Hostile incl_len: header claims a 1 GiB record.
	hostile := validCapture(1, 65535)
	binary.LittleEndian.PutUint32(hostile[fileHeaderLen+8:fileHeaderLen+12], 1<<30)
	f.Add(hostile)
	// Bad magic and an empty input.
	f.Add([]byte("not a pcap file at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header rejected: fine
		}
		bound := r.SnapLen()
		if bound == 0 || bound > MaxSnapLen {
			bound = MaxSnapLen
		}
		for i := 0; i < 1000; i++ {
			p, err := r.ReadPacket()
			if err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
			if uint32(len(p.Data)) > bound {
				t.Fatalf("packet data %d bytes exceeds bound %d (snaplen %d)", len(p.Data), bound, r.SnapLen())
			}
		}
	})
}
