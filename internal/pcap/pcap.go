// Package pcap reads and writes the classic libpcap capture file format
// (the format tcpdump writes), supporting microsecond and nanosecond
// timestamp resolutions and both byte orders on read. The trace pipeline
// uses it so that (a) synthetic traces can be inspected with standard tools
// and (b) real captures can be fed to the flow-measurement pipeline in place
// of the paper's proprietary Sprint traces.
//
// Only the features the measurement pipeline needs are implemented: raw-IP
// and Ethernet link types, sequential read/write. There is no BPF filtering.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for the classic pcap format.
const (
	magicMicro = 0xa1b2c3d4
	magicNano  = 0xa1b23c4d
)

// Link types (subset).
const (
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101 // raw IP, what the 44-byte records use
)

// Errors.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrSnapTooBig = errors.New("pcap: packet exceeds snap length")
)

// MaxSnapLen is the hard upper bound on the per-packet capture length the
// reader will allocate for, whatever the file header claims. Real captures
// top out at 65535 (the classic tcpdump default) or a couple of jumbo
// frames beyond; a multi-megabyte incl_len is a corrupt or hostile file,
// and without this bound a 16-byte packet header could demand a 4 GiB
// allocation.
const MaxSnapLen = 262144

const (
	fileHeaderLen   = 24
	packetHeaderLen = 16
)

// Packet is one captured record.
type Packet struct {
	// Timestamp of the capture.
	Timestamp time.Time
	// Data holds the captured bytes (up to the snap length).
	Data []byte
	// OrigLen is the original on-wire length, which may exceed len(Data)
	// when the capture is truncated (the paper keeps only 44 bytes of every
	// packet, so OrigLen carries the true packet size).
	OrigLen int
}

// Writer writes a pcap stream.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	nano    bool
	hdr     [packetHeaderLen]byte
}

// WriterOptions configures NewWriter.
type WriterOptions struct {
	// SnapLen is the maximum stored bytes per packet (default 65535).
	SnapLen uint32
	// LinkType is the link-layer type (default LinkTypeRaw).
	LinkType uint32
	// Nanosecond selects the nanosecond-resolution magic.
	Nanosecond bool
}

// NewWriter writes a pcap file header to w and returns a Writer.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	if opts.SnapLen == 0 {
		opts.SnapLen = 65535
	}
	if opts.LinkType == 0 {
		opts.LinkType = LinkTypeRaw
	}
	var hdr [fileHeaderLen]byte
	magic := uint32(magicMicro)
	if opts.Nanosecond {
		magic = magicNano
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], opts.SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], opts.LinkType)
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing file header: %w", err)
	}
	return &Writer{w: bw, snaplen: opts.SnapLen, nano: opts.Nanosecond}, nil
}

// WritePacket appends one record.
func (w *Writer) WritePacket(p Packet) error {
	if uint32(len(p.Data)) > w.snaplen {
		return ErrSnapTooBig
	}
	sec := p.Timestamp.Unix()
	var sub int64
	if w.nano {
		sub = int64(p.Timestamp.Nanosecond())
	} else {
		sub = int64(p.Timestamp.Nanosecond() / 1000)
	}
	origLen := p.OrigLen
	if origLen < len(p.Data) {
		origLen = len(p.Data)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(w.hdr[4:8], uint32(sub))
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing packet header: %w", err)
	}
	if _, err := w.w.Write(p.Data); err != nil {
		return fmt.Errorf("pcap: writing packet data: %w", err)
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a pcap stream.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nano     bool
	snaplen  uint32
	maxIncl  uint32 // effective per-packet allocation bound (snaplen ∧ MaxSnapLen)
	linkType uint32
	hdr      [packetHeaderLen]byte
}

// NewReader parses the file header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	rd := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicro:
		rd.order = binary.LittleEndian
	case magicLE == magicNano:
		rd.order, rd.nano = binary.LittleEndian, true
	case magicBE == magicMicro:
		rd.order = binary.BigEndian
	case magicBE == magicNano:
		rd.order, rd.nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	rd.snaplen = rd.order.Uint32(hdr[16:20])
	rd.linkType = rd.order.Uint32(hdr[20:24])
	// Effective allocation bound per packet: the declared snaplen, sanity
	// capped at MaxSnapLen; a zero snaplen (some writers) falls back to the
	// cap rather than "unlimited".
	rd.maxIncl = rd.snaplen
	if rd.maxIncl == 0 || rd.maxIncl > MaxSnapLen {
		rd.maxIncl = MaxSnapLen
	}
	return rd, nil
}

// LinkType returns the capture's link-layer type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen returns the capture's snap length.
func (r *Reader) SnapLen() uint32 { return r.snaplen }

// Nanosecond reports whether timestamps carry nanosecond resolution.
func (r *Reader) Nanosecond() bool { return r.nano }

// ReadPacket reads the next record. It returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF if the stream ends mid-record.
func (r *Reader) ReadPacket() (Packet, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: reading packet header: %w", err)
	}
	sec := int64(r.order.Uint32(r.hdr[0:4]))
	sub := int64(r.order.Uint32(r.hdr[4:8]))
	incl := r.order.Uint32(r.hdr[8:12])
	orig := r.order.Uint32(r.hdr[12:16])
	// Bound the allocation before trusting incl_len: a corrupt or hostile
	// record must fail with an error, never with a giant allocation.
	if incl > r.maxIncl {
		return Packet{}, fmt.Errorf("pcap: record length %d exceeds capture bound %d (snaplen %d, cap %d)",
			incl, r.maxIncl, r.snaplen, uint32(MaxSnapLen))
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Packet{}, fmt.Errorf("pcap: reading packet data: %w", err)
	}
	ns := sub
	if !r.nano {
		ns = sub * 1000
	}
	return Packet{
		Timestamp: time.Unix(sec, ns).UTC(),
		Data:      data,
		OrigLen:   int(orig),
	}, nil
}
