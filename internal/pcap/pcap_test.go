package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, opts WriterOptions, pkts []Packet) []Packet {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestRoundTripMicro(t *testing.T) {
	ts := time.Date(2001, 11, 8, 14, 0, 0, 123456000, time.UTC)
	pkts := []Packet{
		{Timestamp: ts, Data: []byte{1, 2, 3, 4}, OrigLen: 1500},
		{Timestamp: ts.Add(200 * time.Millisecond), Data: []byte{9}, OrigLen: 40},
	}
	got := roundTrip(t, WriterOptions{}, pkts)
	if len(got) != 2 {
		t.Fatalf("read %d packets, want 2", len(got))
	}
	if !got[0].Timestamp.Equal(ts) {
		t.Fatalf("ts = %v, want %v", got[0].Timestamp, ts)
	}
	if got[0].OrigLen != 1500 || !bytes.Equal(got[0].Data, pkts[0].Data) {
		t.Fatalf("packet 0 mismatch: %+v", got[0])
	}
}

func TestRoundTripNano(t *testing.T) {
	ts := time.Date(2001, 9, 5, 8, 30, 0, 123456789, time.UTC)
	got := roundTrip(t, WriterOptions{Nanosecond: true},
		[]Packet{{Timestamp: ts, Data: []byte{7, 7}, OrigLen: 44}})
	if !got[0].Timestamp.Equal(ts) {
		t.Fatalf("nanosecond ts = %v, want %v", got[0].Timestamp, ts)
	}
}

func TestMicroTruncatesSubMicro(t *testing.T) {
	ts := time.Date(2020, 1, 1, 0, 0, 0, 1999, time.UTC) // 1.999 µs
	got := roundTrip(t, WriterOptions{}, []Packet{{Timestamp: ts, Data: []byte{1}}})
	want := time.Date(2020, 1, 1, 0, 0, 0, 1000, time.UTC)
	if !got[0].Timestamp.Equal(want) {
		t.Fatalf("ts = %v, want truncated %v", got[0].Timestamp, want)
	}
}

func TestOrigLenDefaultsToDataLen(t *testing.T) {
	got := roundTrip(t, WriterOptions{}, []Packet{{Timestamp: time.Unix(0, 0), Data: []byte{1, 2, 3}}})
	if got[0].OrigLen != 3 {
		t.Fatalf("OrigLen = %d, want 3", got[0].OrigLen)
	}
}

func TestSnapLenEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{SnapLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(Packet{Data: []byte{1, 2, 3, 4, 5}}); err != ErrSnapTooBig {
		t.Fatalf("err = %v, want ErrSnapTooBig", err)
	}
}

func TestHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{SnapLen: 44, LinkType: LinkTypeRaw})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.SnapLen() != 44 || r.LinkType() != LinkTypeRaw || r.Nanosecond() {
		t.Fatalf("header fields: snap=%d link=%d nano=%v", r.SnapLen(), r.LinkType(), r.Nanosecond())
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian capture (e.g. written on a SPARC monitor,
	// plausibly what the paper's testbed used).
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	ph := make([]byte, 16)
	binary.BigEndian.PutUint32(ph[0:4], 1000)
	binary.BigEndian.PutUint32(ph[4:8], 500000) // 0.5 s in µs
	binary.BigEndian.PutUint32(ph[8:12], 2)
	binary.BigEndian.PutUint32(ph[12:16], 60)
	buf.Write(ph)
	buf.Write([]byte{0xde, 0xad})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type = %d", r.LinkType())
	}
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1000, 500000000).UTC()
	if !p.Timestamp.Equal(want) || p.OrigLen != 60 || !bytes.Equal(p.Data, []byte{0xde, 0xad}) {
		t.Fatalf("packet = %+v, want ts=%v orig=60 data=dead", p, want)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedFileHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated file header should error")
	}
}

func TestTruncatedPacket(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterOptions{})
	if err := w.WritePacket(Packet{Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	r, err := NewReader(bytes.NewReader(whole[:len(whole)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil {
		t.Fatal("mid-record EOF should error")
	}
}

func TestCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterOptions{})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("empty capture: err = %v, want io.EOF", err)
	}
}

func TestRecordExceedingSnapLenRejectedOnRead(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.LittleEndian.PutUint32(hdr[16:20], 8) // snaplen 8
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeRaw)
	buf.Write(hdr)
	ph := make([]byte, 16)
	binary.LittleEndian.PutUint32(ph[8:12], 100) // incl_len 100 > snaplen
	buf.Write(ph)
	buf.Write(make([]byte, 100))
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil {
		t.Fatal("oversize record should be rejected")
	}
}

// Property: any sequence of small packets round trips bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, secs []uint32) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, WriterOptions{Nanosecond: true})
		if err != nil {
			return false
		}
		n := len(payloads)
		if len(secs) < n {
			n = len(secs)
		}
		for i := 0; i < n; i++ {
			p := Packet{
				Timestamp: time.Unix(int64(secs[i]), int64(i%1_000_000_000)),
				Data:      payloads[i],
			}
			if err := w.WritePacket(p); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			p, err := r.ReadPacket()
			if err != nil {
				return false
			}
			if !bytes.Equal(p.Data, payloads[i]) {
				return false
			}
		}
		_, err = r.ReadPacket()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, err := NewWriter(io.Discard, WriterOptions{SnapLen: 44})
	if err != nil {
		b.Fatal(err)
	}
	p := Packet{Timestamp: time.Unix(1, 0), Data: make([]byte, 44), OrigLen: 1500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(p); err != nil {
			b.Fatal(err)
		}
	}
}
