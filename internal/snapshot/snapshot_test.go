package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleSections() []Section {
	return []Section{
		{Type: 1, Data: []byte("flow-table state")},
		{Type: 2, Data: []byte{}},
		{Type: 3, Data: bytes.Repeat([]byte{0xAB, 0xCD}, 300)},
	}
}

func encode(t *testing.T, seq uint64, secs []Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, seq, secs); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func sectionsEqual(a, b []Section) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSections()
	data := encode(t, 7, want)
	got, seq, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if seq != 7 {
		t.Fatalf("seq = %d, want 7", seq)
	}
	if !sectionsEqual(got, want) {
		t.Fatalf("sections differ after round trip")
	}
}

func TestDecodeEmptyCheckpoint(t *testing.T) {
	data := encode(t, 1, nil)
	got, seq, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if seq != 1 || len(got) != 0 {
		t.Fatalf("got %d sections seq %d, want 0 sections seq 1", len(got), seq)
	}
}

// TestDecodeTruncationMatrix truncates the encoded checkpoint at EVERY byte
// length and asserts decode either succeeds (only at full length) or fails
// with a tagged error — never a panic, never silent wrong state.
func TestDecodeTruncationMatrix(t *testing.T) {
	full := encode(t, 3, sampleSections())
	for n := 0; n < len(full); n++ {
		secs, _, err := Decode(full[:n])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(full))
		}
		if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncomplete) {
			t.Fatalf("truncation to %d bytes: untagged error %v", n, err)
		}
		// Whatever prefix decoded must be internally valid sections of the
		// original — a torn tail yields a valid prefix, never garbage.
		want := sampleSections()
		if len(secs) > len(want) {
			t.Fatalf("truncation to %d bytes yielded %d sections (> %d)", n, len(secs), len(want))
		}
		if !sectionsEqual(secs, want[:len(secs)]) {
			t.Fatalf("truncation to %d bytes yielded a non-prefix section set", n)
		}
	}
	if _, _, err := Decode(full); err != nil {
		t.Fatalf("full checkpoint failed to decode: %v", err)
	}
}

// TestDecodeBitFlipMatrix flips one bit at every byte position and asserts
// decode never panics and never silently accepts wrong bytes: any decode
// that reports success must return exactly the original sections and seq.
// (A flip in an already-consumed region can't be detected — but framing
// means every byte is covered by some CRC, so success implies equality.)
func TestDecodeBitFlipMatrix(t *testing.T) {
	want := sampleSections()
	full := encode(t, 9, want)
	buf := make([]byte, len(full))
	for pos := 0; pos < len(full); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(buf, full)
			buf[pos] ^= 1 << bit
			secs, seq, err := Decode(buf)
			if err == nil {
				if seq != 9 || !sectionsEqual(secs, want) {
					t.Fatalf("flip at byte %d bit %d silently decoded wrong state", pos, bit)
				}
				t.Fatalf("flip at byte %d bit %d not detected", pos, bit)
			}
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncomplete) {
				t.Fatalf("flip at byte %d bit %d: untagged error %v", pos, bit, err)
			}
		}
	}
}

func TestDecodeRejectsMixedSequences(t *testing.T) {
	// Concatenate frames from two generations: decode must reject.
	var a, b bytes.Buffer
	if err := Encode(&a, 1, []Section{{Type: 1, Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, 2, nil); err != nil {
		t.Fatal(err)
	}
	// a without its commit frame + b's frames (skip b's file magic).
	commitLen := headerSize + 4
	mixed := append(append([]byte{}, a.Bytes()[:a.Len()-commitLen]...), b.Bytes()[len(fileMagic):]...)
	if _, _, err := Decode(mixed); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mixed-generation frames decoded with err=%v, want ErrCorrupt", err)
	}
}

func TestEncodeRejectsReservedType(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, 1, []Section{{Type: commitType}}); err == nil {
		t.Fatal("Encode accepted the reserved commit section type")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleSections()
	seq, err := st.Save(want)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first Save seq = %d, want 1", seq)
	}
	got, gseq, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gseq != 1 || !sectionsEqual(got, want) {
		t.Fatalf("Load returned seq %d / wrong sections", gseq)
	}

	// A reopened store continues the sequence.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err = st2.Save(nil); err != nil || seq != 2 {
		t.Fatalf("reopened Save = (%d, %v), want (2, nil)", seq, err)
	}
}

func TestStoreRetainsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Save(sampleSections()); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := st.generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("retained generations %v, want [4 5]", seqs)
	}
}

func TestStoreLoadEmpty(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Load err = %v, want ErrNoCheckpoint", err)
	}
}

// TestStoreTornTailFallsBack simulates a kill -9 mid-write: the newest
// checkpoint file is truncated (as if rename happened but the data didn't
// fully reach disk, or a direct-write strategy tore). Load must fall back
// to the previous complete generation.
func TestStoreTornTailFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Section{{Type: 1, Data: []byte("generation one")}}
	if _, err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save([]Section{{Type: 1, Data: []byte("generation two")}}); err != nil {
		t.Fatal(err)
	}
	// Tear generation 2: chop off its tail, taking the commit frame with it.
	p := st.path(2)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-(headerSize+4)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, seq, err := st.Load()
	if err != nil {
		t.Fatalf("Load after torn tail: %v", err)
	}
	if seq != 1 || !sectionsEqual(got, want) {
		t.Fatalf("Load fell back to seq %d, want generation 1", seq)
	}
}

func TestStoreAllGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(sampleSections()); err != nil {
		t.Fatal(err)
	}
	p := st.path(1)
	data, _ := os.ReadFile(p)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt Load err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-abc.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := st.Save(nil); err != nil || seq != 1 {
		t.Fatalf("Save = (%d, %v), want (1, nil)", seq, err)
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(42)
	e.I64(-7)
	e.F64(3.14159)
	e.Bool(true)
	e.Bool(false)
	e.F64s([]float64{1.5, -2.5, 0})
	e.F64s(nil)

	d := NewDec(e.Bytes())
	if v := d.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.I64(); v != -7 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("F64 = %g", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	vs := d.F64s()
	if len(vs) != 3 || vs[0] != 1.5 || vs[1] != -2.5 || vs[2] != 0 {
		t.Fatalf("F64s = %v", vs)
	}
	if vs := d.F64s(); vs != nil {
		t.Fatalf("empty F64s = %v", vs)
	}
	if d.Err() != nil || d.Rest() != 0 {
		t.Fatalf("Err=%v Rest=%d after full decode", d.Err(), d.Rest())
	}
}

func TestDecShortBufferLatches(t *testing.T) {
	d := NewDec([]byte{1, 2, 3})
	if v := d.U64(); v != 0 {
		t.Fatalf("short U64 = %d, want 0", v)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("short-buffer Err = %v, want ErrCorrupt", d.Err())
	}
	// Latched: further reads stay zero and don't panic.
	if v := d.F64(); v != 0 {
		t.Fatalf("post-error F64 = %g", v)
	}
	if vs := d.F64s(); vs != nil {
		t.Fatalf("post-error F64s = %v", vs)
	}
}

func TestDecF64sHugeLengthRejected(t *testing.T) {
	var e Enc
	e.U64(1 << 40) // absurd length prefix
	d := NewDec(e.Bytes())
	if vs := d.F64s(); vs != nil {
		t.Fatalf("huge-length F64s = %v", vs)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("huge-length Err = %v, want ErrCorrupt", d.Err())
	}
}
