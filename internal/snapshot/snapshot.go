// Package snapshot persists the resident state of a long-running pipeline
// as crash-safe checkpoints. A checkpoint is a sequence of typed sections
// written through a versioned, CRC-guarded framing into one file; files are
// written atomically (temp file + fsync + rename + directory fsync) and a
// Store keeps the last few generations, so a reader always recovers the
// newest checkpoint that was *completely* written.
//
// The framing is defensive in both directions: every frame carries a header
// CRC (so a flipped length field cannot send the reader off into the weeds)
// and a payload CRC (so flipped state bytes are detected, never silently
// restored), and a checkpoint is only complete when its final commit frame
// validates. A torn tail — the file ends mid-frame after a crash — is
// truncated to the last valid frame; a checkpoint whose commit frame is
// missing or whose frames fail their CRCs is rejected with a tagged error
// and the Store falls back to the previous generation. Corruption therefore
// degrades to "resume from an older checkpoint", never to a panic or to
// silently wrong state.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Tagged error classes. Every decode failure wraps exactly one of these, so
// callers can distinguish "no checkpoint yet" (fresh start) from "the
// checkpoint on disk is damaged" (fall back, warn an operator).
var (
	// ErrNoCheckpoint: the store holds no readable complete checkpoint.
	ErrNoCheckpoint = errors.New("snapshot: no checkpoint")
	// ErrCorrupt: framing or CRC validation failed (bit flip, bad magic,
	// version mismatch, non-monotone sequence).
	ErrCorrupt = errors.New("snapshot: corrupt checkpoint")
	// ErrTorn: the file ends mid-frame — the classic crash-during-append
	// tear. The valid prefix is still returned alongside the error.
	ErrTorn = errors.New("snapshot: torn checkpoint tail")
	// ErrIncomplete: all frames validate but the commit frame is missing,
	// so the checkpoint never finished writing and must not be restored.
	ErrIncomplete = errors.New("snapshot: incomplete checkpoint (no commit frame)")
)

// File and frame constants. The file magic carries the format version in
// its trailing byte; bump it on any incompatible layout change.
const (
	fileMagic  = "FLOWSNP\x01"
	frameMagic = 0x5EC7F7A3
	// commitType is the reserved section type of the trailing commit frame.
	commitType = 0xFFFFFFFF
	// headerSize: magic(4) + type(4) + seq(8) + len(4) + headerCRC(4).
	headerSize = 24
	// FrameHeaderSize is the byte length of the frame header WriteFrame
	// emits before the payload — exported so a frame-file writer (the trace
	// store) can compute a payload's absolute file offset, e.g. to pad
	// columns onto an mmap-friendly alignment.
	FrameHeaderSize = headerSize
	// FrameTrailerSize is the byte length of the payload CRC WriteFrame
	// appends after the payload.
	FrameTrailerSize = 4
	// MaxSectionBytes bounds one section so a corrupt length field cannot
	// drive a multi-gigabyte allocation before its CRC is even checked.
	MaxSectionBytes = 1 << 30
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Section is one typed unit of checkpoint state — a flow table, a rate
// series, a refit window. Types are owner-defined; commitType is reserved.
type Section struct {
	Type uint32
	Data []byte
}

// WriteFrame appends one CRC-guarded frame to w: the 24-byte header (magic,
// type, sequence, length, header CRC), the payload, and the payload CRC.
// This is the framing primitive shared by checkpoint encoding and the trace
// store's segment files; ReadFrameAt is its inverse.
func WriteFrame(w io.Writer, typ uint32, seq uint64, payload []byte) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], typ)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(crc[:])
	return err
}

// Encode writes a complete checkpoint — every section in order, then the
// commit frame — through w. seq is the checkpoint's generation number,
// embedded in every frame so frames from different generations can never be
// stitched together.
func Encode(w io.Writer, seq uint64, sections []Section) error {
	if _, err := io.WriteString(w, fileMagic); err != nil {
		return err
	}
	for _, s := range sections {
		if s.Type == commitType {
			return fmt.Errorf("snapshot: section type %#x is reserved for the commit frame", commitType)
		}
		if len(s.Data) > MaxSectionBytes {
			return fmt.Errorf("snapshot: section of %d bytes exceeds the %d byte bound", len(s.Data), MaxSectionBytes)
		}
		if err := WriteFrame(w, s.Type, seq, s.Data); err != nil {
			return err
		}
	}
	return WriteFrame(w, commitType, seq, nil)
}

// ReadFrameAt validates and reads the frame starting at data[off], returning
// its type, sequence, payload and the offset of the next frame. The payload
// is a subslice of data — zero-copy, so a caller over an mmap'd file reads
// column runs without materialising them — and is only valid while data is.
// Truncation mid-frame wraps ErrTorn; any CRC/magic/bound failure wraps
// ErrCorrupt.
func ReadFrameAt(data []byte, off int) (typ uint32, seq uint64, payload []byte, next int, err error) {
	if len(data)-off < headerSize {
		return 0, 0, nil, off, fmt.Errorf("file ends inside a frame header at offset %d: %w", off, ErrTorn)
	}
	hdr := data[off : off+headerSize]
	if binary.LittleEndian.Uint32(hdr[20:]) != crc32.Checksum(hdr[:20], crcTable) {
		// A torn header tail and a flipped header bit are indistinguishable
		// without the CRC; the header CRC failing on a full-length header
		// means the bytes themselves are wrong.
		return 0, 0, nil, off, fmt.Errorf("frame header CRC mismatch at offset %d: %w", off, ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return 0, 0, nil, off, fmt.Errorf("bad frame magic at offset %d: %w", off, ErrCorrupt)
	}
	typ = binary.LittleEndian.Uint32(hdr[4:])
	seq = binary.LittleEndian.Uint64(hdr[8:])
	plen := int(binary.LittleEndian.Uint32(hdr[16:]))
	if plen > MaxSectionBytes {
		return 0, 0, nil, off, fmt.Errorf("frame payload of %d bytes exceeds bound: %w", plen, ErrCorrupt)
	}
	body := off + headerSize
	if len(data)-body < plen+FrameTrailerSize {
		return 0, 0, nil, off, fmt.Errorf("file ends inside a frame payload at offset %d: %w", off, ErrTorn)
	}
	payload = data[body : body+plen]
	if binary.LittleEndian.Uint32(data[body+plen:]) != crc32.Checksum(payload, crcTable) {
		return 0, 0, nil, off, fmt.Errorf("frame payload CRC mismatch at offset %d: %w", off, ErrCorrupt)
	}
	return typ, seq, payload, body + plen + FrameTrailerSize, nil
}

// Decode reads a checkpoint written by Encode, validating every frame. On
// success it returns the sections and the generation number. On a torn tail
// it returns the valid prefix alongside an error wrapping ErrTorn; any
// other validation failure wraps ErrCorrupt (or ErrIncomplete when the only
// defect is the missing commit frame). The returned sections are always
// internally consistent — a caller may restore from a torn checkpoint's
// prefix only if its own commit discipline allows partial state, which the
// Store's Load (requiring the commit frame) deliberately does not.
func Decode(data []byte) (sections []Section, seq uint64, err error) {
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return nil, 0, fmt.Errorf("bad file magic: %w", ErrCorrupt)
	}
	off := len(fileMagic)
	committed := false
	first := true
	for off < len(data) {
		if committed {
			return sections, seq, fmt.Errorf("trailing bytes after commit frame: %w", ErrCorrupt)
		}
		typ, fseq, payload, next, err := ReadFrameAt(data, off)
		if err != nil {
			return sections, seq, err
		}
		if first {
			seq = fseq
			first = false
		} else if fseq != seq {
			return sections, seq, fmt.Errorf("frame sequence %d != checkpoint sequence %d: %w", fseq, seq, ErrCorrupt)
		}
		off = next
		if typ == commitType {
			if len(payload) != 0 {
				return sections, seq, fmt.Errorf("commit frame carries %d payload bytes: %w", len(payload), ErrCorrupt)
			}
			committed = true
			continue
		}
		// Copy out of the input buffer: sections outlive the caller's data.
		sections = append(sections, Section{Type: typ, Data: append([]byte(nil), payload...)})
	}
	if !committed {
		return sections, seq, fmt.Errorf("%w", ErrIncomplete)
	}
	return sections, seq, nil
}

// Store manages checkpoint generations in one directory: ckpt-<seq>.snap
// files written atomically, the last Keep generations retained. One Store
// owns its directory — concurrent writers are a deployment error.
type Store struct {
	dir string
	// keep is how many complete generations survive a Save (minimum 2, so
	// a tear discovered only at restore time still has a fallback).
	keep int
	seq  uint64
}

const snapPrefix, snapSuffix = "ckpt-", ".snap"

// OpenStore opens (creating if needed) a checkpoint directory. The next
// Save continues the generation sequence after the newest file present.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s := &Store{dir: dir, keep: 2}
	seqs, err := s.generations()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.seq = seqs[len(seqs)-1]
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// generations lists the sequence numbers of present checkpoint files,
// ascending. Unparseable names are ignored (they are not ours).
func (s *Store) generations() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, err := strconv.ParseUint(name[len(snapPrefix):len(name)-len(snapSuffix)], 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (s *Store) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
}

// Save writes one complete checkpoint as the next generation: encode to a
// temp file, fsync it, rename into place, fsync the directory, then prune
// generations beyond Keep. The rename is the commit point — a crash at any
// earlier instant leaves the previous generation untouched, and a crash
// mid-encode leaves only a *.tmp file the next Save overwrites.
func (s *Store) Save(sections []Section) (seq uint64, err error) {
	seq = s.seq + 1
	final := s.path(seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := Encode(f, seq, sections); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("snapshot: encoding generation %d: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("snapshot: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("snapshot: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("snapshot: commit rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, fmt.Errorf("snapshot: fsync dir %s: %w", s.dir, err)
	}
	s.seq = seq
	s.prune()
	return seq, nil
}

// prune removes generations older than the newest keep. Best-effort: a
// failed remove costs disk, not correctness.
func (s *Store) prune() {
	seqs, err := s.generations()
	if err != nil {
		return
	}
	for len(seqs) > s.keep {
		os.Remove(s.path(seqs[0]))
		seqs = seqs[1:]
	}
}

// Load returns the newest complete, valid checkpoint. Generations that are
// torn, corrupt or incomplete are skipped (newest first); if none validate
// the error wraps ErrNoCheckpoint, with the newest generation's defect
// attached so an operator sees *why* the state was lost.
func (s *Store) Load() (sections []Section, seq uint64, err error) {
	seqs, err := s.generations()
	if err != nil {
		return nil, 0, err
	}
	var firstDefect error
	for i := len(seqs) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(s.path(seqs[i]))
		if rerr != nil {
			if firstDefect == nil {
				firstDefect = rerr
			}
			continue
		}
		secs, fseq, derr := Decode(data)
		if derr == nil {
			return secs, fseq, nil
		}
		if firstDefect == nil {
			firstDefect = fmt.Errorf("generation %d: %w", seqs[i], derr)
		}
	}
	if firstDefect != nil {
		return nil, 0, fmt.Errorf("%w (newest defect: %v)", ErrNoCheckpoint, firstDefect)
	}
	return nil, 0, ErrNoCheckpoint
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Enc is an append-only little-endian encoder for section payloads: the
// tiny, dependency-free serialisation the service state uses. Methods never
// fail; the buffer grows as needed.
type Enc struct{ buf []byte }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U64 appends one unsigned 64-bit value.
func (e *Enc) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// I64 appends one signed 64-bit value.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends one float64 bit pattern (exact round-trip, NaN included).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends one boolean byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64s appends a length-prefixed float64 slice.
func (e *Enc) F64s(vs []float64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// Dec decodes payloads written by Enc. The first failed read latches an
// error; every later read returns zero values, so decode sequences read
// straight through and check Err once at the end.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(data []byte) *Dec { return &Dec{buf: data} }

// Err returns the first decode failure (short buffer), or nil.
func (d *Dec) Err() error { return d.err }

// Rest returns the number of unread bytes.
func (d *Dec) Rest() int { return len(d.buf) - d.off }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf)-d.off < n {
		d.err = fmt.Errorf("payload truncated at offset %d (want %d more bytes): %w", d.off, n, ErrCorrupt)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads one unsigned 64-bit value.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads one signed 64-bit value.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads one float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads one boolean byte.
func (d *Dec) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// F64s reads a length-prefixed float64 slice (nil when empty).
func (d *Dec) F64s() []float64 {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Rest()/8) {
		d.err = fmt.Errorf("slice length %d exceeds remaining payload: %w", n, ErrCorrupt)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}
