package mginf

import (
	"math"
	"repro/internal/dist/rng"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
)

func TestNewValidation(t *testing.T) {
	e, _ := dist.NewExponential(1)
	if _, err := New(0, e); err == nil {
		t.Fatal("lambda 0 should be rejected")
	}
	if _, err := New(1, nil); err == nil {
		t.Fatal("nil service should be rejected")
	}
	p, _ := dist.NewPareto(0.9, 1) // infinite mean
	if _, err := New(1, p); err == nil {
		t.Fatal("infinite-mean service should be rejected (stability condition)")
	}
}

func TestLoad(t *testing.T) {
	e, _ := dist.NewExponential(0.5) // mean 2
	q, err := New(10, e)
	if err != nil {
		t.Fatal(err)
	}
	if q.Load() != 20 {
		t.Fatalf("load = %g, want 20", q.Load())
	}
	if q.MeanN() != 20 || q.VarN() != 20 {
		t.Fatal("Poisson marginal: mean and variance must equal the load")
	}
}

func TestStationaryPMFSumsToOne(t *testing.T) {
	e, _ := dist.NewExponential(1)
	q, _ := New(7, e)
	var sum float64
	for n := 0; n < 100; n++ {
		p := q.StationaryPMF(n)
		if p < 0 {
			t.Fatalf("negative pmf at %d", n)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %g", sum)
	}
	if q.StationaryPMF(-1) != 0 {
		t.Fatal("pmf at negative count must be 0")
	}
}

func TestStationaryPMFKnownValues(t *testing.T) {
	e, _ := dist.NewExponential(1)
	q, _ := New(3, e) // ρ = 3
	if got, want := q.StationaryPMF(0), math.Exp(-3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(N=0) = %g, want %g", got, want)
	}
	if got, want := q.StationaryPMF(3), math.Exp(-3)*27.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(N=3) = %g, want %g", got, want)
	}
}

func TestStationaryPMFLargeLoad(t *testing.T) {
	// Log-space evaluation must survive backbone-scale loads (ρ ≈ 10⁴).
	e, _ := dist.NewExponential(1)
	q, _ := New(10000, e)
	p := q.StationaryPMF(10000)
	// Poisson(ρ) at its mode ≈ 1/√(2πρ).
	want := 1 / math.Sqrt(2*math.Pi*10000)
	if math.Abs(p-want)/want > 0.01 {
		t.Fatalf("P(N=ρ) = %g, want ≈ %g", p, want)
	}
}

func TestStationaryCDF(t *testing.T) {
	e, _ := dist.NewExponential(1)
	q, _ := New(5, e)
	if q.StationaryCDF(-1) != 0 {
		t.Fatal("CDF below 0 must be 0")
	}
	if got := q.StationaryCDF(200); math.Abs(got-1) > 1e-9 {
		t.Fatalf("CDF at large n = %g, want 1", got)
	}
	prev := -1.0
	for n := 0; n < 20; n++ {
		c := q.StationaryCDF(n)
		if c < prev {
			t.Fatalf("CDF decreasing at %d", n)
		}
		prev = c
	}
}

func TestPGF(t *testing.T) {
	e, _ := dist.NewExponential(2) // mean 0.5
	q, _ := New(8, e)              // ρ = 4
	if got := q.PGF(1); got != 1 {
		t.Fatalf("PGF(1) = %g, want 1", got)
	}
	if got, want := q.PGF(0), math.Exp(-4.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PGF(0) = %g, want P(N=0) = %g", got, want)
	}
	// Derivative at 1 is the mean: finite difference check.
	h := 1e-6
	deriv := (q.PGF(1+h) - q.PGF(1-h)) / (2 * h)
	if math.Abs(deriv-4) > 1e-4 {
		t.Fatalf("PGF'(1) = %g, want 4", deriv)
	}
}

func TestConstantRateVariance(t *testing.T) {
	e, _ := dist.NewExponential(0.5) // mean 2
	q, _ := New(10, e)               // ρ = 20
	if got := q.ConstantRateVariance(3); got != 9*20 {
		t.Fatalf("Var(rN) = %g, want 180", got)
	}
}

// The insensitivity property: N(t) is Poisson(ρ) for any service
// distribution with the same mean.
func TestSimulateInsensitivity(t *testing.T) {
	services := []dist.Sampler{}
	e, _ := dist.NewExponential(0.5) // mean 2
	services = append(services, e)
	u, _ := dist.NewUniform(1, 3) // mean 2
	services = append(services, u)
	bp, _ := dist.NewBoundedPareto(1.5, 0.5, 50) // heavy-ish, mean ≈ 1.46
	for i, svc := range services {
		q, err := New(10, svc)
		if err != nil {
			t.Fatal(err)
		}
		rho := q.Load()
		rng := rng.New(int64(100 + i))
		samples, err := q.Simulate(2000, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		m := stats.Mean(samples)
		v := stats.PopVariance(samples)
		if math.Abs(m-rho)/rho > 0.05 {
			t.Fatalf("service %d: mean N = %g, want ρ = %g", i, m, rho)
		}
		if math.Abs(v-rho)/rho > 0.15 {
			t.Fatalf("service %d: var N = %g, want ρ = %g (Poisson)", i, v, rho)
		}
	}
	_ = bp // heavy-tailed service exercised in the long-duration test below
}

func TestSimulateHeavyTailedService(t *testing.T) {
	bp, err := dist.NewBoundedPareto(1.5, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(20, bp)
	if err != nil {
		t.Fatal(err)
	}
	rho := q.Load()
	rng := rng.New(7)
	samples, err := q.Simulate(3000, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Mean(samples); math.Abs(m-rho)/rho > 0.05 {
		t.Fatalf("heavy-tailed service: mean N = %g, want ρ = %g", m, rho)
	}
}

func TestSimulateValidation(t *testing.T) {
	e, _ := dist.NewExponential(1)
	q, _ := New(1, e)
	rng := rng.New(1)
	if _, err := q.Simulate(0, 1, rng); err == nil {
		t.Fatal("zero horizon should be rejected")
	}
	if _, err := q.Simulate(10, 20, rng); err == nil {
		t.Fatal("sampleEvery > horizon should be rejected")
	}
	if _, err := q.Simulate(10, 1, nil); err == nil {
		t.Fatal("nil rng should be rejected")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	e, _ := dist.NewExponential(1)
	q, _ := New(5, e)
	a, err := q.Simulate(100, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Simulate(100, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
}
