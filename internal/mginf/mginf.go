// Package mginf models the number of active flows N(t) on an uncongested
// link as the occupancy of an M/G/∞ queue: flows arrive Poisson(λ), stay
// for their duration D, and never queue (the link is over-provisioned).
//
// This is the special case of the paper's model with rectangular shots of
// height 1 (§IV) and the flow-count model of Ben Fredj et al. [3], which the
// paper cites as "a very particular case of our model where all flows would
// have exactly the same rate". It serves two purposes here: the analytic
// distribution of N(t) used inside Theorem 1's proof, and the constant-rate
// baseline whose variance under-estimation the ablation benches quantify.
package mginf

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/dist/rng"
)

// Queue is an M/G/∞ queue with arrival rate Lambda and service (flow
// duration) distribution ServiceTime.
type Queue struct {
	Lambda      float64
	ServiceTime dist.Sampler
}

// New validates parameters and returns a queue.
func New(lambda float64, service dist.Sampler) (*Queue, error) {
	if !(lambda > 0) {
		return nil, fmt.Errorf("mginf: lambda must be > 0, got %g", lambda)
	}
	if service == nil {
		return nil, fmt.Errorf("mginf: nil service distribution")
	}
	if m := service.Mean(); !(m > 0) || math.IsInf(m, 0) {
		return nil, fmt.Errorf("mginf: service mean must be positive and finite, got %g", m)
	}
	return &Queue{Lambda: lambda, ServiceTime: service}, nil
}

// Load returns ρ = λ·E[D], the mean number of flows in progress.
func (q *Queue) Load() float64 { return q.Lambda * q.ServiceTime.Mean() }

// StationaryPMF returns P(N = n) in the stationary regime: N(t) is Poisson
// with mean ρ = λE[D], for any service distribution (insensitivity).
func (q *Queue) StationaryPMF(n int) float64 {
	if n < 0 {
		return 0
	}
	rho := q.Load()
	// Compute in log space to survive large ρ.
	logP := float64(n)*math.Log(rho) - rho - lgamma(float64(n)+1)
	return math.Exp(logP)
}

// StationaryCDF returns P(N ≤ n).
func (q *Queue) StationaryCDF(n int) float64 {
	if n < 0 {
		return 0
	}
	var sum float64
	for k := 0; k <= n; k++ {
		sum += q.StationaryPMF(k)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// MeanN and VarN are both ρ for a Poisson marginal.
func (q *Queue) MeanN() float64 { return q.Load() }

// VarN returns the variance of the active-flow count.
func (q *Queue) VarN() float64 { return q.Load() }

// PGF returns E[z^N] = exp(ρ(z-1)), the probability generating function
// used in the proof of Theorem 1 (eq. 3 of the paper).
func (q *Queue) PGF(z float64) float64 {
	return math.Exp(q.Load() * (z - 1))
}

// ConstantRateVariance returns the variance of the total rate under the [3]
// baseline where every flow transmits at the same constant rate r:
// R(t) = r·N(t), so Var(R) = r²·ρ. With r chosen to match the mean
// (r = E[S]/E[D] is a common choice), this under-estimates the true
// variance whenever flow rates are heterogeneous — the ablation the paper's
// Theorem 3 discussion motivates.
func (q *Queue) ConstantRateVariance(r float64) float64 {
	return r * r * q.Load()
}

// Simulate runs the queue for the given horizon after a warm-up of several
// mean service times, sampling N(t) every sampleEvery seconds, and returns
// the samples. The simulation is event-driven over arrival epochs with a
// min-heap of departures collapsed into sorted slices per sample step (the
// sample path is only needed at the sampling grid, so exact event ordering
// between samples is unnecessary).
func (q *Queue) Simulate(horizon, sampleEvery float64, r *rng.Rand) ([]float64, error) {
	if !(horizon > 0) || !(sampleEvery > 0) || sampleEvery > horizon {
		return nil, fmt.Errorf("mginf: need 0 < sampleEvery <= horizon")
	}
	if r == nil {
		return nil, fmt.Errorf("mginf: nil rng")
	}
	warm := 10 * q.ServiceTime.Mean()
	pp, err := dist.NewPoissonProcess(q.Lambda, r)
	if err != nil {
		return nil, fmt.Errorf("mginf: %w", err)
	}
	total := warm + horizon
	n := int(horizon / sampleEvery)
	samples := make([]float64, n)
	// Bucket departures on the sampling grid: a flow arriving at a and
	// leaving at d contributes +1 to every sample time in [a, d).
	for {
		a := pp.Next()
		if a >= total {
			break
		}
		d := a + q.ServiceTime.Sample(r)
		lo := int(math.Ceil((a - warm) / sampleEvery))
		hi := int(math.Ceil((d - warm) / sampleEvery)) // first grid point >= d
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			samples[k]++
		}
	}
	return samples, nil
}

// lgamma returns log Γ(x) discarding the sign (x > 0 here).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
