package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/membudget"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Options tunes a Writer.
type Options struct {
	// SegmentPackets is the packet count one segment frame holds (the last
	// segment may be short). Default DefaultSegmentPackets.
	SegmentPackets int
	// Budget, when non-nil, is charged for the writer's resident segment
	// buffer (columns + encode scratch) for the lifetime of the writer —
	// the store path's only resident state, so a budgeted pipeline accounts
	// the writer like any other stage holding blocks.
	Budget membudget.Reserver
	// Workers is the synthesis worker count Generate shards packet work
	// across (<= 1 runs the serial generator, like StreamParallelBlocksCtx).
	// The written bytes are identical at any worker count.
	Workers int
}

// Writer appends one trace to a store file. The write path is append-only
// and buffered: AddBlock copies incoming block columns into one resident
// segment buffer and emits a CRC-framed segment each time it fills; Close
// appends the optional checkpoint footer, the trailer directory and the tail
// pointer, then fsyncs and renames the temp file into place — so a crash
// mid-write leaves a *.tmp, never a half-valid store at the final path.
type Writer struct {
	f      *os.File
	bw     *bufio.Writer
	path   string // final path; f writes path+".tmp"
	off    int64  // absolute file offset of the next byte
	seq    uint64 // frame ordinal
	meta   Meta
	budget membudget.Reserver
	charge int64
	err    error
	closed bool

	segCap  int
	times   []float64
	srcs    []uint64
	dsts    []uint64
	sizes   []uint16
	payload []byte

	segs    []segMeta
	packets int64
	progs   []trace.FlowProgram // start-sorted footer programs, nil = no footer
}

// Create opens a store writer for path. The file is written to path+".tmp"
// and renamed into place by Close. meta's CheckpointEvery only takes effect
// if SetPrograms supplies the program list before Close.
func Create(path string, meta Meta, opts Options) (*Writer, error) {
	segCap := opts.SegmentPackets
	if segCap == 0 {
		segCap = DefaultSegmentPackets
	}
	if segCap < 1 {
		return nil, fmt.Errorf("store: SegmentPackets must be >= 1, got %d", segCap)
	}
	meta.SegmentPackets = segCap
	// Columns plus the encode scratch the flush serialises them into.
	charge := int64(segCap)*bytesPerPacket*2 + 512
	if opts.Budget != nil {
		if err := opts.Budget.Reserve(context.Background(), charge); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path+".tmp", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		if opts.Budget != nil {
			opts.Budget.Release(charge)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &Writer{
		f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path,
		meta: meta, budget: opts.Budget, charge: charge,
		segCap: segCap,
		times:  make([]float64, 0, segCap),
		srcs:   make([]uint64, 0, segCap),
		dsts:   make([]uint64, 0, segCap),
		sizes:  make([]uint16, 0, segCap),
	}
	if _, err := w.bw.WriteString(fileMagic); err != nil {
		w.fail(err)
		return nil, w.err
	}
	w.off = int64(len(fileMagic))
	if err := w.writeFrame(frameMeta, meta.encode()); err != nil {
		return nil, err
	}
	return w, nil
}

// fail latches err, closes the file and removes the temp — every later call
// returns the latched error.
func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("store: writing %s: %w", w.path, err)
	}
	w.release()
	if w.f != nil {
		w.f.Close()
		os.Remove(w.path + ".tmp")
		w.f = nil
	}
}

func (w *Writer) release() {
	if w.budget != nil {
		w.budget.Release(w.charge)
		w.budget = nil
	}
}

// writeFrame appends one CRC frame and advances the offset.
func (w *Writer) writeFrame(typ uint32, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if err := snapshot.WriteFrame(w.bw, typ, w.seq, payload); err != nil {
		w.fail(err)
		return w.err
	}
	w.seq++
	w.off += snapshot.FrameHeaderSize + int64(len(payload)) + snapshot.FrameTrailerSize
	return nil
}

// AddBlock appends blk's packets to the store. Blocks are borrowed: the
// writer copies the columns into its segment buffer, so the caller recycles
// blk freely. Packet times must be the stream's rebased, non-decreasing
// times — exactly what StreamParallelBlocksCtx produces.
//
//repro:hotpath
func (w *Writer) AddBlock(blk *trace.Block) error {
	if w.err != nil {
		return w.err
	}
	n := blk.Len()
	for i := 0; i < n; {
		take := n - i
		if room := w.segCap - len(w.times); take > room {
			take = room
		}
		w.times = append(w.times, blk.Times[i:i+take]...)
		w.srcs = append(w.srcs, blk.Srcs[i:i+take]...)
		w.dsts = append(w.dsts, blk.Dsts[i:i+take]...)
		w.sizes = append(w.sizes, blk.Sizes[i:i+take]...)
		i += take
		if len(w.times) == w.segCap {
			if err := w.flushSegment(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushSegment serialises the buffered columns as one segment frame: the
// fixed prefix (count, tFirst, tLast, pad), alignment padding so Times lands
// on an 8-byte file offset, then the four column runs.
func (w *Writer) flushSegment() error {
	n := len(w.times)
	if n == 0 || w.err != nil {
		return w.err
	}
	pad := int(segPad(w.off))
	need := segPrefixLen + pad + n*bytesPerPacket
	if cap(w.payload) < need {
		w.payload = make([]byte, need)
	}
	p := w.payload[:need]
	binary.LittleEndian.PutUint64(p[0:], uint64(n))
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(w.times[0]))
	binary.LittleEndian.PutUint64(p[16:], math.Float64bits(w.times[n-1]))
	binary.LittleEndian.PutUint64(p[24:], uint64(pad))
	o := segPrefixLen
	for i := 0; i < pad; i++ {
		p[o+i] = 0
	}
	o += pad
	for i, t := range w.times {
		binary.LittleEndian.PutUint64(p[o+8*i:], math.Float64bits(t))
	}
	o += 8 * n
	for i, v := range w.srcs {
		binary.LittleEndian.PutUint64(p[o+8*i:], v)
	}
	o += 8 * n
	for i, v := range w.dsts {
		binary.LittleEndian.PutUint64(p[o+8*i:], v)
	}
	o += 8 * n
	for i, v := range w.sizes {
		binary.LittleEndian.PutUint16(p[o+2*i:], v)
	}
	sm := segMeta{off: w.off, count: int64(n), cum: w.packets, tFirst: w.times[0], tLast: w.times[n-1]}
	if err := w.writeFrame(frameSegment, p); err != nil {
		return err
	}
	w.segs = append(w.segs, sm)
	w.packets += int64(n)
	w.times = w.times[:0]
	w.srcs = w.srcs[:0]
	w.dsts = w.dsts[:0]
	w.sizes = w.sizes[:0]
	return nil
}

// SetPrograms supplies the trace's phase-1 flow programs for the checkpoint
// footer (required before Close for a footer to be written; ignored when
// meta.CheckpointEvery is 0). The writer sorts a copy by (Start, Index) —
// the checkpoint index order — so callers pass admission order as produced
// by trace.Programs.
func (w *Writer) SetPrograms(progs []trace.FlowProgram) {
	sorted := append([]trace.FlowProgram(nil), progs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Index < sorted[j].Index
	})
	w.progs = sorted
}

// Close flushes the final partial segment, writes the footer (when programs
// were supplied and CheckpointEvery > 0), the trailer and the tail pointer,
// fsyncs and renames the file into place. sum is stored verbatim in the
// trailer so readers reproduce Summary-derived output byte-identically.
func (w *Writer) Close(sum trace.Summary) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("store: writer for %s already closed", w.path)
	}
	if err := w.flushSegment(); err != nil {
		return err
	}
	var footerOff int64
	if w.progs != nil && w.meta.CheckpointEvery > 0 {
		footerOff = w.off
		fp, err := encodeFooter(w.meta, w.progs)
		if err != nil {
			w.fail(err)
			return w.err
		}
		if err := w.writeFrame(frameFooter, fp); err != nil {
			return err
		}
	}
	trailerOff := w.off
	if err := w.writeFrame(frameTrailer, encodeTrailer(sum, footerOff, w.segs)); err != nil {
		return err
	}
	var tail [tailLen]byte
	binary.LittleEndian.PutUint64(tail[0:], uint64(trailerOff))
	binary.LittleEndian.PutUint64(tail[8:], tailMagic)
	if _, err := w.bw.Write(tail[:]); err != nil {
		w.fail(err)
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.fail(err)
		return w.err
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		w.fail(err)
		return w.err
	}
	w.f = nil
	if err := os.Rename(w.path+".tmp", w.path); err != nil {
		w.fail(err)
		return w.err
	}
	if d, err := os.Open(filepath.Dir(w.path)); err == nil {
		d.Sync()
		d.Close()
	}
	w.closed = true
	w.release()
	return nil
}

// Abort discards the writer and its temp file. Safe after a failed Close.
func (w *Writer) Abort() {
	if w.closed {
		return
	}
	w.fail(fmt.Errorf("aborted"))
}

// Generate writes cfg's full trace to path: phase 1 runs once for the
// checkpoint footer (when checkpointEvery > 0), then the sharded synthesis
// streams every block through a Writer. The file bytes are identical at any
// opts.Workers and depend on segment size only through segment framing —
// replay from the store is bit-identical to serial generation regardless.
func Generate(ctx context.Context, path string, cfg trace.Config, checkpointEvery float64, opts Options) (trace.Summary, error) {
	meta := Meta{
		Seed:            cfg.Seed,
		Duration:        cfg.Duration,
		Warmup:          cfg.Warmup,
		Lambda:          cfg.Lambda,
		CheckpointEvery: checkpointEvery,
	}
	w, err := Create(path, meta, opts)
	if err != nil {
		return trace.Summary{}, err
	}
	defer w.Abort()
	if checkpointEvery > 0 {
		progs, _, err := trace.Programs(cfg)
		if err != nil {
			return trace.Summary{}, err
		}
		w.SetPrograms(progs)
	}
	sum, err := trace.StreamParallelBlocksCtx(ctx, cfg, opts.Workers, func(blk *trace.Block) error {
		return w.AddBlock(blk)
	})
	if err != nil {
		return trace.Summary{}, err
	}
	if err := w.Close(sum); err != nil {
		return trace.Summary{}, err
	}
	return sum, nil
}
