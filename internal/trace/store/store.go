// Package store persists trace.Block columns in an append-only segment file,
// so multi-hour traces are generated once and measured out-of-core instead of
// being re-synthesised for every pass. The file is a sequence of CRC-framed
// records (the exact framing of internal/snapshot, so every torn-tail and
// bit-flip guarantee carries over):
//
//	magic | meta | segment* | footer? | trailer | tail pointer
//
// Each segment frame holds up to SegmentPackets packets as four contiguous
// little-endian column runs — Times (float64 bits), Srcs, Dsts (packed header
// words), Sizes (uint16) — padded so the 8-byte columns land on an 8-byte
// file offset. A Reader therefore serves blocks by pointing straight into an
// mmap of the file (zero-copy; a plain os.ReadAt decode path is the fallback
// for hosts without a usable mmap), and a time window is a binary search of
// the segment directory plus a column scan — no re-synthesis at all. The
// optional footer is the trace's checkpoint index (start-sorted FlowProgram
// deltas plus active-flow lists every CheckpointEvery seconds) in a compact
// varint encoding; it implements trace.ProgramIndex, so Checkpoints replay
// streams programs from disk instead of holding ~100 B per flow resident.
//
// Determinism contract: stored times are exactly the generated rebased times
// (t − warmup), so Reader.Window emits Times[i] − lo — the identical float
// operation trace.Window performs — and replay from a store written at any
// segment size or worker count is bit-identical to serial generation. That,
// plus the packet-exact Stream cursor, is what lets the measurement suite
// shard one trace set across processes and merge byte-identical output.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/snapshot"
	"repro/internal/trace"
)

// fileMagic carries the store format version in its trailing byte; bump it
// on any incompatible layout change.
const fileMagic = "FLOWSTO\x01"

// Frame types of the store file. The snapshot framing reserves 0xFFFFFFFF
// for its commit frame; store files never use it.
const (
	frameMeta    uint32 = 1
	frameSegment uint32 = 2
	frameFooter  uint32 = 3
	frameTrailer uint32 = 4
)

// tailLen is the fixed-length pointer block ending a complete store file:
// the trailer frame's file offset followed by tailMagic, 16 bytes total.
// Readers locate the trailer from here; when the tail is damaged they fall
// back to a forward frame scan.
const tailLen = 16

// tailMagic terminates a complete store file.
const tailMagic uint64 = 0x464c4f5753544f52 // "FLOWSTOR"

// segPrefixLen is the fixed prefix of a segment payload: count, tFirst,
// tLast, pad — four 64-bit words before the padding and the column runs.
const segPrefixLen = 32

// DefaultSegmentPackets is the default segment granularity: ~1.7 MB of
// columns per segment — large enough that per-segment framing amortises to
// noise, small enough that a reader's working set (and a writer's resident
// buffer) stays a sliver of a multi-GB trace.
const DefaultSegmentPackets = 1 << 16

// bytesPerPacket is the column cost of one packet on disk and in the
// writer's accumulation buffer: 8 (Times) + 8 (Srcs) + 8 (Dsts) + 2 (Sizes).
const bytesPerPacket = 26

// Tagged error classes. Framing failures reuse the snapshot taxonomy
// (snapshot.ErrTorn, snapshot.ErrCorrupt) so callers distinguish a torn
// final segment (valid prefix still readable) from flipped bytes.
var (
	// ErrNoFooter: the store has no checkpoint footer (e.g. it was converted
	// from a pcap, or written with CheckpointEvery = 0).
	ErrNoFooter = errors.New("store: no checkpoint footer")
)

// Meta identifies what a store holds: the generation parameters a reader
// needs to interpret (and, with the caller's full trace.Config, re-derive)
// the trace. Samplers cannot be serialised, so a store does not embed the
// whole Config; the (Seed, CheckpointEvery) pair plus the caller-supplied
// Config is the determinism contract.
type Meta struct {
	// Seed is the generator seed the trace was produced with (0 for
	// non-synthetic sources, e.g. pcap conversions).
	Seed int64
	// Duration is the trace length in seconds (rebased times lie in
	// [0, Duration)).
	Duration float64
	// Warmup is the generator warm-up that was cut before rebasing.
	Warmup float64
	// Lambda is the flow arrival rate (informational; sizes replay grids).
	Lambda float64
	// CheckpointEvery is the footer's checkpoint spacing in seconds
	// (0 = the store carries no footer).
	CheckpointEvery float64
	// SegmentPackets is the segment granularity the file was written at.
	SegmentPackets int
}

func (m Meta) encode() []byte {
	var e snapshot.Enc
	e.I64(m.Seed)
	e.F64(m.Duration)
	e.F64(m.Warmup)
	e.F64(m.Lambda)
	e.F64(m.CheckpointEvery)
	e.U64(uint64(m.SegmentPackets))
	return e.Bytes()
}

func decodeMeta(p []byte) (Meta, error) {
	d := snapshot.NewDec(p)
	m := Meta{
		Seed:            d.I64(),
		Duration:        d.F64(),
		Warmup:          d.F64(),
		Lambda:          d.F64(),
		CheckpointEvery: d.F64(),
		SegmentPackets:  int(d.U64()),
	}
	if err := d.Err(); err != nil {
		return Meta{}, fmt.Errorf("store: meta frame: %w", err)
	}
	return m, nil
}

// segMeta is one directory entry of the trailer: where a segment frame
// starts, how many packets it holds, how many packets precede it, and its
// rebased time bounds (first and last packet).
type segMeta struct {
	off    int64
	count  int64
	cum    int64
	tFirst float64
	tLast  float64
}

// encodeTrailer assembles the trailer payload: totals, the stored summary,
// the footer frame offset (0 = none) and the segment directory.
func encodeTrailer(sum trace.Summary, footerOff int64, segs []segMeta) []byte {
	var e snapshot.Enc
	e.I64(sum.Flows)
	e.I64(sum.Packets)
	e.I64(sum.Bytes)
	e.F64(sum.Duration)
	e.F64(sum.AvgRateBps)
	e.F64(sum.FlowRate)
	e.I64(sum.OnePktFlows)
	e.I64(footerOff)
	e.U64(uint64(len(segs)))
	for _, s := range segs {
		e.I64(s.off)
		e.I64(s.count)
		e.F64(s.tFirst)
		e.F64(s.tLast)
	}
	return e.Bytes()
}

func decodeTrailer(p []byte) (sum trace.Summary, footerOff int64, segs []segMeta, err error) {
	d := snapshot.NewDec(p)
	sum.Flows = d.I64()
	sum.Packets = d.I64()
	sum.Bytes = d.I64()
	sum.Duration = d.F64()
	sum.AvgRateBps = d.F64()
	sum.FlowRate = d.F64()
	sum.OnePktFlows = d.I64()
	footerOff = d.I64()
	n := d.U64()
	if d.Err() == nil && n > uint64(d.Rest()/32) {
		return sum, 0, nil, fmt.Errorf("store: trailer directory of %d segments exceeds payload: %w", n, snapshot.ErrCorrupt)
	}
	var cum int64
	for i := uint64(0); i < n; i++ {
		s := segMeta{off: d.I64(), count: d.I64(), tFirst: d.F64(), tLast: d.F64(), cum: cum}
		cum += s.count
		segs = append(segs, s)
	}
	if err := d.Err(); err != nil {
		return sum, 0, nil, fmt.Errorf("store: trailer frame: %w", err)
	}
	return sum, footerOff, segs, nil
}

// segPad returns the zero-padding inserted between a segment payload's fixed
// prefix and its Times column so the 8-byte column runs start on an 8-byte
// file offset (frameStart is the segment frame's file offset). Padding is
// settled at write time, so readers never recompute alignment — they read it
// from the payload prefix.
func segPad(frameStart int64) int64 {
	colStart := frameStart + snapshot.FrameHeaderSize + segPrefixLen
	return (8 - colStart%8) % 8
}

// uvarint appends v to b.
func uvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// zigzag maps a signed delta onto the uvarint-friendly unsigned line.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
