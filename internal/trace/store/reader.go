package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/netpkt"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// backing abstracts how file bytes reach the reader: a subslice of an mmap
// (zero-copy) or an os.ReadAt into caller-owned scratch. Offsets are
// absolute file offsets; callers keep n within the file size.
type backing interface {
	size() int64
	// view returns bytes [off, off+n). The mmap backing returns a mapping
	// subslice and ignores scratch; the ReadAt backing fills *scratch
	// (growing it as needed), so a view is only valid until the next view
	// through the same scratch.
	view(off, n int64, scratch *[]byte) ([]byte, error)
	close() error
}

// fileBacking is the portable fallback: every view is a pread into scratch.
type fileBacking struct {
	f  *os.File
	sz int64
}

func (b *fileBacking) size() int64 { return b.sz }

func (b *fileBacking) view(off, n int64, scratch *[]byte) ([]byte, error) {
	if scratch == nil {
		scratch = new([]byte)
	}
	if int64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if _, err := b.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: read [%d,+%d): %w", off, n, err)
	}
	return buf, nil
}

func (b *fileBacking) close() error { return b.f.Close() }

// Reader serves one store file: metadata, the stored summary, packet-exact
// block streaming, bit-identical window replay, and (when the file carries a
// footer) the out-of-core checkpoint index. A Reader is immutable after Open
// and safe for concurrent use; every Stream/Replay drives its own iterator
// state. Blocks and records handed out by a zero-copy reader alias the
// read-only mapping — consumers must copy, never mutate (which every block
// consumer in this codebase already does: blocks are borrowed by contract).
type Reader struct {
	b         backing
	meta      Meta
	sum       trace.Summary
	segs      []segMeta
	packets   int64
	footer    *footerIndex
	footerBuf []byte // retains the footer frame for non-mmap backings
	zeroCopy  bool   // mmap backing on a little-endian host
	// segOK[i] is set once segment i's frame CRC has validated; the backing
	// is immutable for the reader's lifetime, so later Stream/Window passes
	// over the same segment skip the checksum (which would otherwise
	// dominate a deep-window replay touching a sliver of a large segment).
	segOK []atomic.Bool
}

// Open maps (or, where mmap is unavailable, opens for pread) a store file.
// On a fully valid file it returns (reader, nil). When the tail, trailer or
// footer is damaged it falls back to a forward frame scan and — if a meta
// frame and zero or more whole segments validate — returns a reader over
// that valid prefix alongside an error wrapping snapshot.ErrTorn
// (truncation) or snapshot.ErrCorrupt (flipped bytes), mirroring
// snapshot.Decode's torn-tail contract. Only an unreadable or unrecognisable
// file returns a nil reader.
func Open(path string) (*Reader, error) { return open(path, false) }

func open(path string, forceReadAt bool) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	sz := st.Size()
	var b backing
	if !forceReadAt {
		b, _ = mapFile(f, sz) // nil on any mmap failure: fall through
	}
	if b == nil {
		b = &fileBacking{f: f, sz: sz}
	} else {
		// The mapping outlives the descriptor.
		f.Close()
	}
	r := &Reader{b: b, zeroCopy: !forceReadAt && hostLittleEndian}
	if _, ok := b.(*fileBacking); ok {
		r.zeroCopy = false
	}
	var scratch []byte
	magic, err := b.view(0, min64(sz, int64(len(fileMagic))), &scratch)
	if err != nil || string(magic) != fileMagic {
		b.close()
		return nil, fmt.Errorf("store: %s: bad file magic: %w", path, snapshot.ErrCorrupt)
	}
	fastErr := r.openFast()
	if fastErr == nil {
		r.segOK = make([]atomic.Bool, len(r.segs))
		return r, nil
	}
	scanErr := r.scan()
	if scanErr != nil {
		b.close()
		return nil, fmt.Errorf("store: %s unreadable: %w (tail: %v)", path, scanErr, fastErr)
	}
	// The forward scan CRC-validated every frame it kept.
	r.segOK = make([]atomic.Bool, len(r.segs))
	for i := range r.segOK {
		r.segOK[i].Store(true)
	}
	return r, fmt.Errorf("store: %s recovered as valid prefix (%d segments, %d packets): %w",
		path, len(r.segs), r.packets, fastErr)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// frameAt reads and validates the frame at off. The returned payload aliases
// scratch on a ReadAt backing (valid until scratch's next view) and the
// mapping on an mmap backing (valid for the reader's lifetime).
func (r *Reader) frameAt(off int64, scratch *[]byte) (typ uint32, payload []byte, next int64, err error) {
	sz := r.b.size()
	if off < int64(len(fileMagic)) || off >= sz {
		return 0, nil, off, fmt.Errorf("store: frame offset %d outside file of %d bytes: %w", off, sz, snapshot.ErrTorn)
	}
	avail := sz - off
	take := int64(snapshot.FrameHeaderSize)
	if avail >= take {
		hdr, verr := r.b.view(off, take, scratch)
		if verr != nil {
			return 0, nil, off, verr
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[16:]))
		want := take + plen + snapshot.FrameTrailerSize
		// A garbage length field is caught by the header CRC inside
		// ReadFrameAt; just never read past the file or the section bound.
		if plen <= snapshot.MaxSectionBytes && want <= avail {
			take = want
		}
	} else {
		take = avail
	}
	buf, verr := r.b.view(off, take, scratch)
	if verr != nil {
		return 0, nil, off, verr
	}
	typ, _, payload, n, err := snapshot.ReadFrameAt(buf, 0)
	if err != nil {
		return 0, nil, off, fmt.Errorf("store: %w", err)
	}
	return typ, payload, off + int64(n), nil
}

// frameNoCRC re-reads a frame whose bytes a prior load already CRC-validated:
// header fields are trusted (bounds re-checked against the file size) and
// the payload checksum is skipped. The backing is immutable for the
// reader's lifetime, so one validation per segment covers every subsequent
// Stream/Window pass — a deep-window replay would otherwise re-checksum a
// whole segment to read a sliver of it.
func (r *Reader) frameNoCRC(off int64, scratch *[]byte) (typ uint32, payload []byte, err error) {
	hdr, err := r.b.view(off, snapshot.FrameHeaderSize, scratch)
	if err != nil {
		return 0, nil, err
	}
	typ = binary.LittleEndian.Uint32(hdr[4:])
	plen := int64(binary.LittleEndian.Uint32(hdr[16:]))
	if plen > snapshot.MaxSectionBytes || off+snapshot.FrameHeaderSize+plen+snapshot.FrameTrailerSize > r.b.size() {
		return 0, nil, fmt.Errorf("store: frame at offset %d no longer fits the file: %w", off, snapshot.ErrCorrupt)
	}
	payload, err = r.b.view(off+snapshot.FrameHeaderSize, plen, scratch)
	return typ, payload, err
}

// openFast is the O(1)-ish happy path: locate the trailer through the tail
// pointer, load the directory, the meta frame and (when present) the footer.
// Segment payloads are not touched — their CRCs validate lazily on access.
func (r *Reader) openFast() error {
	sz := r.b.size()
	if sz < int64(len(fileMagic))+tailLen {
		return fmt.Errorf("store: file of %d bytes has no tail pointer: %w", sz, snapshot.ErrTorn)
	}
	var scratch []byte
	tail, err := r.b.view(sz-tailLen, tailLen, &scratch)
	if err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(tail[8:]) != tailMagic {
		return fmt.Errorf("store: bad tail magic: %w", snapshot.ErrTorn)
	}
	trailerOff := int64(binary.LittleEndian.Uint64(tail[0:]))
	typ, payload, next, err := r.frameAt(trailerOff, &scratch)
	if err != nil {
		return err
	}
	if typ != frameTrailer {
		return fmt.Errorf("store: tail points at frame type %d, want trailer: %w", typ, snapshot.ErrCorrupt)
	}
	if next != sz-tailLen {
		return fmt.Errorf("store: trailer frame ends at %d, tail starts at %d: %w", next, sz-tailLen, snapshot.ErrCorrupt)
	}
	sum, footerOff, segs, err := decodeTrailer(payload)
	if err != nil {
		return err
	}
	prevEnd := int64(len(fileMagic))
	for i, s := range segs {
		if s.count < 1 || s.off < prevEnd || s.off >= trailerOff {
			return fmt.Errorf("store: segment %d directory entry (off %d, count %d) invalid: %w", i, s.off, s.count, snapshot.ErrCorrupt)
		}
		prevEnd = s.off
	}
	// Meta is the first frame. Its payload must be copied out of scratch
	// before any further view.
	mtyp, mpayload, _, err := r.frameAt(int64(len(fileMagic)), &scratch)
	if err != nil {
		return err
	}
	if mtyp != frameMeta {
		return fmt.Errorf("store: first frame type %d, want meta: %w", mtyp, snapshot.ErrCorrupt)
	}
	meta, err := decodeMeta(mpayload)
	if err != nil {
		return err
	}
	var footer *footerIndex
	var footerBuf []byte
	if footerOff != 0 {
		ftyp, fpayload, _, err := r.frameAt(footerOff, &footerBuf)
		if err != nil {
			return err
		}
		if ftyp != frameFooter {
			return fmt.Errorf("store: frame at footer offset %d has type %d: %w", footerOff, ftyp, snapshot.ErrCorrupt)
		}
		footer, err = parseFooter(fpayload)
		if err != nil {
			return err
		}
	}
	r.meta, r.sum, r.segs, r.footer, r.footerBuf = meta, sum, segs, footer, footerBuf
	if n := len(segs); n > 0 {
		r.packets = segs[n-1].cum + segs[n-1].count
	}
	return nil
}

// scan recovers a store whose tail or trailer is damaged by walking frames
// forward from the meta frame, keeping everything that validates. If the
// trailer frame itself is intact the stored summary and footer pointer are
// adopted; otherwise the reader serves the segment prefix with a zero
// summary and no footer (unless the footer frame was reached and validates).
func (r *Reader) scan() error {
	var scratch []byte
	off := int64(len(fileMagic))
	first := true
	var segs []segMeta
	var cum int64
	var footer *footerIndex
	var footerBuf []byte
	var sum trace.Summary
	haveTrailer := false
	for off < r.b.size() {
		typ, payload, next, err := r.frameAt(off, &scratch)
		if err != nil {
			break // the valid prefix ends here
		}
		if first {
			if typ != frameMeta {
				return fmt.Errorf("store: first frame type %d, want meta: %w", typ, snapshot.ErrCorrupt)
			}
			meta, merr := decodeMeta(payload)
			if merr != nil {
				return merr
			}
			r.meta = meta
			first = false
			off = next
			continue
		}
		switch typ {
		case frameSegment:
			count, _, _, pad, perr := parseSegPrefix(payload)
			if perr != nil || int64(len(payload)) != segPrefixLen+pad+count*bytesPerPacket {
				return fmt.Errorf("store: segment frame at %d malformed: %w", off, snapshot.ErrCorrupt)
			}
			n := int(count)
			tf := math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
			tl := math.Float64frombits(binary.LittleEndian.Uint64(payload[16:]))
			segs = append(segs, segMeta{off: off, count: int64(n), cum: cum, tFirst: tf, tLast: tl})
			cum += int64(n)
		case frameFooter:
			fb := append([]byte(nil), payload...)
			fi, ferr := parseFooter(fb)
			if ferr == nil {
				footer, footerBuf = fi, fb
			}
		case frameTrailer:
			if s, _, dsegs, terr := decodeTrailer(payload); terr == nil && len(dsegs) == len(segs) {
				sum = s
				haveTrailer = true
			}
		}
		off = next
		if haveTrailer {
			break
		}
	}
	if first {
		return fmt.Errorf("store: no meta frame: %w", snapshot.ErrTorn)
	}
	r.segs, r.packets, r.footer, r.footerBuf, r.sum = segs, cum, footer, footerBuf, sum
	return nil
}

// parseSegPrefix decodes a segment payload's fixed prefix.
func parseSegPrefix(payload []byte) (count int64, tFirstBits, tLastBits uint64, pad int64, err error) {
	if len(payload) < segPrefixLen {
		return 0, 0, 0, 0, fmt.Errorf("store: segment payload of %d bytes has no prefix: %w", len(payload), snapshot.ErrCorrupt)
	}
	count = int64(binary.LittleEndian.Uint64(payload[0:]))
	tFirstBits = binary.LittleEndian.Uint64(payload[8:])
	tLastBits = binary.LittleEndian.Uint64(payload[16:])
	pad = int64(binary.LittleEndian.Uint64(payload[24:]))
	if count < 1 || pad < 0 || pad > 7 || count > (int64(len(payload))-segPrefixLen-pad)/bytesPerPacket {
		return 0, 0, 0, 0, fmt.Errorf("store: segment prefix (count %d, pad %d) invalid: %w", count, pad, snapshot.ErrCorrupt)
	}
	return count, tFirstBits, tLastBits, pad, nil
}

// Close releases the mapping or file handle. Blocks and records borrowed
// from a zero-copy reader die with it.
func (r *Reader) Close() error { return r.b.close() }

// Meta returns the stored generation parameters.
func (r *Reader) Meta() Meta { return r.meta }

// Summary returns the trace summary stored in the trailer (zero when the
// reader recovered a torn file whose trailer was lost).
func (r *Reader) Summary() trace.Summary { return r.sum }

// Packets returns the total packets across all readable segments.
func (r *Reader) Packets() int64 { return r.packets }

// Segments returns the number of readable segments.
func (r *Reader) Segments() int { return len(r.segs) }

// LastTime returns the rebased time of the final stored packet (0 for an
// empty store) — the directory's tLast, no segment read needed.
func (r *Reader) LastTime() float64 {
	if len(r.segs) == 0 {
		return 0
	}
	return r.segs[len(r.segs)-1].tLast
}

// ZeroCopy reports whether blocks are served straight from the mapping.
func (r *Reader) ZeroCopy() bool { return r.zeroCopy }

// HasFooter reports whether the store carries a checkpoint footer.
func (r *Reader) HasFooter() bool { return r.footer != nil }

// ProgramIndex returns the footer's out-of-core checkpoint index, or
// ErrNoFooter. The index aliases the reader's backing: it must not be used
// after Close.
func (r *Reader) ProgramIndex() (trace.ProgramIndex, error) {
	if r.footer == nil {
		return nil, ErrNoFooter
	}
	return r.footer, nil
}

// Checkpoints builds a trace.Checkpoints replaying through the store's
// footer. cfg must be the exact configuration the trace was generated with;
// the store cannot carry the samplers, so it cross-checks what it can.
func (r *Reader) Checkpoints(cfg trace.Config) (*trace.Checkpoints, error) {
	if r.footer == nil {
		return nil, ErrNoFooter
	}
	if cfg.Seed != r.meta.Seed || cfg.Duration != r.meta.Duration || cfg.Warmup != r.meta.Warmup {
		return nil, fmt.Errorf("store: config (seed %d, duration %g, warmup %g) does not match store (seed %d, duration %g, warmup %g)",
			cfg.Seed, cfg.Duration, cfg.Warmup, r.meta.Seed, r.meta.Duration, r.meta.Warmup)
	}
	return trace.NewCheckpointsFromIndex(cfg, r.footer)
}

// segIter is the per-iteration state of one Stream or Replay pass: the frame
// scratch (ReadAt backing) and the decode buffers (non-zero-copy paths). One
// segment's columns are resident at a time — the O(segment) memory bound.
type segIter struct {
	scratch []byte
	times   []float64
	srcs    []uint64
	dsts    []uint64
	sizes   []uint16
	blk     trace.Block
}

// loadSeg loads segment i's columns into it: zero-copy views of the mapping
// when the backing and host allow, decode-copies into it's buffers
// otherwise. The frame CRC is validated on every load.
func (r *Reader) loadSeg(i int, it *segIter) (n int, err error) {
	sm := r.segs[i]
	var typ uint32
	var payload []byte
	checked := r.segOK[i].Load()
	if checked {
		typ, payload, err = r.frameNoCRC(sm.off, &it.scratch)
	} else {
		typ, payload, _, err = r.frameAt(sm.off, &it.scratch)
	}
	if err != nil {
		return 0, err
	}
	if typ != frameSegment {
		return 0, fmt.Errorf("store: directory points at frame type %d at offset %d, want segment: %w", typ, sm.off, snapshot.ErrCorrupt)
	}
	count, _, _, pad, err := parseSegPrefix(payload)
	if err != nil {
		return 0, err
	}
	if count != sm.count || int64(len(payload)) != segPrefixLen+pad+count*bytesPerPacket {
		return 0, fmt.Errorf("store: segment %d holds %d packets in %d payload bytes, directory says %d: %w",
			i, count, len(payload), sm.count, snapshot.ErrCorrupt)
	}
	if !checked {
		r.segOK[i].Store(true)
	}
	n = int(count)
	cols := payload[segPrefixLen+pad:]
	colOff := sm.off + snapshot.FrameHeaderSize + segPrefixLen + pad
	if r.zeroCopy && colOff%8 == 0 {
		it.times = castF64(cols[: 8*n : 8*n])
		it.srcs = castU64(cols[8*n : 16*n : 16*n])
		it.dsts = castU64(cols[16*n : 24*n : 24*n])
		it.sizes = castU16(cols[24*n:])
		return n, nil
	}
	if cap(it.times) < n {
		it.times = make([]float64, n)
		it.srcs = make([]uint64, n)
		it.dsts = make([]uint64, n)
		it.sizes = make([]uint16, n)
	}
	it.times = it.times[:n]
	it.srcs = it.srcs[:n]
	it.dsts = it.dsts[:n]
	it.sizes = it.sizes[:n]
	for k := 0; k < n; k++ {
		it.times[k] = math.Float64frombits(binary.LittleEndian.Uint64(cols[8*k:]))
	}
	for k := 0; k < n; k++ {
		it.srcs[k] = binary.LittleEndian.Uint64(cols[8*n+8*k:])
	}
	for k := 0; k < n; k++ {
		it.dsts[k] = binary.LittleEndian.Uint64(cols[16*n+8*k:])
	}
	for k := 0; k < n; k++ {
		it.sizes[k] = binary.LittleEndian.Uint16(cols[24*n+2*k:])
	}
	return n, nil
}

// Stream replays the stored packet stream from packet offset start (0 =
// whole trace) in BlockSize chunks. Blocks are borrowed: valid only during
// fn, read-only (a zero-copy block aliases the PROT_READ mapping), never to
// be recycled into the trace block pool by the consumer. The packet offset
// is the exact resume cursor service sources persist.
func (r *Reader) Stream(ctx context.Context, start int64, fn func(blk *trace.Block) error) error {
	if start < 0 {
		return fmt.Errorf("store: negative stream offset %d", start)
	}
	i := sort.Search(len(r.segs), func(x int) bool { return r.segs[x].cum+r.segs[x].count > start })
	var it segIter
	for ; i < len(r.segs); i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := r.loadSeg(i, &it)
		if err != nil {
			return err
		}
		lo := 0
		if skip := start - r.segs[i].cum; skip > 0 {
			lo = int(skip)
		}
		for lo < n {
			hi := lo + trace.BlockSize
			if hi > n {
				hi = n
			}
			it.blk = trace.Block{
				Times: it.times[lo:hi],
				Sizes: it.sizes[lo:hi],
				Srcs:  it.srcs[lo:hi],
				Dsts:  it.dsts[lo:hi],
			}
			if err := fn(&it.blk); err != nil {
				return err
			}
			lo = hi
		}
	}
	return nil
}

// Window returns a replayable view over rebased times [lo, hi).
func (r *Reader) Window(lo, hi float64) (Window, error) {
	if lo < 0 || !(hi > lo) {
		return Window{}, fmt.Errorf("store: window bounds must satisfy 0 <= lo < hi, got [%g, %g)", lo, hi)
	}
	return Window{r: r, Lo: lo, Hi: hi}, nil
}

// Window is a half-open time window over a stored trace. Unlike
// trace.Window — which re-synthesises its packets from programs — a store
// window is a binary search of the segment directory plus a column scan, so
// replay cost is O(window packets) with no generator work at all, and the
// records are bit-identical to trace.Window's: stored times are the exact
// rebased times the generator emitted, and the per-record rebasing below is
// the identical float64 subtraction trace.Window performs.
type Window struct {
	r      *Reader
	Lo, Hi float64
}

// Replay streams the window's records (times rebased to Lo) through fn.
func (w Window) Replay(fn func(trace.Record) error) error {
	r := w.r
	i := sort.Search(len(r.segs), func(x int) bool { return r.segs[x].tLast >= w.Lo })
	var it segIter
	for ; i < len(r.segs); i++ {
		if r.segs[i].tFirst >= w.Hi {
			return nil
		}
		n, err := r.loadSeg(i, &it)
		if err != nil {
			return err
		}
		k := sort.SearchFloat64s(it.times, w.Lo)
		for ; k < n; k++ {
			t := it.times[k]
			if t >= w.Hi {
				return nil
			}
			rec := trace.Record{
				Time: t - w.Lo,
				Hdr:  netpkt.HeaderFromPacked(it.srcs[k], it.dsts[k], it.sizes[k]),
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
