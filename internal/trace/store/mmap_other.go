//go:build !unix

package store

import "os"

// mapFile reports no mmap support: the reader falls back to os.ReadAt.
func mapFile(f *os.File, size int64) (backing, error) { return nil, nil }
