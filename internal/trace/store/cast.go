package store

import "unsafe"

// The zero-copy read path reinterprets column runs of the mapping as typed
// slices. That is only a relabeling — no copy, no write — when the host is
// little-endian (the on-disk byte order) and the run is aligned for its
// element type; the writer pads segments so the 8-byte columns land on
// 8-byte file offsets, the reader re-checks before casting, and any mismatch
// falls back to the decode-copy path.

// hostLittleEndian reports whether the host stores multi-byte integers in
// the file's byte order.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func castF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castU16(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}
