package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/netpkt"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// The checkpoint footer is the on-disk replacement for the in-memory
// Checkpoints index (~100 B resident per flow): the same start-sorted
// program list and per-boundary active-flow sets, delta/varint-encoded so a
// replay decodes only the programs it plays, straight off the file mapping.
//
// Layout of the footer frame payload:
//
//	every f64 | warmup f64 | duration f64 | nProgs u64 | nb u64
//	group dir:  nb × { progOff u64, firstIdx u64 }    (offsets into progBlob)
//	active dir: nb × { activeOff u64 }                (offsets into activeBlob)
//	progBlobLen u64 | progBlob | activeBlobLen u64 | activeBlob
//
// progBlob holds the programs partitioned into nb groups by start boundary
// (group j ⇔ Start ∈ [b_j, b_{j+1}), warm-up arrivals in group 0), each
// program as: zigzag Δ of the admission index (vs the previous program in
// the group), raw float64 bits of Start/Duration/InvBp1, uvarint SizeB and
// PktBytes, raw packed header words. activeBlob holds, per boundary, the
// uvarint count and ascending-gap-encoded global program indices of the
// flows straddling it — identical sets, in identical order, to the lists
// trace.NewCheckpoints builds resident.

// footerHdrLen is the fixed footer header: every, warmup, duration, nProgs, nb.
const footerHdrLen = 40

// groupOf returns the boundary group of a start time x: the unique g in
// [0, nb) with b(g) <= x < b(g+1) (clamped at the ends), where
// b(j) = warmup + j·every — the one canonical boundary expression, shared
// with trace.Checkpoints. The encoder partitions programs with it and the
// reader seeks with it, so both sides agree on every ulp.
func groupOf(warmup, every float64, nb int, x float64) int {
	g := int((x - warmup) / every)
	if g < 0 {
		g = 0
	}
	if g > nb-1 {
		g = nb - 1
	}
	for g > 0 && warmup+float64(g)*every > x {
		g--
	}
	for g < nb-1 && warmup+float64(g+1)*every <= x {
		g++
	}
	return g
}

// encodeFooter builds the footer payload from the (Start, Index)-sorted
// program list. meta must carry the trace's Warmup/Duration and a positive
// CheckpointEvery.
func encodeFooter(meta Meta, progs []trace.FlowProgram) ([]byte, error) {
	every := meta.CheckpointEvery
	if !(every > 0) {
		return nil, fmt.Errorf("store: checkpoint spacing must be > 0, got %g", every)
	}
	nb := int(meta.Duration/every) + 1
	boundary := func(j int) float64 { return meta.Warmup + float64(j)*every }

	// Partition the sorted programs into boundary groups and delta-encode
	// each group into the program blob.
	groupOff := make([]uint64, nb)
	firstIdx := make([]uint64, nb)
	var progBlob []byte
	g := -1
	var prevIdx int64
	for i := range progs {
		p := &progs[i]
		pg := groupOf(meta.Warmup, every, nb, p.Start)
		if pg < g {
			return nil, fmt.Errorf("store: program %d (start %g) out of group order", i, p.Start)
		}
		for g < pg {
			g++
			groupOff[g] = uint64(len(progBlob))
			firstIdx[g] = uint64(i)
			prevIdx = 0
		}
		src, dst := p.Hdr.Packed()
		progBlob = uvarint(progBlob, zigzag(int64(p.Index)-prevIdx))
		prevIdx = int64(p.Index)
		progBlob = binary.LittleEndian.AppendUint64(progBlob, math.Float64bits(p.Start))
		progBlob = binary.LittleEndian.AppendUint64(progBlob, math.Float64bits(p.Duration))
		progBlob = binary.LittleEndian.AppendUint64(progBlob, math.Float64bits(p.InvBp1))
		progBlob = uvarint(progBlob, uint64(p.SizeB))
		progBlob = uvarint(progBlob, uint64(p.PktBytes))
		progBlob = binary.LittleEndian.AppendUint64(progBlob, src)
		progBlob = binary.LittleEndian.AppendUint64(progBlob, dst)
	}
	for g < nb-1 { // trailing empty groups
		g++
		groupOff[g] = uint64(len(progBlob))
		firstIdx[g] = uint64(len(progs))
	}

	// Build the active lists exactly as trace.NewCheckpoints does, then
	// gap-encode each into the active blob.
	active := make([][]int64, nb)
	for i := range progs {
		p := &progs[i]
		jFirst := int((p.Start-meta.Warmup)/every) + 1
		if jFirst < 0 {
			jFirst = 0
		}
		for jFirst > 0 && boundary(jFirst-1) > p.Start {
			jFirst--
		}
		for jFirst < nb && boundary(jFirst) <= p.Start {
			jFirst++
		}
		for j := jFirst; j < nb && boundary(j) < p.End(); j++ {
			active[j] = append(active[j], int64(i))
		}
	}
	activeOff := make([]uint64, nb)
	var activeBlob []byte
	for j, lst := range active {
		activeOff[j] = uint64(len(activeBlob))
		activeBlob = uvarint(activeBlob, uint64(len(lst)))
		prev := int64(0)
		for k, idx := range lst {
			if k == 0 {
				activeBlob = uvarint(activeBlob, uint64(idx))
			} else {
				activeBlob = uvarint(activeBlob, uint64(idx-prev))
			}
			prev = idx
		}
	}

	var e snapshot.Enc
	e.F64(every)
	e.F64(meta.Warmup)
	e.F64(meta.Duration)
	e.U64(uint64(len(progs)))
	e.U64(uint64(nb))
	for j := 0; j < nb; j++ {
		e.U64(groupOff[j])
		e.U64(firstIdx[j])
	}
	for j := 0; j < nb; j++ {
		e.U64(activeOff[j])
	}
	e.U64(uint64(len(progBlob)))
	out := append(e.Bytes(), progBlob...)
	var e2 snapshot.Enc
	e2.U64(uint64(len(activeBlob)))
	out = append(out, e2.Bytes()...)
	out = append(out, activeBlob...)
	return out, nil
}

// footerIndex is the parsed footer: directory slices plus views of the two
// blobs (subslices of the frame payload — on an mmap backing, the index
// itself stays on disk). It implements trace.ProgramIndex. All methods are
// safe for concurrent use: decoding never mutates the index.
type footerIndex struct {
	every, warmup, duration float64
	nProgs                  int
	nb                      int
	groupOff                []int64 // len nb; offsets into progBlob
	firstIdx                []int64 // len nb+1; [nb] = nProgs sentinel
	activeOff               []int64 // len nb; offsets into activeBlob
	progBlob                []byte
	activeBlob              []byte
}

// parseFooter validates the whole footer structure up front — every program
// and active list decodes cleanly, offsets and counts are consistent — so
// the replay-time decoders can run without error paths. One O(flows) pass
// over compressed bytes, O(1) retained beyond the directory slices.
func parseFooter(payload []byte) (*footerIndex, error) {
	bad := func(format string, args ...any) (*footerIndex, error) {
		return nil, fmt.Errorf("store: footer: "+format+": %w", append(args, snapshot.ErrCorrupt)...)
	}
	if len(payload) < footerHdrLen {
		return bad("short header (%d bytes)", len(payload))
	}
	fi := &footerIndex{
		every:    math.Float64frombits(binary.LittleEndian.Uint64(payload[0:])),
		warmup:   math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
		duration: math.Float64frombits(binary.LittleEndian.Uint64(payload[16:])),
	}
	nProgs := binary.LittleEndian.Uint64(payload[24:])
	nb := binary.LittleEndian.Uint64(payload[32:])
	if !(fi.every > 0) || !(fi.duration > 0) || fi.warmup < 0 {
		return bad("invalid geometry (every %g, warmup %g, duration %g)", fi.every, fi.warmup, fi.duration)
	}
	if nb != uint64(int(fi.duration/fi.every)+1) {
		return bad("boundary count %d does not match duration/every", nb)
	}
	dirLen := int64(nb) * 24 // 16 per group entry + 8 per active entry
	if int64(len(payload)-footerHdrLen) < dirLen+16 {
		return bad("payload too short for %d directory entries", nb)
	}
	if nProgs > uint64(len(payload)) { // each program costs well over 1 byte
		return bad("program count %d exceeds payload", nProgs)
	}
	fi.nProgs = int(nProgs)
	fi.nb = int(nb)
	off := footerHdrLen
	fi.groupOff = make([]int64, fi.nb)
	fi.firstIdx = make([]int64, fi.nb+1)
	for j := 0; j < fi.nb; j++ {
		fi.groupOff[j] = int64(binary.LittleEndian.Uint64(payload[off:]))
		fi.firstIdx[j] = int64(binary.LittleEndian.Uint64(payload[off+8:]))
		off += 16
	}
	fi.firstIdx[fi.nb] = int64(fi.nProgs)
	fi.activeOff = make([]int64, fi.nb)
	for j := 0; j < fi.nb; j++ {
		fi.activeOff[j] = int64(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	progLen := int64(binary.LittleEndian.Uint64(payload[off:]))
	off += 8
	if progLen < 0 || progLen > int64(len(payload)-off)-8 {
		return bad("program blob length %d exceeds payload", progLen)
	}
	fi.progBlob = payload[off : off+int(progLen)]
	off += int(progLen)
	activeLen := int64(binary.LittleEndian.Uint64(payload[off:]))
	off += 8
	if activeLen < 0 || activeLen != int64(len(payload)-off) {
		return bad("active blob length %d does not match payload", activeLen)
	}
	fi.activeBlob = payload[off:]

	// Directory consistency.
	for j := 0; j < fi.nb; j++ {
		if fi.groupOff[j] < 0 || fi.groupOff[j] > progLen {
			return bad("group %d program offset %d out of range", j, fi.groupOff[j])
		}
		if fi.firstIdx[j] < 0 || fi.firstIdx[j] > fi.firstIdx[j+1] {
			return bad("group %d first index %d out of order", j, fi.firstIdx[j])
		}
		if fi.activeOff[j] < 0 || fi.activeOff[j] > activeLen {
			return bad("boundary %d active offset %d out of range", j, fi.activeOff[j])
		}
		if j > 0 && fi.groupOff[j] < fi.groupOff[j-1] {
			return bad("group %d program offset %d out of order", j, fi.groupOff[j])
		}
	}

	// Decode every group once: offsets must land exactly on directory
	// entries, starts must be non-decreasing, and per-flow fields must be
	// playable (positive packet size, at least one byte).
	var cur progCursor
	cur.init(fi, 0)
	prevStart := math.Inf(-1)
	for j := 0; j < fi.nb; j++ {
		if cur.pos != fi.groupOff[j] {
			return bad("group %d starts at blob offset %d, directory says %d", j, cur.pos, fi.groupOff[j])
		}
		for i := fi.firstIdx[j]; i < fi.firstIdx[j+1]; i++ {
			p, ok := cur.next()
			if !ok {
				return bad("program %d of group %d does not decode", i, j)
			}
			if p.Start < prevStart {
				return bad("program %d start %g out of order", i, p.Start)
			}
			prevStart = p.Start
			if p.SizeB < 1 || p.PktBytes < 1 {
				return bad("program %d has unplayable size %d / packet bytes %d", i, p.SizeB, p.PktBytes)
			}
		}
	}
	if cur.pos != int64(len(fi.progBlob)) {
		return bad("program blob has %d trailing bytes", int64(len(fi.progBlob))-cur.pos)
	}
	// Decode every active list once: counts bounded, indices strictly
	// ascending and in range.
	var end int64
	for j := 0; j < fi.nb; j++ {
		d := vdec{b: fi.activeBlob, pos: fi.activeOff[j]}
		n := d.uvarint()
		if d.err != nil || n > uint64(fi.nProgs) {
			return bad("boundary %d active count does not decode", j)
		}
		prev := int64(-1)
		for k := uint64(0); k < n; k++ {
			g := d.uvarint()
			idx := int64(g)
			if k > 0 {
				if g == 0 {
					return bad("boundary %d active gap of zero", j)
				}
				idx = prev + int64(g)
			}
			if d.err != nil || idx < 0 || idx >= int64(fi.nProgs) || idx <= prev {
				return bad("boundary %d active index %d invalid", j, idx)
			}
			prev = idx
		}
		end = d.pos
	}
	if fi.nb > 0 && end != int64(len(fi.activeBlob)) {
		return bad("active blob has %d trailing bytes", int64(len(fi.activeBlob))-end)
	}
	return fi, nil
}

// vdec is a tiny latching varint/raw decoder over a blob.
type vdec struct {
	b   []byte
	pos int64
	err error
}

func (d *vdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("store: varint truncated at blob offset %d: %w", d.pos, snapshot.ErrCorrupt)
		return 0
	}
	d.pos += int64(n)
	return v
}

func (d *vdec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if int64(len(d.b))-d.pos < 8 {
		d.err = fmt.Errorf("store: blob truncated at offset %d: %w", d.pos, snapshot.ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

// progCursor decodes programs sequentially from the program blob, advancing
// across group boundaries (where the index delta chain resets). globalNext
// is the global index of the program next() would decode.
type progCursor struct {
	fi         *footerIndex
	g          int
	pos        int64
	rem        int64 // programs left in group g
	prevIdx    int64
	globalNext int64
}

// init positions the cursor at the start of group g.
func (c *progCursor) init(fi *footerIndex, g int) {
	c.fi = fi
	c.g = g
	c.pos = fi.groupOff[g]
	c.rem = fi.firstIdx[g+1] - fi.firstIdx[g]
	c.prevIdx = 0
	c.globalNext = fi.firstIdx[g]
}

// next decodes the next program, stepping into the following group when the
// current one is exhausted. ok is false at the end of the blob or on a
// decode failure (parseFooter guarantees the latter cannot happen on a
// validated index).
func (c *progCursor) next() (trace.FlowProgram, bool) {
	for c.rem == 0 {
		if c.g+1 >= c.fi.nb {
			return trace.FlowProgram{}, false
		}
		c.g++
		c.pos = c.fi.groupOff[c.g]
		c.rem = c.fi.firstIdx[c.g+1] - c.fi.firstIdx[c.g]
		c.prevIdx = 0
	}
	d := vdec{b: c.fi.progBlob, pos: c.pos}
	idx := c.prevIdx + unzigzag(d.uvarint())
	start := math.Float64frombits(d.u64())
	dur := math.Float64frombits(d.u64())
	invBp1 := math.Float64frombits(d.u64())
	sizeB := d.uvarint()
	pktBytes := d.uvarint()
	src := d.u64()
	dst := d.u64()
	if d.err != nil {
		return trace.FlowProgram{}, false
	}
	c.pos = d.pos
	c.rem--
	c.prevIdx = idx
	c.globalNext++
	return trace.FlowProgram{
		Index:    uint32(idx),
		Start:    start,
		Duration: dur,
		SizeB:    int(sizeB),
		InvBp1:   invBp1,
		PktBytes: int(pktBytes),
		Hdr:      netpkt.HeaderFromPacked(src, dst, 0),
	}, true
}

// Every implements trace.ProgramIndex.
func (fi *footerIndex) Every() float64 { return fi.every }

// Flows implements trace.ProgramIndex.
func (fi *footerIndex) Flows() int { return fi.nProgs }

// Boundaries implements trace.ProgramIndex.
func (fi *footerIndex) Boundaries() int { return fi.nb }

// ActiveAt implements trace.ProgramIndex: it decodes boundary j's gap-coded
// index list and materialises each referenced program. The indices ascend,
// so one forward cursor serves them all — total cost O(group bytes), not
// O(list × group).
func (fi *footerIndex) ActiveAt(j int, buf []trace.FlowProgram) []trace.FlowProgram {
	d := vdec{b: fi.activeBlob, pos: fi.activeOff[j]}
	n := d.uvarint()
	var cur progCursor
	started := false
	prev := int64(0)
	for k := uint64(0); k < n; k++ {
		g := d.uvarint()
		idx := int64(g)
		if k > 0 {
			idx = prev + int64(g)
		}
		prev = idx
		grp := sort.Search(fi.nb, func(x int) bool { return fi.firstIdx[x+1] > idx })
		if !started || idx < cur.globalNext {
			// First index, or (unreachable on a validated footer) a
			// non-ascending list: position the cursor at idx's group.
			cur.init(fi, grp)
			started = true
		} else if fi.firstIdx[grp] >= cur.globalNext && cur.g < grp {
			// Jump over whole intervening groups instead of decoding
			// through their programs one by one.
			cur.init(fi, grp)
		}
		for cur.globalNext < idx {
			cur.next() // skip within the group run up to idx
		}
		p, ok := cur.next()
		if !ok {
			break
		}
		buf = append(buf, p)
	}
	return buf
}

// ProgramsFrom implements trace.ProgramIndex: a pull iterator over programs
// with Start >= from, located by seeking to from's boundary group (later
// groups hold strictly later starts by construction) and skipping the
// group-prefix of earlier starts.
func (fi *footerIndex) ProgramsFrom(from float64) func() (trace.FlowProgram, bool) {
	var cur progCursor
	cur.init(fi, groupOf(fi.warmup, fi.every, fi.nb, from))
	skipping := true
	return func() (trace.FlowProgram, bool) {
		for {
			p, ok := cur.next()
			if !ok {
				return trace.FlowProgram{}, false
			}
			if skipping && p.Start < from {
				continue
			}
			skipping = false
			return p, true
		}
	}
}
