package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/membudget"
	"repro/internal/trace"
)

func testCfg(seed int64) trace.Config {
	size, _ := dist.NewBoundedPareto(1.3, 2000, 200000)
	rate, _ := dist.LognormalFromMoments(200e3, 1)
	return trace.Config{
		Duration:  20,
		Lambda:    50,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Constant{V: 1},
		Warmup:    60,
		Seed:      seed,
	}
}

// buildStore generates cfg's trace into a store file and returns its path.
func buildStore(t *testing.T, cfg trace.Config, every float64, opts Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.fstore")
	if _, err := Generate(context.Background(), path, cfg, every, opts); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return path
}

// streamRecords drains the reader's full packet stream from the given
// packet offset.
func streamRecords(t *testing.T, r *Reader, start int64) []trace.Record {
	t.Helper()
	var recs []trace.Record
	err := r.Stream(context.Background(), start, func(blk *trace.Block) error {
		for i := 0; i < blk.Len(); i++ {
			recs = append(recs, blk.Record(i))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Stream(from %d): %v", start, err)
	}
	return recs
}

func mustEqualRecords(t *testing.T, label string, got, want []trace.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// The core round-trip contract: the file bytes are identical at any worker
// count, and the replayed stream is bit-identical to serial generation at
// any segment size.
func TestGenerateRoundTripDeterminism(t *testing.T) {
	cfg := testCfg(11)
	ref, refSum, err := trace.GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, segPackets := range []int{64, 997, DefaultSegmentPackets} {
		var golden []byte
		for _, workers := range []int{1, 4} {
			path := buildStore(t, cfg, 5, Options{SegmentPackets: segPackets, Workers: workers})
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if golden == nil {
				golden = raw
			} else if !bytes.Equal(golden, raw) {
				t.Fatalf("seg %d: file bytes differ between 1 and %d workers", segPackets, workers)
			}
			r, err := Open(path)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if r.Summary() != refSum {
				t.Fatalf("seg %d: summary %+v, want %+v", segPackets, r.Summary(), refSum)
			}
			if r.Packets() != int64(len(ref)) {
				t.Fatalf("seg %d: %d packets, want %d", segPackets, r.Packets(), len(ref))
			}
			mustEqualRecords(t, "full stream", streamRecords(t, r, 0), ref)
			r.Close()
		}
	}
}

// Window replay from the store must be bit-identical to trace.Window (which
// re-synthesises) and to checkpointed replay, shallow and deep.
func TestWindowReplayBitIdentical(t *testing.T) {
	cfg := testCfg(12)
	path := buildStore(t, cfg, 4, Options{SegmentPackets: 512})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	windows := [][2]float64{{0, 3}, {5.25, 9.75}, {cfg.Duration - 2.5, cfg.Duration}, {0, cfg.Duration}}
	for _, b := range windows {
		ref, err := trace.NewWindow(cfg, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Materialize()
		w, err := r.Window(b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		var got []trace.Record
		if err := w.Replay(func(rec trace.Record) error { got = append(got, rec); return nil }); err != nil {
			t.Fatalf("Replay[%g,%g): %v", b[0], b[1], err)
		}
		mustEqualRecords(t, "window", got, want)
	}
}

// The footer-backed Checkpoints must replay bit-identically to the resident
// in-memory index over the same config — the differential test for the
// out-of-core checkpoint path.
func TestFooterCheckpointsDifferential(t *testing.T) {
	cfg := testCfg(13)
	const every = 4.0
	path := buildStore(t, cfg, every, Options{SegmentPackets: 1024})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.HasFooter() {
		t.Fatal("store has no footer")
	}
	mem, err := trace.NewCheckpoints(cfg, every)
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := r.Checkpoints(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Flows() != ooc.Flows() {
		t.Fatalf("footer indexes %d flows, in-memory %d", ooc.Flows(), mem.Flows())
	}
	windows := [][2]float64{{0, 2}, {3.5, 8.5}, {4, 8}, {11.1, 12.9}, {cfg.Duration - 1, cfg.Duration}, {0, cfg.Duration}}
	for _, b := range windows {
		wm, err := mem.Window(b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		wo, err := ooc.Window(b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		mustEqualRecords(t, "checkpoint window", wo.Materialize(), wm.Materialize())
	}
}

// Stream must resume packet-exactly from any cursor offset.
func TestStreamCursorResume(t *testing.T) {
	cfg := testCfg(14)
	path := buildStore(t, cfg, 0, Options{SegmentPackets: 300})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	full := streamRecords(t, r, 0)
	n := int64(len(full))
	for _, start := range []int64{0, 1, 255, 256, 257, 299, 300, 301, n / 2, n - 1, n, n + 10} {
		want := []trace.Record{}
		if start < n {
			want = full[start:]
		}
		mustEqualRecords(t, "resume", streamRecords(t, r, start), want)
	}
}

// The ReadAt fallback must serve the identical stream as the mmap path.
func TestReadAtFallbackMatchesMmap(t *testing.T) {
	cfg := testCfg(15)
	path := buildStore(t, cfg, 4, Options{SegmentPackets: 700})
	rm, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	rf, err := open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if rf.ZeroCopy() {
		t.Fatal("ReadAt reader claims zero-copy")
	}
	mustEqualRecords(t, "fallback stream", streamRecords(t, rf, 0), streamRecords(t, rm, 0))
	if rm.Summary() != rf.Summary() {
		t.Fatalf("summaries differ: %+v vs %+v", rm.Summary(), rf.Summary())
	}
	wm, _ := rm.Window(2, 9)
	wf, _ := rf.Window(2, 9)
	var a, b []trace.Record
	wm.Replay(func(rec trace.Record) error { a = append(a, rec); return nil })
	wf.Replay(func(rec trace.Record) error { b = append(b, rec); return nil })
	mustEqualRecords(t, "fallback window", b, a)
	if rf.HasFooter() != rm.HasFooter() {
		t.Fatal("footer presence differs between backings")
	}
}

// The writer's resident segment buffer is charged against the budget for its
// lifetime and released on Close and on Abort.
func TestWriterBudgetAccounting(t *testing.T) {
	b, err := membudget.New(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(16)
	path := filepath.Join(t.TempDir(), "t.fstore")
	if _, err := Generate(context.Background(), path, cfg, 0, Options{SegmentPackets: 4096, Budget: b}); err != nil {
		t.Fatal(err)
	}
	if got := b.Used(); got != 0 {
		t.Fatalf("budget holds %d bytes after Close", got)
	}
	if b.Peak() == 0 {
		t.Fatal("writer never charged the budget")
	}

	w, err := Create(filepath.Join(t.TempDir(), "a.fstore"), Meta{Duration: 1}, Options{SegmentPackets: 128, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	blk := trace.GetBlock()
	blk.Append(0.5, 100, 1, 2)
	if err := w.AddBlock(blk); err != nil {
		t.Fatal(err)
	}
	trace.PutBlock(blk)
	w.Abort()
	if got := b.Used(); got != 0 {
		t.Fatalf("budget holds %d bytes after Abort", got)
	}
}

// An empty store (no packets) round-trips.
func TestEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.fstore")
	w, err := Create(path, Meta{Duration: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(trace.Summary{Duration: 5}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.Packets() != 0 || r.Segments() != 0 {
		t.Fatalf("empty store reports %d packets in %d segments", r.Packets(), r.Segments())
	}
	if got := streamRecords(t, r, 0); len(got) != 0 {
		t.Fatalf("empty store streamed %d records", len(got))
	}
	w2, err := r.Window(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Replay(func(trace.Record) error { t.Fatal("record from empty store"); return nil }); err != nil {
		t.Fatal(err)
	}
}
