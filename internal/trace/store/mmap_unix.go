//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapBacking serves views as subslices of a PROT_READ shared mapping: the
// zero-copy path. The kernel pages segments in and out on demand, so a
// reader's resident set tracks its access pattern, not the file size.
type mmapBacking struct {
	data []byte
}

func (m *mmapBacking) size() int64 { return int64(len(m.data)) }

func (m *mmapBacking) view(off, n int64, _ *[]byte) ([]byte, error) {
	return m.data[off : off+n], nil
}

func (m *mmapBacking) close() error {
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// mapFile maps f read-only. A nil backing (any failure, or an empty file —
// zero-length mappings are invalid) sends the caller to the ReadAt fallback.
func mapFile(f *os.File, size int64) (backing, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mmapBacking{data: data}, nil
}
