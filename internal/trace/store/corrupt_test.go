package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/trace"
)

// frameInfo describes one frame of a store file, recovered by walking the
// framing directly — the test's independent view of the layout.
type frameInfo struct {
	typ  uint32
	off  int64 // frame start
	end  int64 // offset just past the payload CRC
	plen int
}

func walkFrames(t *testing.T, raw []byte) []frameInfo {
	t.Helper()
	var frames []frameInfo
	off := len(fileMagic)
	for off < len(raw)-tailLen {
		typ, _, payload, next, err := snapshot.ReadFrameAt(raw, off)
		if err != nil {
			t.Fatalf("reference walk failed at %d: %v", off, err)
		}
		frames = append(frames, frameInfo{typ: typ, off: int64(off), end: int64(next), plen: len(payload)})
		off = next
	}
	if int64(off) != int64(len(raw)-tailLen) {
		t.Fatalf("reference walk ended at %d, tail starts at %d", off, len(raw)-tailLen)
	}
	return frames
}

// corruptFixture builds one store and returns its bytes, frames and the
// serial reference records.
func corruptFixture(t *testing.T) (raw []byte, frames []frameInfo, ref []trace.Record) {
	t.Helper()
	cfg := testCfg(21)
	path := buildStore(t, cfg, 4, Options{SegmentPackets: 400})
	var err error
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err = trace.GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return raw, walkFrames(t, raw), ref
}

// writeTemp materialises a (possibly damaged) byte image as a store file.
func writeTemp(t *testing.T, raw []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dmg.fstore")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// prefixPackets counts the packets in the first n frames.
func prefixPackets(frames []frameInfo, n int) (segs int, packets int64) {
	for _, fr := range frames[:n] {
		if fr.typ == frameSegment {
			segs++
			packets += int64(fr.plen-segPrefixLen) / bytesPerPacket // pad <= 7 < bytesPerPacket, so integer division absorbs it
		}
	}
	return segs, packets
}

// Truncation at every frame boundary (and inside every frame) must yield a
// reader over exactly the frames before the cut, with an error wrapping
// ErrTorn — the snapshot corruption-matrix contract carried to the store.
func TestTruncationAtEveryFrameBoundary(t *testing.T) {
	raw, frames, ref := corruptFixture(t)
	cuts := []struct {
		name string
		at   func(frameInfo) int64
	}{
		{"at-boundary", func(f frameInfo) int64 { return f.off }},
		{"inside-header", func(f frameInfo) int64 { return f.off + 7 }},
		{"inside-payload", func(f frameInfo) int64 { return f.off + snapshot.FrameHeaderSize + int64(f.plen)/2 }},
	}
	for _, cut := range cuts {
		for i, fr := range frames {
			at := cut.at(fr)
			r, err := Open(writeTemp(t, raw[:at]))
			if i == 0 {
				// The meta frame itself is gone or incomplete: nothing usable.
				if err == nil {
					t.Fatalf("%s frame 0: Open accepted a store with no meta frame", cut.name)
				}
				continue
			}
			if err == nil {
				t.Fatalf("%s frame %d: Open returned no error for a truncated store", cut.name, i)
			}
			if !errors.Is(err, snapshot.ErrTorn) {
				t.Fatalf("%s frame %d: error %v does not wrap ErrTorn", cut.name, i, err)
			}
			if r == nil {
				t.Fatalf("%s frame %d: no valid-prefix reader", cut.name, i)
			}
			whole := i
			if cut.name == "inside-payload" && at >= fr.end {
				whole = i + 1 // the midpoint of a tiny payload can land past the frame
			}
			wantSegs, wantPackets := prefixPackets(frames, whole)
			if r.Segments() != wantSegs || r.Packets() != wantPackets {
				t.Fatalf("%s frame %d: prefix has %d segments / %d packets, want %d / %d",
					cut.name, i, r.Segments(), r.Packets(), wantSegs, wantPackets)
			}
			mustEqualRecords(t, "torn prefix", streamRecords(t, r, 0), ref[:wantPackets])
			r.Close()
		}
	}
}

// A clean cut just before the tail pointer loses only the tail: the scan
// recovers segments, footer and trailer summary.
func TestTruncationOfTailOnly(t *testing.T) {
	raw, frames, ref := corruptFixture(t)
	r, err := Open(writeTemp(t, raw[:len(raw)-tailLen]))
	if err == nil || !errors.Is(err, snapshot.ErrTorn) {
		t.Fatalf("tailless store: err = %v, want ErrTorn", err)
	}
	if r == nil {
		t.Fatal("tailless store: no reader")
	}
	defer r.Close()
	wantSegs, wantPackets := prefixPackets(frames, len(frames))
	if r.Segments() != wantSegs || r.Packets() != wantPackets {
		t.Fatalf("recovered %d segments / %d packets, want %d / %d", r.Segments(), r.Packets(), wantSegs, wantPackets)
	}
	if !r.HasFooter() {
		t.Fatal("footer lost though its frame is intact")
	}
	if r.Summary() == (trace.Summary{}) {
		t.Fatal("trailer summary lost though its frame is intact")
	}
	mustEqualRecords(t, "tailless stream", streamRecords(t, r, 0), ref)
}

// A bit flip inside a segment's column run is invisible to Open (segment
// CRCs validate lazily) but must surface as ErrCorrupt the moment the
// segment is read, on both the stream and window paths, leaving every
// earlier segment readable.
func TestColumnRunBitFlip(t *testing.T) {
	raw, frames, ref := corruptFixture(t)
	var segIdx []int
	for i, fr := range frames {
		if fr.typ == frameSegment {
			segIdx = append(segIdx, i)
		}
	}
	if len(segIdx) < 3 {
		t.Fatalf("fixture has %d segments, want >= 3", len(segIdx))
	}
	victim := segIdx[len(segIdx)/2]
	dmg := append([]byte(nil), raw...)
	// +40 bytes into the payload: past the 32-byte prefix and the <= 7 pad
	// bytes, i.e. inside the Times column.
	dmg[frames[victim].off+snapshot.FrameHeaderSize+40] ^= 0x10
	r, err := Open(writeTemp(t, dmg))
	if err != nil {
		t.Fatalf("Open: %v (segment CRCs are lazy; a column flip must not fail Open)", err)
	}
	defer r.Close()
	_, wantPackets := prefixPackets(frames, victim)
	var got []trace.Record
	serr := r.Stream(context.Background(), 0, func(blk *trace.Block) error {
		for i := 0; i < blk.Len(); i++ {
			got = append(got, blk.Record(i))
		}
		return nil
	})
	if serr == nil || !errors.Is(serr, snapshot.ErrCorrupt) {
		t.Fatalf("Stream over flipped column: err = %v, want ErrCorrupt", serr)
	}
	mustEqualRecords(t, "pre-flip prefix", got, ref[:wantPackets])

	w, err := r.Window(0, r.Meta().Duration)
	if err != nil {
		t.Fatal(err)
	}
	werr := w.Replay(func(trace.Record) error { return nil })
	if werr == nil || !errors.Is(werr, snapshot.ErrCorrupt) {
		t.Fatalf("Replay over flipped column: err = %v, want ErrCorrupt", werr)
	}
}

// A bit flip in the footer frame must not take the segments down: Open
// degrades to a footer-less reader with an ErrCorrupt-wrapping error.
func TestFooterBitFlip(t *testing.T) {
	raw, frames, ref := corruptFixture(t)
	var footer frameInfo
	for _, fr := range frames {
		if fr.typ == frameFooter {
			footer = fr
		}
	}
	if footer.end == 0 {
		t.Fatal("fixture has no footer frame")
	}
	dmg := append([]byte(nil), raw...)
	dmg[footer.off+snapshot.FrameHeaderSize+int64(footer.plen)/2] ^= 0x01
	r, err := Open(writeTemp(t, dmg))
	if err == nil || !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("flipped footer: err = %v, want ErrCorrupt", err)
	}
	if r == nil {
		t.Fatal("flipped footer: no reader")
	}
	defer r.Close()
	if r.HasFooter() {
		t.Fatal("reader kept a corrupt footer")
	}
	if _, perr := r.ProgramIndex(); !errors.Is(perr, ErrNoFooter) {
		t.Fatalf("ProgramIndex: %v, want ErrNoFooter", perr)
	}
	mustEqualRecords(t, "segments after footer flip", streamRecords(t, r, 0), ref)
}

// A bit flip in the trailer loses the stored summary but nothing else.
func TestTrailerBitFlip(t *testing.T) {
	raw, frames, ref := corruptFixture(t)
	var trailer frameInfo
	for _, fr := range frames {
		if fr.typ == frameTrailer {
			trailer = fr
		}
	}
	dmg := append([]byte(nil), raw...)
	dmg[trailer.off+snapshot.FrameHeaderSize+4] ^= 0x80
	r, err := Open(writeTemp(t, dmg))
	if err == nil || !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("flipped trailer: err = %v, want ErrCorrupt", err)
	}
	if r == nil {
		t.Fatal("flipped trailer: no reader")
	}
	defer r.Close()
	if r.Summary() != (trace.Summary{}) {
		t.Fatal("summary survived a corrupt trailer")
	}
	if !r.HasFooter() {
		t.Fatal("footer lost though its frame is intact")
	}
	mustEqualRecords(t, "segments after trailer flip", streamRecords(t, r, 0), ref)
}

// A flipped tail pointer sends Open through the forward scan, which
// recovers everything including the trailer summary.
func TestTailPointerBitFlip(t *testing.T) {
	raw, _, ref := corruptFixture(t)
	dmg := append([]byte(nil), raw...)
	dmg[len(dmg)-1] ^= 0xFF // tail magic
	r, err := Open(writeTemp(t, dmg))
	if err == nil {
		t.Fatal("flipped tail accepted silently")
	}
	if r == nil {
		t.Fatal("flipped tail: no reader")
	}
	defer r.Close()
	if r.Summary() == (trace.Summary{}) || !r.HasFooter() {
		t.Fatal("scan failed to recover trailer summary and footer")
	}
	mustEqualRecords(t, "after tail flip", streamRecords(t, r, 0), ref)
}
