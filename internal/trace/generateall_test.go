package trace

import "testing"

// Invalid configs must surface NewGenerator's validation error, not panic
// on a negative capacity estimate.
func TestGenerateAllInvalidConfigErrors(t *testing.T) {
	if _, _, err := GenerateAll(Config{Duration: -5, Lambda: 100}); err == nil {
		t.Fatal("invalid config should return an error")
	}
}
