package trace

import (
	"fmt"
	"io"
	"time"

	"repro/internal/netpkt"
	"repro/internal/pcap"
)

// traceEpoch anchors relative trace times when writing pcap files. The value
// itself is irrelevant to any statistic; it makes synthetic captures look
// like they were taken on the paper's collection date (Nov 8th, 2001).
var traceEpoch = time.Date(2001, 11, 8, 0, 0, 0, 0, time.UTC)

// WritePcap writes records as a nanosecond-resolution raw-IP pcap stream.
// Each record's 44-byte header is marshalled; OrigLen carries the true wire
// length, exactly like the paper's capture infrastructure.
func WritePcap(w io.Writer, recs []Record) error {
	pw, err := pcap.NewWriter(w, pcap.WriterOptions{
		SnapLen:    netpkt.HeaderLen,
		LinkType:   pcap.LinkTypeRaw,
		Nanosecond: true,
	})
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	buf := make([]byte, netpkt.HeaderLen)
	for i := range recs {
		r := &recs[i]
		if _, err := r.Hdr.Marshal(buf); err != nil {
			return fmt.Errorf("trace: marshalling record %d: %w", i, err)
		}
		ts := traceEpoch.Add(time.Duration(r.Time * float64(time.Second)))
		err := pw.WritePacket(pcap.Packet{
			Timestamp: ts,
			Data:      buf,
			OrigLen:   int(r.Hdr.TotalLen),
		})
		if err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return pw.Flush()
}

// ReadPcap reads a raw-IP pcap stream back into records. Times are relative
// to the first packet. Records that fail to decode as IPv4 are skipped and
// counted; a capture where everything fails yields an error.
func ReadPcap(r io.Reader) ([]Record, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var (
		recs    []Record
		skipped int
		origin  time.Time
		first   = true
	)
	for {
		p, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		var hdr netpkt.Header
		if err := hdr.Unmarshal(p.Data); err != nil {
			skipped++
			continue
		}
		if hdr.TotalLen == 0 && p.OrigLen > 0 && p.OrigLen <= 0xffff {
			// Some captures zero the total-length field after slicing;
			// fall back to the pcap original length.
			hdr.TotalLen = uint16(p.OrigLen)
		}
		if first {
			origin = p.Timestamp
			first = false
		}
		recs = append(recs, Record{
			Time: p.Timestamp.Sub(origin).Seconds(),
			Hdr:  hdr,
		})
	}
	if len(recs) == 0 && skipped > 0 {
		return nil, fmt.Errorf("trace: all %d records failed to decode", skipped)
	}
	return recs, nil
}
