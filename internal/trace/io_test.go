package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dist"
)

func TestPcapRoundTrip(t *testing.T) {
	recs, _, err := GenerateAll(smallConfig(20, dist.Constant{V: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 100 {
		t.Fatalf("trace too small for a meaningful test: %d records", len(recs))
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Hdr != recs[i].Hdr {
			t.Fatalf("record %d header mismatch:\n got %+v\nwant %+v", i, got[i].Hdr, recs[i].Hdr)
		}
		// Relative times: reader rebases on the first packet.
		wantT := recs[i].Time - recs[0].Time
		if math.Abs(got[i].Time-wantT) > 1e-6 {
			t.Fatalf("record %d time = %g, want %g", i, got[i].Time, wantT)
		}
	}
}

func TestReadPcapEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty trace, got %d records", len(got))
	}
}

func TestReadPcapGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap"))); err == nil {
		t.Fatal("garbage input should error")
	}
}
