package trace

import (
	"math"
	"testing"
)

func TestDefaultSuiteShape(t *testing.T) {
	specs, err := DefaultSuite(SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(TableI) {
		t.Fatalf("suite has %d traces, want %d", len(specs), len(TableI))
	}
	for i, s := range specs {
		// Utilisation fractions preserved: target/link == paperMbps/622.
		wantFrac := TableI[i].AvgMbps * 1e6 / PaperLinkBps
		gotFrac := s.TargetBps / 100e6
		if math.Abs(gotFrac-wantFrac) > 1e-9 {
			t.Fatalf("trace %d utilisation fraction %g, want %g", i, gotFrac, wantFrac)
		}
		if s.Intervals < 1 {
			t.Fatalf("trace %d has no intervals", i)
		}
		if s.Lambda <= 0 {
			t.Fatalf("trace %d lambda = %g", i, s.Lambda)
		}
		cfg := s.Config()
		if cfg.Duration != float64(s.Intervals)*s.IntervalSec {
			t.Fatalf("trace %d duration %g != intervals×interval %g",
				i, cfg.Duration, float64(s.Intervals)*s.IntervalSec)
		}
	}
	// Interval counts proportional to paper lengths: the 39.5 h trace has
	// the most, the 6 h trace the fewest.
	if specs[3].Intervals <= specs[2].Intervals {
		t.Fatalf("longest paper trace should have most intervals: %d vs %d",
			specs[3].Intervals, specs[2].Intervals)
	}
}

func TestDefaultSuiteMaxIntervals(t *testing.T) {
	specs, err := DefaultSuite(SuiteOptions{MaxIntervals: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if s.Intervals > 3 {
			t.Fatalf("trace %d has %d intervals, cap is 3", i, s.Intervals)
		}
	}
}

func TestSuiteTraceRealisesTargetRate(t *testing.T) {
	specs, err := DefaultSuite(SuiteOptions{
		LinkBps:          20e6, // small scale for test speed
		IntervalSec:      30,
		IntervalsPerHour: 0.2,
		MaxIntervals:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Check the busiest trace (index 2: 262 Mb/s on OC-12).
	s := specs[2]
	cfg := s.Config()
	cfg.Warmup = 60
	_, sum, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Horizon truncation biases slightly low; accept [0.75, 1.1]×target.
	ratio := sum.AvgRateBps / s.TargetBps
	if ratio < 0.75 || ratio > 1.1 {
		t.Fatalf("realised rate %g = %.2f× target %g", sum.AvgRateBps, ratio, s.TargetBps)
	}
}

func TestFlowSizeDistProducesMiceAndElephants(t *testing.T) {
	d, err := FlowSizeDist()
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Mean(); m < 1000 || m > 50000 {
		t.Fatalf("mean flow size %g bytes looks wrong", m)
	}
}
