package trace

import (
	"math"

	"repro/internal/dist"
	"repro/internal/dist/rng"
	"repro/internal/netpkt"
)

// This file is phase 1 of the two-phase generator: a cheap, serial, RNG-only
// pass over the session/arrival process that emits compact flow programs.
// All of the generator's randomness lives in the per-flow draws — packet
// emission inside a flow is fully deterministic given its program (the
// power-shot pacing x(t) = a·t^b fixes every packet time in closed form) —
// so everything downstream of this pass (the pull-based player, the sharded
// synthesiser, checkpointed window replay) is RNG-free and can be reordered,
// sharded or replayed freely without touching the random stream.
//
// Randomness comes from the rng core's splittable streams: the trace seed
// fans out into one stream for the session structure (arrivals, prefix
// choice, flow counts, gaps, protocol label) and one per flow-attribute
// sampler (size, rate, shot exponent). Per-flow attributes are drawn in
// blocks through the samplers' batched face, so the interface dispatch of a
// Config sampler field is paid once per attrBatch flows instead of once per
// flow — and because each sampler owns its stream, the block refills never
// perturb any other draw in the trace.

// FlowProgram is the complete deterministic description of one flow: the
// handful of per-flow draws phase 1 makes, from which every packet time and
// size follows in closed form. Times are on the generator clock (0 = start
// of warm-up; packets are emitted at clock minus Warmup).
type FlowProgram struct {
	// Index is the 1-based admission index of the flow (the generator's flow
	// id); it is the deterministic tie-breaker for packets of different
	// flows that land on exactly equal times.
	Index uint32
	// Start is the flow arrival time T on the generator clock.
	Start float64
	// Duration is the flow duration D in seconds.
	Duration float64
	// SizeB is the flow size S in bytes.
	SizeB int
	// InvBp1 is 1/(b+1) for the flow's shot exponent b.
	InvBp1 float64
	// PktBytes is the wire MTU the flow is chopped into.
	PktBytes int
	// Hdr is the constant per-flow header (TotalLen is set per packet).
	Hdr netpkt.Header
}

// End returns Start + Duration, an upper bound on the flow's packet times
// (the last packet begins strictly before it).
func (p *FlowProgram) End() float64 { return p.Start + p.Duration }

// NumPackets returns the number of packets the flow is chopped into.
func (p *FlowProgram) NumPackets() int {
	return (p.SizeB + p.PktBytes - 1) / p.PktBytes
}

// PacketSize returns the wire size in bytes of packet k (0-based): full MTU
// except for a final partial packet.
func (p *FlowProgram) PacketSize(k int) int {
	if remaining := p.SizeB - k*p.PktBytes; remaining < p.PktBytes {
		return remaining
	}
	return p.PktBytes
}

// powFrac computes frac^e for frac in [0, 1], e > 0, via the exp∘log
// identity — about twice as fast as math.Pow, whose generality (negative
// bases, integer exponents, ±Inf) the pacing never needs. Packet-time
// determinism requires one canonical expression shared by every path, not
// last-ulp agreement with Pow, and this is that expression.
func powFrac(frac, e float64) float64 {
	if frac == 0 {
		return 0
	}
	return math.Exp(e * math.Log(frac))
}

// offsetAt returns the emission offset (from the flow start) of the packet
// beginning at cumulative byte position sentB: the shot x(t) = a·t^b has
// transmitted fraction (t/D)^(b+1) of S by offset t, so byte position c is
// reached at t = D·(c/S)^(1/(b+1)). This is the one expression every
// synthesis path computes packet times with, so their float64 results are
// bit-identical by construction.
func (p *FlowProgram) offsetAt(sentB int) float64 {
	frac := float64(sentB) / float64(p.SizeB)
	return p.Duration * powFrac(frac, p.InvBp1)
}

// PacketTime returns the emission time of packet k (0-based) on the
// generator clock.
func (p *FlowProgram) PacketTime(k int) float64 {
	return p.Start + p.offsetAt(k*p.PktBytes)
}

// FirstPacketNotBefore returns the smallest packet index k with
// PacketTime(k) >= t (NumPackets when every packet precedes t). The power
// shot inverts in closed form, so the answer costs O(1): the inverse gives a
// candidate within a float rounding of the truth and the exact PacketTime
// comparison nudges it onto the boundary. This is what lets a timeline shard
// or a checkpointed window jump straight to its first packet instead of
// replaying the flow's prefix.
func (p *FlowProgram) FirstPacketNotBefore(t float64) int {
	n := p.NumPackets()
	if t <= p.Start {
		return 0
	}
	if t >= p.End() {
		return n
	}
	// Invert the pacing: offset >= t-Start ⇔ k·PktBytes/SizeB >= ((t-Start)/D)^(b+1).
	frac := powFrac((t-p.Start)/p.Duration, 1/p.InvBp1)
	k := int(frac * float64(p.SizeB) / float64(p.PktBytes))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	// The round trip through Pow can be off by an ulp either way; settle with
	// the authoritative forward formula.
	for k > 0 && p.PacketTime(k-1) >= t {
		k--
	}
	for k < n && p.PacketTime(k) < t {
		k++
	}
	return k
}

// maxSessionFlows caps the geometric draw of flows per session. The cap is
// astronomically beyond any realistic draw (mean 8 reaches it with
// probability (7/8)^65536), so it only matters as a guard against a
// pathological FlowsPerSession sending the inverse transform off to
// infinity.
const maxSessionFlows = 1 << 16

// geometric draws a geometric count with the given mean (support 1, 2, ...,
// capped at maxSessionFlows) by inverting the CDF: one uniform draw instead
// of a mean-long Bernoulli walk.
func geometric(mean float64, r *rng.Rand) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	// N = 1 + ⌊ln(1-U)/ln(1-p)⌋ is Geometric(p) on {1, 2, ...}.
	ratio := math.Log1p(-r.Float64()) / math.Log1p(-p)
	if ratio >= maxSessionFlows-1 || math.IsNaN(ratio) {
		return maxSessionFlows
	}
	return 1 + int(ratio)
}

// dstPorts is the destination-port mix flows cycle through. A package-level
// array keeps newProgram from allocating the slice literal once per flow.
var dstPorts = [...]uint16{80, 443, 25, 53, 8080}

// Stream ids of the splittable rng fan-out. The session-structure stream
// drives everything whose draw count shapes the arrival process; each
// attribute sampler gets a private stream so its block refills are invisible
// to the others.
const (
	streamSession = iota
	streamSize
	streamRate
	streamShot
)

// attrBatch is how many per-flow attribute draws one block refill makes.
// Big enough that the sampler interface dispatch amortises to noise per
// flow, small enough that a tiny trace's wasted tail draws cost microseconds.
const attrBatch = 256

// attrBuf feeds one flow attribute from block refills of its own stream.
type attrBuf struct {
	s   dist.Sampler
	rng *rng.Rand
	pos int
	buf [attrBatch]float64
}

func (b *attrBuf) init(s dist.Sampler, seed int64, stream uint64) {
	b.s = s
	b.rng = rng.NewStream(seed, stream)
	b.pos = attrBatch // empty: first next() refills
}

func (b *attrBuf) next() float64 {
	if b.pos == attrBatch {
		dist.SampleN(b.s, b.buf[:], b.rng)
		b.pos = 0
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// programSource is the phase-1 state: the session arrival process plus the
// per-flow draws, consumed strictly in admission order. The serial
// generator, the sharded synthesiser and the checkpoint index all sit on
// top of it, so their random streams are identical by construction.
type programSource struct {
	cfg      Config // defaulted
	rng      *rng.Rand
	arrivals *dist.PoissonProcess
	size     attrBuf
	rate     attrBuf
	shot     attrBuf
	nextArr  float64
	flowID   uint32
	flows    int64 // flows starting inside the measured window
	onePkt   int64 // ... of which single-packet (discarded by the pipeline)
}

// newProgramSource builds the phase-1 pass over an already-defaulted config.
func newProgramSource(c Config) (*programSource, error) {
	r := rng.NewStream(c.Seed, streamSession)
	// Sessions arrive at Lambda/FlowsPerSession so the expected flow
	// arrival rate stays Lambda.
	arr, err := dist.NewPoissonProcess(c.Lambda/c.FlowsPerSession, r)
	if err != nil {
		return nil, err
	}
	s := &programSource{cfg: c, rng: r, arrivals: arr}
	s.size.init(c.SizeBytes, c.Seed, streamSize)
	s.rate.init(c.RateBps, c.Seed, streamRate)
	s.shot.init(c.ShotB, c.Seed, streamShot)
	s.nextArr = s.arrivals.Next()
	return s, nil
}

// peekArrival returns the next session's arrival time without consuming it.
func (s *programSource) peekArrival() float64 { return s.nextArr }

// newProgram draws a fresh flow to the given destination prefix, starting at
// time t, and accounts it in the phase-1 summary counters.
func (s *programSource) newProgram(t float64, prefix uint32) FlowProgram {
	c := &s.cfg
	sizeB := int(math.Ceil(s.size.next()))
	if sizeB < 40 {
		sizeB = 40
	}
	rate := s.rate.next()
	d := float64(sizeB) * 8 / rate
	if d < c.MinDuration {
		d = c.MinDuration
	}
	b := s.shot.next()
	if b < 0 {
		b = 0
	}
	s.flowID++
	id := s.flowID
	proto := netpkt.ProtoTCP
	if s.rng.Float64() < c.UDPFraction {
		proto = netpkt.ProtoUDP
	}
	// Destination: 172.16.0.0/12-style space carved into /24s; host byte
	// from the flow id so flows to the same prefix still differ. The host
	// byte is parenthesised: `|` and `+` share precedence in Go, so without
	// it the +1 would bind to the whole word (id%253+1 stays in [1, 253], so
	// the addition can never carry into the prefix bits).
	dst := netpkt.AddrFromUint32(0xAC10_0000 | prefix<<8 | (id%253 + 1))
	// Source: 10.0.0.0/8 space from the flow id.
	src := netpkt.AddrFromUint32(0x0A00_0000 | (id*2654435761)>>8)
	hdr := netpkt.Header{
		SrcIP:    src,
		DstIP:    dst,
		Protocol: proto,
		SrcPort:  uint16(1024 + id%60000),
		DstPort:  dstPorts[id%uint32(len(dstPorts))],
		TTL:      64,
	}
	p := FlowProgram{
		Index:    id,
		Start:    t,
		Duration: d,
		SizeB:    sizeB,
		InvBp1:   1 / (b + 1),
		PktBytes: c.PktBytes,
		Hdr:      hdr,
	}
	if t >= c.Warmup {
		s.flows++
		if p.SizeB <= p.PktBytes {
			s.onePkt++
		}
	}
	return p
}

// nextSession admits the next session, invoking emit once per member flow
// program in draw order (member flows starting at or past the horizon are
// cut, exactly like the capture stopping). It returns false — consuming no
// draws — once the arrival process has passed the horizon.
func (s *programSource) nextSession(horizon float64, emit func(FlowProgram)) bool {
	if s.nextArr >= horizon {
		return false
	}
	t := s.nextArr
	c := &s.cfg
	var prefix uint32
	if s.rng.Float64() < c.PopularFraction {
		prefix = uint32(s.rng.Intn(c.PopularPrefixes))
	} else {
		prefix = uint32(c.PopularPrefixes + s.rng.Intn(c.Prefixes-c.PopularPrefixes))
	}
	n := geometric(c.FlowsPerSession, s.rng)
	start := t
	for i := 0; i < n; i++ {
		if i > 0 && c.SessionFlowGapSec > 0 {
			start += s.rng.Exp() * c.SessionFlowGapSec
		}
		if start >= horizon {
			break
		}
		emit(s.newProgram(start, prefix))
	}
	s.nextArr = s.arrivals.Next()
	return true
}

// run drains the arrival process to the horizon, emitting every flow program
// in admission order — the whole phase-1 pass in one call.
func (s *programSource) run(horizon float64, emit func(FlowProgram)) {
	for s.nextSession(horizon, emit) {
	}
}

// collectPrograms runs the whole phase-1 pass over an already-defaulted
// config, returning every flow program in admission order plus the consumed
// source (for its summary counters).
func collectPrograms(c Config) ([]FlowProgram, *programSource, error) {
	src, err := newProgramSource(c)
	if err != nil {
		return nil, nil, err
	}
	progs := make([]FlowProgram, 0, capacityEstimate(c.Duration*c.Lambda))
	src.run(c.Warmup+c.Duration, func(p FlowProgram) {
		progs = append(progs, p)
	})
	return progs, src, nil
}

// Programs runs the phase-1 pass over cfg's full horizon and returns every
// flow program in admission order, plus a summary whose flow-level fields
// (Flows, OnePktFlows, FlowRate, Duration) are final. Packet-level fields
// are zero: packets exist only once a synthesis phase runs the programs.
func Programs(cfg Config) ([]FlowProgram, Summary, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, Summary{}, err
	}
	progs, src, err := collectPrograms(c)
	if err != nil {
		return nil, Summary{}, err
	}
	sum := Summary{Flows: src.flows, OnePktFlows: src.onePkt, Duration: c.Duration}
	if c.Duration > 0 {
		sum.FlowRate = float64(sum.Flows) / c.Duration
	}
	return progs, sum, nil
}

// maxCapacityEstimate bounds how much any pre-sizing heuristic is allowed to
// reserve up front (~4M entries); beyond it, append's amortised growth is
// cheaper than the risk of a huge or overflowed allocation.
const maxCapacityEstimate = 1 << 22

// capacityEstimate clamps a float element-count estimate into [0,
// maxCapacityEstimate], guarding the int conversion against overflow on
// huge Duration·Lambda products (and against NaN, which fails every
// comparison and falls through to 0).
func capacityEstimate(est float64) int {
	if est > maxCapacityEstimate {
		return maxCapacityEstimate
	}
	if est > 0 {
		return int(est)
	}
	return 0
}
