package trace

import (
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/netpkt"
)

// This file is phase 1 of the two-phase generator: a cheap, serial, RNG-only
// pass over the session/arrival process that emits compact flow programs.
// All of the generator's randomness lives in the per-flow draws — packet
// emission inside a flow is fully deterministic given its program (the
// power-shot pacing x(t) = a·t^b fixes every packet time in closed form) —
// so everything downstream of this pass (the serial event-heap generator,
// the sharded synthesiser, checkpointed window replay) is RNG-free and can
// be reordered, sharded or replayed freely without touching the random
// stream.

// FlowProgram is the complete deterministic description of one flow: the
// handful of per-flow draws phase 1 makes, from which every packet time and
// size follows in closed form. Times are on the generator clock (0 = start
// of warm-up; packets are emitted at clock minus Warmup).
type FlowProgram struct {
	// Index is the 1-based admission index of the flow (the generator's flow
	// id); it is the deterministic tie-breaker for packets of different
	// flows that land on exactly equal times.
	Index uint32
	// Start is the flow arrival time T on the generator clock.
	Start float64
	// Duration is the flow duration D in seconds.
	Duration float64
	// SizeB is the flow size S in bytes.
	SizeB int
	// InvBp1 is 1/(b+1) for the flow's shot exponent b.
	InvBp1 float64
	// PktBytes is the wire MTU the flow is chopped into.
	PktBytes int
	// Hdr is the constant per-flow header (TotalLen is set per packet).
	Hdr netpkt.Header
}

// End returns Start + Duration, an upper bound on the flow's packet times
// (the last packet begins strictly before it).
func (p FlowProgram) End() float64 { return p.Start + p.Duration }

// NumPackets returns the number of packets the flow is chopped into.
func (p FlowProgram) NumPackets() int {
	return (p.SizeB + p.PktBytes - 1) / p.PktBytes
}

// PacketSize returns the wire size in bytes of packet k (0-based): full MTU
// except for a final partial packet.
func (p FlowProgram) PacketSize(k int) int {
	if remaining := p.SizeB - k*p.PktBytes; remaining < p.PktBytes {
		return remaining
	}
	return p.PktBytes
}

// PacketTime returns the emission time of packet k (0-based) on the
// generator clock: the shot has transmitted fraction (t/D)^(b+1) of S by
// offset t, so the byte position k·PktBytes is reached at
// D·(c/S)^(1/(b+1)). The arithmetic matches the event-heap generator
// operation for operation, so both produce bit-identical float64 times.
func (p FlowProgram) PacketTime(k int) float64 {
	frac := float64(k*p.PktBytes) / float64(p.SizeB)
	return p.Start + p.Duration*math.Pow(frac, p.InvBp1)
}

// FirstPacketNotBefore returns the smallest packet index k with
// PacketTime(k) >= t (NumPackets when every packet precedes t). The power
// shot inverts in closed form, so the answer costs O(1): the inverse gives a
// candidate within a float rounding of the truth and the exact PacketTime
// comparison nudges it onto the boundary. This is what lets a timeline shard
// or a checkpointed window jump straight to its first packet instead of
// replaying the flow's prefix.
func (p FlowProgram) FirstPacketNotBefore(t float64) int {
	n := p.NumPackets()
	if t <= p.Start {
		return 0
	}
	if t >= p.End() {
		return n
	}
	// Invert the pacing: offset >= t-Start ⇔ k·PktBytes/SizeB >= ((t-Start)/D)^(b+1).
	frac := math.Pow((t-p.Start)/p.Duration, 1/p.InvBp1)
	k := int(frac * float64(p.SizeB) / float64(p.PktBytes))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	// The round trip through Pow can be off by an ulp either way; settle with
	// the authoritative forward formula.
	for k > 0 && p.PacketTime(k-1) >= t {
		k--
	}
	for k < n && p.PacketTime(k) < t {
		k++
	}
	return k
}

// maxSessionFlows caps the geometric draw of flows per session. The cap is
// astronomically beyond any realistic draw (mean 8 reaches it with
// probability (7/8)^65536), so it only matters as a guard against a
// pathological FlowsPerSession sending the draw loop spinning.
const maxSessionFlows = 1 << 16

// geometric draws a geometric count with the given mean (support 1, 2, ...,
// capped at maxSessionFlows).
func geometric(mean float64, rng *rand.Rand) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for n < maxSessionFlows && rng.Float64() > p {
		n++
	}
	return n
}

// dstPorts is the destination-port mix flows cycle through. A package-level
// array keeps newProgram from allocating the slice literal once per flow.
var dstPorts = [...]uint16{80, 443, 25, 53, 8080}

// programSource is the phase-1 state: the session arrival process plus the
// per-flow draws, consumed strictly in admission order. Both the serial
// generator and the sharded synthesiser sit on top of it, so their random
// streams are identical by construction.
type programSource struct {
	cfg      Config // defaulted
	rng      *rand.Rand
	arrivals *dist.PoissonProcess
	nextArr  float64
	flowID   uint32
	flows    int64 // flows starting inside the measured window
	onePkt   int64 // ... of which single-packet (discarded by the pipeline)
}

// newProgramSource builds the phase-1 pass over an already-defaulted config.
func newProgramSource(c Config) (*programSource, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	// Sessions arrive at Lambda/FlowsPerSession so the expected flow
	// arrival rate stays Lambda.
	arr, err := dist.NewPoissonProcess(c.Lambda/c.FlowsPerSession, rng)
	if err != nil {
		return nil, err
	}
	s := &programSource{cfg: c, rng: rng, arrivals: arr}
	s.nextArr = s.arrivals.Next()
	return s, nil
}

// peekArrival returns the next session's arrival time without consuming it.
func (s *programSource) peekArrival() float64 { return s.nextArr }

// newProgram draws a fresh flow to the given destination prefix, starting at
// time t, and accounts it in the phase-1 summary counters.
func (s *programSource) newProgram(t float64, prefix uint32) FlowProgram {
	c := &s.cfg
	sizeB := int(math.Ceil(c.SizeBytes.Sample(s.rng)))
	if sizeB < 40 {
		sizeB = 40
	}
	rate := c.RateBps.Sample(s.rng)
	d := float64(sizeB) * 8 / rate
	if d < c.MinDuration {
		d = c.MinDuration
	}
	b := c.ShotB.Sample(s.rng)
	if b < 0 {
		b = 0
	}
	s.flowID++
	id := s.flowID
	proto := netpkt.ProtoTCP
	if s.rng.Float64() < c.UDPFraction {
		proto = netpkt.ProtoUDP
	}
	// Destination: 172.16.0.0/12-style space carved into /24s; host byte
	// from the flow id so flows to the same prefix still differ. The host
	// byte is parenthesised: `|` and `+` share precedence in Go, so without
	// it the +1 would bind to the whole word (id%253+1 stays in [1, 253], so
	// the addition can never carry into the prefix bits).
	dst := netpkt.AddrFromUint32(0xAC10_0000 | prefix<<8 | (id%253 + 1))
	// Source: 10.0.0.0/8 space from the flow id.
	src := netpkt.AddrFromUint32(0x0A00_0000 | (id*2654435761)>>8)
	hdr := netpkt.Header{
		SrcIP:    src,
		DstIP:    dst,
		Protocol: proto,
		SrcPort:  uint16(1024 + id%60000),
		DstPort:  dstPorts[id%uint32(len(dstPorts))],
		TTL:      64,
	}
	p := FlowProgram{
		Index:    id,
		Start:    t,
		Duration: d,
		SizeB:    sizeB,
		InvBp1:   1 / (b + 1),
		PktBytes: c.PktBytes,
		Hdr:      hdr,
	}
	if t >= c.Warmup {
		s.flows++
		if p.SizeB <= p.PktBytes {
			s.onePkt++
		}
	}
	return p
}

// nextSession admits the next session, invoking emit once per member flow
// program in draw order (member flows starting at or past the horizon are
// cut, exactly like the capture stopping). It returns false — consuming no
// draws — once the arrival process has passed the horizon.
func (s *programSource) nextSession(horizon float64, emit func(FlowProgram)) bool {
	if s.nextArr >= horizon {
		return false
	}
	t := s.nextArr
	c := &s.cfg
	var prefix uint32
	if s.rng.Float64() < c.PopularFraction {
		prefix = uint32(s.rng.Intn(c.PopularPrefixes))
	} else {
		prefix = uint32(c.PopularPrefixes + s.rng.Intn(c.Prefixes-c.PopularPrefixes))
	}
	n := geometric(c.FlowsPerSession, s.rng)
	start := t
	for i := 0; i < n; i++ {
		if i > 0 && c.SessionFlowGapSec > 0 {
			start += s.rng.ExpFloat64() * c.SessionFlowGapSec
		}
		if start >= horizon {
			break
		}
		emit(s.newProgram(start, prefix))
	}
	s.nextArr = s.arrivals.Next()
	return true
}

// run drains the arrival process to the horizon, emitting every flow program
// in admission order — the whole phase-1 pass in one call.
func (s *programSource) run(horizon float64, emit func(FlowProgram)) {
	for s.nextSession(horizon, emit) {
	}
}

// collectPrograms runs the whole phase-1 pass over an already-defaulted
// config, returning every flow program in admission order plus the consumed
// source (for its summary counters).
func collectPrograms(c Config) ([]FlowProgram, *programSource, error) {
	src, err := newProgramSource(c)
	if err != nil {
		return nil, nil, err
	}
	progs := make([]FlowProgram, 0, capacityEstimate(c.Duration*c.Lambda))
	src.run(c.Warmup+c.Duration, func(p FlowProgram) {
		progs = append(progs, p)
	})
	return progs, src, nil
}

// Programs runs the phase-1 pass over cfg's full horizon and returns every
// flow program in admission order, plus a summary whose flow-level fields
// (Flows, OnePktFlows, FlowRate, Duration) are final. Packet-level fields
// are zero: packets exist only once a synthesis phase runs the programs.
func Programs(cfg Config) ([]FlowProgram, Summary, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, Summary{}, err
	}
	progs, src, err := collectPrograms(c)
	if err != nil {
		return nil, Summary{}, err
	}
	sum := Summary{Flows: src.flows, OnePktFlows: src.onePkt, Duration: c.Duration}
	if c.Duration > 0 {
		sum.FlowRate = float64(sum.Flows) / c.Duration
	}
	return progs, sum, nil
}

// maxCapacityEstimate bounds how much any pre-sizing heuristic is allowed to
// reserve up front (~4M entries); beyond it, append's amortised growth is
// cheaper than the risk of a huge or overflowed allocation.
const maxCapacityEstimate = 1 << 22

// capacityEstimate clamps a float element-count estimate into [0,
// maxCapacityEstimate], guarding the int conversion against overflow on
// huge Duration·Lambda products (and against NaN, which fails every
// comparison and falls through to 0).
func capacityEstimate(est float64) int {
	if est > maxCapacityEstimate {
		return maxCapacityEstimate
	}
	if est > 0 {
		return int(est)
	}
	return 0
}
