package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/netpkt"
)

// This file is the sharded phase 2: RNG-free packet synthesis from flow
// programs. The trace timeline is cut into segments; a serial dispatcher
// runs the phase-1 program pass, routing each program to every segment its
// flow overlaps, and seals a segment — handing it to a worker pool — once
// the arrival clock proves no later program can reach it. Workers replay a
// per-segment player (jumping each flow straight to its first in-segment
// packet in O(1) via the shot inverse), and a merger forwards the segments'
// bounded block streams in timeline order. Packets of different flows are
// ordered by (time, flow admission index), which matches the serial
// generator's emission order, so the merged stream is bit-identical to
// Stream's at any worker count.
//
// Packets leave synthesis packed into struct-of-arrays Blocks (times, wire
// lengths, packed header words in parallel columns): the measurement
// pipeline consumes the columns directly, and the record-at-a-time faces
// reconstruct Records losslessly from them.

// synthSegmentBlocks bounds each in-flight segment's buffered blocks, so a
// fast worker back-pressures on the merger instead of materialising its
// segment.
const synthSegmentBlocks = 8

// minSegmentSec keeps segments from becoming so short that per-segment
// setup (program routing, queue rebuild) dominates the packet work.
const minSegmentSec = 1.0

// progSlicePool recycles the per-segment program lists between segments (a
// long trace runs thousands of segments; their routing lists would
// otherwise be the dominant allocation of a sharded generation pass).
var progSlicePool = sync.Pool{}

func getProgSlice() []FlowProgram {
	if p, _ := progSlicePool.Get().(*[]FlowProgram); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putProgSlice(s []FlowProgram) {
	if cap(s) == 0 {
		return
	}
	progSlicePool.Put(&s)
}

// segment is one timeline shard of a synthesis pass. Bounds are on the
// generator clock and cover [loAbs, hiAbs) of emitted time.
type segment struct {
	loAbs, hiAbs float64
	progs        []FlowProgram
	blocks       chan *Block
	dispatched   bool // sent to the worker pool (vs closed unsynthesised on abort)
}

// synthesize replays the segment's overlapping flow programs through the
// program player and sends the packets with emission time in [loAbs, hiAbs)
// to the segment's block channel, which it closes when done. pl is the
// calling worker's reusable player (queue and arena storage persist across
// the segments a worker runs). The skip flag short-circuits the work (the
// channel is still closed) once an abort means nobody will read the
// packets. The segment's program list returns to the shared pool either
// way. A panic anywhere in the replay is converted to an error through
// onPanic (never propagated past the worker boundary): the in-hand block
// returns to the pool, the channel still closes, and the merger reports the
// wrapped error instead of the process dying mid-pipeline.
func (sg *segment) synthesize(pl *player, warmup float64, skip *atomic.Bool, onPanic func(any)) {
	// blk is the block under construction, shared with the deferred recovery
	// below so the in-hand block returns to the pool no matter where inside
	// pl.play a panic unwound from.
	var blk *Block
	defer close(sg.blocks)
	defer func() {
		putProgSlice(sg.progs)
		sg.progs = nil
	}()
	defer func() {
		if r := recover(); r != nil {
			PutBlock(blk)
			skip.Store(true)
			onPanic(r)
		}
	}()
	if skip.Load() {
		return
	}
	// Eager admission: the queue's (time, index) ordering does not depend
	// on admission order, and the events it holds are of the same order as
	// the segment's program list itself.
	pl.initPlayer(sg.loAbs, sg.hiAbs, len(sg.progs)*8, nil)
	for i := range sg.progs {
		pl.admit(&sg.progs[i])
	}
	blk = GetBlock()
	pl.play(func(t float64, pkt int, hdr netpkt.Header) bool {
		src, dst := hdr.Packed()
		blk.Append(t-warmup, uint16(pkt), src, dst)
		if blk.Len() == BlockSize {
			sg.blocks <- blk
			blk = GetBlock()
			return !skip.Load()
		}
		return true
	})
	if blk.Len() > 0 {
		sg.blocks <- blk
	} else {
		PutBlock(blk)
	}
	blk = nil
}

// StreamBlocks generates cfg's trace with the serial generator, handing the
// packets to fn in time order packed into blocks of up to BlockSize records
// — the batch-columnar face of Stream. The block passed to fn is reused
// after fn returns, so fn must copy out anything it keeps. On fn error the
// stream aborts like Stream's.
func StreamBlocks(cfg Config, fn func(*Block) error) (Summary, error) {
	return StreamBlocksCtx(context.Background(), cfg, fn)
}

// StreamBlocksCtx is StreamBlocks under a cancellation context: the stream
// aborts between blocks when ctx is cancelled, returning the wrapped
// context error with a running summary snapshot, exactly as an fn error
// would. A nil-cancel context behaves like StreamBlocks.
func StreamBlocksCtx(ctx context.Context, cfg Config, fn func(*Block) error) (Summary, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return Summary{}, err
	}
	blk := GetBlock()
	defer PutBlock(blk)
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		blk.AppendRecord(r)
		if blk.Len() == BlockSize {
			if err := ctx.Err(); err != nil {
				return g.Stats(), fmt.Errorf("trace: generation cancelled: %w", err)
			}
			if err := fn(blk); err != nil {
				return g.Stats(), err
			}
			blk.Reset()
		}
	}
	if blk.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return g.Stats(), fmt.Errorf("trace: generation cancelled: %w", err)
		}
		if err := fn(blk); err != nil {
			return g.Stats(), err
		}
	}
	return g.Stats(), nil
}

// StreamParallelBlocks generates cfg's trace like StreamBlocks — fn sees
// every packet in time order, from one goroutine, in SoA blocks that are
// recycled after fn returns, and the packet stream is bit-identical to
// Stream's — but synthesises the packets with a pool of workers over
// timeline shards. Phase 1 (the serial RNG pass over the arrival process)
// runs concurrently with synthesis and costs a few draws per flow, so the
// speedup approaches the worker count on generation-bound traces. workers
// <= 1 falls back to the serial generator. Memory stays bounded: segments
// hand off through an in-flight cap and per-segment bounded buffers, so a
// slow fn back-pressures generation just like the serial path.
//
// On fn error the stream aborts and returns the error with a running summary
// snapshot, like Stream; generation already in flight is drained, not
// delivered.
func StreamParallelBlocks(cfg Config, workers int, fn func(*Block) error) (Summary, error) {
	return StreamParallelBlocksCtx(context.Background(), cfg, workers, fn)
}

// StreamParallelBlocksCtx is StreamParallelBlocks under a cancellation
// context: when ctx is cancelled the dispatcher stops sealing segments,
// workers short-circuit their replay at the next block boundary, every
// in-flight block drains back to the pool, and the call returns the wrapped
// context error with a summary of the packets delivered before the cut.
// Worker and dispatcher panics are recovered at the goroutine boundary and
// surface the same way, as wrapped errors — the pipeline never dies mid-run
// and never leaks a pooled block or a goroutine on any unwind path.
func StreamParallelBlocksCtx(ctx context.Context, cfg Config, workers int, fn func(*Block) error) (Summary, error) {
	if workers <= 1 {
		return StreamBlocksCtx(ctx, cfg, fn)
	}
	return streamParallelCore(ctx, cfg, workers, func(blk *Block) (int, error) {
		// The whole block was delivered to fn even when fn errors, so it
		// counts — matching the serial StreamBlocks fallback, whose
		// generator stats include every packet of the failing block.
		return blk.Len(), fn(blk)
	})
}

// streamParallelCore is the sharded synthesis engine. fn reports how many
// of the block's packets it consumed before failing (all of them on
// success), so the summary snapshot returned with an error counts exactly
// the packets delivered.
func streamParallelCore(ctx context.Context, cfg Config, workers int, fn func(*Block) (int, error)) (Summary, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Summary{}, err
	}
	src, err := newProgramSource(c)
	if err != nil {
		return Summary{}, err
	}

	// Shard the emitted timeline [Warmup, Warmup+Duration). A handful of
	// segments per worker keeps the pool balanced without shrinking segments
	// into per-segment overhead; the segmentation never changes the output,
	// only the schedule.
	segSec := c.Duration / float64(workers*4)
	if segSec < minSegmentSec {
		segSec = minSegmentSec
	}
	nSegs := int(c.Duration / segSec)
	if nSegs < 1 {
		nSegs = 1
	}
	horizon := c.Warmup + c.Duration
	segs := make([]segment, nSegs)
	for j := range segs {
		lo := c.Warmup + float64(j)*segSec
		hi := c.Warmup + float64(j+1)*segSec
		if j == nSegs-1 {
			hi = horizon
		}
		segs[j] = segment{loAbs: lo, hiAbs: hi, blocks: make(chan *Block, synthSegmentBlocks)}
	}
	// segIndex places a generator-clock time on the shard grid (clamped:
	// warm-up flows land in segment 0, which starts synthesis at Warmup).
	// The division is within an ulp of the truth; callers that care about
	// exact boundary landings settle them against the segments' own bounds.
	segIndex := func(t float64) int {
		j := int((t - c.Warmup) / segSec)
		if j < 0 {
			return 0
		}
		if j >= nSegs {
			return nSegs - 1
		}
		return j
	}

	var aborted atomic.Bool
	// Panic recovery at the goroutine boundaries: the first recovered panic
	// becomes the run's error (workers and the dispatcher keep unwinding
	// cleanly — channels close, blocks drain — so the merger can report it).
	var panicMu sync.Mutex
	var panicErr error
	recordPanic := func(r any) {
		panicMu.Lock()
		if panicErr == nil {
			panicErr = fmt.Errorf("trace: synthesis panicked: %v", r)
		}
		panicMu.Unlock()
		aborted.Store(true)
	}
	// Cancellation folds into the existing abort machinery: workers
	// short-circuit at their next block boundary, the dispatcher stops
	// sealing, and the merger stops delivering.
	stopWatch := context.AfterFunc(ctx, func() { aborted.Store(true) })
	defer stopWatch()
	// Sized to hold every segment so worker handoff never blocks on the
	// queue itself — ordering and back-pressure come from inflight and the
	// per-segment buffers (the PR-2 discipline).
	tasks := make(chan *segment, nSegs)
	// inflight caps sealed-but-unmerged segments: the dispatcher acquires
	// before sealing, the merger releases after draining, so the program
	// lists and buffers of at most workers+2 segments (plus the tails of
	// flows spanning ahead) are resident at once.
	inflight := make(chan struct{}, workers+2)

	go func() { // dispatcher: phase 1 + routing + sealing
		next := 0 // next segment to seal
		// The dispatcher runs phase-1 program code; a panic there must still
		// close the undispatched segment channels (or the merger's drain
		// loop would hang) and the task queue (or the workers would leak).
		defer func() {
			if r := recover(); r != nil {
				recordPanic(r)
			}
			for ; next < nSegs; next++ {
				if !segs[next].dispatched {
					close(segs[next].blocks)
				}
			}
			close(tasks)
		}()
		seal := func(limit int) bool {
			for next < limit {
				if aborted.Load() {
					return false
				}
				sg := &segs[next]
				sg.dispatched = true
				inflight <- struct{}{}
				tasks <- sg
				next++
			}
			return true
		}
		route := func(p FlowProgram) {
			// A segment can hold packets of p iff loAbs < End and
			// hiAbs > Start (packet times lie in [Start, End)); the exact
			// bound comparisons correct the grid division's rounding.
			jF := segIndex(p.Start)
			for jF > 0 && segs[jF].loAbs > p.Start {
				jF--
			}
			for jF < nSegs-1 && segs[jF].hiAbs <= p.Start {
				jF++
			}
			jL := segIndex(p.End())
			for jL < nSegs-1 && segs[jL+1].loAbs < p.End() {
				jL++
			}
			for j := jF; j <= jL; j++ {
				if j >= next { // sealed segments are already complete
					if segs[j].progs == nil {
						segs[j].progs = getProgSlice()
					}
					segs[j].progs = append(segs[j].progs, p)
				}
			}
		}
		for src.peekArrival() < horizon {
			// Every flow of a future session starts at or after the
			// arrival clock, so segments ending at or before it are
			// complete and can ship. The exact hiAbs comparison keeps a
			// rounding overshoot of the grid division from sealing a
			// segment a flow of this very session could still reach.
			limit := segIndex(src.peekArrival())
			for limit > 0 && segs[limit-1].hiAbs > src.peekArrival() {
				limit--
			}
			if !seal(limit) {
				break
			}
			src.nextSession(horizon, route)
		}
		seal(nSegs)
		// The deferred cleanup closes what was never dispatched (abort) and
		// the task queue.
	}()

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			var pl player // reused across this worker's segments
			for sg := range tasks {
				sg.synthesize(&pl, c.Warmup, &aborted, recordPanic)
			}
		}()
	}

	// Merge: forward each segment's blocks in timeline order. Every
	// channel is drained even after an error or cancellation so no worker
	// stays blocked and every block returns to the pool.
	var sum Summary
	var firstErr error
	for j := range segs {
		sg := &segs[j]
		for blk := range sg.blocks {
			if firstErr == nil {
				if err := ctx.Err(); err != nil {
					firstErr = fmt.Errorf("trace: generation cancelled: %w", err)
					aborted.Store(true)
				}
			}
			if firstErr == nil {
				n, err := fn(blk)
				sum.Packets += int64(n)
				for _, s := range blk.Sizes[:n] {
					sum.Bytes += int64(s)
				}
				if err != nil {
					firstErr = err
					aborted.Store(true)
				}
			}
			PutBlock(blk)
		}
		if sg.dispatched {
			<-inflight
		}
	}
	workerWG.Wait()

	sum.Flows = src.flows
	sum.OnePktFlows = src.onePkt
	if firstErr == nil {
		// A recovered worker/dispatcher panic is only authoritative once
		// every goroutine has unwound (workerWG above); fn never saw the
		// aborted tail, so the summary snapshot is still exact.
		panicMu.Lock()
		firstErr = panicErr
		panicMu.Unlock()
	}
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = fmt.Errorf("trace: generation cancelled: %w", err)
		}
	}
	if firstErr != nil {
		return sum, firstErr
	}
	sum.Duration = c.Duration
	if c.Duration > 0 {
		sum.AvgRateBps = float64(sum.Bytes) * 8 / c.Duration
		sum.FlowRate = float64(sum.Flows) / c.Duration
	}
	return sum, nil
}

// StreamParallel is the record-at-a-time face of the sharded synthesis: fn
// sees every packet in time order as a Record reconstructed from the block
// columns, bit-identical to Stream's at any worker count. On fn error the
// summary snapshot counts the records delivered up to and including the
// failing one, like Stream's.
func StreamParallel(cfg Config, workers int, fn func(Record) error) (Summary, error) {
	if workers <= 1 {
		return Stream(cfg, fn)
	}
	return streamParallelCore(context.Background(), cfg, workers, func(blk *Block) (int, error) {
		for i := 0; i < blk.Len(); i++ {
			if err := fn(blk.Record(i)); err != nil {
				return i + 1, err
			}
		}
		return blk.Len(), nil
	})
}
