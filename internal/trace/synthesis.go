package trace

import (
	"sync"
	"sync/atomic"

	"repro/internal/netpkt"
)

// This file is the sharded phase 2: RNG-free packet synthesis from flow
// programs. The trace timeline is cut into segments; a serial dispatcher
// runs the phase-1 program pass, routing each program to every segment its
// flow overlaps, and seals a segment — handing it to a worker pool — once
// the arrival clock proves no later program can reach it. Workers replay a
// per-segment player (jumping each flow straight to its first in-segment
// packet in O(1) via the shot inverse), and a merger forwards the segments'
// bounded batch streams in timeline order. Packets of different flows are
// ordered by (time, flow admission index), which matches the serial
// generator's emission order, so the merged stream is bit-identical to
// Stream's at any worker count.

// RecordBatchSize is how many records travel per channel operation between
// pipeline stages (segment workers to the merger here; the measurement
// partitioner to interval consumers downstream): large enough to amortise
// channel synchronisation to noise per record, small enough that a batch is
// a fraction of any analysis interval.
const RecordBatchSize = 512

// batchPool recycles record batches once their consumer has forwarded the
// records, bounding a pipeline's batch allocations to the in-flight window
// instead of the stream length. Stored as *[]Record so Put never boxes a
// fresh slice header. Shared by every batched record stream in the
// pipeline via GetRecordBatch/PutRecordBatch.
var batchPool = sync.Pool{}

// GetRecordBatch returns an empty batch with RecordBatchSize capacity,
// recycled when possible.
func GetRecordBatch() []Record {
	if p, _ := batchPool.Get().(*[]Record); p != nil {
		return (*p)[:0]
	}
	return make([]Record, 0, RecordBatchSize)
}

// PutRecordBatch returns a drained batch to the pool once no consumer can
// touch its records again. Safe for any slice: only usefully-sized ones
// are kept.
func PutRecordBatch(b []Record) {
	if cap(b) < RecordBatchSize {
		return
	}
	batchPool.Put(&b)
}

// synthBatch aliases the shared batch size for the segment channel sizing
// below.
const synthBatch = RecordBatchSize

// synthSegmentBatches bounds each in-flight segment's buffered batches, so a
// fast worker back-pressures on the merger instead of materialising its
// segment.
const synthSegmentBatches = 8

// minSegmentSec keeps segments from becoming so short that per-segment
// setup (program routing, queue rebuild) dominates the packet work.
const minSegmentSec = 1.0

// segment is one timeline shard of a synthesis pass. Bounds are on the
// generator clock and cover [loAbs, hiAbs) of emitted time.
type segment struct {
	loAbs, hiAbs float64
	progs        []FlowProgram
	batches      chan []Record
	dispatched   bool // sent to the worker pool (vs closed unsynthesised on abort)
}

// synthesize replays the segment's overlapping flow programs through the
// program player and sends the packets with emission time in [loAbs, hiAbs)
// to the segment's batch channel, which it closes when done. The skip flag
// short-circuits the work (the channel is still closed) once an abort means
// nobody will read the records.
func (sg *segment) synthesize(warmup float64, skip *atomic.Bool) {
	defer close(sg.batches)
	if skip.Load() {
		return
	}
	// Eager admission: the queue's (time, index) ordering does not depend
	// on admission order, and the events it holds are of the same order as
	// the segment's program list itself.
	var pl player
	pl.initPlayer(sg.loAbs, sg.hiAbs, len(sg.progs)*8, nil)
	for i := range sg.progs {
		pl.admit(&sg.progs[i])
	}
	batch := GetRecordBatch()
	pl.play(func(t float64, pkt int, hdr netpkt.Header) bool {
		hdr.TotalLen = uint16(pkt)
		batch = append(batch, Record{Time: t - warmup, Hdr: hdr})
		if len(batch) == synthBatch {
			sg.batches <- batch
			batch = GetRecordBatch()
			return !skip.Load()
		}
		return true
	})
	if len(batch) > 0 {
		sg.batches <- batch
	}
}

// StreamParallel generates cfg's trace like Stream — fn sees every packet in
// time order, from one goroutine, and the result is bit-identical to
// Stream's — but synthesises the packets with a pool of workers over
// timeline shards. Phase 1 (the serial RNG pass over the arrival process)
// runs concurrently with synthesis and costs a few draws per flow, so the
// speedup approaches the worker count on generation-bound traces. workers <=
// 1 falls back to the serial generator. Memory stays bounded: segments hand
// off through an in-flight cap and per-segment bounded buffers, so a slow fn
// back-pressures generation just like the serial path.
//
// On fn error the stream aborts and returns the error with a running summary
// snapshot, like Stream; generation already in flight is drained, not
// delivered.
func StreamParallel(cfg Config, workers int, fn func(Record) error) (Summary, error) {
	if workers <= 1 {
		return Stream(cfg, fn)
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return Summary{}, err
	}
	src, err := newProgramSource(c)
	if err != nil {
		return Summary{}, err
	}

	// Shard the emitted timeline [Warmup, Warmup+Duration). A handful of
	// segments per worker keeps the pool balanced without shrinking segments
	// into per-segment overhead; the segmentation never changes the output,
	// only the schedule.
	segSec := c.Duration / float64(workers*4)
	if segSec < minSegmentSec {
		segSec = minSegmentSec
	}
	nSegs := int(c.Duration / segSec)
	if nSegs < 1 {
		nSegs = 1
	}
	horizon := c.Warmup + c.Duration
	segs := make([]*segment, nSegs)
	for j := range segs {
		lo := c.Warmup + float64(j)*segSec
		hi := c.Warmup + float64(j+1)*segSec
		if j == nSegs-1 {
			hi = horizon
		}
		segs[j] = &segment{loAbs: lo, hiAbs: hi, batches: make(chan []Record, synthSegmentBatches)}
	}
	// segIndex places a generator-clock time on the shard grid (clamped:
	// warm-up flows land in segment 0, which starts synthesis at Warmup).
	// The division is within an ulp of the truth; callers that care about
	// exact boundary landings settle them against the segments' own bounds.
	segIndex := func(t float64) int {
		j := int((t - c.Warmup) / segSec)
		if j < 0 {
			return 0
		}
		if j >= nSegs {
			return nSegs - 1
		}
		return j
	}

	var aborted atomic.Bool
	// Sized to hold every segment so worker handoff never blocks on the
	// queue itself — ordering and back-pressure come from inflight and the
	// per-segment buffers (the PR-2 discipline).
	tasks := make(chan *segment, nSegs)
	// inflight caps sealed-but-unmerged segments: the dispatcher acquires
	// before sealing, the merger releases after draining, so the program
	// lists and buffers of at most workers+2 segments (plus the tails of
	// flows spanning ahead) are resident at once.
	inflight := make(chan struct{}, workers+2)

	go func() { // dispatcher: phase 1 + routing + sealing
		next := 0 // next segment to seal
		seal := func(limit int) bool {
			for next < limit {
				if aborted.Load() {
					return false
				}
				sg := segs[next]
				sg.dispatched = true
				inflight <- struct{}{}
				tasks <- sg
				next++
			}
			return true
		}
		route := func(p FlowProgram) {
			// A segment can hold packets of p iff loAbs < End and
			// hiAbs > Start (packet times lie in [Start, End)); the exact
			// bound comparisons correct the grid division's rounding.
			jF := segIndex(p.Start)
			for jF > 0 && segs[jF].loAbs > p.Start {
				jF--
			}
			for jF < nSegs-1 && segs[jF].hiAbs <= p.Start {
				jF++
			}
			jL := segIndex(p.End())
			for jL < nSegs-1 && segs[jL+1].loAbs < p.End() {
				jL++
			}
			for j := jF; j <= jL; j++ {
				if j >= next { // sealed segments are already complete
					segs[j].progs = append(segs[j].progs, p)
				}
			}
		}
		for src.peekArrival() < horizon {
			// Every flow of a future session starts at or after the
			// arrival clock, so segments ending at or before it are
			// complete and can ship. The exact hiAbs comparison keeps a
			// rounding overshoot of the grid division from sealing a
			// segment a flow of this very session could still reach.
			limit := segIndex(src.peekArrival())
			for limit > 0 && segs[limit-1].hiAbs > src.peekArrival() {
				limit--
			}
			if !seal(limit) {
				break
			}
			src.nextSession(horizon, route)
		}
		seal(nSegs)
		// On abort, close what was never dispatched so the merger's drain
		// loop terminates.
		for ; next < nSegs; next++ {
			close(segs[next].batches)
		}
		close(tasks)
	}()

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for sg := range tasks {
				sg.synthesize(c.Warmup, &aborted)
			}
		}()
	}

	// Merge: forward each segment's batches in timeline order. Every
	// channel is drained even after an error so no worker stays blocked.
	var sum Summary
	var firstErr error
	for _, sg := range segs {
		for batch := range sg.batches {
			if firstErr == nil {
				for _, rec := range batch {
					sum.Packets++
					sum.Bytes += int64(rec.Hdr.TotalLen)
					if err := fn(rec); err != nil {
						firstErr = err
						aborted.Store(true)
						break
					}
				}
			}
			PutRecordBatch(batch)
		}
		if sg.dispatched {
			<-inflight
		}
	}
	workerWG.Wait()

	sum.Flows = src.flows
	sum.OnePktFlows = src.onePkt
	if firstErr != nil {
		return sum, firstErr
	}
	sum.Duration = c.Duration
	if c.Duration > 0 {
		sum.AvgRateBps = float64(sum.Bytes) * 8 / c.Duration
		sum.FlowRate = float64(sum.Flows) / c.Duration
	}
	return sum, nil
}
