// Package trace defines the packet-record model shared by the whole
// measurement pipeline and implements a synthetic backbone trace generator
// that substitutes for the paper's proprietary Sprint OC-12 captures.
//
// The generator realises exactly the stochastic structure the paper models
// and measures (§III, §IV):
//
//   - flow arrivals form a homogeneous Poisson process of rate λ
//     (Assumption 1);
//   - flow sizes, rates and shot shapes are iid across flows
//     (Assumption 2);
//   - within a flow, packets are paced so the instantaneous rate follows a
//     power-function shot x(t) = a·t^b (Figure 7): b = 0 gives constant-rate
//     (UDP-like) flows, b ≈ 1..2 mimics TCP's ramp-up;
//   - destination addresses concentrate on Zipf-popular /24 prefixes, so
//     prefix aggregation (the paper's second flow definition) merges many
//     5-tuple flows, as observed on real backbones.
//
// Packets are produced in global timestamp order with bounded memory using
// a calendar-queue player over compact flow programs, so arbitrarily long
// traces stream in O(active flows) space.
package trace

import (
	"fmt"
	"iter"

	"repro/internal/dist"
	"repro/internal/netpkt"
)

// Record is one captured packet: a timestamp plus the decoded 44-byte
// header. Time is in seconds since the trace origin (the paper's traces use
// absolute timestamps; a float64 second offset keeps arithmetic simple and
// is exact to sub-microsecond over multi-hour traces).
type Record struct {
	Time float64
	Hdr  netpkt.Header
}

// Bits returns the wire size of the packet in bits (the unit the model's
// rates use).
func (r Record) Bits() float64 { return float64(r.Hdr.TotalLen) * 8 }

// Config parameterises the synthetic trace generator.
type Config struct {
	// Duration of the trace in seconds.
	Duration float64
	// Lambda is the flow arrival rate (flows per second), the λ of the model.
	Lambda float64
	// SizeBytes samples flow sizes S in bytes (heavy-tailed in practice).
	SizeBytes dist.Sampler
	// RateBps samples the average flow rate S/D in bits per second; the
	// flow duration is derived as D = 8·S / rate.
	RateBps dist.Sampler
	// ShotB samples the power-shot exponent b per flow. Use dist.Constant
	// for a pure shape (0 rectangular, 1 triangular, 2 parabolic).
	ShotB dist.Sampler
	// PktBytes is the maximum packet payload+header size in bytes (wire
	// MTU); flows are chopped into packets of this size with a final
	// partial packet. Default 1500.
	PktBytes int
	// Prefixes is the number of distinct /24 destination prefixes sessions
	// draw from (uniformly). Default 65536 — a backbone link sees a huge
	// destination diversity, so no single /24 stays continuously active.
	Prefixes int
	// FlowsPerSession is the mean of the geometric number of 5-tuple flows
	// a session sends to its destination prefix (default 8). Sessions are
	// what make the /24-prefix flow definition aggregate: consecutive
	// flows of a session land within the 60 s timeout and merge into one
	// prefix flow, giving the order-of-magnitude flow-count reduction the
	// paper reports (§VI-A). Set to 1 for plain independent flows.
	FlowsPerSession float64
	// SessionFlowGapSec is the mean (exponential) gap between consecutive
	// flow starts within a session (default 1 s; must stay below the flow
	// timeout for aggregation to happen).
	SessionFlowGapSec float64
	// PopularFraction is the share of sessions addressed to a small tier
	// of popular destination prefixes (default 0.45). Every real backbone
	// link carries a few /24s — CDNs, large sites — that stay continuously
	// active; under the prefix flow definition they form large, nearly
	// constant-rate aggregates whose S²/D dominates the model inputs, which
	// is what makes the rectangular shot fit prefix flows in the paper's
	// Figure 12. Set to 0 to disable the tier.
	PopularFraction float64
	// PopularPrefixes is the size of the popular tier (default 32).
	PopularPrefixes int
	// UDPFraction is the fraction of flows labelled UDP; the rest are TCP.
	// The label only affects the protocol byte (the model is protocol
	// agnostic, which is the point of the paper), not the pacing.
	UDPFraction float64
	// MinDuration clamps pathologically short flows (extremely high rate
	// draw on a tiny flow), which would otherwise put all packets in one
	// burst. Default 10 ms.
	MinDuration float64
	// Warmup runs the arrival process for this many seconds before the
	// trace window opens, so flows already in progress at t=0 are present
	// and the link is in its stationary regime (the model's standing
	// assumption; a monitored backbone link has been running forever).
	// Packets emitted during warm-up are discarded. Default 0.
	Warmup float64
	// Seed drives all randomness; the same Config yields the same trace.
	Seed int64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if !(out.Duration > 0) {
		return out, fmt.Errorf("trace: Duration must be > 0, got %g", out.Duration)
	}
	if !(out.Lambda > 0) {
		return out, fmt.Errorf("trace: Lambda must be > 0, got %g", out.Lambda)
	}
	if out.SizeBytes == nil || out.RateBps == nil || out.ShotB == nil {
		return out, fmt.Errorf("trace: SizeBytes, RateBps and ShotB samplers are required")
	}
	if out.PktBytes == 0 {
		out.PktBytes = 1500
	}
	if out.PktBytes < 40 {
		return out, fmt.Errorf("trace: PktBytes must be >= 40, got %d", out.PktBytes)
	}
	if out.PktBytes > 65535 {
		// The IPv4 TotalLen field is 16-bit; a larger MTU would silently
		// truncate every emitted header (and the byte accounting with it).
		return out, fmt.Errorf("trace: PktBytes must be <= 65535, got %d", out.PktBytes)
	}
	if out.Prefixes == 0 {
		out.Prefixes = 65536
	}
	if out.Prefixes < 1 || out.Prefixes > 1<<20 {
		return out, fmt.Errorf("trace: Prefixes out of range: %d", out.Prefixes)
	}
	if out.FlowsPerSession == 0 {
		out.FlowsPerSession = 8
	}
	if out.FlowsPerSession < 1 {
		return out, fmt.Errorf("trace: FlowsPerSession must be >= 1, got %g", out.FlowsPerSession)
	}
	if out.SessionFlowGapSec == 0 {
		out.SessionFlowGapSec = 1
	}
	if out.SessionFlowGapSec < 0 {
		return out, fmt.Errorf("trace: SessionFlowGapSec must be >= 0, got %g", out.SessionFlowGapSec)
	}
	if out.PopularFraction == 0 {
		out.PopularFraction = 0.45
	}
	if out.PopularFraction < 0 || out.PopularFraction > 1 {
		return out, fmt.Errorf("trace: PopularFraction must be in [0,1], got %g", out.PopularFraction)
	}
	if out.PopularPrefixes == 0 {
		out.PopularPrefixes = 32
	}
	if out.PopularPrefixes < 1 || out.PopularPrefixes >= out.Prefixes {
		return out, fmt.Errorf("trace: PopularPrefixes must be in [1, Prefixes), got %d", out.PopularPrefixes)
	}
	if out.UDPFraction < 0 || out.UDPFraction > 1 {
		return out, fmt.Errorf("trace: UDPFraction must be in [0,1], got %g", out.UDPFraction)
	}
	if out.MinDuration == 0 {
		out.MinDuration = 0.01
	}
	if out.Warmup < 0 {
		return out, fmt.Errorf("trace: Warmup must be >= 0, got %g", out.Warmup)
	}
	return out, nil
}

// Generator produces the packets of one synthetic trace in time order.
// Flow arrivals follow a Poisson cluster (session) process: sessions arrive
// Poisson at rate Lambda/FlowsPerSession, and each session emits a
// geometric number of flows to one destination prefix, spaced by
// exponential gaps. The superposition of many concurrent sessions keeps the
// aggregate flow arrival process close to Poisson (the paper's Figures 3-4
// observation), while the session structure gives the /24-prefix definition
// its finite, aggregated flows.
//
// The generator is the serial face of the two-phase design: a programSource
// (phase 1) makes every random draw in admission order, and a pull-based
// player (phase 2) turns the resulting flow programs into packets with no
// RNG at all, fast-forwarding every flow past the warm-up so discarded
// packets are never synthesised. StreamParallel runs the same two phases
// with the synthesis sharded across workers; Checkpoints replays any
// sub-window of it from the nearest checkpoint. All three produce
// bit-identical packet streams.
type Generator struct {
	cfg   Config
	src   *programSource
	pl    player
	stats Summary
}

// Summary aggregates what the generator produced; the per-trace rows of the
// paper's Table I are derived from it.
type Summary struct {
	Flows       int64
	Packets     int64
	Bytes       int64
	Duration    float64
	AvgRateBps  float64
	FlowRate    float64 // realised flow arrival rate per second
	OnePktFlows int64   // flows emitted as a single packet (discarded by the pipeline)
}

// NewGenerator validates cfg and returns a ready generator.
func NewGenerator(cfg Config) (*Generator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src, err := newProgramSource(c)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	g := &Generator{cfg: c, src: src}
	horizon := c.Warmup + c.Duration
	// The player's window is the emitted part of the timeline: flows are
	// fast-forwarded past the warm-up in O(1) (closed-form shot inverse), so
	// warm-up packets — generated-and-discarded by the pre-player design —
	// cost nothing at all. Flow truncation at the horizon is the window's
	// upper bound, exactly like a capture stopping.
	g.pl.initPlayer(c.Warmup, horizon, estimateEvents(c.Duration, c.Lambda),
		newSourceFeed(src, horizon, &g.pl))
	return g, nil
}

// Next returns the next packet in time order. ok is false once the trace
// horizon is reached. Record times are relative to the end of the warm-up
// period, i.e. they lie in [0, Duration).
func (g *Generator) Next() (rec Record, ok bool) {
	t, pkt, hdr, ok := g.pl.step()
	if !ok {
		// The player drained its feed to the horizon, so the phase-1 flow
		// counters are final; snapshot the derived rates (idempotent).
		g.stats.Duration = g.cfg.Duration
		if g.cfg.Duration > 0 {
			g.stats.AvgRateBps = float64(g.stats.Bytes) * 8 / g.cfg.Duration
			g.stats.FlowRate = float64(g.src.flows) / g.cfg.Duration
		}
		return Record{}, false
	}
	hdr.TotalLen = uint16(pkt)
	g.stats.Packets++
	g.stats.Bytes += int64(pkt)
	return Record{Time: t - g.cfg.Warmup, Hdr: hdr}, true
}

// Stats returns the running summary; final once Next has returned ok=false.
func (g *Generator) Stats() Summary {
	s := g.stats
	s.Flows = g.src.flows
	s.OnePktFlows = g.src.onePkt
	return s
}

// Records returns a single-use iterator over the remaining packets of the
// trace, in time order. It is the range-over-func face of Next: ranging to
// completion drains the generator and finalises Stats. Breaking early leaves
// the generator resumable.
func (g *Generator) Records() iter.Seq[Record] {
	return func(yield func(Record) bool) {
		for {
			r, ok := g.Next()
			if !ok || !yield(r) {
				return
			}
		}
	}
}

// Stream generates cfg's trace and hands every packet to fn in time order
// without materialising the trace: memory stays O(active flows) however long
// the trace is. On success it returns the final summary. fn's first error
// aborts the stream and is returned along with the running summary snapshot,
// whose Duration, AvgRateBps and FlowRate are not yet finalised (they are
// only computed once the trace drains).
func Stream(cfg Config, fn func(Record) error) (Summary, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return Summary{}, err
	}
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if err := fn(r); err != nil {
			return g.Stats(), err
		}
	}
	return g.Stats(), nil
}

// GenerateAll materialises the whole trace in memory. Intended for tests and
// single-interval reference figures (an interval at the default scale is a
// few hundred thousand records). Long traces should use Stream or Records.
func GenerateAll(cfg Config) ([]Record, Summary, error) {
	// Validate (via NewGenerator) before sizing the slice: an invalid
	// Duration or Lambda would turn the capacity estimate negative.
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, Summary{}, err
	}
	// ~8 packets per flow at the default mix; clamped so a huge (or
	// overflowing) Duration·Lambda product cannot turn into a bogus
	// allocation — append growth covers anything beyond the clamp.
	est := capacityEstimate(cfg.Duration * cfg.Lambda * 8)
	recs := make([]Record, 0, est)
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	return recs, g.Stats(), nil
}

// GenerateAllParallel is GenerateAll with packet synthesis sharded across
// the given worker pool (see StreamParallel); the records are bit-identical
// to GenerateAll's at any worker count.
func GenerateAllParallel(cfg Config, workers int) ([]Record, Summary, error) {
	recs := make([]Record, 0, capacityEstimate(cfg.Duration*cfg.Lambda*8))
	sum, err := StreamParallel(cfg, workers, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, Summary{}, err
	}
	return recs, sum, nil
}

// MergeSorted merges two time-ordered record slices into one, preserving
// order. Used to overlay e.g. a flood anomaly on a baseline trace.
func MergeSorted(a, b []Record) []Record {
	out := make([]Record, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Time <= b[j].Time {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
