package trace

import (
	"fmt"

	"repro/internal/dist"
)

// The paper's Table I lists seven OC-12 (622 Mb/s) traces with average link
// utilisations from 26 to 262 Mb/s and lengths from 6 to 39.5 hours. We
// reproduce the suite at a configurable scale: the default link is 100 Mb/s
// and the default analysis interval 120 s (the paper uses 30 minutes).
// Utilisation *fractions* are preserved exactly, and the number of analysis
// intervals per trace is proportional to each paper trace's length, so the
// three utilisation clusters of Figures 9-13 appear with the same relative
// weights. See DESIGN.md §2 for why CoV statistics are invariant to this
// rescaling (they depend on λ and the per-flow law, not on absolute scale).

// PaperLinkBps is the OC-12 line rate of the monitored links.
const PaperLinkBps = 622e6

// TableIEntry describes one row of the paper's Table I.
type TableIEntry struct {
	Date     string
	Length   string  // as printed in the paper
	Hours    float64 // trace length in hours
	AvgMbps  float64 // average utilisation reported in the paper
	SeedBase int64
}

// TableI is the paper's trace inventory, in row order.
var TableI = []TableIEntry{
	{Date: "Nov 8th, 2001", Length: "7h", Hours: 7, AvgMbps: 243, SeedBase: 100},
	{Date: "Nov 8th, 2001", Length: "10h", Hours: 10, AvgMbps: 180, SeedBase: 200},
	{Date: "Nov 8th, 2001", Length: "6h", Hours: 6, AvgMbps: 262, SeedBase: 300},
	{Date: "Nov 8th, 2001", Length: "39h 30m", Hours: 39.5, AvgMbps: 26, SeedBase: 400},
	{Date: "Sep 5th, 2001", Length: "10h", Hours: 10, AvgMbps: 136, SeedBase: 500},
	{Date: "Sep 5th, 2001", Length: "7h", Hours: 7, AvgMbps: 187, SeedBase: 600},
	{Date: "Sep 5th, 2001", Length: "16h", Hours: 16, AvgMbps: 72, SeedBase: 700},
}

// SuiteOptions scales the synthetic reproduction of Table I.
type SuiteOptions struct {
	// LinkBps is the scaled link capacity (default 100e6). Utilisation
	// fractions of Table I are applied to it.
	LinkBps float64
	// IntervalSec is the analysis-interval length (default 120; the paper
	// uses 1800).
	IntervalSec float64
	// IntervalsPerHour sets how many analysis intervals represent one paper
	// hour of trace (default 2; the paper has 2 per hour as well, since its
	// intervals are 30 minutes). Lower it for quick runs.
	IntervalsPerHour float64
	// MaxIntervals caps the per-trace interval count (0 = no cap). The
	// 39.5 h trace dominates run time otherwise.
	MaxIntervals int
	// MeanFlowRateBps is the mean of the per-flow average-rate distribution
	// (default 80 kb/s, chosen so flow durations sit well above the 200 ms
	// averaging interval while the lowest-utilisation trace keeps a high CoV).
	MeanFlowRateBps float64
	// ShotB overrides the per-flow shot-exponent distribution. Default:
	// Uniform[1.5, 2.5) — TCP-like super-linear ramp-ups whose fitted
	// power b̂ centres near 2, matching the paper's Figure 11.
	ShotB dist.Sampler
	// Seed offsets all per-trace seeds, so independent replications of the
	// whole suite are possible.
	Seed int64
}

func (o *SuiteOptions) withDefaults() SuiteOptions {
	out := *o
	if out.LinkBps == 0 {
		out.LinkBps = 100e6
	}
	if out.IntervalSec == 0 {
		out.IntervalSec = 120
	}
	if out.IntervalsPerHour == 0 {
		out.IntervalsPerHour = 2
	}
	if out.MeanFlowRateBps == 0 {
		out.MeanFlowRateBps = 80e3
	}
	if out.ShotB == nil {
		out.ShotB = dist.Uniform{Lo: 1.5, Hi: 2.5}
	}
	return out
}

// TraceSpec is one scaled trace of the suite, ready to generate.
type TraceSpec struct {
	Name        string
	Entry       TableIEntry
	TargetBps   float64 // scaled average utilisation
	Intervals   int     // number of analysis intervals
	IntervalSec float64
	Lambda      float64 // flow arrival rate implied by TargetBps
	cfg         Config
}

// Config returns the generator configuration producing the whole trace
// (Intervals × IntervalSec seconds).
func (s TraceSpec) Config() Config { return s.cfg }

// FlowSizeDist returns the flow-size sampler shared by the whole suite:
// 30 % "mice" (40..1500 bytes, producing the single-packet flows the
// paper's methodology discards) and 70 % heavy-tailed "elephants"
// (bounded Pareto, α = 1.3, capped at 300 kB so the largest flows stay
// shorter than a scaled analysis interval).
func FlowSizeDist() (dist.Sampler, error) {
	mice, err := dist.NewUniform(40, 1500)
	if err != nil {
		return nil, err
	}
	elephants, err := dist.NewBoundedPareto(1.3, 1500, 3e5)
	if err != nil {
		return nil, err
	}
	return dist.NewMixture([]float64{0.3, 0.7}, []dist.Sampler{mice, elephants})
}

// FlowRateDist returns the per-flow average-rate sampler: lognormal with the
// given mean and a coefficient of variation of 1.5 (accesses range from
// dial-up to LAN speeds).
func FlowRateDist(meanBps float64) (dist.Sampler, error) {
	return dist.LognormalFromMoments(meanBps, 1.5)
}

// DefaultSuite builds the seven scaled traces of Table I.
func DefaultSuite(opts SuiteOptions) ([]TraceSpec, error) {
	o := opts.withDefaults()
	sizeDist, err := FlowSizeDist()
	if err != nil {
		return nil, fmt.Errorf("trace: suite size distribution: %w", err)
	}
	rateDist, err := FlowRateDist(o.MeanFlowRateBps)
	if err != nil {
		return nil, fmt.Errorf("trace: suite rate distribution: %w", err)
	}
	meanSizeBits := sizeDist.Mean() * 8
	specs := make([]TraceSpec, 0, len(TableI))
	for i, e := range TableI {
		target := e.AvgMbps / (PaperLinkBps / 1e6) * o.LinkBps
		intervals := int(e.Hours*o.IntervalsPerHour + 0.5)
		if intervals < 1 {
			intervals = 1
		}
		if o.MaxIntervals > 0 && intervals > o.MaxIntervals {
			intervals = o.MaxIntervals
		}
		lambda := target / meanSizeBits
		// The popular-prefix tier must scale with load: a busier link sees
		// proportionally more continuously-active /24 destinations, each
		// with a similar traffic share. An always-on tier of P prefixes
		// contributes q²R²/P to λ·E[S²/D] (independent of the interval
		// length: each prefix's split flow has S ∝ T and D = T), while the
		// measured variance grows linearly in R, so scale invariance of the
		// /24 figures needs P ∝ λ. The constant 13 was calibrated once
		// (λ = 400 flows/s, 32 popular prefixes) and verified at 20 and
		// 100 Mb/s link scales.
		popular := int(lambda/13 + 0.5)
		if popular < 2 {
			popular = 2
		}
		if popular > 4096 {
			popular = 4096
		}
		spec := TraceSpec{
			Name:        fmt.Sprintf("trace-%d", i+1),
			Entry:       e,
			TargetBps:   target,
			Intervals:   intervals,
			IntervalSec: o.IntervalSec,
			Lambda:      lambda,
			cfg: Config{
				Duration:        float64(intervals) * o.IntervalSec,
				Lambda:          lambda,
				SizeBytes:       sizeDist,
				RateBps:         rateDist,
				ShotB:           o.ShotB,
				UDPFraction:     0.1,
				PopularPrefixes: popular,
				Seed:            e.SeedBase + o.Seed,
			},
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
