package trace

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/dist/rng"
)

// Checkpointed replay must be record-for-record identical to prefix replay
// for shallow, deep, boundary-straddling and boundary-aligned windows.
func TestCheckpointWindowMatchesPrefixReplay(t *testing.T) {
	cfg := windowTestConfig(t) // Duration 30, Warmup 10
	ck, err := NewCheckpoints(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Flows() == 0 {
		t.Fatal("checkpoint index holds no flows")
	}
	windows := [][2]float64{
		{0, 5},        // trace origin: only warm-up carry-over
		{10, 20},      // mid-trace, off the checkpoint grid's phase
		{12, 12.5},    // narrow, both bounds inside one checkpoint span
		{16, 24},      // straddles two checkpoint boundaries
		{28, 30},      // deep offset, flows truncated at the horizon
		{29.5, 40},    // hi past the trace end
		{24, 28},      // exactly checkpoint-aligned bounds
		{7.999, 8.25}, // lo an ulp shy of a boundary
	}
	for _, w := range windows {
		lo, hi := w[0], w[1]
		ref, err := NewWindow(cfg, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Materialize()
		ckw, err := ck.Window(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for replay := 0; replay < 2; replay++ {
			got := ckw.Materialize()
			if len(got) != len(want) {
				t.Fatalf("window [%g,%g) replay %d: %d records, want %d", lo, hi, replay, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("window [%g,%g) replay %d: record %d = %+v, want %+v", lo, hi, replay, i, got[i], want[i])
				}
			}
		}
	}
}

// Random windows across many seeds hammer the boundary classification (a
// flow in active[j] and in the fresh-arrival run must be two disjoint sets).
func TestCheckpointWindowRandomized(t *testing.T) {
	r := rng.New(99)
	for _, seed := range []int64{3, 17} {
		cfg := smallConfig(seed, dist.Uniform{Lo: 0.5, Hi: 2.5})
		ck, err := NewCheckpoints(cfg, 3.3)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 12; trial++ {
			lo := r.Float64() * cfg.Duration
			hi := lo + 0.1 + r.Float64()*5
			ref, err := NewWindow(cfg, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Materialize()
			ckw, err := ck.Window(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			got := ckw.Materialize()
			if len(got) != len(want) {
				t.Fatalf("seed %d window [%g,%g): %d records, want %d", seed, lo, hi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d window [%g,%g): record %d differs", seed, lo, hi, i)
				}
			}
		}
	}
}

// Early break must not poison later replays (fresh state per iteration).
func TestCheckpointWindowEarlyBreak(t *testing.T) {
	cfg := windowTestConfig(t)
	ck, err := NewCheckpoints(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ck.Window(20, 25)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range w.Records() {
		n++
		if n == 3 {
			break
		}
	}
	if full := w.Materialize(); len(full) < 3 {
		t.Fatalf("replay after early break saw %d records, want >= 3", len(full))
	}
}

func TestCheckpointValidation(t *testing.T) {
	cfg := windowTestConfig(t)
	if _, err := NewCheckpoints(cfg, 0); err == nil {
		t.Fatal("zero spacing should be rejected")
	}
	if _, err := NewCheckpoints(Config{}, 5); err == nil {
		t.Fatal("invalid config should be rejected")
	}
	ck, err := NewCheckpoints(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Every() != 5 {
		t.Fatalf("Every = %g, want 5", ck.Every())
	}
	if _, err := ck.Window(-1, 5); err == nil {
		t.Fatal("negative lo should be rejected")
	}
	if _, err := ck.Window(5, 5); err == nil {
		t.Fatal("empty window should be rejected")
	}
}

// The destination address must keep the host byte in [1, 253] and never
// carry into the /24 prefix bits (the host-byte expression is parenthesised
// precisely so the +1 cannot ripple upward).
func TestFlowDstAddressStaysInPrefix(t *testing.T) {
	base := smallConfig(55, dist.Constant{V: 1})
	// 256 prefixes keep prefix<<8 inside the third octet, so any carry out
	// of the host byte would be visible in the upper half-word.
	base.Prefixes = 256
	base.PopularPrefixes = 8
	cfg, err := base.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.UDPFraction = 0.3
	src, err := newProgramSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	src.run(cfg.Warmup+cfg.Duration, func(p FlowProgram) {
		n++
		addr := p.Hdr.DstIP.Uint32()
		host := addr & 0xFF
		if host < 1 || host > 253 {
			t.Fatalf("flow %d: host byte %d outside [1, 253] (addr %v)", p.Index, host, p.Hdr.DstIP)
		}
		// The host byte is a pure function of the flow id; anything else
		// means the +1 leaked outside the parenthesised host expression.
		if want := p.Index%253 + 1; host != want {
			t.Fatalf("flow %d: host byte %d, want %d", p.Index, host, want)
		}
		// With prefixes confined to the third octet, the upper half-word is
		// exactly the 172.16.0.0 base — a carry into the prefix bits would
		// perturb it.
		if addr>>16 != 0xAC10 {
			t.Fatalf("flow %d: address %v carried into the prefix bits", p.Index, p.Hdr.DstIP)
		}
	})
	if n == 0 {
		t.Fatal("no flows generated")
	}
}

// geometric must stay exact for realistic means and terminate (capped) even
// when the success probability underflows to ~0.
func TestGeometricCapped(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if n := geometric(8, r); n < 1 || n >= maxSessionFlows {
			t.Fatalf("geometric(8) = %d out of expected range", n)
		}
	}
	if n := geometric(1, r); n != 1 {
		t.Fatalf("geometric(1) = %d, want 1", n)
	}
	if n := geometric(math.MaxFloat64, r); n != maxSessionFlows {
		t.Fatalf("geometric(huge) = %d, want the %d cap", n, maxSessionFlows)
	}
}

// The capacity estimate must clamp huge and degenerate products instead of
// overflowing the int conversion.
func TestCapacityEstimate(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{
		{-5, 0},
		{0, 0},
		{math.NaN(), 0},
		{1000, 1000},
		{math.MaxFloat64, maxCapacityEstimate},
		{math.Inf(1), maxCapacityEstimate},
		{1e18 * 8, maxCapacityEstimate}, // the overflow case: Duration·Lambda·8 past int64
	}
	for _, c := range cases {
		if got := capacityEstimate(c.in); got != c.want {
			t.Fatalf("capacityEstimate(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}
