package trace

import (
	"testing"

	"repro/internal/dist"
)

// The streaming faces (Stream, Records) must yield exactly the packets and
// summary that GenerateAll materialises.
func TestStreamMatchesGenerateAll(t *testing.T) {
	cfg := smallConfig(31, dist.Constant{V: 2})
	want, wantSum, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty reference trace")
	}

	var streamed []Record
	sum, err := Stream(cfg, func(r Record) error {
		streamed = append(streamed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want) {
		t.Fatalf("Stream yielded %d packets, want %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("Stream packet %d differs: %+v vs %+v", i, streamed[i], want[i])
		}
	}
	if sum != wantSum {
		t.Fatalf("Stream summary %+v, want %+v", sum, wantSum)
	}

	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for r := range g.Records() {
		if r != want[i] {
			t.Fatalf("Records packet %d differs", i)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("Records yielded %d packets, want %d", i, len(want))
	}
	if g.Stats() != wantSum {
		t.Fatalf("Records summary %+v, want %+v", g.Stats(), wantSum)
	}
}

// Breaking out of Records must leave the generator resumable from the next
// packet.
func TestRecordsEarlyBreakResumes(t *testing.T) {
	cfg := smallConfig(32, dist.Constant{V: 1})
	want, _, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 10 {
		t.Fatalf("trace too short for the test: %d packets", len(want))
	}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range g.Records() {
		n++
		if n == 5 {
			break
		}
	}
	next, ok := g.Next()
	if !ok || next != want[5] {
		t.Fatalf("generator did not resume at packet 5: %+v", next)
	}
}
