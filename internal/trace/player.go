package trace

import (
	"slices"

	"repro/internal/netpkt"
)

// This file is the shared RNG-free event loop of phase 2: the player turns
// flow programs into packets over a window [lo, hi) of the generator clock,
// in the canonical (time, flow admission index) emission order every
// synthesis path shares. The serial generator, the sharded segment workers
// and checkpointed window replay all drive the same player, so their packet
// streams are bit-identical by construction.
//
// Pending packets live in a bucket (calendar) queue rather than a binary
// heap: the window is cut into uniform time buckets sized for a handful of
// events each, inserts are O(1) list pushes, and a bucket is sorted once
// when the clock reaches it. The heap's ~log(active flows) comparisons per
// packet — the single largest cost of generation after the samplers were
// rewritten — become ~1, while the emission order stays the exact total
// order (time, index): every event is inserted before the drain passes its
// bucket (admission is settled at bucket entry, and a continuing flow's
// next packet never precedes the packet that scheduled it), so sorting
// bucket-locally is sorting globally.
//
// Events are 24 bytes — a time, a byte cursor and an arena slot — not the
// ~100-byte program itself: active programs live in a slot-recycled arena,
// so queue traffic never memmoves programs and the player makes no per-flow
// allocation at all (the arena high-water mark is the maximum number of
// concurrently active flows).

// pkEvent is one pending packet emission: the flow's byte cursor plus its
// program's arena slot. index duplicates the program's admission index so
// ordering never dereferences the arena.
type pkEvent struct {
	time  float64
	sentB int64
	index uint32 // FlowProgram.Index: the cross-flow tie-break
	prog  int32  // player arena slot
}

func eventLess(a, b *pkEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.index < b.index
}

// bqNode is an arena slot of the bucket queue's per-bucket lists.
type bqNode struct {
	ev   pkEvent
	next int32 // arena index of the next node + 1; 0 terminates
}

// bucketQueue is the calendar queue. Buckets hold unsorted singly-linked
// lists of events in a shared arena (freed slots are recycled, so arena
// memory is O(max concurrently pending events)); the current bucket is
// flattened into scratch and sorted when the drain reaches it. Events that
// land in the current bucket mid-drain (a flow's next packet, following the
// one just popped) binary-insert into the sorted remainder.
//
// The grid is adaptive: when the drain reaches a bucket whose chain has
// grown far past the per-bucket design load (a degenerate config, or an
// event-count estimate that was badly off), the queue rebuilds the grid
// over the undrained remainder with cells sized from the hot bucket's
// density (see refine), so clustered workloads never fall onto the
// O(chain²) insertion-sort path.
type bucketQueue struct {
	lo, hi, invW float64
	nb           int
	heads        []int32 // bucket -> arena index of list head + 1; 0 empty
	counts       []int32 // bucket -> pending list length
	nodes        []bqNode
	free         int32 // freelist head + 1; 0 empty
	cur          int   // bucket being drained; -1 before the first advance
	scratch      []pkEvent
	pos          int       // next scratch slot to pop
	spill        []pkEvent // refine's gather buffer
	splits       int       // grid rebuilds performed (observability + tests)
}

// initQueue prepares the queue over [lo, hi) sized for about estEvents
// pending emissions (a mis-estimate degrades constant factors, never
// correctness or order). Storage from a previous use of the queue is
// reused, so a worker can run many segments through one queue without
// reallocating its grid or arena.
func (q *bucketQueue) initQueue(lo, hi float64, estEvents int) {
	q.hi = hi
	nb := estEvents / 4
	if nb < 16 {
		nb = 16
	}
	if nb > 1<<17 {
		nb = 1 << 17
	}
	w := (hi - lo) / float64(nb)
	var invW float64
	if !(w > 0) {
		// Degenerate span: one bucket swallows everything; the sort still
		// fixes the order.
		nb = 1
		invW = 0
	} else {
		invW = 1 / w
	}
	q.setGrid(lo, nb, invW)
	q.nodes = q.nodes[:0]
	q.free = 0
	q.scratch = q.scratch[:0]
	q.pos = 0
	q.splits = 0
}

// setGrid installs a bucket grid over [lo, hi) and rewinds the drain to its
// start, reusing head/count storage when it is large enough.
func (q *bucketQueue) setGrid(lo float64, nb int, invW float64) {
	q.lo, q.nb, q.invW = lo, nb, invW
	if cap(q.heads) >= nb {
		q.heads = q.heads[:nb]
		clear(q.heads)
		q.counts = q.counts[:nb]
		clear(q.counts)
	} else {
		q.heads = make([]int32, nb)
		q.counts = make([]int32, nb)
	}
	q.cur = -1
}

// bucketOf places a generator-clock time on the bucket grid. The expression
// is monotone in t (one multiply, one floor), which is all ordering
// correctness needs: an event never lands in a bucket before its cause.
func (q *bucketQueue) bucketOf(t float64) int {
	b := int((t - q.lo) * q.invW)
	if b < 0 {
		return 0
	}
	if b >= q.nb {
		return q.nb - 1
	}
	return b
}

// push inserts an event. Events for buckets the drain has not reached yet
// take the O(1) list path; an event landing in the bucket being drained
// binary-inserts into the sorted remainder (rare: it requires a flow's next
// packet to follow within the same bucket width).
//
//repro:hotpath
func (q *bucketQueue) push(ev pkEvent) {
	b := q.bucketOf(ev.time)
	if b <= q.cur {
		q.insertSorted(ev)
		return
	}
	var idx int32
	if q.free != 0 {
		idx = q.free - 1
		q.free = q.nodes[idx].next
		q.nodes[idx] = bqNode{ev: ev, next: q.heads[b]}
	} else {
		idx = int32(len(q.nodes))
		q.nodes = append(q.nodes, bqNode{ev: ev, next: q.heads[b]})
	}
	q.heads[b] = idx + 1
	q.counts[b]++
}

// hotBucketEvents is the chain length past which a bucket counts as hot:
// well above the ~4 events/bucket the grid is sized for, low enough that
// the quadratic insertion-sort cost of draining an oversized bucket never
// gets past a few hundred memmoves before the grid refines.
const hotBucketEvents = 512

// refine rebuilds the grid over the undrained remainder [bucket b's start,
// hi) with cells sized from the hot bucket's density — the adaptive resize
// that keeps degenerate configurations (all events clustered in one bucket,
// or an estimate-starved grid) off the O(chain²) insertion-sort path. It
// reports false when the grid cannot be meaningfully refined (degenerate
// span, or the new width would not at least halve the old), so a cluster of
// simultaneous events stops triggering rebuilds once width bottoms out.
// Correctness never depends on it: bucketOf stays monotone on the new grid
// and every pending event is re-bucketed before the drain resumes, so the
// (time, index) emission order is unchanged.
func (q *bucketQueue) refine(b int) bool {
	if !(q.invW > 0) {
		return false
	}
	w := 1 / q.invW
	start := q.lo + float64(b)*w
	span := q.hi - start
	if !(span > 0) {
		return false
	}
	// Size the new grid from the hot bucket's density, not the average: the
	// hot bucket's width w should split into ~counts[b]/4 cells, so the new
	// width is w/(counts[b]/4) and the remaining span needs span/newW
	// buckets. (For uniformly dense events — a starved estimate rather
	// than clustering — this reduces to total-pending/4 buckets.) Clamped
	// in float space before conversion: the product can far exceed int
	// range.
	nbF := span / w * float64(q.counts[b]) / 4
	nb := 1 << 17
	if nbF < float64(nb) {
		nb = int(nbF)
	}
	if nb < 16 {
		nb = 16
	}
	newW := span / float64(nb)
	if !(newW > 0) || newW > w/2 {
		return false
	}
	// Gather every pending event (all live in buckets >= b: earlier buckets
	// are drained, and the exhausted scratch holds nothing), recycling the
	// list nodes as we go.
	q.spill = q.spill[:0]
	for i := b; i < q.nb; i++ {
		h := q.heads[i]
		for h != 0 {
			n := &q.nodes[h-1]
			q.spill = append(q.spill, n.ev)
			next := n.next
			n.next = q.free
			q.free = h
			h = next
		}
	}
	q.setGrid(start, nb, 1/newW)
	q.splits++
	for i := range q.spill {
		q.push(q.spill[i])
	}
	q.spill = q.spill[:0]
	return true
}

// insertSorted places ev into the sorted remainder scratch[pos:]. Every
// element there is strictly greater than the last popped event, and ev is
// too (a continuation's time is >= its predecessor's, with the same index),
// so ordering stays exact.
func (q *bucketQueue) insertSorted(ev pkEvent) {
	lo, hi := q.pos, len(q.scratch)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(&q.scratch[mid], &ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.scratch = append(q.scratch, pkEvent{})
	copy(q.scratch[lo+1:], q.scratch[lo:])
	q.scratch[lo] = ev
}

// collect flattens bucket b's list into scratch, sorted, recycling the
// nodes. Returns false when the bucket was empty.
func (q *bucketQueue) collect(b int) bool {
	h := q.heads[b]
	if h == 0 {
		return false
	}
	q.heads[b] = 0
	q.counts[b] = 0
	q.scratch = q.scratch[:0]
	q.pos = 0
	for h != 0 {
		n := &q.nodes[h-1]
		q.scratch = append(q.scratch, n.ev)
		next := n.next
		n.next = q.free
		q.free = h
		h = next
	}
	slices.SortFunc(q.scratch, func(a, b pkEvent) int {
		if eventLess(&a, &b) {
			return -1
		}
		return 1
	})
	return true
}

// pop returns the next event of the current bucket, if any.
//
//repro:hotpath
func (q *bucketQueue) pop() (pkEvent, bool) {
	if q.pos < len(q.scratch) {
		ev := q.scratch[q.pos]
		q.pos++
		return ev, true
	}
	return pkEvent{}, false
}

// programFeed supplies flow programs in non-decreasing (Start, Index)
// order, bucket by bucket: admitThrough admits every not-yet-admitted
// program whose Start falls in bucket <= b into the player. A nil feed
// means every program was admitted eagerly up front (segment workers).
type programFeed interface {
	admitThrough(b int, pl *player)
}

// sliceFeed feeds from a Start-sorted program slice (checkpointed replay:
// the index keeps its programs sorted anyway, and lazy admission keeps
// queue memory O(concurrently active flows) over a wide window).
type sliceFeed struct {
	progs []FlowProgram
	next  int
}

func (f *sliceFeed) admitThrough(b int, pl *player) {
	for f.next < len(f.progs) && pl.q.bucketOf(f.progs[f.next].Start) <= b {
		pl.admit(&f.progs[f.next])
		f.next++
	}
}

// sourceFeed feeds from the live phase-1 pass (the serial generator). The
// arrival process guarantees every member flow of a future session starts
// at or after the arrival clock, so once the clock's bucket passes b every
// program for bucket b has been generated — and because the bucket queue
// orders events natively, a freshly generated program admits immediately,
// whatever its Start: its first-packet event lands in a bucket at or past
// the arrival bucket, always ahead of the drain. No intermediate sort
// structure is needed at all, and memory stays O(active flows).
type sourceFeed struct {
	src     *programSource
	horizon float64
	emit    func(FlowProgram) // bound once; nextSession's per-flow callback
}

func newSourceFeed(src *programSource, horizon float64, pl *player) *sourceFeed {
	f := &sourceFeed{src: src, horizon: horizon}
	f.emit = func(p FlowProgram) { pl.admit(&p) }
	return f
}

func (f *sourceFeed) admitThrough(b int, pl *player) {
	for f.src.peekArrival() < f.horizon && pl.q.bucketOf(f.src.peekArrival()) <= b {
		f.src.nextSession(f.horizon, f.emit)
	}
}

// player emits the packets of a program population with time in [lo, hi),
// in (time, index) order. Admission is lazy through the feed (or eager via
// admit before the first step); each admitted flow fast-forwards in O(1) to
// its first packet at or after lo via the closed-form shot inverse — packets
// before the window (a warm-up, a segment's past) are never synthesised.
type player struct {
	lo, hi float64
	q      bucketQueue
	feed   programFeed
	progs  []FlowProgram // arena of active programs, slots recycled
	free   []int32
}

// initPlayer prepares a player over [lo, hi) of the generator clock.
// estEvents sizes the bucket grid (see initQueue). A player can be
// re-initialised after draining: arena and queue storage carry over, so a
// synthesis worker replays many segments with one player and no per-segment
// allocation.
func (pl *player) initPlayer(lo, hi float64, estEvents int, feed programFeed) {
	pl.lo, pl.hi = lo, hi
	pl.feed = feed
	pl.progs = pl.progs[:0]
	pl.free = pl.free[:0]
	pl.q.initQueue(lo, hi, estEvents)
}

// putProg stores an active program in the arena.
func (pl *player) putProg(p *FlowProgram) int32 {
	if n := len(pl.free); n > 0 {
		slot := pl.free[n-1]
		pl.free = pl.free[:n-1]
		pl.progs[slot] = *p
		return slot
	}
	pl.progs = append(pl.progs, *p)
	return int32(len(pl.progs) - 1)
}

// admit fast-forwards one program to its first packet at or after lo and
// queues it; programs with no packet inside [lo, hi) are dropped without
// touching the arena.
func (pl *player) admit(p *FlowProgram) {
	k := p.FirstPacketNotBefore(pl.lo)
	if k >= p.NumPackets() {
		return
	}
	sentB := k * p.PktBytes
	if t := p.Start + p.offsetAt(sentB); t < pl.hi {
		slot := pl.putProg(p)
		pl.q.push(pkEvent{time: t, sentB: int64(sentB), index: p.Index, prog: slot})
	}
}

// advance moves the drain to the next non-empty bucket, admitting each
// bucket's programs at entry — before any of its events can pop, which is
// what pins the global emission order. A bucket found hot at entry (its
// chain exceeds hotBucketEvents) first refines the grid over the remaining
// window and rescans, so clustered workloads sort in small buckets instead
// of insertion-sorting one huge one. Returns false once every bucket is
// drained (at which point a sourceFeed has consumed its phase-1 pass to the
// horizon, finalising the flow counters).
func (pl *player) advance() bool {
	q := &pl.q
	for q.cur < q.nb-1 {
		b := q.cur + 1
		if pl.feed != nil {
			pl.feed.admitThrough(b, pl)
		}
		if int(q.counts[b]) > hotBucketEvents && q.refine(b) {
			continue // grid rebuilt over [bucket b's start, hi); rescan
		}
		q.cur = b
		if q.collect(b) {
			return true
		}
	}
	return false
}

// step returns the next packet: its generator-clock time, wire size, and
// flow header. ok is false once the window is exhausted.
//
//repro:hotpath
func (pl *player) step() (t float64, pkt int, hdr netpkt.Header, ok bool) {
	for {
		ev, have := pl.q.pop()
		if !have {
			if !pl.advance() {
				return 0, 0, netpkt.Header{}, false
			}
			continue
		}
		prog := &pl.progs[ev.prog]
		pkt = prog.PktBytes
		if rem := prog.SizeB - int(ev.sentB); rem < pkt {
			pkt = rem
		}
		hdr = prog.Hdr
		t = ev.time
		if next := int(ev.sentB) + pkt; next < prog.SizeB {
			if nt := prog.Start + prog.offsetAt(next); nt < pl.hi {
				pl.q.push(pkEvent{time: nt, sentB: int64(next), index: ev.index, prog: ev.prog})
				return t, pkt, hdr, true
			}
		}
		// Flow finished (or its next packet is past the window): recycle its
		// arena slot.
		pl.free = append(pl.free, ev.prog)
		return t, pkt, hdr, true
	}
}

// play drives step to exhaustion, handing each packet to emit; emit
// returning false stops early.
//
//repro:hotpath
func (pl *player) play(emit func(t float64, pkt int, hdr netpkt.Header) bool) {
	for {
		t, pkt, hdr, ok := pl.step()
		if !ok {
			return
		}
		if !emit(t, pkt, hdr) {
			return
		}
	}
}

// estimateEvents guesses the pending-emission count for a span of trace, to
// size the bucket grid (~8 packets per flow at the default mix, like
// GenerateAll's capacity estimate). No correctness rides on it.
func estimateEvents(duration, lambda float64) int {
	return capacityEstimate(duration * lambda * 8)
}

// pullFeed adapts a pull callback supplying Start-ordered flow programs to
// the player's bucket-by-bucket admission: because the supply is ordered, a
// bucket is complete the moment the next pending program starts past it —
// the same seal invariant the trace generator's arrival clock provides.
type pullFeed struct {
	next    func() (FlowProgram, bool)
	pending FlowProgram
	have    bool
	done    bool
}

func (f *pullFeed) admitThrough(b int, pl *player) {
	for !f.done {
		if !f.have {
			p, ok := f.next()
			if !ok {
				f.done = true
				return
			}
			f.pending, f.have = p, true
		}
		if pl.q.bucketOf(f.pending.Start) > b {
			return
		}
		pl.admit(&f.pending)
		f.have = false
	}
}

// PlayPrograms replays a lazily-supplied sequence of flow programs over
// [lo, hi) of their clock, emitting packets in the canonical (time, flow
// admission index) order with times rebased to lo. next must return
// programs in non-decreasing Start order with distinct Index values, and is
// consumed on demand — memory stays O(concurrently active flows) however
// many programs the sequence holds. estEvents sizes the bucket grid (a
// mis-estimate costs constants, never correctness: the grid refines itself
// on hot buckets). emit returning false stops the replay. This is the face
// external packet generators (e.g. the §VII-C model-driven generator in
// gen) ride so they share the trace pipeline's player instead of
// materialising and sorting.
func PlayPrograms(lo, hi float64, estEvents int, next func() (FlowProgram, bool), emit func(Record) bool) {
	var pl player
	pl.initPlayer(lo, hi, estEvents, &pullFeed{next: next})
	pl.play(func(t float64, pkt int, hdr netpkt.Header) bool {
		hdr.TotalLen = uint16(pkt)
		return emit(Record{Time: t - lo, Hdr: hdr})
	})
}
