package trace

import (
	"sync"
	"sync/atomic"

	"repro/internal/netpkt"
)

// Block is a struct-of-arrays batch of packet records: the batch-columnar
// unit the measurement pipeline moves packets in. Parallel columns hold each
// packet's timestamp, wire length, and the two packed header words of
// netpkt.Packed — so flow-key derivation, rate binning and interval
// splitting are tight loops over plain integer/float columns instead of
// per-record virtual calls over 44-byte headers. The packing is lossless:
// Record(i) reconstructs the exact Record an AppendRecord stored.
//
// Invariant: all four columns always have equal length.
type Block struct {
	// Times holds packet timestamps in seconds since the stream origin.
	Times []float64
	// Sizes holds wire lengths in bytes (the IPv4 TotalLen).
	Sizes []uint16
	// Srcs holds the packed (src IP, src port, protocol) column.
	Srcs []uint64
	// Dsts holds the packed (dst IP, dst port, TTL) column.
	Dsts []uint64
}

// BlockSize is the default capacity blocks travel at: large enough that
// per-block costs (channel handoff, key-column derivation setup) amortise to
// noise per packet, small enough that a block plus its derived key columns
// stays cache-resident.
const BlockSize = 256

// Len returns the number of packets in the block.
func (b *Block) Len() int { return len(b.Times) }

// Reset empties the block, keeping column storage.
func (b *Block) Reset() {
	b.Times = b.Times[:0]
	b.Sizes = b.Sizes[:0]
	b.Srcs = b.Srcs[:0]
	b.Dsts = b.Dsts[:0]
}

// Append adds one packet from its packed representation.
func (b *Block) Append(t float64, size uint16, src, dst uint64) {
	b.Times = append(b.Times, t)
	b.Sizes = append(b.Sizes, size)
	b.Srcs = append(b.Srcs, src)
	b.Dsts = append(b.Dsts, dst)
}

// AppendRecord packs one record into the block.
func (b *Block) AppendRecord(r Record) {
	src, dst := r.Hdr.Packed()
	b.Append(r.Time, r.Hdr.TotalLen, src, dst)
}

// AppendRebased appends src's packets [lo, hi) with their times shifted by
// -offset (the interval-local rebasing of the partitioner, done during the
// copy it must make anyway).
func (b *Block) AppendRebased(src *Block, lo, hi int, offset float64) {
	n := len(b.Times)
	b.Times = append(b.Times, src.Times[lo:hi]...)
	if offset != 0 {
		for i := n; i < len(b.Times); i++ {
			b.Times[i] -= offset
		}
	}
	b.Sizes = append(b.Sizes, src.Sizes[lo:hi]...)
	b.Srcs = append(b.Srcs, src.Srcs[lo:hi]...)
	b.Dsts = append(b.Dsts, src.Dsts[lo:hi]...)
}

// Record reconstructs packet i as a Record (the record-at-a-time view kept
// for consumers outside the batch path).
func (b *Block) Record(i int) Record {
	return Record{
		Time: b.Times[i],
		Hdr:  netpkt.HeaderFromPacked(b.Srcs[i], b.Dsts[i], b.Sizes[i]),
	}
}

// Slice returns a view over packets [lo, hi) sharing the block's storage.
func (b *Block) Slice(lo, hi int) Block {
	return Block{
		Times: b.Times[lo:hi],
		Sizes: b.Sizes[lo:hi],
		Srcs:  b.Srcs[lo:hi],
		Dsts:  b.Dsts[lo:hi],
	}
}

// blockPool recycles blocks once their consumer has copied or measured the
// packets, bounding a pipeline's block allocations to the in-flight window
// instead of the stream length.
var blockPool = sync.Pool{}

// liveBlocks counts blocks taken from GetBlock and not yet returned through
// PutBlock — the runtime complement of the static poolcheck analyzer. The
// chaos suite snapshots it around a pipeline run: any unwind path (error,
// cancellation, panic recovery) that skips a PutBlock shows up as a nonzero
// delta. One atomic add per block (256 packets) is noise on the hot path.
var liveBlocks atomic.Int64

// LiveBlocks returns the number of pool blocks currently checked out (taken
// by GetBlock, not yet handed to PutBlock). With no pipeline in flight it
// must be back at its pre-run value; leak checks assert exactly that.
func LiveBlocks() int64 { return liveBlocks.Load() }

// GetBlock returns an empty block with BlockSize column capacity, recycled
// when possible.
func GetBlock() *Block {
	liveBlocks.Add(1)
	if b, _ := blockPool.Get().(*Block); b != nil {
		b.Reset()
		return b
	}
	return &Block{
		Times: make([]float64, 0, BlockSize),
		Sizes: make([]uint16, 0, BlockSize),
		Srcs:  make([]uint64, 0, BlockSize),
		Dsts:  make([]uint64, 0, BlockSize),
	}
}

// PutBlock returns a drained block to the pool once no consumer can touch
// its columns again. Safe for any block: only usefully-sized ones are kept.
func PutBlock(b *Block) {
	if b == nil {
		return
	}
	liveBlocks.Add(-1)
	if cap(b.Times) < BlockSize {
		return
	}
	blockPool.Put(b)
}

// BlockCost returns the approximate resident bytes of one pooled block whose
// columns hold up to n records — the unit a membudget reservation charges
// for an in-flight block. Pool blocks never shrink below BlockSize capacity,
// so smaller n still costs a full block; the constant covers the four slice
// headers and the Block itself.
func BlockCost(n int) int64 {
	if n < BlockSize {
		n = BlockSize
	}
	// 8 (Times) + 2 (Sizes) + 8 (Srcs) + 8 (Dsts) bytes per record.
	return int64(n)*26 + 128
}
