package trace

import (
	"testing"

	"repro/internal/dist"
)

func windowTestConfig(t *testing.T) Config {
	t.Helper()
	size, err := dist.NewBoundedPareto(1.3, 3000, 300000)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := dist.LognormalFromMoments(250e3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Duration:  30,
		Lambda:    40,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Constant{V: 1},
		Warmup:    10,
		Seed:      33,
	}
}

// A window must reproduce exactly the full trace's records restricted to
// [Lo, Hi), rebased to Lo — and reproduce them again on replay.
func TestWindowMatchesFullTrace(t *testing.T) {
	cfg := windowTestConfig(t)
	all, _, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 10.0, 20.0
	var want []Record
	for _, r := range all {
		if r.Time >= lo && r.Time < hi {
			r.Time -= lo
			want = append(want, r)
		}
	}
	w, err := NewWindow(cfg, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if w.Duration() != hi-lo {
		t.Fatalf("window duration %g, want %g", w.Duration(), hi-lo)
	}
	for replay := 0; replay < 2; replay++ {
		got := w.Materialize()
		if len(got) != len(want) {
			t.Fatalf("replay %d: %d records, want %d", replay, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replay %d: record %d = %+v, want %+v", replay, i, got[i], want[i])
			}
		}
		if len(got) == 0 {
			t.Fatal("window unexpectedly empty")
		}
	}
}

// Breaking out of a window iteration early must leave later replays intact
// (each call builds a fresh generator).
func TestWindowReplayAfterEarlyBreak(t *testing.T) {
	cfg := windowTestConfig(t)
	w, err := NewWindow(cfg, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range w.Records() {
		n++
		if n == 3 {
			break
		}
	}
	full := w.Materialize()
	if len(full) < 3 {
		t.Fatalf("replay after early break saw %d records, want >= 3", len(full))
	}
}

func TestWindowValidation(t *testing.T) {
	cfg := windowTestConfig(t)
	if _, err := NewWindow(cfg, -1, 5); err == nil {
		t.Fatal("negative lo should be rejected")
	}
	if _, err := NewWindow(cfg, 5, 5); err == nil {
		t.Fatal("empty window should be rejected")
	}
	bad := cfg
	bad.Duration = 0
	if _, err := NewWindow(bad, 0, 5); err == nil {
		t.Fatal("invalid config should be rejected")
	}
}
