package trace

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/netpkt"
	"repro/internal/stats"
)

// smallConfig returns a quick-to-generate config with the given shot
// exponent distribution.
func smallConfig(seed int64, shotB dist.Sampler) Config {
	size, _ := dist.NewBoundedPareto(1.3, 2000, 200000)
	rate, _ := dist.LognormalFromMoments(200e3, 1)
	return Config{
		Duration:  30,
		Lambda:    80,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     shotB,
		// Sessions spread flows over ~20 s, so a warm-up is needed for the
		// window to see the stationary flow arrival rate.
		Warmup: 90,
		Seed:   seed,
	}
}

func TestConfigValidation(t *testing.T) {
	size, _ := dist.NewBoundedPareto(1.3, 2000, 200000)
	rate, _ := dist.LognormalFromMoments(200e3, 1)
	bad := []Config{
		{},
		{Duration: 10},
		{Duration: 10, Lambda: 5},
		{Duration: 10, Lambda: 5, SizeBytes: size, RateBps: rate, ShotB: dist.Constant{V: 1}, PktBytes: 10},
		{Duration: 10, Lambda: 5, SizeBytes: size, RateBps: rate, ShotB: dist.Constant{V: 1}, PktBytes: 70000},
		{Duration: 10, Lambda: 5, SizeBytes: size, RateBps: rate, ShotB: dist.Constant{V: 1}, FlowsPerSession: 0.5},
		{Duration: 10, Lambda: 5, SizeBytes: size, RateBps: rate, ShotB: dist.Constant{V: 1}, SessionFlowGapSec: -1},
		{Duration: 10, Lambda: 5, SizeBytes: size, RateBps: rate, ShotB: dist.Constant{V: 1}, UDPFraction: 1.5},
		{Duration: 10, Lambda: 5, SizeBytes: size, RateBps: rate, ShotB: dist.Constant{V: 1}, Prefixes: -1},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestGeneratorTimeOrdered(t *testing.T) {
	g, err := NewGenerator(smallConfig(1, dist.Constant{V: 1}))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	n := 0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if r.Time < prev {
			t.Fatalf("packet %d out of order: %g < %g", n, r.Time, prev)
		}
		if r.Time < 0 || r.Time >= 30 {
			t.Fatalf("packet %d outside trace horizon: t=%g", n, r.Time)
		}
		prev = r.Time
		n++
	}
	if n == 0 {
		t.Fatal("generator produced no packets")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, sa, err := GenerateAll(smallConfig(7, dist.Constant{V: 2}))
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := GenerateAll(smallConfig(7, dist.Constant{V: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || sa != sb {
		t.Fatalf("same seed produced different traces: %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c, _, err := GenerateAll(smallConfig(8, dist.Constant{V: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGeneratorFlowArrivalRate(t *testing.T) {
	cfg := smallConfig(3, dist.Constant{V: 1})
	cfg.Duration = 60
	_, s, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.FlowRate-cfg.Lambda)/cfg.Lambda > 0.12 {
		t.Fatalf("flow rate %g, want ≈ %g", s.FlowRate, cfg.Lambda)
	}
}

func TestGeneratorMeanRateMatchesLambdaES(t *testing.T) {
	// Corollary 1 at generation level: avg rate ≈ λ·E[S].
	size, _ := dist.NewBoundedPareto(1.3, 2000, 200000)
	cfg := smallConfig(4, dist.Constant{V: 1})
	cfg.Duration = 120
	_, s, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Lambda * size.Mean() * 8
	// Truncation at the horizon loses the tail of in-flight flows, so the
	// realised rate is slightly below λE[S]·8; allow 15%.
	if s.AvgRateBps < want*0.8 || s.AvgRateBps > want*1.1 {
		t.Fatalf("avg rate %g, want ≈ %g (λE[S])", s.AvgRateBps, want)
	}
}

func TestGeneratorPacketSizes(t *testing.T) {
	cfg := smallConfig(5, dist.Constant{V: 0})
	cfg.PktBytes = 576
	recs, _, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Hdr.TotalLen == 0 || r.Hdr.TotalLen > 576 {
			t.Fatalf("record %d has size %d, want (0,576]", i, r.Hdr.TotalLen)
		}
	}
}

func TestGeneratorFlowByteConservation(t *testing.T) {
	// Sum of packet sizes per 5-tuple must equal the flow's drawn size
	// (for flows fully inside the horizon). We verify total bytes match
	// the summary and that per-flow sums are consistent across packets.
	cfg := smallConfig(6, dist.Constant{V: 1})
	recs, s, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	perFlow := map[netpkt.FlowKey]int64{}
	for _, r := range recs {
		total += int64(r.Hdr.TotalLen)
		perFlow[r.Hdr.Key5Tuple()] += int64(r.Hdr.TotalLen)
	}
	if total != s.Bytes {
		t.Fatalf("sum of packet sizes %d != summary bytes %d", total, s.Bytes)
	}
	// Flows that started during warm-up but are still transmitting in the
	// window appear as 5-tuples without being counted in Summary.Flows
	// (which counts in-window arrivals), so the 5-tuple count slightly
	// exceeds the flow count — but not by more than the carryover margin.
	if n := int64(len(perFlow)); n < s.Flows || n > s.Flows*110/100 {
		t.Fatalf("5-tuples %d vs generated flows %d (expected a small carryover excess)", n, s.Flows)
	}
	// At least 40 bytes per flow (minimum flow size).
	for k, b := range perFlow {
		if b < 40 {
			t.Fatalf("flow %v carried %d bytes, want >= 40", k, b)
		}
	}
}

func TestShotExponentControlsPacing(t *testing.T) {
	// For b=0 packets are evenly spaced; for b=2 the first half of the
	// flow's duration carries far fewer bytes than the second half.
	// Generate single-flow traces by using a tiny lambda and long duration.
	mk := func(b float64) []Record {
		size := dist.Constant{V: 100_000} // ~67 packets
		rate := dist.Constant{V: 200e3}   // D = 4 s
		cfg := Config{
			Duration:  100,
			Lambda:    0.05,
			SizeBytes: size,
			RateBps:   rate,
			ShotB:     dist.Constant{V: b},
			// Plain independent flows: with the default session clustering a
			// tiny lambda makes sessions so rare that a seed can roll zero.
			FlowsPerSession: 1,
			Seed:            9,
		}
		recs, _, err := GenerateAll(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	frontBytes := func(recs []Record) float64 {
		// Bytes sent in the first half of one flow's active period.
		byFlow := map[netpkt.FlowKey][]Record{}
		for _, r := range recs {
			k := r.Hdr.Key5Tuple()
			byFlow[k] = append(byFlow[k], r)
		}
		var frac []float64
		for _, pkts := range byFlow {
			if len(pkts) < 30 {
				continue
			}
			sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
			t0, t1 := pkts[0].Time, pkts[len(pkts)-1].Time
			mid := (t0 + t1) / 2
			var front, total float64
			for _, p := range pkts {
				total += float64(p.Hdr.TotalLen)
				if p.Time <= mid {
					front += float64(p.Hdr.TotalLen)
				}
			}
			frac = append(frac, front/total)
		}
		if len(frac) == 0 {
			t.Fatal("no large flows found")
		}
		return stats.Mean(frac)
	}
	f0 := frontBytes(mk(0))
	f2 := frontBytes(mk(2))
	// Rectangular: ~50% in the first half. Parabolic: (1/2)^3 = 12.5%.
	if math.Abs(f0-0.5) > 0.08 {
		t.Fatalf("b=0 front-half fraction = %g, want ≈ 0.5", f0)
	}
	if f2 > 0.25 {
		t.Fatalf("b=2 front-half fraction = %g, want ≈ 0.125", f2)
	}
}

func TestGeneratorPrefixConcentration(t *testing.T) {
	cfg := smallConfig(10, dist.Constant{V: 1})
	cfg.Prefixes = 1024
	recs, s, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows := map[netpkt.FlowKey]bool{}
	prefixes := map[netpkt.PrefixKey]bool{}
	for _, r := range recs {
		flows[r.Hdr.Key5Tuple()] = true
		prefixes[r.Hdr.KeyPrefix()] = true
	}
	if len(prefixes) >= len(flows) {
		t.Fatalf("prefix aggregation did not reduce flow count: %d prefixes, %d flows",
			len(prefixes), len(flows))
	}
	// The paper reports about an order of magnitude reduction (§VI-A).
	ratio := float64(len(flows)) / float64(len(prefixes))
	if ratio < 2 {
		t.Fatalf("aggregation ratio %.1f too small (flows=%d prefixes=%d of %d flows generated)",
			ratio, len(flows), len(prefixes), s.Flows)
	}
}

func TestMergeSorted(t *testing.T) {
	mk := func(times ...float64) []Record {
		out := make([]Record, len(times))
		for i, tt := range times {
			out[i] = Record{Time: tt}
		}
		return out
	}
	got := MergeSorted(mk(1, 3, 5), mk(2, 4, 6))
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if got[i].Time != w {
			t.Fatalf("merged[%d] = %g, want %g", i, got[i].Time, w)
		}
	}
	if len(MergeSorted(nil, nil)) != 0 {
		t.Fatal("merge of empties should be empty")
	}
	if got := MergeSorted(mk(1), nil); len(got) != 1 || got[0].Time != 1 {
		t.Fatal("merge with empty lost records")
	}
}

func TestRecordBits(t *testing.T) {
	r := Record{Hdr: netpkt.Header{TotalLen: 1500}}
	if r.Bits() != 12000 {
		t.Fatalf("Bits = %g, want 12000", r.Bits())
	}
}
