package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netpkt"
)

// Checkpoints is a replay index over one trace: the full phase-1 flow
// program list plus, every Every seconds, the set of flows still active at
// the checkpoint boundary. A Window attached to it replays any [lo, hi)
// sub-stream in O(window packets + flows active at the preceding
// checkpoint), instead of regenerating the whole trace prefix the way a
// plain Window must — the difference between O(prefix) and O(window) for
// deep-offset replay into a multi-hour trace.
//
// Building the index runs phase 1 once (a few RNG draws per flow, no packet
// work) and holds every program in memory (~100 bytes per flow), which is
// what buys the O(1) jump: replay never re-runs the RNG. For the multi-hour
// end of the Table I suite that is tens of MB — far below one materialised
// analysis interval — but it is a per-trace cost, so share one Checkpoints
// across windows of the same trace.
type Checkpoints struct {
	cfg   Config // defaulted
	every float64
	// progs holds every flow program of the trace, sorted by (Start, Index):
	// a window's fresh arrivals are a binary-searched contiguous run.
	progs []FlowProgram
	// active[j] indexes (into progs) the flows with Start < b_j < End at
	// checkpoint boundary b_j = Warmup + j·every: the carry-over a window
	// starting in (b_j, b_j+every] must replay in addition to the run of
	// fresh arrivals at [b_j, hi).
	active [][]int32
	// idx, when non-nil, replaces progs/active entirely: programs and
	// active lists are pulled from it on demand (the out-of-core path — a
	// store footer streams them from disk), so no program is resident
	// outside the ones a replay is actively playing.
	idx ProgramIndex
}

// ProgramIndex is an out-of-core checkpoint index: the same start-sorted
// program list and per-boundary active-flow sets a Checkpoints holds
// resident, served on demand instead — the trace store's footer implements
// it by delta-decoding programs straight off the file mapping. Boundary j
// sits at Warmup + j·Every() on the generator clock, exactly like the
// in-memory index. Implementations must be safe for concurrent use by
// independent replays.
type ProgramIndex interface {
	// Every returns the checkpoint spacing in seconds.
	Every() float64
	// Flows returns the number of indexed flow programs.
	Flows() int
	// Boundaries returns the number of checkpoint boundaries
	// (int(Duration/Every) + 1, like the in-memory index).
	Boundaries() int
	// ActiveAt appends the programs active at boundary j (those with
	// Start < b_j < End) to buf and returns the extended slice, in the
	// index's (Start, Index) program order.
	ActiveAt(j int, buf []FlowProgram) []FlowProgram
	// ProgramsFrom returns a fresh pull iterator over the programs with
	// Start >= from, in (Start, Index) order; ok is false once the list is
	// exhausted. Iterators are independent: each replay drives its own.
	ProgramsFrom(from float64) func() (p FlowProgram, ok bool)
}

// NewCheckpoints validates cfg, runs the phase-1 program pass over the whole
// trace and builds checkpoints every everySec seconds. Smaller everySec
// means less carry-over scanning per replay but more index memory.
func NewCheckpoints(cfg Config, everySec float64) (*Checkpoints, error) {
	if !(everySec > 0) {
		return nil, fmt.Errorf("trace: checkpoint spacing must be > 0, got %g", everySec)
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	progs, _, err := collectPrograms(c)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(progs, func(i, j int) bool {
		if progs[i].Start != progs[j].Start {
			return progs[i].Start < progs[j].Start
		}
		return progs[i].Index < progs[j].Index
	})
	nb := int(c.Duration/everySec) + 1
	ck := &Checkpoints{cfg: c, every: everySec, progs: progs, active: make([][]int32, nb)}
	for i, p := range progs {
		// Register the flow at every boundary it straddles: active[j] ⇔
		// boundary(j) > Start && boundary(j) < End, with boundary() the one
		// canonical float expression shared with replay so a flow landing
		// exactly on a boundary is classified identically by the builder's
		// "strictly after Start" and replay's fresh-arrival search — in
		// active[j] or in the fresh run, never both, never neither. The
		// grand total of the lists is Σ_flows ⌈D/every⌉ — linear in the
		// trace for any fixed spacing.
		jFirst := int((p.Start-c.Warmup)/everySec) + 1
		if jFirst < 0 {
			jFirst = 0
		}
		// The division is within an ulp of the truth; settle the boundary
		// cases with the canonical expression itself.
		for jFirst > 0 && ck.boundary(jFirst-1) > p.Start {
			jFirst--
		}
		for jFirst < nb && ck.boundary(jFirst) <= p.Start {
			jFirst++
		}
		for j := jFirst; j < nb && ck.boundary(j) < p.End(); j++ {
			ck.active[j] = append(ck.active[j], int32(i))
		}
	}
	return ck, nil
}

// NewCheckpointsFromIndex builds a replay index whose programs and active
// lists stream from idx instead of living resident — the footprint fix for
// multi-hour traces, where the in-memory index holds ~100 B per flow. cfg
// must be the exact configuration the indexed trace was generated with
// (replay itself is RNG-free, but the warm-up, duration and boundary
// arithmetic must agree with the builder's); windows replay bit-identically
// to NewCheckpoints over the same cfg.
func NewCheckpointsFromIndex(cfg Config, idx ProgramIndex) (*Checkpoints, error) {
	if idx == nil {
		return nil, fmt.Errorf("trace: nil program index")
	}
	if !(idx.Every() > 0) {
		return nil, fmt.Errorf("trace: checkpoint spacing must be > 0, got %g", idx.Every())
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if nb := int(c.Duration/idx.Every()) + 1; idx.Boundaries() != nb {
		return nil, fmt.Errorf("trace: index has %d boundaries, config needs %d", idx.Boundaries(), nb)
	}
	return &Checkpoints{cfg: c, every: idx.Every(), idx: idx}, nil
}

// boundary returns checkpoint j's position on the generator clock — the
// single expression every boundary comparison goes through.
func (c *Checkpoints) boundary(j int) float64 {
	return c.cfg.Warmup + float64(j)*c.every
}

// Every returns the checkpoint spacing in seconds.
func (c *Checkpoints) Every() float64 { return c.every }

// Flows returns the number of indexed flow programs.
func (c *Checkpoints) Flows() int {
	if c.idx != nil {
		return c.idx.Flows()
	}
	return len(c.progs)
}

// Window returns a replayable window over [lo, hi) of the trace that
// regenerates its packets from the nearest checkpoint at or before lo.
// The records are bit-identical to those of a plain NewWindow over the same
// config and bounds.
func (c *Checkpoints) Window(lo, hi float64) (Window, error) {
	if lo < 0 || !(hi > lo) {
		return Window{}, fmt.Errorf("trace: window bounds must satisfy 0 <= lo < hi, got [%g, %g)", lo, hi)
	}
	return Window{Lo: lo, Hi: hi, cfg: c.cfg, ck: c}, nil
}

// replay yields the window's packets from the checkpoint index: carry-over
// flows from the checkpoint at or before lo plus the binary-searched run of
// fresh arrivals in [b_j, hi), each fast-forwarded in O(1) to its first
// packet at or after lo. Emission order is (time, flow admission index),
// identical to the serial generator's; times are rebased to lo. Returns
// false when the consumer stopped early.
func (c *Checkpoints) replay(lo, hi float64, yield func(Record) bool) bool {
	warmup := c.cfg.Warmup
	horizon := warmup + c.cfg.Duration
	// A packet at generator-clock time t is in the window iff its
	// trace-relative time (t - warmup, the exact expression the serial path
	// rebases with) lies in [lo, hi) and t precedes the horizon. The scan
	// bounds below locate candidates on the absolute clock; warmup+lo and
	// (t-warmup) >= lo can disagree by an ulp when the sum rounds, so the
	// scan is widened by two ulps each way and each packet is settled by the
	// exact membership test.
	loScan := c.cfg.Warmup + lo
	loScan = math.Nextafter(math.Nextafter(loScan, math.Inf(-1)), math.Inf(-1))
	hiScan := warmup + hi
	if hiScan > horizon {
		hiScan = horizon // serial truncation: no packet reaches the horizon
	} else {
		hiScan = math.Nextafter(math.Nextafter(hiScan, math.Inf(1)), math.Inf(1))
	}
	nb := len(c.active)
	if c.idx != nil {
		nb = c.idx.Boundaries()
	}
	j := int(lo / c.every)
	if j >= nb {
		j = nb - 1
	}
	// The checkpoint must sit at or before every candidate packet; float
	// division can overshoot by one when lo lands on a boundary.
	for j > 0 && c.boundary(j) > loScan {
		j--
	}
	bAbs := c.boundary(j)

	// Carry-over flows are active at the checkpoint already, so they admit
	// eagerly; the fresh-arrival run — Start ∈ [b_j, hiScan), located by
	// binary search in the start-sorted index (flows starting in (b_j, lo)
	// postdate the checkpoint and belong to this run, not to active[j]) —
	// admits lazily inside the player as replay reaches each start.
	var pl player
	if c.idx != nil {
		// Out-of-core: carry-over programs are materialised just for this
		// replay, and fresh arrivals pull from the index on demand — the
		// resident footprint is O(active flows + one decode buffer), never
		// O(trace flows).
		carry := c.idx.ActiveAt(j, nil)
		next := c.idx.ProgramsFrom(bAbs)
		feed := &pullFeed{next: func() (FlowProgram, bool) {
			p, ok := next()
			if !ok || p.Start >= hiScan {
				return FlowProgram{}, false
			}
			return p, true
		}}
		pl.initPlayer(loScan, hiScan, estimateEvents(hi-lo, c.cfg.Lambda)+len(carry)*8, feed)
		for i := range carry {
			pl.admit(&carry[i])
		}
	} else {
		first := sort.Search(len(c.progs), func(i int) bool { return c.progs[i].Start >= bAbs })
		end := first + sort.Search(len(c.progs)-first, func(i int) bool { return c.progs[first+i].Start >= hiScan })
		pl.initPlayer(loScan, hiScan, (end-first+len(c.active[j]))*8,
			&sliceFeed{progs: c.progs[first:end]})
		for _, idx := range c.active[j] {
			pl.admit(&c.progs[idx])
		}
	}

	ok := true
	pl.play(func(t float64, pkt int, hdr netpkt.Header) bool {
		// Exact membership: rebase first (bit-identical to the serial
		// record time), then apply the window bounds to the rebased time.
		rel := t - warmup
		if rel < lo || rel >= hi || t >= horizon {
			return true
		}
		hdr.TotalLen = uint16(pkt)
		ok = yield(Record{Time: rel - lo, Hdr: hdr})
		return ok
	})
	return ok
}
