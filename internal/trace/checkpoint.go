package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netpkt"
)

// Checkpoints is a replay index over one trace: the full phase-1 flow
// program list plus, every Every seconds, the set of flows still active at
// the checkpoint boundary. A Window attached to it replays any [lo, hi)
// sub-stream in O(window packets + flows active at the preceding
// checkpoint), instead of regenerating the whole trace prefix the way a
// plain Window must — the difference between O(prefix) and O(window) for
// deep-offset replay into a multi-hour trace.
//
// Building the index runs phase 1 once (a few RNG draws per flow, no packet
// work) and holds every program in memory (~100 bytes per flow), which is
// what buys the O(1) jump: replay never re-runs the RNG. For the multi-hour
// end of the Table I suite that is tens of MB — far below one materialised
// analysis interval — but it is a per-trace cost, so share one Checkpoints
// across windows of the same trace.
type Checkpoints struct {
	cfg   Config // defaulted
	every float64
	// progs holds every flow program of the trace, sorted by (Start, Index):
	// a window's fresh arrivals are a binary-searched contiguous run.
	progs []FlowProgram
	// active[j] indexes (into progs) the flows with Start < b_j < End at
	// checkpoint boundary b_j = Warmup + j·every: the carry-over a window
	// starting in (b_j, b_j+every] must replay in addition to the run of
	// fresh arrivals at [b_j, hi).
	active [][]int32
}

// NewCheckpoints validates cfg, runs the phase-1 program pass over the whole
// trace and builds checkpoints every everySec seconds. Smaller everySec
// means less carry-over scanning per replay but more index memory.
func NewCheckpoints(cfg Config, everySec float64) (*Checkpoints, error) {
	if !(everySec > 0) {
		return nil, fmt.Errorf("trace: checkpoint spacing must be > 0, got %g", everySec)
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	progs, _, err := collectPrograms(c)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(progs, func(i, j int) bool {
		if progs[i].Start != progs[j].Start {
			return progs[i].Start < progs[j].Start
		}
		return progs[i].Index < progs[j].Index
	})
	nb := int(c.Duration/everySec) + 1
	ck := &Checkpoints{cfg: c, every: everySec, progs: progs, active: make([][]int32, nb)}
	for i, p := range progs {
		// Register the flow at every boundary it straddles: active[j] ⇔
		// boundary(j) > Start && boundary(j) < End, with boundary() the one
		// canonical float expression shared with replay so a flow landing
		// exactly on a boundary is classified identically by the builder's
		// "strictly after Start" and replay's fresh-arrival search — in
		// active[j] or in the fresh run, never both, never neither. The
		// grand total of the lists is Σ_flows ⌈D/every⌉ — linear in the
		// trace for any fixed spacing.
		jFirst := int((p.Start-c.Warmup)/everySec) + 1
		if jFirst < 0 {
			jFirst = 0
		}
		// The division is within an ulp of the truth; settle the boundary
		// cases with the canonical expression itself.
		for jFirst > 0 && ck.boundary(jFirst-1) > p.Start {
			jFirst--
		}
		for jFirst < nb && ck.boundary(jFirst) <= p.Start {
			jFirst++
		}
		for j := jFirst; j < nb && ck.boundary(j) < p.End(); j++ {
			ck.active[j] = append(ck.active[j], int32(i))
		}
	}
	return ck, nil
}

// boundary returns checkpoint j's position on the generator clock — the
// single expression every boundary comparison goes through.
func (c *Checkpoints) boundary(j int) float64 {
	return c.cfg.Warmup + float64(j)*c.every
}

// Every returns the checkpoint spacing in seconds.
func (c *Checkpoints) Every() float64 { return c.every }

// Flows returns the number of indexed flow programs.
func (c *Checkpoints) Flows() int { return len(c.progs) }

// Window returns a replayable window over [lo, hi) of the trace that
// regenerates its packets from the nearest checkpoint at or before lo.
// The records are bit-identical to those of a plain NewWindow over the same
// config and bounds.
func (c *Checkpoints) Window(lo, hi float64) (Window, error) {
	if lo < 0 || !(hi > lo) {
		return Window{}, fmt.Errorf("trace: window bounds must satisfy 0 <= lo < hi, got [%g, %g)", lo, hi)
	}
	return Window{Lo: lo, Hi: hi, cfg: c.cfg, ck: c}, nil
}

// replay yields the window's packets from the checkpoint index: carry-over
// flows from the checkpoint at or before lo plus the binary-searched run of
// fresh arrivals in [b_j, hi), each fast-forwarded in O(1) to its first
// packet at or after lo. Emission order is (time, flow admission index),
// identical to the serial generator's; times are rebased to lo. Returns
// false when the consumer stopped early.
func (c *Checkpoints) replay(lo, hi float64, yield func(Record) bool) bool {
	warmup := c.cfg.Warmup
	horizon := warmup + c.cfg.Duration
	// A packet at generator-clock time t is in the window iff its
	// trace-relative time (t - warmup, the exact expression the serial path
	// rebases with) lies in [lo, hi) and t precedes the horizon. The scan
	// bounds below locate candidates on the absolute clock; warmup+lo and
	// (t-warmup) >= lo can disagree by an ulp when the sum rounds, so the
	// scan is widened by two ulps each way and each packet is settled by the
	// exact membership test.
	loScan := c.cfg.Warmup + lo
	loScan = math.Nextafter(math.Nextafter(loScan, math.Inf(-1)), math.Inf(-1))
	hiScan := warmup + hi
	if hiScan > horizon {
		hiScan = horizon // serial truncation: no packet reaches the horizon
	} else {
		hiScan = math.Nextafter(math.Nextafter(hiScan, math.Inf(1)), math.Inf(1))
	}
	j := int(lo / c.every)
	if j >= len(c.active) {
		j = len(c.active) - 1
	}
	// The checkpoint must sit at or before every candidate packet; float
	// division can overshoot by one when lo lands on a boundary.
	for j > 0 && c.boundary(j) > loScan {
		j--
	}
	bAbs := c.boundary(j)

	// Carry-over flows are active at the checkpoint already, so they admit
	// eagerly; the fresh-arrival run — Start ∈ [b_j, hiScan), located by
	// binary search in the start-sorted index (flows starting in (b_j, lo)
	// postdate the checkpoint and belong to this run, not to active[j]) —
	// admits lazily inside the player as replay reaches each start.
	first := sort.Search(len(c.progs), func(i int) bool { return c.progs[i].Start >= bAbs })
	end := first + sort.Search(len(c.progs)-first, func(i int) bool { return c.progs[first+i].Start >= hiScan })
	var pl player
	pl.initPlayer(loScan, hiScan, (end-first+len(c.active[j]))*8,
		&sliceFeed{progs: c.progs[first:end]})
	for _, idx := range c.active[j] {
		pl.admit(&c.progs[idx])
	}

	ok := true
	pl.play(func(t float64, pkt int, hdr netpkt.Header) bool {
		// Exact membership: rebase first (bit-identical to the serial
		// record time), then apply the window bounds to the rebased time.
		rel := t - warmup
		if rel < lo || rel >= hi || t >= horizon {
			return true
		}
		hdr.TotalLen = uint16(pkt)
		ok = yield(Record{Time: rel - lo, Hdr: hdr})
		return ok
	})
	return ok
}
