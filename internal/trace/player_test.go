package trace

import (
	"sort"
	"testing"

	"repro/internal/dist/rng"
	"repro/internal/netpkt"
)

// playerEmission is one packet as the player reports it.
type playerEmission struct {
	t     float64
	pkt   int
	index uint32 // recovered via SrcPort, which the test sets to the flow index
}

// bruteForce computes the exact expected emission sequence of a program
// population over [lo, hi): every packet time from the closed-form pacing,
// filtered to the window, sorted by the canonical (time, index) order.
func bruteForce(progs []FlowProgram, lo, hi float64) []playerEmission {
	var out []playerEmission
	for i := range progs {
		p := &progs[i]
		for k := 0; k < p.NumPackets(); k++ {
			t := p.PacketTime(k)
			if t < lo || t >= hi {
				continue
			}
			out = append(out, playerEmission{t: t, pkt: p.PacketSize(k), index: p.Index})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].t != out[j].t {
			return out[i].t < out[j].t
		}
		return out[i].index < out[j].index
	})
	return out
}

func collectPlayer(pl *player) []playerEmission {
	var out []playerEmission
	pl.play(func(t float64, pkt int, hdr netpkt.Header) bool {
		out = append(out, playerEmission{t: t, pkt: pkt, index: uint32(hdr.SrcPort)})
		return true
	})
	return out
}

func comparePlayer(t *testing.T, label string, got, want []playerEmission) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d packets, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: packet %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// adversarialPrograms builds a population designed to stress the bucket
// queue's ordering: random overlapping flows, plus runs of exact clones
// (identical Start and packet times, distinct indices — only the admission
// index separates their emissions), all tagged with SrcPort = index so the
// test can recover the flow from the emitted header.
func adversarialPrograms(seed int64, n int) []FlowProgram {
	r := rng.New(seed)
	var progs []FlowProgram
	idx := uint32(0)
	add := func(start, dur float64, size int, invBp1 float64) {
		idx++
		progs = append(progs, FlowProgram{
			Index:    idx,
			Start:    start,
			Duration: dur,
			SizeB:    size,
			InvBp1:   invBp1,
			PktBytes: 1500,
			Hdr:      netpkt.Header{SrcPort: uint16(idx)},
		})
	}
	for i := 0; i < n; i++ {
		start := r.Float64() * 30
		dur := 0.01 + r.Float64()*12
		size := 40 + r.Intn(30000)
		inv := 1 / (1 + r.Float64()*2.5)
		add(start, dur, size, inv)
		if i%7 == 0 {
			// Exact clones: equal float64 packet times, index-only ordering.
			for c := 0; c < 3; c++ {
				add(start, dur, size, inv)
			}
		}
	}
	return progs
}

// The player must reproduce the brute-force (time, index) order exactly —
// eager admission (segments), lazy slice-feed admission (checkpoint
// replay), shallow and deep windows, and a degenerate one-bucket span
// alike.
func TestPlayerMatchesBruteForce(t *testing.T) {
	progs := adversarialPrograms(11, 300)
	windows := []struct{ lo, hi float64 }{
		{0, 50},           // everything
		{3.7, 9.2},        // interior window: fast-forward + truncation
		{20, 20.001},      // sliver: nb floors at minimum, heavy clamping
		{0.5, 0.5 + 1e-9}, // degenerate span: one-bucket fallback
	}
	for _, w := range windows {
		want := bruteForce(progs, w.lo, w.hi)

		var eager player
		eager.initPlayer(w.lo, w.hi, len(want), nil)
		for i := range progs {
			eager.admit(&progs[i])
		}
		comparePlayer(t, "eager", collectPlayer(&eager), want)

		sorted := append([]FlowProgram(nil), progs...)
		sort.SliceStable(sorted, func(i, j int) bool {
			if sorted[i].Start != sorted[j].Start {
				return sorted[i].Start < sorted[j].Start
			}
			return sorted[i].Index < sorted[j].Index
		})
		var lazy player
		lazy.initPlayer(w.lo, w.hi, len(want), &sliceFeed{progs: sorted})
		comparePlayer(t, "lazy", collectPlayer(&lazy), want)

		// A wildly wrong event estimate must not change the order, only the
		// constants.
		var tiny player
		tiny.initPlayer(w.lo, w.hi, 0, nil)
		for i := range progs {
			tiny.admit(&progs[i])
		}
		comparePlayer(t, "tiny-estimate", collectPlayer(&tiny), want)
	}
}

// Early stop from the consumer must not wedge or disorder the player.
func TestPlayerEarlyStop(t *testing.T) {
	progs := adversarialPrograms(13, 60)
	want := bruteForce(progs, 0, 50)
	var pl player
	pl.initPlayer(0, 50, len(want), nil)
	for i := range progs {
		pl.admit(&progs[i])
	}
	var got []playerEmission
	pl.play(func(tm float64, pkt int, hdr netpkt.Header) bool {
		got = append(got, playerEmission{t: tm, pkt: pkt, index: uint32(hdr.SrcPort)})
		return len(got) < 17
	})
	if len(got) != 17 && len(got) != len(want) {
		t.Fatalf("early stop emitted %d packets", len(got))
	}
	comparePlayer(t, "prefix", got, want[:len(got)])
	// Resuming after the stop continues the exact sequence.
	rest := collectPlayer(&pl)
	comparePlayer(t, "resume", rest, want[len(got):])
}

// A degenerate load — thousands of events clustered into a sliver of a long
// window, on a grid sized for a handful per bucket — must trigger the hot
// bucket refine (adaptive grid rebuild) and still emit the exact
// brute-force order. Without the refine this shape degrades to quadratic
// insertion-sorting of one giant bucket.
func TestPlayerRefinesHotBuckets(t *testing.T) {
	r := rng.New(17)
	var progs []FlowProgram
	for i := 0; i < 2000; i++ {
		// All flows start inside [0, 0.4) of a 4000 s window: with the
		// default grid every first-packet event lands in bucket 0.
		progs = append(progs, FlowProgram{
			Index:    uint32(i + 1),
			Start:    r.Float64() * 0.4,
			Duration: 0.01 + r.Float64()*2,
			SizeB:    40 + r.Intn(9000),
			InvBp1:   1 / (1 + r.Float64()),
			PktBytes: 1500,
			Hdr:      netpkt.Header{SrcPort: uint16(i + 1)},
		})
	}
	want := bruteForce(progs, 0, 4000)
	var pl player
	pl.initPlayer(0, 4000, len(progs)*2, nil)
	for i := range progs {
		pl.admit(&progs[i])
	}
	comparePlayer(t, "hot-bucket", collectPlayer(&pl), want)
	if pl.q.splits == 0 {
		t.Fatal("clustered load drained without a grid refine")
	}
}

// A player must be reusable across windows (the synthesis workers run many
// segments through one player): a second initPlayer after a full drain
// replays exactly, storage reuse notwithstanding.
func TestPlayerReuseAcrossWindows(t *testing.T) {
	progs := adversarialPrograms(19, 200)
	var pl player
	for _, w := range []struct{ lo, hi float64 }{{0, 50}, {5, 9}, {0, 50}} {
		want := bruteForce(progs, w.lo, w.hi)
		pl.initPlayer(w.lo, w.hi, len(want), nil)
		for i := range progs {
			pl.admit(&progs[i])
		}
		comparePlayer(t, "reuse", collectPlayer(&pl), want)
	}
}
