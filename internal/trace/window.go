package trace

import (
	"fmt"
	"iter"
)

// Window is a replayable sub-stream of a synthetic trace: the packets of
// cfg's trace whose times fall in [Lo, Hi), rebased to Lo. Because the
// generator is deterministic under its seed, the window regenerates the same
// records on every iteration — so a consumer that needs one analysis
// interval's packets more than once (reference figures, per-interval
// re-measurement) can replay them on demand instead of holding an
// O(interval) buffer alive.
//
// Replay cost for a plain window is proportional to the trace prefix up to
// Hi (the generator must be run from its origin to reproduce the flows in
// progress at Lo), so windows are cheap near the trace start and are meant
// for occasional replay, not as the bulk measurement path — the streaming
// pipeline partitions a single generator pass for that. A window obtained
// from Checkpoints.Window instead replays from the nearest checkpoint in
// O(window + active flows), making deep offsets as cheap as shallow ones.
type Window struct {
	Lo, Hi float64
	cfg    Config
	ck     *Checkpoints // non-nil: replay from the checkpoint index
}

// NewWindow validates cfg and the bounds and returns a replayable window
// over [lo, hi) of cfg's trace.
func NewWindow(cfg Config, lo, hi float64) (Window, error) {
	// Validate once via a throwaway generator so Records cannot fail later:
	// regeneration uses the exact cfg accepted here.
	if _, err := NewGenerator(cfg); err != nil {
		return Window{}, err
	}
	if lo < 0 || !(hi > lo) {
		return Window{}, fmt.Errorf("trace: window bounds must satisfy 0 <= lo < hi, got [%g, %g)", lo, hi)
	}
	return Window{Lo: lo, Hi: hi, cfg: cfg}, nil
}

// Duration returns the window length Hi - Lo.
func (w Window) Duration() float64 { return w.Hi - w.Lo }

// Records returns the window's packets in time order, with times rebased to
// Lo (so they lie in [0, Duration)). Each call regenerates the trace from
// its seed and yields identical records; generation stops as soon as the
// stream passes Hi.
func (w Window) Records() iter.Seq[Record] {
	if w.ck != nil {
		return func(yield func(Record) bool) {
			w.ck.replay(w.Lo, w.Hi, yield)
		}
	}
	return func(yield func(Record) bool) {
		g, err := NewGenerator(w.cfg)
		if err != nil {
			// NewWindow already validated cfg; an error here is impossible
			// short of memory corruption, and yielding nothing keeps the
			// iterator contract total.
			return
		}
		for rec := range g.Records() {
			if rec.Time < w.Lo {
				continue
			}
			if rec.Time >= w.Hi {
				return
			}
			rec.Time -= w.Lo
			if !yield(rec) {
				return
			}
		}
	}
}

// Materialize collects the window's records into a slice (tests and small
// reference windows; large windows should stream via Records).
func (w Window) Materialize() []Record {
	var out []Record
	for rec := range w.Records() {
		out = append(out, rec)
	}
	return out
}
