package trace

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dist"
)

// collectParallel drains StreamParallel into a slice.
func collectParallel(t *testing.T, cfg Config, workers int) ([]Record, Summary) {
	t.Helper()
	var recs []Record
	sum, err := StreamParallel(cfg, workers, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, sum
}

// The sharded synthesiser must reproduce the serial generator bit for bit —
// same records, same order, same summary — at any worker count, on configs
// with warm-up carry-over, mixed shot exponents and session clustering.
func TestStreamParallelMatchesSerial(t *testing.T) {
	cfgs := map[string]Config{
		"warmup-mixed-b": smallConfig(21, dist.Uniform{Lo: 1.5, Hi: 2.5}),
		"rectangular":    smallConfig(22, dist.Constant{V: 0}),
		"no-warmup": func() Config {
			c := smallConfig(23, dist.Constant{V: 2})
			c.Warmup = 0
			return c
		}(),
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			want, wantSum, err := GenerateAll(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("serial generator produced no packets")
			}
			for _, workers := range []int{2, 3, 16} {
				got, gotSum := collectParallel(t, cfg, workers)
				if gotSum != wantSum {
					t.Fatalf("workers=%d: summary %+v, want %+v", workers, gotSum, wantSum)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: record %d = %+v, want %+v", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// A long-duration config shards into many segments per worker; the merge
// must still be seamless across every internal boundary.
func TestStreamParallelManySegments(t *testing.T) {
	size, _ := dist.NewBoundedPareto(1.3, 2000, 100000)
	rate, _ := dist.LognormalFromMoments(150e3, 1)
	cfg := Config{
		Duration:  90,
		Lambda:    25,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Uniform{Lo: 0.5, Hi: 2.5},
		Warmup:    30,
		Seed:      5,
	}
	want, wantSum, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSum := collectParallel(t, cfg, 4) // 16 segments over 90 s
	if gotSum != wantSum {
		t.Fatalf("summary %+v, want %+v", gotSum, wantSum)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// workers <= 1 must take the serial path; invalid configs must be rejected
// before any goroutine spawns; the materialising wrapper must agree with
// GenerateAll.
func TestStreamParallelFallbackAndValidation(t *testing.T) {
	cfg := smallConfig(31, dist.Constant{V: 1})
	want, wantSum, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := collectParallel(t, cfg, 1)
	if len(got) != len(want) {
		t.Fatalf("workers=1: %d records, want %d", len(got), len(want))
	}
	all, allSum, err := GenerateAllParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(want) || allSum != wantSum {
		t.Fatalf("GenerateAllParallel: %d records %+v, want %d %+v", len(all), allSum, len(want), wantSum)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("GenerateAllParallel record %d differs", i)
		}
	}
	if _, err := StreamParallel(Config{}, 4, func(Record) error { return nil }); err == nil {
		t.Fatal("invalid config should be rejected")
	}
	if _, _, err := GenerateAllParallel(Config{}, 4); err == nil {
		t.Fatal("invalid config should be rejected by the wrapper too")
	}
}

// An fn error must abort the stream promptly, surface the error, and leave
// no goroutine stuck (the drain discipline); the summary snapshot counts the
// records delivered up to and including the failing one.
func TestStreamParallelAbortsOnError(t *testing.T) {
	cfg := smallConfig(32, dist.Constant{V: 1})
	boom := fmt.Errorf("boom")
	n := 0
	sum, err := StreamParallel(cfg, 4, func(Record) error {
		n++
		if n == 100 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if sum.Packets != 100 {
		t.Fatalf("summary snapshot counted %d packets, want 100", sum.Packets)
	}
}

// Phase 1 alone must agree with the generator on the flow-level summary and
// emit programs whose packet arithmetic matches the event-heap stepping.
func TestProgramsMatchGenerator(t *testing.T) {
	cfg := smallConfig(41, dist.Uniform{Lo: 0.5, Hi: 2.5})
	progs, sum, err := Programs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, gsum, err := GenerateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Flows != gsum.Flows || sum.OnePktFlows != gsum.OnePktFlows || sum.FlowRate != gsum.FlowRate {
		t.Fatalf("phase-1 summary %+v disagrees with generator %+v", sum, gsum)
	}
	if len(progs) == 0 {
		t.Fatal("no programs emitted")
	}
	for i, p := range progs {
		if p.Index == 0 || p.SizeB < 40 || p.Duration <= 0 || p.PktBytes <= 0 {
			t.Fatalf("program %d malformed: %+v", i, p)
		}
		// PacketTime must replicate the player's byte-cursor stepping bit
		// for bit at every byte position.
		sentB := 0
		for k := 0; k < p.NumPackets(); k++ {
			if got, want := p.PacketTime(k), p.Start+p.offsetAt(sentB); got != want {
				t.Fatalf("program %d packet %d: PacketTime %v, player stepping %v", i, k, got, want)
			}
			sentB += p.PacketSize(k)
		}
		if sentB != p.SizeB {
			t.Fatalf("program %d: packet sizes sum to %d, want %d", i, sentB, p.SizeB)
		}
	}
}

// FirstPacketNotBefore must be the exact inverse of PacketTime: the first
// index at or after t for boundary times, mid-gap times and out-of-range
// times alike.
func TestFirstPacketNotBefore(t *testing.T) {
	cfg := smallConfig(42, dist.Uniform{Lo: 0, Hi: 3})
	progs, _, err := Programs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(p FlowProgram, q float64) {
		k := p.FirstPacketNotBefore(q)
		n := p.NumPackets()
		if k < n && p.PacketTime(k) < q {
			t.Fatalf("flow %d: packet %d at %v precedes t=%v", p.Index, k, p.PacketTime(k), q)
		}
		if k > 0 && p.PacketTime(k-1) >= q {
			t.Fatalf("flow %d: packet %d at %v already >= t=%v", p.Index, k-1, p.PacketTime(k-1), q)
		}
	}
	for _, p := range progs[:min(len(progs), 200)] {
		check(p, p.Start-1)
		check(p, p.End()+1)
		for k := 0; k < p.NumPackets(); k++ {
			pt := p.PacketTime(k)
			check(p, pt) // exactly on a packet
			check(p, math.Nextafter(pt, math.Inf(1)))
			check(p, math.Nextafter(pt, math.Inf(-1)))
		}
	}
}
