package estimate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
)

// syntheticFlows draws n flows with Poisson(λ) arrivals, exponential sizes
// and derived durations.
func syntheticFlows(n int, lambda float64, seed int64) []flow.Flow {
	rng := rand.New(rand.NewSource(seed))
	out := make([]flow.Flow, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / lambda
		bytes := int64(2000 + rng.ExpFloat64()*10000)
		rate := 1e5 * math.Exp(0.3*rng.NormFloat64())
		d := float64(bytes) * 8 / rate
		out[i] = flow.Flow{Start: t, End: t + d, Bytes: bytes, Packets: 5}
	}
	return out
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Fatal("alpha 0 should be rejected")
	}
	if _, err := NewTracker(1.5); err == nil {
		t.Fatal("alpha > 1 should be rejected")
	}
}

func TestTrackerNotReadyInitially(t *testing.T) {
	tr, err := NewTracker(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ready() {
		t.Fatal("empty tracker should not be ready")
	}
	if _, err := tr.Mean(); err == nil {
		t.Fatal("Mean on empty tracker should error")
	}
	if _, err := tr.Variance(core.Triangular); err == nil {
		t.Fatal("Variance on empty tracker should error")
	}
	if _, err := tr.CoV(core.Triangular); err == nil {
		t.Fatal("CoV on empty tracker should error")
	}
	tr.Observe(flow.Flow{Start: 0, End: 1, Bytes: 100, Packets: 2})
	if tr.Ready() {
		t.Fatal("one flow should not make the tracker ready")
	}
}

func TestTrackerIgnoresZeroDuration(t *testing.T) {
	tr, _ := NewTracker(0.1)
	tr.Observe(flow.Flow{Start: 1, End: 1, Bytes: 100})
	if tr.Flows() != 0 {
		t.Fatal("zero-duration flow should be ignored")
	}
}

func TestTrackerConvergesToPopulationParameters(t *testing.T) {
	const lambda = 50.0
	flows := syntheticFlows(40000, lambda, 1)
	tr, err := NewTracker(0.005)
	if err != nil {
		t.Fatal(err)
	}
	// Population values from the sample itself.
	var sumS, sumS2oD float64
	for _, f := range flows {
		sumS += f.SizeBits()
		sumS2oD += f.SizeBits() * f.SizeBits() / f.Duration()
	}
	n := float64(len(flows))
	for _, f := range flows {
		tr.Observe(f)
	}
	if !tr.Ready() {
		t.Fatal("tracker should be ready")
	}
	if got := tr.Lambda(); math.Abs(got-lambda)/lambda > 0.10 {
		t.Fatalf("λ̂ = %g, want ≈ %g", got, lambda)
	}
	if got := tr.MeanS(); math.Abs(got-sumS/n)/(sumS/n) > 0.15 {
		t.Fatalf("Ê[S] = %g, want ≈ %g", got, sumS/n)
	}
	// E[S²/D] is noisier (heavier tail); just require the right magnitude.
	if got := tr.MeanS2OverD(); got < 0.3*sumS2oD/n || got > 3*sumS2oD/n {
		t.Fatalf("Ê[S²/D] = %g, want within 3× of %g", got, sumS2oD/n)
	}
}

func TestTrackerMatchesBatchModel(t *testing.T) {
	flows := syntheticFlows(30000, 80, 2)
	tr, _ := NewTracker(0.002)
	for _, f := range flows {
		tr.Observe(f)
	}
	duration := flows[len(flows)-1].Start
	in, err := core.InputFromFlows(flows, duration)
	if err != nil {
		t.Fatal(err)
	}
	m, err := in.Model(core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	gotMean, err := tr.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotMean-m.Mean())/m.Mean() > 0.15 {
		t.Fatalf("online mean %g vs batch %g", gotMean, m.Mean())
	}
	gotCoV, err := tr.CoV(core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if gotCoV < m.CoV()/2 || gotCoV > m.CoV()*2 {
		t.Fatalf("online CoV %g vs batch %g", gotCoV, m.CoV())
	}
}

func TestTrackerReactsToLoadChange(t *testing.T) {
	// Double the arrival rate mid-stream: λ̂ must move toward the new rate.
	tr, _ := NewTracker(0.02)
	low := syntheticFlows(5000, 20, 3)
	for _, f := range low {
		tr.Observe(f)
	}
	before := tr.Lambda()
	// New regime: flows arriving twice as fast, starting after the old ones.
	t0 := low[len(low)-1].Start
	high := syntheticFlows(5000, 40, 4)
	for _, f := range high {
		f.Start += t0
		f.End += t0
		tr.Observe(f)
	}
	after := tr.Lambda()
	if !(after > before*1.5) {
		t.Fatalf("λ̂ did not track load increase: %g -> %g", before, after)
	}
}

func TestTrackerBandwidth(t *testing.T) {
	flows := syntheticFlows(20000, 60, 5)
	tr, _ := NewTracker(0.005)
	for _, f := range flows {
		tr.Observe(f)
	}
	c1, err := tr.Bandwidth(0.01, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	c10, err := tr.Bandwidth(0.10, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := tr.Mean()
	if !(c1 > c10 && c10 > mu) {
		t.Fatalf("bandwidth ordering violated: C(1%%)=%g C(10%%)=%g mean=%g", c1, c10, mu)
	}
	if _, err := tr.Bandwidth(0, core.Triangular); err == nil {
		t.Fatal("ε=0 should be rejected")
	}
	empty, _ := NewTracker(0.1)
	if _, err := empty.Bandwidth(0.01, core.Triangular); err == nil {
		t.Fatal("bandwidth on empty tracker should error")
	}
}

func TestParamHelpersConsistency(t *testing.T) {
	// The §V-G closed forms must agree with the full model on a population.
	flows := syntheticFlows(5000, 30, 6)
	duration := flows[len(flows)-1].Start
	in, err := core.InputFromFlows(flows, duration)
	if err != nil {
		t.Fatal(err)
	}
	m, err := in.Model(core.Parabolic)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.MeanFromParams(in.Lambda, in.MeanS); math.Abs(got-m.Mean()) > 1e-9*m.Mean() {
		t.Fatalf("MeanFromParams %g vs model %g", got, m.Mean())
	}
	if got := core.VarianceFromParams(in.Lambda, in.MeanS2OverD, core.Parabolic); math.Abs(got-m.Variance()) > 1e-9*m.Variance() {
		t.Fatalf("VarianceFromParams %g vs model %g", got, m.Variance())
	}
	if got := core.CoVFromParams(in.Lambda, in.MeanS, in.MeanS2OverD, core.Parabolic); math.Abs(got-m.CoV()) > 1e-9 {
		t.Fatalf("CoVFromParams %g vs model %g", got, m.CoV())
	}
	if core.CoVFromParams(0, 0, 1, core.Parabolic) != 0 {
		t.Fatal("zero-mean CoV should be 0")
	}
}
