// Package estimate implements the paper's §V-G online estimation of the
// three model parameters — λ, E[S], E[S²/D] — with exponentially weighted
// moving averages. The paper proposes exactly this scheme: "when the tool
// indicates the departure of a flow of size S, the estimate can be updated
// as Ê ← (1-α)Ê + αS", the analogy being TCP's smoothed RTT estimator.
//
// A Tracker consumes completed flows (e.g. NetFlow-style expiry events) and
// at any moment yields the model's mean, variance and coefficient of
// variation for a chosen shot shape, without storing any per-flow state.
package estimate

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/stats"
)

// Tracker maintains online EWMA estimates of the model parameters.
type Tracker struct {
	meanS    *stats.EWMA // E[S] in bits
	meanS2oD *stats.EWMA // E[S²/D] in bits²/s
	gap      *stats.EWMA // mean inter-arrival of flows, for λ = 1/gap
	lastT    float64
	seenOne  bool
	flows    int64
}

// NewTracker returns a tracker with EWMA gain alpha in (0, 1]. Smaller α
// reacts more slowly to load changes (the paper's trade-off).
func NewTracker(alpha float64) (*Tracker, error) {
	mk := func() (*stats.EWMA, error) { return stats.NewEWMA(alpha) }
	meanS, err := mk()
	if err != nil {
		return nil, fmt.Errorf("estimate: %w", err)
	}
	meanS2oD, _ := mk()
	gap, _ := mk()
	return &Tracker{meanS: meanS, meanS2oD: meanS2oD, gap: gap}, nil
}

// Observe consumes one completed flow. Flows must be reported in order of
// their start times for the λ estimate to be meaningful (flow-export tools
// emit approximately this order); sizes and durations have no ordering
// requirement. Zero-duration flows are ignored (the measurement pipeline
// discards single-packet flows anyway).
func (t *Tracker) Observe(f flow.Flow) {
	d := f.Duration()
	if !(d > 0) {
		return
	}
	s := f.SizeBits()
	t.meanS.Add(s)
	t.meanS2oD.Add(s * s / d)
	if t.seenOne {
		gap := f.Start - t.lastT
		if gap >= 0 {
			t.gap.Add(gap)
		}
	}
	t.lastT = f.Start
	t.seenOne = true
	t.flows++
}

// Flows returns the number of flows observed.
func (t *Tracker) Flows() int64 { return t.flows }

// Lambda returns the estimated flow arrival rate (0 until two flows seen).
func (t *Tracker) Lambda() float64 {
	g := t.gap.Value()
	if g <= 0 {
		return 0
	}
	return 1 / g
}

// MeanS returns the estimated E[S] in bits.
func (t *Tracker) MeanS() float64 { return t.meanS.Value() }

// MeanS2OverD returns the estimated E[S²/D] in bits²/s.
func (t *Tracker) MeanS2OverD() float64 { return t.meanS2oD.Value() }

// Ready reports whether enough flows have been seen to produce estimates.
func (t *Tracker) Ready() bool { return t.flows >= 2 && t.Lambda() > 0 }

// Mean returns the model's E[R] = λ·E[S] from the current estimates.
func (t *Tracker) Mean() (float64, error) {
	if !t.Ready() {
		return 0, fmt.Errorf("estimate: tracker needs at least two flows")
	}
	return core.MeanFromParams(t.Lambda(), t.MeanS()), nil
}

// Variance returns the model variance for the given shot exponent.
func (t *Tracker) Variance(shot core.PowerShot) (float64, error) {
	if !t.Ready() {
		return 0, fmt.Errorf("estimate: tracker needs at least two flows")
	}
	return core.VarianceFromParams(t.Lambda(), t.MeanS2OverD(), shot), nil
}

// CoV returns the model coefficient of variation for the given shot.
func (t *Tracker) CoV(shot core.PowerShot) (float64, error) {
	if !t.Ready() {
		return 0, fmt.Errorf("estimate: tracker needs at least two flows")
	}
	return core.CoVFromParams(t.Lambda(), t.MeanS(), t.MeanS2OverD(), shot), nil
}

// Bandwidth returns the §V-E dimensioning rule C = E[R] + z_{1-ε}·σ from
// the current online estimates.
func (t *Tracker) Bandwidth(epsilon float64, shot core.PowerShot) (float64, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return 0, fmt.Errorf("estimate: congestion probability must be in (0,1), got %g", epsilon)
	}
	mu, err := t.Mean()
	if err != nil {
		return 0, err
	}
	v, err := t.Variance(shot)
	if err != nil {
		return 0, err
	}
	return mu + stats.NormalQuantile(1-epsilon)*math.Sqrt(v), nil
}
