package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg builds a minimal Package (no type info) from one source string —
// enough for Run's directive hygiene and suppression machinery, which only
// reads Files/Src.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return &Package{
		ImportPath: "fixture/p",
		Fset:       fset,
		Files:      []*ast.File{f},
		GoFiles:    []string{"p.go"},
		Src:        map[string][]byte{"p.go": []byte(src)},
	}
}

func TestDirectiveHygiene(t *testing.T) {
	src := `package p

//repro:hotpath
func A() {}

func B() {
	//repro:nondeterminism-ok
	_ = 1
}

//repro:frobnicate whatever
func C() {}
`
	diags, err := Run(parsePkg(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if got := diags[0]; got.Pos.Line != 7 || !strings.Contains(got.Message, "requires a justification") {
		t.Errorf("missing-reason diagnostic wrong: %v", got)
	}
	if got := diags[1]; got.Pos.Line != 11 || !strings.Contains(got.Message, "unknown directive //repro:frobnicate") {
		t.Errorf("unknown-directive diagnostic wrong: %v", got)
	}
}

// flagAssigns reports every assignment statement; used to pin directive
// suppression line semantics (inline = own line, own-line = next line).
var flagAssigns = &Analyzer{
	Name:        "flagassigns",
	Doc:         "test analyzer: report every assignment",
	Suppressors: []string{"alloc-ok"},
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if a, ok := n.(*ast.AssignStmt); ok {
					pass.Reportf(a.Pos(), "assignment")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionLines(t *testing.T) {
	src := `package p

func f() {
	var x int
	x = 1 //repro:alloc-ok inline directive suppresses its own line
	//repro:alloc-ok own-line directive suppresses the next line
	x = 2
	x = 3
	_ = x
}
`
	diags, err := Run(parsePkg(t, src), []*Analyzer{flagAssigns})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// x = 1 (line 5) and x = 2 (line 7) are suppressed; x = 3 (line 8) and
	// _ = x (line 9) are not.
	if len(lines) != 2 || lines[0] != 8 || lines[1] != 9 {
		t.Fatalf("suppression kept wrong lines: got %v, want [8 9]", lines)
	}
}

func TestDirectiveNotASuppressor(t *testing.T) {
	// A directive an analyzer did not register must not silence it.
	src := `package p

func f() {
	var x int
	x = 1 //repro:floateq-ok not a hotpath suppressor
	_ = x
}
`
	diags, err := Run(parsePkg(t, src), []*Analyzer{flagAssigns})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (no suppression): %v", len(diags), diags)
	}
}
