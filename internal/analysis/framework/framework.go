// Package framework is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: analyzers receive a type-checked
// package (a Pass) and report position-anchored diagnostics.
//
// The real x/tools module is deliberately not imported — the repo builds in
// hermetic environments with no module proxy — but the surface mirrors
// go/analysis closely enough that migrating an analyzer to the upstream
// framework is a mechanical rename. Three pieces the upstream splits across
// packages live together here:
//
//   - the Analyzer/Pass/Diagnostic core (this file),
//   - a package loader driving `go list -export` + the stdlib gc importer
//     (load.go), standing in for go/packages,
//   - a `go vet -vettool` protocol driver (vet.go), standing in for
//     unitchecker.
//
// Suppression is comment-directive based: a `//repro:<name> <reason>`
// comment suppresses, for analyzers that register <name> in Suppressors,
// every diagnostic on the directive's own line — or on the next line when
// the comment stands alone. Directives must carry a non-empty reason; the
// framework itself reports bare or unknown directives.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a single package and
// reports findings through pass.Report; it must not retain the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, printed with each finding
	Doc  string // one-paragraph description of the invariant

	// Suppressors lists the //repro: directive names (sans prefix) that
	// silence this analyzer's diagnostics on annotated lines.
	Suppressors []string

	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Src    map[string][]byte // filename (as in Fset positions) -> source
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Analyzer is filled by the runner.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// DirectivePrefix introduces every annotation comment the suite understands.
const DirectivePrefix = "//repro:"

// KnownDirectives maps each directive name to whether it requires a
// justification after the name. `hotpath` marks a function declaration for
// the zero-allocation check; the *-ok directives are line suppressions.
var KnownDirectives = map[string]bool{
	"hotpath":           false, // marks a function; reason optional
	"nondeterminism-ok": true,  // suppresses determinism findings
	"alloc-ok":          true,  // suppresses hotpath allocation findings
	"transcendental-ok": true,  // suppresses floatconst math.Pow/Gamma findings
	"floateq-ok":        true,  // suppresses floatconst float ==/!= findings
}

// Directive is one parsed //repro: comment.
type Directive struct {
	Name    string
	Reason  string
	Pos     token.Position
	OwnLine bool // nothing but whitespace precedes the comment on its line
}

// Lines returns the source lines this directive governs: its own line, or
// the following line when the comment stands alone.
func (d Directive) Lines() []int {
	if d.OwnLine {
		return []int{d.Pos.Line, d.Pos.Line + 1}
	}
	return []int{d.Pos.Line}
}

// ParseDirectives extracts every //repro: comment of file. src must be the
// file's source bytes (used to decide whether a comment stands alone on its
// line); a nil src degrades gracefully to treating all comments as inline.
func ParseDirectives(fset *token.FileSet, file *ast.File, src []byte) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, DirectivePrefix)
			name, reason, _ := strings.Cut(body, " ")
			pos := fset.Position(c.Pos())
			own := false
			if src != nil && pos.Offset <= len(src) {
				own = true
				for i := pos.Offset - 1; i >= 0 && src[i] != '\n'; i-- {
					if src[i] != ' ' && src[i] != '\t' {
						own = false
						break
					}
				}
			}
			out = append(out, Directive{
				Name:    name,
				Reason:  strings.TrimSpace(reason),
				Pos:     pos,
				OwnLine: own,
			})
		}
	}
	return out
}

// HasDirective reports whether a function declaration's doc comment carries
// the named directive (e.g. //repro:hotpath).
func HasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, DirectivePrefix) {
			n, _, _ := strings.Cut(strings.TrimPrefix(c.Text, DirectivePrefix), " ")
			if n == name {
				return true
			}
		}
	}
	return false
}
