package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Src        map[string][]byte
	GoFiles    []string // absolute paths, index-aligned with Files
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (run from dir, normally
// the module root) against compiler export data produced by
// `go list -export -deps`, so analysis sees exactly what the build sees
// without re-type-checking the dependency graph from source. Test files are
// never loaded: the invariants govern shipped code, and tests legitimately
// use math/rand, map iteration, and allocation.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Src:        map[string][]byte{},
	}
	for _, f := range goFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, f)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Src[path] = src
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Files = append(pkg.Files, file)
	}
	pkg.Info = NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// NewInfo allocates a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
