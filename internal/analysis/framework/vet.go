package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// VetConfig mirrors the JSON configuration `go vet -vettool` hands the tool
// for each package (cmd/go/internal/work.vetConfig). Fields the suite does
// not consume are still listed so the decoder accepts every config.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Scoped pairs an analyzer with the import paths it governs.
type Scoped struct {
	Analyzer *Analyzer
	Match    func(importPath string) bool
}

// VetVersion prints the tool identity in the exact shape cmd/go's buildID
// probe (`tool -V=full`) accepts: `name version id`, where the id is a
// content hash of the executable so edits to the tool invalidate go vet's
// result cache.
func VetVersion(name string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("sha256-%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version %s\n", name, id)
}

// VetMain implements the `go vet -vettool` protocol for one package config
// file: parse and type-check the package against the export data go vet
// supplies, run the in-scope analyzers, print findings to stderr, and exit
// non-zero when any survive. Test files are excluded — the invariant suite
// governs shipped code (tests legitimately use math/rand and maps), and
// `go vet` hands the tool test-augmented package variants.
func VetMain(cfgPath string, suite []Scoped) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(1)
	}
	// go vet caches and threads VetxOutput to dependents via PackageVetx;
	// the suite has no cross-package facts, so an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly || cfg.Compiler == "gccgo" {
		return
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 ||
		strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return
	}
	var in []*Analyzer
	for _, s := range suite {
		if s.Match == nil || s.Match(cfg.ImportPath) {
			in = append(in, s.Analyzer)
		}
	}
	if len(in) == 0 {
		return
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	pkg, err := check(fset, imp, cfg.ImportPath, cfg.Dir, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(1)
	}
	diags, err := Run(pkg, in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
		os.Exit(2)
	}
}

func readVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &VetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}
