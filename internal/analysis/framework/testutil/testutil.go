// Package testutil runs analyzers over testdata fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture lines carry
// `// want "regexp"` comments naming the diagnostics they must produce, and
// the runner fails the test on any missing or unexpected finding.
package testutil

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run analyzes the single fixture package in dir (absolute or relative to
// the test's working directory) with the analyzers and checks the findings
// against the fixture's `// want` comments. Directive suppression and the
// framework's own directive hygiene checks apply, so fixtures can also pin
// the suppression path.
func Run(t *testing.T, dir string, analyzers ...*framework.Analyzer) {
	t.Helper()
	pkg, err := load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := framework.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, file := range pkg.GoFiles {
		src := pkg.Src[file]
		for ln, lineText := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", file, ln+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, ln+1, pat, err)
				}
				k := key{file, ln + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var missing []string
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("%s", m)
	}
}

// load parses and type-checks the fixture package in dir, resolving its
// imports (stdlib or in-module) through `go list -export`.
func load(dir string) (*framework.Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &framework.Package{
		ImportPath: "fixture/" + filepath.Base(abs),
		Dir:        abs,
		Fset:       fset,
		Src:        map[string][]byte{},
	}
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(abs, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, imp := range file.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
		pkg.Src[path] = src
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", abs)
	}

	exports, err := exportData(abs, imports)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	pkg.Info = framework.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture: %v", err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// exportData maps every transitive dependency of the fixture's imports to
// its compiler export file.
func exportData(dir string, imports map[string]bool) (map[string]string, error) {
	if len(imports) == 0 {
		return nil, nil
	}
	args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export,Error"}
	for p := range imports {
		args = append(args, p)
	}
	sort.Strings(args[4:])
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
			Error      *struct{ Err string }
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Error != nil {
			return nil, fmt.Errorf("dependency %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
