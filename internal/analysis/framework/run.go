package framework

import (
	"fmt"
	"strings"
)

// Run applies analyzers to one loaded package, applies directive
// suppression, and returns the surviving diagnostics sorted by position.
// Findings in _test.go files are dropped (vet mode can hand the framework
// test variants; the invariants govern shipped code only).
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Directive index: directive name -> filename -> governed lines.
	governed := map[string]map[string]map[int]bool{}
	var diags []Diagnostic
	for i, file := range pkg.Files {
		src := pkg.Src[pkg.GoFiles[i]]
		for _, d := range ParseDirectives(pkg.Fset, file, src) {
			needsReason, known := KnownDirectives[d.Name]
			if !known {
				diags = append(diags, Diagnostic{
					Pos: d.Pos, Analyzer: "directive",
					Message: fmt.Sprintf("unknown directive %s%s", DirectivePrefix, d.Name),
				})
				continue
			}
			if needsReason && d.Reason == "" {
				diags = append(diags, Diagnostic{
					Pos: d.Pos, Analyzer: "directive",
					Message: fmt.Sprintf("%s%s requires a justification: %s%s <why this is safe>",
						DirectivePrefix, d.Name, DirectivePrefix, d.Name),
				})
				continue
			}
			byFile := governed[d.Name]
			if byFile == nil {
				byFile = map[string]map[int]bool{}
				governed[d.Name] = byFile
			}
			lines := byFile[d.Pos.Filename]
			if lines == nil {
				lines = map[int]bool{}
				byFile[d.Pos.Filename] = lines
			}
			for _, ln := range d.Lines() {
				lines[ln] = true
			}
		}
	}

	for _, a := range analyzers {
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			Src:   pkg.Src,
		}
		name := a.Name
		supp := a.Suppressors
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			for _, s := range supp {
				if governed[s][d.Pos.Filename][d.Pos.Line] {
					return
				}
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		kept = append(kept, d)
	}
	SortDiagnostics(kept)
	return kept, nil
}
