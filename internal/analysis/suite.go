// Package analysis assembles the repo's invariant suite: which analyzer
// governs which packages. cmd/repolint (standalone and as a
// `go vet -vettool`) is a thin shell over this table.
//
// The suite enforces three invariants the measurement pipeline's
// correctness rests on (see README "Invariants"):
//
//   - determinism: pipeline output is a pure function of (seed, config) —
//     no wall clock, no math/rand, no map-iteration order;
//   - zero-allocation hot paths: functions annotated //repro:hotpath do
//     not allocate in steady state;
//   - pool discipline: trace.GetBlock/PutBlock are balanced with no use
//     after put;
//
// plus the PR-6 kernel guarantee that internal/core kernels carry no
// stray transcendentals or exact float comparisons (floatconst).
package analysis

import (
	"strings"

	"repro/internal/analysis/determinism"
	"repro/internal/analysis/floatconst"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/poolcheck"
)

// PipelinePackages are the packages under the bit-identical-output
// contract: everything a measurement byte flows through.
var PipelinePackages = []string{
	"repro/internal/trace",
	"repro/internal/flow",
	"repro/internal/timeseries",
	"repro/internal/core",
	"repro/internal/experiments",
}

// Module is the module path; the allocation and pool checks run on every
// package beneath it.
const Module = "repro"

// Suite returns the configured analyzer set.
func Suite() []framework.Scoped {
	return []framework.Scoped{
		{Analyzer: determinism.Analyzer, Match: inPipeline},
		{Analyzer: hotpath.Analyzer, Match: inModule},
		{Analyzer: poolcheck.Analyzer, Match: inModule},
		{Analyzer: floatconst.Analyzer, Match: func(p string) bool { return p == "repro/internal/core" }},
	}
}

func inPipeline(path string) bool {
	for _, p := range PipelinePackages {
		if path == p {
			return true
		}
	}
	return false
}

func inModule(path string) bool {
	return path == Module || strings.HasPrefix(path, Module+"/")
}
