// Package determinism enforces the pipeline's bit-identical-output
// contract: the suite's measurements must not depend on wall-clock time,
// global RNG state, or Go's randomized map iteration order. The paper's
// methodology (and every golden-output test in this repo) assumes a trace
// measured twice — or sharded across any number of workers — produces the
// same bytes, so the sources of silent nondeterminism are banned at vet
// time in the pipeline packages:
//
//   - importing math/rand or math/rand/v2 (the pipeline draws exclusively
//     from the seeded splittable internal/dist/rng streams);
//   - calling time.Now, time.Since, or time.Until (results must be a pure
//     function of the seed and config, never of when the run happened);
//   - ranging over a map (iteration order is deliberately randomized by
//     the runtime; ordered iteration must go through a sorted key slice).
//
// A range whose body is genuinely order-insensitive can be annotated
//
//	//repro:nondeterminism-ok <why the order cannot reach any output>
//
// on the statement's line (or alone on the line above it).
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, math/rand, and map iteration in the " +
		"deterministic pipeline packages",
	Suppressors: []string{"nondeterminism-ok"},
	Run:         run,
}

// bannedImports are stateful-RNG packages the pipeline must not touch.
var bannedImports = map[string]string{
	"math/rand":    "global/stateful RNG breaks bit-identical replay; use internal/dist/rng streams",
	"math/rand/v2": "global/stateful RNG breaks bit-identical replay; use internal/dist/rng streams",
}

// bannedTimeFuncs are wall-clock reads; a deterministic pipeline's outputs
// may not depend on when it ran.
var bannedTimeFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, imp := range file.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s is forbidden in pipeline packages: %s", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil {
					if name := fn.FullName(); bannedTimeFuncs[name] {
						pass.Reportf(n.Pos(), "call of %s is forbidden in pipeline packages: outputs must not depend on wall-clock time", name)
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "range over map %s: iteration order is nondeterministic; iterate a sorted key slice, or annotate //repro:nondeterminism-ok with why the order cannot reach any output", types.ExprString(n.X))
				}
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call's callee to a *types.Func, or nil for builtins,
// conversions, and indirect calls.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}
