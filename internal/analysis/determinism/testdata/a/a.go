// Package a is the determinism analyzer fixture: every banned source of
// nondeterminism, plus the annotated and genuinely-deterministic shapes
// that must stay silent.
package a

import (
	"math/rand" // want "import of math/rand is forbidden in pipeline packages"
	"time"
)

// Bad reads the wall clock and the global RNG.
func Bad() float64 {
	t0 := time.Now()   // want "call of time.Now is forbidden in pipeline packages"
	_ = time.Since(t0) // want "call of time.Since is forbidden in pipeline packages"
	return rand.Float64()
}

// RangeMap iterates a map in runtime-randomized order.
func RangeMap(m map[string]int) int {
	var sum int
	for _, v := range m { // want "range over map m: iteration order is nondeterministic"
		sum += v
	}
	return sum
}

// RangeMapSuppressed documents why the order cannot reach any output.
func RangeMapSuppressed(m map[string]int) int {
	var sum int
	//repro:nondeterminism-ok commutative sum, fixture for the suppression path
	for _, v := range m {
		sum += v
	}
	return sum
}

// RangeSlice is ordered iteration: no finding.
func RangeSlice(s []int) int {
	var sum int
	for _, v := range s {
		sum += v
	}
	return sum
}

// BadDirective carries a typo'd directive name, which the framework itself
// must flag.
func BadDirective() {
	//repro:nondetreminism-ok typo'd on purpose // want "unknown directive //repro:nondetreminism-ok"
	_ = 0
}
