package determinism_test

import (
	"testing"

	"repro/internal/analysis/determinism"
	"repro/internal/analysis/framework/testutil"
)

func TestDeterminism(t *testing.T) {
	testutil.Run(t, "testdata/a", determinism.Analyzer)
}
