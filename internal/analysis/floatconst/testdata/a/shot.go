package a

import "math"

// OraclePow lives in a designated scalar-oracle file (shot.go), where
// transcendentals and exact comparisons are the reference implementation's
// business: no findings here.
func OraclePow(x, y float64) float64 { return math.Pow(x, y) }

// OracleEq likewise.
func OracleEq(a, b float64) bool { return a == b }
