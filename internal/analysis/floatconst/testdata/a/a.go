// Package a is the floatconst analyzer fixture: stray transcendentals and
// exact float comparisons in a kernel file, next to the allowed zero-guard,
// NaN-test, and annotated shapes.
package a

import "math"

// Pow is a stray per-flow transcendental.
func Pow(x, y float64) float64 {
	return math.Pow(x, y) // want "math.Pow in kernel file a.go"
}

// Gamma likewise.
func Gamma(x float64) float64 {
	return math.Gamma(x) // want "math.Gamma in kernel file a.go"
}

// PowOK is documented as off the per-flow path.
func PowOK(x, y float64) float64 {
	return math.Pow(x, y) //repro:transcendental-ok fixture: construction-time only
}

// Eq and Neq compare floats exactly.
func Eq(a, b float64) bool {
	return a == b // want "float == comparison in kernel file a.go"
}

// Neq is the mirror case.
func Neq(a, b float64) bool {
	return a != b // want "float != comparison in kernel file a.go"
}

// ZeroGuard and IsNaN are the two allowed comparison shapes.
func ZeroGuard(a float64) bool { return a == 0 }

// IsNaN is the conventional x != x test.
func IsNaN(a float64) bool { return a != a }

// EqOK documents an intended exact comparison.
func EqOK(a, b float64) bool {
	return a == b //repro:floateq-ok fixture: bit-identity check is the point
}
