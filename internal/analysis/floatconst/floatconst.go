// Package floatconst guards the PR-6 kernel contract in internal/core: the
// batched model kernels carry no per-flow transcendentals beyond the single
// documented incomplete-gamma evaluation, and float comparisons in kernel
// code must not silently rely on exact equality.
//
// Outside the designated scalar-oracle files (the reference
// implementations the kernels are differential-tested against), the
// analyzer forbids:
//
//   - calls to math.Pow and math.Gamma — the kernels replace them with
//     cached coefficients, Horner polynomials, and cheap roots; a new call
//     is almost always an accidental per-flow transcendental;
//   - float ==/!= comparisons, except against an exact constant zero (the
//     conventional empty/sentinel guard) or the x != x NaN test.
//
// Justified exceptions are annotated in place:
//
//	//repro:transcendental-ok <why this call is off the per-flow path>
//	//repro:floateq-ok <why exact equality is intended>
package floatconst

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the kernel float-discipline checker.
var Analyzer = &framework.Analyzer{
	Name: "floatconst",
	Doc: "forbid math.Pow/math.Gamma and exact float equality in core " +
		"kernel files outside the scalar oracles",
	Suppressors: []string{"transcendental-ok", "floateq-ok"},
	Run:         run,
}

// OracleFiles are internal/core's scalar reference implementations: the
// slow, obviously-correct forms the batched kernels are differential-tested
// against. They are allowed transcendentals and exact comparisons; kernel
// files are not.
var OracleFiles = map[string]bool{
	"shot.go":   true, // scalar shot family: rate/size/duration closed forms
	"specfn.go": true, // special functions (incomplete gamma family)
	"model.go":  true, // scalar model faces kept as oracles for the batch kernels
	"fit.go":    true, // offline fitting, not on the per-flow path
	"tail.go":   true, // Chernoff tail search driving the scalar LST
}

var bannedMathFuncs = map[string]bool{
	"math.Pow":   true,
	"math.Gamma": true,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") || OracleFiles[name] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && bannedMathFuncs[fn.FullName()] {
						pass.Reportf(n.Pos(), "%s in kernel file %s: kernels hoist transcendentals into cached coefficients; move this to an oracle file or annotate //repro:transcendental-ok with why it is off the per-flow path", fn.FullName(), name)
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(pass, n.X) && !isFloat(pass, n.Y) {
					return true
				}
				if isZeroConst(pass, n.X) || isZeroConst(pass, n.Y) {
					return true // exact-zero sentinel guards are well-defined
				}
				if n.Op == token.NEQ && types.ExprString(n.X) == types.ExprString(n.Y) {
					return true // x != x is the conventional NaN test
				}
				pass.Reportf(n.Pos(), "float %s comparison in kernel file %s: exact float equality is almost never intended; compare against a tolerance or annotate //repro:floateq-ok with why exactness holds", n.Op, name)
			}
			return true
		})
	}
	return nil
}

func isFloat(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
