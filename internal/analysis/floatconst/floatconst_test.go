package floatconst_test

import (
	"testing"

	"repro/internal/analysis/floatconst"
	"repro/internal/analysis/framework/testutil"
)

func TestFloatConst(t *testing.T) {
	testutil.Run(t, "testdata/a", floatconst.Analyzer)
}
