// Package a is the poolcheck analyzer fixture: the balanced, deferred, and
// ownership-transfer shapes that must stay silent, and the leak / double-put
// / use-after-put shapes that must be reported.
package a

import "repro/internal/trace"

// Balanced is the idiomatic get/use/put sequence: no findings.
func Balanced() int {
	b := trace.GetBlock()
	b.Append(1, 64, 1, 2)
	n := b.Len()
	trace.PutBlock(b)
	return n
}

// Deferred releases on every exit path.
func Deferred(cond bool) int {
	b := trace.GetBlock()
	defer trace.PutBlock(b)
	if cond {
		return 0
	}
	return b.Len()
}

// BranchBalanced puts on both branches.
func BranchBalanced(cond bool) {
	b := trace.GetBlock()
	if cond {
		trace.PutBlock(b)
	} else {
		trace.PutBlock(b)
	}
}

// LoopBalanced acquires and releases per iteration.
func LoopBalanced(n int) {
	for i := 0; i < n; i++ {
		b := trace.GetBlock()
		b.Append(1, 64, 1, 2)
		trace.PutBlock(b)
	}
}

// Handoff transfers ownership to the callee: not this function's leak.
func Handoff() {
	b := trace.GetBlock()
	consume(b)
}

func consume(b *trace.Block) { trace.PutBlock(b) }

// Returned transfers ownership to the caller.
func Returned() *trace.Block {
	b := trace.GetBlock()
	return b
}

// DoublePut returns the same block twice.
func DoublePut() {
	b := trace.GetBlock()
	trace.PutBlock(b)
	trace.PutBlock(b) // want "block b returned to the pool twice: double PutBlock"
}

// DeferDouble defers a put and then also puts explicitly.
func DeferDouble() {
	b := trace.GetBlock()
	defer trace.PutBlock(b)
	trace.PutBlock(b) // want "block b returned to the pool twice: double PutBlock"
}

// UseAfterPut touches a released block.
func UseAfterPut() int {
	b := trace.GetBlock()
	trace.PutBlock(b)
	return b.Len() // want "block b used after PutBlock"
}

// CapturedUseAfterPut closes over a released block.
func CapturedUseAfterPut() func() int {
	b := trace.GetBlock()
	trace.PutBlock(b)
	return func() int { return b.Len() } // want "block b captured after PutBlock: use after put"
}

// LeakOnReturn misses the put on the early path.
func LeakOnReturn(cond bool) int {
	b := trace.GetBlock()
	if cond {
		return 0 // want "block b not returned to the pool on this return path"
	}
	n := b.Len()
	trace.PutBlock(b)
	return n
}

// LeakAtScopeEnd never puts.
func LeakAtScopeEnd() {
	b := trace.GetBlock() // want "block b not returned to the pool before going out of scope"
	b.Append(1, 64, 1, 2)
}

// Reacquire overwrites a still-held block with a fresh one.
func Reacquire() {
	b := trace.GetBlock()
	b = trace.GetBlock() // want "block b reacquired while still held: previous block leaks"
	trace.PutBlock(b)
}

// Overwrite loses the only reference.
func Overwrite() {
	b := trace.GetBlock()
	b = nil // want "block b overwritten while still held: block leaks"
	_ = b
}

// Discard drops the GetBlock result on the floor.
func Discard() {
	trace.GetBlock() // want "GetBlock result discarded: block leaks"
}

// ShipOrCancel is the cancellation-unwind idiom of the streaming spine:
// the block is either sent (ownership transfers to the consumer) or, when
// the done channel fires first, recycled before the error return. Silent —
// a select always takes one of its clauses, so there is no path on which
// the block is still held afterwards.
func ShipOrCancel(out chan<- *trace.Block, done <-chan struct{}) bool {
	b := trace.GetBlock()
	b.Append(1, 64, 1, 2)
	select {
	case out <- b:
	case <-done:
		trace.PutBlock(b)
		return false
	}
	return true
}

// ShipBoth exits inside both clauses; the select terminates the function,
// so the held-at-entry block must not be flagged at scope end.
func ShipBoth(out chan<- *trace.Block, done <-chan struct{}) bool {
	b := trace.GetBlock()
	select {
	case out <- b:
		return true
	case <-done:
		trace.PutBlock(b)
		return false
	}
}

// TryShip is the shed-mode fast path: non-blocking send, recycle on the
// default clause. Silent.
func TryShip(out chan<- *trace.Block) bool {
	b := trace.GetBlock()
	select {
	case out <- b:
		return true
	default:
		trace.PutBlock(b)
		return false
	}
}

// ShipCancelLeak forgets to recycle on the cancellation path.
func ShipCancelLeak(out chan<- *trace.Block, done <-chan struct{}) bool {
	b := trace.GetBlock()
	select {
	case out <- b:
	case <-done:
		return false // want "block b not returned to the pool on this return path"
	}
	return true
}

// ShipCancelDoublePut recycles in the done clause and then again on the
// shared fall-through path.
func ShipCancelDoublePut(out chan<- *trace.Block, done <-chan struct{}) {
	b := trace.GetBlock()
	select {
	case out <- b:
		return
	case <-done:
		trace.PutBlock(b)
	}
	trace.PutBlock(b) // want "block b returned to the pool twice: double PutBlock"
}

// envelope wraps a block with its queue metadata (the ingest-queue shape).
type envelope struct {
	seq int64
	blk *trace.Block
}

// ShipWrapped sends the block inside a keyed composite literal: ownership
// transfers to the receiver exactly as a bare send does. Silent.
func ShipWrapped(out chan<- envelope, done <-chan struct{}) bool {
	b := trace.GetBlock()
	b.Append(1, 64, 1, 2)
	select {
	case out <- envelope{seq: 1, blk: b}:
		return true
	case <-done:
		trace.PutBlock(b)
		return false
	}
}

// WrappedPositional transfers through an unkeyed composite literal too.
func WrappedPositional(out chan<- envelope) {
	b := trace.GetBlock()
	out <- envelope{1, b}
}

// BorrowedCopy is the legal consumer shape for the store read path: the
// view aliases foreign column storage (an mmap, in the reader), the
// consumer copies out of it into an owned pool block and drops the view
// without recycling it. Silent.
func BorrowedCopy(times []float64, sizes []uint16, srcs, dsts []uint64) int {
	v := trace.Block{Times: times, Sizes: sizes, Srcs: srcs, Dsts: dsts}
	out := trace.GetBlock()
	out.AppendRebased(&v, 0, len(times), 0)
	n := out.Len()
	trace.PutBlock(out)
	return n
}

// BorrowedPut recycles a column-borrowing view: the pool would hand the
// foreign storage to the next GetBlock caller.
func BorrowedPut(times []float64, sizes []uint16, srcs, dsts []uint64) {
	v := trace.Block{Times: times, Sizes: sizes, Srcs: srcs, Dsts: dsts}
	trace.PutBlock(&v) // want "block v is a borrowed view, not a pool block: PutBlock would poison the pool"
}

// BorrowedPtrPut poisons through a pointer-typed view.
func BorrowedPtrPut(times []float64) {
	b := &trace.Block{Times: times}
	trace.PutBlock(b) // want "block b is a borrowed view, not a pool block: PutBlock would poison the pool"
}

// BorrowedLiteralPut poisons with the literal inline.
func BorrowedLiteralPut(times []float64) {
	trace.PutBlock(&trace.Block{Times: times}) // want "borrowed view passed to PutBlock: pool poisoning"
}

// BorrowedDeferPut poisons through a deferred put.
func BorrowedDeferPut(times []float64) int {
	v := trace.Block{Times: times}
	defer trace.PutBlock(&v) // want "block v is a borrowed view, not a pool block: PutBlock would poison the pool"
	return v.Len()
}

// SlicePut recycles a Slice view instead of its backing block: the view
// shares the pool block's columns, so putting it both poisons the pool and
// double-frees the storage once the real block is put.
func SlicePut() {
	b := trace.GetBlock()
	b.Append(1, 64, 1, 2)
	v := b.Slice(0, 1)
	trace.PutBlock(&v) // want "block v is a borrowed view, not a pool block: PutBlock would poison the pool"
	trace.PutBlock(b)
}

// SliceRead takes a view for reading and puts only the backing block.
// Silent — the view never reaches the pool.
func SliceRead() int {
	b := trace.GetBlock()
	b.Append(1, 64, 1, 2)
	v := b.Slice(0, 1)
	n := v.Len()
	trace.PutBlock(b)
	return n
}
