package poolcheck_test

import (
	"testing"

	"repro/internal/analysis/framework/testutil"
	"repro/internal/analysis/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	testutil.Run(t, "testdata/a", poolcheck.Analyzer)
}
