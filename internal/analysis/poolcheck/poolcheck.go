// Package poolcheck enforces trace.Block pool discipline within each
// function: a block obtained from trace.GetBlock must reach trace.PutBlock
// exactly once on every path that keeps ownership, and must never be
// touched after it is returned to the pool. These are the two latent-bug
// classes of pooled columnar pipelines — a leaked block quietly degrades
// the pool into an allocator, and a use-after-put corrupts a block another
// goroutine already refilled (the corruption surfaces as a wrong
// measurement, not a crash, which is exactly what the golden-output tests
// cannot localize).
//
// The analysis is conservative and intra-procedural. A tracked block that
// escapes the function's control — returned, sent on a channel, stored
// into a field/slice/global, captured by a closure, passed to any function
// other than PutBlock, or aliased — transfers ownership and is no longer
// tracked; the analyzer only reports violations it can prove on the local
// def-use chain:
//
//   - PutBlock called twice on the same still-local block (double put),
//   - any use of a block after PutBlock (use-after-put),
//   - a block still held when its scope ends or the function returns
//     (leak), including re-acquiring into a variable that still holds an
//     unreleased block,
//   - a bare GetBlock() whose result is discarded,
//   - a borrowed view reaching PutBlock (pool poisoning): a Block composite
//     literal or Slice() result aliases foreign column storage — for the
//     store read path, a PROT_READ mmap — and recycling it would hand that
//     storage to the next GetBlock caller. Borrowed views are
//     copy-on-recycle: copy into an owned pool block, drop the view.
//
// defer PutBlock(b) releases b on every exit path and is the idiomatic
// whole-function hold.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the block-pool discipline checker.
var Analyzer = &framework.Analyzer{
	Name: "poolcheck",
	Doc:  "every trace.GetBlock must be balanced by PutBlock on all paths, with no use after put",
	Run:  run,
}

// PoolPackage is the package whose GetBlock/PutBlock pair defines the pool
// protocol. Calls are matched by resolved import path, so aliased imports
// and intra-package (bare) calls are both recognized.
const PoolPackage = "repro/internal/trace"

type state int

const (
	held     state = iota // acquired from GetBlock, not yet released
	released              // PutBlock called; any further use is a bug
	borrowed              // a column-aliasing view; must never reach PutBlock
)

// tracked carries the analysis state for the locals of one function.
type tracked struct {
	pass *framework.Pass
	// lo, hi bound the function under analysis: only variables declared
	// inside it are tracked. A captured outer variable's lifetime exceeds
	// one closure invocation, so holding it across a closure return is
	// not a leak the intra-procedural analysis can judge.
	lo, hi token.Pos
	state  map[*types.Var]state
	// deferred marks blocks released by a defer PutBlock(b): they are held
	// for the whole function body but satisfied on every exit path.
	deferred map[*types.Var]bool
	// declDepth records the block-nesting depth each variable was declared
	// at, so scope exit can flag still-held blocks going out of scope.
	declDepth map[*types.Var]int
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var lo, hi token.Pos
			switch n := n.(type) {
			case *ast.FuncDecl:
				body, lo, hi = n.Body, n.Pos(), n.End()
			case *ast.FuncLit:
				body, lo, hi = n.Body, n.Pos(), n.End()
			}
			if body == nil {
				return true
			}
			t := &tracked{
				pass:      pass,
				lo:        lo,
				hi:        hi,
				state:     map[*types.Var]state{},
				deferred:  map[*types.Var]bool{},
				declDepth: map[*types.Var]int{},
			}
			if !t.stmts(body.List, 0) {
				t.scopeEnd(body.End(), 0)
			}
			// Nested function literals are visited independently by
			// ast.Inspect, each with fresh tracking.
			return true
		})
	}
	return nil
}

// poolCall classifies a call as GetBlock or PutBlock of the pool package.
func (t *tracked) poolCall(call *ast.CallExpr) (get, put bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false, false
	}
	fn, ok := t.pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != PoolPackage {
		return false, false
	}
	switch fn.Name() {
	case "GetBlock":
		return true, false
	case "PutBlock":
		return false, true
	}
	return false, false
}

// isBlockType reports whether typ is the pool package's Block (or *Block).
func (t *tracked) isBlockType(typ types.Type) bool {
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Block" && obj.Pkg() != nil && obj.Pkg().Path() == PoolPackage
}

// borrowExpr reports whether e constructs a borrowed view: a Block composite
// literal (optionally &-wrapped) or a Slice() call, both of which alias
// column storage the pool must never own. The store read path hands such
// views out over its mmap; recycling one would poison the pool.
func (t *tracked) borrowExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		tv, ok := t.pass.Info.Types[ast.Expr(e)]
		return ok && t.isBlockType(tv.Type)
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := t.pass.Info.Uses[sel.Sel].(*types.Func)
		return ok && fn.Name() == "Slice" && fn.Pkg() != nil && fn.Pkg().Path() == PoolPackage
	}
	return false
}

// localVar resolves an expression to a tracked-eligible local variable.
func (t *tracked) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := t.pass.Info.Uses[id]
	if obj == nil {
		obj = t.pass.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pos() < t.lo || v.Pos() > t.hi {
		return nil
	}
	return v
}

// stmts runs the analysis over a statement list at the given block depth.
func (t *tracked) stmts(list []ast.Stmt, depth int) (terminated bool) {
	for _, s := range list {
		if t.stmt(s, depth) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; it returns true when control cannot fall
// through (return / panic-like).
func (t *tracked) stmt(s ast.Stmt, depth int) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		t.assign(s, depth)
	case *ast.ExprStmt:
		t.expr(s.X)
	case *ast.DeferStmt:
		if _, put := t.poolCall(s.Call); put && len(s.Call.Args) == 1 {
			if v := t.localVar(s.Call.Args[0]); v != nil {
				if st, ok := t.state[v]; ok {
					if st == borrowed {
						t.pass.Reportf(s.Pos(), "block %s is a borrowed view, not a pool block: PutBlock would poison the pool", v.Name())
						t.untrack(v)
						return false
					}
					if t.deferred[v] {
						t.pass.Reportf(s.Pos(), "block %s already has a deferred PutBlock: double put", v.Name())
					}
					t.deferred[v] = true
					return false
				}
			}
		}
		t.expr(s.Call)
	case *ast.SendStmt:
		// Sending a block transfers ownership to the receiver.
		if v := t.localVar(s.Value); v != nil {
			t.use(v, s.Value.Pos())
			t.untrack(v)
		} else {
			t.expr(s.Value)
		}
		t.expr(s.Chan)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if v := t.localVar(r); v != nil {
				t.use(v, r.Pos())
				t.untrack(v) // ownership transfers to the caller
			} else {
				t.expr(r)
			}
		}
		t.exitCheck(s.Pos())
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			t.stmt(s.Init, depth)
		}
		t.expr(s.Cond)
		t.branch(s.Pos(), depth,
			func(b *tracked) bool { return b.stmts(s.Body.List, depth+1) },
			func(b *tracked) bool {
				if s.Else != nil {
					return b.stmt(s.Else, depth)
				}
				return false
			})
	case *ast.BlockStmt:
		t.stmts(s.List, depth+1)
		t.scopeEnd(s.End(), depth+1)
	case *ast.ForStmt:
		if s.Init != nil {
			t.stmt(s.Init, depth)
		}
		if s.Cond != nil {
			t.expr(s.Cond)
		}
		if s.Post != nil {
			t.stmt(s.Post, depth)
		}
		t.loopBody(s.Body, depth)
	case *ast.RangeStmt:
		t.expr(s.X)
		if v := t.localVar(s.X); v != nil {
			t.use(v, s.X.Pos())
		}
		t.loopBody(s.Body, depth)
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.stmt(s.Init, depth)
		}
		if s.Tag != nil {
			t.expr(s.Tag)
		}
		t.cases(s.Body, depth, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			t.stmt(s.Init, depth)
		}
		t.cases(s.Body, depth, true)
	case *ast.SelectStmt:
		return t.cases(s.Body, depth, false)
	case *ast.GoStmt:
		// The goroutine may run at any time; everything it can reach
		// escapes.
		t.escapeAll(s.Call)
		t.expr(s.Call)
	case *ast.LabeledStmt:
		return t.stmt(s.Stmt, depth)
	case *ast.IncDecStmt:
		t.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						t.expr(val)
					}
				}
			}
		}
	}
	return false
}

// assign handles x := GetBlock() / x = GetBlock() / other assignments.
func (t *tracked) assign(s *ast.AssignStmt, depth int) {
	// Single-value pool acquisition into a plain local.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if get, _ := t.poolCall(call); get {
				if v := t.localVar(s.Lhs[0]); v != nil {
					if st, ok := t.state[v]; ok && st == held && !t.deferred[v] {
						t.pass.Reportf(s.Pos(), "block %s reacquired while still held: previous block leaks", v.Name())
					}
					t.state[v] = held
					delete(t.deferred, v)
					if _, ok := t.declDepth[v]; !ok {
						t.declDepth[v] = depth
					}
					return
				}
				// GetBlock result stored somewhere the analysis cannot
				// follow (field, slice element): ownership escapes.
				for _, l := range s.Lhs {
					t.expr(l)
				}
				return
			}
		}
		// A borrowed view (Block literal / Slice result) bound to a local:
		// track it so a later PutBlock is flagged as pool poisoning. The
		// source block of a Slice stays tracked — the view aliases its
		// columns but does not take over recycling duty.
		if t.borrowExpr(s.Rhs[0]) {
			if v := t.localVar(s.Lhs[0]); v != nil {
				t.expr(s.Rhs[0])
				if st, ok := t.state[v]; ok && st == held && !t.deferred[v] {
					t.pass.Reportf(s.Pos(), "block %s overwritten while still held: block leaks", v.Name())
				}
				t.state[v] = borrowed
				delete(t.deferred, v)
				if _, ok := t.declDepth[v]; !ok {
					t.declDepth[v] = depth
				}
				return
			}
		}
	}
	for _, r := range s.Rhs {
		// Aliasing a tracked block (y := blk) forks ownership; drop both.
		if v := t.localVar(r); v != nil {
			t.use(v, r.Pos())
			t.untrack(v)
		} else {
			t.expr(r)
		}
	}
	for _, l := range s.Lhs {
		if v := t.localVar(l); v != nil {
			// Overwriting a held block loses the only reference.
			if st, ok := t.state[v]; ok {
				if st == held && !t.deferred[v] {
					t.pass.Reportf(s.Pos(), "block %s overwritten while still held: block leaks", v.Name())
				}
				t.untrack(v)
			}
		} else {
			t.expr(l)
		}
	}
}

// expr walks an expression, recording uses, escapes, and pool calls that
// appear in expression position.
func (t *tracked) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			get, put := t.poolCall(n)
			if get {
				t.pass.Reportf(n.Pos(), "GetBlock result discarded: block leaks")
				return false
			}
			if put {
				if len(n.Args) == 1 {
					arg := ast.Unparen(n.Args[0])
					if v := t.localVar(arg); v != nil {
						t.put(v, n.Pos())
						return false
					}
					// Value-typed views are put as &v; unwrap the address-of
					// so the borrowed state is consulted, not bypassed.
					if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
						if v := t.localVar(ue.X); v != nil {
							t.put(v, n.Pos())
							return false
						}
					}
					if t.borrowExpr(arg) {
						t.pass.Reportf(n.Pos(), "borrowed view passed to PutBlock: pool poisoning")
						return false
					}
				}
				return false
			}
			// A tracked block passed as a bare argument escapes into the
			// callee (it may retain or release it). A method call on the
			// block itself (blk.Append(...)) is an ordinary use.
			for _, a := range n.Args {
				if v := t.localVar(a); v != nil {
					t.use(v, a.Pos())
					t.untrack(v)
				} else {
					t.expr(a)
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if v := t.localVar(sel.X); v != nil {
					t.use(v, sel.X.Pos())
				} else {
					t.expr(sel.X)
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if v := t.localVar(n.X); v != nil {
					t.use(v, n.X.Pos())
					t.untrack(v) // address taken: any alias may release it
					return false
				}
			}
		case *ast.FuncLit:
			// A closure capturing a tracked block may run at any time.
			t.escapeAll(n)
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if v := t.localVar(el); v != nil {
					t.use(v, el.Pos())
					t.untrack(v)
				}
			}
		case *ast.Ident:
			if v := t.localVar(n); v != nil {
				t.use(v, n.Pos())
			}
		}
		return true
	})
}

// put transitions a block to released, reporting double puts.
func (t *tracked) put(v *types.Var, pos token.Pos) {
	st, ok := t.state[v]
	if !ok {
		return // untracked (escaped or never from GetBlock)
	}
	if st == borrowed {
		t.pass.Reportf(pos, "block %s is a borrowed view, not a pool block: PutBlock would poison the pool", v.Name())
		t.untrack(v)
		return
	}
	if st == released || t.deferred[v] {
		t.pass.Reportf(pos, "block %s returned to the pool twice: double PutBlock", v.Name())
		return
	}
	t.state[v] = released
}

// use reports a read of v when it has already been released.
func (t *tracked) use(v *types.Var, pos token.Pos) {
	if st, ok := t.state[v]; ok && st == released {
		t.pass.Reportf(pos, "block %s used after PutBlock: the pool may already have handed it to another goroutine", v.Name())
		// Report once per released block, then stop tracking.
		t.untrack(v)
	}
}

func (t *tracked) untrack(v *types.Var) {
	delete(t.state, v)
	delete(t.deferred, v)
	delete(t.declDepth, v)
}

// escapeAll untracks every variable referenced inside node (closure
// capture / goroutine escape).
func (t *tracked) escapeAll(node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := t.localVar(id); v != nil {
				if st, ok := t.state[v]; ok && st == released {
					t.pass.Reportf(id.Pos(), "block %s captured after PutBlock: use after put", v.Name())
				}
				t.untrack(v)
			}
		}
		return true
	})
}

// branch analyzes two alternative paths on copies of the state and merges
// conservatively: agreement is kept, divergence stops tracking (per-path
// exit checks have already fired inside each branch).
func (t *tracked) branch(pos token.Pos, depth int, then, els func(*tracked) bool) {
	a := t.fork()
	b := t.fork()
	tTerm := then(a)
	eTerm := els(b)
	switch {
	case tTerm && eTerm:
		// Both paths exit; downstream code is unreachable, keep current
		// state (it will not be consulted).
	case tTerm:
		t.adopt(b)
	case eTerm:
		t.adopt(a)
	default:
		t.merge(a, b)
	}
}

func (t *tracked) fork() *tracked {
	c := &tracked{
		pass:      t.pass,
		lo:        t.lo,
		hi:        t.hi,
		state:     map[*types.Var]state{},
		deferred:  map[*types.Var]bool{},
		declDepth: map[*types.Var]int{},
	}
	for k, v := range t.state {
		c.state[k] = v
	}
	for k, v := range t.deferred {
		c.deferred[k] = v
	}
	for k, v := range t.declDepth {
		c.declDepth[k] = v
	}
	return c
}

func (t *tracked) adopt(c *tracked) {
	t.state, t.deferred, t.declDepth = c.state, c.deferred, c.declDepth
}

func (t *tracked) merge(a, b *tracked) {
	merged := map[*types.Var]state{}
	for v, sa := range a.state {
		if sb, ok := b.state[v]; ok && sa == sb && a.deferred[v] == b.deferred[v] {
			merged[v] = sa
		}
		// Divergent or one-sided states: conservatively untracked.
	}
	t.state = merged
	deferred := map[*types.Var]bool{}
	for v := range merged {
		if a.deferred[v] {
			deferred[v] = true
		}
	}
	t.deferred = deferred
	depths := map[*types.Var]int{}
	for v := range merged {
		if d, ok := t.declDepth[v]; ok {
			depths[v] = d
		} else if d, ok := a.declDepth[v]; ok {
			depths[v] = d
		}
	}
	t.declDepth = depths
}

// loopBody analyzes a loop body once on a fork, reporting blocks acquired
// inside the body that are still held when the iteration ends, then merges
// conservatively (the body may run zero times).
func (t *tracked) loopBody(body *ast.BlockStmt, depth int) {
	a := t.fork()
	terminated := a.stmts(body.List, depth+1)
	if !terminated {
		a.scopeEnd(body.End(), depth+1)
	}
	t.merge(a, t.fork())
}

// cases analyzes each case clause of a switch/select body as an alternative
// branch and merges all of them conservatively. implicit reports whether
// control can skip every clause (a switch need not match any case); a
// select always executes exactly one of its clauses, so it has no implicit
// path — which makes the cancellation-unwind idiom (send the block in one
// clause, PutBlock it in the ctx.Done clause) correctly silent, and lets a
// select whose every clause exits terminate the statement.
func (t *tracked) cases(body *ast.BlockStmt, depth int, implicit bool) (terminated bool) {
	var forks []*tracked
	if implicit {
		forks = append(forks, t.fork()) // the no-case-taken path
	}
	for _, c := range body.List {
		f := t.fork()
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				f.expr(e)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				f.stmt(c.Comm, depth+1)
			}
			list = c.Body
		}
		if !f.stmts(list, depth+1) {
			f.scopeEnd(body.End(), depth+1)
			forks = append(forks, f)
		}
	}
	if len(forks) == 0 {
		// Every clause exits and there is no fall-through path: the
		// statement terminates (e.g. a select whose clauses all return,
		// or the blocks-forever empty select).
		return true
	}
	acc := forks[0]
	for _, f := range forks[1:] {
		acc.merge(acc.fork(), f)
	}
	t.adopt(acc)
	return false
}

// scopeEnd fires when a block at `depth` closes: locals declared at or
// below that depth go out of scope, and a still-held block there has leaked.
func (t *tracked) scopeEnd(end token.Pos, depth int) {
	for v, st := range t.state {
		if t.declDepth[v] >= depth {
			if st == held && !t.deferred[v] {
				t.pass.Reportf(v.Pos(), "block %s not returned to the pool before going out of scope: block leaks", v.Name())
			}
			t.untrack(v)
		}
	}
}

// exitCheck fires at explicit returns: every still-held, non-deferred
// block leaks on this path.
func (t *tracked) exitCheck(pos token.Pos) {
	for v, st := range t.state {
		if st == held && !t.deferred[v] {
			t.pass.Reportf(pos, "block %s not returned to the pool on this return path: block leaks", v.Name())
		}
	}
}
