package hotpath

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis/framework"
)

// Range is the source span of one //repro:hotpath function.
type Range struct {
	File       string // absolute path
	Start, End int    // line span of the declaration, inclusive
	Func       string
}

// Ranges collects the source spans of every annotated hot function across
// the loaded packages.
func Ranges(pkgs []*framework.Package) []Range {
	var out []Range
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !framework.HasDirective(fn, "hotpath") {
					continue
				}
				start := pkg.Fset.Position(fn.Pos())
				end := pkg.Fset.Position(fn.End())
				out = append(out, Range{
					File:  start.Filename,
					Start: start.Line,
					End:   end.Line,
					Func:  fn.Name.Name,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// AllocOKLines indexes the //repro:alloc-ok directives of the loaded
// packages: filename -> lines they govern.
func AllocOKLines(pkgs []*framework.Package) map[string]map[int]bool {
	allowed := map[string]map[int]bool{}
	for _, pkg := range pkgs {
		for i, file := range pkg.Files {
			src := pkg.Src[pkg.GoFiles[i]]
			for _, d := range framework.ParseDirectives(pkg.Fset, file, src) {
				if d.Name != "alloc-ok" || d.Reason == "" {
					continue
				}
				lines := allowed[d.Pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					allowed[d.Pos.Filename] = lines
				}
				for _, ln := range d.Lines() {
					lines[ln] = true
				}
			}
		}
	}
	return allowed
}

// EscapeFinding is one `escapes to heap` / `moved to heap` compiler
// diagnostic.
type EscapeFinding struct {
	File string // absolute path
	Line int
	Col  int
	Msg  string
}

var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// ParseBuildOutput extracts heap-escape diagnostics from
// `go build -gcflags=-m` output. Paths are resolved relative to baseDir
// (the directory the build ran in).
func ParseBuildOutput(out []byte, baseDir string) []EscapeFinding {
	var fs []EscapeFinding
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(baseDir, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fs = append(fs, EscapeFinding{File: file, Line: ln, Col: col, Msg: msg})
	}
	return fs
}

// CheckEscapes matches compiler escape diagnostics against hot-function
// spans, dropping lines annotated //repro:alloc-ok.
func CheckEscapes(ranges []Range, findings []EscapeFinding, allowed map[string]map[int]bool) []framework.Diagnostic {
	var out []framework.Diagnostic
	for _, f := range findings {
		for _, r := range ranges {
			if f.File != r.File || f.Line < r.Start || f.Line > r.End {
				continue
			}
			if allowed[f.File][f.Line] {
				break
			}
			out = append(out, framework.Diagnostic{
				Pos:      token.Position{Filename: f.File, Line: f.Line, Column: f.Col},
				Analyzer: "hotpath-escape",
				Message: fmt.Sprintf("heap allocation in hotpath function %s: %s (from go build -gcflags=-m)",
					r.Func, f.Msg),
			})
			break
		}
	}
	framework.SortDiagnostics(out)
	return out
}
