package hotpath_test

import (
	"testing"

	"repro/internal/analysis/framework/testutil"
	"repro/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	testutil.Run(t, "testdata/a", hotpath.Analyzer)
}
