// Package hotpath enforces the zero-allocation contract of functions
// annotated //repro:hotpath — the per-packet and per-flow faces
// (Assembler.AddBlock, Binner.AddBlock, the kernel evaluation loops, the
// batched sampler faces, player stepping) whose steady-state allocation
// counts the benchmarks pin at zero.
//
// The check has two halves:
//
//  1. A static AST pass (this analyzer) flagging constructs that always or
//     implicitly allocate inside an annotated function: closure literals,
//     make/new, string concatenation and string<->[]byte conversions,
//     implicit interface conversions (boxing) at call arguments, returns
//     and assignments, variadic calls (the argument slice), and go
//     statements.
//
//  2. An escape-analysis cross-check (escape.go, run by `repolint -escape`
//     and scripts/lint.sh) that parses `go build -gcflags=-m` output and
//     flags any `escapes to heap`/`moved to heap` diagnostic landing inside
//     an annotated function — catching what the AST cannot see.
//
// A cold path inside a hot function (an error return that fires at most
// once per stream) is annotated on its line:
//
//	//repro:alloc-ok <why this allocation cannot recur in steady state>
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the static half of the hot-path allocation checker.
var Analyzer = &framework.Analyzer{
	Name:        "hotpath",
	Doc:         "functions annotated //repro:hotpath must not allocate",
	Suppressors: []string{"alloc-ok"},
	Run:         run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !framework.HasDirective(fn, "hotpath") {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hotpath function %s allocates", name)
			return false // the closure body runs under its own budget
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath function %s allocates a goroutine per call", name)
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(pass, n.X) {
				pass.Reportf(n.Pos(), "string concatenation in hotpath function %s allocates", name)
			}
		}
		return true
	})
}

func checkCall(pass *framework.Pass, name string, call *ast.CallExpr) {
	// Conversions: string <-> []byte/[]rune allocate; conversions to an
	// interface type box.
	if len(call.Args) == 1 {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			to := tv.Type
			if from, ok := pass.Info.Types[call.Args[0]]; ok {
				if convAllocates(from.Type, to) {
					pass.Reportf(call.Pos(), "conversion %s -> %s in hotpath function %s allocates",
						types.TypeString(from.Type, types.RelativeTo(pass.Pkg)),
						types.TypeString(to, types.RelativeTo(pass.Pkg)), name)
				}
				if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Type.Underlying()) {
					pass.Reportf(call.Pos(), "interface conversion in hotpath function %s boxes its operand", name)
				}
			}
			return
		}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hotpath function %s allocates; hoist the buffer into a reused struct field or pool", b.Name(), name)
			}
			return
		}
	}
	// Ordinary calls: implicit boxing at interface-typed parameters, and
	// the hidden slice of a variadic call.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no new boxing here
			}
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
			if i == np-1 {
				pass.Reportf(call.Pos(), "variadic call in hotpath function %s allocates the argument slice", name)
			}
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Type.Underlying()) {
			pass.Reportf(arg.Pos(), "argument boxed into interface parameter in hotpath function %s", name)
		}
	}
}

// callSignature resolves the signature of an ordinary (non-builtin,
// non-conversion) call.
func callSignature(pass *framework.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isString(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// convAllocates reports whether a conversion between from and to copies
// into fresh backing storage (string <-> []byte / []rune).
func convAllocates(from, to types.Type) bool {
	return (isStringType(from) && isByteOrRuneSlice(to)) ||
		(isByteOrRuneSlice(from) && isStringType(to))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
