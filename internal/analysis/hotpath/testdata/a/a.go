// Package a is the hotpath analyzer fixture: one annotated function hitting
// every statically-detectable allocation shape, one showing the annotated
// cold-branch and slice-forwarding escapes, and one unannotated function
// the budget does not govern.
package a

import "fmt"

type sink struct{ buf []byte }

type boxer interface{ M() }

type impl struct{}

func (impl) M() {}

func helper() {}

func useIface(x interface{}) { _ = x }

// Hot is annotated; every allocation below must be flagged.
//
//repro:hotpath
func Hot(s *sink, n int, str string, bs []byte) {
	f := func() int { return n } // want "closure literal in hotpath function Hot allocates"
	_ = f
	go helper()             // want "go statement in hotpath function Hot allocates a goroutine per call"
	s.buf = make([]byte, n) // want "make in hotpath function Hot allocates"
	p := new(int)           // want "new in hotpath function Hot allocates"
	_ = p
	_ = str + "!"     // want "string concatenation in hotpath function Hot allocates"
	_ = []byte(str)   // want "conversion string -> "
	_ = string(bs)    // want "conversion \\[\\]byte -> string in hotpath function Hot allocates"
	_ = boxer(impl{}) // want "interface conversion in hotpath function Hot boxes its operand"
	useIface(n)       // want "argument boxed into interface parameter in hotpath function Hot"
	fmt.Println(n)    // want "variadic call in hotpath function Hot allocates the argument slice" "argument boxed into interface parameter"
}

// HotOK shows the allowed shapes: an annotated cold branch and variadic
// forwarding of an existing slice.
//
//repro:hotpath
func HotOK(s *sink, n int, xs []interface{}) {
	if n < 0 {
		s.buf = make([]byte, -n) //repro:alloc-ok fixture: cold branch, fires at most once
	}
	fmt.Println(xs...)
}

// Cold is not annotated: the allocation budget does not apply.
func Cold(n int) []byte { return make([]byte, n) }
